#!/usr/bin/env python3
"""Unit tests for the regression math in bench_diff.py.

Runs bench_diff.py as a subprocess against synthetic BENCH documents and
checks the exit code, so the test exercises exactly what CI exercises
(argument parsing, gating defaults, thresholds) rather than internals.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

BENCH_DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_diff.py")


def make_doc(points, columns=("n", "create_ms", "boot_ms"), name="t"):
    return {
        "schema": "lightvm-bench/1",
        "name": name,
        "title": name,
        "config": {},
        "series": {
            "vm": {"columns": list(columns), "points": points},
        },
        "metrics": {},
    }


class BenchDiffTest(unittest.TestCase):
    def run_diff(self, old, new, *extra):
        with tempfile.TemporaryDirectory() as d:
            old_path = os.path.join(d, "old.json")
            new_path = os.path.join(d, "new.json")
            with open(old_path, "w") as f:
                json.dump(old, f)
            with open(new_path, "w") as f:
                json.dump(new, f)
            proc = subprocess.run(
                [sys.executable, BENCH_DIFF, old_path, new_path] + list(extra),
                capture_output=True, text=True)
        return proc

    def test_identical_passes(self):
        doc = make_doc([[1, 10.0, 100.0], [2, 11.0, 105.0]])
        proc = self.run_diff(doc, copy.deepcopy(doc))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK:", proc.stdout)

    def test_improvement_passes(self):
        old = make_doc([[1, 10.0, 100.0], [2, 11.0, 105.0]])
        new = make_doc([[1, 5.0, 50.0], [2, 6.0, 55.0]])
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_regression_on_gated_column_fails(self):
        old = make_doc([[1, 10.0, 100.0], [2, 10.0, 100.0]])
        # create_ms regresses by 50% on every point; boot_ms unchanged.
        new = make_doc([[1, 15.0, 100.0], [2, 15.0, 100.0]])
        proc = self.run_diff(old, new, "--threshold", "10")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION: vm/create_ms", proc.stdout)
        self.assertNotIn("REGRESSION: vm/boot_ms", proc.stdout)

    def test_regression_below_threshold_passes(self):
        old = make_doc([[1, 100.0, 100.0]])
        new = make_doc([[1, 105.0, 100.0]])  # +5% < 10% threshold
        proc = self.run_diff(old, new, "--threshold", "10")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_single_bad_point_fails_by_default(self):
        old = make_doc([[i, 100.0, 100.0] for i in range(10)])
        new_points = [[i, 100.0, 100.0] for i in range(10)]
        new_points[7][1] = 130.0  # one +30% point; mean is only +3%
        proc = self.run_diff(old, make_doc(new_points), "--threshold", "10")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("point 7", proc.stdout)

    def test_single_bad_point_passes_with_mean_only(self):
        old = make_doc([[i, 100.0, 100.0] for i in range(10)])
        new_points = [[i, 100.0, 100.0] for i in range(10)]
        new_points[7][1] = 130.0
        proc = self.run_diff(old, make_doc(new_points), "--threshold", "10",
                             "--mean-only")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_non_gated_column_regression_ignored(self):
        # "n" has no _ms/_s suffix: a change there is informational only.
        old = make_doc([[10, 10.0, 100.0]])
        new = make_doc([[99, 10.0, 100.0]])
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_explicit_gate_narrows_selection(self):
        old = make_doc([[1, 10.0, 100.0]])
        new = make_doc([[1, 20.0, 200.0]])  # both timing columns +100%
        # Only boot_ms is gated, but it regressed too -> still fails...
        proc = self.run_diff(old, new, "--gate", "vm:boot_ms")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION: vm/boot_ms", proc.stdout)
        self.assertNotIn("REGRESSION: vm/create_ms", proc.stdout)
        # ...and gating a different series entirely ignores this one.
        proc = self.run_diff(old, new, "--gate", "other")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_zero_baseline_points_skipped(self):
        old = make_doc([[1, 0.0, 100.0], [2, 10.0, 100.0]])
        new = make_doc([[1, 50.0, 100.0], [2, 10.0, 100.0]])
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_point_count_mismatch_is_an_error(self):
        old = make_doc([[1, 10.0, 100.0], [2, 10.0, 100.0]])
        new = make_doc([[1, 10.0, 100.0]])
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_schema_mismatch_is_an_error(self):
        old = make_doc([[1, 10.0, 100.0]])
        new = make_doc([[1, 10.0, 100.0]])
        new["schema"] = "lightvm-bench/999"
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_name_mismatch_is_an_error(self):
        old = make_doc([[1, 10.0, 100.0]], name="a")
        new = make_doc([[1, 10.0, 100.0]], name="b")
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_missing_series_is_an_error(self):
        old = make_doc([[1, 10.0, 100.0]])
        new = make_doc([[1, 10.0, 100.0]])
        new["series"]["renamed"] = new["series"].pop("vm")
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    # --- SLO verdict surfacing ------------------------------------------

    @staticmethod
    def add_slo(doc, value, bound):
        doc["series"]["slo"] = {
            "columns": ["recovery_p99_ms", "recovery_p99_ms_bound",
                        "recovery_p99_ms_ok"],
            "points": [[value, bound, 1.0 if value <= bound else 0.0]],
        }

    def test_slo_pass_surfaced(self):
        old = make_doc([[1, 10.0, 100.0]])
        new = make_doc([[1, 10.0, 100.0]])
        self.add_slo(old, 300.0, 450.0)
        self.add_slo(new, 320.0, 450.0)
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("SLO", proc.stdout)
        self.assertIn("PASS", proc.stdout)

    def test_slo_pass_to_fail_is_a_regression(self):
        old = make_doc([[1, 10.0, 100.0]])
        new = make_doc([[1, 10.0, 100.0]])
        self.add_slo(old, 300.0, 450.0)
        self.add_slo(new, 500.0, 450.0)
        proc = self.run_diff(old, new, "--threshold", "99999")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("FAIL", proc.stdout)
        self.assertIn("REGRESSION: slo recovery_p99_ms", proc.stdout)

    def test_slo_only_in_candidate_is_informational(self):
        # A baseline predating SLOs doesn't fail the diff even when the
        # candidate's bound is violated — there is no pass->fail transition.
        old = make_doc([[1, 10.0, 100.0]])
        new = make_doc([[1, 10.0, 100.0]])
        self.add_slo(new, 500.0, 450.0)
        proc = self.run_diff(old, new)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("FAIL", proc.stdout)


if __name__ == "__main__":
    unittest.main()
