#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts (or directories of them) and fail on
hot-path performance regressions.

Both inputs must carry the `lightvm-bench/1` schema. Series are matched by
name, points by index — the simulation is deterministic, so a given spec +
seed produces the same row count and ordering every run; a count mismatch
means the two files came from different specs and is an error, not a diff.

Gating: only "hot-path" columns are gated — by default every column whose
name ends in `_ms` or `_s` (timings; higher is worse). Non-gated columns
(counts, indices, node assignments) are compared for information only.
For each gated (series, column) the tool computes the per-point relative
change (new-old)/old and fails when either

  * the mean change exceeds --threshold %, or
  * any single point exceeds --threshold % and --per-point is set
    (default: on — the simulator is noise-free, so a single regressed
    point is a real regression, not jitter).

Improvements (negative change) never fail. Use --gate SERIES[:COLUMN]
(repeatable) to override the default hot-path selection.

SLO verdicts: a document produced by `scenario_runner --check` carries an
"slo" series (one row: <key>, <key>_bound, <key>_ok per configured bound).
Those verdicts are surfaced as SLO PASS/FAIL lines, and a bound that passed
in the baseline but fails in the candidate is a regression even when the
raw timing change stays under --threshold.

Exit codes: 0 clean, 1 regression found, 2 usage/schema error.

Usage:
  bench_diff.py old/BENCH_x.json new/BENCH_x.json
  bench_diff.py baselines/ out/ --threshold 10
  bench_diff.py a.json b.json --gate lightvm:create_ms --gate summary
"""

import argparse
import json
import os
import sys

SCHEMA = "lightvm-bench/1"
HOT_SUFFIXES = ("_ms", "_s")


def die(msg):
    print("ERROR: %s" % msg)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die("%s: %s" % (path, e))
    if doc.get("schema") != SCHEMA:
        die("%s: schema is %r, want %r (bench_diff only understands "
            "schema-versioned BENCH files)" % (path, doc.get("schema"), SCHEMA))
    if not isinstance(doc.get("series"), dict) or not doc["series"]:
        die("%s: no series recorded" % path)
    return doc


def parse_gates(gate_args):
    """--gate SERIES[:COLUMN] -> {series: set(columns) or None (=defaults)}."""
    gates = {}
    for g in gate_args or []:
        if ":" in g:
            series, column = g.split(":", 1)
            gates.setdefault(series, set())
            if gates[series] is not None:
                gates[series].add(column)
        else:
            gates[g] = None
    return gates


def gated_columns(series_name, columns, gates):
    """Columns of this series that are gated (order preserved)."""
    if gates:
        if series_name not in gates:
            return []
        wanted = gates[series_name]
        if wanted is None:
            return [c for c in columns if c.endswith(HOT_SUFFIXES)]
        missing = wanted - set(columns)
        if missing:
            die("series %r has no column(s) %s" %
                (series_name, ", ".join(sorted(missing))))
        return [c for c in columns if c in wanted]
    return [c for c in columns if c.endswith(HOT_SUFFIXES)]


def diff_series(name, old, new, threshold, per_point, failures):
    if old["columns"] != new["columns"]:
        die("series %r: columns differ (%r vs %r) — not comparable" %
            (name, old["columns"], new["columns"]))
    if len(old["points"]) != len(new["points"]):
        die("series %r: %d points vs %d — the runs came from different "
            "specs (or a run truncated); refusing to diff" %
            (name, len(old["points"]), len(new["points"])))
    return old["columns"], len(old["points"])


def diff_column(name, column, idx, old_points, new_points, threshold,
                per_point, gated):
    changes = []
    worst = (0.0, -1)  # (signed change, point index)
    for i, (o, n) in enumerate(zip(old_points, new_points)):
        ov, nv = o[idx], n[idx]
        if ov == 0:
            continue  # no relative change is defined; zero baselines are
                      # counts that the non-gated report already covers
        change = (nv - ov) / abs(ov)
        changes.append(change)
        if change > worst[0]:
            worst = (change, i)
    if not changes:
        return []
    mean = sum(changes) / len(changes)
    verdicts = []
    tag = "%s/%s" % (name, column)
    if gated:
        if mean * 100.0 > threshold:
            verdicts.append("REGRESSION: %s mean %+.2f%% exceeds %.1f%% "
                            "(worst %+.2f%% at point %d)" %
                            (tag, mean * 100.0, threshold, worst[0] * 100.0,
                             worst[1]))
        elif per_point and worst[0] * 100.0 > threshold:
            verdicts.append("REGRESSION: %s point %d %+.2f%% exceeds %.1f%% "
                            "(mean %+.2f%%)" %
                            (tag, worst[1], worst[0] * 100.0, threshold,
                             mean * 100.0))
    status = "GATED" if gated else "info "
    print("%s %-40s mean %+8.2f%%  worst %+8.2f%%  (%d points)" %
          (status, tag, mean * 100.0, worst[0] * 100.0, len(changes)))
    return verdicts


def slo_row(doc):
    """The `slo` series' single row as {column: value}, or None."""
    series = doc.get("series", {}).get("slo")
    if not series or not series.get("points"):
        return None
    return dict(zip(series["columns"], series["points"][-1]))


def report_slo(old, new):
    """Print SLO verdicts from the candidate; fail pass->fail transitions."""
    new_row = slo_row(new)
    if new_row is None:
        return []
    old_row = slo_row(old) or {}
    failures = []
    for column in sorted(c for c in new_row if c.endswith("_ok")):
        key = column[:-len("_ok")]
        ok = new_row[column] == 1.0
        print("SLO   %-40s %s  (%.3f <= %.3f)" %
              (key, "PASS" if ok else "FAIL", new_row.get(key, 0.0),
               new_row.get(key + "_bound", 0.0)))
        if not ok and old_row.get(column) == 1.0:
            failures.append("REGRESSION: slo %s passed in the baseline but "
                            "fails now (%.3f > %.3f)" %
                            (key, new_row.get(key, 0.0),
                             new_row.get(key + "_bound", 0.0)))
    return failures


def diff_files(old_path, new_path, threshold, per_point, gates):
    old = load(old_path)
    new = load(new_path)
    if old.get("name") != new.get("name"):
        die("%s is %r but %s is %r — different benchmarks" %
            (old_path, old.get("name"), new_path, new.get("name")))
    print("== %s: %s -> %s" % (old.get("name"), old_path, new_path))
    failures = []
    for name, old_series in old["series"].items():
        new_series = new["series"].get(name)
        if new_series is None:
            die("series %r missing from %s" % (name, new_path))
        columns, _ = diff_series(name, old_series, new_series, threshold,
                                 per_point, failures)
        gated = set(gated_columns(name, columns, gates))
        for idx, column in enumerate(columns):
            failures.extend(diff_column(name, column, idx,
                                        old_series["points"],
                                        new_series["points"], threshold,
                                        per_point, column in gated))
    extra = set(new["series"]) - set(old["series"])
    if extra:
        print("note: new series not in baseline (not gated): %s" %
              ", ".join(sorted(extra)))
    failures.extend(report_slo(old, new))
    return failures


def pair_directories(old_dir, new_dir):
    old_files = sorted(f for f in os.listdir(old_dir) if f.endswith(".json"))
    if not old_files:
        die("%s: no .json baselines" % old_dir)
    pairs = []
    for f in old_files:
        new_path = os.path.join(new_dir, f)
        if not os.path.exists(new_path):
            die("baseline %s has no counterpart in %s" % (f, new_dir))
        pairs.append((os.path.join(old_dir, f), new_path))
    return pairs


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old", help="baseline BENCH json file or directory")
    parser.add_argument("new", help="candidate BENCH json file or directory")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated regression, percent (default 10)")
    parser.add_argument("--per-point", dest="per_point", action="store_true",
                        default=True, help="fail on any single regressed "
                        "point (default)")
    parser.add_argument("--mean-only", dest="per_point", action="store_false",
                        help="only gate the mean change per column")
    parser.add_argument("--gate", action="append", metavar="SERIES[:COLUMN]",
                        help="gate only these series/columns (repeatable); "
                        "default: every *_ms / *_s column")
    args = parser.parse_args()

    gates = parse_gates(args.gate)
    if os.path.isdir(args.old) != os.path.isdir(args.new):
        die("old and new must both be files or both be directories")
    if os.path.isdir(args.old):
        pairs = pair_directories(args.old, args.new)
    else:
        pairs = [(args.old, args.new)]

    failures = []
    for old_path, new_path in pairs:
        failures.extend(diff_files(old_path, new_path, args.threshold,
                                   args.per_point, gates))
    if failures:
        print()
        for f in failures:
            print(f)
        print("FAIL: %d hot-path regression(s) above %.1f%%" %
              (len(failures), args.threshold))
        sys.exit(1)
    print("OK: no hot-path regressions above %.1f%%" % args.threshold)


if __name__ == "__main__":
    main()
