#!/usr/bin/env python3
"""Validate a BENCH_*.json results file produced by the bench harness.

Schema checks: the `lightvm-bench/1` envelope (name/title/setup/footnotes/
config), every series has consistent columns and rectangular points, and the
embedded metrics-registry snapshot is well formed (histogram bucket counts
sum to the histogram count, bucket bounds ascend).

Cross-check: the registry's latency histograms are log-bucketed
approximations; for fig04 the toolstack.xl.create_ms histogram's p50/p99
must agree with exact quantiles recomputed from the full-resolution series
points within the documented error bound (1/128, padded to 2% for the
nearest-rank vs interpolation difference).

Usage:
  check_metrics_json.py BENCH_foo.json ...   validate existing file(s)
  check_metrics_json.py --bench <fig04>      run the binary --json=<tmp> and
                                             validate what it writes, and
                                             assert its stdout is
                                             byte-identical with and without
                                             --json (metrics must never
                                             perturb the printed figures)
  check_metrics_json.py --bench <scenario_runner> --bench-arg <spec.json>
                                             same, for binaries that take
                                             positional arguments before
                                             --json (--bench-arg repeats)

The --bench form is registered as a ctest so the end-to-end path
(instrumented hot paths -> registry -> bench exporter -> loadable JSON)
stays green. The fig04 quantile cross-check fires when the document's
"name" contains "fig04" (falling back to the filename for pre-scenario
artifacts), so it covers scenario_runner output too.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

SCHEMA = "lightvm-bench/1"
# Histogram bound is 1/128 (~0.8%); the harness compares nearest-rank
# against bucket midpoints, so pad to 2% to absorb the rank-rule slack.
QUANTILE_TOLERANCE = 0.02


def fail(msg):
    print("FAIL: %s" % msg)
    sys.exit(1)


def check_series(path, name, series):
    columns = series.get("columns")
    points = series.get("points")
    if not isinstance(columns, list) or not columns:
        fail("%s: series %r has no columns" % (path, name))
    if not isinstance(points, list) or not points:
        fail("%s: series %r has no points" % (path, name))
    for i, row in enumerate(points):
        if not isinstance(row, list) or len(row) != len(columns):
            fail("%s: series %r point %d has %d values for %d columns" %
                 (path, name, i, len(row) if isinstance(row, list) else -1,
                  len(columns)))
        for v in row:
            if not isinstance(v, (int, float)):
                fail("%s: series %r point %d has non-numeric value %r" %
                     (path, name, i, v))


def check_histogram(path, name, hist):
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99", "p999",
                "buckets"):
        if key not in hist:
            fail("%s: histogram %r missing %r" % (path, name, key))
    count = hist["count"]
    buckets = hist["buckets"]
    in_buckets = sum(b[2] for b in buckets)
    if in_buckets != count:
        fail("%s: histogram %r bucket counts sum to %d, count says %d" %
             (path, name, in_buckets, count))
    prev_hi = None
    for lo, hi, n in buckets:
        hi_val = math.inf if hi in ("+inf", None) else hi
        if n <= 0:
            fail("%s: histogram %r exports an empty bucket" % (path, name))
        if hi_val <= lo and not (lo == 0 and hi_val == 0):
            fail("%s: histogram %r bucket [%r, %r] is inverted" %
                 (path, name, lo, hi))
        if prev_hi is not None and lo < prev_hi:
            fail("%s: histogram %r buckets overlap at lo=%r" % (path, name, lo))
        prev_hi = hi_val
    if count > 0:
        if not (hist["min"] <= hist["p50"] <= hist["p90"] <= hist["p99"]
                <= hist["p999"] <= hist["max"]):
            fail("%s: histogram %r quantiles not ordered: min=%r p50=%r "
                 "p90=%r p99=%r p999=%r max=%r" %
                 (path, name, hist["min"], hist["p50"], hist["p90"],
                  hist["p99"], hist["p999"], hist["max"]))
        # min/max are exact observed values (not bucket midpoints): min must
        # not exceed the first non-empty bucket's upper bound, max must not
        # undershoot the last one's lower bound. (Underflow catches values
        # below its lo, so only these one-sided bounds are exact.)
        first_hi = buckets[0][1]
        last_lo = buckets[-1][0]
        first_hi = math.inf if first_hi in ("+inf", None) else first_hi
        if hist["min"] > first_hi:
            fail("%s: histogram %r min=%r above first bucket hi=%r" %
                 (path, name, hist["min"], first_hi))
        if hist["max"] < last_lo:
            fail("%s: histogram %r max=%r below last bucket lo=%r" %
                 (path, name, hist["max"], last_lo))


def nearest_rank(sorted_xs, q):
    rank = int(q * (len(sorted_xs) - 1) + 0.5)
    return sorted_xs[rank]


def cross_check_create_ms(path, doc):
    """fig04: histogram quantiles vs exact quantiles from the series points."""
    hist = doc["metrics"]["histograms"].get("toolstack.xl.create_ms")
    if hist is None:
        fail("%s: no toolstack.xl.create_ms histogram in the snapshot" % path)
    create_ms = []
    for name, series in doc["series"].items():
        if "create_ms" not in series["columns"]:
            continue
        idx = series["columns"].index("create_ms")
        create_ms.extend(row[idx] for row in series["points"])
    if len(create_ms) != hist["count"]:
        fail("%s: %d create_ms points in the series but the histogram saw %d "
             "creates" % (path, len(create_ms), hist["count"]))
    create_ms.sort()
    for q, key in ((0.5, "p50"), (0.99, "p99")):
        exact = nearest_rank(create_ms, q)
        approx = hist[key]
        rel = abs(approx - exact) / exact
        if rel > QUANTILE_TOLERANCE:
            fail("%s: %s=%.3f vs exact %.3f — relative error %.4f exceeds "
                 "%.4f" % (path, key, approx, exact, rel, QUANTILE_TOLERANCE))
        print("OK: %s %.3f vs exact %.3f (rel err %.4f)" %
              (key, approx, exact, rel))


def check_parallel(path, doc):
    """Sharded runs (fleet_density --shards, topology.shards specs) export a
    `parallel` series (per-shard events + wall-clock utilization) and a
    `parallel_summary` series (shard count, measured speedup vs the silent
    single-shard reference pass). Shape-check both: the utilization numbers
    are machine-dependent so they are never value-gated, but a malformed or
    half-written section must still fail loudly."""
    series = doc["series"]
    parallel = series.get("parallel")
    summary = series.get("parallel_summary")
    if parallel is None and summary is None:
        return
    if parallel is None or summary is None:
        fail("%s: parallel and parallel_summary must appear together" % path)
    if parallel["columns"] != ["shard", "events", "busy_frac", "stall_frac"]:
        fail("%s: parallel columns are %r" % (path, parallel["columns"]))
    if summary["columns"] != ["shards", "speedup_x", "cores"]:
        fail("%s: parallel_summary columns are %r" % (path, summary["columns"]))
    shards = summary["points"][-1][0]
    if shards < 1 or shards != int(shards):
        fail("%s: parallel_summary shards=%r is not a positive integer" %
             (path, shards))
    rows = parallel["points"]
    if len(rows) % int(shards) != 0:
        fail("%s: %d parallel rows is not a multiple of shards=%d" %
             (path, len(rows), int(shards)))
    total_events = 0
    for i, (shard, events, busy, stall) in enumerate(rows):
        if shard != i % int(shards):
            fail("%s: parallel row %d names shard %r, want %d" %
                 (path, i, shard, i % int(shards)))
        if events < 0:
            fail("%s: parallel shard %d has negative event count" % (path, i))
        # Per-shard busy/stall time is measured inside the run wall-clock
        # window; allow a little scheduler noise above 1.0.
        for label, frac in (("busy_frac", busy), ("stall_frac", stall)):
            if not (0.0 <= frac <= 1.05):
                fail("%s: parallel shard %d %s=%r outside [0, 1]" %
                     (path, i, label, frac))
        total_events += events
    if total_events <= 0:
        fail("%s: parallel section processed no events" % path)
    for _, speedup, cores in summary["points"]:
        if speedup <= 0:
            fail("%s: parallel_summary speedup_x=%r must be > 0" %
                 (path, speedup))
        if cores < 1:
            fail("%s: parallel_summary cores=%r must be >= 1" % (path, cores))
    print("OK: parallel section (%d shard rows, %d events)" %
          (len(rows), int(total_events)))


def is_fig04(path, doc):
    """The quantile cross-check applies to any fig04-shaped run: detect it
    from the document's own name so renamed output paths (CI artifact dirs,
    scenario_runner --json targets) still get the stronger check."""
    name = doc.get("name")
    if isinstance(name, str) and name:
        return "fig04" in name
    return "fig04" in os.path.basename(path)


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail("%s: %s" % (path, e))

    if doc.get("schema") != SCHEMA:
        fail("%s: schema is %r, want %r" % (path, doc.get("schema"), SCHEMA))
    for key, kind in (("name", str), ("title", str), ("setup", str),
                      ("footnotes", list), ("config", dict), ("series", dict),
                      ("metrics", dict)):
        if not isinstance(doc.get(key), kind):
            fail("%s: missing or mistyped %r (want %s)" %
                 (path, key, kind.__name__))
    if not doc["series"]:
        fail("%s: no series recorded" % path)
    for name, series in doc["series"].items():
        check_series(path, name, series)

    metrics = doc["metrics"]
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(key), dict):
            fail("%s: metrics snapshot missing %r" % (path, key))
    for name, hist in metrics["histograms"].items():
        check_histogram(path, name, hist)

    n_points = sum(len(s["points"]) for s in doc["series"].values())
    print("OK: %s (%d series, %d points, %d counters, %d histograms)" %
          (path, len(doc["series"]), n_points, len(metrics["counters"]),
           len(metrics["histograms"])))

    check_parallel(path, doc)
    if is_fig04(path, doc):
        cross_check_create_ms(path, doc)


def run_bench(bench, bench_args):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH.json")
        # Run once plain and once with --json: the printed tables must be
        # byte-identical (always-on metrics may not perturb any figure).
        plain = subprocess.run([bench] + bench_args, stdout=subprocess.PIPE)
        if plain.returncode != 0:
            fail("%s exited %d" % (bench, plain.returncode))
        with_json = subprocess.run([bench] + bench_args + ["--json=%s" % out],
                                   stdout=subprocess.PIPE)
        if with_json.returncode != 0:
            fail("%s --json exited %d" % (bench, with_json.returncode))
        if plain.stdout != with_json.stdout:
            fail("%s: stdout differs with vs without --json" % bench)
        print("OK: stdout byte-identical with and without --json")
        validate(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="BENCH JSON files to validate")
    parser.add_argument("--bench", help="path to a bench binary; runs it "
                        "with --json first")
    parser.add_argument("--bench-arg", action="append", default=[],
                        help="extra argument passed to the --bench binary "
                        "before --json (repeatable; e.g. a scenario spec "
                        "path for scenario_runner)")
    args = parser.parse_args()
    if not args.files and not args.bench:
        parser.error("give BENCH files and/or --bench")
    if args.bench_arg and not args.bench:
        parser.error("--bench-arg requires --bench")

    for path in args.files:
        validate(path)

    if args.bench:
        run_bench(args.bench, args.bench_arg)


if __name__ == "__main__":
    main()
