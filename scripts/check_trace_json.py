#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the trace subsystem.

Checks that the file parses as JSON, that begin/end span events pair up and
nest properly per track, that timestamps are monotonically non-decreasing
(both globally — events are recorded in simulated-time order — and per track),
and that flow events (causal operation arcs) are well-formed: every flow id
starts with exactly one "s", ends with exactly one "f", has only "t" steps in
between, and never dangles (a flow id with a start but no finish, or vice
versa, would render as a broken arrow in Perfetto).

Usage:
  check_trace_json.py trace.json ...        validate existing file(s)
  check_trace_json.py --cli <chaos_cli>     run chaos_cli --trace-out and
                                            validate what it writes
  check_trace_json.py --run <cmd> [arg...]  run any command that accepts a
                                            --trace-out=<path> flag (appended
                                            automatically; e.g.
                                            --run scenario_runner spec.json)
                                            and validate what it writes

The --cli and --run forms are registered as ctests so the end-to-end path
(instrumented control plane -> exporter -> loadable JSON) stays green.
"""

import argparse
import json
import subprocess
import sys
import tempfile
import os


def fail(msg):
    print("FAIL: %s" % msg)
    sys.exit(1)


def validate(path, min_flows=0):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail("%s: %s" % (path, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("%s: no traceEvents array" % path)

    prev_ts = None
    per_track_prev = {}
    open_spans = {}  # tid -> stack of (name, ts)
    flows = {}  # flow id -> list of phases in file order
    counts = {"B": 0, "E": 0, "C": 0, "i": 0, "M": 0, "s": 0, "t": 0, "f": 0}

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in counts:
            fail("%s: event %d has unknown phase %r" % (path, i, ph))
        counts[ph] += 1
        if ph == "M":
            continue  # Metadata carries no timestamp.

        ts = ev.get("ts")
        tid = ev.get("tid")
        name = ev.get("name")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail("%s: event %d (%r) has bad ts %r" % (path, i, name, ts))
        if prev_ts is not None and ts < prev_ts:
            fail("%s: event %d (%r) ts %.3f < previous %.3f — not "
                 "monotonic" % (path, i, name, ts, prev_ts))
        prev_ts = ts
        if tid in per_track_prev and ts < per_track_prev[tid]:
            fail("%s: event %d (%r) goes back in time on track %s" %
                 (path, i, name, tid))
        per_track_prev[tid] = ts

        if ph in ("s", "t", "f"):
            flow_id = ev.get("id")
            if not isinstance(flow_id, int):
                fail("%s: flow event %d (%r) has bad id %r" %
                     (path, i, name, flow_id))
            if ph == "f" and ev.get("bp") != "e":
                fail("%s: flow event %d (%r) finishes without bp=e — "
                     "Perfetto would not bind it to the enclosing slice" %
                     (path, i, name))
            flows.setdefault(flow_id, []).append(ph)

        if ph == "B":
            open_spans.setdefault(tid, []).append((name, ts))
        elif ph == "E":
            stack = open_spans.get(tid)
            if not stack:
                fail("%s: event %d ends %r on track %s with no open span" %
                     (path, i, name, tid))
            open_name, open_ts = stack.pop()
            if open_name != name:
                fail("%s: event %d ends %r but innermost open span on track "
                     "%s is %r — spans cross" % (path, i, name, tid, open_name))
            if ts < open_ts:
                fail("%s: span %r on track %s ends before it begins" %
                     (path, name, tid))

    leftovers = {tid: stack for tid, stack in open_spans.items() if stack}
    if leftovers:
        fail("%s: unclosed spans at end of trace: %r" % (path, leftovers))
    if counts["B"] != counts["E"]:
        fail("%s: %d begin events vs %d end events" %
             (path, counts["B"], counts["E"]))
    if counts["B"] == 0:
        fail("%s: no spans recorded" % path)
    for flow_id, phases in flows.items():
        if phases[0] != "s":
            fail("%s: flow %d does not start with 's' (got %r)" %
                 (path, flow_id, phases))
        if phases[-1] != "f":
            fail("%s: flow %d dangles — no finishing 'f' (got %r)" %
                 (path, flow_id, phases))
        if phases.count("s") != 1 or phases.count("f") != 1:
            fail("%s: flow %d has %d starts / %d finishes (want exactly 1 "
                 "each)" % (path, flow_id, phases.count("s"),
                            phases.count("f")))
        if any(p != "t" for p in phases[1:-1]):
            fail("%s: flow %d has non-step phases between s and f: %r" %
                 (path, flow_id, phases))
    if len(flows) < min_flows:
        fail("%s: only %d flows recorded, expected >= %d — causal op "
             "propagation is broken somewhere in the control plane" %
             (path, len(flows), min_flows))

    print("OK: %s (%d events: %d spans, %d counter samples, %d instants, "
          "%d flows)" % (path, len(events), counts["B"], counts["C"],
                         counts["i"], len(flows)))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="trace JSON files to validate")
    parser.add_argument("--cli", help="path to chaos_cli; generates a trace first")
    parser.add_argument("--min-flows", type=int, default=0,
                        help="fail unless at least this many distinct flow "
                        "ids appear (cross-layer causal arcs)")
    parser.add_argument("--run", nargs=argparse.REMAINDER,
                        help="command to run with --trace-out=<tmp> appended; "
                        "consumes the rest of the argv")
    args = parser.parse_args()
    if not args.files and not args.cli and not args.run:
        parser.error("give trace files, --cli, and/or --run")

    for path in args.files:
        validate(path, args.min_flows)

    if args.run:
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "trace.json")
            proc = subprocess.run(args.run + ["--trace-out=%s" % out],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT)
            if proc.returncode != 0:
                fail("%s exited %d:\n%s" %
                     (" ".join(args.run), proc.returncode,
                      proc.stdout.decode()))
            validate(out, args.min_flows)

    if args.cli:
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "trace.json")
            cmd = [args.cli, "--trace-out=%s" % out,
                   "create web0 daytime", "create web1 daytime", "list",
                   "save web0", "restore web0", "destroy web0", "quit"]
            proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT)
            if proc.returncode != 0:
                fail("%s exited %d:\n%s" %
                     (args.cli, proc.returncode, proc.stdout.decode()))
            validate(out)


if __name__ == "__main__":
    main()
