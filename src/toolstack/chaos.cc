#include "src/toolstack/chaos.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace toolstack {

namespace {
constexpr const char* kMod = "chaos";
}  // namespace

ChaosToolstack::ChaosToolstack(HostEnv env, Costs costs, bool use_noxs, ChaosDaemon* daemon)
    : Toolstack(std::move(env)), costs_(costs), use_noxs_(use_noxs), daemon_(daemon) {
  if (!use_noxs_) {
    LV_CHECK_MSG(env_.store != nullptr, "chaos [XS] requires the XenStore");
    client_ = std::make_unique<xs::XsClient>(env_.engine, env_.store, hv::kDom0);
  }
}

ChaosToolstack::~ChaosToolstack() = default;

const char* ChaosToolstack::name() const {
  if (use_noxs_) {
    return split() ? "chaos [NoXS+split] (LightVM)" : "chaos [NoXS]";
  }
  return split() ? "chaos [XS+split]" : "chaos [XS]";
}

sim::Co<lv::Result<Shell>> ChaosToolstack::ObtainShell(sim::ExecCtx ctx,
                                                       const VmConfig& config) {
  if (daemon_ != nullptr) {
    std::optional<Shell> pooled = daemon_->TryTake(config.image.memory,
                                                   config.image.wants_net);
    if (pooled.has_value()) {
      static metrics::Counter& hits = metrics::GetCounter("toolstack.chaos.shell_pool_hits");
      hits.Inc();
      co_return *pooled;
    }
    // Pool miss: fall back to inline preparation (and let the daemon refill).
    static metrics::Counter& misses = metrics::GetCounter("toolstack.chaos.shell_pool_misses");
    misses.Inc();
  }
  co_return co_await PrepareShell(env_, costs_, ctx, config.image.memory,
                                  config.image.wants_net, use_noxs_, client_.get());
}

sim::Co<lv::Status> ChaosToolstack::ExecutePhase(sim::ExecCtx ctx, Shell& shell,
                                                 const VmConfig& config, lv::Bytes payload,
                                                 bool is_restore, CreateBreakdown& bd) {
  lv::TimePoint t0 = env_.engine->now();
  trace::Span phase(ctx.track, "create.devices");
  // Device initialization.
  if (use_noxs_) {
    if (shell.net_info.has_value()) {
      (void)co_await env_.hv->DevicePageWrite(ctx, hv::kDom0, shell.domid, *shell.net_info);
    }
    if (shell.sysctl_info.has_value()) {
      (void)co_await env_.hv->DevicePageWrite(ctx, hv::kDom0, shell.domid,
                                              *shell.sysctl_info);
    }
  } else {
    // chaos [XS]: a handful of store records (name with uniqueness check +
    // the minimal guest records), plus the device entries if the shell did
    // not pre-create them.
    lv::Status name_ok = co_await client_->WriteUniqueName(ctx, shell.domid, config.name);
    if (!name_ok.ok()) {
      co_return name_ok;
    }
    std::string base = lv::StrFormat("/local/domain/%lld", (long long)shell.domid);
    lv::Status records = co_await xs::RunTransaction(
        ctx, client_.get(), /*max_retries=*/8, [&](xs::TxnId txn) -> sim::Co<lv::Status> {
          static const char* kRecords[] = {"/vm", "/memory/target", "/console/ring-ref",
                                           "/control/shutdown", "/domid", "/image/kernel"};
          int written = 0;
          for (const char* rec : kRecords) {
            if (written >= costs_.chaos_xenstore_records) {
              break;
            }
            lv::Status s = co_await client_->Write(ctx, base + rec, "x", txn);
            if (!s.ok()) {
              co_return s;
            }
            ++written;
          }
          co_return lv::Status::Ok();
        });
    if (!records.ok()) {
      co_return records;
    }
    if (config.image.wants_net && !shell.xs_devices_precreated &&
        env_.netback != nullptr) {
      lv::Status s = co_await env_.netback->XsToolstackCreate(ctx, client_.get(),
                                                              shell.domid, nullptr);
      if (!s.ok()) {
        co_return s;
      }
      shell.xs_devices_precreated = true;
    }
  }
  phase.End();
  bd.devices += env_.engine->now() - t0;

  // Image build: parse + load the kernel (or the restore stream).
  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.load");
  if (!is_restore) {
    co_await ctx.Work(costs_.image_parse_per_page *
                      static_cast<double>(lv::PagesFor(payload)));
  } else {
    co_await ctx.Work(costs_.snapshot_file_overhead);
  }
  (void)co_await env_.hv->CopyToDomain(ctx, shell.domid, payload);
  phase.End();
  bd.load += env_.engine->now() - t0;
  co_return lv::Status::Ok();
}

sim::Co<void> ChaosToolstack::BootGuest(sim::ExecCtx ctx, const Shell& shell,
                                        const VmConfig& config, bool resume) {
  trace::Span span(ctx.track, "create.boot");
  VmRecord record;
  record.config = config;
  record.core = shell.core;
  record.created_at = env_.engine->now();
  record.guest = std::make_unique<guests::Guest>(
      env_.engine, config.image, shell.domid, MakeBootEnv(shell.core, !use_noxs_));
  record.guest->set_resume(resume);
  env_.hv->FindDomain(shell.domid)->set_start_fn(record.guest->MakeStartFn());
  TrackVm(shell.domid, std::move(record));
  (void)co_await env_.hv->DomainFinishBuild(ctx, shell.domid);
  (void)co_await env_.hv->DomainUnpause(ctx, shell.domid);
}

sim::Co<lv::Result<hv::DomainId>> ChaosToolstack::Create(sim::ExecCtx ctx, VmConfig config) {
  // Accumulated locally and committed to breakdown_ at every exit so that
  // overlapping creations (concurrent jobs) do not clobber each other
  // mid-flight; last_breakdown() reports the last creation to finish.
  CreateBreakdown bd;
  // One trace row per creation; ExecutePhase/BootGuest spans land on it too
  // because the track rides in ctx. Async jobs get the job id in the row
  // name so overlapping creations of the same VM name stay distinguishable.
  trace::Tracer& tracer = trace::Tracer::Get();
  if (tracer.enabled()) {
    std::string row = ctx.job != 0
                          ? lv::StrFormat("vm:%s#j%lld", config.name.c_str(),
                                          (long long)ctx.job)
                          : lv::StrFormat("vm:%s", config.name.c_str());
    ctx = ctx.OnTrack(tracer.NewTrack(row));
  }
  trace::Span create_span(ctx.track, "vm.create");
  // Join the caller's causal flow (cluster Deploy, NodeApi job): this
  // create's row becomes one step of the operation's arc.
  tracer.Flow(ctx.track, "vm.create", ctx.op_root);
  const obs::OpRef op{ctx.op, ctx.op_root, 0};
  // Fault checkpoint (entry): injected transient faults and node death are
  // taken before any state is built, so there is nothing to roll back.
  if (env_.faults != nullptr && env_.faults->ShouldFailCreate()) {
    obs::FlightRecorder::Get().Record(ctx.node, op, "toolstack", "vm.create.fault",
                                      false);
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      env_.faults->node_crashed ? "node crashed"
                                                : "injected transient create fault");
  }
  lv::TimePoint create_start = env_.engine->now();
  lv::TimePoint t0 = create_start;
  trace::Span phase(ctx.track, "create.config");
  co_await ctx.Work(costs_.chaos_config_parse);
  phase.End();
  bd.config = env_.engine->now() - t0;

  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.toolstack");
  co_await ctx.Work(costs_.chaos_state_keeping);
  phase.End();
  bd.toolstack = env_.engine->now() - t0;

  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.hypervisor");
  auto shell = co_await ObtainShell(ctx, config);
  phase.End();
  bd.hypervisor = env_.engine->now() - t0;
  if (!shell.ok()) {
    breakdown_ = bd;
    co_return shell.error();
  }
  // Fault checkpoint (post-shell): a node that died while the shell was being
  // prepared aborts here, rolling the domain back through the same path a
  // failed device phase takes.
  if (env_.faults != nullptr && env_.faults->node_crashed) {
    // A pooled shell arrives with its devices pre-attached (that is the
    // point of the split toolstack), so the rollback must close them too.
    (void)co_await DestroyDevices(ctx, shell->domid, config);
    (void)co_await env_.hv->DomainDestroy(ctx, shell->domid);
    breakdown_ = bd;
    obs::FlightRecorder::Get().Record(ctx.node, op, "toolstack", "vm.rollback", false,
                                      shell->domid);
    co_return lv::Err(lv::ErrorCode::kUnavailable, "node crashed during create");
  }

  lv::Status exec = co_await ExecutePhase(ctx, *shell, config, config.image.kernel_size,
                                          /*is_restore=*/false, bd);
  if (exec.ok() && env_.faults != nullptr && env_.faults->node_crashed) {
    // Fault checkpoint (pre-boot): abort before the guest exists.
    exec = lv::Err(lv::ErrorCode::kUnavailable, "node crashed during create");
  }
  if (!exec.ok()) {
    // ExecutePhase may have attached devices (event channels, backend state)
    // before the abort; tear them down like a regular destroy would, or the
    // leak invariant trips on the next sweep.
    (void)co_await DestroyDevices(ctx, shell->domid, config);
    (void)co_await env_.hv->DomainDestroy(ctx, shell->domid);
    breakdown_ = bd;
    obs::FlightRecorder::Get().Record(ctx.node, op, "toolstack", "vm.rollback", false,
                                      shell->domid);
    co_return exec.error();
  }
  co_await BootGuest(ctx, *shell, config, /*resume=*/false);
  static metrics::Histogram& create_ms =
      metrics::GetHistogram("toolstack.chaos.create_ms", "ms");
  create_ms.RecordDuration(env_.engine->now() - create_start);
  LV_DEBUG(kMod, "created dom%lld (%s)", (long long)shell->domid, config.name.c_str());
  breakdown_ = bd;
  co_return shell->domid;
}

sim::Co<lv::Status> ChaosToolstack::DestroyDevices(sim::ExecCtx ctx, hv::DomainId domid,
                                                   const VmConfig& config) {
  if (use_noxs_) {
    if (config.image.wants_net && env_.netback != nullptr &&
        env_.netback->HasDevice(domid)) {
      (void)co_await env_.netback->NoxsDestroy(ctx, domid);
    }
    if (env_.sysctl != nullptr && env_.sysctl->HasDevice(domid)) {
      (void)co_await env_.sysctl->Destroy(ctx, domid);
    }
  } else {
    if (config.image.wants_net && env_.netback != nullptr &&
        env_.netback->HasDevice(domid)) {
      (void)co_await env_.netback->XsToolstackDestroy(ctx, client_.get(), domid, nullptr);
    }
    (void)co_await client_->Rm(ctx, lv::StrFormat("/local/domain/%lld", (long long)domid));
  }
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> ChaosToolstack::Destroy(sim::ExecCtx ctx, hv::DomainId domid) {
  trace::Span span(ctx.track, "vm.destroy");
  trace::Tracer::Get().Flow(ctx.track, "vm.destroy", ctx.op_root);
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  co_await ctx.Work(costs_.chaos_state_keeping);
  it->second.guest->Stop();
  (void)co_await DestroyDevices(ctx, domid, it->second.config);
  lv::Status destroyed = co_await env_.hv->DomainDestroy(ctx, domid);
  UntrackVm(domid);
  co_return destroyed;
}

sim::Co<lv::Status> ChaosToolstack::SuspendForMigration(sim::ExecCtx ctx,
                                                        hv::DomainId domid) {
  if (use_noxs_) {
    LV_CHECK_MSG(env_.sysctl != nullptr, "noxs suspend requires the sysctl device");
    co_return co_await env_.sysctl->RequestShutdown(ctx, domid,
                                                    hv::ShutdownReason::kSuspend);
  }
  // XS mode: the control/shutdown dance.
  lv::Status req = co_await client_->Write(
      ctx, lv::StrFormat("/local/domain/%lld/control/shutdown", (long long)domid),
      "suspend");
  if (!req.ok()) {
    co_return req;
  }
  while (true) {
    auto info = co_await env_.hv->DomainGetInfo(ctx, domid);
    if (!info.ok()) {
      co_return info.error();
    }
    if (info->state == hv::DomainState::kSuspended) {
      co_return lv::Status::Ok();
    }
    co_await env_.engine->Sleep(lv::Duration::Micros(500));
  }
}

sim::Co<lv::Result<Snapshot>> ChaosToolstack::Save(sim::ExecCtx ctx, hv::DomainId domid) {
  trace::Span span(ctx.track, "vm.save");
  lv::TimePoint save_start = env_.engine->now();
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  VmConfig config = it->second.config;
  co_await ctx.Work(costs_.chaos_state_keeping);
  lv::Status suspended = co_await SuspendForMigration(ctx, domid);
  if (!suspended.ok()) {
    co_return suspended.error();
  }
  co_await ctx.Work(costs_.snapshot_file_overhead);
  (void)co_await env_.hv->CopyFromDomain(ctx, domid, config.image.memory);
  (void)co_await DestroyDevices(ctx, domid, config);
  (void)co_await env_.hv->DomainDestroy(ctx, domid);
  UntrackVm(domid);
  static metrics::Histogram& save_ms = metrics::GetHistogram("toolstack.chaos.save_ms", "ms");
  save_ms.RecordDuration(env_.engine->now() - save_start);
  lv::Bytes memory = config.image.memory;
  co_return Snapshot{std::move(config), memory};
}

sim::Co<lv::Result<hv::DomainId>> ChaosToolstack::PrepareIncoming(sim::ExecCtx ctx,
                                                                  VmConfig config) {
  trace::Span span(ctx.track, "vm.prepare_incoming");
  co_await ctx.Work(costs_.chaos_config_parse);
  auto shell = co_await ObtainShell(ctx, config);
  if (!shell.ok()) {
    co_return shell.error();
  }
  // Record the pending shell; FinishIncoming completes it.
  pending_incoming_.emplace(shell->domid, *shell);
  co_return shell->domid;
}

sim::Co<lv::Status> ChaosToolstack::FinishIncoming(sim::ExecCtx ctx, hv::DomainId domid,
                                                   const Snapshot& snap) {
  trace::Span span(ctx.track, "vm.finish_incoming");
  auto it = pending_incoming_.find(domid);
  if (it == pending_incoming_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no pending incoming domain");
  }
  Shell shell = it->second;
  pending_incoming_.erase(it);
  // Restores accumulate onto the previous breakdown (matching the historical
  // behavior of writing into the member directly).
  CreateBreakdown bd = breakdown_;
  lv::Status exec = co_await ExecutePhase(ctx, shell, snap.config, snap.memory,
                                          /*is_restore=*/true, bd);
  breakdown_ = bd;
  if (!exec.ok()) {
    co_return exec;
  }
  co_await BootGuest(ctx, shell, snap.config, /*resume=*/true);
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> ChaosToolstack::TeardownAfterMigration(sim::ExecCtx ctx,
                                                           hv::DomainId domid) {
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  (void)co_await DestroyDevices(ctx, domid, it->second.config);
  lv::Status destroyed = co_await env_.hv->DomainDestroy(ctx, domid);
  UntrackVm(domid);
  co_return destroyed;
}

sim::Co<lv::Result<hv::DomainId>> ChaosToolstack::Restore(sim::ExecCtx ctx, Snapshot snap) {
  trace::Span span(ctx.track, "vm.restore");
  lv::TimePoint restore_start = env_.engine->now();
  auto domid = co_await PrepareIncoming(ctx, snap.config);
  if (!domid.ok()) {
    co_return domid;
  }
  lv::Status finished = co_await FinishIncoming(ctx, *domid, snap);
  if (!finished.ok()) {
    co_return finished.error();
  }
  static metrics::Histogram& restore_ms =
      metrics::GetHistogram("toolstack.chaos.restore_ms", "ms");
  restore_ms.RecordDuration(env_.engine->now() - restore_start);
  co_return *domid;
}

}  // namespace toolstack
