// HostEnv: the Dom0 runtime a toolstack operates in — hypervisor, store
// daemon (absent in noxs mode), back-ends, hotplug machinery, CPU placement.
// Assembled by core::Host; shared by xl, chaos, the chaos daemon and the
// migration daemon.
#pragma once

#include "src/devices/backend.h"
#include "src/devices/hotplug.h"
#include "src/devices/sysctl.h"
#include "src/faults/hooks.h"
#include "src/hv/hypervisor.h"
#include "src/net/switch.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/xenstore/daemon.h"

namespace toolstack {

struct HostEnv {
  sim::Engine* engine = nullptr;
  sim::CpuScheduler* cpu = nullptr;
  sim::CorePlacer* placer = nullptr;
  hv::Hypervisor* hv = nullptr;
  // XenStore-path machinery (null when the host runs pure noxs).
  xs::Daemon* store = nullptr;
  xdev::BackendDriver* netback = nullptr;
  xdev::BackendDriver* blkback = nullptr;
  xdev::SysctlBackend* sysctl = nullptr;
  xdev::ControlPages* control_pages = nullptr;
  xdev::HotplugRunner* bash_hotplug = nullptr;
  xdev::HotplugRunner* xendevd = nullptr;
  xnet::Switch* sw = nullptr;
  // §9 extension: share read-only pages between VMs of the same flavor.
  bool page_sharing = false;
  double page_sharing_fraction = 0.75;
  // Fault-injection hook state (owned by the Host; null only in stripped-down
  // test fixtures). Toolstack checkpoints consult it on every create.
  faults::FaultHooks* faults = nullptr;
};

}  // namespace toolstack
