#include "src/toolstack/xl.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace toolstack {

namespace {
constexpr const char* kMod = "xl";
}  // namespace

XlToolstack::XlToolstack(HostEnv env, Costs costs)
    : Toolstack(std::move(env)), costs_(costs) {
  LV_CHECK_MSG(env_.store != nullptr, "xl requires the XenStore");
  client_ = std::make_unique<xs::XsClient>(env_.engine, env_.store, hv::kDom0);
}

XlToolstack::~XlToolstack() = default;

sim::Co<lv::Status> XlToolstack::WriteGuestRecords(sim::ExecCtx ctx, hv::DomainId domid,
                                                   const VmConfig& config) {
  // The unique-name admission write (O(#domains) scan inside the store).
  lv::Status name_ok = co_await client_->WriteUniqueName(ctx, domid, config.name);
  if (!name_ok.ok()) {
    co_return name_ok;
  }
  std::string base = lv::StrFormat("/local/domain/%lld", (long long)domid);
  // Linux guests carry more store state than unikernels (balloon, vfb, rtc).
  int record_count = costs_.xl_xenstore_records;
  if (config.image.kind == guests::GuestKind::kTinyx) {
    record_count = costs_.xl_xenstore_records_tinyx;
  } else if (config.image.kind == guests::GuestKind::kDebian) {
    record_count = costs_.xl_xenstore_records_debian;
  }
  // The remaining records go through a transaction, as libxl does.
  co_return co_await xs::RunTransaction(
      ctx, client_.get(), /*max_retries=*/8, [&](xs::TxnId txn) -> sim::Co<lv::Status> {
        static const char* kRecords[] = {
            "/vm",          "/memory/target", "/memory/static-max", "/console/ring-ref",
            "/console/port", "/console/type",  "/cpu/0/availability", "/control/platform",
            "/control/shutdown", "/data",      "/device",            "/store/port",
            "/store/ring-ref",   "/image/ostype", "/image/kernel",  "/domid",
        };
        int written = 0;
        for (const char* rec : kRecords) {
          if (written >= record_count) {
            break;
          }
          lv::Status s = co_await client_->Write(ctx, base + rec, "x", txn);
          if (!s.ok()) {
            co_return s;
          }
          ++written;
        }
        // Any remainder beyond the named records (libxl writes more).
        for (; written < record_count; ++written) {
          lv::Status s =
              co_await client_->Write(ctx, base + lv::StrFormat("/extra/%d", written), "x",
                                      txn);
          if (!s.ok()) {
            co_return s;
          }
        }
        co_return lv::Status::Ok();
      });
}

sim::Co<lv::Status> XlToolstack::RemoveGuestRecords(sim::ExecCtx ctx, hv::DomainId domid) {
  std::string base = lv::StrFormat("/local/domain/%lld", (long long)domid);
  // libxl removes entries piecemeal before dropping the whole directory.
  for (int i = 0; i < costs_.xl_xenstore_teardown_records; ++i) {
    (void)co_await client_->Read(ctx, base + "/vm");
  }
  co_return co_await client_->Rm(ctx, base);
}

sim::Co<lv::Status> XlToolstack::WaitForState(sim::ExecCtx ctx, hv::DomainId domid,
                                              hv::DomainState state) {
  while (true) {
    auto info = co_await env_.hv->DomainGetInfo(ctx, domid);
    if (!info.ok()) {
      co_return info.error();
    }
    if (info->state == state) {
      co_return lv::Status::Ok();
    }
    co_await env_.engine->Sleep(lv::Duration::Micros(500));
  }
}

sim::Co<lv::Result<hv::DomainId>> XlToolstack::Create(sim::ExecCtx ctx, VmConfig config) {
  // Accumulated locally and committed to breakdown_ at every exit so that
  // overlapping creations (concurrent jobs) do not clobber each other
  // mid-flight; last_breakdown() reports the last creation to finish.
  CreateBreakdown bd;
  // Each creation gets its own trace row; every span below (and every
  // hypercall/store span further down the call chain) records onto it, so
  // the Fig. 5 phase breakdown is derivable from the trace alone. Async
  // jobs get the job id in the row name so overlapping creations of the
  // same VM name stay distinguishable.
  trace::Tracer& tracer = trace::Tracer::Get();
  if (tracer.enabled()) {
    std::string row = ctx.job != 0
                          ? lv::StrFormat("vm:%s#j%lld", config.name.c_str(),
                                          (long long)ctx.job)
                          : lv::StrFormat("vm:%s", config.name.c_str());
    ctx = ctx.OnTrack(tracer.NewTrack(row));
  }
  trace::Span create_span(ctx.track, "vm.create");
  // Join the caller's causal flow so this create renders as one step of the
  // operation's arc across tracks.
  tracer.Flow(ctx.track, "vm.create", ctx.op_root);
  // Fault checkpoint (entry): same contract as the chaos toolstack — injected
  // faults abort before any state exists.
  if (env_.faults != nullptr && env_.faults->ShouldFailCreate()) {
    obs::FlightRecorder::Get().Record(ctx.node, obs::OpRef{ctx.op, ctx.op_root, 0},
                                      "toolstack", "vm.create.fault", false);
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      env_.faults->node_crashed ? "node crashed"
                                                : "injected transient create fault");
  }
  lv::TimePoint create_start = env_.engine->now();
  lv::TimePoint t0 = create_start;

  // --- Config parsing ----------------------------------------------------------
  trace::Span phase(ctx.track, "create.config");
  co_await ctx.Work(costs_.xl_config_parse);
  phase.End();
  bd.config = env_.engine->now() - t0;

  // --- Toolstack state keeping ---------------------------------------------------
  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.toolstack");
  co_await ctx.Work(costs_.xl_state_keeping);
  auto domains = co_await env_.hv->ListDomains(ctx);
  if (!domains.ok()) {
    breakdown_ = bd;
    co_return domains.error();
  }
  // libxl scans its own records per existing domain (name collisions,
  // /var/lib/xl state).
  co_await ctx.Work(costs_.xl_per_domain_overhead *
                    static_cast<double>(domains->size()));
  phase.End();
  bd.toolstack = env_.engine->now() - t0;

  // --- Hypervisor reservation ---------------------------------------------------
  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.hypervisor");
  auto domid_r = co_await env_.hv->DomainCreate(ctx);
  if (!domid_r.ok()) {
    breakdown_ = bd;
    co_return domid_r.error();
  }
  hv::DomainId domid = *domid_r;
  int core = env_.placer->NextGuestCore();
  (void)co_await env_.hv->DomainSetMaxMem(ctx, domid, config.image.memory);
  (void)co_await env_.hv->VcpuInit(ctx, domid, std::vector<int>(config.vcpus, core));
  lv::Status mem = co_await env_.hv->PopulatePhysmap(ctx, domid, config.image.memory);
  if (!mem.ok()) {
    (void)co_await env_.hv->DomainDestroy(ctx, domid);
    breakdown_ = bd;
    co_return mem.error();
  }
  phase.End();
  bd.hypervisor = env_.engine->now() - t0;

  // --- XenStore records ------------------------------------------------------------
  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.xenstore");
  lv::Status records = co_await WriteGuestRecords(ctx, domid, config);
  phase.End();
  bd.xenstore = env_.engine->now() - t0;
  if (!records.ok()) {
    (void)co_await env_.hv->DomainDestroy(ctx, domid);
    breakdown_ = bd;
    co_return records.error();
  }

  // --- Devices ----------------------------------------------------------------------
  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.devices");
  co_await ctx.Work(costs_.misc_device_setup);
  if (config.image.wants_net && env_.netback != nullptr) {
    lv::Status s = co_await env_.netback->XsToolstackCreate(ctx, client_.get(), domid,
                                                            env_.bash_hotplug);
    if (!s.ok()) {
      breakdown_ = bd;
      co_return s.error();
    }
  }
  if (config.image.wants_block && env_.blkback != nullptr) {
    lv::Status s = co_await env_.blkback->XsToolstackCreate(ctx, client_.get(), domid,
                                                            env_.bash_hotplug);
    if (!s.ok()) {
      breakdown_ = bd;
      co_return s.error();
    }
  }
  phase.End();
  bd.devices = env_.engine->now() - t0;

  // --- Image build --------------------------------------------------------------------
  t0 = env_.engine->now();
  phase = trace::Span(ctx.track, "create.load");
  int64_t image_pages = lv::PagesFor(config.image.kernel_size);
  co_await ctx.Work(costs_.image_parse_per_page * static_cast<double>(image_pages));
  (void)co_await env_.hv->CopyToDomain(ctx, domid, config.image.kernel_size);
  phase.End();
  bd.load = env_.engine->now() - t0;

  // --- Boot -------------------------------------------------------------------------
  phase = trace::Span(ctx.track, "create.boot");
  VmRecord record;
  record.config = config;
  record.core = core;
  record.created_at = env_.engine->now();
  record.guest = std::make_unique<guests::Guest>(env_.engine, config.image, domid,
                                                 MakeBootEnv(core, /*use_store=*/true));
  env_.hv->FindDomain(domid)->set_start_fn(record.guest->MakeStartFn());
  TrackVm(domid, std::move(record));
  (void)co_await env_.hv->DomainFinishBuild(ctx, domid);
  (void)co_await env_.hv->DomainUnpause(ctx, domid);
  phase.End();
  static metrics::Histogram& create_ms = metrics::GetHistogram("toolstack.xl.create_ms", "ms");
  create_ms.RecordDuration(env_.engine->now() - create_start);
  LV_DEBUG(kMod, "created dom%lld (%s)", (long long)domid, config.name.c_str());
  breakdown_ = bd;
  co_return domid;
}

sim::Co<lv::Status> XlToolstack::Destroy(sim::ExecCtx ctx, hv::DomainId domid) {
  trace::Span span(ctx.track, "vm.destroy");
  trace::Tracer::Get().Flow(ctx.track, "vm.destroy", ctx.op_root);
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  co_await ctx.Work(costs_.xl_state_keeping);
  it->second.guest->Stop();
  if (it->second.config.image.wants_net && env_.netback != nullptr &&
      env_.netback->HasDevice(domid)) {
    (void)co_await env_.netback->XsToolstackDestroy(ctx, client_.get(), domid,
                                                    env_.bash_hotplug);
  }
  if (it->second.config.image.wants_block && env_.blkback != nullptr &&
      env_.blkback->HasDevice(domid)) {
    (void)co_await env_.blkback->XsToolstackDestroy(ctx, client_.get(), domid,
                                                    env_.bash_hotplug);
  }
  (void)co_await RemoveGuestRecords(ctx, domid);
  lv::Status destroyed = co_await env_.hv->DomainDestroy(ctx, domid);
  UntrackVm(domid);
  co_return destroyed;
}

sim::Co<lv::Result<Snapshot>> XlToolstack::Save(sim::ExecCtx ctx, hv::DomainId domid) {
  trace::Span span(ctx.track, "vm.save");
  lv::TimePoint save_start = env_.engine->now();
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  VmConfig config = it->second.config;
  co_await ctx.Work(costs_.xl_state_keeping);
  // Ask the guest to suspend through the store's control node.
  std::string control =
      lv::StrFormat("/local/domain/%lld/control/shutdown", (long long)domid);
  lv::Status req = co_await client_->Write(ctx, control, "suspend");
  if (!req.ok()) {
    co_return req.error();
  }
  lv::Status suspended = co_await WaitForState(ctx, domid, hv::DomainState::kSuspended);
  if (!suspended.ok()) {
    co_return suspended.error();
  }
  // libxc streams the guest memory to the save file.
  co_await ctx.Work(costs_.snapshot_file_overhead);
  (void)co_await env_.hv->CopyFromDomain(ctx, domid, config.image.memory);
  // Tear down devices and records, then the domain.
  if (config.image.wants_net && env_.netback != nullptr && env_.netback->HasDevice(domid)) {
    (void)co_await env_.netback->XsToolstackDestroy(ctx, client_.get(), domid,
                                                    env_.bash_hotplug);
  }
  if (config.image.wants_block && env_.blkback != nullptr &&
      env_.blkback->HasDevice(domid)) {
    (void)co_await env_.blkback->XsToolstackDestroy(ctx, client_.get(), domid,
                                                    env_.bash_hotplug);
  }
  (void)co_await RemoveGuestRecords(ctx, domid);
  (void)co_await env_.hv->DomainDestroy(ctx, domid);
  UntrackVm(domid);
  static metrics::Histogram& save_ms = metrics::GetHistogram("toolstack.xl.save_ms", "ms");
  save_ms.RecordDuration(env_.engine->now() - save_start);
  lv::Bytes memory = config.image.memory;
  co_return Snapshot{std::move(config), memory};
}

sim::Co<lv::Result<hv::DomainId>> XlToolstack::PrepareIncoming(sim::ExecCtx ctx,
                                                               VmConfig config) {
  trace::Span span(ctx.track, "vm.prepare_incoming");
  co_await ctx.Work(costs_.xl_config_parse + costs_.xl_state_keeping);
  auto domid_r = co_await env_.hv->DomainCreate(ctx);
  if (!domid_r.ok()) {
    co_return domid_r.error();
  }
  hv::DomainId domid = *domid_r;
  int core = env_.placer->NextGuestCore();
  (void)co_await env_.hv->DomainSetMaxMem(ctx, domid, config.image.memory);
  (void)co_await env_.hv->VcpuInit(ctx, domid, std::vector<int>(config.vcpus, core));
  lv::Status mem = co_await env_.hv->PopulatePhysmap(ctx, domid, config.image.memory);
  if (!mem.ok()) {
    (void)co_await env_.hv->DomainDestroy(ctx, domid);
    co_return mem.error();
  }
  lv::Status records = co_await WriteGuestRecords(ctx, domid, config);
  if (!records.ok()) {
    (void)co_await env_.hv->DomainDestroy(ctx, domid);
    co_return records.error();
  }
  if (config.image.wants_net && env_.netback != nullptr) {
    (void)co_await env_.netback->XsToolstackCreate(ctx, client_.get(), domid,
                                                   env_.bash_hotplug);
  }
  if (config.image.wants_block && env_.blkback != nullptr) {
    (void)co_await env_.blkback->XsToolstackCreate(ctx, client_.get(), domid,
                                                   env_.bash_hotplug);
  }
  pending_incoming_.emplace(domid, PendingIncoming{std::move(config), core});
  co_return domid;
}

sim::Co<lv::Status> XlToolstack::FinishIncoming(sim::ExecCtx ctx, hv::DomainId domid,
                                                const Snapshot& snap) {
  trace::Span span(ctx.track, "vm.finish_incoming");
  auto it = pending_incoming_.find(domid);
  if (it == pending_incoming_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no pending incoming domain");
  }
  PendingIncoming pending = std::move(it->second);
  pending_incoming_.erase(it);
  // Stream the memory image back in.
  co_await ctx.Work(costs_.snapshot_file_overhead);
  (void)co_await env_.hv->CopyToDomain(ctx, domid, snap.memory);

  VmRecord record;
  record.config = pending.config;
  record.core = pending.core;
  record.created_at = env_.engine->now();
  record.guest =
      std::make_unique<guests::Guest>(env_.engine, pending.config.image, domid,
                                      MakeBootEnv(pending.core, /*use_store=*/true));
  record.guest->set_resume(true);
  env_.hv->FindDomain(domid)->set_start_fn(record.guest->MakeStartFn());
  TrackVm(domid, std::move(record));
  (void)co_await env_.hv->DomainFinishBuild(ctx, domid);
  (void)co_await env_.hv->DomainUnpause(ctx, domid);
  co_return lv::Status::Ok();
}

sim::Co<lv::Result<hv::DomainId>> XlToolstack::Restore(sim::ExecCtx ctx, Snapshot snap) {
  trace::Span span(ctx.track, "vm.restore");
  lv::TimePoint restore_start = env_.engine->now();
  auto domid = co_await PrepareIncoming(ctx, snap.config);
  if (!domid.ok()) {
    co_return domid;
  }
  lv::Status finished = co_await FinishIncoming(ctx, *domid, snap);
  if (!finished.ok()) {
    co_return finished.error();
  }
  static metrics::Histogram& restore_ms =
      metrics::GetHistogram("toolstack.xl.restore_ms", "ms");
  restore_ms.RecordDuration(env_.engine->now() - restore_start);
  co_return *domid;
}

sim::Co<lv::Status> XlToolstack::SuspendForMigration(sim::ExecCtx ctx, hv::DomainId domid) {
  std::string control =
      lv::StrFormat("/local/domain/%lld/control/shutdown", (long long)domid);
  lv::Status req = co_await client_->Write(ctx, control, "suspend");
  if (!req.ok()) {
    co_return req;
  }
  co_return co_await WaitForState(ctx, domid, hv::DomainState::kSuspended);
}

sim::Co<lv::Status> XlToolstack::TeardownAfterMigration(sim::ExecCtx ctx,
                                                        hv::DomainId domid) {
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  VmConfig config = it->second.config;
  if (config.image.wants_net && env_.netback != nullptr && env_.netback->HasDevice(domid)) {
    (void)co_await env_.netback->XsToolstackDestroy(ctx, client_.get(), domid,
                                                    env_.bash_hotplug);
  }
  if (config.image.wants_block && env_.blkback != nullptr &&
      env_.blkback->HasDevice(domid)) {
    (void)co_await env_.blkback->XsToolstackDestroy(ctx, client_.get(), domid,
                                                    env_.bash_hotplug);
  }
  (void)co_await RemoveGuestRecords(ctx, domid);
  lv::Status destroyed = co_await env_.hv->DomainDestroy(ctx, domid);
  UntrackVm(domid);
  co_return destroyed;
}

}  // namespace toolstack
