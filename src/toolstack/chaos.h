// ChaosToolstack: the paper's lean replacement for xl/libxl (§5.1-§5.2),
// configurable along the two axes of Figure 9:
//
//   * store:  XenStore ("chaos [XS]")  vs  noxs ("chaos [NoXS]")
//   * split:  direct creation          vs  shell pool via the chaos daemon
//
// chaos + noxs + split toolstack = LightVM.
#pragma once

#include <memory>

#include "src/toolstack/chaos_daemon.h"
#include "src/toolstack/costs.h"
#include "src/toolstack/toolstack.h"

namespace toolstack {

class ChaosToolstack : public Toolstack {
 public:
  // `daemon` enables the split toolstack (may be null). In noxs mode the
  // HostEnv's store may be null; in XS mode it must be present.
  ChaosToolstack(HostEnv env, Costs costs, bool use_noxs, ChaosDaemon* daemon);
  ~ChaosToolstack() override;

  const char* name() const override;

  sim::Co<lv::Result<hv::DomainId>> Create(sim::ExecCtx ctx, VmConfig config) override;
  sim::Co<lv::Status> Destroy(sim::ExecCtx ctx, hv::DomainId domid) override;
  sim::Co<lv::Result<Snapshot>> Save(sim::ExecCtx ctx, hv::DomainId domid) override;
  sim::Co<lv::Result<hv::DomainId>> Restore(sim::ExecCtx ctx, Snapshot snap) override;

  sim::Co<lv::Result<hv::DomainId>> PrepareIncoming(sim::ExecCtx ctx,
                                                    VmConfig config) override;
  sim::Co<lv::Status> FinishIncoming(sim::ExecCtx ctx, hv::DomainId domid,
                                     const Snapshot& snap) override;
  sim::Co<lv::Status> SuspendForMigration(sim::ExecCtx ctx, hv::DomainId domid) override;
  sim::Co<lv::Status> TeardownAfterMigration(sim::ExecCtx ctx,
                                             hv::DomainId domid) override;

  bool use_noxs() const { return use_noxs_; }
  bool split() const { return daemon_ != nullptr; }

 private:
  // Obtains a shell: from the pool when split, built inline otherwise.
  sim::Co<lv::Result<Shell>> ObtainShell(sim::ExecCtx ctx, const VmConfig& config);
  // Executes the per-VM phase on a shell: records/device pages, image load.
  // Accumulates phase timings into `bd` (frame-local in the caller, so
  // concurrent creations do not clobber each other's breakdown).
  sim::Co<lv::Status> ExecutePhase(sim::ExecCtx ctx, Shell& shell, const VmConfig& config,
                                   lv::Bytes payload, bool is_restore,
                                   CreateBreakdown& bd);
  sim::Co<lv::Status> DestroyDevices(sim::ExecCtx ctx, hv::DomainId domid,
                                     const VmConfig& config);
  // Installs the guest and unpauses.
  sim::Co<void> BootGuest(sim::ExecCtx ctx, const Shell& shell, const VmConfig& config,
                          bool resume);

  Costs costs_;
  bool use_noxs_;
  ChaosDaemon* daemon_;
  std::unique_ptr<xs::XsClient> client_;  // XS mode only
  std::unordered_map<hv::DomainId, Shell> pending_incoming_;
};

}  // namespace toolstack
