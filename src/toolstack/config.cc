#include "src/toolstack/config.h"

#include <cstdlib>

#include "src/base/strings.h"

namespace toolstack {

lv::Result<guests::GuestImage> ImageByName(const std::string& name) {
  if (name == "daytime") {
    return guests::DaytimeUnikernel();
  }
  if (name == "noop") {
    return guests::NoopUnikernel();
  }
  if (name == "minipython") {
    return guests::MinipythonUnikernel();
  }
  if (name == "clickos-fw") {
    return guests::ClickOsFirewall();
  }
  if (name == "tls-unikernel") {
    return guests::TlsUnikernel();
  }
  if (name == "tinyx") {
    return guests::TinyxNoop();
  }
  if (name == "tinyx-micropython") {
    return guests::TinyxMicropython();
  }
  if (name == "tinyx-tls") {
    return guests::TinyxTls();
  }
  if (name == "debian") {
    return guests::DebianVm();
  }
  if (name == "debian-micropython") {
    return guests::DebianMicropython();
  }
  return lv::Err(lv::ErrorCode::kNotFound, "unknown image: " + name);
}

namespace {

// Strips whitespace and an optional trailing comment from a line.
std::string StripLine(std::string line) {
  size_t comment = line.find('#');
  if (comment != std::string::npos) {
    line = line.substr(0, comment);
  }
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = line.find_last_not_of(" \t\r");
  return line.substr(begin, end - begin + 1);
}

// Removes surrounding quotes/brackets from a value token.
std::string Unquote(std::string value) {
  while (!value.empty() && (value.front() == '"' || value.front() == '\'' ||
                            value.front() == '[' || value.front() == ' ')) {
    value.erase(value.begin());
  }
  while (!value.empty() && (value.back() == '"' || value.back() == '\'' ||
                            value.back() == ']' || value.back() == ' ')) {
    value.pop_back();
  }
  return value;
}

}  // namespace

lv::Result<VmConfig> ParseVmConfig(const std::string& text) {
  VmConfig config;
  std::string kernel;
  int64_t memory_mib = -1;
  for (const std::string& raw : lv::Split(text, '\n')) {
    std::string line = StripLine(raw);
    if (line.empty()) {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "malformed line: " + line);
    }
    std::string key = StripLine(line.substr(0, eq));
    std::string value = Unquote(StripLine(line.substr(eq + 1)));
    if (key == "name") {
      config.name = value;
    } else if (key == "kernel") {
      kernel = value;
    } else if (key == "memory") {
      memory_mib = std::atoll(value.c_str());
      if (memory_mib <= 0) {
        return lv::Err(lv::ErrorCode::kInvalidArgument, "bad memory value: " + value);
      }
    } else if (key == "vcpus") {
      config.vcpus = static_cast<int>(std::atoll(value.c_str()));
      if (config.vcpus <= 0) {
        return lv::Err(lv::ErrorCode::kInvalidArgument, "bad vcpus value: " + value);
      }
    }
    // Other keys (vif, disk, on_crash, ...) are accepted and ignored, as xl
    // tolerates unknown extras in many positions.
  }
  if (config.name.empty()) {
    return lv::Err(lv::ErrorCode::kInvalidArgument, "config missing 'name'");
  }
  if (kernel.empty()) {
    return lv::Err(lv::ErrorCode::kInvalidArgument, "config missing 'kernel'");
  }
  auto image = ImageByName(kernel);
  if (!image.ok()) {
    return image.error();
  }
  config.image = *image;
  if (memory_mib > 0) {
    config.image.memory = lv::Bytes::MiB(memory_mib);
  }
  return config;
}

}  // namespace toolstack
