#include "src/toolstack/migration.h"

#include "src/base/log.h"

namespace toolstack {

sim::Co<lv::Status> Migrate(Toolstack* local, sim::ExecCtx local_ctx, hv::DomainId domid,
                            MigrationDaemon* remote, xnet::Link* link) {
  const VmConfig* config_ptr = local->config_of(domid);
  if (config_ptr == nullptr) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  VmConfig config = *config_ptr;

  // Open the TCP connection to the remote migration daemon and stream the
  // guest configuration.
  xnet::TcpConnection conn(link);
  co_await conn.Connect();
  co_await conn.Send(kMigrationConfigSize);

  // Remote side pre-creates the domain and its devices.
  auto remote_domid =
      co_await remote->toolstack()->PrepareIncoming(remote->ctx(), config);
  if (!remote_domid.ok()) {
    co_return remote_domid.error();
  }

  // Suspend the guest (sysctl ioctl under noxs, control node under the XS
  // paths), then stream its memory.
  lv::Status suspended = co_await local->SuspendForMigration(local_ctx, domid);
  if (!suspended.ok()) {
    co_return suspended;
  }
  lv::Bytes memory = config.image.memory;
  (void)co_await local->env().hv->CopyFromDomain(local_ctx, domid, memory);
  co_await conn.Send(memory);

  // Remote completes the restore and resumes the guest. The snapshot is a
  // named local: passing a temporary by reference into an awaited coroutine
  // miscompiles on GCC 12 (premature temporary destruction).
  Snapshot snapshot{config, memory};
  lv::Status finished = co_await remote->toolstack()->FinishIncoming(
      remote->ctx(), *remote_domid, snapshot);
  if (!finished.ok()) {
    co_return finished;
  }
  remote->count_received();

  // Source tears down its copy.
  co_return co_await local->TeardownAfterMigration(local_ctx, domid);
}

}  // namespace toolstack
