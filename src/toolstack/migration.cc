#include "src/toolstack/migration.h"

#include "src/base/log.h"
#include "src/metrics/metrics.h"

namespace toolstack {

sim::Co<lv::Result<hv::DomainId>> Migrate(Toolstack* local, sim::ExecCtx local_ctx,
                                          hv::DomainId domid, MigrationDaemon* remote,
                                          xnet::Link* link) {
  const VmConfig* config_ptr = local->config_of(domid);
  if (config_ptr == nullptr) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM");
  }
  VmConfig config = *config_ptr;
  if (link->partitioned()) {
    // Fail before any remote state exists: a partitioned fabric refuses the
    // connection, so there is nothing to roll back on either side.
    co_return lv::Err(lv::ErrorCode::kUnavailable, "migration fabric partitioned");
  }
  lv::TimePoint migrate_start = local->env().engine->now();

  // Open the TCP connection to the remote migration daemon and stream the
  // guest configuration.
  xnet::TcpConnection conn(link);
  co_await conn.Connect();
  co_await conn.Send(kMigrationConfigSize);

  // Remote side pre-creates the domain and its devices.
  auto remote_domid =
      co_await remote->toolstack()->PrepareIncoming(remote->ctx(), config);
  if (!remote_domid.ok()) {
    co_return remote_domid.error();
  }

  // Suspend the guest (sysctl ioctl under noxs, control node under the XS
  // paths), then stream its memory.
  lv::Status suspended = co_await local->SuspendForMigration(local_ctx, domid);
  if (!suspended.ok()) {
    co_return suspended.error();
  }
  lv::Bytes memory = config.image.memory;
  (void)co_await local->env().hv->CopyFromDomain(local_ctx, domid, memory);
  lv::TimePoint stream_start = local->env().engine->now();
  co_await conn.Send(memory);
  lv::Duration stream_time = local->env().engine->now() - stream_start;
  static metrics::Counter& streamed =
      metrics::GetCounter("toolstack.migration.bytes_streamed");
  streamed.Inc(static_cast<double>(memory.count()));
  if (stream_time.ns() > 0) {
    static metrics::Histogram& gbps =
        metrics::GetHistogram("toolstack.migration.stream_gbps", "Gbit/s");
    gbps.Record(static_cast<double>(memory.count()) * 8.0 /
                static_cast<double>(stream_time.ns()));
  }

  // Remote completes the restore and resumes the guest. The snapshot is a
  // named local: passing a temporary by reference into an awaited coroutine
  // miscompiles on GCC 12 (premature temporary destruction).
  Snapshot snapshot{config, memory};
  lv::Status finished = co_await remote->toolstack()->FinishIncoming(
      remote->ctx(), *remote_domid, snapshot);
  if (!finished.ok()) {
    co_return finished.error();
  }
  remote->count_received();

  // Source tears down its copy.
  lv::Status torn_down = co_await local->TeardownAfterMigration(local_ctx, domid);
  static metrics::Histogram& migrate_ms =
      metrics::GetHistogram("toolstack.migration.migrate_ms", "ms");
  migrate_ms.RecordDuration(local->env().engine->now() - migrate_start);
  if (!torn_down.ok()) {
    co_return torn_down.error();
  }
  co_return *remote_domid;
}

}  // namespace toolstack
