// The chaos daemon: the background half of the split toolstack (paper §5.2).
//
// "The prepare phase is responsible for functionality common to all VMs such
//  as having the hypervisor generate an ID ... and allocating CPU resources
//  to the VM. We offload this functionality to the chaos daemon, which
//  generates a number of VM shells and places them in a pool. The daemon
//  ensures that there is always a certain (configurable) number of shells
//  available."
//
// A shell is a pre-created domain: id, memory reservation, vCPUs, and
// pre-created (but not yet initialized) devices. Shells come in flavors
// keyed by memory size, "similar to OpenStack's flavors".
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "src/toolstack/costs.h"
#include "src/toolstack/env.h"

namespace toolstack {

struct Shell {
  hv::DomainId domid = hv::kInvalidDomain;
  lv::Bytes memory;
  int core = 0;
  bool has_net = false;
  // noxs mode: device-page entries returned by the back-ends at pre-create.
  std::optional<hv::DeviceInfo> net_info;
  std::optional<hv::DeviceInfo> sysctl_info;
  // XenStore mode: back-end entries already written.
  bool xs_devices_precreated = false;
};

// Builds one shell synchronously on `ctx` (used by the daemon in the
// background and by chaos inline when the pool is empty).
sim::Co<lv::Result<Shell>> PrepareShell(HostEnv& env, const Costs& costs, sim::ExecCtx ctx,
                                        lv::Bytes memory, bool wants_net, bool use_noxs,
                                        xs::XsClient* xs_client);

class ChaosDaemon {
 public:
  struct Flavor {
    lv::Bytes memory;
    bool wants_net = true;
    int target = 4;  // shells to keep pooled
  };

  ChaosDaemon(HostEnv env, Costs costs, bool use_noxs);
  ~ChaosDaemon();

  void AddFlavor(Flavor flavor);
  const std::vector<Flavor>& flavors() const { return flavors_; }

  // Starts the background refill loop on a Dom0 execution context.
  void Start(sim::ExecCtx daemon_ctx);
  void Stop();

  // Takes a pooled shell matching (memory, net), if any; triggers a refill.
  std::optional<Shell> TryTake(lv::Bytes memory, bool wants_net);

  int64_t pool_size() const { return static_cast<int64_t>(pool_.size()); }
  int64_t shells_built() const { return shells_built_; }
  bool use_noxs() const { return use_noxs_; }

 private:
  sim::Co<void> RefillLoop(sim::ExecCtx ctx);
  // The flavor most below target, if any.
  std::optional<Flavor> NextDeficit() const;

  HostEnv env_;
  Costs costs_;
  bool use_noxs_;
  std::vector<Flavor> flavors_;
  std::deque<Shell> pool_;
  std::unique_ptr<xs::XsClient> xs_client_;
  std::unique_ptr<sim::Semaphore> work_;
  bool running_ = false;
  int64_t shells_built_ = 0;
  // The running RefillLoop frame. Owned (not detached onto the engine) so
  // that teardown with the loop still parked on `work_` destroys the frame
  // instead of leaking it. Declared last: it is destroyed before the
  // semaphore holding its wakeup handle.
  sim::Co<void> loop_;
};

}  // namespace toolstack
