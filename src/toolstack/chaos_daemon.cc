#include "src/toolstack/chaos_daemon.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

namespace toolstack {

namespace {
constexpr const char* kMod = "chaosd";
}  // namespace

sim::Co<lv::Result<Shell>> PrepareShell(HostEnv& env, const Costs& costs, sim::ExecCtx ctx,
                                        lv::Bytes memory, bool wants_net, bool use_noxs,
                                        xs::XsClient* xs_client) {
  (void)costs;
  trace::Span span(ctx.track, "shell.prepare");
  Shell shell;
  shell.memory = memory;
  shell.has_net = wants_net;

  // 1-4: hypervisor reservation, compute allocation, memory reservation and
  // preparation (Figure 8, prepare phase).
  auto domid_r = co_await env.hv->DomainCreate(ctx);
  if (!domid_r.ok()) {
    co_return domid_r.error();
  }
  shell.domid = *domid_r;
  shell.core = env.placer->NextGuestCore();
  (void)co_await env.hv->DomainSetMaxMem(ctx, shell.domid, memory);
  // Note: braced-init-list arguments inside co_await trip GCC 12 (PR105426).
  std::vector<int> cores(1, shell.core);
  (void)co_await env.hv->VcpuInit(ctx, shell.domid, std::move(cores));
  lv::Status mem = lv::Status::Ok();
  if (env.page_sharing) {
    std::string key = lv::StrFormat("flavor-%lld", (long long)memory.count());
    mem = co_await env.hv->PopulatePhysmapShared(ctx, shell.domid, memory, key,
                                                 env.page_sharing_fraction);
  } else {
    mem = co_await env.hv->PopulatePhysmap(ctx, shell.domid, memory);
  }
  if (!mem.ok()) {
    (void)co_await env.hv->DomainDestroy(ctx, shell.domid);
    co_return mem.error();
  }

  // 5: device pre-creation.
  if (use_noxs) {
    if (wants_net && env.netback != nullptr) {
      auto info = co_await env.netback->NoxsCreate(ctx, shell.domid);
      if (!info.ok()) {
        (void)co_await env.hv->DomainDestroy(ctx, shell.domid);
        co_return info.error();
      }
      shell.net_info = *info;
    }
    if (env.sysctl != nullptr) {
      auto info = co_await env.sysctl->Create(ctx, shell.domid);
      if (info.ok()) {
        shell.sysctl_info = *info;
      }
    }
  } else if (wants_net && env.netback != nullptr && xs_client != nullptr) {
    lv::Status s =
        co_await env.netback->XsToolstackCreate(ctx, xs_client, shell.domid, nullptr);
    if (!s.ok()) {
      (void)co_await env.hv->DomainDestroy(ctx, shell.domid);
      co_return s.error();
    }
    shell.xs_devices_precreated = true;
  }
  co_return shell;
}

ChaosDaemon::ChaosDaemon(HostEnv env, Costs costs, bool use_noxs)
    : env_(std::move(env)), costs_(costs), use_noxs_(use_noxs) {
  work_ = std::make_unique<sim::Semaphore>(env_.engine, 0);
  if (!use_noxs_ && env_.store != nullptr) {
    xs_client_ = std::make_unique<xs::XsClient>(env_.engine, env_.store, hv::kDom0);
  }
}

ChaosDaemon::~ChaosDaemon() = default;

void ChaosDaemon::AddFlavor(Flavor flavor) {
  flavors_.push_back(flavor);
  if (running_) {
    for (int i = 0; i < flavor.target; ++i) {
      work_->Release();
    }
  }
}

void ChaosDaemon::Start(sim::ExecCtx daemon_ctx) {
  LV_CHECK_MSG(!running_, "chaos daemon already running");
  running_ = true;
  // Seed the work queue with the total initial deficit.
  int64_t deficit = 0;
  for (const Flavor& f : flavors_) {
    deficit += f.target;
  }
  for (int64_t i = 0; i < deficit; ++i) {
    work_->Release();
  }
  // The refill loop runs on its own trace row so pooled-shell preparation is
  // visibly asynchronous to the creations it feeds.
  daemon_ctx = daemon_ctx.OnTrack(trace::Tracer::Get().NewTrack("chaosd"));
  loop_ = RefillLoop(daemon_ctx);
  loop_.Start();
}

void ChaosDaemon::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  work_->Release();  // Wake the loop so it can observe the stop.
  // Drain: step the engine until the loop frame completes, so that no queued
  // event still references it. A suspended frame cannot be destroyed safely
  // while a wakeup for it is in flight, and resuming it after this daemon
  // dies would touch freed members. Bounded: the wakeup above — or, for a
  // refill already in flight, its completion — leads the loop straight to
  // the running_ check and out. Events for other actors that fire during the
  // drain are safe by construction: Stop() runs while the host's services
  // are still alive, and frames of previously torn-down actors self-
  // terminate via their shared liveness tokens.
  while (!loop_.done() && env_.engine->Step()) {
  }
}

std::optional<ChaosDaemon::Flavor> ChaosDaemon::NextDeficit() const {
  std::optional<Flavor> best;
  int64_t best_deficit = 0;
  for (const Flavor& f : flavors_) {
    int64_t pooled = 0;
    for (const Shell& s : pool_) {
      if (s.memory == f.memory && s.has_net == f.wants_net) {
        ++pooled;
      }
    }
    int64_t deficit = f.target - pooled;
    if (deficit > best_deficit) {
      best_deficit = deficit;
      best = f;
    }
  }
  return best;
}

sim::Co<void> ChaosDaemon::RefillLoop(sim::ExecCtx ctx) {
  while (true) {
    co_await work_->Acquire();
    if (!running_) {
      break;
    }
    std::optional<Flavor> flavor = NextDeficit();
    if (!flavor.has_value()) {
      continue;  // Pool already at target.
    }
    trace::Span refill(ctx.track, "chaosd.refill");
    auto shell = co_await PrepareShell(env_, costs_, ctx, flavor->memory,
                                       flavor->wants_net, use_noxs_, xs_client_.get());
    refill.End();
    if (shell.ok()) {
      pool_.push_back(*shell);
      ++shells_built_;
      static metrics::Counter& built = metrics::GetCounter("toolstack.chaosd.shells_built");
      static metrics::Gauge& pooled = metrics::GetGauge("toolstack.chaosd.pool_size");
      built.Inc();
      pooled.Set(static_cast<double>(pool_.size()));
      LV_DEBUG(kMod, "pooled shell dom%lld (%lld pooled)", (long long)shell->domid,
               (long long)pool_.size());
    } else {
      LV_WARN(kMod, "shell preparation failed: %s", shell.error().message.c_str());
    }
  }
}

std::optional<Shell> ChaosDaemon::TryTake(lv::Bytes memory, bool wants_net) {
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    if (it->memory == memory && it->has_net == wants_net) {
      Shell shell = *it;
      pool_.erase(it);
      static metrics::Gauge& pooled = metrics::GetGauge("toolstack.chaosd.pool_size");
      pooled.Set(static_cast<double>(pool_.size()));
      if (running_) {
        work_->Release();  // Refill in the background.
      }
      return shell;
    }
  }
  return std::nullopt;
}

}  // namespace toolstack
