// Toolstack cost model.
//
// xl/libxl carries years of generality: JSON config handling, libxl ctx
// setup, domain-list scans and persistent state under /var/lib/xl. chaos
// "is much leaner than the standard xl/libxl" (§5): a fixed-format config
// and no global bookkeeping.
#pragma once

#include "src/base/time.h"

namespace toolstack {

struct Costs {
  // --- xl / libxl -----------------------------------------------------------
  // Parsing the VM config file + building the libxl JSON domain object.
  lv::Duration xl_config_parse = lv::Duration::Millis(10);
  // libxl ctx init, lock files, /var/lib/xl bookkeeping per command.
  lv::Duration xl_state_keeping = lv::Duration::Millis(8);
  // Additional per-existing-domain bookkeeping (domain list scans, name
  // lookups in libxl's own records) — one source of xl's growth with N.
  lv::Duration xl_per_domain_overhead = lv::Duration::Micros(700);
  // Number of non-device XenStore records xl writes for a new guest
  // ("the VM creation process alone can require interaction with over 30
  // XenStore entries" — devices add their own on top).
  int xl_xenstore_records = 24;
  // Linux guests carry more per-VM state in the store (balloon targets,
  // vfb/console trees, rtc, feature flags).
  int xl_xenstore_records_tinyx = 32;
  int xl_xenstore_records_debian = 44;
  // Records removed at destroy/save teardown.
  int xl_xenstore_teardown_records = 10;

  // --- chaos / libchaos -------------------------------------------------------
  // Fixed-format config parse.
  lv::Duration chaos_config_parse = lv::Duration::Micros(60);
  // Minimal per-command state keeping.
  lv::Duration chaos_state_keeping = lv::Duration::Micros(40);
  // chaos still writes a handful of store records when running with the
  // XenStore (chaos [XS] mode).
  int chaos_xenstore_records = 8;

  // --- Shared ------------------------------------------------------------------
  // Parsing/validating the kernel image: per 4 KiB page of image read from
  // the (ram)disk. Together with hv::Costs::per_page_copy this produces the
  // linear boot-vs-image-size growth of Figure 2.
  lv::Duration image_parse_per_page = lv::Duration::Nanos(900);
  // Console setup, vfb and misc per-VM device glue outside net/block.
  lv::Duration misc_device_setup = lv::Duration::Millis(1);
  // Writing a snapshot file header / opening the save file on the ramdisk.
  lv::Duration snapshot_file_overhead = lv::Duration::Millis(8);
};

}  // namespace toolstack
