#include "src/toolstack/toolstack.h"

namespace toolstack {

guests::BootEnv Toolstack::MakeBootEnv(int core, bool use_store) {
  guests::BootEnv env;
  env.cpu = env_.cpu;
  env.hv = env_.hv;
  env.store = use_store ? env_.store : nullptr;
  env.netback = env_.netback;
  env.blkback = env_.blkback;
  env.sysctl = env_.sysctl;
  env.peers_on_core = [this, core] { return PeersOnCore(core); };
  return env;
}

int64_t Toolstack::PeersOnCore(int core) const {
  auto it = core_population_.find(core);
  return it == core_population_.end() ? 0 : it->second;
}

void Toolstack::TrackVm(hv::DomainId domid, VmRecord record) {
  ++core_population_[record.core];
  vms_.emplace(domid, std::move(record));
}

void Toolstack::UntrackVm(hv::DomainId domid) {
  auto it = vms_.find(domid);
  if (it == vms_.end()) {
    return;
  }
  auto pop = core_population_.find(it->second.core);
  if (pop != core_population_.end() && pop->second > 0) {
    --pop->second;
  }
  vms_.erase(it);
}

}  // namespace toolstack
