// VM configuration file parsing — the "config" phase of Figure 5.
//
// xl reads an xl.cfg-style file:
//
//     name   = "web0"
//     kernel = "daytime"        # image name from the registry
//     memory = 4                # MiB override (optional)
//     vcpus  = 1
//     vif    = [ "bridge=xenbr0" ]
//
// chaos reads the same syntax but only the four keys it needs. The parser is
// a real tokenizer (not simulated): the simulated parse *cost* is still
// charged by the toolstacks, while this code provides the functional path
// from text to VmConfig for the CLI and tests.
#pragma once

#include <string>

#include "src/base/result.h"
#include "src/guests/image.h"
#include "src/toolstack/toolstack.h"

namespace toolstack {

// Looks up a guest image by its registry name ("daytime", "noop",
// "minipython", "clickos-fw", "tls-unikernel", "tinyx", "tinyx-micropython",
// "tinyx-tls", "debian", "debian-micropython").
lv::Result<guests::GuestImage> ImageByName(const std::string& name);

// Parses an xl.cfg-style document into a VmConfig. Unknown keys are ignored
// (as xl does for many); `name` and `kernel` are required.
lv::Result<VmConfig> ParseVmConfig(const std::string& text);

}  // namespace toolstack
