// XlToolstack: models xl + libxl + libxc on stock Xen — the baseline whose
// scaling problems §4.2 dissects. Heavy config parsing, O(#domains)
// bookkeeping, tens of XenStore records per VM, synchronous bash hotplug
// scripts, and save/restore through the store.
#pragma once

#include <memory>

#include "src/toolstack/costs.h"
#include "src/toolstack/toolstack.h"

namespace toolstack {

class XlToolstack : public Toolstack {
 public:
  XlToolstack(HostEnv env, Costs costs);
  ~XlToolstack() override;

  const char* name() const override { return "xl"; }

  sim::Co<lv::Result<hv::DomainId>> Create(sim::ExecCtx ctx, VmConfig config) override;
  sim::Co<lv::Status> Destroy(sim::ExecCtx ctx, hv::DomainId domid) override;
  sim::Co<lv::Result<Snapshot>> Save(sim::ExecCtx ctx, hv::DomainId domid) override;
  sim::Co<lv::Result<hv::DomainId>> Restore(sim::ExecCtx ctx, Snapshot snap) override;

  sim::Co<lv::Result<hv::DomainId>> PrepareIncoming(sim::ExecCtx ctx,
                                                    VmConfig config) override;
  sim::Co<lv::Status> FinishIncoming(sim::ExecCtx ctx, hv::DomainId domid,
                                     const Snapshot& snap) override;
  sim::Co<lv::Status> SuspendForMigration(sim::ExecCtx ctx, hv::DomainId domid) override;
  sim::Co<lv::Status> TeardownAfterMigration(sim::ExecCtx ctx,
                                             hv::DomainId domid) override;

 private:
  struct PendingIncoming {
    VmConfig config;
    int core = 0;
  };
  // Writes the ~20 non-device store records for a new guest.
  sim::Co<lv::Status> WriteGuestRecords(sim::ExecCtx ctx, hv::DomainId domid,
                                        const VmConfig& config);
  sim::Co<lv::Status> RemoveGuestRecords(sim::ExecCtx ctx, hv::DomainId domid);
  // Polls the hypervisor until the domain reaches `state` (xl-style wait).
  sim::Co<lv::Status> WaitForState(sim::ExecCtx ctx, hv::DomainId domid,
                                   hv::DomainState state);

  Costs costs_;
  std::unique_ptr<xs::XsClient> client_;
  std::unordered_map<hv::DomainId, PendingIncoming> pending_incoming_;
};

}  // namespace toolstack
