// Toolstack interface: the Dom0 control-plane software that creates, saves,
// restores, migrates and destroys VMs. Two implementations:
//
//  * XlToolstack — models xl/libxl/libxc on stock Xen: JSON config parsing,
//    O(#domains) bookkeeping, ~tens of XenStore records per VM, synchronous
//    bash hotplug scripts.
//  * ChaosToolstack — the paper's replacement (§5): lean parsing, minimal
//    state, optional noxs (no XenStore) and optional split toolstack
//    (pre-created domain shells from the chaos daemon).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/guests/guest.h"
#include "src/toolstack/env.h"

namespace toolstack {

struct VmConfig {
  std::string name;
  guests::GuestImage image;
  int vcpus = 1;
};

// Phase breakdown of one VM creation, the Figure 5 categories.
struct CreateBreakdown {
  lv::Duration config;      // parsing the configuration file
  lv::Duration toolstack;   // internal information and state keeping
  lv::Duration hypervisor;  // reserving/preparing memory, vCPUs, ...
  lv::Duration xenstore;    // writing guest information to the store
  lv::Duration devices;     // creating and configuring virtual devices
  lv::Duration load;        // parsing the kernel image, loading it into memory

  lv::Duration total() const {
    return config + toolstack + hypervisor + xenstore + devices + load;
  }
};

// A saved VM checkpoint (the content of the save file on the ramdisk).
struct Snapshot {
  VmConfig config;
  lv::Bytes memory;  // guest memory stream size
};

class Toolstack {
 public:
  explicit Toolstack(HostEnv env) : env_(std::move(env)) {}
  virtual ~Toolstack() = default;
  Toolstack(const Toolstack&) = delete;
  Toolstack& operator=(const Toolstack&) = delete;

  virtual const char* name() const = 0;

  // Creates and boots a VM. Returns once the domain is unpaused (the guest
  // boots asynchronously; use guest()->WaitBooted()).
  virtual sim::Co<lv::Result<hv::DomainId>> Create(sim::ExecCtx ctx, VmConfig config) = 0;
  virtual sim::Co<lv::Status> Destroy(sim::ExecCtx ctx, hv::DomainId domid) = 0;
  // Checkpoint to the (ram)disk; the domain is torn down afterwards, like
  // `xl save` / `chaos save`.
  virtual sim::Co<lv::Result<Snapshot>> Save(sim::ExecCtx ctx, hv::DomainId domid) = 0;
  virtual sim::Co<lv::Result<hv::DomainId>> Restore(sim::ExecCtx ctx, Snapshot snap) = 0;

  // Migration protocol pieces (paper §5.1): the remote migration daemon
  // pre-creates the domain and devices from the streamed configuration, the
  // source suspends the guest and streams its memory, the remote completes
  // the restore and the source tears its copy down.
  virtual sim::Co<lv::Result<hv::DomainId>> PrepareIncoming(sim::ExecCtx ctx,
                                                            VmConfig config) = 0;
  virtual sim::Co<lv::Status> FinishIncoming(sim::ExecCtx ctx, hv::DomainId domid,
                                             const Snapshot& snap) = 0;
  virtual sim::Co<lv::Status> SuspendForMigration(sim::ExecCtx ctx, hv::DomainId domid) = 0;
  virtual sim::Co<lv::Status> TeardownAfterMigration(sim::ExecCtx ctx,
                                                     hv::DomainId domid) = 0;

  // Breakdown of the most recent Create (Figure 5).
  const CreateBreakdown& last_breakdown() const { return breakdown_; }

  guests::Guest* guest(hv::DomainId domid) {
    auto it = vms_.find(domid);
    return it == vms_.end() ? nullptr : it->second.guest.get();
  }
  const VmConfig* config_of(hv::DomainId domid) const {
    auto it = vms_.find(domid);
    return it == vms_.end() ? nullptr : &it->second.config;
  }
  int64_t num_vms() const { return static_cast<int64_t>(vms_.size()); }
  // All tracked domains, sorted (deterministic teardown/evacuation order).
  std::vector<hv::DomainId> TrackedDomains() const {
    std::vector<hv::DomainId> ids;
    ids.reserve(vms_.size());
    for (const auto& [domid, record] : vms_) {
      ids.push_back(domid);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  HostEnv& env() { return env_; }

 protected:
  struct VmRecord {
    VmConfig config;
    std::unique_ptr<guests::Guest> guest;
    int core = 0;
    lv::TimePoint created_at;
  };

  // Builds the guest's boot environment for a given core.
  guests::BootEnv MakeBootEnv(int core, bool use_store);
  // Guests co-located on `core` (drives boot-time contention, Fig. 11).
  int64_t PeersOnCore(int core) const;
  void TrackVm(hv::DomainId domid, VmRecord record);
  void UntrackVm(hv::DomainId domid);

  HostEnv env_;
  CreateBreakdown breakdown_;
  std::unordered_map<hv::DomainId, VmRecord> vms_;
  std::unordered_map<int, int64_t> core_population_;
};

}  // namespace toolstack
