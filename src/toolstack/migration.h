// VM migration between two hosts (paper §5.1):
//
// "migration begins by chaos opening a TCP connection to a migration daemon
//  running on the remote host and by sending the guest's configuration so
//  that the daemon pre-creates the domain and creates the devices. Next, to
//  suspend the guest, chaos issues an ioctl to the sysctl back-end...
//  Once the guest is suspended we rely on libxc code to send the guest data
//  to the remote host."
//
// The same protocol drives xl-style migration (via the XenStore control
// node) so Figure 13 can compare all toolstack variants.
#pragma once

#include "src/net/link.h"
#include "src/toolstack/toolstack.h"

namespace toolstack {

// The remote host's migration daemon: accepts pre-create + restore requests
// and executes them on the remote Dom0's execution context.
class MigrationDaemon {
 public:
  MigrationDaemon(Toolstack* ts, sim::ExecCtx daemon_ctx) : ts_(ts), ctx_(daemon_ctx) {}

  Toolstack* toolstack() { return ts_; }
  sim::ExecCtx ctx() const { return ctx_; }

  int64_t migrations_received() const { return received_; }
  void count_received() { ++received_; }

 private:
  Toolstack* ts_;
  sim::ExecCtx ctx_;
  int64_t received_ = 0;
};

// Migrates `domid` from `local` to the host behind `remote` over `link`.
// Returns the domain id the guest received on the remote host.
// Size of the configuration blob sent before pre-creation.
inline constexpr lv::Bytes kMigrationConfigSize = lv::Bytes::KiB(4);

sim::Co<lv::Result<hv::DomainId>> Migrate(Toolstack* local, sim::ExecCtx local_ctx,
                                          hv::DomainId domid, MigrationDaemon* remote,
                                          xnet::Link* link);

}  // namespace toolstack
