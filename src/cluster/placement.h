// Placement policies for the cluster control plane: given the current view
// of every node, pick the node a new VM should land on. Policies only ever
// return admissible nodes — admission control (per-node memory and vCPU
// budgets) is part of the contract, not a separate pass.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/toolstack/toolstack.h"

namespace cluster {

// What a policy sees of one node. `*_committed` counts both running VMs and
// deploys still in flight (the cluster commits resources before the first
// suspension point, so concurrent deploys cannot oversubscribe a node).
struct NodeView {
  int index = 0;
  bool alive = true;  // dead nodes never admit (health monitor marks these)
  lv::Bytes memory_budget;
  lv::Bytes memory_committed;
  int64_t vcpu_budget = 0;
  int64_t vcpus_committed = 0;
  int64_t vms = 0;             // running VMs
  int64_t active_creates = 0;  // deploys in flight
};

// Whether `node` has budget left for `config`.
bool Admits(const NodeView& node, const toolstack::VmConfig& config);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const = 0;
  // Index of the chosen node, or -1 if no node admits the VM. Must only
  // return nodes for which Admits() holds.
  virtual int Pick(const std::vector<NodeView>& nodes,
                   const toolstack::VmConfig& config) = 0;
};

// Lowest-index node with budget. Packs nodes in order; the degenerate
// baseline that concentrates toolstack load on node 0.
class FirstFit : public PlacementPolicy {
 public:
  const char* name() const override { return "first-fit"; }
  int Pick(const std::vector<NodeView>& nodes,
           const toolstack::VmConfig& config) override;
};

// Node with the fewest VMs (running + in-flight creates). Spreads toolstack
// work evenly, which matters because VM creation burns Dom0 CPU.
class LeastLoaded : public PlacementPolicy {
 public:
  const char* name() const override { return "least-loaded"; }
  int Pick(const std::vector<NodeView>& nodes,
           const toolstack::VmConfig& config) override;
};

// Node with the most free memory. Balances the density headroom instead of
// the VM count (uneven flavors make these differ).
class MemoryBalance : public PlacementPolicy {
 public:
  const char* name() const override { return "memory-balance"; }
  int Pick(const std::vector<NodeView>& nodes,
           const toolstack::VmConfig& config) override;
};

// Factory by name ("first-fit", "least-loaded", "memory-balance"); returns
// nullptr for unknown names.
std::unique_ptr<PlacementPolicy> MakePolicy(const std::string& name);

}  // namespace cluster
