// Cluster: the control plane over N LightVM nodes (paper §6.1 scaled out).
//
// Each node is a full lightvm::Host wired to every other node by a
// point-to-point link (the migration fabric). The cluster adds what a single
// Host cannot express:
//
//  * placement  — a pluggable PlacementPolicy picks the node for each VM,
//  * admission  — per-node memory and vCPU budgets are committed before the
//                 first suspension point, so concurrent Deploys can never
//                 oversubscribe a node,
//  * migration  — cluster-level Migrate() re-homes a VM between nodes and
//                 keeps the accounting straight,
//  * healing    — an opt-in health monitor detects crashed nodes, writes
//                 their budgets off, and re-places (evacuates) their VMs on
//                 the survivors, budget-correct throughout.
//
// Fault tolerance contract: every await in Deploy/Retire/Migrate records the
// target node's generation first. When the health monitor declares a node
// dead it bumps the generation and resets the node's committed budgets, so a
// resuming operation must not release (or re-insert) anything unless the
// generation still matches — otherwise a late rollback would corrupt the
// fresh bookkeeping. Deploys also retry transient toolstack errors with
// exponential backoff, and re-place exactly once when the chosen node dies
// between admission and completion (instead of leaking the reservation).
//
// Execution topology (sim::TopologyPolicy): by default all nodes share one
// sim::Engine, so a whole-cluster run stays a single deterministic event
// sequence — the legacy path, byte-identical to every committed baseline.
// Constructed over a sim::ShardGroup instead, the cluster becomes sharded:
// node i lives on time domain i (its Host, toolstack, daemons all run on
// that domain's engine) and the whole control plane — placement, admission
// budgets, health monitor, recovery — lives on a dedicated control domain
// (index num_nodes). Control and nodes interact only through timestamped
// mailbox messages costing one lookahead hop each way (the control-fabric
// latency), so shards can execute in parallel on real threads while
// same-seed runs stay identical across shard counts:
//
//  * create/destroy  — request posted to the node, job result posted back
//                      (RemoteCreate/RemoteDestroy), the control coroutine
//                      parks on a OneShotEvent meanwhile,
//  * migration       — decomposed into save (source shard), stream
//                      (control-side link model) and restore (target shard),
//  * crash/reboot    — the fault fires on the node's shard; crash and
//                      settle notifications update control-side mirror
//                      state (crashed_view/settled_view), which is what
//                      view(), the health monitor and the reboot waiters
//                      consult instead of touching the remote Host,
//  * flight records  — control-plane events land on a dedicated control
//                      ring (index num_nodes) so every ring keeps a single
//                      writer.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cluster/placement.h"
#include "src/core/host.h"
#include "src/obs/obs.h"
#include "src/sim/shard.h"
#include "src/sim/sync.h"

namespace cluster {

struct ClusterSpec {
  int num_nodes = 4;
  lightvm::HostSpec node = lightvm::HostSpec::Amd64Core();
  lightvm::Mechanisms mechanisms = lightvm::Mechanisms::LightVm();

  // Migration fabric between each pair of nodes.
  double link_gbps = 10.0;
  lv::Duration link_rtt = lv::Duration::Micros(200);

  // Admission budgets. Zero means "derive from the node spec": all guest
  // memory (node.memory - node.dom0_memory) and `vcpu_overcommit` virtual
  // CPUs per physical guest core.
  lv::Bytes memory_budget;
  int64_t vcpu_budget = 0;
  int64_t vcpu_overcommit = 32;

  // Self-healing knobs (used once StartHealthMonitor() runs).
  lv::Duration health_period = lv::Duration::Millis(10);
  // Attempts per placement for transient (kUnavailable) create failures; the
  // backoff doubles after each failed attempt.
  int create_retries = 3;
  lv::Duration retry_backoff = lv::Duration::Millis(10);
};

// A VM's cluster-wide identity: which node it lives on and its domain id
// there. Migration returns a fresh handle (new node, new domid).
struct VmHandle {
  int node = -1;
  hv::DomainId domid = hv::kInvalidDomain;

  bool operator==(const VmHandle&) const = default;
};

class Cluster {
 public:
  Cluster(sim::Engine* engine, ClusterSpec spec,
          std::unique_ptr<PlacementPolicy> policy);
  // Sharded topology: node i runs on group->domain_engine(i), the control
  // plane on domain num_nodes (the group needs at least num_nodes + 1
  // domains). Drive the cluster with group->RunUntil(...); every public
  // coroutine must be spawned on the control engine, and host state may
  // only be read directly (total_vms, VerifyNoLeakedResources) when no run
  // is in progress.
  Cluster(sim::ShardGroup* group, ClusterSpec spec,
          std::unique_ptr<PlacementPolicy> policy);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  bool sharded() const { return group_ != nullptr; }
  // The engine the control plane runs on (the shared engine when single).
  sim::Engine& control_engine() { return *engine_; }
  // The control domain index (valid only when sharded).
  int control_domain() const { return ctrl_domain_; }

  int num_nodes() const { return spec_.num_nodes; }
  const ClusterSpec& spec() const { return spec_; }
  PlacementPolicy& policy() { return *policy_; }
  lightvm::Host& host(int node) { return *nodes_[node].host; }
  // Link between two distinct nodes (undirected; created lazily).
  xnet::Link* link(int a, int b);

  // Current accounting snapshot of one node / all nodes.
  NodeView view(int node) const;
  std::vector<NodeView> views() const;

  // Places `config` with the policy, commits its budget and creates the VM
  // on the chosen node (boot-waited when `wait_boot`). Transient toolstack
  // failures are retried with backoff; if the chosen node dies under the
  // deploy the reservation is released and placement is retried once on the
  // survivors. Fails with kUnavailable when no node admits the VM or the
  // re-placed attempt also loses its node.
  // Every operation mints a causal op (src/obs) under `parent` — the root
  // op id is the exported flow id, so a Deploy's whole story (node jobs,
  // toolstack creates, a crash-triggered re-place, the recovery-loop
  // re-deploy) shares one flow. Callers usually pass nothing (a root op).
  sim::Co<lv::Result<VmHandle>> Deploy(toolstack::VmConfig config, bool wait_boot,
                                       obs::OpRef parent = {});

  // Destroys the VM and releases its budget. Retiring a VM whose node died
  // mid-destroy succeeds (the node's state is gone either way).
  sim::Co<lv::Status> Retire(VmHandle handle, obs::OpRef parent = {});

  // Migrates the VM to `target_node` (admission-checked there) and returns
  // its new handle.
  sim::Co<lv::Result<VmHandle>> Migrate(VmHandle handle, int target_node,
                                        obs::OpRef parent = {});

  // --- Self-healing ----------------------------------------------------------

  // Starts the periodic health monitor: every spec.health_period it scans
  // for crashed nodes, writes off their budgets, evacuates their VMs onto
  // the survivors and re-admits rebooted nodes. Also asserts the cluster
  // invariants (admission within budget, no leaked host resources) on every
  // sweep. Opt-in so fault-free runs schedule no extra events. Idempotent.
  void StartHealthMonitor();

  // Crashes / settles-then-reboots one node (fault-injection entry points;
  // detection and recovery stay with the health monitor). In sharded mode
  // CrashNode posts the crash to the node's shard; call NodeSideCrash
  // directly from a sink already running on the node's engine (the sharded
  // fault-injector wiring does).
  void CrashNode(int node);
  void RequestReboot(int node);
  // Runs on the node's own engine: crashes the host, notifies control of
  // the crash, and spawns the settle watcher that notifies control once the
  // post-crash teardown finished. No-op when already crashed.
  void NodeSideCrash(int node);
  bool node_alive(int node) const { return nodes_[node].alive; }

  int64_t vms_deployed() const { return vms_deployed_; }
  int64_t deploy_failures() const { return deploy_failures_; }
  int64_t admission_rejects() const { return admission_rejects_; }
  int64_t migrations() const { return migrations_; }
  // Total VMs currently running across all nodes.
  int64_t total_vms() const;

  // Self-healing bookkeeping (chaos bench + tests).
  int64_t node_failures() const { return node_failures_; }
  int64_t vms_lost() const { return vms_lost_; }
  int64_t vms_recovered() const { return vms_recovered_; }
  int64_t vms_unrecovered() const { return vms_unrecovered_; }
  int64_t deploy_retries() const { return deploy_retries_; }
  int64_t deploy_replacements() const { return deploy_replacements_; }
  int64_t invariant_failures() const { return invariant_failures_; }
  // Detection-to-redeploy latency of every recovered VM, in ms.
  const std::vector<double>& recovery_ms() const { return recovery_ms_; }

  // Admission-budget drift: max |committed - sum of placements| across
  // nodes. Zero at quiescence (no deploys in flight) iff every commit was
  // matched by exactly one release.
  struct Drift {
    lv::Bytes memory;
    int64_t vcpus = 0;
  };
  Drift AdmissionDrift() const;

 private:
  struct Node {
    std::unique_ptr<lightvm::Host> host;
    lv::Bytes memory_committed;
    int64_t vcpus_committed = 0;
    int64_t active_creates = 0;
    bool alive = true;
    // Bumped when the health monitor declares the node dead; guards every
    // budget rollback that crosses a suspension point.
    int64_t generation = 0;
    // Control-side mirror of cross-shard host state (sharded mode only):
    // written exclusively by notifications posted from the node's shard
    // (plus the control-side bookkeeping for vms_view), read by view(),
    // the health monitor and the reboot waiters.
    bool crashed_view = false;
    bool settled_view = false;
    int64_t vms_view = 0;
  };
  // Budget held by one placed VM, so Retire/Migrate release exactly what
  // Deploy committed even if the config changes meaning later. The config is
  // kept so a dead node's VMs can be re-placed (evacuated) elsewhere.
  struct Placement {
    lv::Bytes memory;
    int64_t vcpus = 0;
    toolstack::VmConfig config;
    // The Deploy op that placed the VM; an evacuation re-deploys under it
    // so the recovery shares the original flow.
    obs::OpRef op;
  };

  static int64_t Key(VmHandle handle) {
    return (static_cast<int64_t>(handle.node) << 32) | handle.domid;
  }

  sim::Co<void> HealthLoop();
  sim::Co<void> RecoveryLoop();
  sim::Co<void> RebootWhenSettled(int node);
  // Declares `node` dead: bumps its generation, zeroes its budgets, and
  // returns its placements (sorted by domid) with their keys erased.
  std::vector<std::pair<hv::DomainId, Placement>> WriteOffNode(int node);
  void CheckInvariants();

  // Whether `node` is (known to be) down, from the control plane's vantage
  // point: the host itself when single-engine, the crash mirror when
  // sharded (a remote crash becomes visible one lookahead hop later).
  bool NodeDown(int node) const {
    return group_ != nullptr ? nodes_[node].crashed_view
                             : nodes_[node].host->crashed();
  }
  // Flight-recorder ring for control-plane records: the dedicated control
  // ring when sharded (single writer per ring), the node's ring otherwise.
  int ControlRing(int node) const {
    return group_ != nullptr ? spec_.num_nodes : node;
  }

  // --- Sharded remote operations (control-side coroutines) ----------------
  sim::Co<lv::Result<hv::DomainId>> RemoteCreate(int node,
                                                 toolstack::VmConfig config,
                                                 bool wait_boot, obs::OpRef op);
  sim::Co<lv::Status> RemoteDestroy(int node, hv::DomainId domid, obs::OpRef op);
  sim::Co<lv::Result<hv::DomainId>> RemoteMigrate(int src_node, int dst_node,
                                                  hv::DomainId domid,
                                                  obs::OpRef op);
  // Node-side settle watcher (runs on the node's engine).
  sim::Co<void> WatchSettle(int node);

  sim::Engine* engine_;
  sim::ShardGroup* group_ = nullptr;  // null on the single-engine path
  int ctrl_domain_ = 0;               // == spec_.num_nodes when sharded
  ClusterSpec spec_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::vector<Node> nodes_;
  std::unordered_map<int64_t, std::unique_ptr<xnet::Link>> links_;
  std::unordered_map<int64_t, Placement> placements_;
  int64_t vms_deployed_ = 0;
  int64_t deploy_failures_ = 0;
  int64_t admission_rejects_ = 0;
  int64_t migrations_ = 0;
  int64_t node_failures_ = 0;
  int64_t vms_lost_ = 0;
  int64_t vms_recovered_ = 0;
  int64_t vms_unrecovered_ = 0;
  int64_t deploy_retries_ = 0;
  int64_t deploy_replacements_ = 0;
  int64_t invariant_failures_ = 0;
  std::vector<double> recovery_ms_;
  bool monitor_stop_ = false;
  // VMs written off a dead node, waiting for the recovery loop to re-place
  // them. Detection (HealthLoop) only enqueues, so a second node crashing
  // while an evacuation is in flight is still detected on the next sweep.
  struct Evacuee {
    hv::DomainId domid = hv::kInvalidDomain;
    int from_node = -1;
    lv::TimePoint detected;
    toolstack::VmConfig config;
    obs::OpRef op;  // the original Deploy op (causal parent of the re-place)
  };
  std::deque<Evacuee> evac_queue_;
  // Owner-held loop frames (own-and-drain): ~Cluster signals stop and steps
  // the engine until every frame finishes, then ~Co frees them. Declared
  // last so they die before anything they reference.
  std::vector<sim::Co<void>> reboot_waiters_;
  sim::Co<void> monitor_;
  sim::Co<void> recovery_;
};

}  // namespace cluster
