// Cluster: the control plane over N LightVM nodes (paper §6.1 scaled out).
//
// Each node is a full lightvm::Host wired to every other node by a
// point-to-point link (the migration fabric). The cluster adds what a single
// Host cannot express:
//
//  * placement  — a pluggable PlacementPolicy picks the node for each VM,
//  * admission  — per-node memory and vCPU budgets are committed before the
//                 first suspension point, so concurrent Deploys can never
//                 oversubscribe a node,
//  * migration  — cluster-level Migrate() re-homes a VM between nodes and
//                 keeps the accounting straight.
//
// All nodes share one sim::Engine, so a whole-cluster run stays a single
// deterministic event sequence.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cluster/placement.h"
#include "src/core/host.h"

namespace cluster {

struct ClusterSpec {
  int num_nodes = 4;
  lightvm::HostSpec node = lightvm::HostSpec::Amd64Core();
  lightvm::Mechanisms mechanisms = lightvm::Mechanisms::LightVm();

  // Migration fabric between each pair of nodes.
  double link_gbps = 10.0;
  lv::Duration link_rtt = lv::Duration::Micros(200);

  // Admission budgets. Zero means "derive from the node spec": all guest
  // memory (node.memory - node.dom0_memory) and `vcpu_overcommit` virtual
  // CPUs per physical guest core.
  lv::Bytes memory_budget;
  int64_t vcpu_budget = 0;
  int64_t vcpu_overcommit = 32;
};

// A VM's cluster-wide identity: which node it lives on and its domain id
// there. Migration returns a fresh handle (new node, new domid).
struct VmHandle {
  int node = -1;
  hv::DomainId domid = hv::kInvalidDomain;

  bool operator==(const VmHandle&) const = default;
};

class Cluster {
 public:
  Cluster(sim::Engine* engine, ClusterSpec spec,
          std::unique_ptr<PlacementPolicy> policy);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return spec_.num_nodes; }
  const ClusterSpec& spec() const { return spec_; }
  PlacementPolicy& policy() { return *policy_; }
  lightvm::Host& host(int node) { return *nodes_[node].host; }
  // Link between two distinct nodes (undirected; created lazily).
  xnet::Link* link(int a, int b);

  // Current accounting snapshot of one node / all nodes.
  NodeView view(int node) const;
  std::vector<NodeView> views() const;

  // Places `config` with the policy, commits its budget and creates the VM
  // on the chosen node (boot-waited when `wait_boot`). Fails with
  // kUnavailable when no node admits the VM.
  sim::Co<lv::Result<VmHandle>> Deploy(toolstack::VmConfig config, bool wait_boot);

  // Destroys the VM and releases its budget.
  sim::Co<lv::Status> Retire(VmHandle handle);

  // Migrates the VM to `target_node` (admission-checked there) and returns
  // its new handle.
  sim::Co<lv::Result<VmHandle>> Migrate(VmHandle handle, int target_node);

  int64_t vms_deployed() const { return vms_deployed_; }
  int64_t deploy_failures() const { return deploy_failures_; }
  int64_t admission_rejects() const { return admission_rejects_; }
  int64_t migrations() const { return migrations_; }
  // Total VMs currently running across all nodes.
  int64_t total_vms() const;

 private:
  struct Node {
    std::unique_ptr<lightvm::Host> host;
    lv::Bytes memory_committed;
    int64_t vcpus_committed = 0;
    int64_t active_creates = 0;
  };
  // Budget held by one placed VM, so Retire/Migrate release exactly what
  // Deploy committed even if the config changes meaning later.
  struct Placement {
    lv::Bytes memory;
    int64_t vcpus = 0;
  };

  static int64_t Key(VmHandle handle) {
    return (static_cast<int64_t>(handle.node) << 32) | handle.domid;
  }

  sim::Engine* engine_;
  ClusterSpec spec_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::vector<Node> nodes_;
  std::unordered_map<int64_t, std::unique_ptr<xnet::Link>> links_;
  std::unordered_map<int64_t, Placement> placements_;
  int64_t vms_deployed_ = 0;
  int64_t deploy_failures_ = 0;
  int64_t admission_rejects_ = 0;
  int64_t migrations_ = 0;
};

}  // namespace cluster
