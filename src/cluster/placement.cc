#include "src/cluster/placement.h"

namespace cluster {

bool Admits(const NodeView& node, const toolstack::VmConfig& config) {
  return node.alive &&
         node.memory_committed + config.image.memory <= node.memory_budget &&
         node.vcpus_committed + config.vcpus <= node.vcpu_budget;
}

int FirstFit::Pick(const std::vector<NodeView>& nodes,
                   const toolstack::VmConfig& config) {
  for (const NodeView& node : nodes) {
    if (Admits(node, config)) {
      return node.index;
    }
  }
  return -1;
}

int LeastLoaded::Pick(const std::vector<NodeView>& nodes,
                      const toolstack::VmConfig& config) {
  int best = -1;
  int64_t best_load = 0;
  for (const NodeView& node : nodes) {
    if (!Admits(node, config)) {
      continue;
    }
    int64_t load = node.vms + node.active_creates;
    if (best == -1 || load < best_load) {
      best = node.index;
      best_load = load;
    }
  }
  return best;
}

int MemoryBalance::Pick(const std::vector<NodeView>& nodes,
                        const toolstack::VmConfig& config) {
  int best = -1;
  lv::Bytes best_free;
  for (const NodeView& node : nodes) {
    if (!Admits(node, config)) {
      continue;
    }
    lv::Bytes free = node.memory_budget - node.memory_committed;
    if (best == -1 || free > best_free) {
      best = node.index;
      best_free = free;
    }
  }
  return best;
}

std::unique_ptr<PlacementPolicy> MakePolicy(const std::string& name) {
  if (name == "first-fit") {
    return std::make_unique<FirstFit>();
  }
  if (name == "least-loaded") {
    return std::make_unique<LeastLoaded>();
  }
  if (name == "memory-balance") {
    return std::make_unique<MemoryBalance>();
  }
  return nullptr;
}

}  // namespace cluster
