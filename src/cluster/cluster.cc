#include "src/cluster/cluster.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "src/base/log.h"
#include "src/core/verify.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace cluster {

namespace {

constexpr const char* kMod = "cluster";

// Reply box for a remote operation: the control coroutine parks on `done`
// (a control-engine event) until the node's shard posts the result back.
template <typename T>
struct RemoteBox {
  explicit RemoteBox(sim::Engine* engine) : done(engine) {}
  sim::OneShotEvent done;
  std::optional<T> value;
};

// Posts `result` from `domain` back into the control-side box. The delay is
// one lookahead hop (the control-fabric latency), exactly the minimum the
// conservative synchronization permits.
template <typename T>
void PostReply(sim::ShardGroup* group, int domain, int ctrl, T result,
               std::shared_ptr<RemoteBox<T>> box) {
  group->Post(domain, ctrl, group->lookahead(),
              [box, result = std::move(result)] {
                box->value = result;
                box->done.Trigger();
              });
}

// Node-side halves of the remote ops: free coroutines spawned on the owning
// node's engine with plain by-value parameters. Deliberately no wrapped
// function objects and no capturing-lambda coroutines anywhere on this path —
// a function object whose lifetime spans a suspension point ends up in the
// caller's coroutine frame, and moving it between frames leaves its captures
// pointing into freed memory.
sim::Co<void> RunCreate(sim::ShardGroup* group, int node, int ctrl,
                        lightvm::Host* host, toolstack::VmConfig config,
                        bool wait_boot, obs::OpRef op,
                        std::shared_ptr<RemoteBox<lv::Result<hv::DomainId>>> box) {
  lv::Result<hv::DomainId> result =
      co_await host->node().SubmitCreate(std::move(config), wait_boot, op).Get();
  PostReply(group, node, ctrl, std::move(result), std::move(box));
}

sim::Co<void> RunDestroy(sim::ShardGroup* group, int node, int ctrl,
                         lightvm::Host* host, hv::DomainId domid, obs::OpRef op,
                         std::shared_ptr<RemoteBox<lv::Status>> box) {
  lv::Status result = co_await host->node().SubmitDestroy(domid, op).Get();
  PostReply(group, node, ctrl, std::move(result), std::move(box));
}

sim::Co<void> RunSave(
    sim::ShardGroup* group, int node, int ctrl, lightvm::Host* host,
    hv::DomainId domid,
    std::shared_ptr<RemoteBox<lv::Result<toolstack::Snapshot>>> box) {
  lv::Result<toolstack::Snapshot> result = co_await host->SaveVm(domid);
  PostReply(group, node, ctrl, std::move(result), std::move(box));
}

sim::Co<void> RunRestore(
    sim::ShardGroup* group, int node, int ctrl, lightvm::Host* host,
    toolstack::Snapshot snap,
    std::shared_ptr<RemoteBox<lv::Result<hv::DomainId>>> box) {
  lv::Result<hv::DomainId> result = co_await host->RestoreVm(std::move(snap));
  PostReply(group, node, ctrl, std::move(result), std::move(box));
}

}  // namespace

Cluster::Cluster(sim::Engine* engine, ClusterSpec spec,
                 std::unique_ptr<PlacementPolicy> policy)
    : engine_(engine), spec_(spec), policy_(std::move(policy)) {
  LV_CHECK_MSG(spec_.num_nodes > 0, "cluster needs at least one node");
  LV_CHECK_MSG(policy_ != nullptr, "cluster needs a placement policy");
  if (spec_.memory_budget == lv::Bytes()) {
    spec_.memory_budget = spec_.node.memory - spec_.node.dom0_memory;
  }
  if (spec_.vcpu_budget == 0) {
    int64_t guest_cores = spec_.node.cores - spec_.node.dom0_cores;
    spec_.vcpu_budget = spec_.vcpu_overcommit * guest_cores;
  }
  nodes_.resize(spec_.num_nodes);
  for (int i = 0; i < spec_.num_nodes; ++i) {
    nodes_[i].host =
        std::make_unique<lightvm::Host>(engine_, spec_.node, spec_.mechanisms);
    nodes_[i].host->set_obs_node(i);
  }
}

Cluster::Cluster(sim::ShardGroup* group, ClusterSpec spec,
                 std::unique_ptr<PlacementPolicy> policy)
    : engine_(&group->domain_engine(spec.num_nodes)),
      group_(group),
      ctrl_domain_(spec.num_nodes),
      spec_(spec),
      policy_(std::move(policy)) {
  LV_CHECK_MSG(spec_.num_nodes > 0, "cluster needs at least one node");
  LV_CHECK_MSG(policy_ != nullptr, "cluster needs a placement policy");
  LV_CHECK_MSG(group_->num_domains() > spec_.num_nodes,
               "shard group needs one domain per node plus a control domain");
  if (spec_.memory_budget == lv::Bytes()) {
    spec_.memory_budget = spec_.node.memory - spec_.node.dom0_memory;
  }
  if (spec_.vcpu_budget == 0) {
    int64_t guest_cores = spec_.node.cores - spec_.node.dom0_cores;
    spec_.vcpu_budget = spec_.vcpu_overcommit * guest_cores;
  }
  nodes_.resize(spec_.num_nodes);
  for (int i = 0; i < spec_.num_nodes; ++i) {
    nodes_[i].host = std::make_unique<lightvm::Host>(
        &group_->domain_engine(i), spec_.node, spec_.mechanisms);
    nodes_[i].host->set_obs_node(i);
  }
  // Node rings 0..N-1 plus the control ring N, pre-sized so concurrent
  // shard threads never resize the ring vector.
  obs::FlightRecorder::Get().EnsureNodes(spec_.num_nodes + 1);
}

Cluster::~Cluster() {
  // Own-and-drain: the monitor and any reboot waiters may be parked in a
  // sleep or mid-evacuation; step the engine until every frame runs to its
  // stop check, then ~Co frees them with nothing else referencing them.
  monitor_stop_ = true;
  auto pending = [this] {
    if (monitor_.valid() && !monitor_.done()) {
      return true;
    }
    if (recovery_.valid() && !recovery_.done()) {
      return true;
    }
    for (const sim::Co<void>& waiter : reboot_waiters_) {
      if (waiter.valid() && !waiter.done()) {
        return true;
      }
    }
    return false;
  };
  if (group_ != nullptr) {
    if (pending()) {
      group_->RunUntil([&] { return !pending(); }, lv::Duration::Max());
    }
    return;
  }
  while (pending() && engine_->Step()) {
  }
}

xnet::Link* Cluster::link(int a, int b) {
  LV_CHECK_MSG(a != b, "no self-link");
  if (a > b) {
    std::swap(a, b);
  }
  int64_t key = (static_cast<int64_t>(a) << 32) | static_cast<int64_t>(b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<xnet::Link>(engine_, spec_.link_gbps,
                                                        spec_.link_rtt))
             .first;
  }
  return it->second.get();
}

NodeView Cluster::view(int node) const {
  const Node& n = nodes_[node];
  NodeView v;
  v.index = node;
  // A crashed host stops admitting the moment it dies, even before the
  // health monitor's next sweep formally writes it off — otherwise every
  // deploy in the detection window re-picks the same dead (and now
  // least-loaded, since its budget is being released) node twice and fails.
  v.alive = n.alive && !NodeDown(node);
  v.memory_budget = spec_.memory_budget;
  v.memory_committed = n.memory_committed;
  v.vcpu_budget = spec_.vcpu_budget;
  v.vcpus_committed = n.vcpus_committed;
  // Sharded: the host's VM table belongs to the node's thread; the control
  // plane placements are the authoritative committed view.
  v.vms = group_ != nullptr ? n.vms_view : n.host->num_vms();
  v.active_creates = n.active_creates;
  return v;
}

std::vector<NodeView> Cluster::views() const {
  std::vector<NodeView> out;
  out.reserve(nodes_.size());
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    out.push_back(view(i));
  }
  return out;
}

int64_t Cluster::total_vms() const {
  int64_t total = 0;
  for (const Node& node : nodes_) {
    total += node.host->num_vms();
  }
  return total;
}

sim::Co<lv::Result<VmHandle>> Cluster::Deploy(toolstack::VmConfig config,
                                              bool wait_boot, obs::OpRef parent) {
  obs::OpRef op = obs::NewOpOnNode(-1, parent);
  obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.deploy", op.root);
  // One re-placement is allowed when the chosen node dies under the deploy:
  // the reservation is released (generation-guarded) and placement runs
  // again over the survivors instead of leaking the budget or failing with
  // a raw node error.
  for (int placement_round = 0;; ++placement_round) {
    int pick = policy_->Pick(views(), config);
    if (pick < 0) {
      ++admission_rejects_;
      ++deploy_failures_;
      static metrics::Counter& rejects = metrics::GetCounter("cluster.admission_rejects");
      rejects.Inc();
      recorder.Record(ControlRing(0), op, "cluster", "deploy.reject", false);
      co_return lv::Err(lv::ErrorCode::kUnavailable, "no node admits the VM");
    }
    // Commit the budget before the first suspension point: a concurrent
    // Deploy sees this VM's reservation even though the create is in flight.
    Node& node = nodes_[pick];
    Placement placement{config.image.memory, config.vcpus, config};
    placement.op = op;
    const int64_t gen = node.generation;
    recorder.Record(ControlRing(pick), op, "cluster", "deploy", true,
                    placement_round);
    node.memory_committed += placement.memory;
    node.vcpus_committed += placement.vcpus;
    ++node.active_creates;

    lv::Result<hv::DomainId> created =
        lv::Err(lv::ErrorCode::kUnavailable, "create not attempted");
    lv::Duration backoff = spec_.retry_backoff;
    for (int attempt = 0; attempt < std::max(1, spec_.create_retries); ++attempt) {
      if (attempt > 0) {
        ++deploy_retries_;
        static metrics::Counter& retries = metrics::GetCounter("cluster.deploy_retries");
        retries.Inc();
        co_await engine_->Sleep(backoff);
        backoff = backoff * 2.0;
        if (node.generation != gen || NodeDown(pick)) {
          break;  // the node died while backing off
        }
      }
      if (group_ != nullptr) {
        created = co_await RemoteCreate(pick, config, wait_boot, op);
      } else {
        created = co_await node.host->node().SubmitCreate(config, wait_boot, op).Get();
      }
      if (created.ok()) {
        break;
      }
      // Retry only transient toolstack errors on a node that is still up;
      // anything else (bad config, out of memory, dead node) is final.
      if (created.error().code != lv::ErrorCode::kUnavailable ||
          node.generation != gen || NodeDown(pick)) {
        break;
      }
    }

    const bool node_current = node.generation == gen;
    if (node_current) {
      --node.active_creates;
    }
    if (created.ok() && node_current && !NodeDown(pick)) {
      VmHandle handle{pick, *created};
      placements_[Key(handle)] = std::move(placement);
      ++vms_deployed_;
      ++node.vms_view;
      static metrics::Counter& deploys = metrics::GetCounter("cluster.vms_deployed");
      deploys.Inc();
      recorder.Record(ControlRing(pick), op, "cluster", "deploy.done", true,
                      *created);
      trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.deploy.done", op.root);
      co_return handle;
    }
    // Failed — or succeeded onto a node that crashed meanwhile, whose settle
    // pass is tearing the VM down again. Release the reservation unless the
    // health monitor already wrote the whole node off.
    if (node_current) {
      node.memory_committed -= placement.memory;
      node.vcpus_committed -= placement.vcpus;
    }
    const bool node_lost = !node_current || NodeDown(pick);
    if (node_lost && placement_round == 0) {
      ++deploy_replacements_;
      static metrics::Counter& replaced = metrics::GetCounter("cluster.deploy_replacements");
      replaced.Inc();
      recorder.Record(ControlRing(pick), op, "cluster", "deploy.replace", false);
      continue;
    }
    ++deploy_failures_;
    if (node_lost) {
      // Typed double failure: both the original node and the re-placed one
      // died under this deploy. Leave a post-mortem if a dump path is set.
      recorder.Record(ControlRing(pick), op, "cluster", "deploy.dead", false);
      recorder.MaybeDump();
      co_return lv::Err(lv::ErrorCode::kUnavailable,
                        "target node died during deploy");
    }
    recorder.Record(ControlRing(pick), op, "cluster", "deploy.fail", false);
    co_return created.error();
  }
}

sim::Co<lv::Status> Cluster::Retire(VmHandle handle, obs::OpRef parent) {
  if (handle.node < 0 || handle.node >= spec_.num_nodes) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "bad node index");
  }
  auto it = placements_.find(Key(handle));
  if (it == placements_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM handle");
  }
  obs::OpRef op = obs::NewOpOnNode(-1, parent);
  obs::FlightRecorder::Get().Record(ControlRing(handle.node), op, "cluster",
                                    "retire", true, handle.domid);
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.retire", op.root);
  // Claim the placement before the first suspension point, so a concurrent
  // evacuation of a dying node cannot resurrect a VM its owner is retiring.
  Placement placement = std::move(it->second);
  placements_.erase(it);
  Node& node = nodes_[handle.node];
  const int64_t gen = node.generation;
  lv::Status destroyed = lv::Status::Ok();
  if (group_ != nullptr) {
    destroyed = co_await RemoteDestroy(handle.node, handle.domid, op);
  } else {
    destroyed = co_await node.host->node().SubmitDestroy(handle.domid, op).Get();
  }
  if (node.generation != gen) {
    // The node died under the destroy: its state (and this VM) is gone and
    // its budgets were written off wholesale. The VM no longer runs, which
    // is what the caller asked for.
    co_return lv::Status::Ok();
  }
  if (!destroyed.ok()) {
    // Still owned by the node (e.g. a concurrent destructive op held the
    // exclusion); hand the placement back.
    placements_[Key(handle)] = std::move(placement);
    co_return destroyed;
  }
  node.memory_committed -= placement.memory;
  node.vcpus_committed -= placement.vcpus;
  if (node.vms_view > 0) {
    --node.vms_view;
  }
  co_return lv::Status::Ok();
}

sim::Co<lv::Result<VmHandle>> Cluster::Migrate(VmHandle handle, int target_node,
                                               obs::OpRef parent) {
  if (handle.node < 0 || handle.node >= spec_.num_nodes || target_node < 0 ||
      target_node >= spec_.num_nodes) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "bad node index");
  }
  if (target_node == handle.node) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "VM already on target node");
  }
  auto it = placements_.find(Key(handle));
  if (it == placements_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM handle");
  }
  Placement placement = it->second;
  Node& src = nodes_[handle.node];
  Node& dst = nodes_[target_node];
  // Admission on the target, committed up front like Deploy. The source
  // keeps its commitment until the migration succeeds (the guest occupies
  // both nodes while its memory streams).
  if (!dst.alive || dst.memory_committed + placement.memory > spec_.memory_budget ||
      dst.vcpus_committed + placement.vcpus > spec_.vcpu_budget) {
    ++admission_rejects_;
    static metrics::Counter& rejects = metrics::GetCounter("cluster.admission_rejects");
    rejects.Inc();
    co_return lv::Err(lv::ErrorCode::kUnavailable, "target node over budget");
  }
  obs::OpRef op = obs::NewOpOnNode(-1, parent);
  obs::FlightRecorder::Get().Record(ControlRing(handle.node), op, "cluster",
                                    "migrate", true, handle.domid);
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.migrate", op.root);
  const int64_t src_gen = src.generation;
  const int64_t dst_gen = dst.generation;
  dst.memory_committed += placement.memory;
  dst.vcpus_committed += placement.vcpus;

  lv::Result<hv::DomainId> moved =
      lv::Err(lv::ErrorCode::kUnavailable, "migrate not attempted");
  if (group_ != nullptr) {
    moved = co_await RemoteMigrate(handle.node, target_node, handle.domid, op);
  } else {
    moved = co_await src.host->node().MigrateVm(
        handle.domid, &dst.host->node(), link(handle.node, target_node));
  }

  if (!moved.ok()) {
    if (dst.generation == dst_gen) {
      dst.memory_committed -= placement.memory;
      dst.vcpus_committed -= placement.vcpus;
    }
    co_return moved.error();
  }
  if (placements_.find(Key(handle)) == placements_.end()) {
    // The source died mid-migration and the health monitor already evacuated
    // this VM to a fresh home; the migrated copy is a duplicate. Retire it
    // and report the migration as failed.
    if (group_ != nullptr) {
      (void)co_await RemoteDestroy(target_node, *moved, op);
    } else {
      (void)co_await dst.host->node().SubmitDestroy(*moved).Get();
    }
    if (dst.generation == dst_gen) {
      dst.memory_committed -= placement.memory;
      dst.vcpus_committed -= placement.vcpus;
    }
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "VM was evacuated while migrating");
  }
  placements_.erase(Key(handle));
  if (src.generation == src_gen) {
    src.memory_committed -= placement.memory;
    src.vcpus_committed -= placement.vcpus;
    if (src.vms_view > 0) {
      --src.vms_view;
    }
  }
  if (dst.generation != dst_gen) {
    // The target died while the guest streamed; its settle pass reaps the
    // arrived copy and its budgets were written off.
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "target node died during migration");
  }
  VmHandle out{target_node, *moved};
  placement.op = op;  // the migrated VM now belongs to the migrate chain
  placements_[Key(out)] = std::move(placement);
  ++migrations_;
  ++dst.vms_view;
  static metrics::Counter& migrations = metrics::GetCounter("cluster.migrations");
  migrations.Inc();
  obs::FlightRecorder::Get().Record(ControlRing(target_node), op, "cluster",
                                    "migrate.done", true, *moved);
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.migrate.done", op.root);
  co_return out;
}

// --- Self-healing -----------------------------------------------------------

void Cluster::StartHealthMonitor() {
  if (monitor_.valid()) {
    return;
  }
  monitor_ = HealthLoop();
  monitor_.Start();
  recovery_ = RecoveryLoop();
  recovery_.Start();
}

void Cluster::CrashNode(int node) {
  if (group_ != nullptr) {
    // Control-side callers hop to the node's shard; code already running on
    // the node's engine (e.g. a sharded fault sink) calls NodeSideCrash
    // directly instead.
    group_->Post(ctrl_domain_, node, group_->lookahead(),
                 [this, node] { NodeSideCrash(node); });
    return;
  }
  nodes_[node].host->Crash();
}

void Cluster::NodeSideCrash(int node) {
  lightvm::Host* host = nodes_[node].host.get();
  if (group_ == nullptr) {
    host->Crash();
    return;
  }
  if (host->crashed()) {
    return;  // double crash while already down: nothing new to report
  }
  host->Crash();
  group_->Post(node, ctrl_domain_, group_->lookahead(),
               [this, node] { nodes_[node].crashed_view = true; });
  group_->domain_engine(node).Spawn(WatchSettle(node));
}

sim::Co<void> Cluster::WatchSettle(int node) {
  // Runs on the node's engine: waits out the settle pass, then tells the
  // control plane. Polling at the health period keeps the watcher cheap
  // without adding meaningful detection latency on top of the sweep.
  lightvm::Host* host = nodes_[node].host.get();
  sim::Engine* engine = &group_->domain_engine(node);
  while (host->crashed() && !host->crash_settled()) {
    co_await engine->Sleep(spec_.health_period);
  }
  if (host->crashed() && host->crash_settled()) {
    group_->Post(node, ctrl_domain_, group_->lookahead(),
                 [this, node] { nodes_[node].settled_view = true; });
  }
}

void Cluster::RequestReboot(int node) {
  reboot_waiters_.push_back(RebootWhenSettled(node));
  reboot_waiters_.back().Start();
}

sim::Co<void> Cluster::RebootWhenSettled(int node) {
  lightvm::Host* host = nodes_[node].host.get();
  // Reboot only after the crash settled AND (when a monitor runs) after the
  // monitor wrote the node off. A reboot sneaking in between two sweeps
  // would make the crash invisible — the node looks healthy again while the
  // VMs its settle pass destroyed are still on the books. Sharded runs read
  // the control-side mirrors; the host itself belongs to the node's thread.
  auto settled = [&] {
    return group_ != nullptr ? nodes_[node].settled_view
                             : host->crash_settled();
  };
  auto ready = [&] {
    if (!NodeDown(node)) {
      return true;  // spurious request, nothing to reboot
    }
    if (!settled()) {
      return false;
    }
    return !monitor_.valid() || !nodes_[node].alive;
  };
  while (!monitor_stop_ && !ready()) {
    co_await engine_->Sleep(lv::Duration::Millis(1));
  }
  if (monitor_stop_ || !NodeDown(node)) {
    co_return;
  }
  if (group_ != nullptr) {
    // Hop to the node, reboot there, then clear the control-side mirrors on
    // the way back so readmission observes the node as healthy.
    group_->Post(ctrl_domain_, node, group_->lookahead(), [this, node] {
      lightvm::Host* h = nodes_[node].host.get();
      if (h->crashed() && h->crash_settled()) {
        h->Reboot();
        LV_DEBUG(kMod, "node %d rebooted", node);
      }
      group_->Post(node, ctrl_domain_, group_->lookahead(), [this, node] {
        nodes_[node].crashed_view = false;
        nodes_[node].settled_view = false;
      });
    });
    co_return;
  }
  host->Reboot();
  LV_DEBUG(kMod, "node %d rebooted", node);
}

std::vector<std::pair<hv::DomainId, Cluster::Placement>> Cluster::WriteOffNode(
    int node) {
  Node& n = nodes_[node];
  ++n.generation;
  n.alive = false;
  n.memory_committed = lv::Bytes();
  n.vcpus_committed = 0;
  n.active_creates = 0;
  n.vms_view = 0;  // the settle pass destroys every VM on the node
  std::vector<std::pair<hv::DomainId, Placement>> lost;
  for (auto it = placements_.begin(); it != placements_.end();) {
    if (static_cast<int>(it->first >> 32) == node) {
      lost.emplace_back(static_cast<hv::DomainId>(it->first & 0xffffffffll),
                        std::move(it->second));
      it = placements_.erase(it);
    } else {
      ++it;
    }
  }
  // Deterministic evacuation order regardless of hash-map iteration.
  std::sort(lost.begin(), lost.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return lost;
}

void Cluster::CheckInvariants() {
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    Node& node = nodes_[i];
    if (node.memory_committed > spec_.memory_budget ||
        node.vcpus_committed > spec_.vcpu_budget ||
        node.memory_committed < lv::Bytes() || node.vcpus_committed < 0) {
      ++invariant_failures_;
      static metrics::Counter& violations =
          metrics::GetCounter("cluster.invariant_failures");
      violations.Inc();
      obs::FlightRecorder::Get().Record(ControlRing(i), {}, "cluster",
                                        "invariant.budget", false);
      obs::FlightRecorder::Get().MaybeDump();
      LV_ERROR(kMod, "node %d admission out of bounds: mem=%lld vcpus=%lld", i,
               (long long)node.memory_committed.count(),
               (long long)node.vcpus_committed);
    }
    // Leak invariants are only meaningful when the node is not mid-operation
    // (destroys pass domains through transient states) and, after a crash,
    // once the settle pass finished tearing its state down. Sharded runs
    // skip this half mid-run — the host tables belong to the node threads —
    // and audit leaks from the test/bench after the group quiesces.
    lightvm::Host& host = *node.host;
    if (group_ == nullptr && host.node().jobs_active() == 0 &&
        (!host.crashed() || host.crash_settled())) {
      lv::Status ok = lightvm::VerifyNoLeakedResources(host);
      if (!ok.ok()) {
        ++invariant_failures_;
        static metrics::Counter& violations =
            metrics::GetCounter("cluster.invariant_failures");
        violations.Inc();
        LV_ERROR(kMod, "node %d leak invariant violated: %s", i,
                 ok.error().message.c_str());
      }
    }
  }
}

sim::Co<void> Cluster::HealthLoop() {
  // Detection only: write dead nodes off and queue their VMs for the
  // recovery loop. The sweep itself never blocks on a redeploy, so a second
  // node crashing during an evacuation is still detected one period later.
  while (!monitor_stop_) {
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      Node& node = nodes_[i];
      if (node.alive && NodeDown(i)) {
        ++node_failures_;
        static metrics::Counter& failures = metrics::GetCounter("cluster.node_failures");
        failures.Inc();
        auto lost = WriteOffNode(i);
        vms_lost_ += static_cast<int64_t>(lost.size());
        static metrics::Counter& lost_vms = metrics::GetCounter("cluster.vms_lost");
        lost_vms.Inc(static_cast<double>(lost.size()));
        lv::TimePoint detected = engine_->now();
        obs::FlightRecorder::Get().Record(ControlRing(i), {}, "cluster",
                                          "node.dead", false,
                                          static_cast<int64_t>(lost.size()));
        LV_INFO(kMod, "node %d dead, evacuating %lld VMs", i,
                (long long)lost.size());
        for (auto& [domid, placement] : lost) {
          evac_queue_.push_back(
              Evacuee{domid, i, detected, std::move(placement.config), placement.op});
        }
      } else if (!node.alive && !NodeDown(i)) {
        // The node rebooted (empty); hand it back to the placement policy.
        node.alive = true;
        obs::FlightRecorder::Get().Record(ControlRing(i), {}, "cluster",
                                          "node.readmit", true);
        LV_INFO(kMod, "node %d back in service", i);
      }
    }
    CheckInvariants();
    co_await engine_->Sleep(spec_.health_period);
  }
}

sim::Co<void> Cluster::RecoveryLoop() {
  // Drains the evacuation queue one VM at a time. The VM's state died with
  // its node, so evacuation is a fresh placement of the stored config (not a
  // migration), budget-accounted through the regular Deploy path.
  while (!monitor_stop_) {
    if (evac_queue_.empty()) {
      co_await engine_->Sleep(spec_.health_period);
      continue;
    }
    Evacuee ev = std::move(evac_queue_.front());
    evac_queue_.pop_front();
    // Re-deploy under the original Deploy op: the evacuation joins the
    // flow of the operation that placed the VM in the first place.
    obs::FlightRecorder::Get().Record(ControlRing(ev.from_node), ev.op,
                                      "cluster", "evacuate", true, ev.domid);
    auto replaced = co_await Deploy(ev.config, /*wait_boot=*/true, ev.op);
    if (replaced.ok()) {
      ++vms_recovered_;
      recovery_ms_.push_back((engine_->now() - ev.detected).ms());
      static metrics::Counter& recovered = metrics::GetCounter("cluster.vms_recovered");
      recovered.Inc();
      static metrics::Histogram& recovery =
          metrics::GetHistogram("cluster.recovery_ms", "ms");
      recovery.RecordDuration(engine_->now() - ev.detected);
    } else {
      ++vms_unrecovered_;
      static metrics::Counter& unrecovered =
          metrics::GetCounter("cluster.vms_unrecovered");
      unrecovered.Inc();
      LV_WARN(kMod, "evacuation of dom%lld from node %d failed: %s",
              (long long)ev.domid, ev.from_node, replaced.error().message.c_str());
    }
  }
}

// --- Sharded remote operations ----------------------------------------------

sim::Co<lv::Result<hv::DomainId>> Cluster::RemoteCreate(
    int node, toolstack::VmConfig config, bool wait_boot, obs::OpRef op) {
  lightvm::Host* host = nodes_[node].host.get();
  sim::ShardGroup* group = group_;
  const int ctrl = ctrl_domain_;
  auto box = std::make_shared<RemoteBox<lv::Result<hv::DomainId>>>(engine_);
  // The Post statement holds no co_await: the closure is an ordinary
  // temporary, fully copied into the mailbox before this frame suspends.
  group->Post(ctrl, node, group->lookahead(),
              [group, node, ctrl, host, config = std::move(config), wait_boot,
               op, box] {
                group->domain_engine(node).Spawn(RunCreate(
                    group, node, ctrl, host, config, wait_boot, op, box));
              });
  co_await box->done.Wait();
  co_return std::move(*box->value);
}

sim::Co<lv::Status> Cluster::RemoteDestroy(int node, hv::DomainId domid,
                                           obs::OpRef op) {
  lightvm::Host* host = nodes_[node].host.get();
  sim::ShardGroup* group = group_;
  const int ctrl = ctrl_domain_;
  auto box = std::make_shared<RemoteBox<lv::Status>>(engine_);
  group->Post(ctrl, node, group->lookahead(),
              [group, node, ctrl, host, domid, op, box] {
                group->domain_engine(node).Spawn(
                    RunDestroy(group, node, ctrl, host, domid, op, box));
              });
  co_await box->done.Wait();
  co_return std::move(*box->value);
}

sim::Co<lv::Result<hv::DomainId>> Cluster::RemoteMigrate(int src_node,
                                                         int dst_node,
                                                         hv::DomainId domid,
                                                         obs::OpRef op) {
  // Decomposed live migration: save on the source shard, stream the image on
  // the control plane's clock, restore on the target shard. The cost model
  // matches the single-engine TcpConnection path: connection setup (one RTT)
  // plus serialization plus half an RTT of propagation.
  xnet::Link* l = link(src_node, dst_node);
  if (l->partitioned()) {
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "migration fabric partitioned");
  }
  lightvm::Host* src_host = nodes_[src_node].host.get();
  sim::ShardGroup* group = group_;
  const int ctrl = ctrl_domain_;
  auto save_box =
      std::make_shared<RemoteBox<lv::Result<toolstack::Snapshot>>>(engine_);
  group->Post(ctrl, src_node, group->lookahead(),
              [group, src_node, ctrl, src_host, domid, save_box] {
                group->domain_engine(src_node).Spawn(RunSave(
                    group, src_node, ctrl, src_host, domid, save_box));
              });
  co_await save_box->done.Wait();
  lv::Result<toolstack::Snapshot> saved = std::move(*save_box->value);
  if (!saved.ok()) {
    co_return saved.error();
  }
  co_await engine_->Sleep(l->rtt() + l->SerializationDelay((*saved).memory) +
                          l->rtt() * 0.5);
  if (l->partitioned()) {
    // The fabric tore while the image streamed; the half-restored target
    // state is discarded with the stream. The source domain is already gone
    // (save tears it down), which mirrors a failed `xl migrate`.
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "migration stream interrupted by partition");
  }
  lightvm::Host* dst_host = nodes_[dst_node].host.get();
  auto restore_box =
      std::make_shared<RemoteBox<lv::Result<hv::DomainId>>>(engine_);
  group->Post(ctrl, dst_node, group->lookahead(),
              [group, dst_node, ctrl, dst_host, snap = *saved, restore_box] {
                group->domain_engine(dst_node).Spawn(RunRestore(
                    group, dst_node, ctrl, dst_host, snap, restore_box));
              });
  co_await restore_box->done.Wait();
  co_return std::move(*restore_box->value);
}

Cluster::Drift Cluster::AdmissionDrift() const {
  std::vector<lv::Bytes> memory(nodes_.size());
  std::vector<int64_t> vcpus(nodes_.size(), 0);
  for (const auto& [key, placement] : placements_) {
    size_t node = static_cast<size_t>(key >> 32);
    memory[node] += placement.memory;
    vcpus[node] += placement.vcpus;
  }
  Drift drift;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    lv::Bytes mem_diff = nodes_[i].memory_committed > memory[i]
                             ? nodes_[i].memory_committed - memory[i]
                             : memory[i] - nodes_[i].memory_committed;
    int64_t vcpu_diff = std::abs(nodes_[i].vcpus_committed - vcpus[i]);
    drift.memory = std::max(drift.memory, mem_diff);
    drift.vcpus = std::max(drift.vcpus, vcpu_diff);
  }
  return drift;
}

}  // namespace cluster
