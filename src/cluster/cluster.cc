#include "src/cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"
#include "src/core/verify.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace cluster {

namespace {
constexpr const char* kMod = "cluster";
}  // namespace

Cluster::Cluster(sim::Engine* engine, ClusterSpec spec,
                 std::unique_ptr<PlacementPolicy> policy)
    : engine_(engine), spec_(spec), policy_(std::move(policy)) {
  LV_CHECK_MSG(spec_.num_nodes > 0, "cluster needs at least one node");
  LV_CHECK_MSG(policy_ != nullptr, "cluster needs a placement policy");
  if (spec_.memory_budget == lv::Bytes()) {
    spec_.memory_budget = spec_.node.memory - spec_.node.dom0_memory;
  }
  if (spec_.vcpu_budget == 0) {
    int64_t guest_cores = spec_.node.cores - spec_.node.dom0_cores;
    spec_.vcpu_budget = spec_.vcpu_overcommit * guest_cores;
  }
  nodes_.resize(spec_.num_nodes);
  for (int i = 0; i < spec_.num_nodes; ++i) {
    nodes_[i].host =
        std::make_unique<lightvm::Host>(engine_, spec_.node, spec_.mechanisms);
    nodes_[i].host->set_obs_node(i);
  }
}

Cluster::~Cluster() {
  // Own-and-drain: the monitor and any reboot waiters may be parked in a
  // sleep or mid-evacuation; step the engine until every frame runs to its
  // stop check, then ~Co frees them with nothing else referencing them.
  monitor_stop_ = true;
  auto pending = [this] {
    if (monitor_.valid() && !monitor_.done()) {
      return true;
    }
    if (recovery_.valid() && !recovery_.done()) {
      return true;
    }
    for (const sim::Co<void>& waiter : reboot_waiters_) {
      if (waiter.valid() && !waiter.done()) {
        return true;
      }
    }
    return false;
  };
  while (pending() && engine_->Step()) {
  }
}

xnet::Link* Cluster::link(int a, int b) {
  LV_CHECK_MSG(a != b, "no self-link");
  if (a > b) {
    std::swap(a, b);
  }
  int64_t key = (static_cast<int64_t>(a) << 32) | static_cast<int64_t>(b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<xnet::Link>(engine_, spec_.link_gbps,
                                                        spec_.link_rtt))
             .first;
  }
  return it->second.get();
}

NodeView Cluster::view(int node) const {
  const Node& n = nodes_[node];
  NodeView v;
  v.index = node;
  // A crashed host stops admitting the moment it dies, even before the
  // health monitor's next sweep formally writes it off — otherwise every
  // deploy in the detection window re-picks the same dead (and now
  // least-loaded, since its budget is being released) node twice and fails.
  v.alive = n.alive && !n.host->crashed();
  v.memory_budget = spec_.memory_budget;
  v.memory_committed = n.memory_committed;
  v.vcpu_budget = spec_.vcpu_budget;
  v.vcpus_committed = n.vcpus_committed;
  v.vms = n.host->num_vms();
  v.active_creates = n.active_creates;
  return v;
}

std::vector<NodeView> Cluster::views() const {
  std::vector<NodeView> out;
  out.reserve(nodes_.size());
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    out.push_back(view(i));
  }
  return out;
}

int64_t Cluster::total_vms() const {
  int64_t total = 0;
  for (const Node& node : nodes_) {
    total += node.host->num_vms();
  }
  return total;
}

sim::Co<lv::Result<VmHandle>> Cluster::Deploy(toolstack::VmConfig config,
                                              bool wait_boot, obs::OpRef parent) {
  obs::OpRef op = obs::NewOp(parent);
  obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.deploy", op.root);
  // One re-placement is allowed when the chosen node dies under the deploy:
  // the reservation is released (generation-guarded) and placement runs
  // again over the survivors instead of leaking the budget or failing with
  // a raw node error.
  for (int placement_round = 0;; ++placement_round) {
    int pick = policy_->Pick(views(), config);
    if (pick < 0) {
      ++admission_rejects_;
      ++deploy_failures_;
      static metrics::Counter& rejects = metrics::GetCounter("cluster.admission_rejects");
      rejects.Inc();
      recorder.Record(0, op, "cluster", "deploy.reject", false);
      co_return lv::Err(lv::ErrorCode::kUnavailable, "no node admits the VM");
    }
    // Commit the budget before the first suspension point: a concurrent
    // Deploy sees this VM's reservation even though the create is in flight.
    Node& node = nodes_[pick];
    Placement placement{config.image.memory, config.vcpus, config};
    placement.op = op;
    const int64_t gen = node.generation;
    recorder.Record(pick, op, "cluster", "deploy", true, placement_round);
    node.memory_committed += placement.memory;
    node.vcpus_committed += placement.vcpus;
    ++node.active_creates;

    lv::Result<hv::DomainId> created =
        lv::Err(lv::ErrorCode::kUnavailable, "create not attempted");
    lv::Duration backoff = spec_.retry_backoff;
    for (int attempt = 0; attempt < std::max(1, spec_.create_retries); ++attempt) {
      if (attempt > 0) {
        ++deploy_retries_;
        static metrics::Counter& retries = metrics::GetCounter("cluster.deploy_retries");
        retries.Inc();
        co_await engine_->Sleep(backoff);
        backoff = backoff * 2.0;
        if (node.generation != gen || node.host->crashed()) {
          break;  // the node died while backing off
        }
      }
      created = co_await node.host->node().SubmitCreate(config, wait_boot, op).Get();
      if (created.ok()) {
        break;
      }
      // Retry only transient toolstack errors on a node that is still up;
      // anything else (bad config, out of memory, dead node) is final.
      if (created.error().code != lv::ErrorCode::kUnavailable ||
          node.generation != gen || node.host->crashed()) {
        break;
      }
    }

    const bool node_current = node.generation == gen;
    if (node_current) {
      --node.active_creates;
    }
    if (created.ok() && node_current && !node.host->crashed()) {
      VmHandle handle{pick, *created};
      placements_[Key(handle)] = std::move(placement);
      ++vms_deployed_;
      static metrics::Counter& deploys = metrics::GetCounter("cluster.vms_deployed");
      deploys.Inc();
      recorder.Record(pick, op, "cluster", "deploy.done", true, *created);
      trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.deploy.done", op.root);
      co_return handle;
    }
    // Failed — or succeeded onto a node that crashed meanwhile, whose settle
    // pass is tearing the VM down again. Release the reservation unless the
    // health monitor already wrote the whole node off.
    if (node_current) {
      node.memory_committed -= placement.memory;
      node.vcpus_committed -= placement.vcpus;
    }
    const bool node_lost = !node_current || node.host->crashed();
    if (node_lost && placement_round == 0) {
      ++deploy_replacements_;
      static metrics::Counter& replaced = metrics::GetCounter("cluster.deploy_replacements");
      replaced.Inc();
      recorder.Record(pick, op, "cluster", "deploy.replace", false);
      continue;
    }
    ++deploy_failures_;
    if (node_lost) {
      // Typed double failure: both the original node and the re-placed one
      // died under this deploy. Leave a post-mortem if a dump path is set.
      recorder.Record(pick, op, "cluster", "deploy.dead", false);
      recorder.MaybeDump();
      co_return lv::Err(lv::ErrorCode::kUnavailable,
                        "target node died during deploy");
    }
    recorder.Record(pick, op, "cluster", "deploy.fail", false);
    co_return created.error();
  }
}

sim::Co<lv::Status> Cluster::Retire(VmHandle handle, obs::OpRef parent) {
  if (handle.node < 0 || handle.node >= spec_.num_nodes) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "bad node index");
  }
  auto it = placements_.find(Key(handle));
  if (it == placements_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM handle");
  }
  obs::OpRef op = obs::NewOp(parent);
  obs::FlightRecorder::Get().Record(handle.node, op, "cluster", "retire", true,
                                    handle.domid);
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.retire", op.root);
  // Claim the placement before the first suspension point, so a concurrent
  // evacuation of a dying node cannot resurrect a VM its owner is retiring.
  Placement placement = std::move(it->second);
  placements_.erase(it);
  Node& node = nodes_[handle.node];
  const int64_t gen = node.generation;
  lv::Status destroyed =
      co_await node.host->node().SubmitDestroy(handle.domid, op).Get();
  if (node.generation != gen) {
    // The node died under the destroy: its state (and this VM) is gone and
    // its budgets were written off wholesale. The VM no longer runs, which
    // is what the caller asked for.
    co_return lv::Status::Ok();
  }
  if (!destroyed.ok()) {
    // Still owned by the node (e.g. a concurrent destructive op held the
    // exclusion); hand the placement back.
    placements_[Key(handle)] = std::move(placement);
    co_return destroyed;
  }
  node.memory_committed -= placement.memory;
  node.vcpus_committed -= placement.vcpus;
  co_return lv::Status::Ok();
}

sim::Co<lv::Result<VmHandle>> Cluster::Migrate(VmHandle handle, int target_node,
                                               obs::OpRef parent) {
  if (handle.node < 0 || handle.node >= spec_.num_nodes || target_node < 0 ||
      target_node >= spec_.num_nodes) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "bad node index");
  }
  if (target_node == handle.node) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "VM already on target node");
  }
  auto it = placements_.find(Key(handle));
  if (it == placements_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM handle");
  }
  Placement placement = it->second;
  Node& src = nodes_[handle.node];
  Node& dst = nodes_[target_node];
  // Admission on the target, committed up front like Deploy. The source
  // keeps its commitment until the migration succeeds (the guest occupies
  // both nodes while its memory streams).
  if (!dst.alive || dst.memory_committed + placement.memory > spec_.memory_budget ||
      dst.vcpus_committed + placement.vcpus > spec_.vcpu_budget) {
    ++admission_rejects_;
    static metrics::Counter& rejects = metrics::GetCounter("cluster.admission_rejects");
    rejects.Inc();
    co_return lv::Err(lv::ErrorCode::kUnavailable, "target node over budget");
  }
  obs::OpRef op = obs::NewOp(parent);
  obs::FlightRecorder::Get().Record(handle.node, op, "cluster", "migrate", true,
                                    handle.domid);
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.migrate", op.root);
  const int64_t src_gen = src.generation;
  const int64_t dst_gen = dst.generation;
  dst.memory_committed += placement.memory;
  dst.vcpus_committed += placement.vcpus;

  auto moved = co_await src.host->node().MigrateVm(
      handle.domid, &dst.host->node(), link(handle.node, target_node));

  if (!moved.ok()) {
    if (dst.generation == dst_gen) {
      dst.memory_committed -= placement.memory;
      dst.vcpus_committed -= placement.vcpus;
    }
    co_return moved.error();
  }
  if (placements_.find(Key(handle)) == placements_.end()) {
    // The source died mid-migration and the health monitor already evacuated
    // this VM to a fresh home; the migrated copy is a duplicate. Retire it
    // and report the migration as failed.
    (void)co_await dst.host->node().SubmitDestroy(*moved).Get();
    if (dst.generation == dst_gen) {
      dst.memory_committed -= placement.memory;
      dst.vcpus_committed -= placement.vcpus;
    }
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "VM was evacuated while migrating");
  }
  placements_.erase(Key(handle));
  if (src.generation == src_gen) {
    src.memory_committed -= placement.memory;
    src.vcpus_committed -= placement.vcpus;
  }
  if (dst.generation != dst_gen) {
    // The target died while the guest streamed; its settle pass reaps the
    // arrived copy and its budgets were written off.
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "target node died during migration");
  }
  VmHandle out{target_node, *moved};
  placement.op = op;  // the migrated VM now belongs to the migrate chain
  placements_[Key(out)] = std::move(placement);
  ++migrations_;
  static metrics::Counter& migrations = metrics::GetCounter("cluster.migrations");
  migrations.Inc();
  obs::FlightRecorder::Get().Record(target_node, op, "cluster", "migrate.done", true,
                                    *moved);
  trace::Tracer::Get().Flow(trace::kHostTrack, "cluster.migrate.done", op.root);
  co_return out;
}

// --- Self-healing -----------------------------------------------------------

void Cluster::StartHealthMonitor() {
  if (monitor_.valid()) {
    return;
  }
  monitor_ = HealthLoop();
  monitor_.Start();
  recovery_ = RecoveryLoop();
  recovery_.Start();
}

void Cluster::CrashNode(int node) { nodes_[node].host->Crash(); }

void Cluster::RequestReboot(int node) {
  reboot_waiters_.push_back(RebootWhenSettled(node));
  reboot_waiters_.back().Start();
}

sim::Co<void> Cluster::RebootWhenSettled(int node) {
  lightvm::Host* host = nodes_[node].host.get();
  // Reboot only after the crash settled AND (when a monitor runs) after the
  // monitor wrote the node off. A reboot sneaking in between two sweeps
  // would make the crash invisible — the node looks healthy again while the
  // VMs its settle pass destroyed are still on the books.
  auto ready = [&] {
    if (!host->crashed()) {
      return true;  // spurious request, nothing to reboot
    }
    if (!host->crash_settled()) {
      return false;
    }
    return !monitor_.valid() || !nodes_[node].alive;
  };
  while (!monitor_stop_ && !ready()) {
    co_await engine_->Sleep(lv::Duration::Millis(1));
  }
  if (!monitor_stop_ && host->crashed()) {
    host->Reboot();
    LV_DEBUG(kMod, "node %d rebooted", node);
  }
}

std::vector<std::pair<hv::DomainId, Cluster::Placement>> Cluster::WriteOffNode(
    int node) {
  Node& n = nodes_[node];
  ++n.generation;
  n.alive = false;
  n.memory_committed = lv::Bytes();
  n.vcpus_committed = 0;
  n.active_creates = 0;
  std::vector<std::pair<hv::DomainId, Placement>> lost;
  for (auto it = placements_.begin(); it != placements_.end();) {
    if (static_cast<int>(it->first >> 32) == node) {
      lost.emplace_back(static_cast<hv::DomainId>(it->first & 0xffffffffll),
                        std::move(it->second));
      it = placements_.erase(it);
    } else {
      ++it;
    }
  }
  // Deterministic evacuation order regardless of hash-map iteration.
  std::sort(lost.begin(), lost.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return lost;
}

void Cluster::CheckInvariants() {
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    Node& node = nodes_[i];
    if (node.memory_committed > spec_.memory_budget ||
        node.vcpus_committed > spec_.vcpu_budget ||
        node.memory_committed < lv::Bytes() || node.vcpus_committed < 0) {
      ++invariant_failures_;
      static metrics::Counter& violations =
          metrics::GetCounter("cluster.invariant_failures");
      violations.Inc();
      obs::FlightRecorder::Get().Record(i, {}, "cluster", "invariant.budget", false);
      obs::FlightRecorder::Get().MaybeDump();
      LV_ERROR(kMod, "node %d admission out of bounds: mem=%lld vcpus=%lld", i,
               (long long)node.memory_committed.count(),
               (long long)node.vcpus_committed);
    }
    // Leak invariants are only meaningful when the node is not mid-operation
    // (destroys pass domains through transient states) and, after a crash,
    // once the settle pass finished tearing its state down.
    lightvm::Host& host = *node.host;
    if (host.node().jobs_active() == 0 &&
        (!host.crashed() || host.crash_settled())) {
      lv::Status ok = lightvm::VerifyNoLeakedResources(host);
      if (!ok.ok()) {
        ++invariant_failures_;
        static metrics::Counter& violations =
            metrics::GetCounter("cluster.invariant_failures");
        violations.Inc();
        LV_ERROR(kMod, "node %d leak invariant violated: %s", i,
                 ok.error().message.c_str());
      }
    }
  }
}

sim::Co<void> Cluster::HealthLoop() {
  // Detection only: write dead nodes off and queue their VMs for the
  // recovery loop. The sweep itself never blocks on a redeploy, so a second
  // node crashing during an evacuation is still detected one period later.
  while (!monitor_stop_) {
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      Node& node = nodes_[i];
      if (node.alive && node.host->crashed()) {
        ++node_failures_;
        static metrics::Counter& failures = metrics::GetCounter("cluster.node_failures");
        failures.Inc();
        auto lost = WriteOffNode(i);
        vms_lost_ += static_cast<int64_t>(lost.size());
        static metrics::Counter& lost_vms = metrics::GetCounter("cluster.vms_lost");
        lost_vms.Inc(static_cast<double>(lost.size()));
        lv::TimePoint detected = engine_->now();
        obs::FlightRecorder::Get().Record(i, {}, "cluster", "node.dead", false,
                                          static_cast<int64_t>(lost.size()));
        LV_INFO(kMod, "node %d dead, evacuating %lld VMs", i,
                (long long)lost.size());
        for (auto& [domid, placement] : lost) {
          evac_queue_.push_back(
              Evacuee{domid, i, detected, std::move(placement.config), placement.op});
        }
      } else if (!node.alive && !node.host->crashed()) {
        // The node rebooted (empty); hand it back to the placement policy.
        node.alive = true;
        obs::FlightRecorder::Get().Record(i, {}, "cluster", "node.readmit", true);
        LV_INFO(kMod, "node %d back in service", i);
      }
    }
    CheckInvariants();
    co_await engine_->Sleep(spec_.health_period);
  }
}

sim::Co<void> Cluster::RecoveryLoop() {
  // Drains the evacuation queue one VM at a time. The VM's state died with
  // its node, so evacuation is a fresh placement of the stored config (not a
  // migration), budget-accounted through the regular Deploy path.
  while (!monitor_stop_) {
    if (evac_queue_.empty()) {
      co_await engine_->Sleep(spec_.health_period);
      continue;
    }
    Evacuee ev = std::move(evac_queue_.front());
    evac_queue_.pop_front();
    // Re-deploy under the original Deploy op: the evacuation joins the
    // flow of the operation that placed the VM in the first place.
    obs::FlightRecorder::Get().Record(ev.from_node, ev.op, "cluster", "evacuate", true,
                                      ev.domid);
    auto replaced = co_await Deploy(ev.config, /*wait_boot=*/true, ev.op);
    if (replaced.ok()) {
      ++vms_recovered_;
      recovery_ms_.push_back((engine_->now() - ev.detected).ms());
      static metrics::Counter& recovered = metrics::GetCounter("cluster.vms_recovered");
      recovered.Inc();
      static metrics::Histogram& recovery =
          metrics::GetHistogram("cluster.recovery_ms", "ms");
      recovery.RecordDuration(engine_->now() - ev.detected);
    } else {
      ++vms_unrecovered_;
      static metrics::Counter& unrecovered =
          metrics::GetCounter("cluster.vms_unrecovered");
      unrecovered.Inc();
      LV_WARN(kMod, "evacuation of dom%lld from node %d failed: %s",
              (long long)ev.domid, ev.from_node, replaced.error().message.c_str());
    }
  }
}

Cluster::Drift Cluster::AdmissionDrift() const {
  std::vector<lv::Bytes> memory(nodes_.size());
  std::vector<int64_t> vcpus(nodes_.size(), 0);
  for (const auto& [key, placement] : placements_) {
    size_t node = static_cast<size_t>(key >> 32);
    memory[node] += placement.memory;
    vcpus[node] += placement.vcpus;
  }
  Drift drift;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    lv::Bytes mem_diff = nodes_[i].memory_committed > memory[i]
                             ? nodes_[i].memory_committed - memory[i]
                             : memory[i] - nodes_[i].memory_committed;
    int64_t vcpu_diff = std::abs(nodes_[i].vcpus_committed - vcpus[i]);
    drift.memory = std::max(drift.memory, mem_diff);
    drift.vcpus = std::max(drift.vcpus, vcpu_diff);
  }
  return drift;
}

}  // namespace cluster
