#include "src/cluster/cluster.h"

#include "src/metrics/metrics.h"

namespace cluster {

Cluster::Cluster(sim::Engine* engine, ClusterSpec spec,
                 std::unique_ptr<PlacementPolicy> policy)
    : engine_(engine), spec_(spec), policy_(std::move(policy)) {
  LV_CHECK_MSG(spec_.num_nodes > 0, "cluster needs at least one node");
  LV_CHECK_MSG(policy_ != nullptr, "cluster needs a placement policy");
  if (spec_.memory_budget == lv::Bytes()) {
    spec_.memory_budget = spec_.node.memory - spec_.node.dom0_memory;
  }
  if (spec_.vcpu_budget == 0) {
    int64_t guest_cores = spec_.node.cores - spec_.node.dom0_cores;
    spec_.vcpu_budget = spec_.vcpu_overcommit * guest_cores;
  }
  nodes_.resize(spec_.num_nodes);
  for (Node& node : nodes_) {
    node.host = std::make_unique<lightvm::Host>(engine_, spec_.node, spec_.mechanisms);
  }
}

Cluster::~Cluster() = default;

xnet::Link* Cluster::link(int a, int b) {
  LV_CHECK_MSG(a != b, "no self-link");
  if (a > b) {
    std::swap(a, b);
  }
  int64_t key = (static_cast<int64_t>(a) << 32) | static_cast<int64_t>(b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<xnet::Link>(engine_, spec_.link_gbps,
                                                        spec_.link_rtt))
             .first;
  }
  return it->second.get();
}

NodeView Cluster::view(int node) const {
  const Node& n = nodes_[node];
  NodeView v;
  v.index = node;
  v.memory_budget = spec_.memory_budget;
  v.memory_committed = n.memory_committed;
  v.vcpu_budget = spec_.vcpu_budget;
  v.vcpus_committed = n.vcpus_committed;
  v.vms = n.host->num_vms();
  v.active_creates = n.active_creates;
  return v;
}

std::vector<NodeView> Cluster::views() const {
  std::vector<NodeView> out;
  out.reserve(nodes_.size());
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    out.push_back(view(i));
  }
  return out;
}

int64_t Cluster::total_vms() const {
  int64_t total = 0;
  for (const Node& node : nodes_) {
    total += node.host->num_vms();
  }
  return total;
}

sim::Co<lv::Result<VmHandle>> Cluster::Deploy(toolstack::VmConfig config,
                                              bool wait_boot) {
  int pick = policy_->Pick(views(), config);
  if (pick < 0) {
    ++admission_rejects_;
    ++deploy_failures_;
    static metrics::Counter& rejects = metrics::GetCounter("cluster.admission_rejects");
    rejects.Inc();
    co_return lv::Err(lv::ErrorCode::kUnavailable, "no node admits the VM");
  }
  // Commit the budget before the first suspension point: a concurrent
  // Deploy sees this VM's reservation even though the create is in flight.
  Node& node = nodes_[pick];
  Placement placement{config.image.memory, config.vcpus};
  node.memory_committed += placement.memory;
  node.vcpus_committed += placement.vcpus;
  ++node.active_creates;

  auto created =
      co_await node.host->node().SubmitCreate(std::move(config), wait_boot).Get();

  --node.active_creates;
  if (!created.ok()) {
    node.memory_committed -= placement.memory;
    node.vcpus_committed -= placement.vcpus;
    ++deploy_failures_;
    co_return created.error();
  }
  VmHandle handle{pick, *created};
  placements_[Key(handle)] = placement;
  ++vms_deployed_;
  static metrics::Counter& deploys = metrics::GetCounter("cluster.vms_deployed");
  deploys.Inc();
  co_return handle;
}

sim::Co<lv::Status> Cluster::Retire(VmHandle handle) {
  if (handle.node < 0 || handle.node >= spec_.num_nodes) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "bad node index");
  }
  auto it = placements_.find(Key(handle));
  if (it == placements_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM handle");
  }
  Placement placement = it->second;
  Node& node = nodes_[handle.node];
  lv::Status destroyed =
      co_await node.host->node().SubmitDestroy(handle.domid).Get();
  if (!destroyed.ok()) {
    co_return destroyed;
  }
  // Release the budget only on success; a concurrent Retire of the same
  // handle fails inside the node (kUnavailable / kNotFound) and changes
  // nothing here.
  node.memory_committed -= placement.memory;
  node.vcpus_committed -= placement.vcpus;
  placements_.erase(Key(handle));
  co_return lv::Status::Ok();
}

sim::Co<lv::Result<VmHandle>> Cluster::Migrate(VmHandle handle, int target_node) {
  if (handle.node < 0 || handle.node >= spec_.num_nodes || target_node < 0 ||
      target_node >= spec_.num_nodes) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "bad node index");
  }
  if (target_node == handle.node) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "VM already on target node");
  }
  auto it = placements_.find(Key(handle));
  if (it == placements_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "unknown VM handle");
  }
  Placement placement = it->second;
  Node& src = nodes_[handle.node];
  Node& dst = nodes_[target_node];
  // Admission on the target, committed up front like Deploy. The source
  // keeps its commitment until the migration succeeds (the guest occupies
  // both nodes while its memory streams).
  if (dst.memory_committed + placement.memory > spec_.memory_budget ||
      dst.vcpus_committed + placement.vcpus > spec_.vcpu_budget) {
    ++admission_rejects_;
    static metrics::Counter& rejects = metrics::GetCounter("cluster.admission_rejects");
    rejects.Inc();
    co_return lv::Err(lv::ErrorCode::kUnavailable, "target node over budget");
  }
  dst.memory_committed += placement.memory;
  dst.vcpus_committed += placement.vcpus;

  auto moved = co_await src.host->node().MigrateVm(
      handle.domid, &dst.host->node(), link(handle.node, target_node));

  if (!moved.ok()) {
    dst.memory_committed -= placement.memory;
    dst.vcpus_committed -= placement.vcpus;
    co_return moved.error();
  }
  src.memory_committed -= placement.memory;
  src.vcpus_committed -= placement.vcpus;
  placements_.erase(Key(handle));
  VmHandle out{target_node, *moved};
  placements_[Key(out)] = placement;
  ++migrations_;
  static metrics::Counter& migrations = metrics::GetCounter("cluster.migrations");
  migrations.Inc();
  co_return out;
}

}  // namespace cluster
