// Coroutine synchronization primitives for the simulator: one-shot events,
// counting semaphores, unbounded channels and shared futures.
//
// All wake-ups go through the engine's event queue (at the current simulated
// time) rather than resuming inline. That keeps notification order
// deterministic and prevents unbounded recursion when a Trigger() cascades.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/assert.h"
#include "src/sim/engine.h"

namespace sim {

// One-shot level-triggered event: Wait() returns immediately once Trigger()
// has been called; otherwise it suspends until the trigger.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine* engine) : engine_(engine) {}
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  bool triggered() const { return triggered_; }

  void Trigger() {
    if (triggered_) {
      return;
    }
    triggered_ = true;
    for (std::coroutine_handle<> h : waiters_) {
      engine_->Schedule(Duration(), [h] { h.resume(); });
    }
    waiters_.clear();
  }

  struct Awaiter {
    OneShotEvent* ev;
    bool await_ready() const noexcept { return ev->triggered_; }
    void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{this}; }

 private:
  Engine* engine_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO handoff.
class Semaphore {
 public:
  Semaphore(Engine* engine, int64_t initial) : engine_(engine), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  int64_t available() const { return count_; }
  int64_t waiters() const { return static_cast<int64_t>(waiters_.size()); }

  struct Awaiter {
    Semaphore* sem;
    bool await_ready() const noexcept {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter Acquire() { return Awaiter{this}; }

  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      engine_->Schedule(Duration(), [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

 private:
  Engine* engine_;
  int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Unbounded multi-producer channel. Receivers suspend when empty; values are
// handed to receivers in FIFO order.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine* engine) : engine_(engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  // Non-blocking receive of an already-queued value (never steals from a
  // parked receiver).
  std::optional<T> TryRecv() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void Send(T value) {
    if (!receivers_.empty()) {
      Awaiter* rx = receivers_.front();
      receivers_.pop_front();
      rx->slot = std::move(value);
      std::coroutine_handle<> h = rx->handle;
      rx->wakeup = engine_->Schedule(Duration(), [h] { h.resume(); });
    } else {
      queue_.push_back(std::move(value));
    }
  }

  struct Awaiter {
    Channel* ch;
    std::optional<T> slot;
    std::coroutine_handle<> handle;
    // Handle of the wake-up Send() scheduled for this awaiter, so a frame
    // destroyed while its wake-up is still in flight can cancel it instead of
    // letting the engine resume a dead coroutine.
    EventHandle wakeup;

    ~Awaiter() {
      if (!handle) {
        return;  // Never suspended; nothing registered.
      }
      // Destroying a suspended receiver: deregister so a later Send() cannot
      // hand a value to a dead frame, and cancel any in-flight wake-up.
      for (auto it = ch->receivers_.begin(); it != ch->receivers_.end(); ++it) {
        if (*it == this) {
          ch->receivers_.erase(it);
          break;
        }
      }
      wakeup.Cancel();
    }

    bool await_ready() noexcept {
      if (!ch->queue_.empty()) {
        slot = std::move(ch->queue_.front());
        ch->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch->receivers_.push_back(this);
    }
    T await_resume() {
      LV_CHECK(slot.has_value());
      return std::move(*slot);
    }
  };
  Awaiter Recv() { return Awaiter{this, std::nullopt, nullptr, {}}; }

 private:
  Engine* engine_;
  std::deque<T> queue_;
  std::deque<Awaiter*> receivers_;
};

// One-shot shared future: Set() once, any number of Get() waiters. The value
// is copied to each waiter.
template <typename T>
class SharedFuture {
 public:
  struct Awaiter;

  explicit SharedFuture(Engine* engine) : state_(std::make_shared<State>()) {
    state_->engine = engine;
  }

  bool has_value() const { return state_->value.has_value(); }
  const T& value() const {
    LV_CHECK(state_->value.has_value());
    return *state_->value;
  }

  void Set(T value) {
    LV_CHECK_MSG(!state_->value.has_value(), "SharedFuture set twice");
    state_->value = std::move(value);
    for (Awaiter* a : state_->waiters) {
      std::coroutine_handle<> h = a->handle;
      a->wakeup = state_->engine->Schedule(Duration(), [h] { h.resume(); });
    }
    state_->waiters.clear();
  }

  struct State {
    Engine* engine = nullptr;
    std::optional<T> value;
    std::vector<Awaiter*> waiters;
  };

  struct Awaiter {
    std::shared_ptr<State> state;
    std::coroutine_handle<> handle;
    EventHandle wakeup;

    ~Awaiter() {
      if (!handle) {
        return;  // Never suspended; nothing registered.
      }
      // Same contract as Channel::Awaiter: a destroyed waiter deregisters
      // itself and cancels any in-flight wake-up so the engine never resumes
      // a dead frame.
      auto& w = state->waiters;
      for (auto it = w.begin(); it != w.end(); ++it) {
        if (*it == this) {
          w.erase(it);
          break;
        }
      }
      wakeup.Cancel();
    }

    bool await_ready() const noexcept { return state->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      state->waiters.push_back(this);
    }
    T await_resume() { return *state->value; }
  };
  Awaiter Get() { return Awaiter{state_, nullptr, {}}; }

 private:
  std::shared_ptr<State> state_;
};

}  // namespace sim
