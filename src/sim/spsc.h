// Lock-free single-producer/single-consumer ring buffer, the transport under
// the cross-shard mailboxes (sim/shard.h). One shard thread pushes while the
// coordinator pops at epoch barriers; the acquire/release pair on the two
// indices is the only synchronization on the fast path (the same shape as
// openal-soft's common/ringbuffer.h mixer handoff).
//
// Capacity is rounded up to a power of two. Push fails (returns false) when
// the ring is full — callers keep an overflow side-channel rather than
// blocking, because a shard thread must never wait mid-epoch.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace sim {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer side. Returns false when full (the slot is untouched).
  bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == slots_.size()) {
      return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool TryPop(T& out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Approximate (exact when producer and consumer are quiescent).
  size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

 private:
  std::atomic<size_t> head_{0};  // next write (producer-owned)
  std::atomic<size_t> tail_{0};  // next read (consumer-owned)
  std::vector<T> slots_;
  size_t mask_ = 0;
};

}  // namespace sim
