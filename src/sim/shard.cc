#include "src/sim/shard.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>

#include "src/base/assert.h"
#include "src/base/log.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace sim {

namespace {

// splitmix64: derives statistically independent seeds from the root seed so
// each shard engine and each domain gets its own stream.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

TimePoint EngineNow(void* ctx) { return static_cast<Engine*>(ctx)->now(); }

double WallSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ShardGroup::ShardGroup(uint64_t seed, int num_domains, int num_shards,
                       Duration lookahead)
    : num_domains_(num_domains), lookahead_(lookahead) {
  LV_CHECK_MSG(num_domains >= 1, "shard group needs at least one domain");
  LV_CHECK_MSG(num_shards >= 1 && num_shards <= num_domains,
               "shard count must be in [1, num_domains]");
  LV_CHECK_MSG(lookahead > Duration(), "lookahead must be positive");
  engines_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    engines_.push_back(
        std::make_unique<Engine>(SplitMix64(seed ^ static_cast<uint64_t>(s))));
    outboxes_.push_back(std::make_unique<Outbox>());
  }
  domain_rngs_.reserve(static_cast<size_t>(num_domains));
  for (int d = 0; d < num_domains; ++d) {
    domain_rngs_.emplace_back(
        SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(d) + 1)));
  }
  post_seq_.assign(static_cast<size_t>(num_domains), 0);
  stats_.assign(static_cast<size_t>(num_shards), ShardStats{});
}

ShardGroup::~ShardGroup() {
  // Undelivered messages (a run that hit its horizon) own their closures.
  for (auto& box : outboxes_) {
    Message* m = nullptr;
    while (box->ring.TryPop(m)) {
      delete m;
    }
    for (Message* o : box->overflow) {
      delete o;
    }
    box->overflow.clear();
  }
}

void ShardGroup::Post(int src, int dst, Duration delay,
                      std::function<void()> fn) {
  LV_CHECK_MSG(src >= 0 && src < num_domains_ && dst >= 0 && dst < num_domains_,
               "bad mailbox domain");
  LV_CHECK_MSG(delay >= lookahead_,
               "cross-domain delay below the conservative lookahead");
  auto* m = new Message;
  m->when = domain_engine(src).now() + delay;
  m->src = src;
  m->dst = dst;
  m->seq = post_seq_[static_cast<size_t>(src)]++;
  m->fn = std::move(fn);
  Outbox& box = *outboxes_[static_cast<size_t>(shard_of(src))];
  if (!box.ring.TryPush(m)) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.overflow.push_back(m);
  }
}

TimePoint ShardGroup::max_now() const {
  TimePoint t;
  for (const auto& e : engines_) {
    t = std::max(t, e->now());
  }
  return t;
}

TimePoint ShardGroup::GridAbove(TimePoint t) const {
  // Smallest multiple of the lookahead strictly greater than t. Picking the
  // epoch end this way keeps every processed event within `lookahead` of the
  // epoch end (the conservative-safety requirement) while jumping over idle
  // grid slots in O(1).
  const int64_t l = lookahead_.ns();
  const int64_t k = (t - TimePoint()).ns() / l;
  return TimePoint() + Duration::Nanos((k + 1) * l);
}

void ShardGroup::DeliverMail() {
  scratch_.clear();
  for (auto& box : outboxes_) {
    Message* m = nullptr;
    while (box->ring.TryPop(m)) {
      scratch_.push_back(m);
    }
    if (!box->overflow.empty()) {
      std::lock_guard<std::mutex> lock(box->mu);
      scratch_.insert(scratch_.end(), box->overflow.begin(),
                      box->overflow.end());
      box->overflow.clear();
    }
  }
  if (scratch_.empty()) {
    return;
  }
  // The total delivery order (when, src domain, seq) is independent of the
  // domain→shard mapping; scheduling in this order hands each destination
  // engine ascending sequence numbers, so its queue pops them identically
  // whether messages came from one engine or four.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Message* a, const Message* b) {
              if (a->when != b->when) {
                return a->when < b->when;
              }
              if (a->src != b->src) {
                return a->src < b->src;
              }
              return a->seq < b->seq;
            });
  for (Message* m : scratch_) {
    domain_engine(m->dst).ScheduleAt(m->when, std::move(m->fn));
    delete m;
  }
  delivered_ += scratch_.size();
  scratch_.clear();
}

void ShardGroup::RunShardEpoch(int shard, TimePoint target) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_[static_cast<size_t>(shard)].processed +=
      engines_[static_cast<size_t>(shard)]->ProcessBefore(target);
  stats_[static_cast<size_t>(shard)].busy_s += WallSince(t0);
}

void ShardGroup::EnterShardContext(int shard) {
  Engine* e = engines_[static_cast<size_t>(shard)].get();
  lv::Logger::AttachThreadClock(&EngineNow, e);
  obs::FlightRecorder::AttachThreadClock(&EngineNow, e);
  if (!captures_.empty()) {
    trace::Tracer::SetThreadTracer(captures_[static_cast<size_t>(shard)].get());
  }
}

void ShardGroup::ExitShardContext() {
  lv::Logger::DetachThreadClock();
  obs::FlightRecorder::DetachThreadClock();
  trace::Tracer::SetThreadTracer(nullptr);
}

void ShardGroup::SetupTraceCapture() {
  captures_.clear();
  for (size_t s = 0; s < engines_.size(); ++s) {
    captures_.push_back(trace::Tracer::NewCapture(trace::Tracer::Get()));
    captures_.back()->AttachClock(&EngineNow, engines_[s].get());
  }
}

void ShardGroup::MergeTraceCapture() {
  trace::Tracer& global = trace::Tracer::Get();
  for (auto& capture : captures_) {
    global.MergeCapture(*capture);
  }
  captures_.clear();
}

bool ShardGroup::RunUntil(std::function<bool()> pred, Duration horizon) {
  const TimePoint deadline =
      horizon == Duration::Max() ? TimePoint::Max() : max_now() + horizon;
  const int S = num_shards();
  const auto wall0 = std::chrono::steady_clock::now();
  const bool capture = trace::Tracer::Get().enabled();
  if (capture) {
    SetupTraceCapture();
  }

  std::barrier<> start_barrier(S);
  std::barrier<> end_barrier(S);
  std::vector<std::thread> workers;
  for (int s = 1; s < S; ++s) {
    workers.emplace_back([this, s, &start_barrier, &end_barrier] {
      EnterShardContext(s);
      for (;;) {
        const auto w0 = std::chrono::steady_clock::now();
        start_barrier.arrive_and_wait();
        stats_[static_cast<size_t>(s)].stall_s += WallSince(w0);
        if (cmd_.exit) {
          break;
        }
        RunShardEpoch(s, cmd_.target);
        end_barrier.arrive_and_wait();
      }
      ExitShardContext();
    });
  }
  EnterShardContext(0);

  bool result = false;
  for (;;) {
    // All shards are parked here, so delivering mail, reading cross-shard
    // state in pred() and peeking every queue are race-free.
    DeliverMail();
    if (pred && pred()) {
      result = true;
      break;
    }
    std::optional<TimePoint> next;
    for (auto& e : engines_) {
      std::optional<TimePoint> t = e->NextEventTime();
      if (t && (!next || *t < *next)) {
        next = t;
      }
    }
    if (!next || *next > deadline) {
      result = pred ? pred() : !next;
      break;
    }
    cmd_ = EpochCmd{GridAbove(*next), false};
    ++epochs_;
    if (S == 1) {
      RunShardEpoch(0, cmd_.target);
    } else {
      start_barrier.arrive_and_wait();
      RunShardEpoch(0, cmd_.target);
      end_barrier.arrive_and_wait();
    }
  }

  if (S > 1) {
    cmd_ = EpochCmd{TimePoint(), true};
    start_barrier.arrive_and_wait();
    for (std::thread& t : workers) {
      t.join();
    }
  }
  ExitShardContext();
  const double wall = WallSince(wall0);
  run_wall_s_ += wall;
  // The coordinator's non-processing time is coordination + barrier waits.
  stats_[0].stall_s = std::max(0.0, run_wall_s_ - stats_[0].busy_s);
  if (capture) {
    MergeTraceCapture();
  }
  return result;
}

void ShardGroup::RunToQuiescence(Duration horizon) {
  (void)RunUntil(nullptr, horizon);
}

}  // namespace sim
