#include "src/sim/engine.h"

#include "src/base/log.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace sim {

namespace {

TimePoint LoggerNow(void* ctx) { return static_cast<Engine*>(ctx)->now(); }

}  // namespace

Engine::Engine(uint64_t seed) : rng_(seed) {
  lv::Logger::Get().AttachClock(&LoggerNow, this);
  trace::Tracer::Get().AttachClock(&LoggerNow, this);
  obs::FlightRecorder::Get().AttachClock(&LoggerNow, this);
}

Engine::~Engine() {
  // Reclaim detached frames still parked on the queue. Destroying a frame
  // only unwinds its locals (awaiter destructors cancel their events; nothing
  // resumes), but those destructors may themselves spawn or finish other
  // detached tasks, so loop rather than iterate. Newest first, so a late
  // frame referencing state owned by an earlier one unwinds before it.
  while (!detached_frames_.empty()) {
    auto it = std::prev(detached_frames_.end());
    void* frame = it->second;
    detached_frames_.erase(it);
    std::coroutine_handle<>::from_address(frame).destroy();
  }
  lv::Logger::Get().DetachClock();
  trace::Tracer::Get().DetachClock();
  obs::FlightRecorder::Get().DetachClock();
}

EventHandle Engine::ScheduleAt(TimePoint when, std::function<void()> fn) {
  LV_CHECK_MSG(when >= now_, "cannot schedule an event in the simulated past");
  auto ev = std::make_unique<Event>();
  ev->when = when;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  ev->state = std::make_shared<EventHandle::State>();
  ev->state->owner = this;
  EventHandle handle{std::weak_ptr<EventHandle::State>(ev->state)};
  queue_.push(std::move(ev));
  return handle;
}

void Engine::NoteCancelled() {
  ++cancelled_pending_;
  // Lazy compaction: once dead entries dominate, the heap mostly shuffles
  // garbage — rebuild it. The floor keeps tiny queues (where pops drain the
  // dead entries for free) from compacting on every other Cancel.
  if (queue_.size() >= 64 && cancelled_pending_ * 2 > queue_.size()) {
    Compact();
  }
}

void Engine::Compact() {
  std::vector<std::unique_ptr<Event>> live;
  live.reserve(queue_.size() - cancelled_pending_);
  while (!queue_.empty()) {
    auto& top = const_cast<std::unique_ptr<Event>&>(queue_.top());
    std::unique_ptr<Event> ev = std::move(top);
    queue_.pop();
    if (!ev->state->cancelled) {
      live.push_back(std::move(ev));
    } else {
      ev->state->owner = nullptr;
    }
  }
  queue_ = decltype(queue_)(Later{}, std::move(live));
  cancelled_pending_ = 0;
  ++compactions_;
}

void Engine::Spawn(Co<void> task) {
  auto h = task.Release();
  LV_CHECK_MSG(h != nullptr, "spawning an empty task");
  trace::Count("engine.tasks_spawned", 1);
  internal::Promise<void>& p = h.promise();
  p.detached = true;
  p.reap = &Engine::ReapDetached;
  p.reap_ctx = this;
  p.reap_id = next_detached_id_++;
  detached_frames_.emplace(p.reap_id, h.address());
  h.resume();
}

void Engine::ReapDetached(void* ctx, uint64_t id) {
  static_cast<Engine*>(ctx)->detached_frames_.erase(id);
}

std::unique_ptr<Engine::Event> Engine::PopNext() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move is safe because we pop right away.
    auto& top = const_cast<std::unique_ptr<Event>&>(queue_.top());
    std::unique_ptr<Event> ev = std::move(top);
    queue_.pop();
    ev->state->owner = nullptr;
    if (!ev->state->cancelled) {
      return ev;
    }
    --cancelled_pending_;
  }
  return nullptr;
}

std::optional<TimePoint> Engine::NextEventTime() {
  while (!queue_.empty()) {
    if (!queue_.top()->state->cancelled) {
      return queue_.top()->when;
    }
    auto& top = const_cast<std::unique_ptr<Event>&>(queue_.top());
    std::unique_ptr<Event> dead = std::move(top);
    queue_.pop();
    dead->state->owner = nullptr;
    --cancelled_pending_;
  }
  return std::nullopt;
}

uint64_t Engine::ProcessBefore(TimePoint t) {
  uint64_t count = 0;
  while (true) {
    std::optional<TimePoint> next = NextEventTime();
    if (!next || *next >= t) {
      return count;
    }
    std::unique_ptr<Event> ev = PopNext();
    now_ = ev->when;
    ++processed_;
    ++count;
    trace::Count("engine.events", 1);
    ev->fn();
  }
}

bool Engine::Step() {
  std::unique_ptr<Event> ev = PopNext();
  if (!ev) {
    return false;
  }
  now_ = ev->when;
  ++processed_;
  trace::Count("engine.events", 1);
  ev->fn();
  return true;
}

void Engine::Run() {
  while (Step()) {
  }
}

void Engine::RunUntil(TimePoint t) {
  while (true) {
    std::unique_ptr<Event> ev = PopNext();
    if (!ev) {
      break;
    }
    if (ev->when > t) {
      // Put it back; it stays pending beyond the horizon.
      ev->state->owner = this;
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev->when;
    ++processed_;
    trace::Count("engine.events", 1);
    ev->fn();
  }
  if (now_ < t) {
    now_ = t;
  }
}

size_t Engine::pending_events() const { return queue_.size(); }

}  // namespace sim
