// Sharded parallel simulation: N sim::Engines driven in lockstep epochs on
// real threads, synchronized by conservative lookahead.
//
// Model. The simulated world is split into `num_domains` logical time
// domains (the cluster maps one domain per node plus one control domain).
// Domains are assigned round-robin onto `num_shards` engines; every engine
// keeps its own event queue, clock and per-domain RNG streams derived from
// the root seed. Cross-domain interaction goes exclusively through Post():
// a timestamped closure carried by a lock-free SPSC mailbox (sim/spsc.h)
// and delivered on the destination engine. Post() requires
// `delay >= lookahead`, where lookahead is the minimum latency of the
// inter-node links / migration fabric — the physical reason a shard can
// run `lookahead` ahead of its neighbours without missing anything.
//
// Epoch scheme (conservative, BSP-style). RunUntil() repeats:
//   1. deliver all posted messages, sorted by (when, src-domain, seq), onto
//      their destination engines,
//   2. evaluate the caller's predicate (all shards parked, safe to read),
//   3. pick the epoch end E: the smallest grid point k*lookahead strictly
//      above the globally earliest pending event,
//   4. every shard processes its events with when < E in parallel, then
//      waits at a barrier.
// Safety sketch: step 3 guarantees every event processed in the epoch has
// when >= E - lookahead, so any message it posts is delivered at
// when + delay >= E — always a future epoch, never the running one. The
// grid alignment also implements deterministic time jumps: an idle stretch
// costs one barrier, not one barrier per lookahead quantum.
//
// Determinism. Same-seed runs are byte-identical regardless of the shard
// count because (a) message delivery order is the total order
// (when, src-domain, seq), independent of which engine hosts a domain,
// (b) domains never share mutable state except commutative singletons
// (metrics counters), and (c) per-domain RNG/op-id streams replace any
// engine-global ones. `num_shards == 1` runs the same algorithm inline on
// the caller's thread — that is the single-engine reference the
// differential oracle (tests/sim_test.cc, tests/cluster_test.cc) compares
// 2- and 4-shard runs against, mirroring the PR 9 StorePolicy pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/engine.h"
#include "src/sim/spsc.h"

namespace trace {
class Tracer;
}

namespace sim {

// Which simulation topology a cluster run executes on. kSingle is the
// untouched legacy path (one engine, zero new machinery) and keeps every
// fig* stdout and committed baseline byte-identical; kSharded opts into the
// per-domain engines above.
enum class TopologyPolicy { kSingle, kSharded };

// Per-shard execution accounting, exported by bench/fleet_density's
// `parallel` BENCH section. Wall-clock fields are real time (honest,
// machine-dependent); processed counts are deterministic.
struct ShardStats {
  uint64_t processed = 0;  // events executed during group runs
  double busy_s = 0.0;     // wall seconds inside event processing
  double stall_s = 0.0;    // wall seconds parked at epoch barriers
};

class ShardGroup {
 public:
  ShardGroup(uint64_t seed, int num_domains, int num_shards, Duration lookahead);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int num_domains() const { return num_domains_; }
  int num_shards() const { return static_cast<int>(engines_.size()); }
  Duration lookahead() const { return lookahead_; }

  int shard_of(int domain) const { return domain % num_shards(); }
  Engine& shard_engine(int shard) { return *engines_[shard]; }
  Engine& domain_engine(int domain) { return *engines_[shard_of(domain)]; }
  // Deterministic per-domain random stream (splitmix-derived from the root
  // seed); never map-dependent, unlike Engine::rng() on a shared engine.
  lv::Rng& domain_rng(int domain) { return domain_rngs_[domain]; }

  // Executes `fn` on dst's engine at domain_engine(src).now() + delay.
  // Requires delay >= lookahead. May be called from the shard thread that
  // owns `src` while a run is in progress, or from the coordinator thread
  // between runs; delivery happens at the next epoch barrier, merged into
  // the destination queue in (when, src, seq) order.
  void Post(int src, int dst, Duration delay, std::function<void()> fn);

  // Drives all shards in lockstep epochs until pred() holds (checked at
  // barriers), every queue drains, or `horizon` of simulated time passes
  // (measured from max_now()). Returns pred()'s final value — the same
  // contract as sim::RunUntilCondition.
  bool RunUntil(std::function<bool()> pred, Duration horizon);
  // Runs until every queue drains (bounded by horizon).
  void RunToQuiescence(Duration horizon);

  // Clock of the most-advanced shard (the run's logical end time).
  TimePoint max_now() const;

  // Accounting (stable only between runs).
  const std::vector<ShardStats>& shard_stats() const { return stats_; }
  uint64_t epochs() const { return epochs_; }
  uint64_t messages_delivered() const { return delivered_; }
  double run_wall_s() const { return run_wall_s_; }

 private:
  struct Message {
    TimePoint when;
    int32_t src = 0;
    int32_t dst = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
  };
  // One per shard, written only by that shard's thread. Overflow keeps the
  // producer non-blocking when a burst outruns the ring.
  struct Outbox {
    SpscRing<Message*> ring{1024};
    std::mutex mu;
    std::vector<Message*> overflow;
  };
  struct EpochCmd {
    TimePoint target;
    bool exit = false;
  };

  TimePoint GridAbove(TimePoint t) const;
  void DeliverMail();
  void RunShardEpoch(int shard, TimePoint target);
  void EnterShardContext(int shard);
  void ExitShardContext();
  void SetupTraceCapture();
  void MergeTraceCapture();

  int num_domains_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<lv::Rng> domain_rngs_;
  std::vector<std::unique_ptr<Outbox>> outboxes_;
  std::vector<uint64_t> post_seq_;  // per src domain, owner-thread written
  std::vector<ShardStats> stats_;
  std::vector<std::unique_ptr<trace::Tracer>> captures_;
  EpochCmd cmd_;  // written by the coordinator, read by workers (barrier-ordered)
  uint64_t epochs_ = 0;
  uint64_t delivered_ = 0;
  double run_wall_s_ = 0.0;
  std::vector<Message*> scratch_;  // drain buffer, coordinator-only
};

}  // namespace sim
