#include "src/sim/cpu.h"

#include <algorithm>

namespace sim {

namespace {
// Jobs whose remaining work dips below this are considered complete; protects
// against floating-point drift starving the completion loop.
constexpr double kEpsilonNs = 0.5;
}  // namespace

CpuScheduler::CpuScheduler(Engine* engine, int num_cores) : engine_(engine) {
  LV_CHECK(num_cores > 0);
  cores_.resize(static_cast<size_t>(num_cores));
  for (Core& core : cores_) {
    core.last_update = engine_->now();
  }
  window_start_ = engine_->now();
}

CpuScheduler::~CpuScheduler() {
  for (Core& core : cores_) {
    core.next_completion.Cancel();
  }
}

int CpuScheduler::ActiveJobs(int core) const {
  LV_CHECK(core >= 0 && core < num_cores());
  return static_cast<int>(cores_[static_cast<size_t>(core)].active.size());
}

Duration CpuScheduler::ConsumedBy(CpuOwner owner) const {
  auto it = consumed_ns_.find(owner);
  if (it == consumed_ns_.end()) {
    return Duration();
  }
  return Duration::Nanos(static_cast<int64_t>(it->second));
}

Duration CpuScheduler::BusyTime(int core) const {
  LV_CHECK(core >= 0 && core < num_cores());
  return Duration::Nanos(static_cast<int64_t>(cores_[static_cast<size_t>(core)].busy_ns));
}

void CpuScheduler::StartWindow() {
  // Charge pending time first so the window starts clean.
  for (size_t i = 0; i < cores_.size(); ++i) {
    Advance(cores_[i]);
    cores_[i].window_busy_ns = 0.0;
  }
  window_start_ = engine_->now();
}

double CpuScheduler::WindowUtilization() const {
  Duration span = engine_->now() - window_start_;
  if (span.ns() <= 0) {
    return 0.0;
  }
  double busy = 0.0;
  for (const Core& core : cores_) {
    double b = core.window_busy_ns;
    // Include time accrued since the core's last bookkeeping update.
    if (!core.active.empty()) {
      b += static_cast<double>((engine_->now() - core.last_update).ns());
    }
    busy += b;
  }
  return busy / (static_cast<double>(span.ns()) * static_cast<double>(cores_.size()));
}

void CpuScheduler::Advance(Core& core) {
  TimePoint now = engine_->now();
  double elapsed = static_cast<double>((now - core.last_update).ns());
  core.last_update = now;
  if (elapsed <= 0.0 || core.active.empty()) {
    return;
  }
  double share = elapsed / static_cast<double>(core.active.size());
  for (Job& job : core.active) {
    job.remaining_ns -= share;
    consumed_ns_[job.owner] += share;
  }
  core.busy_ns += elapsed;
  core.window_busy_ns += elapsed;
}

void CpuScheduler::Reschedule(int core_idx) {
  Core& core = cores_[static_cast<size_t>(core_idx)];
  core.next_completion.Cancel();
  if (core.active.empty()) {
    return;
  }
  double min_remaining = core.active[0].remaining_ns;
  for (const Job& job : core.active) {
    min_remaining = std::min(min_remaining, job.remaining_ns);
  }
  double delay_ns = std::max(1.0, min_remaining * static_cast<double>(core.active.size()));
  core.next_completion = engine_->Schedule(Duration::Nanos(static_cast<int64_t>(delay_ns)),
                                           [this, core_idx] { OnCompletion(core_idx); });
}

void CpuScheduler::OnCompletion(int core_idx) {
  Core& core = cores_[static_cast<size_t>(core_idx)];
  Advance(core);
  std::vector<std::coroutine_handle<>> done;
  auto it = core.active.begin();
  while (it != core.active.end()) {
    if (it->remaining_ns <= kEpsilonNs) {
      done.push_back(it->handle);
      it = core.active.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule(core_idx);
  for (std::coroutine_handle<> h : done) {
    engine_->Schedule(Duration(), [h] { h.resume(); });
  }
}

void CpuScheduler::Submit(int core_idx, Duration work, CpuOwner owner,
                          std::coroutine_handle<> h) {
  LV_CHECK(core_idx >= 0 && core_idx < num_cores());
  Core& core = cores_[static_cast<size_t>(core_idx)];
  Advance(core);
  core.active.push_back(Job{static_cast<double>(work.ns()), owner, h});
  Reschedule(core_idx);
}

}  // namespace sim
