// Per-core processor-sharing CPU model.
//
// Every piece of CPU work in the simulation — toolstack phases in Dom0, the
// XenStore daemon, guest boot work, guest background services, container
// runtime work — is submitted as a job to a core of a CpuScheduler. Each core
// runs its active jobs under processor sharing (each of n active jobs
// progresses at rate 1/n), which is a good fluid approximation of the Xen
// credit scheduler / Linux CFS at the timescales the paper measures. CPU
// contention effects (e.g. Tinyx boot times growing with the number of
// running VMs, Figure 11) are emergent from this model.
//
// The scheduler also keeps the accounting the paper's tooling exposes:
// per-core busy time (iostat) and per-owner consumed time (xentop).
#pragma once

#include <coroutine>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/time.h"
#include "src/sim/engine.h"
#include "src/trace/trace.h"

namespace sim {

// Owner tag for CPU accounting; convention: 0 = Dom0 / host, >0 = domain id,
// negative = infrastructure (e.g. container daemon).
using CpuOwner = int64_t;
inline constexpr CpuOwner kHostOwner = 0;

class CpuScheduler {
 public:
  CpuScheduler(Engine* engine, int num_cores);
  ~CpuScheduler();
  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Engine* engine() { return engine_; }

  // Awaitable: consume `work` of CPU time on `core`, sharing the core with
  // whatever else is active there. Zero (or negative) work completes
  // immediately.
  struct RunAwaiter {
    CpuScheduler* sched;
    int core;
    Duration work;
    CpuOwner owner;

    bool await_ready() const noexcept { return work.ns() <= 0; }
    void await_suspend(std::coroutine_handle<> h) { sched->Submit(core, work, owner, h); }
    void await_resume() const noexcept {}
  };
  RunAwaiter Run(int core, Duration work, CpuOwner owner = kHostOwner) {
    return RunAwaiter{this, core, work, owner};
  }

  int ActiveJobs(int core) const;

  // --- Accounting ---------------------------------------------------------

  // Total CPU time consumed by `owner` across all cores since construction.
  Duration ConsumedBy(CpuOwner owner) const;
  // Wall time core `core` spent non-idle since construction.
  Duration BusyTime(int core) const;
  // Machine-wide utilization (0..1) over [window_start, now]; call
  // StartWindow() first.
  void StartWindow();
  double WindowUtilization() const;

 private:
  struct Job {
    double remaining_ns;
    CpuOwner owner;
    std::coroutine_handle<> handle;
  };
  struct Core {
    std::vector<Job> active;
    TimePoint last_update;
    EventHandle next_completion;
    double busy_ns = 0.0;
    double window_busy_ns = 0.0;
  };

  void Submit(int core_idx, Duration work, CpuOwner owner, std::coroutine_handle<> h);
  // Charges elapsed time to the active jobs of `core` up to `now`.
  void Advance(Core& core);
  // (Re)schedules the core's next job-completion event.
  void Reschedule(int core_idx);
  void OnCompletion(int core_idx);

  Engine* engine_;
  std::vector<Core> cores_;
  std::unordered_map<CpuOwner, double> consumed_ns_;
  TimePoint window_start_;
};

// Execution context: which core a control-plane coroutine is running on and
// which owner its CPU time is billed to. Passed down through toolstack ->
// store -> driver call chains so every microsecond lands on the right core.
// It also carries the trace track (row) that spans opened along the chain
// record onto, so one VM creation yields one coherent span tree even while
// other coroutines interleave.
struct ExecCtx {
  CpuScheduler* cpu = nullptr;
  int core = 0;
  CpuOwner owner = kHostOwner;
  trace::TrackId track = trace::kHostTrack;
  // Control-plane job id (0 = not part of an async job). Threaded into trace
  // track names so overlapping lifecycle jobs land on distinct rows.
  int64_t job = 0;
  // Causal operation identity (src/obs): the op this chain executes under
  // and the root of its causal chain (the exported flow id). Zero when the
  // chain is not part of a tracked operation. Plain ints so lv_sim stays
  // decoupled from lv_obs; obs::OpRef is the minting-side view.
  int64_t op = 0;
  int64_t op_root = 0;
  // Cluster node the chain runs on (flight-recorder ring index; 0 for
  // single-host runs).
  int node = 0;

  CpuScheduler::RunAwaiter Work(Duration d) const { return cpu->Run(core, d, owner); }
  ExecCtx OnCore(int c) const { return ExecCtx{cpu, c, owner, track, job, op, op_root, node}; }
  ExecCtx As(CpuOwner o) const { return ExecCtx{cpu, core, o, track, job, op, op_root, node}; }
  ExecCtx OnTrack(trace::TrackId t) const {
    return ExecCtx{cpu, core, owner, t, job, op, op_root, node};
  }
  ExecCtx WithJob(int64_t j) const { return ExecCtx{cpu, core, owner, track, j, op, op_root, node}; }
  ExecCtx WithOp(int64_t o, int64_t root) const {
    return ExecCtx{cpu, core, owner, track, job, o, root, node};
  }
  ExecCtx OnNode(int n) const { return ExecCtx{cpu, core, owner, track, job, op, op_root, n}; }
};

// Round-robin core placement helper mirroring the paper's experimental setup
// ("one core assigned to Dom0 and the remaining three assigned to the VMs in
// a round-robin fashion").
class CorePlacer {
 public:
  // Cores [first_guest_core, num_cores) host guests; cores below it are Dom0.
  CorePlacer(int num_cores, int first_guest_core)
      : num_cores_(num_cores), first_(first_guest_core), next_(first_guest_core) {
    LV_CHECK(first_guest_core >= 0 && first_guest_core < num_cores);
  }

  int NextGuestCore() {
    int core = next_;
    next_ = next_ + 1 >= num_cores_ ? first_ : next_ + 1;
    return core;
  }
  // Dom0 work is spread across its dedicated cores.
  int NextDom0Core() {
    if (first_ == 0) {
      return 0;  // No dedicated Dom0 core configured; share core 0.
    }
    int core = next_dom0_;
    next_dom0_ = next_dom0_ + 1 >= first_ ? 0 : next_dom0_ + 1;
    return core;
  }
  int num_guest_cores() const { return num_cores_ - first_; }
  int num_dom0_cores() const { return first_ == 0 ? 1 : first_; }

 private:
  int num_cores_;
  int first_;
  int next_;
  int next_dom0_ = 0;
};

}  // namespace sim
