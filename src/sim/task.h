// Coroutine task type for the discrete-event simulator.
//
// Co<T> is a lazy task: creating one does not run any code; it starts when
// awaited (or when detached onto the engine via Engine::Spawn). Completion
// resumes the awaiting coroutine by symmetric transfer, so long chains of
// control-plane steps (toolstack -> XenStore -> driver -> guest) run without
// stack growth.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "src/base/assert.h"

namespace sim {

template <typename T>
class Co;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  bool detached = false;
  std::exception_ptr exception;
  // Set by Engine::Spawn: lets the engine track live detached frames so the
  // ones still parked at engine teardown can be reclaimed (a detached frame
  // has no owner, so nobody else can destroy it). Called from FinalAwaiter
  // right before the frame destroys itself. A function pointer rather than
  // an Engine method keeps task.h free of the engine header.
  void (*reap)(void* ctx, uint64_t id) = nullptr;
  void* reap_ctx = nullptr;
  uint64_t reap_id = 0;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      PromiseBase& p = h.promise();
      std::coroutine_handle<> cont = p.continuation;
      if (p.detached) {
        // A detached task has nobody to observe an exception.
        LV_CHECK_MSG(!p.exception, "unhandled exception in detached sim task");
        if (p.reap != nullptr) {
          p.reap(p.reap_ctx, p.reap_id);
        }
        h.destroy();
      }
      return cont;
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Co<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Co<void> get_return_object();
  void return_void() {}
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Co {
 public:
  using promise_type = internal::Promise<T>;

  Co() = default;
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      Destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  ~Co() { Destroy(); }

  bool valid() const { return h_ != nullptr; }

  // True once the task has run to completion (it is parked at its final
  // suspend point). Only meaningful for owner-started tasks: a detached frame
  // destroys itself on completion.
  bool done() const { return h_ != nullptr && h_.done(); }

  // Awaitable protocol: awaiting a Co starts it and suspends the caller until
  // it completes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    LV_CHECK_MSG(h_ != nullptr, "awaiting an empty Co");
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    internal::Promise<T>& p = h_.promise();
    if (p.exception) {
      std::rethrow_exception(p.exception);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(*p.value);
    }
  }

  // Starts the task while the caller retains ownership of the frame: runs it
  // until its first suspension, exactly like Engine::Spawn but without
  // detaching. Unlike a detached task, the frame survives completion and is
  // destroyed by ~Co — use this for daemon-style loops that may still be
  // parked on a sync primitive when their owner is torn down, where a
  // detached frame would be unreachable (and leak). An exception escaping an
  // owner-started task that is never awaited is dropped with the frame.
  void Start() {
    LV_CHECK_MSG(h_ != nullptr, "starting an empty Co");
    h_.resume();
  }

  // Transfers ownership of the frame out (used by Engine::Spawn to detach).
  std::coroutine_handle<promise_type> Release() { return std::exchange(h_, nullptr); }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

namespace internal {

template <typename T>
Co<T> Promise<T>::get_return_object() {
  return Co<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Co<void> Promise<void>::get_return_object() {
  return Co<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace sim
