// Discrete-event simulation engine: a simulated clock plus an ordered event
// queue. All LightVM components run on top of one Engine; time only advances
// when the engine processes events, so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/sim/task.h"

namespace sim {

using lv::Duration;
using lv::TimePoint;

class Engine;

// Handle to a scheduled event; allows cancellation (used by the CPU
// scheduler to re-plan core completion events).
class EventHandle {
 public:
  EventHandle() = default;
  // Defined after Engine: a first-time Cancel tells the owning engine so it
  // can compact the queue once dead entries dominate.
  inline void Cancel();
  bool valid() const { return !state_.expired(); }

 private:
  friend class Engine;
  struct State {
    bool cancelled = false;
    // Owning engine while the event sits in the queue; cleared when the
    // event is popped (cancelling a running event is a no-op for the
    // dead-entry bookkeeping).
    Engine* owner = nullptr;
  };
  explicit EventHandle(std::weak_ptr<State> s) : state_(std::move(s)) {}
  std::weak_ptr<State> state_;
};

class Engine {
 public:
  explicit Engine(uint64_t seed = 1);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimePoint now() const { return now_; }
  lv::Rng& rng() { return rng_; }

  EventHandle Schedule(Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }
  EventHandle ScheduleAt(TimePoint when, std::function<void()> fn);

  // Starts a detached coroutine task. It runs synchronously until its first
  // suspension point; its frame is reclaimed automatically on completion.
  void Spawn(Co<void> task);

  // Awaitable that suspends the current coroutine for `d` of simulated time.
  // Sleep(Duration()) yields through the event queue (fair re-entry).
  struct SleepAwaiter {
    Engine* engine;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->Schedule(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  SleepAwaiter Sleep(Duration d) { return SleepAwaiter{this, d}; }
  SleepAwaiter Yield() { return SleepAwaiter{this, Duration()}; }

  // Processes every pending event (including ones scheduled along the way).
  void Run();
  // Processes events up to and including time t, then advances the clock to t.
  void RunUntil(TimePoint t);
  void RunFor(Duration d) { RunUntil(now_ + d); }
  // Processes a single event. Returns false if the queue was empty.
  bool Step();

  // Processes every event strictly before `t` and stops WITHOUT bumping the
  // clock to t — now() stays at the last processed event. This is the shard
  // epoch primitive (sim/shard.h): the final clock of a sharded run must be
  // the time of the last real event, not an epoch-grid artifact. Returns the
  // number of events processed.
  uint64_t ProcessBefore(TimePoint t);

  // Timestamp of the next live (non-cancelled) event; nullopt when drained.
  // Prunes dead entries from the top of the queue as a side effect.
  std::optional<TimePoint> NextEventTime();

  size_t pending_events() const;
  uint64_t processed_events() const { return processed_; }

  // Cancelled entries still sitting in the queue. EventHandle::Cancel only
  // marks; the entry stays until popped or until lazy compaction rebuilds
  // the heap (triggered when dead entries exceed half the queue).
  size_t cancelled_pending() const { return cancelled_pending_; }
  uint64_t compactions() const { return compactions_; }

 private:
  friend class EventHandle;
  struct Event {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const std::unique_ptr<Event>& a, const std::unique_ptr<Event>& b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };

  // Pops the next non-cancelled event, or nullptr.
  std::unique_ptr<Event> PopNext();

  // First-time Cancel of a queued event; compacts when dead entries exceed
  // half the queue (and the queue is big enough for the rebuild to pay off).
  void NoteCancelled();
  // Rebuilds the heap without the cancelled entries.
  void Compact();

  // Deregisters a detached frame that reached its final suspend (see
  // PromiseBase::reap).
  static void ReapDetached(void* ctx, uint64_t id);

  TimePoint now_;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  size_t cancelled_pending_ = 0;
  uint64_t compactions_ = 0;
  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>, Later> queue_;
  lv::Rng rng_;
  // Live detached frames by spawn order: a frame still parked on the queue
  // when the engine dies is unreachable any other way, so ~Engine destroys
  // the survivors (newest first).
  std::map<uint64_t, void*> detached_frames_;
  uint64_t next_detached_id_ = 0;
};

inline void EventHandle::Cancel() {
  if (auto s = state_.lock()) {
    if (!s->cancelled) {
      s->cancelled = true;
      if (s->owner != nullptr) {
        s->owner->NoteCancelled();
      }
    }
  }
}

}  // namespace sim
