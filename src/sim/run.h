// Helpers for driving the engine from synchronous code (tests, benches,
// examples). Engine::Run() drains the queue completely, which never returns
// once periodic activity exists (guest background services, daemons with
// timers) — use these bounded variants instead.
#pragma once

#include <optional>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace sim {

// Processes events until `pred()` becomes true. Returns false if the event
// queue drains or the horizon passes first.
template <typename Pred>
bool RunUntilCondition(Engine& engine, Pred&& pred,
                       Duration horizon = Duration::Max()) {
  TimePoint deadline =
      horizon == Duration::Max() ? TimePoint::Max() : engine.now() + horizon;
  while (!pred()) {
    if (engine.now() >= deadline) {
      return pred();
    }
    if (!engine.Step()) {
      return pred();
    }
  }
  return true;
}

// Runs a coroutine to completion, processing whatever events it needs, and
// returns its result. Aborts if the simulation deadlocks before completion.
template <typename T>
T RunToCompletion(Engine& engine, Co<T> co) {
  std::optional<T> out;
  engine.Spawn([](Co<T> c, std::optional<T>& o) -> Co<void> {
    o = co_await std::move(c);
  }(std::move(co), out));
  bool done = RunUntilCondition(engine, [&] { return out.has_value(); });
  LV_CHECK_MSG(done, "coroutine did not complete (simulation deadlock?)");
  return std::move(*out);
}

inline void RunToCompletion(Engine& engine, Co<void> co) {
  bool flag = false;
  engine.Spawn([](Co<void> c, bool& f) -> Co<void> {
    co_await std::move(c);
    f = true;
  }(std::move(co), flag));
  bool done = RunUntilCondition(engine, [&] { return flag; });
  LV_CHECK_MSG(done, "coroutine did not complete (simulation deadlock?)");
}

}  // namespace sim
