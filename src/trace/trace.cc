#include "src/trace/trace.h"

namespace trace {

namespace {

thread_local Tracer* g_thread_tracer = nullptr;

}  // namespace

Tracer& Tracer::Get() {
  if (g_thread_tracer != nullptr) {
    return *g_thread_tracer;
  }
  static Tracer tracer;
  return tracer;
}

void Tracer::SetThreadTracer(Tracer* tracer) { g_thread_tracer = tracer; }

std::unique_ptr<Tracer> Tracer::NewCapture(const Tracer& seed) {
  std::unique_ptr<Tracer> t(new Tracer());
  t->enabled_ = seed.enabled_;
  t->epoch_ = seed.epoch_;
  t->track_names_ = seed.track_names_;
  t->open_.assign(seed.track_names_.size(), {});
  t->capture_base_tracks_ = seed.track_names_.size();
  return t;
}

void Tracer::MergeCapture(const Tracer& capture) {
  std::vector<TrackId> remap(capture.track_names_.size());
  for (size_t i = 0; i < capture.track_names_.size(); ++i) {
    remap[i] = i < capture.capture_base_tracks_
                   ? static_cast<TrackId>(i)
                   : NewTrack(capture.track_names_[i]);
  }
  // Running totals recorded inside the capture are deltas from zero; shift
  // them so the merged buffer continues this tracer's totals.
  const std::map<std::string, double> offsets = counters_;
  events_.reserve(events_.size() + capture.events_.size());
  for (Event ev : capture.events_) {
    if (ev.track >= 0 && static_cast<size_t>(ev.track) < remap.size()) {
      ev.track = remap[static_cast<size_t>(ev.track)];
    }
    if (ev.type == EventType::kCounter) {
      auto it = offsets.find(ev.name);
      if (it != offsets.end()) {
        ev.value += it->second;
      }
    }
    events_.push_back(std::move(ev));
  }
  for (const auto& [name, total] : capture.counters_) {
    counters_[name] += total;
  }
}

TrackId Tracer::NewTrack(std::string name) {
  TrackId id = static_cast<TrackId>(track_names_.size());
  track_names_.push_back(std::move(name));
  open_.emplace_back();
  return id;
}

void Tracer::BeginSpan(TrackId track, std::string name) {
  if (!enabled_) {
    return;
  }
  if (track < 0 || static_cast<size_t>(track) >= open_.size()) {
    track = kHostTrack;
  }
  open_[static_cast<size_t>(track)].push_back(events_.size());
  events_.push_back(Event{EventType::kBegin, track, Now(), std::move(name), 0.0});
}

void Tracer::EndSpan(TrackId track) {
  if (track < 0 || static_cast<size_t>(track) >= open_.size()) {
    track = kHostTrack;
  }
  auto& stack = open_[static_cast<size_t>(track)];
  if (stack.empty()) {
    return;  // Unmatched end (e.g. Clear() between begin and end); drop it.
  }
  size_t begin_index = stack.back();
  stack.pop_back();
  // Name the end event after its begin so exporters and queries never have
  // to re-derive the pairing.
  events_.push_back(
      Event{EventType::kEnd, track, Now(), events_[begin_index].name, 0.0});
}

void Tracer::Instant(TrackId track, std::string name) {
  if (!enabled_) {
    return;
  }
  if (track < 0 || static_cast<size_t>(track) >= open_.size()) {
    track = kHostTrack;
  }
  events_.push_back(Event{EventType::kInstant, track, Now(), std::move(name), 0.0});
}

void Tracer::Flow(TrackId track, std::string name, int64_t id) {
  if (!enabled_ || id == 0) {
    return;
  }
  if (track < 0 || static_cast<size_t>(track) >= open_.size()) {
    track = kHostTrack;
  }
  events_.push_back(Event{EventType::kFlow, track, Now(), std::move(name), 0.0, id});
}

void Tracer::Count(const std::string& name, double delta) {
  if (!enabled_) {
    return;
  }
  double total = (counters_[name] += delta);
  events_.push_back(Event{EventType::kCounter, kHostTrack, Now(), name, total});
}

double Tracer::counter_total(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

std::map<std::string, SpanStat> Tracer::SpanStats() const {
  std::map<std::string, SpanStat> stats;
  // Replay per-track begin stacks; only closed spans contribute.
  std::vector<std::vector<const Event*>> stacks(track_names_.size());
  for (const Event& ev : events_) {
    auto& stack = stacks[static_cast<size_t>(ev.track)];
    if (ev.type == EventType::kBegin) {
      stack.push_back(&ev);
    } else if (ev.type == EventType::kEnd && !stack.empty()) {
      const Event* begin = stack.back();
      stack.pop_back();
      SpanStat& s = stats[begin->name];
      ++s.count;
      s.total += ev.ts - begin->ts;
    }
  }
  return stats;
}

lv::Duration Tracer::SpanTotal(const std::string& name) const {
  auto stats = SpanStats();
  auto it = stats.find(name);
  return it == stats.end() ? lv::Duration() : it->second.total;
}

std::vector<std::string> Tracer::TopLevelSpans(TrackId track) const {
  std::vector<std::string> names;
  int depth = 0;
  for (const Event& ev : events_) {
    if (ev.track != track) {
      continue;
    }
    if (ev.type == EventType::kBegin) {
      if (depth == 0) {
        names.push_back(ev.name);
      }
      ++depth;
    } else if (ev.type == EventType::kEnd) {
      --depth;
    }
  }
  return names;
}

void Tracer::Clear() {
  events_.clear();
  counters_.clear();
  for (auto& stack : open_) {
    stack.clear();
  }
  epoch_ = lv::Duration();
}

void Tracer::Reset() {
  Clear();
  track_names_.assign(1, "host");
  open_.assign(1, {});
  enabled_ = false;
}

}  // namespace trace
