// Exporters for the tracing layer (src/trace/trace.h). Two formats:
//
//  * Chrome trace_event JSON — loadable in chrome://tracing or
//    https://ui.perfetto.dev. Tracks become threads of one "lightvm"
//    process, spans become B/E duration events, counters become "C"
//    counter rows and instants become "i" marks. Timestamps are the
//    simulated clock converted to microseconds (the format's native unit).
//  * Plain-text summary — per-span-name count/total/mean plus counter
//    totals, for quick terminal inspection of where a boot's time went.
//
// Clock/threading assumptions match the Tracer's: single-threaded
// simulation, simulated timestamps, events already in non-decreasing time
// order (exporters emit them verbatim in recording order).
//
// Example:
//   trace::WriteSummary(trace::Tracer::Get(), std::cout);
//   lv::Status s = trace::WriteChromeTraceFile(trace::Tracer::Get(), "trace.json");
#pragma once

#include <iosfwd>
#include <string>

#include "src/base/result.h"
#include "src/trace/trace.h"

namespace trace {

// Writes the full Chrome trace_event JSON document to `out`.
void WriteChromeTrace(const Tracer& tracer, std::ostream& out);

// Same, to a file. Fails if the file cannot be opened or written.
lv::Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path);

// Writes the per-span-name aggregate table and counter totals to `out`.
void WriteSummary(const Tracer& tracer, std::ostream& out);

}  // namespace trace
