// Cross-layer boot tracing: spans, counters and instant events keyed to
// simulated time. The control plane (engine, hypervisor, XenStore,
// toolstacks) records onto a process-wide Tracer; exporters under
// src/trace/export.h turn the buffer into a Chrome trace_event JSON file
// (chrome://tracing, Perfetto) or a plain-text per-phase summary, and the
// Figure 5 breakdown is derived from the recorded spans rather than
// hand-placed timers.
//
// Clock: like lv::Logger, the Tracer carries no clock of its own — the
// sim::Engine attaches a callback (AttachClock) so every event is stamped
// with *simulated* time. Without a clock attached, events land at t=0.
//
// Threading: the simulation is single-threaded; the Tracer is not
// thread-safe. Coroutines interleave only at suspension points, so span
// nesting is kept per *track* (one track per VM creation, one per daemon),
// never across tracks. A track's spans therefore always nest properly as
// long as one coroutine chain owns the track, which is how the
// instrumentation uses them (the track rides along in sim::ExecCtx).
//
// Overhead: tracing is default-off. Every recording call checks enabled()
// first (a plain bool), records no simulated work ever, and allocates
// nothing when disabled — benchmarks that do not opt in measure identical
// simulated times (acceptance-tested against fig04).
//
// Example:
//   trace::Tracer& tracer = trace::Tracer::Get();
//   tracer.Enable();
//   {
//     trace::Span create(track, "vm.create");
//     {
//       trace::Span phase(track, "create.config");   // nested child
//       ...
//     }
//     tracer.Count("hv.hypercalls", 1);
//   }
//   trace::WriteChromeTraceFile(tracer, "trace.json");
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace trace {

// A track is one horizontal row in the exported trace (a Chrome "thread").
// Track 0 always exists and is named "host".
using TrackId = int32_t;
inline constexpr TrackId kHostTrack = 0;

enum class EventType : uint8_t { kBegin, kEnd, kCounter, kInstant, kFlow };

struct Event {
  EventType type = EventType::kInstant;
  TrackId track = kHostTrack;
  lv::TimePoint ts;
  std::string name;
  double value = 0.0;  // Running total at ts (kCounter only).
  int64_t flow = 0;    // Flow id binding causally-linked events (kFlow only).
};

// Aggregate over all closed spans with one name (see Tracer::SpanStats).
struct SpanStat {
  int64_t count = 0;
  lv::Duration total;
};

class Tracer {
 public:
  // The process-wide tracer, unless the calling thread has a capture
  // installed via SetThreadTracer (sharded runs).
  static Tracer& Get();

  // Per-thread tracer override. Shard threads (sim/shard.h) record onto
  // private capture tracers so the global buffer is never written
  // concurrently; the coordinator merges the captures after the run.
  // Pass nullptr to restore the global tracer for this thread.
  static void SetThreadTracer(Tracer* tracer);

  // A detached tracer seeded from `seed`: same enabled flag, epoch shift
  // and already-registered tracks; its own event buffer, counter deltas and
  // clock. Tracks minted inside the capture get provisional ids that
  // MergeCapture re-registers globally.
  static std::unique_ptr<Tracer> NewCapture(const Tracer& seed);

  // Appends a capture's buffer to this tracer: capture-minted tracks are
  // re-registered (ids remapped), counter events are offset by this
  // tracer's running totals, and the capture's counter deltas fold in.
  // Per-track event order is preserved (a track is owned by one capture),
  // which is all SpanStats/exporters rely on.
  void MergeCapture(const Tracer& capture);

  // Runtime on/off switch; default off. Disabling mid-span is safe: a live
  // Span guard still records its end so the buffer stays balanced.
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // The engine installs a callback so events carry simulated time (the
  // same pattern as Logger::AttachClock).
  using NowFn = lv::TimePoint (*)(void* ctx);
  void AttachClock(NowFn fn, void* ctx) {
    now_fn_ = fn;
    now_ctx_ = ctx;
  }
  void DetachClock() {
    now_fn_ = nullptr;
    now_ctx_ = nullptr;
  }

  // Re-bases the clock for a new simulated-time epoch. A fresh sim::Engine
  // restarts simulated time at zero; calling this between engines shifts
  // all subsequent stamps to start where the recorded buffer ends, so one
  // exported file stays in a single monotonic time domain across engines
  // (the scenario runner uses one engine per benchmark series).
  void BeginEpoch() {
    epoch_ = events_.empty() ? lv::Duration()
                             : events_.back().ts - lv::TimePoint();
  }

  // Registers a named track. Cheap (one string); long-lived components
  // (daemons) register unconditionally, per-VM tracks only when enabled.
  TrackId NewTrack(std::string name);
  const std::vector<std::string>& tracks() const { return track_names_; }

  // --- Recording (all no-ops while disabled, except EndSpan) ---------------

  void BeginSpan(TrackId track, std::string name);
  // Closes the innermost open span on `track`. Records even while disabled
  // so RAII guards opened before Disable() stay balanced.
  void EndSpan(TrackId track);
  void Instant(TrackId track, std::string name);
  // Records a step of flow `id` on `track`. Events sharing an id are
  // exported as one Chrome trace_event flow (a connected arc across
  // tracks); src/obs uses the causal root OpId as the id, so one cluster
  // Deploy — creates, evacuation, re-create on another node — renders as a
  // single arc.
  void Flow(TrackId track, std::string name, int64_t id);
  // Adds `delta` to the named counter and records the new running total.
  void Count(const std::string& name, double delta);

  // --- Queries -------------------------------------------------------------

  const std::vector<Event>& events() const { return events_; }
  double counter_total(const std::string& name) const;
  const std::map<std::string, double>& counters() const { return counters_; }
  // Aggregates every *closed* span by name, across all tracks.
  std::map<std::string, SpanStat> SpanStats() const;
  // Total duration of all closed spans named `name` (zero if none).
  lv::Duration SpanTotal(const std::string& name) const;
  // Names of depth-0 spans begun on `track`, in begin order.
  std::vector<std::string> TopLevelSpans(TrackId track) const;

  // Drops events and counter totals; tracks and the clock survive. Used by
  // benches to bound memory when tracing long runs (one Clear per sample).
  void Clear();
  // Back to a freshly constructed tracer (tests).
  void Reset();

 private:
  Tracer() = default;
  lv::TimePoint Now() const {
    return (now_fn_ ? now_fn_(now_ctx_) : lv::TimePoint()) + epoch_;
  }

  bool enabled_ = false;
  NowFn now_fn_ = nullptr;
  void* now_ctx_ = nullptr;
  lv::Duration epoch_;  // Stamp shift for the current engine epoch.
  // Tracks copied from the seed at NewCapture time; ids below this are
  // shared with the global tracer, ids at or above it need remapping.
  size_t capture_base_tracks_ = 0;
  std::vector<Event> events_;
  std::vector<std::string> track_names_{"host"};
  // Per-track stack of open-span event indices (drives EndSpan naming).
  std::vector<std::vector<size_t>> open_{{}};
  std::map<std::string, double> counters_;
};

// RAII span guard: begins on construction (when tracing is enabled), ends
// on destruction or an explicit End(). Move-only; safe to hold across
// co_await — the end is stamped with the simulated time at resume.
//
// To reuse one guard for consecutive phases, End() it before assigning the
// next span: `phase.End(); phase = Span(track, "next");`. Plain
// `phase = Span(...)` begins the new span before the old one ends (the
// right-hand side is evaluated first), which crosses the begin/end pairs.
class Span {
 public:
  Span() = default;
  Span(TrackId track, std::string name) {
    Tracer& tracer = Tracer::Get();
    if (tracer.enabled()) {
      tracer_ = &tracer;
      track_ = track;
      tracer.BeginSpan(track, std::move(name));
    }
  }
  Span(Span&& other) noexcept : tracer_(other.tracer_), track_(other.track_) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      track_ = other.track_;
      other.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  void End() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(track_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  TrackId track_ = kHostTrack;
};

// Counter helper for hot call sites: one branch when disabled.
inline void Count(const char* name, double delta) {
  Tracer& tracer = Tracer::Get();
  if (tracer.enabled()) {
    tracer.Count(name, delta);
  }
}

}  // namespace trace
