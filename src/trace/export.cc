#include "src/trace/export.h"

#include <fstream>
#include <map>
#include <ostream>

#include "src/base/strings.h"

namespace trace {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += lv::StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Simulated ns -> trace_event microseconds.
double ToUs(lv::TimePoint t) { return static_cast<double>(t.ns()) / 1e3; }

}  // namespace

void WriteChromeTrace(const Tracer& tracer, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"lightvm\"}}";
  const auto& tracks = tracer.tracks();
  for (size_t tid = 0; tid < tracks.size(); ++tid) {
    out << lv::StrFormat(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                         "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                         tid, JsonEscape(tracks[tid]).c_str());
    // Sort rows by track id rather than alphabetically.
    out << lv::StrFormat(",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                         "\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%zu}}",
                         tid, tid);
  }
  // Flow phases are positional: the first event of an id starts the flow
  // ("s"), the last finishes it ("f", binding to the enclosing slice), and
  // everything between is a step ("t"). Ids with fewer than two events are
  // skipped entirely so the file never contains a dangling flow.
  std::map<int64_t, int64_t> flow_counts;
  for (const Event& ev : tracer.events()) {
    if (ev.type == EventType::kFlow) {
      ++flow_counts[ev.flow];
    }
  }
  std::map<int64_t, int64_t> flow_seen;
  for (const Event& ev : tracer.events()) {
    switch (ev.type) {
      case EventType::kBegin:
        out << lv::StrFormat(",\n{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                             "\"name\":\"%s\"}",
                             ev.track, ToUs(ev.ts), JsonEscape(ev.name).c_str());
        break;
      case EventType::kEnd:
        out << lv::StrFormat(",\n{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                             "\"name\":\"%s\"}",
                             ev.track, ToUs(ev.ts), JsonEscape(ev.name).c_str());
        break;
      case EventType::kCounter:
        out << lv::StrFormat(",\n{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                             "\"name\":\"%s\",\"args\":{\"value\":%.0f}}",
                             ev.track, ToUs(ev.ts), JsonEscape(ev.name).c_str(),
                             ev.value);
        break;
      case EventType::kInstant:
        out << lv::StrFormat(",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                             "\"name\":\"%s\",\"s\":\"t\"}",
                             ev.track, ToUs(ev.ts), JsonEscape(ev.name).c_str());
        break;
      case EventType::kFlow: {
        int64_t total = flow_counts[ev.flow];
        if (total < 2) {
          break;
        }
        int64_t index = flow_seen[ev.flow]++;
        const char* ph = index == 0 ? "s" : (index == total - 1 ? "f" : "t");
        // "bp":"e" binds the finish to the enclosing slice, matching how
        // the start/step events attach.
        out << lv::StrFormat(",\n{\"ph\":\"%s\",\"cat\":\"op\",\"id\":%lld,"
                             "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\"%s}",
                             ph, (long long)ev.flow, ev.track, ToUs(ev.ts),
                             JsonEscape(ev.name).c_str(),
                             ph[0] == 'f' ? ",\"bp\":\"e\"" : "");
        break;
      }
    }
  }
  out << "\n]}\n";
}

lv::Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return lv::Err(lv::ErrorCode::kUnavailable,
                   lv::StrFormat("cannot open %s for writing", path.c_str()));
  }
  WriteChromeTrace(tracer, out);
  out.flush();
  if (!out) {
    return lv::Err(lv::ErrorCode::kUnavailable,
                   lv::StrFormat("short write to %s", path.c_str()));
  }
  return lv::Status::Ok();
}

void WriteSummary(const Tracer& tracer, std::ostream& out) {
  auto stats = tracer.SpanStats();
  out << lv::StrFormat("%-28s %8s %12s %12s\n", "span", "count", "total_ms", "mean_ms");
  for (const auto& [name, stat] : stats) {
    double total_ms = stat.total.ms();
    out << lv::StrFormat("%-28s %8lld %12.3f %12.3f\n", name.c_str(),
                         (long long)stat.count, total_ms,
                         stat.count == 0 ? 0.0 : total_ms / static_cast<double>(stat.count));
  }
  if (!tracer.counters().empty()) {
    out << lv::StrFormat("%-28s %12s\n", "counter", "total");
    for (const auto& [name, total] : tracer.counters()) {
      out << lv::StrFormat("%-28s %12.0f\n", name.c_str(), total);
    }
  }
}

}  // namespace trace
