#include "src/xenstore/daemon.h"

#include <cstdlib>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/trace/trace.h"

namespace xs {

namespace {
constexpr const char* kMod = "xenstored";

// Static span names per op, so tracing does no formatting on the hot path.
// Client-side spans cover the whole round trip (marshal -> daemon -> reply);
// daemon-side spans cover just the serialized processing.
const char* ClientSpanName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "xs.read";
    case OpType::kWrite:
      return "xs.write";
    case OpType::kMkdir:
      return "xs.mkdir";
    case OpType::kRm:
      return "xs.rm";
    case OpType::kDirectory:
      return "xs.directory";
    case OpType::kWatch:
      return "xs.watch";
    case OpType::kUnwatch:
      return "xs.unwatch";
    case OpType::kTxBegin:
      return "xs.tx_begin";
    case OpType::kTxCommit:
      return "xs.tx_commit";
    case OpType::kTxAbort:
      return "xs.tx_abort";
    case OpType::kWriteUniqueName:
      return "xs.write_unique_name";
    case OpType::kReleaseClient:
      return "xs.release_client";
    case OpType::kRestart:
      return "xs.restart";
    case OpType::kStop:
      return "xs.stop";
  }
  return "xs.?";
}

const char* DaemonSpanName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "xsd.read";
    case OpType::kWrite:
      return "xsd.write";
    case OpType::kMkdir:
      return "xsd.mkdir";
    case OpType::kRm:
      return "xsd.rm";
    case OpType::kDirectory:
      return "xsd.directory";
    case OpType::kWatch:
      return "xsd.watch";
    case OpType::kUnwatch:
      return "xsd.unwatch";
    case OpType::kTxBegin:
      return "xsd.tx_begin";
    case OpType::kTxCommit:
      return "xsd.tx_commit";
    case OpType::kTxAbort:
      return "xsd.tx_abort";
    case OpType::kWriteUniqueName:
      return "xsd.write_unique_name";
    case OpType::kReleaseClient:
      return "xsd.release_client";
    case OpType::kRestart:
      return "xsd.restart";
    case OpType::kStop:
      return "xsd.stop";
  }
  return "xsd.?";
}

// Per-verb op counter, resolved to a cached handle per case (same shape as
// the span-name tables above: no formatting or map lookups after first use).
metrics::Counter& OpCounter(OpType op) {
  switch (op) {
    case OpType::kRead: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.read");
      return c;
    }
    case OpType::kWrite: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.write");
      return c;
    }
    case OpType::kMkdir: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.mkdir");
      return c;
    }
    case OpType::kRm: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.rm");
      return c;
    }
    case OpType::kDirectory: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.directory");
      return c;
    }
    case OpType::kWatch: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.watch");
      return c;
    }
    case OpType::kUnwatch: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.unwatch");
      return c;
    }
    case OpType::kTxBegin: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.tx_begin");
      return c;
    }
    case OpType::kTxCommit: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.tx_commit");
      return c;
    }
    case OpType::kTxAbort: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.tx_abort");
      return c;
    }
    case OpType::kWriteUniqueName: {
      static metrics::Counter& c =
          metrics::GetCounter("xenstore.daemon.ops.write_unique_name");
      return c;
    }
    case OpType::kReleaseClient: {
      static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.release_client");
      return c;
    }
    case OpType::kRestart:
    case OpType::kStop:
      break;
  }
  static metrics::Counter& c = metrics::GetCounter("xenstore.daemon.ops.other");
  return c;
}

}  // namespace

Daemon::Daemon(sim::Engine* engine, Costs costs)
    : engine_(engine), costs_(costs), queue_(engine) {}

Daemon::~Daemon() { Stop(); }

void Daemon::Start(sim::ExecCtx daemon_ctx) {
  LV_CHECK_MSG(!running_, "daemon already running");
  running_ = true;
  // The daemon gets its own trace row: all request processing is serialized
  // through this one coroutine, so its spans nest trivially. The frame is
  // owner-held (not detached) so Stop() can drain it deterministically.
  daemon_ctx = daemon_ctx.OnTrack(trace::Tracer::Get().NewTrack("xenstored"));
  loop_ = Run(daemon_ctx);
  loop_.Start();
}

void Daemon::Stop() {
  if (!running_) {
    return;
  }
  Request req;
  req.op = OpType::kStop;
  Submit(std::move(req));
  // Drain: step the engine until the loop frame completes, so no queued
  // event still references it. Resuming the frame after this daemon dies
  // would touch freed members (the write-after-free ROADMAP item 6 names).
  // Bounded: the kStop just submitted leads the loop straight out once any
  // in-flight request finishes.
  while (!loop_.done() && engine_->Step()) {
  }
}

void Daemon::InjectRestart(lv::Duration downtime) {
  if (!running_) {
    return;
  }
  Request req;
  req.op = OpType::kRestart;
  req.downtime = downtime;
  Submit(std::move(req));
}

void Daemon::Submit(Request req) {
  if (!running_) {
    if (req.reply != nullptr) {
      Response resp;
      resp.code = lv::ErrorCode::kUnavailable;
      resp.error_message = "xenstored not running";
      req.reply->Set(std::move(resp));
    }
    return;
  }
  queue_.Send(std::move(req));
}

ClientId Daemon::RegisterClient(hv::DomainId domid, sim::Channel<WatchEvent>* events) {
  (void)domid;
  ClientId id = next_client_++;
  clients_.emplace(id, events);
  return id;
}

void Daemon::UnregisterClient(ClientId id) {
  clients_.erase(id);
  store_.RemoveClientWatches(id);
}

sim::Co<void> Daemon::Run(sim::ExecCtx ctx) {
  while (true) {
    Request req = co_await queue_.Recv();
    if (req.op == OpType::kStop) {
      break;
    }
    if (req.op == OpType::kRestart) {
      co_await Restart(ctx, std::move(req));
      continue;
    }
    co_await Process(ctx, std::move(req));
  }
  running_ = false;
}

sim::Co<void> Daemon::Restart(sim::ExecCtx ctx, Request req) {
  ++stats_.restarts;
  static metrics::Counter& restarts = metrics::GetCounter("xenstore.daemon.restarts");
  restarts.Inc();
  trace::Span span(ctx.track, "xsd.restart");
  LV_DEBUG(kMod, "restarting (down %lld ns)", (long long)req.downtime.ns());
  // The dying daemon drops its ring: every queued request fails like a
  // connection reset. A queued kStop survives the restart; back-to-back
  // restarts coalesce.
  bool stop_pending = false;
  while (std::optional<Request> pending = queue_.TryRecv()) {
    if (pending->op == OpType::kStop) {
      stop_pending = true;
      continue;
    }
    if (pending->op == OpType::kRestart) {
      continue;
    }
    if (pending->reply != nullptr) {
      Response resp;
      resp.code = lv::ErrorCode::kUnavailable;
      resp.error_message = "xenstored restarting";
      pending->reply->Set(std::move(resp));
    }
  }
  co_await engine_->Sleep(req.downtime);
  // Watch replay: on reconnect each registration fires once, so watch-driven
  // state machines re-evaluate instead of waiting for a write they missed.
  std::vector<WatchHit> hits = store_.ReplayWatches();
  if (!hits.empty()) {
    co_await ctx.Work(costs_.per_watch_fire * static_cast<double>(hits.size()));
    DeliverWatchHits(hits);
  }
  if (stop_pending) {
    Request stop;
    stop.op = OpType::kStop;
    Submit(std::move(stop));
  }
  if (req.reply != nullptr) {
    req.reply->Set(Response{});
  }
}

sim::Co<void> Daemon::ChargeEffort(sim::ExecCtx ctx) {
  const OpEffort& e = store_.last_effort();
  lv::Duration cost = costs_.per_node * static_cast<double>(e.nodes_visited) +
                      costs_.per_watch_check * static_cast<double>(e.watch_checks) +
                      costs_.per_name_check * static_cast<double>(e.names_compared) +
                      costs_.per_child * static_cast<double>(e.children_listed) +
                      costs_.per_byte * static_cast<double>(e.value_bytes);
  if (cost.ns() > 0) {
    co_await ctx.Work(cost);
  }
}

sim::Co<void> Daemon::AppendAccessLog(sim::ExecCtx ctx) {
  if (!costs_.logging_enabled) {
    co_return;
  }
  co_await ctx.Work(costs_.log_append);
  ++log_lines_;
  if (log_lines_ >= costs_.log_rotate_lines) {
    log_lines_ = 0;
    ++stats_.rotations;
    static metrics::Counter& rotations = metrics::GetCounter("xenstore.daemon.log_rotations");
    rotations.Inc();
    LV_DEBUG(kMod, "rotating %d access logs", costs_.log_files);
    co_await ctx.Work(costs_.log_rotate_per_file * static_cast<double>(costs_.log_files));
  }
}

void Daemon::DeliverWatchHits(const std::vector<WatchHit>& hits) {
  for (const WatchHit& hit : hits) {
    auto it = clients_.find(hit.client);
    if (it == clients_.end()) {
      continue;  // Watcher died; drop the event like real xenstored.
    }
    ++stats_.watch_events;
    trace::Count("xs.watch_events", 1);
    static metrics::Counter& watch_events = metrics::GetCounter("xenstore.daemon.watch_events");
    watch_events.Inc();
    it->second->Send(WatchEvent{hit.watch_path, hit.token, hit.fired_path});
  }
}

sim::Co<void> Daemon::Process(sim::ExecCtx ctx, Request req) {
  ++stats_.ops;
  trace::Span span(ctx.track, DaemonSpanName(req.op));
  trace::Count("xs.ops", 1);
  static metrics::Counter& ops = metrics::GetCounter("xenstore.daemon.ops");
  ops.Inc();
  OpCounter(req.op).Inc();
  // Request arrival: daemon-side interrupts + base processing.
  co_await ctx.Work(costs_.soft_interrupt * static_cast<double>(costs_.daemon_interrupts) +
                    costs_.daemon_base);
  co_await AppendAccessLog(ctx);

  Response resp;
  std::vector<WatchHit> hits;
  switch (req.op) {
    case OpType::kRead: {
      auto r = store_.Read(req.path, req.txn);
      co_await ChargeEffort(ctx);
      if (r.ok()) {
        resp.value = *r;
      } else {
        resp.code = r.error().code;
        resp.error_message = r.error().message;
      }
      break;
    }
    case OpType::kWrite:
    case OpType::kMkdir: {
      lv::Status s = store_.Write(req.path, req.value, req.domid, req.txn, &hits);
      co_await ChargeEffort(ctx);
      if (!s.ok()) {
        resp.code = s.error().code;
        resp.error_message = s.error().message;
      }
      break;
    }
    case OpType::kRm: {
      lv::Status s = store_.Rm(req.path, req.txn, &hits, req.domid);
      co_await ChargeEffort(ctx);
      if (!s.ok()) {
        resp.code = s.error().code;
        resp.error_message = s.error().message;
      }
      break;
    }
    case OpType::kDirectory: {
      auto r = store_.Directory(req.path, req.txn);
      co_await ChargeEffort(ctx);
      if (r.ok()) {
        resp.entries = std::move(*r);
      } else {
        resp.code = r.error().code;
        resp.error_message = r.error().message;
      }
      break;
    }
    case OpType::kWatch: {
      WatchHit hit = store_.AddWatch(req.client, req.path, req.token);
      co_await ChargeEffort(ctx);
      hits.push_back(hit);  // Watches fire once immediately on registration.
      break;
    }
    case OpType::kUnwatch: {
      store_.RemoveWatch(req.client, req.path, req.token);
      co_await ChargeEffort(ctx);
      break;
    }
    case OpType::kTxBegin: {
      co_await ctx.Work(costs_.txn_overhead);
      TxnId id = store_.TxBegin();
      resp.value = lv::StrFormat("%lld", (long long)id);
      break;
    }
    case OpType::kTxCommit:
    case OpType::kTxAbort: {
      co_await ctx.Work(costs_.txn_overhead);
      lv::Status s = store_.TxCommit(req.txn, req.op == OpType::kTxAbort, &hits);
      co_await ChargeEffort(ctx);
      if (!s.ok()) {
        resp.code = s.error().code;
        resp.error_message = s.error().message;
        if (s.code() == lv::ErrorCode::kConflict) {
          ++stats_.conflicts;
          trace::Count("xs.conflicts", 1);
          static metrics::Counter& conflicts =
              metrics::GetCounter("xenstore.daemon.tx_conflicts");
          conflicts.Inc();
        }
      }
      break;
    }
    case OpType::kWriteUniqueName: {
      lv::Status unique = store_.CheckUniqueName(req.value);
      co_await ChargeEffort(ctx);
      if (!unique.ok()) {
        resp.code = unique.error().code;
        resp.error_message = unique.error().message;
        break;
      }
      lv::Status s = store_.Write(req.path, req.value, req.domid, kNoTxn, &hits);
      co_await ChargeEffort(ctx);
      if (!s.ok()) {
        resp.code = s.error().code;
        resp.error_message = s.error().message;
      }
      break;
    }
    case OpType::kReleaseClient: {
      store_.RemoveClientWatches(req.client);
      co_await ChargeEffort(ctx);
      break;
    }
    case OpType::kRestart:
    case OpType::kStop:
      LV_UNREACHABLE();  // Handled in Run(), never dispatched here.
  }

  // Quota rejections are worth a post-mortem breadcrumb: which domain hit
  // its node budget, and on which verb.
  if (resp.code == lv::ErrorCode::kQuotaExceeded) {
    ++stats_.quota_rejects;
    static metrics::Counter& quota_rejects =
        metrics::GetCounter("xenstore.daemon.quota_rejects");
    quota_rejects.Inc();
    obs::FlightRecorder::Get().Record(obs_node_, {}, "xenstore", "quota.reject",
                                      false, static_cast<int64_t>(req.domid));
  }

  // Deliver fired watches (one message + interrupt per event).
  if (!hits.empty()) {
    co_await ctx.Work(costs_.per_watch_fire * static_cast<double>(hits.size()));
    DeliverWatchHits(hits);
  }

  if (req.reply != nullptr) {
    req.reply->Set(std::move(resp));
  }
}

// --- XsClient ----------------------------------------------------------------

XsClient::XsClient(sim::Engine* engine, Daemon* daemon, hv::DomainId domid)
    : engine_(engine), daemon_(daemon), domid_(domid), events_(engine) {
  id_ = daemon_->RegisterClient(domid, &events_);
}

XsClient::~XsClient() { daemon_->UnregisterClient(id_); }

sim::Co<Response> XsClient::Call(sim::ExecCtx ctx, Request req) {
  trace::Span span(ctx.track, ClientSpanName(req.op));
  const Costs& costs = daemon_->costs();
  req.client = id_;
  req.domid = domid_;
  req.reply = std::make_shared<sim::SharedFuture<Response>>(engine_);
  // Marshal + send interrupt on the caller's core.
  co_await ctx.Work(costs.client_marshal + costs.soft_interrupt);
  auto reply = req.reply;
  daemon_->Submit(std::move(req));
  Response resp = co_await reply->Get();
  // Response-delivery interrupt(s) + unmarshal.
  co_await ctx.Work(costs.soft_interrupt *
                        static_cast<double>(costs.client_interrupts - 1) +
                    costs.client_marshal);
  co_return resp;
}

namespace {

lv::Status ToStatus(const Response& resp) {
  if (resp.ok()) {
    return lv::Status::Ok();
  }
  return lv::Err(resp.code, resp.error_message);
}

}  // namespace

sim::Co<lv::Result<std::string>> XsClient::Read(sim::ExecCtx ctx, const std::string& path,
                                                TxnId txn) {
  Request req;
  req.op = OpType::kRead;
  req.path = path;
  req.txn = txn;
  Response resp = co_await Call(ctx, std::move(req));
  if (!resp.ok()) {
    co_return lv::Err(resp.code, resp.error_message);
  }
  co_return resp.value;
}

sim::Co<lv::Status> XsClient::Write(sim::ExecCtx ctx, const std::string& path,
                                    const std::string& value, TxnId txn) {
  Request req;
  req.op = OpType::kWrite;
  req.path = path;
  req.value = value;
  req.txn = txn;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Status> XsClient::Mkdir(sim::ExecCtx ctx, const std::string& path, TxnId txn) {
  Request req;
  req.op = OpType::kMkdir;
  req.path = path;
  req.txn = txn;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Status> XsClient::Rm(sim::ExecCtx ctx, const std::string& path, TxnId txn) {
  Request req;
  req.op = OpType::kRm;
  req.path = path;
  req.txn = txn;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Result<std::vector<std::string>>> XsClient::Directory(sim::ExecCtx ctx,
                                                                  const std::string& path,
                                                                  TxnId txn) {
  Request req;
  req.op = OpType::kDirectory;
  req.path = path;
  req.txn = txn;
  Response resp = co_await Call(ctx, std::move(req));
  if (!resp.ok()) {
    co_return lv::Err(resp.code, resp.error_message);
  }
  co_return std::move(resp.entries);
}

sim::Co<lv::Status> XsClient::Watch(sim::ExecCtx ctx, const std::string& path,
                                    const std::string& token) {
  Request req;
  req.op = OpType::kWatch;
  req.path = path;
  req.token = token;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Status> XsClient::Unwatch(sim::ExecCtx ctx, const std::string& path,
                                      const std::string& token) {
  Request req;
  req.op = OpType::kUnwatch;
  req.path = path;
  req.token = token;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Result<TxnId>> XsClient::TxBegin(sim::ExecCtx ctx) {
  Request req;
  req.op = OpType::kTxBegin;
  Response resp = co_await Call(ctx, std::move(req));
  if (!resp.ok()) {
    co_return lv::Err(resp.code, resp.error_message);
  }
  co_return static_cast<TxnId>(std::atoll(resp.value.c_str()));
}

sim::Co<lv::Status> XsClient::TxCommit(sim::ExecCtx ctx, TxnId txn) {
  Request req;
  req.op = OpType::kTxCommit;
  req.txn = txn;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Status> XsClient::TxAbort(sim::ExecCtx ctx, TxnId txn) {
  Request req;
  req.op = OpType::kTxAbort;
  req.txn = txn;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Status> XsClient::WriteUniqueName(sim::ExecCtx ctx, hv::DomainId domid,
                                              const std::string& name) {
  Request req;
  req.op = OpType::kWriteUniqueName;
  req.path = lv::StrFormat("/local/domain/%lld/name", (long long)domid);
  req.value = name;
  co_return ToStatus(co_await Call(ctx, std::move(req)));
}

sim::Co<lv::Status> RunTransaction(sim::ExecCtx ctx, XsClient* client, int max_retries,
                                   std::function<sim::Co<lv::Status>(TxnId)> body) {
  lv::Status last = lv::Err(lv::ErrorCode::kConflict, "not attempted");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    auto txn = co_await client->TxBegin(ctx);
    if (!txn.ok()) {
      co_return txn.error();
    }
    lv::Status body_status = co_await body(*txn);
    if (!body_status.ok()) {
      (void)co_await client->TxAbort(ctx, *txn);
      co_return body_status;
    }
    last = co_await client->TxCommit(ctx, *txn);
    if (last.ok() || last.code() != lv::ErrorCode::kConflict) {
      co_return last;
    }
    // Conflict: pay the whole transaction again, like a real client.
    trace::Count("xs.txn_retries", 1);
    static metrics::Counter& retries = metrics::GetCounter("xenstore.client.tx_retries");
    retries.Inc();
  }
  co_return last;
}

}  // namespace xs
