// StorePolicy: which store implementation a Store instance uses.
//
// kLegacy is the faithful oxenstored model — O(#watches) match scans,
// O(#domains) unique-name checks — whose superlinear cost curve figures 4
// and 9 reproduce. kIndexed is the fast path (hash path lookup, per-prefix
// sharded watch fanout, O(1) name index, batched transaction commit, domain
// quotas) for fleet-scale runs. Both policies are observably equivalent:
// identical read results, watch-hit sets and order, error codes and node /
// watch counts — only the *effort counters* (and hence simulated CPU cost)
// differ. tests/property_test.cc holds them to that contract with a
// differential oracle over seeded random op sequences.
//
// The policy is threaded via a thread-local "current store context" plus a
// RAII scope (the Device/DeviceScope idiom) instead of through every
// constructor signature on the Host -> Dom0Services -> Daemon path: the
// creator of a daemon opens a StorePolicyScope, and any Store constructed
// underneath it picks the policy up.
#pragma once

#include <string>

namespace xs {

enum class StorePolicy {
  kLegacy,   // faithful O(n) oxenstored model (default)
  kIndexed,  // indexed fast path
};

// "legacy" / "indexed".
const char* StorePolicyName(StorePolicy policy);
// Returns false on an unknown name; *out is untouched.
bool StorePolicyFromName(const std::string& name, StorePolicy* out);

// The thread-local current policy; kLegacy until a scope or an explicit
// SetCurrentStorePolicy changes it.
StorePolicy CurrentStorePolicy();
void SetCurrentStorePolicy(StorePolicy policy);

// RAII scope: installs `policy` as the thread-local current policy and
// restores the previous one on destruction. Scopes nest.
class StorePolicyScope {
 public:
  explicit StorePolicyScope(StorePolicy policy)
      : prev_(CurrentStorePolicy()) {
    SetCurrentStorePolicy(policy);
  }
  ~StorePolicyScope() { SetCurrentStorePolicy(prev_); }

  StorePolicyScope(const StorePolicyScope&) = delete;
  StorePolicyScope& operator=(const StorePolicyScope&) = delete;

 private:
  StorePolicy prev_;
};

}  // namespace xs
