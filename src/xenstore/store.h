// The XenStore data model: a hierarchical key-value tree with per-node
// ownership, optimistic transactions, and prefix watches.
//
// This class is pure data structure — no simulated time. Every operation
// reports effort counters (nodes visited, watches checked, names compared,
// children listed) which the Daemon translates into simulated CPU cost. The
// O(#watches) match scan, the O(#domains) unique-name check and the
// O(#children) directory listing are the mechanisms behind the paper's
// superlinear VM-creation times (§4.2).
//
// Two implementations live behind StorePolicy (policy.h): kLegacy charges
// the faithful O(n) effort above; kIndexed answers the same queries through
// a hash path index, per-prefix watch buckets and an O(1) name index, and
// batches shadowed writes at transaction commit. The index structures are
// maintained under both policies (pure bookkeeping: they never touch the
// effort counters or the generation counter, so legacy runs stay
// byte-identical) but only consulted — and only charged — on the indexed
// path. Both policies must be observably equivalent: identical values,
// errors, watch hits and counts; tests/property_test.cc enforces this with
// a differential oracle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/hv/types.h"
#include "src/xenstore/policy.h"

namespace xs {

using ClientId = int64_t;
using TxnId = int64_t;
inline constexpr TxnId kNoTxn = 0;

// Effort counters accumulated by each store operation.
struct OpEffort {
  int64_t nodes_visited = 0;
  int64_t watch_checks = 0;
  int64_t watches_fired = 0;
  int64_t children_listed = 0;
  int64_t names_compared = 0;
  int64_t value_bytes = 0;

  void Reset() { *this = OpEffort{}; }
};

// A watch registration hit produced by a mutation.
struct WatchHit {
  ClientId client = 0;
  std::string watch_path;  // the registered prefix
  std::string token;
  std::string fired_path;  // the path that was modified
};

class Store {
 public:
  // Picks up the thread-local policy (policy.h) so the Daemon's embedded
  // store can be policy-selected by whoever constructs the daemon without
  // widening any signature on that path.
  Store() : Store(CurrentStorePolicy()) {}
  explicit Store(StorePolicy policy);

  StorePolicy policy() const { return policy_; }

  // Effort counters for the most recent operation.
  const OpEffort& last_effort() const { return effort_; }

  // --- Core operations (txn == kNoTxn applies directly) ---------------------

  // Reads a node's value.
  lv::Result<std::string> Read(const std::string& path, TxnId txn = kNoTxn);

  // Writes a value, creating the node and any missing ancestors (XenStore
  // semantics). Mutations outside transactions fire watches immediately; the
  // hits are appended to `hits` if non-null.
  //
  // Permission model (as enforced by real xenstored's node ACLs): Dom0 may
  // mutate anywhere; a guest may only mutate inside its own
  // /local/domain/<domid> subtree. Reads are unrestricted (the default
  // world-readable ACL).
  lv::Status Write(const std::string& path, const std::string& value, hv::DomainId owner,
                   TxnId txn = kNoTxn, std::vector<WatchHit>* hits = nullptr);

  // Removes a node and its subtree.
  lv::Status Rm(const std::string& path, TxnId txn = kNoTxn,
                std::vector<WatchHit>* hits = nullptr,
                hv::DomainId requester = hv::kDom0);

  // Lists a node's children (costs O(#children), like XS_DIRECTORY).
  lv::Result<std::vector<std::string>> Directory(const std::string& path,
                                                 TxnId txn = kNoTxn);

  bool Exists(const std::string& path);

  // --- Transactions ----------------------------------------------------------
  // Optimistic concurrency mirroring oxenstored: reads/writes are tracked;
  // commit fails with CONFLICT if any touched path was modified by someone
  // else since the transaction began, and the client must retry.

  TxnId TxBegin();
  // abort=true discards. On success, buffered writes are applied atomically
  // and their watch hits appended to `hits`. Under quotas a commit that would
  // exceed a domain's node budget fails with QUOTA_EXCEEDED *before* applying
  // anything — the store is untouched and the transaction discarded.
  lv::Status TxCommit(TxnId txn, bool abort, std::vector<WatchHit>* hits);
  int64_t open_txns() const { return static_cast<int64_t>(txns_.size()); }

  // --- Watches ---------------------------------------------------------------

  // Registers a prefix watch. Per XenStore semantics the watch also fires
  // immediately upon registration; the synthetic hit is returned.
  WatchHit AddWatch(ClientId client, const std::string& path, const std::string& token);
  void RemoveWatch(ClientId client, const std::string& path, const std::string& token);
  void RemoveClientWatches(ClientId client);
  int64_t num_watches() const { return static_cast<int64_t>(watches_.size()); }

  // Synthesizes one hit per registration (fired_path == watch path), in
  // registration order — the replay a restarted xenstored sends so clients
  // re-evaluate watch-driven state machines. Charges one watch check each.
  std::vector<WatchHit> ReplayWatches();

  // --- Domain-name uniqueness (paper §4.2) -----------------------------------
  // Legacy: scans every registered guest name under /local/domain/*/name and
  // compares against `name`; O(#domains). Indexed: one probe of the name
  // index. Returns ALREADY_EXISTS on duplicate either way.
  lv::Status CheckUniqueName(const std::string& name);

  // --- Quotas ----------------------------------------------------------------
  // Per-domain node budget, enforced on node creation for guest-owned writes
  // (Dom0 is exempt, as in real xenstored's quota knobs). 0 disables
  // enforcement (the default; existing benches and figures are unaffected).
  void set_node_quota(int64_t max_nodes_per_domain) { node_quota_ = max_nodes_per_domain; }
  int64_t node_quota() const { return node_quota_; }
  // Nodes currently owned by `domid` (quota accounting view).
  int64_t owner_nodes(hv::DomainId domid) const;

  // Total nodes in the tree, excluding the root. Maintained incrementally.
  int64_t num_nodes() const { return node_count_; }

  uint64_t generation() const { return gen_; }

 private:
  struct Node {
    std::string value;
    hv::DomainId owner = hv::kDom0;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  // One buffered transaction mutation; nullopt value = removal. The owner is
  // recorded per write so quota accounting at commit charges the domain that
  // issued the write, not the committer.
  struct TxnWrite {
    std::string path;
    std::optional<std::string> value;
    hv::DomainId owner = hv::kDom0;
  };

  struct Txn {
    uint64_t start_gen = 0;
    std::vector<TxnWrite> writes;  // buffered mutations in order
    std::vector<std::string> reads;
    hv::DomainId owner = hv::kDom0;
  };

  struct Watch {
    ClientId client = 0;
    std::string path;
    std::string token;
    // Registration sequence number: the indexed fanout collects matches from
    // per-prefix buckets and re-sorts by seq so hit order is byte-identical
    // to the legacy registration-order scan.
    int64_t seq = 0;
  };

  // Canonicalizes a path ("/a//b/" -> "a/b" as joined segments).
  static std::string Canon(const std::string& path);
  // May `domid` mutate `canon`?
  static bool MayMutate(hv::DomainId domid, const std::string& canon);
  Node* Walk(const std::string& canon, bool create, hv::DomainId owner);
  // Policy-dispatched existing-node lookup: legacy walks (charging per
  // segment), indexed probes the path index (charging one visit).
  Node* Lookup(const std::string& canon);
  void BumpGen(const std::string& canon);
  uint64_t PathGen(const std::string& canon) const;
  // Scans all watches for matches against a mutated path. Legacy: linear
  // O(#watches) scan. Indexed: one bucket probe per ancestor prefix.
  void MatchWatches(const std::string& canon, std::vector<WatchHit>* hits);
  lv::Status ApplyWrite(const std::string& canon, const std::optional<std::string>& value,
                        hv::DomainId owner, std::vector<WatchHit>* hits);

  // --- Index bookkeeping (both policies; never touches effort counters) -----
  // Registers a freshly created node with the path index, node/owner counts
  // and (for local/domain/<id>/name paths) the name index.
  void RegisterNode(const std::string& canon, Node* node);
  // Unregisters `node` and its whole subtree ahead of removal.
  void UnregisterSubtree(const std::string& canon, Node* node);
  // Sets a node's value, keeping the name index in sync.
  void SetNodeValue(const std::string& canon, Node* node, const std::string& value);
  static bool IsDomainNamePath(const std::string& canon);
  void IndexName(const std::string& value, int64_t delta);

  // --- Quota enforcement -----------------------------------------------------
  // Nodes a write to `canon` would create, given the current tree plus the
  // paths in `virtual_nodes` (commit pre-pass); newly implied ancestors are
  // added to `virtual_nodes` when non-null.
  int64_t CountMissingNodes(const std::string& canon,
                            std::map<std::string, bool>* virtual_nodes) const;
  lv::Status CheckQuota(hv::DomainId owner, int64_t new_nodes) const;
  // Dry-runs every buffered write's node creations against the quota before
  // a commit applies anything, so rejection leaves the store untouched.
  lv::Status PrecheckTxnQuota(const Txn& t) const;

  StorePolicy policy_;
  Node root_;
  uint64_t gen_ = 1;
  std::unordered_map<std::string, uint64_t> path_gen_;
  std::vector<Watch> watches_;
  std::unordered_map<TxnId, Txn> txns_;
  TxnId next_txn_ = 1;
  OpEffort effort_;

  // Index structures (see RegisterNode). path_index_ maps every canon path to
  // its node; watch_index_ buckets watch copies by exact registered prefix;
  // name_index_ refcounts the values of local/domain/<id>/name nodes.
  std::unordered_map<std::string, Node*> path_index_;
  std::unordered_map<std::string, std::vector<Watch>> watch_index_;
  std::unordered_map<std::string, int64_t> name_index_;
  int64_t watch_seq_ = 0;
  int64_t node_count_ = 0;
  // Deterministic iteration order matters: quota pre-pass failure messages
  // must not depend on hash-map ordering.
  std::map<hv::DomainId, int64_t> owner_nodes_;
  int64_t node_quota_ = 0;  // 0 = unlimited
};

}  // namespace xs
