// The XenStore data model: a hierarchical key-value tree with per-node
// ownership, optimistic transactions, and prefix watches.
//
// This class is pure data structure — no simulated time. Every operation
// reports effort counters (nodes visited, watches checked, names compared,
// children listed) which the Daemon translates into simulated CPU cost. The
// O(#watches) match scan, the O(#domains) unique-name check and the
// O(#children) directory listing are the mechanisms behind the paper's
// superlinear VM-creation times (§4.2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/hv/types.h"

namespace xs {

using ClientId = int64_t;
using TxnId = int64_t;
inline constexpr TxnId kNoTxn = 0;

// Effort counters accumulated by each store operation.
struct OpEffort {
  int64_t nodes_visited = 0;
  int64_t watch_checks = 0;
  int64_t watches_fired = 0;
  int64_t children_listed = 0;
  int64_t names_compared = 0;
  int64_t value_bytes = 0;

  void Reset() { *this = OpEffort{}; }
};

// A watch registration hit produced by a mutation.
struct WatchHit {
  ClientId client = 0;
  std::string watch_path;  // the registered prefix
  std::string token;
  std::string fired_path;  // the path that was modified
};

class Store {
 public:
  Store();

  // Effort counters for the most recent operation.
  const OpEffort& last_effort() const { return effort_; }

  // --- Core operations (txn == kNoTxn applies directly) ---------------------

  // Reads a node's value.
  lv::Result<std::string> Read(const std::string& path, TxnId txn = kNoTxn);

  // Writes a value, creating the node and any missing ancestors (XenStore
  // semantics). Mutations outside transactions fire watches immediately; the
  // hits are appended to `hits` if non-null.
  //
  // Permission model (as enforced by real xenstored's node ACLs): Dom0 may
  // mutate anywhere; a guest may only mutate inside its own
  // /local/domain/<domid> subtree. Reads are unrestricted (the default
  // world-readable ACL).
  lv::Status Write(const std::string& path, const std::string& value, hv::DomainId owner,
                   TxnId txn = kNoTxn, std::vector<WatchHit>* hits = nullptr);

  // Removes a node and its subtree.
  lv::Status Rm(const std::string& path, TxnId txn = kNoTxn,
                std::vector<WatchHit>* hits = nullptr,
                hv::DomainId requester = hv::kDom0);

  // Lists a node's children (costs O(#children), like XS_DIRECTORY).
  lv::Result<std::vector<std::string>> Directory(const std::string& path,
                                                 TxnId txn = kNoTxn);

  bool Exists(const std::string& path);

  // --- Transactions ----------------------------------------------------------
  // Optimistic concurrency mirroring oxenstored: reads/writes are tracked;
  // commit fails with CONFLICT if any touched path was modified by someone
  // else since the transaction began, and the client must retry.

  TxnId TxBegin();
  // abort=true discards. On success, buffered writes are applied atomically
  // and their watch hits appended to `hits`.
  lv::Status TxCommit(TxnId txn, bool abort, std::vector<WatchHit>* hits);
  int64_t open_txns() const { return static_cast<int64_t>(txns_.size()); }

  // --- Watches ---------------------------------------------------------------

  // Registers a prefix watch. Per XenStore semantics the watch also fires
  // immediately upon registration; the synthetic hit is returned.
  WatchHit AddWatch(ClientId client, const std::string& path, const std::string& token);
  void RemoveWatch(ClientId client, const std::string& path, const std::string& token);
  void RemoveClientWatches(ClientId client);
  int64_t num_watches() const { return static_cast<int64_t>(watches_.size()); }

  // Synthesizes one hit per registration (fired_path == watch path), in
  // registration order — the replay a restarted xenstored sends so clients
  // re-evaluate watch-driven state machines. Charges one watch check each.
  std::vector<WatchHit> ReplayWatches();

  // --- Domain-name uniqueness (paper §4.2) -----------------------------------
  // Scans every registered guest name under /local/domain/*/name and compares
  // against `name`; O(#domains). Returns ALREADY_EXISTS on duplicate.
  lv::Status CheckUniqueName(const std::string& name);

  uint64_t generation() const { return gen_; }

 private:
  struct Node {
    std::string value;
    hv::DomainId owner = hv::kDom0;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  struct Txn {
    uint64_t start_gen = 0;
    // Buffered mutations in order; nullopt value = removal.
    std::vector<std::pair<std::string, std::optional<std::string>>> writes;
    std::vector<std::string> reads;
    hv::DomainId owner = hv::kDom0;
  };

  struct Watch {
    ClientId client = 0;
    std::string path;
    std::string token;
  };

  // Canonicalizes a path ("/a//b/" -> "a/b" as joined segments).
  static std::string Canon(const std::string& path);
  // May `domid` mutate `canon`?
  static bool MayMutate(hv::DomainId domid, const std::string& canon);
  Node* Walk(const std::string& canon, bool create, hv::DomainId owner);
  void BumpGen(const std::string& canon);
  uint64_t PathGen(const std::string& canon) const;
  // Scans all watches for matches against a mutated path (O(#watches)).
  void MatchWatches(const std::string& canon, std::vector<WatchHit>* hits);
  lv::Status ApplyWrite(const std::string& canon, const std::optional<std::string>& value,
                        hv::DomainId owner, std::vector<WatchHit>* hits);

  Node root_;
  uint64_t gen_ = 1;
  std::unordered_map<std::string, uint64_t> path_gen_;
  std::vector<Watch> watches_;
  std::unordered_map<TxnId, Txn> txns_;
  TxnId next_txn_ = 1;
  OpEffort effort_;
};

}  // namespace xs
