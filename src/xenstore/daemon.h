// xenstored: the store daemon process running in Dom0.
//
// A single-threaded server (like oxenstored) consuming requests from a ring;
// we model the ring as a channel and the process as one coroutine pinned to
// a Dom0 core. Serialization of all store traffic through this one loop is
// itself a scalability bottleneck the paper measures.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/xenstore/costs.h"
#include "src/xenstore/store.h"

namespace xs {

enum class OpType {
  kRead,
  kWrite,
  kMkdir,
  kRm,
  kDirectory,
  kWatch,
  kUnwatch,
  kTxBegin,
  kTxCommit,
  kTxAbort,
  kWriteUniqueName,  // write /local/domain/<id>/name with O(n) admission scan
  kReleaseClient,    // drop a client's watches (domain death)
  kRestart,          // fault injection: daemon dies and comes back after a downtime
  kStop,             // shuts the daemon down (testing/teardown)
};

struct Response {
  lv::ErrorCode code = lv::ErrorCode::kOk;
  std::string error_message;
  std::string value;                 // read result / txn id as decimal
  std::vector<std::string> entries;  // directory result

  bool ok() const { return code == lv::ErrorCode::kOk; }
};

struct Request {
  ClientId client = 0;
  hv::DomainId domid = hv::kDom0;
  OpType op = OpType::kRead;
  std::string path;
  std::string value;
  std::string token;
  TxnId txn = kNoTxn;
  lv::Duration downtime{};  // kRestart only: how long the daemon stays down
  std::shared_ptr<sim::SharedFuture<Response>> reply;
};

// A fired watch delivered to a client.
struct WatchEvent {
  std::string watch_path;
  std::string token;
  std::string fired_path;
};

class Daemon {
 public:
  struct Stats {
    int64_t ops = 0;
    int64_t conflicts = 0;
    int64_t rotations = 0;
    int64_t watch_events = 0;
    int64_t restarts = 0;
    int64_t quota_rejects = 0;
  };

  Daemon(sim::Engine* engine, Costs costs = Costs());
  ~Daemon();

  // Starts the daemon loop on the given Dom0 execution context.
  void Start(sim::ExecCtx daemon_ctx);
  // Posts a stop request and drains the engine until the loop frame has
  // completed, so no queued event still references it.
  void Stop();
  bool running() const { return running_; }

  // Fault injection: the daemon "crashes" and comes back `downtime` later.
  // Requests queued behind the restart fail with kUnavailable; on recovery
  // every registered watch re-fires once (watch replay), exactly like a real
  // xenstored restart where clients re-see their watch registrations.
  void InjectRestart(lv::Duration downtime);

  // Registers a client; fired watches are pushed into `events` (owned by the
  // client, must outlive the registration).
  ClientId RegisterClient(hv::DomainId domid, sim::Channel<WatchEvent>* events);
  void UnregisterClient(ClientId id);

  // Enqueues a request (the client-side library is XsClient below). When the
  // daemon is not running the request fails immediately with kUnavailable so
  // callers error out instead of parking forever on a dead ring.
  void Submit(Request req);

  Store& store() { return store_; }
  const Stats& stats() const { return stats_; }
  // Which node's flight-recorder ring daemon events (quota rejections) land
  // in; single-host runs keep the default 0.
  void set_obs_node(int node) { obs_node_ = node; }
  const Costs& costs() const { return costs_; }
  // Cost-model override hook for ablation studies.
  Costs* mutable_costs() { return &costs_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  sim::Co<void> Run(sim::ExecCtx ctx);
  sim::Co<void> Process(sim::ExecCtx ctx, Request req);
  // Handles a kRestart request inside the daemon loop: fails queued requests,
  // sleeps the downtime, then replays every registered watch.
  sim::Co<void> Restart(sim::ExecCtx ctx, Request req);
  // Charges the daemon-side cost derived from the store's effort counters.
  sim::Co<void> ChargeEffort(sim::ExecCtx ctx);
  sim::Co<void> AppendAccessLog(sim::ExecCtx ctx);
  void DeliverWatchHits(const std::vector<WatchHit>& hits);

  sim::Engine* engine_;
  Costs costs_;
  Store store_;
  sim::Channel<Request> queue_;
  std::unordered_map<ClientId, sim::Channel<WatchEvent>*> clients_;
  ClientId next_client_ = 1;
  int64_t log_lines_ = 0;
  bool running_ = false;
  int obs_node_ = 0;
  Stats stats_;
  // Owner-held loop frame (own-and-drain teardown, see Stop()). Declared last
  // so the frame dies before any member it references.
  sim::Co<void> loop_;
};

// Client-side library handle (libxs / xenbus). One per consumer; methods are
// coroutines charging client-side protocol costs to the caller's ExecCtx.
class XsClient {
 public:
  XsClient(sim::Engine* engine, Daemon* daemon, hv::DomainId domid);
  ~XsClient();
  XsClient(const XsClient&) = delete;
  XsClient& operator=(const XsClient&) = delete;

  ClientId id() const { return id_; }
  hv::DomainId domid() const { return domid_; }

  sim::Co<lv::Result<std::string>> Read(sim::ExecCtx ctx, const std::string& path,
                                        TxnId txn = kNoTxn);
  sim::Co<lv::Status> Write(sim::ExecCtx ctx, const std::string& path,
                            const std::string& value, TxnId txn = kNoTxn);
  sim::Co<lv::Status> Mkdir(sim::ExecCtx ctx, const std::string& path, TxnId txn = kNoTxn);
  sim::Co<lv::Status> Rm(sim::ExecCtx ctx, const std::string& path, TxnId txn = kNoTxn);
  sim::Co<lv::Result<std::vector<std::string>>> Directory(sim::ExecCtx ctx,
                                                          const std::string& path,
                                                          TxnId txn = kNoTxn);
  sim::Co<lv::Status> Watch(sim::ExecCtx ctx, const std::string& path,
                            const std::string& token);
  sim::Co<lv::Status> Unwatch(sim::ExecCtx ctx, const std::string& path,
                              const std::string& token);
  sim::Co<lv::Result<TxnId>> TxBegin(sim::ExecCtx ctx);
  sim::Co<lv::Status> TxCommit(sim::ExecCtx ctx, TxnId txn);
  sim::Co<lv::Status> TxAbort(sim::ExecCtx ctx, TxnId txn);
  // Writes /local/domain/<domid>/name after the O(n) uniqueness scan.
  sim::Co<lv::Status> WriteUniqueName(sim::ExecCtx ctx, hv::DomainId domid,
                                      const std::string& name);

  // Blocks until the next watch event for this client arrives.
  sim::Channel<WatchEvent>::Awaiter NextWatchEvent() { return events_.Recv(); }
  size_t pending_watch_events() const { return events_.size(); }

  // Delivers a synthetic stop event (token kStopToken) to unblock a watcher
  // loop during teardown.
  static constexpr const char* kStopToken = "__stop__";
  void InjectShutdownEvent() { events_.Send(WatchEvent{"", kStopToken, ""}); }

 private:
  sim::Co<Response> Call(sim::ExecCtx ctx, Request req);

  sim::Engine* engine_;
  Daemon* daemon_;
  hv::DomainId domid_;
  ClientId id_;
  sim::Channel<WatchEvent> events_;
};

// Runs `body` inside a transaction, retrying on CONFLICT (EAGAIN) like every
// real XenStore client must. `body` receives the transaction id and performs
// its reads/writes through it.
sim::Co<lv::Status> RunTransaction(sim::ExecCtx ctx, XsClient* client, int max_retries,
                                   std::function<sim::Co<lv::Status>(TxnId)> body);

}  // namespace xs
