#include "src/xenstore/policy.h"

namespace xs {

namespace {
thread_local StorePolicy current_policy = StorePolicy::kLegacy;
}  // namespace

const char* StorePolicyName(StorePolicy policy) {
  switch (policy) {
    case StorePolicy::kLegacy:
      return "legacy";
    case StorePolicy::kIndexed:
      return "indexed";
  }
  return "?";
}

bool StorePolicyFromName(const std::string& name, StorePolicy* out) {
  if (name == "legacy") {
    *out = StorePolicy::kLegacy;
    return true;
  }
  if (name == "indexed") {
    *out = StorePolicy::kIndexed;
    return true;
  }
  return false;
}

StorePolicy CurrentStorePolicy() { return current_policy; }

void SetCurrentStorePolicy(StorePolicy policy) { current_policy = policy; }

}  // namespace xs
