// XenStore protocol cost model (paper §4.2).
//
// "The protocol used by the XenStore is quite expensive, where each operation
//  requires sending a message and receiving an acknowledgment, each
//  triggering a software interrupt: a single read or write thus triggers at
//  least two, and most often four, software interrupts and multiple domain
//  changes."
//
// Each request therefore pays: client marshalling, two client-side software
// interrupts (send + response delivery), two daemon-side interrupts, base
// daemon processing, access logging to 20 files (rotated every 13,215 lines,
// producing the spikes in Figures 4 and 9), plus effort-proportional terms
// for watch-list scans, unique-name comparisons and directory listings.
#pragma once

#include "src/base/time.h"

namespace xs {

struct Costs {
  // One software interrupt + the associated domain change.
  lv::Duration soft_interrupt = lv::Duration::Micros(8);
  // Interrupts on the requesting side per operation (send + response).
  int client_interrupts = 2;
  // Interrupts on the daemon side per operation.
  int daemon_interrupts = 2;
  // Marshalling a request / unmarshalling a response in the client library.
  lv::Duration client_marshal = lv::Duration::Micros(2);
  // Base processing of one request inside the store daemon.
  lv::Duration daemon_base = lv::Duration::Micros(10);
  // Per tree-node lookup cost.
  lv::Duration per_node = lv::Duration::Nanos(400);
  // Per registered-watch match check on each mutation (O(#watches) scan).
  lv::Duration per_watch_check = lv::Duration::Nanos(1000);
  // Delivering one fired watch event to its watcher (message + interrupt).
  lv::Duration per_watch_fire = lv::Duration::Micros(10);
  // Per existing-guest-name comparison during unique-name admission.
  lv::Duration per_name_check = lv::Duration::Micros(30);
  // Per child entry returned by XS_DIRECTORY.
  lv::Duration per_child = lv::Duration::Micros(1);
  // Per payload byte (copy in/out of the ring).
  lv::Duration per_byte = lv::Duration::Nanos(10);
  // Extra bookkeeping for transaction begin/commit.
  lv::Duration txn_overhead = lv::Duration::Micros(20);

  // --- Access logging (the spikes) ----------------------------------------
  bool logging_enabled = true;
  int log_files = 20;
  // Appending one line to all log files, per request.
  lv::Duration log_append = lv::Duration::Micros(12);
  int64_t log_rotate_lines = 13215;
  // Rotating a single log file.
  lv::Duration log_rotate_per_file = lv::Duration::Millis(15);
};

}  // namespace xs
