#include "src/xenstore/store.h"

#include <algorithm>

#include "src/base/strings.h"

namespace xs {

Store::Store() = default;

std::string Store::Canon(const std::string& path) {
  return lv::Join(lv::Split(path, '/'), '/');
}

bool Store::MayMutate(hv::DomainId domid, const std::string& canon) {
  if (domid == hv::kDom0) {
    return true;
  }
  std::string own = lv::StrFormat("local/domain/%lld", (long long)domid);
  return canon == own || (canon.size() > own.size() && lv::HasPrefix(canon, own) &&
                          canon[own.size()] == '/');
}

Store::Node* Store::Walk(const std::string& canon, bool create, hv::DomainId owner) {
  Node* node = &root_;
  if (canon.empty()) {
    return node;
  }
  for (const std::string& seg : lv::Split(canon, '/')) {
    ++effort_.nodes_visited;
    auto it = node->children.find(seg);
    if (it == node->children.end()) {
      if (!create) {
        return nullptr;
      }
      auto child = std::make_unique<Node>();
      child->owner = owner;
      it = node->children.emplace(seg, std::move(child)).first;
    }
    node = it->second.get();
  }
  return node;
}

void Store::BumpGen(const std::string& canon) {
  path_gen_[canon] = ++gen_;
  // Creating/removing an entry is also a modification of the parent
  // directory for conflict purposes.
  size_t slash = canon.rfind('/');
  std::string parent = slash == std::string::npos ? std::string() : canon.substr(0, slash);
  path_gen_[parent] = gen_;
}

uint64_t Store::PathGen(const std::string& canon) const {
  auto it = path_gen_.find(canon);
  return it == path_gen_.end() ? 0 : it->second;
}

void Store::MatchWatches(const std::string& canon, std::vector<WatchHit>* hits) {
  // oxenstored checks the fired path against every registered watch.
  for (const Watch& w : watches_) {
    ++effort_.watch_checks;
    bool match = canon == w.path || (canon.size() > w.path.size() &&
                                     lv::HasPrefix(canon, w.path) &&
                                     (w.path.empty() || canon[w.path.size()] == '/'));
    if (match) {
      ++effort_.watches_fired;
      if (hits != nullptr) {
        hits->push_back(WatchHit{w.client, w.path, w.token, canon});
      }
    }
  }
}

lv::Result<std::string> Store::Read(const std::string& path, TxnId txn) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
    }
    it->second.reads.push_back(canon);
    // Read-your-writes within the transaction.
    for (auto w = it->second.writes.rbegin(); w != it->second.writes.rend(); ++w) {
      if (w->first == canon) {
        if (!w->second.has_value()) {
          return lv::Err(lv::ErrorCode::kNotFound, path);
        }
        effort_.value_bytes += static_cast<int64_t>(w->second->size());
        return *w->second;
      }
    }
  }
  Node* node = Walk(canon, /*create=*/false, hv::kDom0);
  if (node == nullptr) {
    return lv::Err(lv::ErrorCode::kNotFound, path);
  }
  effort_.value_bytes += static_cast<int64_t>(node->value.size());
  return node->value;
}

lv::Status Store::ApplyWrite(const std::string& canon, const std::optional<std::string>& value,
                             hv::DomainId owner, std::vector<WatchHit>* hits) {
  if (value.has_value()) {
    Node* node = Walk(canon, /*create=*/true, owner);
    node->value = *value;
    effort_.value_bytes += static_cast<int64_t>(value->size());
  } else {
    // Removal.
    size_t slash = canon.rfind('/');
    std::string parent_path =
        slash == std::string::npos ? std::string() : canon.substr(0, slash);
    std::string leaf = slash == std::string::npos ? canon : canon.substr(slash + 1);
    Node* parent = Walk(parent_path, /*create=*/false, owner);
    if (parent == nullptr || parent->children.erase(leaf) == 0) {
      return lv::Err(lv::ErrorCode::kNotFound, canon);
    }
  }
  BumpGen(canon);
  MatchWatches(canon, hits);
  return lv::Status::Ok();
}

lv::Status Store::Write(const std::string& path, const std::string& value,
                        hv::DomainId owner, TxnId txn, std::vector<WatchHit>* hits) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (!MayMutate(owner, canon)) {
    return lv::Err(lv::ErrorCode::kPermissionDenied,
                   lv::StrFormat("dom%lld may not write %s", (long long)owner,
                                 path.c_str()));
  }
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
    }
    it->second.writes.emplace_back(canon, value);
    effort_.value_bytes += static_cast<int64_t>(value.size());
    return lv::Status::Ok();
  }
  return ApplyWrite(canon, value, owner, hits);
}

lv::Status Store::Rm(const std::string& path, TxnId txn, std::vector<WatchHit>* hits,
                     hv::DomainId requester) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (!MayMutate(requester, canon)) {
    return lv::Err(lv::ErrorCode::kPermissionDenied,
                   lv::StrFormat("dom%lld may not remove %s", (long long)requester,
                                 path.c_str()));
  }
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
    }
    it->second.writes.emplace_back(canon, std::nullopt);
    return lv::Status::Ok();
  }
  return ApplyWrite(canon, std::nullopt, hv::kDom0, hits);
}

lv::Result<std::vector<std::string>> Store::Directory(const std::string& path, TxnId txn) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it != txns_.end()) {
      it->second.reads.push_back(canon);
    }
  }
  Node* node = Walk(canon, /*create=*/false, hv::kDom0);
  if (node == nullptr) {
    return lv::Err(lv::ErrorCode::kNotFound, path);
  }
  std::vector<std::string> out;
  out.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    ++effort_.children_listed;
    out.push_back(name);
  }
  return out;
}

bool Store::Exists(const std::string& path) {
  effort_.Reset();
  return Walk(Canon(path), /*create=*/false, hv::kDom0) != nullptr;
}

TxnId Store::TxBegin() {
  effort_.Reset();
  TxnId id = next_txn_++;
  Txn txn;
  txn.start_gen = gen_;
  txns_.emplace(id, std::move(txn));
  return id;
}

lv::Status Store::TxCommit(TxnId txn, bool abort, std::vector<WatchHit>* hits) {
  effort_.Reset();
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
  }
  Txn t = std::move(it->second);
  txns_.erase(it);
  if (abort) {
    return lv::Status::Ok();
  }
  // Conflict detection: anything we read or wrote that someone else touched
  // since the transaction began forces a retry (EAGAIN in real Xen).
  for (const std::string& p : t.reads) {
    ++effort_.nodes_visited;
    if (PathGen(p) > t.start_gen) {
      return lv::Err(lv::ErrorCode::kConflict, "transaction conflict on " + p);
    }
  }
  for (const auto& [p, v] : t.writes) {
    ++effort_.nodes_visited;
    if (PathGen(p) > t.start_gen) {
      return lv::Err(lv::ErrorCode::kConflict, "transaction conflict on " + p);
    }
  }
  for (const auto& [p, v] : t.writes) {
    // Removal of a non-existent path inside a txn is tolerated (mirrors
    // xenstore rm semantics when the whole subtree was created in-txn).
    (void)ApplyWrite(p, v, t.owner, hits);
  }
  return lv::Status::Ok();
}

WatchHit Store::AddWatch(ClientId client, const std::string& path, const std::string& token) {
  effort_.Reset();
  std::string canon = Canon(path);
  watches_.push_back(Watch{client, canon, token});
  // XenStore fires a watch immediately upon registration.
  return WatchHit{client, canon, token, canon};
}

void Store::RemoveWatch(ClientId client, const std::string& path, const std::string& token) {
  effort_.Reset();
  std::string canon = Canon(path);
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [&](const Watch& w) {
                                  return w.client == client && w.path == canon &&
                                         w.token == token;
                                }),
                 watches_.end());
}

void Store::RemoveClientWatches(ClientId client) {
  effort_.Reset();
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [&](const Watch& w) { return w.client == client; }),
                 watches_.end());
}

std::vector<WatchHit> Store::ReplayWatches() {
  effort_.Reset();
  std::vector<WatchHit> hits;
  hits.reserve(watches_.size());
  for (const Watch& w : watches_) {
    ++effort_.watch_checks;
    hits.push_back(WatchHit{w.client, w.path, w.token, w.path});
  }
  return hits;
}

lv::Status Store::CheckUniqueName(const std::string& name) {
  effort_.Reset();
  Node* domains = Walk("local/domain", /*create=*/false, hv::kDom0);
  if (domains == nullptr) {
    return lv::Status::Ok();
  }
  for (const auto& [id, node] : domains->children) {
    ++effort_.names_compared;
    auto it = node->children.find("name");
    if (it != node->children.end() && it->second->value == name) {
      return lv::Err(lv::ErrorCode::kAlreadyExists, "guest name in use: " + name);
    }
  }
  return lv::Status::Ok();
}

}  // namespace xs
