#include "src/xenstore/store.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/strings.h"

namespace xs {

Store::Store(StorePolicy policy) : policy_(policy) {}

std::string Store::Canon(const std::string& path) {
  return lv::Join(lv::Split(path, '/'), '/');
}

bool Store::MayMutate(hv::DomainId domid, const std::string& canon) {
  if (domid == hv::kDom0) {
    return true;
  }
  std::string own = lv::StrFormat("local/domain/%lld", (long long)domid);
  return canon == own || (canon.size() > own.size() && lv::HasPrefix(canon, own) &&
                          canon[own.size()] == '/');
}

// --- Index bookkeeping -------------------------------------------------------
// Maintained under both policies so a store can serve as the differential
// reference for the other; pure bookkeeping that never touches the effort
// counters or the generation counter, keeping legacy runs byte-identical.

bool Store::IsDomainNamePath(const std::string& canon) {
  constexpr std::string_view kPrefix = "local/domain/";
  constexpr std::string_view kSuffix = "/name";
  if (canon.size() <= kPrefix.size() + kSuffix.size()) {
    return false;
  }
  if (canon.compare(0, kPrefix.size(), kPrefix) != 0 ||
      canon.compare(canon.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return false;
  }
  // Exactly one segment (the domid) between prefix and suffix.
  std::string_view mid(canon.data() + kPrefix.size(),
                       canon.size() - kPrefix.size() - kSuffix.size());
  return !mid.empty() && mid.find('/') == std::string_view::npos;
}

void Store::IndexName(const std::string& value, int64_t delta) {
  int64_t& count = name_index_[value];
  count += delta;
  if (count <= 0) {
    name_index_.erase(value);
  }
}

void Store::RegisterNode(const std::string& canon, Node* node) {
  path_index_[canon] = node;
  ++node_count_;
  ++owner_nodes_[node->owner];
  if (IsDomainNamePath(canon)) {
    IndexName(node->value, +1);
  }
}

void Store::UnregisterSubtree(const std::string& canon, Node* node) {
  for (auto& [name, child] : node->children) {
    UnregisterSubtree(canon + "/" + name, child.get());
  }
  path_index_.erase(canon);
  --node_count_;
  auto it = owner_nodes_.find(node->owner);
  if (it != owner_nodes_.end() && --it->second <= 0) {
    owner_nodes_.erase(it);
  }
  if (IsDomainNamePath(canon)) {
    IndexName(node->value, -1);
  }
}

void Store::SetNodeValue(const std::string& canon, Node* node, const std::string& value) {
  if (IsDomainNamePath(canon)) {
    IndexName(node->value, -1);
    IndexName(value, +1);
  }
  node->value = value;
}

int64_t Store::owner_nodes(hv::DomainId domid) const {
  auto it = owner_nodes_.find(domid);
  return it == owner_nodes_.end() ? 0 : it->second;
}

// --- Tree access -------------------------------------------------------------

Store::Node* Store::Walk(const std::string& canon, bool create, hv::DomainId owner) {
  Node* node = &root_;
  if (canon.empty()) {
    return node;
  }
  std::string prefix;
  for (const std::string& seg : lv::Split(canon, '/')) {
    ++effort_.nodes_visited;
    if (create) {
      prefix = prefix.empty() ? seg : prefix + "/" + seg;
    }
    auto it = node->children.find(seg);
    if (it == node->children.end()) {
      if (!create) {
        return nullptr;
      }
      auto child = std::make_unique<Node>();
      child->owner = owner;
      it = node->children.emplace(seg, std::move(child)).first;
      RegisterNode(prefix, it->second.get());
    }
    node = it->second.get();
  }
  return node;
}

Store::Node* Store::Lookup(const std::string& canon) {
  if (policy_ == StorePolicy::kIndexed) {
    if (canon.empty()) {
      return &root_;
    }
    ++effort_.nodes_visited;
    auto it = path_index_.find(canon);
    return it == path_index_.end() ? nullptr : it->second;
  }
  return Walk(canon, /*create=*/false, hv::kDom0);
}

void Store::BumpGen(const std::string& canon) {
  path_gen_[canon] = ++gen_;
  // Creating/removing an entry is also a modification of the parent
  // directory for conflict purposes.
  size_t slash = canon.rfind('/');
  std::string parent = slash == std::string::npos ? std::string() : canon.substr(0, slash);
  path_gen_[parent] = gen_;
}

uint64_t Store::PathGen(const std::string& canon) const {
  auto it = path_gen_.find(canon);
  return it == path_gen_.end() ? 0 : it->second;
}

void Store::MatchWatches(const std::string& canon, std::vector<WatchHit>* hits) {
  if (policy_ == StorePolicy::kIndexed) {
    // One bucket probe per ancestor prefix (including the path itself and
    // the match-all "" prefix) instead of a scan over every registration.
    // Matches are re-sorted by registration seq so the hit order is
    // byte-identical to the legacy scan.
    std::vector<const Watch*> matched;
    std::string prefix = canon;
    while (true) {
      ++effort_.watch_checks;
      auto it = watch_index_.find(prefix);
      if (it != watch_index_.end()) {
        for (const Watch& w : it->second) {
          matched.push_back(&w);
        }
      }
      if (prefix.empty()) {
        break;
      }
      size_t slash = prefix.rfind('/');
      prefix = slash == std::string::npos ? std::string() : prefix.substr(0, slash);
    }
    std::sort(matched.begin(), matched.end(),
              [](const Watch* a, const Watch* b) { return a->seq < b->seq; });
    for (const Watch* w : matched) {
      ++effort_.watches_fired;
      if (hits != nullptr) {
        hits->push_back(WatchHit{w->client, w->path, w->token, canon});
      }
    }
    return;
  }
  // oxenstored checks the fired path against every registered watch.
  for (const Watch& w : watches_) {
    ++effort_.watch_checks;
    bool match = canon == w.path || (canon.size() > w.path.size() &&
                                     lv::HasPrefix(canon, w.path) &&
                                     (w.path.empty() || canon[w.path.size()] == '/'));
    if (match) {
      ++effort_.watches_fired;
      if (hits != nullptr) {
        hits->push_back(WatchHit{w.client, w.path, w.token, canon});
      }
    }
  }
}

// --- Quota enforcement -------------------------------------------------------

int64_t Store::CountMissingNodes(const std::string& canon,
                                 std::map<std::string, bool>* virtual_nodes) const {
  if (canon.empty()) {
    return 0;
  }
  const Node* node = &root_;
  int64_t missing = 0;
  std::string prefix;
  for (const std::string& seg : lv::Split(canon, '/')) {
    prefix = prefix.empty() ? seg : prefix + "/" + seg;
    if (node != nullptr) {
      auto it = node->children.find(seg);
      if (it != node->children.end()) {
        node = it->second.get();
        continue;
      }
      node = nullptr;
    }
    if (virtual_nodes != nullptr) {
      if (virtual_nodes->count(prefix) == 0) {
        (*virtual_nodes)[prefix] = true;
        ++missing;
      }
    } else {
      ++missing;
    }
  }
  return missing;
}

lv::Status Store::CheckQuota(hv::DomainId owner, int64_t new_nodes) const {
  if (node_quota_ <= 0 || owner == hv::kDom0 || new_nodes == 0) {
    return lv::Status::Ok();
  }
  int64_t current = owner_nodes(owner);
  if (current + new_nodes > node_quota_) {
    return lv::Err(lv::ErrorCode::kQuotaExceeded,
                   lv::StrFormat("dom%lld node quota exceeded (%lld owned + %lld new > %lld)",
                                 (long long)owner, (long long)current,
                                 (long long)new_nodes, (long long)node_quota_));
  }
  return lv::Status::Ok();
}

lv::Status Store::PrecheckTxnQuota(const Txn& t) const {
  if (node_quota_ <= 0) {
    return lv::Status::Ok();
  }
  // Dry-run: count the nodes each buffered write would create given the tree
  // plus everything earlier writes in this transaction imply. Removals are
  // not credited back (conservative: a txn must fit its peak footprint).
  std::map<hv::DomainId, int64_t> pending;
  std::map<std::string, bool> virtual_nodes;
  for (const TxnWrite& w : t.writes) {
    if (!w.value.has_value()) {
      continue;
    }
    int64_t missing = CountMissingNodes(w.path, &virtual_nodes);
    if (missing > 0 && w.owner != hv::kDom0) {
      pending[w.owner] += missing;
    }
  }
  for (const auto& [owner, n] : pending) {
    lv::Status quota = CheckQuota(owner, n);
    if (!quota.ok()) {
      return quota;
    }
  }
  return lv::Status::Ok();
}

// --- Core operations ---------------------------------------------------------

lv::Result<std::string> Store::Read(const std::string& path, TxnId txn) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
    }
    it->second.reads.push_back(canon);
    // Read-your-writes within the transaction.
    for (auto w = it->second.writes.rbegin(); w != it->second.writes.rend(); ++w) {
      if (w->path == canon) {
        if (!w->value.has_value()) {
          return lv::Err(lv::ErrorCode::kNotFound, path);
        }
        effort_.value_bytes += static_cast<int64_t>(w->value->size());
        return *w->value;
      }
    }
  }
  Node* node = Lookup(canon);
  if (node == nullptr) {
    return lv::Err(lv::ErrorCode::kNotFound, path);
  }
  effort_.value_bytes += static_cast<int64_t>(node->value.size());
  return node->value;
}

lv::Status Store::ApplyWrite(const std::string& canon, const std::optional<std::string>& value,
                             hv::DomainId owner, std::vector<WatchHit>* hits) {
  if (value.has_value()) {
    Node* node = nullptr;
    if (policy_ == StorePolicy::kIndexed && !canon.empty()) {
      ++effort_.nodes_visited;
      auto it = path_index_.find(canon);
      node = it == path_index_.end() ? nullptr : it->second;
    }
    if (node == nullptr) {
      // Creation (or legacy): walk, charging per segment.
      node = Walk(canon, /*create=*/true, owner);
    }
    SetNodeValue(canon, node, *value);
    effort_.value_bytes += static_cast<int64_t>(value->size());
  } else {
    // Removal.
    size_t slash = canon.rfind('/');
    std::string parent_path =
        slash == std::string::npos ? std::string() : canon.substr(0, slash);
    std::string leaf = slash == std::string::npos ? canon : canon.substr(slash + 1);
    Node* parent = nullptr;
    if (policy_ == StorePolicy::kIndexed) {
      ++effort_.nodes_visited;
      if (!canon.empty() && path_index_.count(canon) == 0) {
        return lv::Err(lv::ErrorCode::kNotFound, canon);
      }
      if (parent_path.empty()) {
        parent = &root_;
      } else {
        ++effort_.nodes_visited;
        auto it = path_index_.find(parent_path);
        parent = it == path_index_.end() ? nullptr : it->second;
      }
    } else {
      parent = Walk(parent_path, /*create=*/false, owner);
    }
    if (parent == nullptr) {
      return lv::Err(lv::ErrorCode::kNotFound, canon);
    }
    auto child = parent->children.find(leaf);
    if (child == parent->children.end()) {
      return lv::Err(lv::ErrorCode::kNotFound, canon);
    }
    UnregisterSubtree(canon, child->second.get());
    parent->children.erase(child);
  }
  BumpGen(canon);
  MatchWatches(canon, hits);
  return lv::Status::Ok();
}

lv::Status Store::Write(const std::string& path, const std::string& value,
                        hv::DomainId owner, TxnId txn, std::vector<WatchHit>* hits) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (!MayMutate(owner, canon)) {
    return lv::Err(lv::ErrorCode::kPermissionDenied,
                   lv::StrFormat("dom%lld may not write %s", (long long)owner,
                                 path.c_str()));
  }
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
    }
    it->second.writes.push_back(TxnWrite{canon, value, owner});
    effort_.value_bytes += static_cast<int64_t>(value.size());
    return lv::Status::Ok();
  }
  if (node_quota_ > 0 && owner != hv::kDom0) {
    lv::Status quota = CheckQuota(owner, CountMissingNodes(canon, nullptr));
    if (!quota.ok()) {
      return quota;
    }
  }
  return ApplyWrite(canon, value, owner, hits);
}

lv::Status Store::Rm(const std::string& path, TxnId txn, std::vector<WatchHit>* hits,
                     hv::DomainId requester) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (!MayMutate(requester, canon)) {
    return lv::Err(lv::ErrorCode::kPermissionDenied,
                   lv::StrFormat("dom%lld may not remove %s", (long long)requester,
                                 path.c_str()));
  }
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
    }
    it->second.writes.push_back(TxnWrite{canon, std::nullopt, requester});
    return lv::Status::Ok();
  }
  return ApplyWrite(canon, std::nullopt, hv::kDom0, hits);
}

lv::Result<std::vector<std::string>> Store::Directory(const std::string& path, TxnId txn) {
  effort_.Reset();
  std::string canon = Canon(path);
  if (txn != kNoTxn) {
    auto it = txns_.find(txn);
    if (it != txns_.end()) {
      it->second.reads.push_back(canon);
    }
  }
  Node* node = Lookup(canon);
  if (node == nullptr) {
    return lv::Err(lv::ErrorCode::kNotFound, path);
  }
  std::vector<std::string> out;
  out.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    ++effort_.children_listed;
    out.push_back(name);
  }
  return out;
}

bool Store::Exists(const std::string& path) {
  effort_.Reset();
  return Lookup(Canon(path)) != nullptr;
}

// --- Transactions ------------------------------------------------------------

TxnId Store::TxBegin() {
  effort_.Reset();
  TxnId id = next_txn_++;
  Txn txn;
  txn.start_gen = gen_;
  txns_.emplace(id, std::move(txn));
  return id;
}

lv::Status Store::TxCommit(TxnId txn, bool abort, std::vector<WatchHit>* hits) {
  effort_.Reset();
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return lv::Err(lv::ErrorCode::kInvalidArgument, "unknown transaction");
  }
  Txn t = std::move(it->second);
  txns_.erase(it);
  if (abort) {
    return lv::Status::Ok();
  }
  // Conflict detection: anything we read or wrote that someone else touched
  // since the transaction began forces a retry (EAGAIN in real Xen). The
  // indexed path checks each distinct path once (the predicate is per-path
  // idempotent, so the first conflicting path — and thus the error — is
  // identical to the legacy per-entry scan).
  if (policy_ == StorePolicy::kIndexed) {
    std::unordered_set<std::string> checked;
    for (const std::string& p : t.reads) {
      if (!checked.insert(p).second) {
        continue;
      }
      ++effort_.nodes_visited;
      if (PathGen(p) > t.start_gen) {
        return lv::Err(lv::ErrorCode::kConflict, "transaction conflict on " + p);
      }
    }
    for (const TxnWrite& w : t.writes) {
      if (!checked.insert(w.path).second) {
        continue;
      }
      ++effort_.nodes_visited;
      if (PathGen(w.path) > t.start_gen) {
        return lv::Err(lv::ErrorCode::kConflict, "transaction conflict on " + w.path);
      }
    }
  } else {
    for (const std::string& p : t.reads) {
      ++effort_.nodes_visited;
      if (PathGen(p) > t.start_gen) {
        return lv::Err(lv::ErrorCode::kConflict, "transaction conflict on " + p);
      }
    }
    for (const TxnWrite& w : t.writes) {
      ++effort_.nodes_visited;
      if (PathGen(w.path) > t.start_gen) {
        return lv::Err(lv::ErrorCode::kConflict, "transaction conflict on " + w.path);
      }
    }
  }
  // Quota pre-pass before anything is applied: a rejected commit leaves the
  // store untouched (clean rollback) and the transaction discarded.
  lv::Status quota = PrecheckTxnQuota(t);
  if (!quota.ok()) {
    return quota;
  }
  // Batched commit (indexed, pure-write transactions): a path written more
  // than once mutates the tree only at its last occurrence; shadowed writes
  // still bump the generation and fire watches in buffered order, so the
  // observable hit sequence and conflict structure are identical to legacy —
  // only the redundant tree walks and value copies are skipped. Any removal
  // disables batching: rm erases a whole subtree, so write/rm/write to the
  // same path is not last-write-wins.
  bool batch = policy_ == StorePolicy::kIndexed;
  for (const TxnWrite& w : t.writes) {
    if (!w.value.has_value()) {
      batch = false;
      break;
    }
  }
  if (batch) {
    std::unordered_map<std::string, size_t> last;
    for (size_t i = 0; i < t.writes.size(); ++i) {
      last[t.writes[i].path] = i;
    }
    for (size_t i = 0; i < t.writes.size(); ++i) {
      const TxnWrite& w = t.writes[i];
      // A shadowed write to an *existing* node only sets a value the last
      // write overwrites anyway: keep its generation bump and watch hits,
      // skip the tree walk and value copy. Writes that create nodes are
      // never skipped, so creation (and its owner attribution) happens at
      // exactly the same write as the unbatched apply.
      if (last[w.path] != i && !w.path.empty() && path_index_.count(w.path) != 0) {
        BumpGen(w.path);
        MatchWatches(w.path, hits);
        continue;
      }
      (void)ApplyWrite(w.path, w.value, w.owner, hits);
    }
  } else {
    for (const TxnWrite& w : t.writes) {
      // Removal of a non-existent path inside a txn is tolerated (mirrors
      // xenstore rm semantics when the whole subtree was created in-txn).
      (void)ApplyWrite(w.path, w.value, w.owner, hits);
    }
  }
  return lv::Status::Ok();
}

// --- Watches -----------------------------------------------------------------

WatchHit Store::AddWatch(ClientId client, const std::string& path, const std::string& token) {
  effort_.Reset();
  std::string canon = Canon(path);
  Watch watch{client, canon, token, watch_seq_++};
  watches_.push_back(watch);
  watch_index_[canon].push_back(watch);
  // XenStore fires a watch immediately upon registration.
  return WatchHit{client, canon, token, canon};
}

void Store::RemoveWatch(ClientId client, const std::string& path, const std::string& token) {
  effort_.Reset();
  std::string canon = Canon(path);
  auto matches = [&](const Watch& w) {
    return w.client == client && w.path == canon && w.token == token;
  };
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(), matches),
                 watches_.end());
  auto bucket = watch_index_.find(canon);
  if (bucket != watch_index_.end()) {
    bucket->second.erase(
        std::remove_if(bucket->second.begin(), bucket->second.end(), matches),
        bucket->second.end());
    if (bucket->second.empty()) {
      watch_index_.erase(bucket);
    }
  }
}

void Store::RemoveClientWatches(ClientId client) {
  effort_.Reset();
  auto matches = [&](const Watch& w) { return w.client == client; };
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(), matches),
                 watches_.end());
  for (auto it = watch_index_.begin(); it != watch_index_.end();) {
    it->second.erase(
        std::remove_if(it->second.begin(), it->second.end(), matches),
        it->second.end());
    it = it->second.empty() ? watch_index_.erase(it) : std::next(it);
  }
}

std::vector<WatchHit> Store::ReplayWatches() {
  effort_.Reset();
  std::vector<WatchHit> hits;
  hits.reserve(watches_.size());
  for (const Watch& w : watches_) {
    ++effort_.watch_checks;
    hits.push_back(WatchHit{w.client, w.path, w.token, w.path});
  }
  return hits;
}

// --- Domain-name uniqueness --------------------------------------------------

lv::Status Store::CheckUniqueName(const std::string& name) {
  effort_.Reset();
  if (policy_ == StorePolicy::kIndexed) {
    // One probe of the name index instead of the O(#domains) scan.
    ++effort_.names_compared;
    auto it = name_index_.find(name);
    if (it != name_index_.end() && it->second > 0) {
      return lv::Err(lv::ErrorCode::kAlreadyExists, "guest name in use: " + name);
    }
    return lv::Status::Ok();
  }
  Node* domains = Walk("local/domain", /*create=*/false, hv::kDom0);
  if (domains == nullptr) {
    return lv::Status::Ok();
  }
  for (const auto& [id, node] : domains->children) {
    ++effort_.names_compared;
    auto it = node->children.find("name");
    if (it != node->children.end() && it->second->value == name) {
      return lv::Err(lv::ErrorCode::kAlreadyExists, "guest name in use: " + name);
    }
  }
  return lv::Status::Ok();
}

}  // namespace xs
