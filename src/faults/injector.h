// FaultInjector: arms a FaultPlan on the engine and fires each event into
// caller-provided sinks.
//
// The injector deliberately knows nothing about Host, Cluster or links — the
// wiring layer (scenario runner, tests, bench/chaos_storm) binds FaultTargets
// to the real operations. That keeps lv_faults dependent only on lv_base and
// lv_sim, and lets tests drive the injector against mocks.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/faults/plan.h"
#include "src/sim/engine.h"

namespace faults {

// Sinks for each fault kind. Unbound sinks are skipped (the event is still
// logged, marked "unhandled"), so a wiring may opt out of kinds that do not
// apply to its topology.
struct FaultTargets {
  std::function<void(int node)> crash_node;
  std::function<void(int node)> reboot_node;
  std::function<void(int node, lv::Duration downtime)> restart_xenstore;
  std::function<void(int node, lv::Duration stall, int count)> stall_hotplug;
  std::function<void(int node, int peer, lv::Duration length)> partition_link;
  std::function<void(int node, int count)> fail_creates;
  // Invoked after every injected event (at the same simulated time), e.g. to
  // assert invariants or record recovery bookkeeping.
  std::function<void(const FaultEvent&)> after_inject;
};

class FaultInjector {
 public:
  FaultInjector(sim::Engine* engine, FaultPlan plan, FaultTargets targets)
      : engine_(engine), plan_(std::move(plan)), targets_(std::move(targets)) {}

  // Sharded runs (sim/shard.h): routes each event onto the engine owning its
  // target domain, so the sink runs on the shard thread that owns the node's
  // state. Set before Arm(); unset means every event lands on the ctor
  // engine (the legacy single-engine path, byte-identical to before).
  void set_engine_resolver(std::function<sim::Engine*(const FaultEvent&)> r) {
    engine_resolver_ = std::move(r);
  }
  // Companion override for the flight-recorder ring an event is recorded
  // on. Events whose sink runs on the control shard (reboots, partitions)
  // must record to the control ring to keep each ring single-writer.
  void set_ring_resolver(std::function<int(const FaultEvent&)> r) {
    ring_resolver_ = std::move(r);
  }

  // Schedules every plan event relative to the current simulated time.
  // Call at most once.
  void Arm();

  // Deterministic log: one "t=<ns> kind=<k> ..." line per injected event, in
  // plan order. Byte-identical across runs with the same (seed, plan) — and
  // across shard counts, because each slot is written by exactly one event
  // regardless of which thread injects it. Slots of events that have not
  // fired yet (run ended early) are empty strings.
  const std::vector<std::string>& log() const { return log_; }
  int64_t injected() const { return injected_.load(std::memory_order_relaxed); }
  const FaultPlan& plan() const { return plan_; }

 private:
  void Inject(sim::Engine* engine, const FaultEvent& ev, size_t slot);

  sim::Engine* engine_;
  FaultPlan plan_;
  FaultTargets targets_;
  std::function<sim::Engine*(const FaultEvent&)> engine_resolver_;
  std::function<int(const FaultEvent&)> ring_resolver_;
  std::vector<std::string> log_;  // one pre-sized slot per plan event
  std::atomic<int64_t> injected_{0};
  bool armed_ = false;
};

}  // namespace faults
