// Per-host fault-injection hook state.
//
// A Host owns one FaultHooks and threads a pointer to it through the
// toolstack HostEnv and the device hotplug runners. The hot paths only read
// plain flags/counters, so a run with no faults armed pays nothing and the
// event sequence is identical to a build without the hooks.
#pragma once

#include <cstdint>

#include "src/base/time.h"

namespace faults {

struct FaultHooks {
  // Node-level liveness: set by Host::Crash(), cleared by Host::Reboot().
  // While set, toolstack operations abort at their next checkpoint with
  // kUnavailable instead of making further progress on a dead node.
  bool node_crashed = false;

  // Transient toolstack errors: the next N creates fail at the entry
  // checkpoint (before any device state is built) with kUnavailable.
  int fail_next_creates = 0;

  // Hotplug-script stalls: the next N hotplug script runs take an extra
  // `hotplug_stall` (a buggy udev script timing out before it succeeds).
  int stall_next_hotplugs = 0;
  lv::Duration hotplug_stall;

  // Telemetry, asserted on by tests and exported by bench/chaos_storm.
  int64_t injected_create_failures = 0;
  int64_t injected_hotplug_stalls = 0;

  // Consumes one scheduled create failure (crash does not consume a token:
  // a dead node fails every create until reboot).
  bool ShouldFailCreate() {
    if (node_crashed) {
      return true;
    }
    if (fail_next_creates > 0) {
      --fail_next_creates;
      ++injected_create_failures;
      return true;
    }
    return false;
  }

  // Extra latency to add to the next hotplug script run, or zero.
  lv::Duration TakeHotplugStall() {
    if (stall_next_hotplugs > 0) {
      --stall_next_hotplugs;
      ++injected_hotplug_stalls;
      return hotplug_stall;
    }
    return lv::Duration();
  }
};

}  // namespace faults
