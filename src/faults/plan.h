// FaultPlan: a deterministic schedule of fault events.
//
// A plan is pure data — what goes wrong, where, and when. The FaultInjector
// (injector.h) turns a plan into scheduled engine events; the scenario spec
// parses plans from the `faults` section of a JSON scenario. Because the
// plan is fixed up front and every downstream consumer draws only from the
// engine's seeded RNG, the same (seed, plan) pair always produces a
// byte-identical event sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace faults {

enum class FaultKind {
  kNodeCrash,      // node dies mid-flight; its VMs are lost until recovery
  kNodeReboot,     // a previously crashed node comes back, empty
  kXsRestart,      // xenstored restarts; watches replay after the downtime
  kHotplugStall,   // the next `count` hotplug script runs stall for `duration`
  kLinkPartition,  // migration fabric between `node` and `peer` drops
  kCreateFault,    // the next `count` creates on `node` fail transiently
};

// Stable lowercase names used by the scenario spec and the injector log.
const char* FaultKindName(FaultKind kind);
bool FaultKindFromName(const std::string& name, FaultKind* out);

struct FaultEvent {
  lv::Duration at;  // injection time relative to injector arm
  FaultKind kind = FaultKind::kNodeCrash;
  int node = 0;         // target node; link end A for partitions
  int peer = -1;        // link end B (kLinkPartition only)
  lv::Duration duration;  // downtime / stall length / partition length
  int count = 1;        // events consumed (kHotplugStall, kCreateFault)

  // Deterministic one-line rendering, e.g.
  //   "t=1500000000 kind=node-crash node=2"
  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  // Events sorted by injection time (stable, preserves insertion order for
  // equal times) — the order the injector arms them in.
  void SortByTime();

  // Seeded random plan: `num_events` faults over nodes [0, nodes) spread
  // uniformly across [0, horizon). Node crashes are paired with a reboot a
  // random fraction of the horizon later so sweeps exercise recovery, and at
  // least one node is never crashed (the cluster must keep a survivor to
  // evacuate onto).
  static FaultPlan Random(uint64_t seed, int nodes, int num_events, lv::Duration horizon);

  // One line per event (ToString order), used for reproducibility asserts.
  std::string ToString() const;
};

}  // namespace faults
