#include "src/faults/plan.h"

#include <algorithm>

#include "src/base/assert.h"
#include "src/base/rng.h"
#include "src/base/strings.h"

namespace faults {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeReboot:
      return "node-reboot";
    case FaultKind::kXsRestart:
      return "xenstore-restart";
    case FaultKind::kHotplugStall:
      return "hotplug-stall";
    case FaultKind::kLinkPartition:
      return "link-partition";
    case FaultKind::kCreateFault:
      return "create-fault";
  }
  LV_UNREACHABLE();
}

bool FaultKindFromName(const std::string& name, FaultKind* out) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kNodeCrash,    FaultKind::kNodeReboot,     FaultKind::kXsRestart,
      FaultKind::kHotplugStall, FaultKind::kLinkPartition, FaultKind::kCreateFault,
  };
  for (FaultKind k : kAll) {
    if (name == FaultKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::string FaultEvent::ToString() const {
  std::string s = lv::StrFormat("t=%lld kind=%s node=%d", static_cast<long long>(at.ns()),
                                FaultKindName(kind), node);
  if (kind == FaultKind::kLinkPartition) {
    s += lv::StrFormat(" peer=%d", peer);
  }
  if (!duration.is_zero()) {
    s += lv::StrFormat(" dur=%lld", static_cast<long long>(duration.ns()));
  }
  if (kind == FaultKind::kHotplugStall || kind == FaultKind::kCreateFault) {
    s += lv::StrFormat(" count=%d", count);
  }
  return s;
}

void FaultPlan::SortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

FaultPlan FaultPlan::Random(uint64_t seed, int nodes, int num_events, lv::Duration horizon) {
  LV_CHECK(nodes >= 1);
  LV_CHECK(horizon.ns() > 0);
  lv::Rng rng(seed);
  FaultPlan plan;
  // Keep node 0 out of the crash pool so at least one node survives to host
  // evacuated VMs; all other fault kinds may still target it.
  const int crashable_lo = nodes > 1 ? 1 : 0;
  for (int i = 0; i < num_events; ++i) {
    FaultEvent ev;
    ev.at = lv::Duration::Nanos(rng.Uniform(0, horizon.ns() - 1));
    switch (rng.Uniform(0, 4)) {
      case 0: {
        ev.kind = FaultKind::kNodeCrash;
        ev.node = static_cast<int>(rng.Uniform(crashable_lo, nodes - 1));
        plan.events.push_back(ev);
        // Pair the crash with a reboot later in (and sometimes past) the
        // horizon so sweeps exercise both evacuation and node return.
        FaultEvent reboot;
        reboot.kind = FaultKind::kNodeReboot;
        reboot.node = ev.node;
        reboot.at = ev.at + lv::Duration::Nanos(rng.Uniform(horizon.ns() / 10, horizon.ns()));
        plan.events.push_back(reboot);
        continue;
      }
      case 1:
        ev.kind = FaultKind::kXsRestart;
        ev.node = static_cast<int>(rng.Uniform(0, nodes - 1));
        ev.duration = lv::Duration::Millis(rng.Uniform(1, 50));
        break;
      case 2:
        ev.kind = FaultKind::kHotplugStall;
        ev.node = static_cast<int>(rng.Uniform(0, nodes - 1));
        ev.duration = lv::Duration::Millis(rng.Uniform(5, 200));
        ev.count = static_cast<int>(rng.Uniform(1, 4));
        break;
      case 3:
        ev.kind = FaultKind::kLinkPartition;
        ev.node = static_cast<int>(rng.Uniform(0, nodes - 1));
        ev.peer = static_cast<int>(rng.Uniform(0, nodes - 1));
        if (ev.peer == ev.node) {
          ev.peer = (ev.peer + 1) % nodes;
        }
        ev.duration = lv::Duration::Millis(rng.Uniform(10, 500));
        break;
      case 4:
        ev.kind = FaultKind::kCreateFault;
        ev.node = static_cast<int>(rng.Uniform(0, nodes - 1));
        ev.count = static_cast<int>(rng.Uniform(1, 3));
        break;
    }
    plan.events.push_back(ev);
  }
  plan.SortByTime();
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    out += ev.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace faults
