#include "src/faults/injector.h"

#include "src/base/assert.h"
#include "src/base/log.h"
#include "src/obs/obs.h"

namespace faults {

namespace {

// Stable flight-recorder verb per fault kind (string literals: the recorder
// stores the pointer, never copies).
const char* FlightVerb(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kNodeReboot:
      return "reboot";
    case FaultKind::kXsRestart:
      return "xs-restart";
    case FaultKind::kHotplugStall:
      return "hotplug-stall";
    case FaultKind::kLinkPartition:
      return "partition";
    case FaultKind::kCreateFault:
      return "create-fault";
  }
  return "unknown";
}

}  // namespace

void FaultInjector::Arm() {
  LV_CHECK_MSG(!armed_, "FaultInjector armed twice");
  armed_ = true;
  // One log slot per event, claimed at arm time: the log reads identically
  // however the events are spread across shard engines.
  log_.assign(plan_.events.size(), std::string());
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    sim::Engine* engine = engine_resolver_ ? engine_resolver_(ev) : engine_;
    engine->Schedule(ev.at, [this, engine, ev, i] { Inject(engine, ev, i); });
  }
}

void FaultInjector::Inject(sim::Engine* engine, const FaultEvent& ev,
                           size_t slot) {
  bool handled = true;
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      if (targets_.crash_node) {
        targets_.crash_node(ev.node);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kNodeReboot:
      if (targets_.reboot_node) {
        targets_.reboot_node(ev.node);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kXsRestart:
      if (targets_.restart_xenstore) {
        targets_.restart_xenstore(ev.node, ev.duration);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kHotplugStall:
      if (targets_.stall_hotplug) {
        targets_.stall_hotplug(ev.node, ev.duration, ev.count);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kLinkPartition:
      if (targets_.partition_link) {
        targets_.partition_link(ev.node, ev.peer, ev.duration);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kCreateFault:
      if (targets_.fail_creates) {
        targets_.fail_creates(ev.node, ev.count);
      } else {
        handled = false;
      }
      break;
  }
  // Log with the actual injection time (arm time + offset), so concatenated
  // logs from one engine run are globally ordered.
  FaultEvent stamped = ev;
  stamped.at = lv::Duration::Nanos(engine->now().ns());
  std::string line = stamped.ToString();
  if (!handled) {
    line += " unhandled";
  }
  log_[slot] = std::move(line);
  injected_.fetch_add(1, std::memory_order_relaxed);
  // Injections have no causal parent (they come from outside the system);
  // the flight ring still anchors "what hit this node, when".
  const int ring = ring_resolver_ ? ring_resolver_(ev) : ev.node;
  obs::FlightRecorder::Get().Record(ring, {}, "faults", FlightVerb(ev.kind),
                                    handled, ev.node);
  LV_DEBUG("faults", "%s", line.c_str());
  if (targets_.after_inject) {
    targets_.after_inject(ev);
  }
}

}  // namespace faults
