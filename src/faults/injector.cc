#include "src/faults/injector.h"

#include "src/base/assert.h"
#include "src/base/log.h"
#include "src/obs/obs.h"

namespace faults {

namespace {

// Stable flight-recorder verb per fault kind (string literals: the recorder
// stores the pointer, never copies).
const char* FlightVerb(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kNodeReboot:
      return "reboot";
    case FaultKind::kXsRestart:
      return "xs-restart";
    case FaultKind::kHotplugStall:
      return "hotplug-stall";
    case FaultKind::kLinkPartition:
      return "partition";
    case FaultKind::kCreateFault:
      return "create-fault";
  }
  return "unknown";
}

}  // namespace

void FaultInjector::Arm() {
  LV_CHECK_MSG(!armed_, "FaultInjector armed twice");
  armed_ = true;
  for (const FaultEvent& ev : plan_.events) {
    engine_->Schedule(ev.at, [this, ev] { Inject(ev); });
  }
}

void FaultInjector::Inject(const FaultEvent& ev) {
  bool handled = true;
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      if (targets_.crash_node) {
        targets_.crash_node(ev.node);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kNodeReboot:
      if (targets_.reboot_node) {
        targets_.reboot_node(ev.node);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kXsRestart:
      if (targets_.restart_xenstore) {
        targets_.restart_xenstore(ev.node, ev.duration);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kHotplugStall:
      if (targets_.stall_hotplug) {
        targets_.stall_hotplug(ev.node, ev.duration, ev.count);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kLinkPartition:
      if (targets_.partition_link) {
        targets_.partition_link(ev.node, ev.peer, ev.duration);
      } else {
        handled = false;
      }
      break;
    case FaultKind::kCreateFault:
      if (targets_.fail_creates) {
        targets_.fail_creates(ev.node, ev.count);
      } else {
        handled = false;
      }
      break;
  }
  // Log with the actual injection time (arm time + offset), so concatenated
  // logs from one engine run are globally ordered.
  FaultEvent stamped = ev;
  stamped.at = lv::Duration::Nanos(engine_->now().ns());
  std::string line = stamped.ToString();
  if (!handled) {
    line += " unhandled";
  }
  log_.push_back(line);
  ++injected_;
  // Injections have no causal parent (they come from outside the system);
  // the flight ring still anchors "what hit this node, when".
  obs::FlightRecorder::Get().Record(ev.node, {}, "faults", FlightVerb(ev.kind),
                                    handled);
  LV_DEBUG("faults", "%s", line.c_str());
  if (targets_.after_inject) {
    targets_.after_inject(ev);
  }
}

}  // namespace faults
