// Minimal packet model for the software switch and the use-case workloads.
#pragma once

#include <cstdint>
#include <string>

#include "src/base/time.h"
#include "src/base/units.h"

namespace xnet {

enum class PacketKind {
  kArp,   // broadcast address resolution (the Fig. 16b overload trigger)
  kPing,  // ICMP echo request/reply
  kData,  // bulk data (iperf / TLS payloads)
};

struct Packet {
  PacketKind kind = PacketKind::kData;
  std::string src;   // source port name (e.g. "vif3.0" or "uplink")
  std::string dst;   // destination port name; empty = broadcast
  lv::Bytes size = lv::Bytes::Count(1500);
  int64_t flow_id = 0;   // client/flow identifier
  int64_t seq = 0;
  bool is_reply = false;
  lv::TimePoint sent_at;
};

}  // namespace xnet
