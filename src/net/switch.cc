#include "src/net/switch.h"

#include "src/base/log.h"
#include "src/metrics/metrics.h"

namespace xnet {

namespace {
constexpr lv::Duration kWindow = lv::Duration::Millis(10);
}  // namespace

Switch::Switch(sim::Engine* engine, Costs costs)
    : engine_(engine), costs_(costs), window_start_(engine->now()) {}

lv::Status Switch::AddPort(const std::string& name, RxHandler handler) {
  if (ports_.contains(name)) {
    return lv::Err(lv::ErrorCode::kAlreadyExists, "port " + name);
  }
  ports_.emplace(name, std::move(handler));
  return lv::Status::Ok();
}

lv::Status Switch::RemovePort(const std::string& name) {
  if (ports_.erase(name) == 0) {
    return lv::Err(lv::ErrorCode::kNotFound, "port " + name);
  }
  return lv::Status::Ok();
}

bool Switch::OverCapacity() {
  lv::TimePoint now = engine_->now();
  if (now - window_start_ >= kWindow) {
    window_start_ = now;
    window_packets_ = 0;
  }
  ++window_packets_;
  double window_secs = kWindow.secs();
  return static_cast<double>(window_packets_) > costs_.capacity_pps * window_secs;
}

sim::Co<void> Switch::Forward(sim::ExecCtx ctx, Packet packet) {
  if (OverCapacity()) {
    ++stats_.dropped_overload;
    static metrics::Counter& dropped = metrics::GetCounter("net.switch.dropped_overload");
    dropped.Inc();
    co_return;
  }
  co_await ctx.Work(costs_.per_packet);
  if (packet.dst.empty()) {
    // Broadcast: deliver to every port except the ingress.
    ++stats_.broadcasts;
    static metrics::Counter& broadcasts = metrics::GetCounter("net.switch.broadcasts");
    broadcasts.Inc();
    co_await ctx.Work(costs_.per_broadcast_port * static_cast<double>(ports_.size()));
    for (const auto& [name, handler] : ports_) {
      if (name == packet.src) {
        continue;
      }
      RxHandler h = handler;
      Packet copy = packet;
      engine_->Schedule(lv::Duration::Micros(1), [h, copy] { h(copy); });
    }
    co_return;
  }
  auto it = ports_.find(packet.dst);
  if (it == ports_.end()) {
    ++stats_.dropped_no_port;
    static metrics::Counter& dropped = metrics::GetCounter("net.switch.dropped_no_port");
    dropped.Inc();
    co_return;
  }
  ++stats_.forwarded;
  static metrics::Counter& forwarded = metrics::GetCounter("net.switch.forwarded");
  forwarded.Inc();
  RxHandler h = it->second;
  engine_->Schedule(lv::Duration::Micros(1), [h, packet] { h(packet); });
}

}  // namespace xnet
