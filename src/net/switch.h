// Dom0 software switch (the paper's Open vSwitch / Linux bridge).
//
// Ports are added by the hotplug machinery (bash scripts under xl, xendevd
// under LightVM). Forwarding charges per-packet CPU to the switch's Dom0
// context. The bridge has a finite packet-processing capacity; when the
// offered load exceeds it the bridge drops packets — the paper observes
// exactly this in the just-in-time instantiation use case ("our Linux bridge
// is overloaded and starts dropping packets (mostly ARP packets)", §7.2).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "src/base/result.h"
#include "src/net/packet.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"

namespace xnet {

class Switch {
 public:
  struct Costs {
    // Per-packet forwarding cost on the Dom0 core (lookup + queueing).
    lv::Duration per_packet = lv::Duration::Micros(2);
    // Per-port cost of a broadcast (ARP floods every port).
    lv::Duration per_broadcast_port = lv::Duration::Micros(1);
    // Adding/removing a port (FIB update); the expensive part — running the
    // hotplug script or xendevd — is charged by the caller.
    lv::Duration port_update = lv::Duration::Micros(50);
    // Sustained packet-processing capacity. Beyond this the bridge drops.
    double capacity_pps = 300000.0;
  };

  struct Stats {
    int64_t forwarded = 0;
    int64_t broadcasts = 0;
    int64_t dropped_no_port = 0;
    int64_t dropped_overload = 0;
  };

  // A port's receive handler. Runs as a scheduled event; implementations
  // spawn their own coroutines for non-trivial work.
  using RxHandler = std::function<void(const Packet&)>;

  explicit Switch(sim::Engine* engine) : Switch(engine, Costs{}) {}
  Switch(sim::Engine* engine, Costs costs);

  // Port management (used by hotplug script / xendevd).
  lv::Status AddPort(const std::string& name, RxHandler handler);
  lv::Status RemovePort(const std::string& name);
  bool HasPort(const std::string& name) const { return ports_.contains(name); }
  int64_t num_ports() const { return static_cast<int64_t>(ports_.size()); }

  // Forwards a packet: unicast to `dst`, or broadcast when dst is empty.
  // Charges forwarding cost to `ctx`. Overload and unknown-destination drops
  // are silent (counted in stats), like a real bridge.
  sim::Co<void> Forward(sim::ExecCtx ctx, Packet packet);

  const Stats& stats() const { return stats_; }
  const Costs& costs() const { return costs_; }
  // Reconfigures the cost model (e.g. a lower-capacity edge bridge).
  void set_costs(Costs costs) { costs_ = costs; }

 private:
  // Token-bucket style overload detection over a sliding window.
  bool OverCapacity();

  sim::Engine* engine_;
  Costs costs_;
  std::map<std::string, RxHandler> ports_;
  Stats stats_;
  // Packet arrivals in the current 10ms accounting window.
  lv::TimePoint window_start_;
  int64_t window_packets_ = 0;
};

}  // namespace xnet
