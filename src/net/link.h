// Point-to-point link and a minimal TCP connection model, used by the
// migration path (chaos connects to the migration daemon on the remote host
// and streams the guest over TCP) and by the personal-firewall use case
// ("migrating a ClickOS VM over a 1Gbps, 10ms link takes just 150ms").
#pragma once

#include "src/base/time.h"
#include "src/base/units.h"
#include "src/metrics/metrics.h"
#include "src/sim/engine.h"

namespace xnet {

class Link {
 public:
  Link(sim::Engine* engine, double gbps, lv::Duration rtt)
      : engine_(engine), bytes_per_sec_(gbps * 1e9 / 8.0), rtt_(rtt) {}

  lv::Duration rtt() const { return rtt_; }

  // Time to push `bytes` onto the wire.
  lv::Duration SerializationDelay(lv::Bytes bytes) const {
    return lv::Duration::SecondsF(static_cast<double>(bytes.count()) / bytes_per_sec_);
  }

  // Fault injection: drops the fabric for `length`. New migrations fail fast
  // while the partition holds (checked at connection setup; an established
  // stream rides it out — TCP retransmits, the bandwidth model absorbs it).
  // Overlapping partitions extend each other.
  void Partition(lv::Duration length) {
    lv::TimePoint until = engine_->now() + length;
    if (until > partitioned_until_) {
      partitioned_until_ = until;
    }
    static metrics::Counter& partitions = metrics::GetCounter("net.link.partitions");
    partitions.Inc();
  }
  bool partitioned() const { return engine_->now() < partitioned_until_; }

  sim::Engine* engine() { return engine_; }

 private:
  sim::Engine* engine_;
  double bytes_per_sec_;
  lv::Duration rtt_;
  lv::TimePoint partitioned_until_;
};

// One TCP connection over a link: handshake costs one RTT, each send costs
// serialization + half an RTT of propagation (ack overlap ignored — the
// streams here are large enough that bandwidth dominates).
class TcpConnection {
 public:
  explicit TcpConnection(Link* link) : link_(link) {}

  sim::Co<void> Connect() {
    connected_ = true;
    co_await link_->engine()->Sleep(link_->rtt());  // SYN / SYN-ACK.
  }

  sim::Co<void> Send(lv::Bytes bytes) {
    LV_CHECK_MSG(connected_, "send on unconnected TCP connection");
    bytes_sent_ += bytes;
    static metrics::Counter& sends = metrics::GetCounter("net.link.sends");
    static metrics::Counter& sent = metrics::GetCounter("net.link.bytes_sent");
    sends.Inc();
    sent.Inc(static_cast<double>(bytes.count()));
    co_await link_->engine()->Sleep(link_->SerializationDelay(bytes) + link_->rtt() / 2.0);
  }

  lv::Bytes bytes_sent() const { return bytes_sent_; }
  bool connected() const { return connected_; }

 private:
  Link* link_;
  bool connected_ = false;
  lv::Bytes bytes_sent_;
};

}  // namespace xnet
