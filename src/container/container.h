// Container and process baselines (Docker 1.13 and plain fork/exec in the
// paper's figures 4, 10, 11, 14, 15).
//
// The Docker model reproduces the observed behaviours rather than wrapping a
// real daemon: ~150-200 ms cold starts dominated by layered-filesystem and
// namespace setup, per-container daemon bookkeeping that grows with the
// number of instances, and daemon memory that jumps in large allocation
// steps — "the spikes in that curve coincide with large jumps in memory
// consumption, and we stop at about 3,000 because after that the next large
// memory allocation consumes all available memory" (§6.1).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/hv/memory.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"

namespace container {

struct ContainerImage {
  std::string name;
  int layers = 4;           // filesystem layers to mount
  lv::Bytes memory = lv::Bytes::MiB(5);  // resident set of the container
  lv::Duration app_start_cpu = lv::Duration::Millis(5);
};

// Docker's Micropython image (the Figure 14 comparison point: ~5 GB for
// 1000 containers).
ContainerImage MicropythonContainer();
// A minimal busybox-style container.
ContainerImage MinimalContainer();

struct Costs {
  // Fixed path through dockerd + containerd + runc.
  lv::Duration daemon_base = lv::Duration::Millis(40);
  // Overlay mount per image layer.
  lv::Duration per_layer_setup = lv::Duration::Millis(14);
  // Namespaces, cgroups, veth pair, iptables.
  lv::Duration namespace_setup = lv::Duration::Millis(50);
  // Daemon bookkeeping that scales with the number of running containers.
  lv::Duration per_container_overhead = lv::Duration::Micros(100);
  // Daemon arena: grows in power-of-two steps of this unit; the doubling
  // allocations cause the latency spikes.
  lv::Bytes daemon_arena_unit = lv::Bytes::MiB(1);
  // Kernel-object overhead (dentries, overlay writable layers, page cache)
  // grows super-linearly with container count: the i-th container costs an
  // extra (i/knee)^2 MiB. This is the memory wall that stops Docker around
  // 3000 containers on a 128 GB machine (Figure 10).
  double kernel_overhead_knee = 400.0;
  // Containers covered by the daemon's initial arena (no growth stall until
  // the count exceeds this).
  int64_t initial_arena_containers = 64;
  // Stall while the daemon grows + rehashes its arena.
  lv::Duration arena_growth_stall = lv::Duration::Millis(700);

  // fork/exec baseline: "3.5ms on average (9ms at the 90% percentile)".
  lv::Duration fork_exec_median = lv::Duration::MillisF(2.9);
  double fork_exec_sigma = 0.85;
  lv::Bytes process_memory = lv::Bytes::MiB(1);
};

class DockerRuntime {
 public:
  struct Stats {
    int64_t started = 0;
    int64_t stopped = 0;
    int64_t oom_failures = 0;
    int64_t arena_growths = 0;
  };

  DockerRuntime(sim::Engine* engine, hv::MemoryPool* host_memory, Costs costs = Costs());

  // Creates and starts a container ("docker run"); returns its id.
  sim::Co<lv::Result<int64_t>> Run(sim::ExecCtx ctx, ContainerImage image);
  sim::Co<lv::Status> Stop(sim::ExecCtx ctx, int64_t id);

  int64_t count() const { return static_cast<int64_t>(containers_.size()); }
  // Containers' resident memory + the daemon arena.
  lv::Bytes MemoryUsed() const;
  const Stats& stats() const { return stats_; }

 private:
  // Pages the daemon arena needs for `count` containers.
  int64_t ArenaPages(int64_t count) const;

  sim::Engine* engine_;
  hv::MemoryPool* host_memory_;
  Costs costs_;
  struct Record {
    ContainerImage image;
    int64_t reserved_pages = 0;
  };
  std::unordered_map<int64_t, Record> containers_;
  int64_t next_id_ = 1;
  int64_t arena_pages_ = 0;
  Stats stats_;
};

// Plain-process baseline: fork/exec with the measured latency distribution;
// creation time independent of the number of existing processes.
class ProcessRuntime {
 public:
  ProcessRuntime(sim::Engine* engine, hv::MemoryPool* host_memory, Costs costs = Costs());

  sim::Co<lv::Result<int64_t>> ForkExec(sim::ExecCtx ctx);
  sim::Co<lv::Status> Kill(int64_t pid);

  int64_t count() const { return count_; }
  lv::Bytes MemoryUsed() const;

 private:
  sim::Engine* engine_;
  hv::MemoryPool* host_memory_;
  Costs costs_;
  lv::Rng rng_;
  int64_t next_pid_ = 1000;
  int64_t count_ = 0;
};

}  // namespace container
