#include "src/container/container.h"

#include "src/base/log.h"

namespace container {

ContainerImage MicropythonContainer() {
  ContainerImage image;
  image.name = "docker-micropython";
  image.layers = 5;
  image.memory = lv::Bytes::MiB(5);  // ~5 GB for 1000 containers (Fig. 14)
  image.app_start_cpu = lv::Duration::Millis(8);
  return image;
}

ContainerImage MinimalContainer() {
  ContainerImage image;
  image.name = "docker-minimal";
  image.layers = 2;
  image.memory = lv::Bytes::MiB(4);
  image.app_start_cpu = lv::Duration::Millis(2);
  return image;
}

DockerRuntime::DockerRuntime(sim::Engine* engine, hv::MemoryPool* host_memory, Costs costs)
    : engine_(engine), host_memory_(host_memory), costs_(costs) {
  // The daemon pre-allocates its initial arena at startup, before the first
  // `docker run`.
  arena_pages_ = ArenaPages(1);
  LV_CHECK_MSG(host_memory_->Reserve(arena_pages_).ok(),
               "host too small for the docker daemon arena");
}

int64_t DockerRuntime::ArenaPages(int64_t count) const {
  if (count <= 0) {
    return 0;
  }
  int64_t buckets = costs_.initial_arena_containers;
  while (buckets < count) {
    buckets *= 2;
  }
  return lv::PagesFor(costs_.daemon_arena_unit * buckets);
}

sim::Co<lv::Result<int64_t>> DockerRuntime::Run(sim::ExecCtx ctx, ContainerImage image) {
  // Daemon path + per-layer overlay mounts + namespace plumbing.
  co_await ctx.Work(costs_.daemon_base +
                    costs_.per_layer_setup * static_cast<double>(image.layers) +
                    costs_.namespace_setup);
  // Daemon bookkeeping grows with the number of running containers.
  co_await ctx.Work(costs_.per_container_overhead * static_cast<double>(count()));

  // Reserve the container's resident memory plus the super-linear
  // kernel-object overhead at this population size.
  double i = static_cast<double>(count() + 1) / costs_.kernel_overhead_knee;
  lv::Bytes overhead = lv::Bytes::MiBF(i * i);
  int64_t pages = lv::PagesFor(image.memory + overhead);
  lv::Status mem = host_memory_->Reserve(pages);
  if (!mem.ok()) {
    ++stats_.oom_failures;
    co_return mem.error();
  }
  // Daemon arena growth: power-of-two jumps cause stalls + memory spikes.
  int64_t needed_arena = ArenaPages(count() + 1);
  if (needed_arena > arena_pages_) {
    lv::Status arena = host_memory_->Reserve(needed_arena - arena_pages_);
    if (!arena.ok()) {
      host_memory_->Release(pages);
      ++stats_.oom_failures;
      co_return arena.error();
    }
    arena_pages_ = needed_arena;
    ++stats_.arena_growths;
    co_await ctx.Work(costs_.arena_growth_stall);
  }

  co_await ctx.Work(image.app_start_cpu);
  int64_t id = next_id_++;
  containers_.emplace(id, Record{std::move(image), pages});
  ++stats_.started;
  co_return id;
}

sim::Co<lv::Status> DockerRuntime::Stop(sim::ExecCtx ctx, int64_t id) {
  auto it = containers_.find(id);
  if (it == containers_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no such container");
  }
  co_await ctx.Work(costs_.daemon_base / 2.0);
  host_memory_->Release(it->second.reserved_pages);
  containers_.erase(it);
  ++stats_.stopped;
  co_return lv::Status::Ok();
}

lv::Bytes DockerRuntime::MemoryUsed() const {
  int64_t pages = arena_pages_;
  for (const auto& [id, record] : containers_) {
    pages += record.reserved_pages;
  }
  return lv::kPageSize * pages;
}

ProcessRuntime::ProcessRuntime(sim::Engine* engine, hv::MemoryPool* host_memory,
                               Costs costs)
    : engine_(engine), host_memory_(host_memory), costs_(costs), rng_(42) {}

sim::Co<lv::Result<int64_t>> ProcessRuntime::ForkExec(sim::ExecCtx ctx) {
  // fork/exec latency has a heavy tail but no dependence on process count.
  co_await ctx.Work(rng_.Skewed(costs_.fork_exec_median, costs_.fork_exec_sigma));
  lv::Status mem = host_memory_->Reserve(lv::PagesFor(costs_.process_memory));
  if (!mem.ok()) {
    co_return mem.error();
  }
  ++count_;
  co_return next_pid_++;
}

sim::Co<lv::Status> ProcessRuntime::Kill(int64_t pid) {
  (void)pid;
  if (count_ <= 0) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no processes");
  }
  host_memory_->Release(lv::PagesFor(costs_.process_memory));
  --count_;
  co_return lv::Status::Ok();
}

lv::Bytes ProcessRuntime::MemoryUsed() const {
  return costs_.process_memory * count_;
}

}  // namespace container
