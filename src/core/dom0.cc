#include "src/core/dom0.h"

namespace lightvm {

Dom0Services::Dom0Services(Deps deps, const Mechanisms& mechanisms) : deps_(deps) {
  switch_ = std::make_unique<xnet::Switch>(deps_.engine);
  control_pages_ = std::make_unique<xdev::ControlPages>();
  bash_hotplug_ = std::make_unique<xdev::BashHotplug>(deps_.engine, &dev_costs_);
  xendevd_ = std::make_unique<xdev::Xendevd>(&dev_costs_);
  bash_hotplug_->set_faults(deps_.faults);
  xendevd_->set_faults(deps_.faults);

  bool use_store = mechanisms.toolstack == ToolstackKind::kXl || !mechanisms.noxs;

  netback_ = std::make_unique<xdev::BackendDriver>(deps_.engine, deps_.hv,
                                                   hv::DeviceType::kNet,
                                                   control_pages_.get(), switch_.get(),
                                                   &dev_costs_);
  blkback_ = std::make_unique<xdev::BackendDriver>(deps_.engine, deps_.hv,
                                                   hv::DeviceType::kBlock,
                                                   control_pages_.get(), nullptr,
                                                   &dev_costs_);
  sysctl_ = std::make_unique<xdev::SysctlBackend>(deps_.engine, deps_.hv,
                                                  control_pages_.get(), &dev_costs_);

  // Dom0Ctx() round-robins the Dom0 cores: the store daemon, netback watcher
  // and blkback watcher land on consecutive cores in that order, exactly as
  // before the Host decomposition (core assignment is timing-relevant).
  if (use_store) {
    // The daemon's embedded Store picks the policy up from the thread-local
    // store context (policy.h) — no constructor plumbing through Daemon.
    xs::StorePolicyScope policy_scope(mechanisms.xs_policy);
    store_ = std::make_unique<xs::Daemon>(deps_.engine);
    store_->Start(Dom0Ctx());
    netback_->StartXsWatcher(store_.get(), Dom0Ctx());
    blkback_->StartXsWatcher(store_.get(), Dom0Ctx());
  }
  if (mechanisms.toolstack == ToolstackKind::kChaos) {
    // chaos replaces hotplug scripts with xendevd, triggered by udev events.
    netback_->set_udev_hotplug(xendevd_.get());
    blkback_->set_udev_hotplug(xendevd_.get());
  }
}

Dom0Services::~Dom0Services() {
  netback_->StopXsWatcher();
  blkback_->StopXsWatcher();
  if (store_) {
    store_->Stop();
  }
}

void Dom0Services::Populate(toolstack::HostEnv* env) const {
  env->engine = deps_.engine;
  env->cpu = deps_.cpu;
  env->placer = deps_.placer;
  env->hv = deps_.hv;
  env->store = store_.get();
  env->netback = netback_.get();
  env->blkback = blkback_.get();
  env->sysctl = sysctl_.get();
  env->control_pages = control_pages_.get();
  env->bash_hotplug = bash_hotplug_.get();
  env->xendevd = xendevd_.get();
  env->sw = switch_.get();
  env->faults = deps_.faults;
}

sim::ExecCtx Dom0Services::Dom0Ctx() {
  return sim::ExecCtx{deps_.cpu, deps_.placer->NextDom0Core(), sim::kHostOwner};
}

}  // namespace lightvm
