#include "src/core/node_api.h"

#include "src/base/log.h"
#include "src/metrics/metrics.h"
#include "src/sim/run.h"

namespace lightvm {

NodeApi::NodeApi(Dom0Services::Deps deps, Dom0Services* dom0, const Mechanisms& mechanisms)
    : deps_(deps), dom0_(dom0), mechanisms_(mechanisms) {
  toolstack::HostEnv env;
  dom0_->Populate(&env);
  env.page_sharing = mechanisms_.page_sharing;

  toolstack::Costs ts_costs;
  if (mechanisms_.toolstack == ToolstackKind::kXl) {
    toolstack_ = std::make_unique<toolstack::XlToolstack>(env, ts_costs);
  } else {
    if (mechanisms_.split) {
      chaos_daemon_ = std::make_unique<toolstack::ChaosDaemon>(env, ts_costs,
                                                               mechanisms_.noxs);
      chaos_daemon_->Start(Dom0Ctx());
    }
    toolstack_ = std::make_unique<toolstack::ChaosToolstack>(env, ts_costs,
                                                             mechanisms_.noxs,
                                                             chaos_daemon_.get());
  }
  migration_daemon_ =
      std::make_unique<toolstack::MigrationDaemon>(toolstack_.get(), Dom0Ctx());
}

NodeApi::~NodeApi() {
  if (chaos_daemon_) {
    chaos_daemon_->Stop();
  }
}

sim::ExecCtx NodeApi::Dom0Ctx() {
  sim::ExecCtx ctx{deps_.cpu, deps_.placer->NextDom0Core(), sim::kHostOwner};
  ctx.node = obs_node_;
  return ctx;
}

// --- Synchronous lifecycle ------------------------------------------------------

sim::Co<lv::Result<hv::DomainId>> NodeApi::CreateVm(toolstack::VmConfig config) {
  co_return co_await toolstack_->Create(Dom0Ctx(), std::move(config));
}

sim::Co<lv::Result<hv::DomainId>> NodeApi::CreateAndBoot(toolstack::VmConfig config) {
  auto domid = co_await toolstack_->Create(Dom0Ctx(), std::move(config));
  if (!domid.ok()) {
    co_return domid;
  }
  co_await WaitBooted(*domid);
  co_return domid;
}

sim::Co<void> NodeApi::WaitBooted(hv::DomainId domid) {
  guests::Guest* g = toolstack_->guest(domid);
  if (g != nullptr) {
    co_await g->WaitBooted();
  }
}

sim::Co<lv::Status> NodeApi::DestroyVm(hv::DomainId domid) {
  VmOpGuard guard(this, domid);
  if (!guard.held()) {
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "concurrent lifecycle operation on domain");
  }
  co_return co_await toolstack_->Destroy(Dom0Ctx(), domid);
}

sim::Co<lv::Result<toolstack::Snapshot>> NodeApi::SaveVm(hv::DomainId domid) {
  VmOpGuard guard(this, domid);
  if (!guard.held()) {
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "concurrent lifecycle operation on domain");
  }
  co_return co_await toolstack_->Save(Dom0Ctx(), domid);
}

sim::Co<lv::Result<hv::DomainId>> NodeApi::RestoreVm(toolstack::Snapshot snap) {
  co_return co_await toolstack_->Restore(Dom0Ctx(), std::move(snap));
}

sim::Co<lv::Result<hv::DomainId>> NodeApi::MigrateVm(hv::DomainId domid, NodeApi* target,
                                                     xnet::Link* link) {
  VmOpGuard guard(this, domid);
  if (!guard.held()) {
    co_return lv::Err(lv::ErrorCode::kUnavailable,
                      "concurrent lifecycle operation on domain");
  }
  co_return co_await toolstack::Migrate(toolstack_.get(), Dom0Ctx(), domid,
                                        &target->migration_daemon(), link);
}

// --- Concurrent jobs ------------------------------------------------------------

int64_t NodeApi::StartJob() {
  ++jobs_started_;
  static metrics::Counter& started = metrics::GetCounter("node.jobs.started");
  static metrics::Gauge& active = metrics::GetGauge("node.jobs.active");
  started.Inc();
  active.Add(1.0);
  return ++next_job_;
}

void NodeApi::FinishJob(bool ok) {
  ++jobs_completed_;
  static metrics::Counter& completed = metrics::GetCounter("node.jobs.completed");
  static metrics::Counter& failed = metrics::GetCounter("node.jobs.failed");
  static metrics::Gauge& active = metrics::GetGauge("node.jobs.active");
  completed.Inc();
  active.Add(-1.0);
  if (!ok) {
    ++jobs_failed_;
    failed.Inc();
  }
}

CreateJob NodeApi::SubmitCreate(toolstack::VmConfig config, bool wait_boot,
                                obs::OpRef parent) {
  CreateJob result(deps_.engine);
  if (!accepting_) {
    obs::FlightRecorder::Get().Record(obs_node_, obs::NewOpOnNode(obs_node_, parent), "node", "create",
                                      false);
    result.Set(lv::Err(lv::ErrorCode::kUnavailable, "node not accepting work"));
    return result;
  }
  int64_t job = StartJob();
  deps_.engine->Spawn(RunCreateJob(job, obs::NewOpOnNode(obs_node_, parent), std::move(config), wait_boot,
                                   result));
  return result;
}

StatusJob NodeApi::SubmitDestroy(hv::DomainId domid, obs::OpRef parent) {
  StatusJob result(deps_.engine);
  if (!accepting_) {
    obs::FlightRecorder::Get().Record(obs_node_, obs::NewOpOnNode(obs_node_, parent), "node", "destroy",
                                      false, domid);
    result.Set(lv::Err(lv::ErrorCode::kUnavailable, "node not accepting work"));
    return result;
  }
  int64_t job = StartJob();
  deps_.engine->Spawn(RunDestroyJob(job, obs::NewOpOnNode(obs_node_, parent), domid, result));
  return result;
}

StatusJob NodeApi::SubmitMigrate(hv::DomainId domid, NodeApi* target, xnet::Link* link,
                                 obs::OpRef parent) {
  StatusJob result(deps_.engine);
  if (!accepting_) {
    obs::FlightRecorder::Get().Record(obs_node_, obs::NewOpOnNode(obs_node_, parent), "node", "migrate",
                                      false, domid);
    result.Set(lv::Err(lv::ErrorCode::kUnavailable, "node not accepting work"));
    return result;
  }
  int64_t job = StartJob();
  deps_.engine->Spawn(RunMigrateJob(job, obs::NewOpOnNode(obs_node_, parent), domid, target, link, result));
  return result;
}

sim::Co<void> NodeApi::RunCreateJob(int64_t job, obs::OpRef op, toolstack::VmConfig config,
                                    bool wait_boot, CreateJob result) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
  recorder.Record(obs_node_, op, "node", "create", true, job);
  sim::ExecCtx ctx = Dom0Ctx().WithJob(job).WithOp(op.id, op.root);
  auto domid = co_await toolstack_->Create(ctx, std::move(config));
  if (domid.ok() && wait_boot) {
    co_await WaitBooted(*domid);
  }
  recorder.Record(obs_node_, op, "node", "create.done", domid.ok(),
                  domid.ok() ? static_cast<int64_t>(*domid) : 0);
  FinishJob(domid.ok());
  result.Set(std::move(domid));
}

sim::Co<void> NodeApi::RunDestroyJob(int64_t job, obs::OpRef op, hv::DomainId domid,
                                     StatusJob result) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
  recorder.Record(obs_node_, op, "node", "destroy", true, domid);
  lv::Status destroyed = lv::Status::Ok();
  {
    VmOpGuard guard(this, domid);
    if (!guard.held()) {
      destroyed = lv::Err(lv::ErrorCode::kUnavailable,
                          "concurrent lifecycle operation on domain");
    } else {
      destroyed =
          co_await toolstack_->Destroy(Dom0Ctx().WithJob(job).WithOp(op.id, op.root), domid);
    }
  }
  recorder.Record(obs_node_, op, "node", "destroy.done", destroyed.ok(), domid);
  FinishJob(destroyed.ok());
  result.Set(std::move(destroyed));
}

sim::Co<void> NodeApi::RunMigrateJob(int64_t job, obs::OpRef op, hv::DomainId domid,
                                     NodeApi* target, xnet::Link* link, StatusJob result) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
  recorder.Record(obs_node_, op, "node", "migrate", true, domid);
  lv::Status status = lv::Status::Ok();
  {
    VmOpGuard guard(this, domid);
    if (!guard.held()) {
      status = lv::Err(lv::ErrorCode::kUnavailable,
                       "concurrent lifecycle operation on domain");
    } else {
      auto moved = co_await toolstack::Migrate(toolstack_.get(),
                                               Dom0Ctx().WithJob(job).WithOp(op.id, op.root),
                                               domid, &target->migration_daemon(), link);
      if (!moved.ok()) {
        status = lv::Err(moved.error().code, moved.error().message);
      }
    }
  }
  recorder.Record(obs_node_, op, "node", "migrate.done", status.ok(), domid);
  FinishJob(status.ok());
  result.Set(std::move(status));
}

// --- Shell pool -----------------------------------------------------------------

void NodeApi::AddShellFlavor(lv::Bytes memory, bool wants_net, int target) {
  if (chaos_daemon_) {
    chaos_daemon_->AddFlavor(toolstack::ChaosDaemon::Flavor{memory, wants_net, target});
  }
}

void NodeApi::PrefillShellPool() {
  if (!chaos_daemon_) {
    return;
  }
  int64_t target = 0;
  for (const toolstack::ChaosDaemon::Flavor& f : chaos_daemon_->flavors()) {
    target += f.target;
  }
  bool stocked = sim::RunUntilCondition(
      *deps_.engine, [&] { return chaos_daemon_->pool_size() >= target; },
      lv::Duration::Seconds(60));
  if (!stocked) {
    LV_WARN("node", "shell pool not fully stocked (%lld/%lld)",
            (long long)chaos_daemon_->pool_size(), (long long)target);
  }
}

}  // namespace lightvm
