// NodeApi: the VM lifecycle surface of one node — the toolstack selected by
// the Mechanisms matrix, the chaos daemon (split toolstack), the migration
// daemon, and a concurrent-job layer on top.
//
// Lifecycle operations come in two shapes:
//
//  * Synchronous coroutines (CreateVm, DestroyVm, ...): the caller awaits
//    the operation on a Dom0 execution context. These are what Host exposes
//    and what the serial benchmarks drive.
//  * Submitted jobs (SubmitCreate, SubmitDestroy, SubmitMigrate): each spawns
//    a detached coroutine and returns a SharedFuture for its result, so any
//    number of lifecycle operations can be in flight on Dom0's vCPUs at
//    once. Every job gets a node-local id that is threaded into trace track
//    names ("vm:web0#j7") and job metrics.
//
// Destructive operations (destroy / save / migrate) on one domain are
// mutually exclusive: a second such operation while one is in flight fails
// with kUnavailable instead of racing the teardown.
#pragma once

#include <memory>
#include <unordered_set>

#include "src/core/dom0.h"
#include "src/core/mechanisms.h"
#include "src/obs/obs.h"
#include "src/sim/sync.h"
#include "src/toolstack/chaos.h"
#include "src/toolstack/chaos_daemon.h"
#include "src/toolstack/migration.h"
#include "src/toolstack/xl.h"

namespace lightvm {

// Futures returned by the job layer. Copyable; await with .Get().
using CreateJob = sim::SharedFuture<lv::Result<hv::DomainId>>;
using StatusJob = sim::SharedFuture<lv::Status>;

class NodeApi {
 public:
  NodeApi(Dom0Services::Deps deps, Dom0Services* dom0, const Mechanisms& mechanisms);
  ~NodeApi();
  NodeApi(const NodeApi&) = delete;
  NodeApi& operator=(const NodeApi&) = delete;

  // --- Synchronous lifecycle -------------------------------------------------

  sim::Co<lv::Result<hv::DomainId>> CreateVm(toolstack::VmConfig config);
  // Creates and waits until the guest signals boot completion.
  sim::Co<lv::Result<hv::DomainId>> CreateAndBoot(toolstack::VmConfig config);
  sim::Co<lv::Status> DestroyVm(hv::DomainId domid);
  sim::Co<lv::Result<toolstack::Snapshot>> SaveVm(hv::DomainId domid);
  sim::Co<lv::Result<hv::DomainId>> RestoreVm(toolstack::Snapshot snap);
  // Migrates to `target` over `link`; returns the domain id on the target.
  sim::Co<lv::Result<hv::DomainId>> MigrateVm(hv::DomainId domid, NodeApi* target,
                                              xnet::Link* link);
  sim::Co<void> WaitBooted(hv::DomainId domid);

  // --- Concurrent jobs -------------------------------------------------------

  // `parent` links the job into a causal operation chain (src/obs): the
  // cluster passes its Deploy/Retire/Migrate op so the job — and everything
  // the toolstack does under it — shares the caller's flow id. Callers with
  // no chain pass nothing and the job becomes a root op.
  CreateJob SubmitCreate(toolstack::VmConfig config, bool wait_boot,
                         obs::OpRef parent = {});
  StatusJob SubmitDestroy(hv::DomainId domid, obs::OpRef parent = {});
  StatusJob SubmitMigrate(hv::DomainId domid, NodeApi* target, xnet::Link* link,
                          obs::OpRef parent = {});

  int64_t jobs_started() const { return jobs_started_; }
  int64_t jobs_completed() const { return jobs_completed_; }
  int64_t jobs_failed() const { return jobs_failed_; }
  int64_t jobs_active() const { return jobs_started_ - jobs_completed_; }

  // Fail-fast gate (Host::Crash): while false, submitted jobs complete
  // immediately with kUnavailable instead of touching the dead node.
  void set_accepting(bool accepting) { accepting_ = accepting; }
  bool accepting() const { return accepting_; }

  // Flight-recorder ring this node's events land in (the cluster assigns
  // its node index; standalone hosts stay on ring 0).
  void set_obs_node(int node) { obs_node_ = node; }
  int obs_node() const { return obs_node_; }

  // --- Shell pool (split toolstack) -----------------------------------------

  void AddShellFlavor(lv::Bytes memory, bool wants_net, int target);
  // Runs the engine until the shell pool is fully stocked.
  void PrefillShellPool();

  // --- Accessors -------------------------------------------------------------

  toolstack::Toolstack& toolstack() { return *toolstack_; }
  toolstack::ChaosDaemon* chaos_daemon() { return chaos_daemon_.get(); }
  toolstack::MigrationDaemon& migration_daemon() { return *migration_daemon_; }
  guests::Guest* guest(hv::DomainId domid) { return toolstack_->guest(domid); }
  int64_t num_vms() const { return toolstack_->num_vms(); }

  // Execution context for Dom0 work (round-robins the Dom0 cores).
  sim::ExecCtx Dom0Ctx();

 private:
  // Exclusive in-flight guard for destructive per-domain operations. Holds
  // nothing when acquisition failed.
  class VmOpGuard {
   public:
    VmOpGuard(NodeApi* api, hv::DomainId domid)
        : api_(api), domid_(domid), held_(api->inflight_.insert(domid).second) {}
    ~VmOpGuard() {
      if (held_) {
        api_->inflight_.erase(domid_);
      }
    }
    VmOpGuard(const VmOpGuard&) = delete;
    VmOpGuard& operator=(const VmOpGuard&) = delete;
    bool held() const { return held_; }

   private:
    NodeApi* api_;
    hv::DomainId domid_;
    bool held_;
  };

  sim::Co<void> RunCreateJob(int64_t job, obs::OpRef op, toolstack::VmConfig config,
                             bool wait_boot, CreateJob result);
  sim::Co<void> RunDestroyJob(int64_t job, obs::OpRef op, hv::DomainId domid,
                              StatusJob result);
  sim::Co<void> RunMigrateJob(int64_t job, obs::OpRef op, hv::DomainId domid,
                              NodeApi* target, xnet::Link* link, StatusJob result);
  int64_t StartJob();
  void FinishJob(bool ok);

  Dom0Services::Deps deps_;
  Dom0Services* dom0_;
  Mechanisms mechanisms_;
  std::unique_ptr<toolstack::ChaosDaemon> chaos_daemon_;
  std::unique_ptr<toolstack::Toolstack> toolstack_;
  std::unique_ptr<toolstack::MigrationDaemon> migration_daemon_;
  std::unordered_set<hv::DomainId> inflight_;
  bool accepting_ = true;
  int obs_node_ = 0;
  int64_t next_job_ = 0;
  int64_t jobs_started_ = 0;
  int64_t jobs_completed_ = 0;
  int64_t jobs_failed_ = 0;
};

}  // namespace lightvm
