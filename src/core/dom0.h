// Dom0Services: the bundle of Dom0-resident machinery one node runs — the
// XenStore daemon (absent under noxs), the split-driver back-ends and their
// watchers, the hotplug runners (bash scripts / xendevd), the sysctl power
// back-end and the software switch.
//
// Host used to own all of this directly; extracting it gives the toolstack
// layer (NodeApi) a single dependency to point at, and keeps construction /
// teardown ordering — store before watchers, watchers stopped before the
// store — in one place.
#pragma once

#include <memory>

#include "src/core/mechanisms.h"
#include "src/devices/backend.h"
#include "src/devices/hotplug.h"
#include "src/devices/sysctl.h"
#include "src/faults/hooks.h"
#include "src/hv/hypervisor.h"
#include "src/net/switch.h"
#include "src/sim/cpu.h"
#include "src/toolstack/env.h"
#include "src/xenstore/daemon.h"

namespace lightvm {

class Dom0Services {
 public:
  // The node-level substrate Dom0 runs on (owned by Host).
  struct Deps {
    sim::Engine* engine = nullptr;
    sim::CpuScheduler* cpu = nullptr;
    sim::CorePlacer* placer = nullptr;
    hv::Hypervisor* hv = nullptr;
    // Fault-injection hook state (owned by Host; may be null in fixtures).
    faults::FaultHooks* faults = nullptr;
  };

  // Brings the services up: back-ends constructed, store daemon started (if
  // the mechanisms need one) and its watchers attached, udev hotplug wired
  // for the chaos paths.
  Dom0Services(Deps deps, const Mechanisms& mechanisms);
  // Stops watchers, then the store daemon.
  ~Dom0Services();
  Dom0Services(const Dom0Services&) = delete;
  Dom0Services& operator=(const Dom0Services&) = delete;

  // Fills the toolstack-facing view of this Dom0 (engine/cpu/placer/hv from
  // deps, every device/store pointer from here).
  void Populate(toolstack::HostEnv* env) const;

  // Execution context for Dom0 control-plane work; round-robins the
  // dedicated Dom0 cores.
  sim::ExecCtx Dom0Ctx();

  xnet::Switch& network_switch() { return *switch_; }
  xs::Daemon* store() { return store_.get(); }
  xs::Costs* store_costs() { return store_ ? store_->mutable_costs() : nullptr; }
  xdev::BackendDriver& netback() { return *netback_; }
  xdev::BackendDriver& blkback() { return *blkback_; }
  xdev::SysctlBackend& sysctl() { return *sysctl_; }
  xdev::HotplugRunner* bash_hotplug() { return bash_hotplug_.get(); }
  xdev::HotplugRunner* xendevd() { return xendevd_.get(); }
  xdev::ControlPages* control_pages() { return control_pages_.get(); }
  xdev::Costs* device_costs() { return &dev_costs_; }

 private:
  Deps deps_;
  std::unique_ptr<xnet::Switch> switch_;
  std::unique_ptr<xdev::ControlPages> control_pages_;
  xdev::Costs dev_costs_;
  std::unique_ptr<xdev::BashHotplug> bash_hotplug_;
  std::unique_ptr<xdev::Xendevd> xendevd_;
  std::unique_ptr<xs::Daemon> store_;
  std::unique_ptr<xdev::BackendDriver> netback_;
  std::unique_ptr<xdev::BackendDriver> blkback_;
  std::unique_ptr<xdev::SysctlBackend> sysctl_;
};

}  // namespace lightvm
