#include "src/core/host.h"

#include "src/base/log.h"
#include "src/sim/run.h"

namespace lightvm {

std::string Mechanisms::label() const {
  if (toolstack == ToolstackKind::kXl) {
    return "xl";
  }
  std::string label = "chaos [";
  label += noxs ? "NoXS" : "XS";
  if (split) {
    label += "+split";
  }
  label += "]";
  if (noxs && split) {
    label += " (LightVM)";
  }
  if (page_sharing) {
    label += " +page-sharing";
  }
  return label;
}

HostSpec HostSpec::Xeon4Core() {
  HostSpec spec;
  spec.name = "xeon-e5-1630v3";
  spec.cores = 4;
  spec.dom0_cores = 1;
  spec.memory = lv::Bytes::GiB(128);
  return spec;
}

HostSpec HostSpec::Amd64Core() {
  HostSpec spec;
  spec.name = "amd-opteron-6376";
  spec.cores = 64;
  spec.dom0_cores = 4;
  spec.memory = lv::Bytes::GiB(128);
  return spec;
}

HostSpec HostSpec::Xeon14Core() {
  HostSpec spec;
  spec.name = "xeon-e5-2690v4";
  spec.cores = 14;
  spec.dom0_cores = 1;
  spec.memory = lv::Bytes::GiB(64);
  return spec;
}

Host::Host(sim::Engine* engine, HostSpec spec, Mechanisms mechanisms)
    : engine_(engine), spec_(spec), mechanisms_(mechanisms) {
  cpu_ = std::make_unique<sim::CpuScheduler>(engine_, spec_.cores);
  placer_ = std::make_unique<sim::CorePlacer>(spec_.cores, spec_.dom0_cores);
  hv_ = std::make_unique<hv::Hypervisor>(engine_, spec_.memory);
  switch_ = std::make_unique<xnet::Switch>(engine_);
  control_pages_ = std::make_unique<xdev::ControlPages>();
  bash_hotplug_ = std::make_unique<xdev::BashHotplug>(&dev_costs_);
  xendevd_ = std::make_unique<xdev::Xendevd>(&dev_costs_);

  bool use_store = mechanisms_.toolstack == ToolstackKind::kXl || !mechanisms_.noxs;

  netback_ = std::make_unique<xdev::BackendDriver>(engine_, hv_.get(), hv::DeviceType::kNet,
                                                   control_pages_.get(), switch_.get(),
                                                   &dev_costs_);
  blkback_ = std::make_unique<xdev::BackendDriver>(engine_, hv_.get(),
                                                   hv::DeviceType::kBlock,
                                                   control_pages_.get(), nullptr,
                                                   &dev_costs_);
  sysctl_ = std::make_unique<xdev::SysctlBackend>(engine_, hv_.get(), control_pages_.get(),
                                                  &dev_costs_);

  if (use_store) {
    store_ = std::make_unique<xs::Daemon>(engine_);
    store_->Start(Dom0Ctx());
    netback_->StartXsWatcher(store_.get(), Dom0Ctx());
    blkback_->StartXsWatcher(store_.get(), Dom0Ctx());
  }
  if (mechanisms_.toolstack == ToolstackKind::kChaos) {
    // chaos replaces hotplug scripts with xendevd, triggered by udev events.
    netback_->set_udev_hotplug(xendevd_.get());
    blkback_->set_udev_hotplug(xendevd_.get());
  }

  toolstack::HostEnv env;
  env.engine = engine_;
  env.cpu = cpu_.get();
  env.placer = placer_.get();
  env.hv = hv_.get();
  env.store = store_.get();
  env.netback = netback_.get();
  env.blkback = blkback_.get();
  env.sysctl = sysctl_.get();
  env.control_pages = control_pages_.get();
  env.bash_hotplug = bash_hotplug_.get();
  env.xendevd = xendevd_.get();
  env.sw = switch_.get();
  env.page_sharing = mechanisms_.page_sharing;

  toolstack::Costs ts_costs;
  if (mechanisms_.toolstack == ToolstackKind::kXl) {
    toolstack_ = std::make_unique<toolstack::XlToolstack>(env, ts_costs);
  } else {
    if (mechanisms_.split) {
      chaos_daemon_ = std::make_unique<toolstack::ChaosDaemon>(env, ts_costs,
                                                               mechanisms_.noxs);
      chaos_daemon_->Start(Dom0Ctx());
    }
    toolstack_ = std::make_unique<toolstack::ChaosToolstack>(env, ts_costs,
                                                             mechanisms_.noxs,
                                                             chaos_daemon_.get());
  }
  migration_daemon_ =
      std::make_unique<toolstack::MigrationDaemon>(toolstack_.get(), Dom0Ctx());
}

Host::~Host() {
  if (chaos_daemon_) {
    chaos_daemon_->Stop();
  }
  netback_->StopXsWatcher();
  blkback_->StopXsWatcher();
  if (store_) {
    store_->Stop();
  }
}

sim::ExecCtx Host::Dom0Ctx() {
  return sim::ExecCtx{cpu_.get(), placer_->NextDom0Core(), sim::kHostOwner};
}

sim::Co<lv::Result<hv::DomainId>> Host::CreateVm(toolstack::VmConfig config) {
  co_return co_await toolstack_->Create(Dom0Ctx(), std::move(config));
}

sim::Co<lv::Result<hv::DomainId>> Host::CreateAndBoot(toolstack::VmConfig config) {
  auto domid = co_await toolstack_->Create(Dom0Ctx(), std::move(config));
  if (!domid.ok()) {
    co_return domid;
  }
  co_await WaitBooted(*domid);
  co_return domid;
}

sim::Co<void> Host::WaitBooted(hv::DomainId domid) {
  guests::Guest* g = toolstack_->guest(domid);
  if (g != nullptr) {
    co_await g->WaitBooted();
  }
}

sim::Co<lv::Status> Host::DestroyVm(hv::DomainId domid) {
  co_return co_await toolstack_->Destroy(Dom0Ctx(), domid);
}

sim::Co<lv::Result<toolstack::Snapshot>> Host::SaveVm(hv::DomainId domid) {
  co_return co_await toolstack_->Save(Dom0Ctx(), domid);
}

sim::Co<lv::Result<hv::DomainId>> Host::RestoreVm(toolstack::Snapshot snap) {
  co_return co_await toolstack_->Restore(Dom0Ctx(), std::move(snap));
}

sim::Co<lv::Status> Host::MigrateVm(hv::DomainId domid, Host* target, xnet::Link* link) {
  co_return co_await toolstack::Migrate(toolstack_.get(), Dom0Ctx(), domid,
                                        &target->migration_daemon(), link);
}

void Host::AddShellFlavor(lv::Bytes memory, bool wants_net, int target) {
  if (chaos_daemon_) {
    chaos_daemon_->AddFlavor(toolstack::ChaosDaemon::Flavor{memory, wants_net, target});
  }
}

void Host::PrefillShellPool() {
  if (!chaos_daemon_) {
    return;
  }
  int64_t target = 0;
  for (const toolstack::ChaosDaemon::Flavor& f : chaos_daemon_->flavors()) {
    target += f.target;
  }
  bool stocked = sim::RunUntilCondition(
      *engine_, [&] { return chaos_daemon_->pool_size() >= target; },
      lv::Duration::Seconds(60));
  if (!stocked) {
    LV_WARN("host", "shell pool not fully stocked (%lld/%lld)",
            (long long)chaos_daemon_->pool_size(), (long long)target);
  }
}

lv::Bytes Host::MemoryUsed() const {
  return spec_.dom0_memory + hv_->memory().used();
}

}  // namespace lightvm
