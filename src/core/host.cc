#include "src/core/host.h"

#include "src/base/assert.h"
#include "src/obs/obs.h"

namespace lightvm {

std::string Mechanisms::label() const {
  if (toolstack == ToolstackKind::kXl) {
    return "xl";
  }
  std::string label = "chaos [";
  label += noxs ? "NoXS" : "XS";
  if (split) {
    label += "+split";
  }
  label += "]";
  if (noxs && split) {
    label += " (LightVM)";
  }
  if (page_sharing) {
    label += " +page-sharing";
  }
  return label;
}

HostSpec HostSpec::Xeon4Core() {
  HostSpec spec;
  spec.name = "xeon-e5-1630v3";
  spec.cores = 4;
  spec.dom0_cores = 1;
  spec.memory = lv::Bytes::GiB(128);
  return spec;
}

HostSpec HostSpec::Amd64Core() {
  HostSpec spec;
  spec.name = "amd-opteron-6376";
  spec.cores = 64;
  spec.dom0_cores = 4;
  spec.memory = lv::Bytes::GiB(128);
  return spec;
}

HostSpec HostSpec::Xeon14Core() {
  HostSpec spec;
  spec.name = "xeon-e5-2690v4";
  spec.cores = 14;
  spec.dom0_cores = 1;
  spec.memory = lv::Bytes::GiB(64);
  return spec;
}

Host::Host(sim::Engine* engine, HostSpec spec, Mechanisms mechanisms)
    : engine_(engine), spec_(spec), mechanisms_(mechanisms) {
  cpu_ = std::make_unique<sim::CpuScheduler>(engine_, spec_.cores);
  placer_ = std::make_unique<sim::CorePlacer>(spec_.cores, spec_.dom0_cores);
  hv_ = std::make_unique<hv::Hypervisor>(engine_, spec_.memory);
  Dom0Services::Deps deps{engine_, cpu_.get(), placer_.get(), hv_.get(), &fault_hooks_};
  dom0_ = std::make_unique<Dom0Services>(deps, mechanisms_);
  node_ = std::make_unique<NodeApi>(deps, dom0_.get(), mechanisms_);
  baseline_.channels = hv_->event_channels().open_channels();
  baseline_.grants = hv_->grant_table().active_grants();
  baseline_.device_pages = dom0_->control_pages()->num_pages();
  baseline_.memory = MemoryUsed();
}

// NodeApi (chaos daemon) stops before Dom0Services (watchers, store).
Host::~Host() {
  // Background loops mid-CPU-slice cannot be destroyed (the scheduler holds
  // their raw handles); step the engine until every surviving guest's loop
  // is parked in a cancellable sleep, so teardown frees every frame.
  while (true) {
    bool all_quiescent = true;
    for (hv::DomainId domid : node_->toolstack().TrackedDomains()) {
      guests::Guest* g = node_->guest(domid);
      if (g != nullptr && !g->bg_quiescent()) {
        all_quiescent = false;
        break;
      }
    }
    if (all_quiescent || !engine_->Step()) {
      break;
    }
  }
  node_.reset();
  dom0_.reset();
}

sim::Co<lv::Result<hv::DomainId>> Host::CreateVm(toolstack::VmConfig config) {
  co_return co_await node_->CreateVm(std::move(config));
}

sim::Co<lv::Result<hv::DomainId>> Host::CreateAndBoot(toolstack::VmConfig config) {
  co_return co_await node_->CreateAndBoot(std::move(config));
}

sim::Co<void> Host::WaitBooted(hv::DomainId domid) {
  co_await node_->WaitBooted(domid);
}

sim::Co<lv::Status> Host::DestroyVm(hv::DomainId domid) {
  co_return co_await node_->DestroyVm(domid);
}

sim::Co<lv::Result<toolstack::Snapshot>> Host::SaveVm(hv::DomainId domid) {
  co_return co_await node_->SaveVm(domid);
}

sim::Co<lv::Result<hv::DomainId>> Host::RestoreVm(toolstack::Snapshot snap) {
  co_return co_await node_->RestoreVm(std::move(snap));
}

sim::Co<lv::Status> Host::MigrateVm(hv::DomainId domid, Host* target, xnet::Link* link) {
  auto moved = co_await node_->MigrateVm(domid, target->node_.get(), link);
  if (!moved.ok()) {
    co_return lv::Err(moved.error().code, moved.error().message);
  }
  co_return lv::Status::Ok();
}

void Host::AddShellFlavor(lv::Bytes memory, bool wants_net, int target) {
  node_->AddShellFlavor(memory, wants_net, target);
}

void Host::PrefillShellPool() {
  node_->PrefillShellPool();
}

lv::Bytes Host::MemoryUsed() const {
  return spec_.dom0_memory + hv_->memory().used();
}

// --- Fault injection ------------------------------------------------------------

void Host::Crash() {
  if (crashed_) {
    return;
  }
  crashed_ = true;
  crash_settled_ = false;
  fault_hooks_.node_crashed = true;
  node_->set_accepting(false);
  obs::FlightRecorder::Get().Record(node_->obs_node(), {}, "host", "crash", false);
  engine_->Spawn(SettleCrash());
}

sim::Co<void> Host::SettleCrash() {
  // Phase 1: let the in-flight job layer drain. Every job either completes
  // its current phase or aborts at its next toolstack fault checkpoint; no
  // frame is ever destroyed mid-flight.
  while (node_->jobs_active() > 0) {
    co_await engine_->Sleep(lv::Duration::Millis(1));
  }
  // Phase 2: tear every surviving VM down through the normal destroy path
  // (the Dom0 daemons keep running in the simulation; a dead node keeps no
  // guest state). Errors are ignored — the state is lost either way.
  for (hv::DomainId domid : node_->toolstack().TrackedDomains()) {
    (void)co_await node_->DestroyVm(domid);
  }
  crash_settled_ = true;
}

void Host::Reboot() {
  if (!crashed_) {
    return;
  }
  LV_CHECK_MSG(crash_settled_, "Reboot() before the crash settle pass finished");
  crashed_ = false;
  crash_settled_ = false;
  fault_hooks_.node_crashed = false;
  node_->set_accepting(true);
  obs::FlightRecorder::Get().Record(node_->obs_node(), {}, "host", "reboot", true);
}

}  // namespace lightvm
