// The mechanism matrix of Figure 9: which toolstack, which store, split or
// not. chaos + noxs + split toolstack = LightVM.
#pragma once

#include <string>

#include "src/xenstore/policy.h"

namespace lightvm {

enum class ToolstackKind { kXl, kChaos };

struct Mechanisms {
  ToolstackKind toolstack = ToolstackKind::kChaos;
  bool noxs = true;   // replace the XenStore with noxs device pages
  bool split = true;  // pre-created shells from the chaos daemon
  // §9 extension (not in the paper's evaluation): SnowFlock-style page
  // sharing between VMs created from the same image flavor.
  bool page_sharing = false;
  // Which store implementation the host's xenstored runs (policy.h). The
  // paper presets stay on kLegacy — figures 4/9 depend on the faithful O(n)
  // behaviour; fleet-scale runs opt into kIndexed via the scenario spec's
  // `xenstore_policy` field. Ignored when the preset has no store.
  xs::StorePolicy xs_policy = xs::StorePolicy::kLegacy;

  // The five configurations the paper evaluates.
  static Mechanisms Xl() { return {ToolstackKind::kXl, false, false, false}; }
  static Mechanisms ChaosXs() { return {ToolstackKind::kChaos, false, false, false}; }
  static Mechanisms ChaosXsSplit() { return {ToolstackKind::kChaos, false, true, false}; }
  static Mechanisms ChaosNoxs() { return {ToolstackKind::kChaos, true, false, false}; }
  static Mechanisms LightVm() { return {ToolstackKind::kChaos, true, true, false}; }
  // LightVM + the memory-deduplication extension.
  static Mechanisms LightVmShared() { return {ToolstackKind::kChaos, true, true, true}; }

  std::string label() const;
};

}  // namespace lightvm
