// Reusable resource-leak invariants, extracted from the failure tests so
// the cluster health checker, the chaos bench and the fault-plan sweeps can
// all assert the same contract after every injected fault:
//
//  * no zombie domains (kDead entries lingering in the hypervisor),
//  * every toolstack-tracked VM maps to a live domain,
//  * admission never oversubscribes host memory,
//  * and once the host is quiescent (no VMs, no pooled shells, no in-flight
//    jobs) every counter — event channels, grants, device pages, memory —
//    is back at the post-construction baseline.
#pragma once

#include "src/base/result.h"

namespace lightvm {

class Host;

// Ok when all invariants hold; otherwise kInternal with a message naming the
// first violated invariant.
lv::Status VerifyNoLeakedResources(Host& host);

}  // namespace lightvm
