#include "src/core/verify.h"

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/obs/obs.h"

namespace lightvm {

namespace {

lv::Status RunChecks(Host& host) {
  hv::Hypervisor& hv = host.hv();

  // No zombie domains: every destroy must fully reap its target.
  int64_t dead = hv.NumDomainsInState(hv::DomainState::kDead);
  if (dead > 0) {
    return lv::Err(lv::ErrorCode::kInternal,
                   lv::StrFormat("%lld dead domain(s) linger in the hypervisor",
                                 (long long)dead));
  }

  // Every toolstack-tracked VM maps to a domain the hypervisor still knows.
  for (hv::DomainId domid : host.toolstack().TrackedDomains()) {
    if (hv.FindDomain(domid) == nullptr) {
      return lv::Err(lv::ErrorCode::kInternal,
                     lv::StrFormat("tracked dom%lld has no hypervisor domain",
                                   (long long)domid));
    }
  }

  // Admission never oversubscribes the machine.
  if (hv.memory().used() > hv.memory().total()) {
    return lv::Err(lv::ErrorCode::kInternal,
                   lv::StrFormat("memory oversubscribed: %lld of %lld pages",
                                 (long long)hv.memory().used_pages(),
                                 (long long)hv.memory().total_pages()));
  }

  // The strict baseline comparison only holds once the host is quiescent:
  // no VMs, no pooled shells (they intentionally hold channels and memory)
  // and no lifecycle jobs in flight.
  toolstack::ChaosDaemon* daemon = host.chaos_daemon();
  bool quiescent = host.num_vms() == 0 && host.node().jobs_active() == 0 &&
                   (daemon == nullptr || daemon->pool_size() == 0);
  if (!quiescent) {
    return lv::Status::Ok();
  }
  const ResourceBaseline& base = host.resource_baseline();
  int64_t channels = hv.event_channels().open_channels();
  if (channels != base.channels) {
    return lv::Err(lv::ErrorCode::kInternal,
                   lv::StrFormat("event channels leaked: %lld open, baseline %lld",
                                 (long long)channels, (long long)base.channels));
  }
  int64_t grants = hv.grant_table().active_grants();
  if (grants != base.grants) {
    return lv::Err(lv::ErrorCode::kInternal,
                   lv::StrFormat("grants leaked: %lld active, baseline %lld",
                                 (long long)grants, (long long)base.grants));
  }
  int64_t device_pages = host.dom0().control_pages()->num_pages();
  if (device_pages != base.device_pages) {
    return lv::Err(lv::ErrorCode::kInternal,
                   lv::StrFormat("device pages leaked: %lld mapped, baseline %lld",
                                 (long long)device_pages,
                                 (long long)base.device_pages));
  }
  lv::Bytes memory = host.MemoryUsed();
  if (memory != base.memory) {
    return lv::Err(lv::ErrorCode::kInternal,
                   lv::StrFormat("memory leaked: %lld bytes used, baseline %lld",
                                 (long long)memory.count(),
                                 (long long)base.memory.count()));
  }
  return lv::Status::Ok();
}

}  // namespace

lv::Status VerifyNoLeakedResources(Host& host) {
  lv::Status status = RunChecks(host);
  if (!status.ok()) {
    // A violation is exactly the moment the flight recorder exists for:
    // stamp it into the node's ring and drop a post-mortem dump if a path
    // is configured (bench --flight-out, gate jobs).
    obs::FlightRecorder& recorder = obs::FlightRecorder::Get();
    recorder.Record(host.obs_node(), {}, "verify", "violation", false);
    recorder.MaybeDump();
  }
  return status;
}

}  // namespace lightvm
