// lightvm::Host — the top-level public API of this library.
//
// A Host bundles one physical machine as thin composition: the simulation
// substrate (CPU scheduler, core placer, hypervisor), the Dom0 service
// bundle (Dom0Services: store daemon, back-ends, hotplug, switch) and the
// lifecycle surface (NodeApi: toolstack, chaos daemon, migration daemon,
// concurrent jobs). Benchmarks and examples create Hosts and drive VMs
// through them; the cluster layer composes many NodeApis.
//
//   sim::Engine engine;
//   lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
//                      lightvm::Mechanisms::LightVm());
//   auto domid = host.CreateVm({.name = "web0", .image = guests::DaytimeUnikernel()});
#pragma once

#include <memory>
#include <string>

#include "src/core/dom0.h"
#include "src/core/mechanisms.h"
#include "src/core/node_api.h"
#include "src/faults/hooks.h"
#include "src/guests/guest.h"

namespace lightvm {

// Resource counters captured when a fresh Host finishes construction; the
// leak invariants (VerifyNoLeakedResources) compare a quiescent host against
// this.
struct ResourceBaseline {
  int64_t channels = 0;
  int64_t grants = 0;
  int64_t device_pages = 0;
  lv::Bytes memory;
};

struct HostSpec {
  std::string name = "host";
  int cores = 4;
  int dom0_cores = 1;
  lv::Bytes memory = lv::Bytes::GiB(128);
  // Dom0's own memory footprint (kernel + daemons + switch).
  lv::Bytes dom0_memory = lv::Bytes::GiB(1);

  // The paper's testbeds.
  // Intel Xeon E5-1630 v3, 4 cores, 128 GB DDR4 (§6: most experiments).
  static HostSpec Xeon4Core();
  // 4x AMD Opteron 6376, 64 cores, 128 GB DDR3 (§6.1: density test).
  static HostSpec Amd64Core();
  // Intel Xeon E5-2690 v4, 14 cores, 64 GB (§7: use cases).
  static HostSpec Xeon14Core();
};

class Host {
 public:
  Host(sim::Engine* engine, HostSpec spec, Mechanisms mechanisms);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const HostSpec& spec() const { return spec_; }
  const Mechanisms& mechanisms() const { return mechanisms_; }

  // --- VM lifecycle (delegated to the NodeApi) -----------------------------

  sim::Co<lv::Result<hv::DomainId>> CreateVm(toolstack::VmConfig config);
  // Creates and waits until the guest signals boot completion.
  sim::Co<lv::Result<hv::DomainId>> CreateAndBoot(toolstack::VmConfig config);
  sim::Co<lv::Status> DestroyVm(hv::DomainId domid);
  sim::Co<lv::Result<toolstack::Snapshot>> SaveVm(hv::DomainId domid);
  sim::Co<lv::Result<hv::DomainId>> RestoreVm(toolstack::Snapshot snap);
  sim::Co<lv::Status> MigrateVm(hv::DomainId domid, Host* target, xnet::Link* link);

  sim::Co<void> WaitBooted(hv::DomainId domid);

  // --- Fault injection ------------------------------------------------------

  // Crashes the node: new lifecycle submissions fail fast with kUnavailable,
  // in-flight jobs abort at their next toolstack fault checkpoint, and once
  // the job layer drains, a detached settle pass tears every surviving VM
  // down (their state is lost — a dead node keeps nothing). Idempotent.
  void Crash();
  // Brings a crashed node back, empty. Requires the settle pass to have
  // finished (drive the engine until crash_settled()).
  void Reboot();
  bool crashed() const { return crashed_; }
  // True once the post-crash settle pass has torn all VM state down; the
  // leak invariants hold from this point until Reboot().
  bool crash_settled() const { return crash_settled_; }
  faults::FaultHooks& fault_hooks() { return fault_hooks_; }
  const ResourceBaseline& resource_baseline() const { return baseline_; }

  // Flight-recorder ring for this host's events (the cluster assigns its
  // node index at construction). The store daemon records its own events
  // (quota rejections) and needs the same node index.
  void set_obs_node(int node) {
    node_->set_obs_node(node);
    if (dom0_->store() != nullptr) {
      dom0_->store()->set_obs_node(node);
    }
  }
  int obs_node() const { return node_->obs_node(); }

  // Shell-pool configuration (split toolstack). Call before creating VMs.
  void AddShellFlavor(lv::Bytes memory, bool wants_net, int target);
  // Runs the engine until the shell pool is fully stocked.
  void PrefillShellPool();

  // --- Accessors -----------------------------------------------------------------

  sim::Engine& engine() { return *engine_; }
  sim::CpuScheduler& cpu() { return *cpu_; }
  hv::Hypervisor& hv() { return *hv_; }
  Dom0Services& dom0() { return *dom0_; }
  NodeApi& node() { return *node_; }
  xnet::Switch& network_switch() { return dom0_->network_switch(); }
  toolstack::Toolstack& toolstack() { return node_->toolstack(); }
  toolstack::ChaosDaemon* chaos_daemon() { return node_->chaos_daemon(); }
  toolstack::MigrationDaemon& migration_daemon() { return node_->migration_daemon(); }
  xs::Daemon* store() { return dom0_->store(); }
  // Ablation hook: the store daemon's live cost model (null under noxs).
  xs::Costs* store_costs_for_test() { return dom0_->store_costs(); }
  // Ablation hook: the device layer's live cost model (e.g. to zero the
  // unoptimized noxs teardown the paper leaves as future work).
  xdev::Costs* device_costs_for_test() { return dom0_->device_costs(); }
  xdev::BackendDriver& netback() { return dom0_->netback(); }
  xdev::HotplugRunner* xendevd_runner() { return dom0_->xendevd(); }
  guests::Guest* guest(hv::DomainId domid) { return node_->guest(domid); }
  int64_t num_vms() const { return node_->num_vms(); }

  // Execution context for Dom0 work (control-plane callers).
  sim::ExecCtx Dom0Ctx() { return node_->Dom0Ctx(); }

  // Total memory in use: Dom0 baseline + all guest reservations (Fig. 14).
  lv::Bytes MemoryUsed() const;
  // Machine-wide CPU utilization over the current measurement window.
  void StartCpuWindow() { cpu_->StartWindow(); }
  double CpuUtilization() const { return cpu_->WindowUtilization(); }

 private:
  sim::Co<void> SettleCrash();

  sim::Engine* engine_;
  HostSpec spec_;
  Mechanisms mechanisms_;
  // Declared before the services so hooks outlive everything that points at
  // them (env, hotplug runners).
  faults::FaultHooks fault_hooks_;
  bool crashed_ = false;
  bool crash_settled_ = false;
  std::unique_ptr<sim::CpuScheduler> cpu_;
  std::unique_ptr<sim::CorePlacer> placer_;
  std::unique_ptr<hv::Hypervisor> hv_;
  std::unique_ptr<Dom0Services> dom0_;
  std::unique_ptr<NodeApi> node_;
  ResourceBaseline baseline_;
};

}  // namespace lightvm
