// lightvm::Host — the top-level public API of this library.
//
// A Host bundles one physical machine: CPU cores, memory, the hypervisor,
// Dom0 (store daemon, back-ends, hotplug machinery, software switch) and a
// toolstack selected by the Mechanisms matrix. Benchmarks and examples
// create Hosts and drive VMs through them.
//
//   sim::Engine engine;
//   lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
//                      lightvm::Mechanisms::LightVm());
//   auto domid = host.CreateVm({.name = "web0", .image = guests::DaytimeUnikernel()});
#pragma once

#include <memory>
#include <string>

#include "src/core/mechanisms.h"
#include "src/guests/guest.h"
#include "src/toolstack/chaos.h"
#include "src/toolstack/chaos_daemon.h"
#include "src/toolstack/migration.h"
#include "src/toolstack/xl.h"

namespace lightvm {

struct HostSpec {
  std::string name = "host";
  int cores = 4;
  int dom0_cores = 1;
  lv::Bytes memory = lv::Bytes::GiB(128);
  // Dom0's own memory footprint (kernel + daemons + switch).
  lv::Bytes dom0_memory = lv::Bytes::GiB(1);

  // The paper's testbeds.
  // Intel Xeon E5-1630 v3, 4 cores, 128 GB DDR4 (§6: most experiments).
  static HostSpec Xeon4Core();
  // 4x AMD Opteron 6376, 64 cores, 128 GB DDR3 (§6.1: density test).
  static HostSpec Amd64Core();
  // Intel Xeon E5-2690 v4, 14 cores, 64 GB (§7: use cases).
  static HostSpec Xeon14Core();
};

class Host {
 public:
  Host(sim::Engine* engine, HostSpec spec, Mechanisms mechanisms);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const HostSpec& spec() const { return spec_; }
  const Mechanisms& mechanisms() const { return mechanisms_; }

  // --- VM lifecycle (thin wrappers over the toolstack) ----------------------

  sim::Co<lv::Result<hv::DomainId>> CreateVm(toolstack::VmConfig config);
  // Creates and waits until the guest signals boot completion.
  sim::Co<lv::Result<hv::DomainId>> CreateAndBoot(toolstack::VmConfig config);
  sim::Co<lv::Status> DestroyVm(hv::DomainId domid);
  sim::Co<lv::Result<toolstack::Snapshot>> SaveVm(hv::DomainId domid);
  sim::Co<lv::Result<hv::DomainId>> RestoreVm(toolstack::Snapshot snap);
  sim::Co<lv::Status> MigrateVm(hv::DomainId domid, Host* target, xnet::Link* link);

  sim::Co<void> WaitBooted(hv::DomainId domid);

  // Shell-pool configuration (split toolstack). Call before creating VMs.
  void AddShellFlavor(lv::Bytes memory, bool wants_net, int target);
  // Runs the engine until the shell pool is fully stocked.
  void PrefillShellPool();

  // --- Accessors -----------------------------------------------------------------

  sim::Engine& engine() { return *engine_; }
  sim::CpuScheduler& cpu() { return *cpu_; }
  hv::Hypervisor& hv() { return *hv_; }
  xnet::Switch& network_switch() { return *switch_; }
  toolstack::Toolstack& toolstack() { return *toolstack_; }
  toolstack::ChaosDaemon* chaos_daemon() { return chaos_daemon_.get(); }
  toolstack::MigrationDaemon& migration_daemon() { return *migration_daemon_; }
  xs::Daemon* store() { return store_.get(); }
  // Ablation hook: the store daemon's live cost model (null under noxs).
  xs::Costs* store_costs_for_test() {
    return store_ ? store_->mutable_costs() : nullptr;
  }
  // Ablation hook: the device layer's live cost model (e.g. to zero the
  // unoptimized noxs teardown the paper leaves as future work).
  xdev::Costs* device_costs_for_test() { return &dev_costs_; }
  xdev::BackendDriver& netback() { return *netback_; }
  xdev::HotplugRunner* xendevd_runner() { return xendevd_.get(); }
  guests::Guest* guest(hv::DomainId domid) { return toolstack_->guest(domid); }
  int64_t num_vms() const { return toolstack_->num_vms(); }

  // Execution context for Dom0 work (control-plane callers).
  sim::ExecCtx Dom0Ctx();

  // Total memory in use: Dom0 baseline + all guest reservations (Fig. 14).
  lv::Bytes MemoryUsed() const;
  // Machine-wide CPU utilization over the current measurement window.
  void StartCpuWindow() { cpu_->StartWindow(); }
  double CpuUtilization() const { return cpu_->WindowUtilization(); }

 private:
  sim::Engine* engine_;
  HostSpec spec_;
  Mechanisms mechanisms_;
  std::unique_ptr<sim::CpuScheduler> cpu_;
  std::unique_ptr<sim::CorePlacer> placer_;
  std::unique_ptr<hv::Hypervisor> hv_;
  std::unique_ptr<xnet::Switch> switch_;
  std::unique_ptr<xdev::ControlPages> control_pages_;
  xdev::Costs dev_costs_;
  std::unique_ptr<xdev::BashHotplug> bash_hotplug_;
  std::unique_ptr<xdev::Xendevd> xendevd_;
  std::unique_ptr<xs::Daemon> store_;
  std::unique_ptr<xdev::BackendDriver> netback_;
  std::unique_ptr<xdev::BackendDriver> blkback_;
  std::unique_ptr<xdev::SysctlBackend> sysctl_;
  std::unique_ptr<toolstack::ChaosDaemon> chaos_daemon_;
  std::unique_ptr<toolstack::Toolstack> toolstack_;
  std::unique_ptr<toolstack::MigrationDaemon> migration_daemon_;
};

}  // namespace lightvm
