#include "src/tinyx/kernel_config.h"

namespace tinyx {

using lv::Bytes;

KernelModel::KernelModel() : baseline_(Bytes::KiB(900)) {
  options_ = {
      // Platform front-ends.
      {.name = "XEN_PV", .size = Bytes::KiB(340), .needed_by = {}, .needed_for_net = false,
       .needed_for_block = false},
      {.name = "XEN_NETDEV_FRONTEND", .size = Bytes::KiB(90), .needed_by = {},
       .needed_for_net = true, .needed_for_block = false},
      {.name = "XEN_BLKDEV_FRONTEND", .size = Bytes::KiB(70), .needed_by = {},
       .needed_for_net = false, .needed_for_block = true},
      {.name = "VIRTIO_PCI", .size = Bytes::KiB(160), .needed_by = {}},
      {.name = "VIRTIO_NET", .size = Bytes::KiB(80), .needed_by = {},
       .needed_for_net = true},
      {.name = "VIRTIO_BLK", .size = Bytes::KiB(60), .needed_by = {},
       .needed_for_block = true},
      // Generic subsystems tinyconfig+olddefconfig pulls in for virtualized
      // targets; candidates for the trimming loop.
      {.name = "NET", .size = Bytes::KiB(800), .needed_by = {"nginx", "tls-proxy",
                                                             "micropython"},
       .needed_for_net = true},
      {.name = "INET", .size = Bytes::KiB(420), .needed_by = {"nginx", "tls-proxy"},
       .needed_for_net = true},
      {.name = "EPOLL", .size = Bytes::KiB(40), .needed_by = {"nginx"}},
      {.name = "FUTEX", .size = Bytes::KiB(32), .needed_by = {"nginx", "micropython"}},
      {.name = "SHMEM", .size = Bytes::KiB(90), .needed_by = {"nginx"}},
      {.name = "PROC_FS", .size = Bytes::KiB(150), .needed_by = {"nginx"}},
      {.name = "SYSFS", .size = Bytes::KiB(120), .needed_by = {}},
      {.name = "TMPFS", .size = Bytes::KiB(60), .needed_by = {}},
      {.name = "MODULES", .size = Bytes::KiB(220), .needed_by = {}},
      {.name = "ETHERNET_DRIVERS", .size = Bytes::KiB(640), .needed_by = {}},
      {.name = "USB", .size = Bytes::KiB(540), .needed_by = {}},
      {.name = "SOUND", .size = Bytes::KiB(700), .needed_by = {}},
      {.name = "GPU_DRIVERS", .size = Bytes::KiB(900), .needed_by = {}},
      {.name = "WIRELESS", .size = Bytes::KiB(760), .needed_by = {}},
      {.name = "IPV6", .size = Bytes::KiB(520), .needed_by = {}},
      {.name = "NETFILTER", .size = Bytes::KiB(430), .needed_by = {}},
      {.name = "CRYPTO_FULL", .size = Bytes::KiB(380), .needed_by = {"tls-proxy"}},
  };
}

std::vector<std::string> KernelModel::PlatformOptions(Platform platform) const {
  if (platform == Platform::kXen) {
    return {"XEN_PV", "XEN_NETDEV_FRONTEND", "XEN_BLKDEV_FRONTEND"};
  }
  return {"VIRTIO_PCI", "VIRTIO_NET", "VIRTIO_BLK"};
}

std::vector<std::string> KernelModel::DefaultOnOptions() const {
  return {"NET",     "INET",   "EPOLL",    "FUTEX",            "SHMEM",
          "PROC_FS", "SYSFS",  "TMPFS",    "MODULES",          "ETHERNET_DRIVERS",
          "USB",     "SOUND",  "GPU_DRIVERS", "WIRELESS",      "IPV6",
          "NETFILTER", "CRYPTO_FULL"};
}

const KernelOption* KernelModel::Find(const std::string& name) const {
  for (const KernelOption& opt : options_) {
    if (opt.name == name) {
      return &opt;
    }
  }
  return nullptr;
}

lv::Bytes KernelModel::SizeOf(const std::set<std::string>& options) const {
  lv::Bytes total = baseline_;
  for (const std::string& name : options) {
    const KernelOption* opt = Find(name);
    if (opt != nullptr) {
      total += opt->size;
    }
  }
  return total;
}

bool KernelModel::BootTest(const std::set<std::string>& options,
                           const std::string& app) const {
  // The image must still boot on its platform and the app test must pass:
  // every option the app genuinely needs must be present.
  bool has_platform = options.contains("XEN_PV") || options.contains("VIRTIO_PCI");
  if (!has_platform) {
    return false;
  }
  for (const KernelOption& opt : options_) {
    bool needed = false;
    for (const std::string& a : opt.needed_by) {
      if (a == app) {
        needed = true;
        break;
      }
    }
    if (needed && !options.contains(opt.name)) {
      return false;
    }
  }
  // Network-facing apps need a front-end NIC + the core network stack.
  bool app_uses_net = app == "nginx" || app == "tls-proxy" || app == "micropython";
  if (app_uses_net) {
    bool has_frontend =
        options.contains("XEN_NETDEV_FRONTEND") || options.contains("VIRTIO_NET");
    if (!has_frontend || !options.contains("NET")) {
      return false;
    }
  }
  return true;
}

}  // namespace tinyx
