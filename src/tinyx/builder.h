// The Tinyx build system (paper §3.2): builds a minimalistic, Linux-based
// VM image around a single application.
//
// Two halves, as in the paper:
//  * Distribution: resolve the app's dependency closure (objdump +
//    package manager), subtract the installation-only blacklist, add the
//    user whitelist, assemble through an OverlayFS mount over a debootstrap
//    base, strip caches, and merge onto a BusyBox underlay with an init glue.
//  * Kernel: start from the "tinyconfig" target, add platform options (Xen
//    or KVM front-ends), then optionally run the test-driven trimming loop:
//    disable each user-provided option in turn, rebuild, boot, run the app
//    test; re-enable on failure.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/units.h"
#include "src/guests/image.h"
#include "src/tinyx/kernel_config.h"
#include "src/tinyx/package_db.h"

namespace tinyx {

struct BuildConfig {
  std::string app;                      // e.g. "nginx"
  Platform platform = Platform::kXen;   // target hypervisor
  std::vector<std::string> whitelist;   // user-forced packages
  std::vector<std::string> blacklist_extra;  // beyond the built-in one
  // Kernel options the user wants the trimming loop to try disabling.
  std::vector<std::string> kernel_options_to_test;
  // Boot test: does a kernel with `options` still run `app`? Defaults to the
  // ground-truth test in KernelModel.
  std::function<bool(const std::set<std::string>& options, const std::string& app)>
      boot_test;
};

struct OverlayStep {
  std::string description;
  lv::Bytes delta;  // signed contribution to the rootfs size
};

struct BuiltImage {
  std::string app;
  std::vector<std::string> packages;        // final package set, sorted
  std::vector<std::string> blacklisted;     // packages excluded, sorted
  std::vector<OverlayStep> overlay_steps;   // assembly audit trail
  std::set<std::string> kernel_options;     // final enabled options
  std::vector<std::string> options_disabled_by_test;
  lv::Bytes rootfs_size;
  lv::Bytes kernel_size;
  lv::Bytes image_size;  // kernel + rootfs bundled as initramfs
  lv::Bytes memory_estimate;
  int boot_tests_run = 0;

  // Converts to a guest image profile runnable on the simulated host.
  guests::GuestImage ToGuestImage() const;
};

class TinyxBuilder {
 public:
  explicit TinyxBuilder(PackageDb db) : db_(std::move(db)) {}

  lv::Result<BuiltImage> Build(const BuildConfig& config) const;

  // The dependency closure of `app` (objdump libs + package depends),
  // before blacklisting. Exposed for testing.
  lv::Result<std::vector<std::string>> ResolveClosure(const std::string& app) const;

 private:
  PackageDb db_;
};

}  // namespace tinyx
