#include "src/tinyx/builder.h"

#include <algorithm>
#include <deque>

#include "src/base/strings.h"

namespace tinyx {

using lv::Bytes;

lv::Result<std::vector<std::string>> TinyxBuilder::ResolveClosure(
    const std::string& app) const {
  const Package* root = db_.Find(app);
  if (root == nullptr) {
    return lv::Err(lv::ErrorCode::kNotFound, "no such package: " + app);
  }
  std::set<std::string> closure;
  std::deque<std::string> frontier;
  frontier.push_back(app);
  while (!frontier.empty()) {
    std::string name = frontier.front();
    frontier.pop_front();
    if (!closure.insert(name).second) {
      continue;
    }
    const Package* pkg = db_.Find(name);
    if (pkg == nullptr) {
      return lv::Err(lv::ErrorCode::kNotFound, "broken dependency: " + name);
    }
    // Channel 1: declared package dependencies (the package manager).
    for (const std::string& dep : pkg->depends) {
      frontier.push_back(dep);
    }
    // Channel 2: objdump over the binaries -> shared libraries -> providers.
    for (const std::string& lib : pkg->needed_libs) {
      const Package* provider = db_.ProviderOf(lib);
      if (provider == nullptr) {
        return lv::Err(lv::ErrorCode::kNotFound,
                       lv::StrFormat("no package provides %s (needed by %s)", lib.c_str(),
                                     name.c_str()));
      }
      frontier.push_back(provider->name);
    }
  }
  std::vector<std::string> out(closure.begin(), closure.end());
  return out;
}

lv::Result<BuiltImage> TinyxBuilder::Build(const BuildConfig& config) const {
  BuiltImage image;
  image.app = config.app;

  // --- Distribution half -----------------------------------------------------
  auto closure = ResolveClosure(config.app);
  if (!closure.ok()) {
    return closure.error();
  }
  std::set<std::string> selected(closure->begin(), closure->end());

  // Whitelist: user-forced packages irrespective of dependency analysis.
  for (const std::string& name : config.whitelist) {
    auto extra = ResolveClosure(name);
    if (!extra.ok()) {
      return extra.error();
    }
    selected.insert(extra->begin(), extra->end());
  }

  // Blacklist: installation machinery marked "required" by the distro plus
  // any user-supplied names.
  std::set<std::string> blacklist;
  for (const std::string& name : db_.RequiredForInstall()) {
    blacklist.insert(name);
  }
  for (const std::string& name : config.blacklist_extra) {
    blacklist.insert(name);
  }
  for (const std::string& name : blacklist) {
    if (selected.erase(name) > 0) {
      image.blacklisted.push_back(name);
    }
  }
  std::sort(image.blacklisted.begin(), image.blacklisted.end());

  // BusyBox provides basic runtime functionality in every Tinyx image.
  selected.insert("busybox");
  auto busybox_deps = ResolveClosure("busybox");
  if (busybox_deps.ok()) {
    selected.insert(busybox_deps->begin(), busybox_deps->end());
  }

  // --- Overlay assembly --------------------------------------------------------
  // Install into an OverlayFS over a debootstrap base, strip caches, merge
  // onto the BusyBox underlay, add the init glue.
  Bytes rootfs;
  Bytes caches;
  for (const std::string& name : selected) {
    const Package* pkg = db_.Find(name);
    LV_CHECK(pkg != nullptr);
    rootfs += pkg->installed_size;
    caches += pkg->cache_overhead;
  }
  image.overlay_steps.push_back(
      {"mount empty OverlayFS over debootstrap base", Bytes::Count(0)});
  image.overlay_steps.push_back(
      {lv::StrFormat("install %zu packages into overlay", selected.size()), rootfs + caches});
  image.overlay_steps.push_back(
      {"remove caches, dpkg/apt files, unnecessary directories",
       Bytes::Count(0) - caches});
  image.overlay_steps.push_back({"merge overlay onto BusyBox underlay", Bytes::Count(0)});
  Bytes init_glue = Bytes::KiB(4);
  image.overlay_steps.push_back({"add init glue to run app from BusyBox init", init_glue});
  image.rootfs_size = rootfs + init_glue;

  // --- Kernel half ----------------------------------------------------------------
  KernelModel kernel;
  std::set<std::string> options;
  for (const std::string& opt : kernel.PlatformOptions(config.platform)) {
    options.insert(opt);
  }
  for (const std::string& opt : kernel.DefaultOnOptions()) {
    options.insert(opt);
  }
  // Tinyx disables module support by default (§3.2).
  options.erase("MODULES");
  // And baremetal-only drivers not needed on virtualized systems.
  for (const char* opt : {"ETHERNET_DRIVERS", "USB", "SOUND", "GPU_DRIVERS", "WIRELESS"}) {
    options.erase(opt);
  }

  auto boot_test = config.boot_test
                       ? config.boot_test
                       : [&kernel](const std::set<std::string>& opts,
                                   const std::string& app) {
                           return kernel.BootTest(opts, app);
                         };

  // Test-driven trimming loop over the user-provided candidates.
  for (const std::string& candidate : config.kernel_options_to_test) {
    if (!options.contains(candidate)) {
      continue;
    }
    options.erase(candidate);
    ++image.boot_tests_run;
    if (!boot_test(options, config.app)) {
      options.insert(candidate);  // Re-enable: the app needs it.
    } else {
      image.options_disabled_by_test.push_back(candidate);
    }
  }

  if (!boot_test(options, config.app)) {
    return lv::Err(lv::ErrorCode::kInternal,
                   "final kernel configuration fails the boot test");
  }

  image.kernel_options = options;
  image.kernel_size = kernel.SizeOf(options);
  image.packages.assign(selected.begin(), selected.end());
  std::sort(image.packages.begin(), image.packages.end());

  // The distribution is bundled into the kernel image as an initramfs (§6).
  image.image_size = image.kernel_size + image.rootfs_size;
  // Runtime memory: trimmed kernel (~1.6 MB) + initramfs resident + app
  // working set; lands near the paper's ~30 MB for typical apps.
  image.memory_estimate = Bytes::MiB(18) + image.rootfs_size;

  return image;
}

guests::GuestImage BuiltImage::ToGuestImage() const {
  guests::GuestImage img = guests::TinyxNoop();
  img.name = "tinyx-" + app;
  img.image_size = image_size;
  img.memory = memory_estimate;
  if (app == "tls-proxy") {
    img.tls_handshake_cpu = lv::Duration::Millis(10);
  }
  return img;
}

}  // namespace tinyx
