// Package database for the Tinyx build system (paper §3.2).
//
// Tinyx derives an application's dependency closure two ways: objdump over
// the binary yields required shared libraries, and the Debian package
// manager yields declared package dependencies. The database here models a
// Debian-like repository: packages with sizes, dependency edges, provided
// shared libraries, and the "required" flag that marks packages needed only
// for installation (dpkg, apt, ...) which Tinyx blacklists.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/base/units.h"

namespace tinyx {

struct Package {
  std::string name;
  lv::Bytes installed_size;
  // Declared package dependencies (package-manager channel).
  std::vector<std::string> depends;
  // Shared libraries this package's binaries link against (objdump channel).
  std::vector<std::string> needed_libs;
  // Shared libraries this package provides.
  std::vector<std::string> provides_libs;
  // Marked "required" by the distribution (mostly for installation).
  bool required_for_install = false;
  // Installation scripts leave this much cache/bookkeeping behind, which the
  // Tinyx overlay pass removes.
  lv::Bytes cache_overhead;
};

class PackageDb {
 public:
  void Add(Package pkg);
  const Package* Find(const std::string& name) const;
  // Package providing a shared library, if any.
  const Package* ProviderOf(const std::string& lib) const;
  std::vector<std::string> RequiredForInstall() const;
  size_t size() const { return packages_.size(); }

  // A Debian-jessie-like base repository with the applications the paper
  // builds Tinyx images for (nginx, micropython, TLS termination).
  static PackageDb DebianBase();

 private:
  std::unordered_map<std::string, Package> packages_;
  std::unordered_map<std::string, std::string> lib_providers_;
};

}  // namespace tinyx
