#include "src/tinyx/package_db.h"

namespace tinyx {

using lv::Bytes;

void PackageDb::Add(Package pkg) {
  for (const std::string& lib : pkg.provides_libs) {
    lib_providers_[lib] = pkg.name;
  }
  packages_[pkg.name] = std::move(pkg);
}

const Package* PackageDb::Find(const std::string& name) const {
  auto it = packages_.find(name);
  return it == packages_.end() ? nullptr : &it->second;
}

const Package* PackageDb::ProviderOf(const std::string& lib) const {
  auto it = lib_providers_.find(lib);
  return it == lib_providers_.end() ? nullptr : Find(it->second);
}

std::vector<std::string> PackageDb::RequiredForInstall() const {
  std::vector<std::string> out;
  for (const auto& [name, pkg] : packages_) {
    if (pkg.required_for_install) {
      out.push_back(name);
    }
  }
  return out;
}

PackageDb PackageDb::DebianBase() {
  PackageDb db;
  // Core libraries.
  db.Add({.name = "libc6",
          .installed_size = Bytes::MiBF(4.2),
          .depends = {},
          .needed_libs = {},
          .provides_libs = {"libc.so.6", "libm.so.6", "libdl.so.2", "libpthread.so.0"},
          .required_for_install = false,
          .cache_overhead = Bytes::KiB(120)});
  db.Add({.name = "zlib1g",
          .installed_size = Bytes::KiB(160),
          .depends = {"libc6"},
          .needed_libs = {"libc.so.6"},
          .provides_libs = {"libz.so.1"},
          .cache_overhead = Bytes::KiB(20)});
  db.Add({.name = "libssl",
          .installed_size = Bytes::MiBF(2.8),
          .depends = {"libc6", "zlib1g"},
          .needed_libs = {"libc.so.6", "libz.so.1"},
          .provides_libs = {"libssl.so.1.0", "libcrypto.so.1.0"},
          .cache_overhead = Bytes::KiB(60)});
  db.Add({.name = "libpcre3",
          .installed_size = Bytes::KiB(450),
          .depends = {"libc6"},
          .needed_libs = {"libc.so.6"},
          .provides_libs = {"libpcre.so.3"},
          .cache_overhead = Bytes::KiB(16)});
  db.Add({.name = "libaxtls",
          .installed_size = Bytes::KiB(220),
          .depends = {"libc6"},
          .needed_libs = {"libc.so.6"},
          .provides_libs = {"libaxtls.so.1"},
          .cache_overhead = Bytes::KiB(8)});
  // Applications.
  db.Add({.name = "nginx",
          .installed_size = Bytes::MiBF(1.3),
          .depends = {"libc6", "zlib1g", "libpcre3", "libssl"},
          .needed_libs = {"libc.so.6", "libz.so.1", "libpcre.so.3", "libssl.so.1.0"},
          .provides_libs = {},
          .cache_overhead = Bytes::KiB(200)});
  db.Add({.name = "micropython",
          .installed_size = Bytes::KiB(640),
          .depends = {"libc6"},
          .needed_libs = {"libc.so.6", "libm.so.6"},
          .provides_libs = {},
          .cache_overhead = Bytes::KiB(40)});
  db.Add({.name = "tls-proxy",
          .installed_size = Bytes::KiB(380),
          .depends = {"libc6", "libaxtls"},
          .needed_libs = {"libc.so.6", "libaxtls.so.1"},
          .provides_libs = {},
          .cache_overhead = Bytes::KiB(12)});
  // Base system.
  db.Add({.name = "busybox",
          .installed_size = Bytes::MiBF(1.1),
          .depends = {"libc6"},
          .needed_libs = {"libc.so.6"},
          .provides_libs = {},
          .cache_overhead = Bytes::KiB(30)});
  // Installation machinery: required by Debian but not needed at runtime —
  // exactly what the Tinyx blacklist exists for.
  db.Add({.name = "dpkg",
          .installed_size = Bytes::MiBF(6.6),
          .depends = {"libc6", "zlib1g"},
          .needed_libs = {"libc.so.6", "libz.so.1"},
          .provides_libs = {},
          .required_for_install = true,
          .cache_overhead = Bytes::MiBF(1.5)});
  db.Add({.name = "apt",
          .installed_size = Bytes::MiBF(3.8),
          .depends = {"libc6", "dpkg"},
          .needed_libs = {"libc.so.6"},
          .provides_libs = {},
          .required_for_install = true,
          .cache_overhead = Bytes::MiBF(2.0)});
  db.Add({.name = "perl-base",
          .installed_size = Bytes::MiBF(5.5),
          .depends = {"libc6"},
          .needed_libs = {"libc.so.6"},
          .provides_libs = {},
          .required_for_install = true,
          .cache_overhead = Bytes::KiB(500)});
  return db;
}

}  // namespace tinyx
