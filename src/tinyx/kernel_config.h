// Kernel configuration model for Tinyx (paper §3.2).
//
// "To build the kernel, Tinyx begins with the 'tinyconfig' Linux kernel
//  build target as a baseline, and adds a set of built-in options depending
//  on the target system (e.g., Xen or KVM support)... Optionally, the build
//  system can take a set of user-provided kernel options, disable each one
//  in turn, rebuild the kernel with the olddefconfig target, boot the Tinyx
//  image, and run a user-provided test."
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/base/units.h"

namespace tinyx {

enum class Platform { kXen, kKvm };

struct KernelOption {
  std::string name;
  lv::Bytes size;  // contribution to the kernel image
  // Applications that genuinely need this option (ground truth used by the
  // default boot test).
  std::vector<std::string> needed_by;
  // Needed whenever networking / block devices are used at all.
  bool needed_for_net = false;
  bool needed_for_block = false;
};

class KernelModel {
 public:
  KernelModel();

  // The tinyconfig baseline size.
  lv::Bytes baseline_size() const { return baseline_; }
  // Options forced on for a platform (PV front-ends etc.).
  std::vector<std::string> PlatformOptions(Platform platform) const;
  // The olddefconfig default-on option set tinyconfig inherits for a
  // virtualized target (candidates for trimming).
  std::vector<std::string> DefaultOnOptions() const;
  const KernelOption* Find(const std::string& name) const;

  lv::Bytes SizeOf(const std::set<std::string>& options) const;

  // Ground-truth boot test: does a kernel with `options` run `app`?
  bool BootTest(const std::set<std::string>& options, const std::string& app) const;

 private:
  lv::Bytes baseline_;
  std::vector<KernelOption> options_;
};

}  // namespace tinyx
