#include "src/obs/obs.h"

#include <algorithm>
#include <fstream>

#include "src/base/assert.h"
#include "src/base/strings.h"

namespace obs {

namespace {

// Process-wide monotonic op-id source. Plain counter (no randomness, no
// wall clock) so same-seed runs mint identical ids.
int64_t g_next_op = 0;

OpIdPolicy g_op_policy = OpIdPolicy::kGlobal;
// slot 0 = control pseudo-node (-1), slot n+1 = node n. Each slot is only
// ever bumped by the shard thread that owns the node, so plain int64 is
// race-free under the sharded single-writer contract.
std::vector<int64_t> g_node_next_op;

// Per-node id space: (slot+1) * 2^40 + per-slot counter. The stride keeps
// node streams disjoint and far from kGlobal's small ids.
constexpr int64_t kPerNodeStride = int64_t{1} << 40;

thread_local FlightRecorder::NowFn t_now_fn = nullptr;
thread_local void* t_now_ctx = nullptr;

}  // namespace

OpRef NewOp(OpRef parent) {
  OpRef op;
  op.id = ++g_next_op;
  op.root = parent.valid() ? parent.root : op.id;
  op.parent = parent.id;
  return op;
}

void SetOpIdPolicy(OpIdPolicy policy, int max_nodes) {
  g_op_policy = policy;
  g_node_next_op.assign(static_cast<size_t>(max_nodes) + 1, 0);
}

OpIdPolicy GetOpIdPolicy() { return g_op_policy; }

OpRef NewOpOnNode(int node, OpRef parent) {
  if (g_op_policy == OpIdPolicy::kGlobal) {
    return NewOp(parent);
  }
  const size_t slot = static_cast<size_t>(node + 1);
  LV_CHECK_MSG(node >= -1 && slot < g_node_next_op.size(),
               "node outside the range given to SetOpIdPolicy");
  OpRef op;
  op.id = static_cast<int64_t>(slot + 1) * kPerNodeStride + ++g_node_next_op[slot];
  op.root = parent.valid() ? parent.root : op.id;
  op.parent = parent.id;
  return op;
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder& recorder = *new FlightRecorder();
  return recorder;
}

void FlightRecorder::AttachThreadClock(NowFn fn, void* ctx) {
  t_now_fn = fn;
  t_now_ctx = ctx;
}

void FlightRecorder::DetachThreadClock() {
  t_now_fn = nullptr;
  t_now_ctx = nullptr;
}

lv::TimePoint FlightRecorder::Now() const {
  if (t_now_fn != nullptr) {
    return t_now_fn(t_now_ctx);
  }
  return now_fn_ ? now_fn_(now_ctx_) : lv::TimePoint();
}

void FlightRecorder::EnsureNodes(int nodes) {
  if (nodes > 0 && rings_.size() < static_cast<size_t>(nodes)) {
    rings_.resize(static_cast<size_t>(nodes));
  }
}

void FlightRecorder::Record(int node, const OpRef& op, const char* layer,
                            const char* verb, bool ok, int64_t arg) {
  if (node < 0) {
    node = 0;
  }
  if (static_cast<size_t>(node) >= rings_.size()) {
    rings_.resize(static_cast<size_t>(node) + 1);
  }
  Ring& ring = rings_[static_cast<size_t>(node)];
  FlightEvent ev;
  ev.ts = Now();
  ev.op = op.id;
  ev.parent = op.parent;
  ev.node = node;
  ev.layer = layer;
  ev.verb = verb;
  ev.ok = ok;
  ev.arg = arg;
  if (ring.slots.size() < static_cast<size_t>(kRingCapacity)) {
    ring.slots.push_back(ev);
  } else {
    ring.slots[ring.next] = ev;
  }
  ring.next = (ring.next + 1) % static_cast<size_t>(kRingCapacity);
  ++ring.total;
}

std::vector<FlightEvent> FlightRecorder::NodeEvents(int node) const {
  std::vector<FlightEvent> out;
  if (node < 0 || static_cast<size_t>(node) >= rings_.size()) {
    return out;
  }
  const Ring& ring = rings_[static_cast<size_t>(node)];
  out.reserve(ring.slots.size());
  if (ring.slots.size() < static_cast<size_t>(kRingCapacity)) {
    out = ring.slots;
  } else {
    for (size_t i = 0; i < ring.slots.size(); ++i) {
      out.push_back(ring.slots[(ring.next + i) % ring.slots.size()]);
    }
  }
  return out;
}

int64_t FlightRecorder::Dropped(int node) const {
  if (node < 0 || static_cast<size_t>(node) >= rings_.size()) {
    return 0;
  }
  const Ring& ring = rings_[static_cast<size_t>(node)];
  return ring.total - static_cast<int64_t>(ring.slots.size());
}

void FlightRecorder::WriteJson(std::ostream& out) const {
  // layer/verb are string literals chosen by the instrumentation (never
  // user input), so no JSON escaping is needed.
  out << "{\"schema\":\"lightvm-flight/1\",\"nodes\":[";
  bool first_node = true;
  for (size_t node = 0; node < rings_.size(); ++node) {
    const Ring& ring = rings_[node];
    if (ring.total == 0) {
      continue;
    }
    if (!first_node) {
      out << ",";
    }
    first_node = false;
    out << lv::StrFormat("\n{\"node\":%d,\"recorded\":%lld,\"dropped\":%lld,\"events\":[",
                         static_cast<int>(node), (long long)ring.total,
                         (long long)Dropped(static_cast<int>(node)));
    std::vector<FlightEvent> events = NodeEvents(static_cast<int>(node));
    for (size_t i = 0; i < events.size(); ++i) {
      const FlightEvent& ev = events[i];
      out << lv::StrFormat(
          "%s\n{\"ts_ns\":%lld,\"op\":%lld,\"parent\":%lld,\"layer\":\"%s\","
          "\"verb\":\"%s\",\"ok\":%s,\"arg\":%lld}",
          i == 0 ? "" : ",", (long long)ev.ts.ns(), (long long)ev.op,
          (long long)ev.parent, ev.layer, ev.verb, ev.ok ? "true" : "false",
          (long long)ev.arg);
    }
    out << "\n]}";
  }
  out << "\n]}\n";
}

bool FlightRecorder::DumpJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteJson(out);
  return out.good();
}

void FlightRecorder::MaybeDump() const {
  if (!dump_path_.empty()) {
    (void)DumpJson(dump_path_);
  }
}

void FlightRecorder::Reset() {
  rings_.clear();
  g_next_op = 0;
  std::fill(g_node_next_op.begin(), g_node_next_op.end(), 0);
}

}  // namespace obs
