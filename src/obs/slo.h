// Declarative SLO gates: a scenario spec can carry an `slo` section whose
// bounds are evaluated against the metrics registry at the end of a run
// (`scenario_runner --check`). Every bound is an inclusive upper bound on
// the observed value, so `"vms_lost": 0` reads as "vms_lost == 0" for a
// non-negative counter and `"recovery_p99_ms": 450` as "p99 <= 450 ms".
//
// The value sources are fixed metric names (see EvaluateSlos), not spec
// input — the spec only chooses which bounds to enforce, so a typo'd key
// is a parse error and a missing metric evaluates as zero.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"

namespace obs {

// Bounds a spec may enforce. Absent fields are not evaluated.
struct SloConfig {
  std::optional<double> create_p99_ms;     // toolstack.*.create_ms p99 (worst toolstack)
  std::optional<double> recovery_p99_ms;   // cluster.recovery_ms p99
  std::optional<double> admission_drift;   // max(|cluster.drift_mem_bytes|, |cluster.drift_vcpus|)
  std::optional<double> vms_lost;          // cluster.vms_lost counter
  std::optional<double> vms_unrecovered;   // cluster.vms_unrecovered counter
  std::optional<double> invariant_failures;  // cluster.invariant_failures counter

  bool any() const {
    return create_p99_ms || recovery_p99_ms || admission_drift || vms_lost ||
           vms_unrecovered || invariant_failures;
  }
};

struct SloResult {
  std::string key;    // the spec field name
  double value = 0.0; // observed
  double bound = 0.0; // configured upper bound
  bool ok = false;    // value <= bound
};

// Evaluates every configured bound against `registry`, in a fixed key
// order (deterministic output). Metrics that were never recorded evaluate
// as zero.
std::vector<SloResult> EvaluateSlos(const SloConfig& config,
                                    const metrics::Registry& registry);

}  // namespace obs
