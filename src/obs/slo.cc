#include "src/obs/slo.h"

#include <cmath>

namespace obs {

namespace {

double CounterValue(const metrics::Registry& registry, const std::string& name) {
  const metrics::Counter* c = registry.FindCounter(name);
  return c != nullptr ? c->value() : 0.0;
}

double GaugeAbs(const metrics::Registry& registry, const std::string& name) {
  const metrics::Gauge* g = registry.FindGauge(name);
  return g != nullptr ? std::abs(g->value()) : 0.0;
}

double HistogramP99(const metrics::Registry& registry, const std::string& name) {
  const metrics::Histogram* h = registry.FindHistogram(name);
  return (h != nullptr && !h->empty()) ? h->Quantile(0.99) : 0.0;
}

void Check(std::vector<SloResult>& out, const std::optional<double>& bound,
           const char* key, double value) {
  if (!bound.has_value()) {
    return;
  }
  SloResult r;
  r.key = key;
  r.value = value;
  r.bound = *bound;
  r.ok = value <= *bound;
  out.push_back(r);
}

}  // namespace

std::vector<SloResult> EvaluateSlos(const SloConfig& config,
                                    const metrics::Registry& registry) {
  std::vector<SloResult> out;
  // Whichever toolstack(s) ran, gate on the slowest one.
  double create_p99 = std::max(HistogramP99(registry, "toolstack.chaos.create_ms"),
                               HistogramP99(registry, "toolstack.xl.create_ms"));
  Check(out, config.create_p99_ms, "create_p99_ms", create_p99);
  Check(out, config.recovery_p99_ms, "recovery_p99_ms",
        HistogramP99(registry, "cluster.recovery_ms"));
  Check(out, config.admission_drift, "admission_drift",
        std::max(GaugeAbs(registry, "cluster.drift_mem_bytes"),
                 GaugeAbs(registry, "cluster.drift_vcpus")));
  Check(out, config.vms_lost, "vms_lost", CounterValue(registry, "cluster.vms_lost"));
  Check(out, config.vms_unrecovered, "vms_unrecovered",
        CounterValue(registry, "cluster.vms_unrecovered"));
  Check(out, config.invariant_failures, "invariant_failures",
        CounterValue(registry, "cluster.invariant_failures"));
  return out;
}

}  // namespace obs
