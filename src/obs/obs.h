// Causal operation tracing + always-on flight recorder: the third
// observability layer, alongside src/trace (default-off timeline) and
// src/metrics (always-on aggregates).
//
// The three layers answer different questions:
//   - trace:   "where did the time go in THIS run" (timeline; off by default
//              because the buffer grows with the run)
//   - metrics: "how much work of each kind happened, and what did the
//              latency distribution look like" (fixed memory, always on)
//   - obs:     "what is the causal story of ONE operation, across nodes"
//              (OpId chains + a bounded ring of recent events, always on)
//
// OpId propagation contract: the layer that *initiates* an operation mints
// an OpRef (`NewOp`) — `cluster::Deploy/Retire/Migrate` mint roots, NodeApi
// jobs mint children of the submitting cluster op, recovery-loop
// evacuations mint children of the original deploy. The op id and its root
// ride in `sim::ExecCtx` next to the trace track, so the toolstack, device
// hotplug and fault paths can stamp events without new parameters. The
// root id doubles as the Chrome trace_event *flow* id: every span of one
// Deploy — including a crash-triggered re-place on another node — shares
// one flow and renders as a single connected arc in Perfetto.
//
// Flight recorder: a fixed-size per-node ring of structured events (op id,
// layer, verb, outcome, sim timestamp). Recording is one clock read plus a
// ring-slot write, charges no simulated work, and is never disabled — the
// rings are dumped to JSON by `bench::FailRun`, by
// `lightvm::VerifyNoLeakedResources` violations and on typed Deploy
// double-failure errors, so every red CI run carries a "last N events per
// node" post-mortem.
//
// Determinism: events are stamped with *simulated* time (the engine
// attaches a clock, same pattern as Logger/Tracer) and op ids come from a
// plain monotonic counter, so same-seed runs produce byte-identical dumps
// after a `Reset()` (which rewinds the counter too).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace obs {

// Causal identity of one control-plane operation. `id` is unique within
// the process; `root` names the chain the op belongs to (== id for root
// ops) and doubles as the exported flow id. id == 0 means "no operation".
struct OpRef {
  int64_t id = 0;
  int64_t root = 0;
  int64_t parent = 0;  // id of the op this one was minted under (0 = root)

  bool valid() const { return id != 0; }
};

// Mints a fresh operation; a child op inherits the parent's root so the
// whole causal chain shares one flow id.
OpRef NewOp(OpRef parent = {});

// Where op ids come from. kGlobal (default) is the single monotonic counter
// above — deterministic only when minting order is deterministic, i.e. on a
// single engine. kPerNode partitions the id space by the minting node so a
// sharded run (sim/shard.h), where nodes mint concurrently on different
// threads, still produces ids that are unique and identical across shard
// counts (each node's sequence depends only on that node's history).
enum class OpIdPolicy { kGlobal, kPerNode };

// Selects the policy and, for kPerNode, pre-sizes the per-node counters
// (node indices 0..max_nodes-1 plus the control pseudo-node -1) so minting
// never reallocates shared state on a shard thread.
void SetOpIdPolicy(OpIdPolicy policy, int max_nodes = 0);
OpIdPolicy GetOpIdPolicy();

// Mints an op attributed to `node` (-1 = cluster control plane). Identical
// to NewOp under kGlobal; call sites that know their node use this form so
// the sharded path needs no further changes.
OpRef NewOpOnNode(int node, OpRef parent = {});

// One flight-recorder entry. `layer`/`verb` are string literals (no
// allocation on the record path).
struct FlightEvent {
  lv::TimePoint ts;
  int64_t op = 0;
  int64_t parent = 0;
  int node = 0;
  const char* layer = "";
  const char* verb = "";
  bool ok = true;
  int64_t arg = 0;  // verb-specific detail: domid, count, duration in ms...
};

class FlightRecorder {
 public:
  static FlightRecorder& Get();

  // Events kept per node; older ones are overwritten.
  static constexpr int kRingCapacity = 128;

  // The engine installs a callback so events carry simulated time (the
  // same pattern as Logger::AttachClock / Tracer::AttachClock).
  using NowFn = lv::TimePoint (*)(void* ctx);
  void AttachClock(NowFn fn, void* ctx) {
    now_fn_ = fn;
    now_ctx_ = ctx;
  }
  void DetachClock() {
    now_fn_ = nullptr;
    now_ctx_ = nullptr;
  }

  // Per-thread clock override for sharded runs — same contract as
  // lv::Logger::AttachThreadClock.
  static void AttachThreadClock(NowFn fn, void* ctx);
  static void DetachThreadClock();

  // Pre-sizes the per-node rings (indices 0..nodes-1). Sharded runs call
  // this up front so concurrent Records never resize the ring vector; each
  // individual ring stays single-writer (its owning shard, or the control
  // shard for the dedicated control ring).
  void EnsureNodes(int nodes);

  // Always on; never charges simulated work.
  void Record(int node, const OpRef& op, const char* layer, const char* verb,
              bool ok, int64_t arg = 0);

  // Oldest-to-newest events currently held for `node` (empty if none).
  std::vector<FlightEvent> NodeEvents(int node) const;
  // Events overwritten so far on `node` (total recorded - ring size).
  int64_t Dropped(int node) const;

  // JSON dump of every node's ring, oldest event first. Timestamps are
  // integer nanoseconds — byte-identical across same-seed runs.
  void WriteJson(std::ostream& out) const;
  bool DumpJson(const std::string& path) const;

  // Where MaybeDump() writes; empty disables it. Benches set this from
  // --flight-out; the failure hooks call MaybeDump() so a dump appears
  // exactly when the run goes red.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }
  void MaybeDump() const;

  // Clears every ring AND rewinds the op-id counter, so a same-seed rerun
  // reproduces a byte-identical dump. The clock and dump path survive.
  void Reset();

 private:
  FlightRecorder() = default;
  lv::TimePoint Now() const;

  struct Ring {
    std::vector<FlightEvent> slots;  // grows to kRingCapacity, then wraps
    size_t next = 0;
    int64_t total = 0;
  };

  NowFn now_fn_ = nullptr;
  void* now_ctx_ = nullptr;
  std::vector<Ring> rings_;  // indexed by node id
  std::string dump_path_;
};

}  // namespace obs
