#include "src/base/result.h"

namespace lv {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case ErrorCode::kConflict:
      return "CONFLICT";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace lv
