// Byte-quantity strong type plus page constants shared by the hypervisor
// memory allocator, guest image descriptions and the migration path.
#pragma once

#include <cstdint>
#include <string>

namespace lv {

// A number of bytes. Signed to make subtraction well-defined.
class Bytes {
 public:
  constexpr Bytes() : b_(0) {}

  static constexpr Bytes Count(int64_t b) { return Bytes(b); }
  static constexpr Bytes KiB(int64_t k) { return Bytes(k * 1024); }
  static constexpr Bytes MiB(int64_t m) { return Bytes(m * 1024 * 1024); }
  static constexpr Bytes GiB(int64_t g) { return Bytes(g * 1024 * 1024 * 1024); }
  static constexpr Bytes KiBF(double k) { return Bytes(static_cast<int64_t>(k * 1024.0)); }
  static constexpr Bytes MiBF(double m) {
    return Bytes(static_cast<int64_t>(m * 1024.0 * 1024.0));
  }

  constexpr int64_t count() const { return b_; }
  constexpr double kib() const { return static_cast<double>(b_) / 1024.0; }
  constexpr double mib() const { return static_cast<double>(b_) / (1024.0 * 1024.0); }
  constexpr double gib() const { return static_cast<double>(b_) / (1024.0 * 1024.0 * 1024.0); }

  constexpr Bytes operator+(Bytes o) const { return Bytes(b_ + o.b_); }
  constexpr Bytes operator-(Bytes o) const { return Bytes(b_ - o.b_); }
  constexpr Bytes operator*(int64_t k) const { return Bytes(b_ * k); }
  constexpr double operator/(Bytes o) const {
    return static_cast<double>(b_) / static_cast<double>(o.b_);
  }
  Bytes& operator+=(Bytes o) {
    b_ += o.b_;
    return *this;
  }
  Bytes& operator-=(Bytes o) {
    b_ -= o.b_;
    return *this;
  }
  constexpr auto operator<=>(const Bytes&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Bytes(int64_t b) : b_(b) {}
  int64_t b_;
};

// x86 page size used by the simulated hypervisor's allocator.
inline constexpr Bytes kPageSize = Bytes::KiB(4);

inline constexpr int64_t PagesFor(Bytes b) {
  return (b.count() + kPageSize.count() - 1) / kPageSize.count();
}

}  // namespace lv
