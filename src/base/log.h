// Leveled logger. The simulator logs with the simulated timestamp when a
// clock is attached, which makes traces directly comparable to the paper's
// timelines. Logging defaults to kWarn so benchmarks stay quiet.
#pragma once

#include <string>

#include "src/base/strings.h"
#include "src/base/time.h"

namespace lv {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // The engine installs a callback so log lines carry simulated time.
  using NowFn = TimePoint (*)(void* ctx);
  void AttachClock(NowFn fn, void* ctx) {
    now_fn_ = fn;
    now_ctx_ = ctx;
  }
  void DetachClock() {
    now_fn_ = nullptr;
    now_ctx_ = nullptr;
  }

  // Per-thread clock override for sharded runs (sim/shard.h): each shard
  // thread attaches its own engine so log lines carry that shard's simulated
  // time. Takes precedence over the process-wide clock while attached.
  static void AttachThreadClock(NowFn fn, void* ctx);
  static void DetachThreadClock();

  void Write(LogLevel level, const char* module, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  NowFn now_fn_ = nullptr;
  void* now_ctx_ = nullptr;
};

#define LV_LOG(lvl, module, ...)                                                \
  do {                                                                          \
    if (static_cast<int>(lvl) >= static_cast<int>(lv::Logger::Get().level())) { \
      lv::Logger::Get().Write(lvl, module, lv::StrFormat(__VA_ARGS__));         \
    }                                                                           \
  } while (0)

#define LV_DEBUG(module, ...) LV_LOG(lv::LogLevel::kDebug, module, __VA_ARGS__)
#define LV_INFO(module, ...) LV_LOG(lv::LogLevel::kInfo, module, __VA_ARGS__)
#define LV_WARN(module, ...) LV_LOG(lv::LogLevel::kWarn, module, __VA_ARGS__)
#define LV_ERROR(module, ...) LV_LOG(lv::LogLevel::kError, module, __VA_ARGS__)

}  // namespace lv
