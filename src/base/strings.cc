#include "src/base/strings.h"

#include <cstdio>

namespace lv {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      end = s.size();
    }
    if (end > start) {
      out.emplace_back(s.substr(start, end - start));
    }
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.push_back(sep);
    }
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace lv
