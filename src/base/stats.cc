#include "src/base/stats.h"

#include <numeric>

namespace lv {

void Accumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

void Samples::Sort() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (xs_.empty()) {
    return 0.0;
  }
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) / static_cast<double>(xs_.size());
}

double Samples::min() const {
  LV_CHECK(!xs_.empty());
  Sort();
  return xs_.front();
}

double Samples::max() const {
  LV_CHECK(!xs_.empty());
  Sort();
  return xs_.back();
}

double Samples::Quantile(double q) const {
  LV_CHECK(!xs_.empty());
  LV_CHECK(q >= 0.0 && q <= 1.0);
  Sort();
  if (xs_.size() == 1) {
    return xs_[0];
  }
  double pos = q * static_cast<double>(xs_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

std::vector<std::pair<double, double>> Samples::Cdf(int points) const {
  std::vector<std::pair<double, double>> out;
  if (xs_.empty() || points <= 0) {
    return out;
  }
  Sort();
  out.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    size_t idx = static_cast<size_t>(frac * static_cast<double>(xs_.size() - 1));
    out.emplace_back(xs_[idx], frac);
  }
  return out;
}

double TimeSeries::MaxValue() const {
  double best = 0.0;
  for (const auto& [t, v] : points_) {
    best = std::max(best, v);
  }
  return best;
}

double TimeSeries::At(TimePoint t) const {
  double v = 0.0;
  for (const auto& [pt, pv] : points_) {
    if (pt > t) {
      break;
    }
    v = pv;
  }
  return v;
}

}  // namespace lv
