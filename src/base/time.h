// Simulated-time primitives used throughout the LightVM reproduction.
//
// The discrete-event simulation measures everything in integer nanoseconds.
// Duration and TimePoint are distinct strong types so that "a point on the
// simulated clock" and "an amount of simulated time" cannot be mixed up.
#pragma once

#include <cstdint>
#include <string>

namespace lv {

// An amount of simulated time. Signed so that subtraction is well-defined.
class Duration {
 public:
  constexpr Duration() : ns_(0) {}

  static constexpr Duration Nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration Micros(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000000); }
  // Fractional factories, useful for cost models expressed in fractional units.
  static constexpr Duration MicrosF(double us) { return Duration(static_cast<int64_t>(us * 1e3)); }
  static constexpr Duration MillisF(double ms) { return Duration(static_cast<int64_t>(ms * 1e6)); }
  static constexpr Duration SecondsF(double s) { return Duration(static_cast<int64_t>(s * 1e9)); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double secs() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  // Scalar multiply/divide go through double; at simulated-time magnitudes
  // (<= hours in ns) the 53-bit mantissa is exact enough.
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) / k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering, e.g. "2.3ms" or "450us".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

// A point on the simulated clock (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() : ns_(0) {}
  static constexpr TimePoint FromNanos(int64_t ns) { return TimePoint(ns); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t ns() const { return ns_; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double secs() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.ns()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.ns()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::Nanos(ns_ - o.ns_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

}  // namespace lv
