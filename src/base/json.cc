#include "src/base/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/base/strings.h"

namespace lv::json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<Member> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const char* Value::TypeName() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

bool Value::AsBool() const {
  LV_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::AsDouble() const {
  LV_CHECK_MSG(is_number(), "JSON value is not a number");
  return num_;
}

int64_t Value::AsInt() const {
  LV_CHECK_MSG(is_number(), "JSON value is not a number");
  LV_CHECK_MSG(num_ == std::floor(num_), "JSON number is not integral");
  return static_cast<int64_t>(num_);
}

const std::string& Value::AsString() const {
  LV_CHECK_MSG(is_string(), "JSON value is not a string");
  return str_;
}

const std::vector<Value>& Value::AsArray() const {
  LV_CHECK_MSG(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<Member>& Value::AsObject() const {
  LV_CHECK_MSG(is_object(), "JSON value is not an object");
  return object_;
}

const Value* Value::Get(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const Member& m : object_) {
    if (m.first == key) {
      return &m.second;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  lv::Result<Value> ParseDocument() {
    SkipSpace();
    auto v = ParseValue();
    if (!v.ok()) {
      return v;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  // 1-based line:column of the current position, for error messages.
  std::string Here(const std::string& what) const {
    int line = 1;
    int col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return lv::StrFormat("%s at line %d column %d", what.c_str(), line, col);
  }

  lv::Error Fail(const std::string& what) const {
    return Err(ErrorCode::kInvalidArgument, Here(what));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (!AtEnd() && Peek() != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  lv::Result<Value> ParseValue() {
    if (AtEnd()) {
      return Fail("unexpected end of input");
    }
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) {
          return s.error();
        }
        return Value::String(*std::move(s));
      }
      case 't':
      case 'f': return ParseKeyword();
      case 'n': {
        auto k = ParseKeyword();
        return k;
      }
      default: return ParseNumber();
    }
  }

  lv::Result<Value> ParseKeyword() {
    auto match = [&](std::string_view word) {
      return text_.substr(pos_, word.size()) == word;
    };
    if (match("true")) {
      pos_ += 4;
      return Value::Bool(true);
    }
    if (match("false")) {
      pos_ += 5;
      return Value::Bool(false);
    }
    if (match("null")) {
      pos_ += 4;
      return Value::Null();
    }
    return Fail("invalid token");
  }

  lv::Result<Value> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') {
      ++pos_;
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("invalid token");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Fail(lv::StrFormat("invalid number '%s'", token.c_str()));
    }
    return Value::Number(d);
  }

  lv::Result<std::string> ParseString() {
    if (AtEnd() || Peek() != '"') {
      return Fail("expected '\"'");
    }
    ++pos_;
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += h - 'A' + 10;
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Specs are ASCII in practice; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("unknown escape");
      }
    }
  }

  lv::Result<Value> ParseArray() {
    ++pos_;  // consume '['
    std::vector<Value> items;
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Value::Array(std::move(items));
    }
    while (true) {
      SkipSpace();
      if (!AtEnd() && Peek() == ']' && !items.empty()) {
        ++pos_;  // trailing comma
        return Value::Array(std::move(items));
      }
      auto v = ParseValue();
      if (!v.ok()) {
        return v;
      }
      items.push_back(*std::move(v));
      SkipSpace();
      if (AtEnd()) {
        return Fail("unterminated array");
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Value::Array(std::move(items));
      }
      return Fail("expected ',' or ']'");
    }
  }

  lv::Result<Value> ParseObject() {
    ++pos_;  // consume '{'
    std::vector<Member> members;
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Value::Object(std::move(members));
    }
    while (true) {
      SkipSpace();
      if (!AtEnd() && Peek() == '}' && !members.empty()) {
        ++pos_;  // trailing comma
        return Value::Object(std::move(members));
      }
      auto key = ParseString();
      if (!key.ok()) {
        return key.error();
      }
      for (const Member& m : members) {
        if (m.first == *key) {
          return Fail(lv::StrFormat("duplicate key '%s'", key->c_str()));
        }
      }
      SkipSpace();
      if (AtEnd() || Peek() != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      auto v = ParseValue();
      if (!v.ok()) {
        return v;
      }
      members.emplace_back(*std::move(key), *std::move(v));
      SkipSpace();
      if (AtEnd()) {
        return Fail("unterminated object");
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Value::Object(std::move(members));
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

lv::Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

lv::Result<Value> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Err(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto v = Parse(buf.str());
  if (!v.ok()) {
    return Err(v.error().code, path + ": " + v.error().message);
  }
  return v;
}

}  // namespace lv::json
