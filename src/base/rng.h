// Deterministic random number generation.
//
// Every stochastic element of the simulation (fork/exec latency jitter,
// random checkpoint victims, client arrival processes) draws from an Rng
// seeded at simulation construction, so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

#include "src/base/assert.h"
#include "src/base/time.h"

namespace lv {

class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    LV_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  // Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  // Bernoulli trial with success probability p.
  bool Chance(double p) { return std::bernoulli_distribution(p)(gen_); }

  // Exponentially distributed duration with the given mean (Poisson arrivals).
  Duration Exponential(Duration mean) {
    double rate = 1.0 / static_cast<double>(mean.ns());
    double ns = std::exponential_distribution<double>(rate)(gen_);
    return Duration::Nanos(static_cast<int64_t>(ns));
  }

  // Normal-distributed duration, truncated at a minimum.
  Duration Normal(Duration mean, Duration stddev, Duration min) {
    double ns = std::normal_distribution<double>(static_cast<double>(mean.ns()),
                                                 static_cast<double>(stddev.ns()))(gen_);
    int64_t v = static_cast<int64_t>(ns);
    return Duration::Nanos(v < min.ns() ? min.ns() : v);
  }

  // Log-normal-ish heavy-tailed duration: mean scale with multiplicative noise.
  Duration Skewed(Duration median, double sigma) {
    double f = std::lognormal_distribution<double>(0.0, sigma)(gen_);
    return Duration::Nanos(static_cast<int64_t>(static_cast<double>(median.ns()) * f));
  }

  // Derives an independent child generator (stable w.r.t. call order).
  Rng Fork() { return Rng(gen_()); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace lv
