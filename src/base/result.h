// Minimal expected<T, Error>-style result type.
//
// The simulated control plane mirrors the errno-style failures of the real
// Xen toolstack (EEXIST from the XenStore, ENOMEM from the hypervisor, EAGAIN
// for transaction conflicts, ...). Result<T> carries either a value or an
// Error with one of those codes plus a human-readable message.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "src/base/assert.h"

namespace lv {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // EINVAL
  kNotFound,          // ENOENT
  kAlreadyExists,     // EEXIST
  kOutOfMemory,       // ENOMEM
  kConflict,          // EAGAIN: transaction conflict, retry
  kPermissionDenied,  // EACCES
  kUnavailable,       // EBUSY / resource exhausted
  kAborted,           // operation cancelled (e.g. domain destroyed mid-boot)
  kTimeout,           // deadline exceeded
  kQuotaExceeded,     // EDQUOT: per-domain resource quota hit
  kInternal,          // invariant violation surfaced as an error
};

// Returns the canonical short name, e.g. "NOT_FOUND".
const char* ErrorCodeName(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string ToString() const { return std::string(ErrorCodeName(code)) + ": " + message; }
};

inline Error Err(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : v_(std::move(error)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    LV_CHECK_MSG(ok(), error().message.c_str());
    return std::get<T>(v_);
  }
  T& value() & {
    LV_CHECK_MSG(ok(), error().message.c_str());
    return std::get<T>(v_);
  }
  T&& value() && {
    LV_CHECK_MSG(ok(), error().message.c_str());
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    LV_CHECK(!ok());
    return std::get<Error>(v_);
  }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : error().code; }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() : ok_(true) {}
  Status(Error error) : ok_(false), error_(std::move(error)) {}  // NOLINT: implicit

  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    LV_CHECK(!ok_);
    return error_;
  }
  ErrorCode code() const { return ok_ ? ErrorCode::kOk : error_.code; }

 private:
  bool ok_;
  Error error_;
};

}  // namespace lv
