#include "src/base/log.h"

#include <cstdio>

namespace lv {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

thread_local Logger::NowFn t_now_fn = nullptr;
thread_local void* t_now_ctx = nullptr;

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::AttachThreadClock(NowFn fn, void* ctx) {
  t_now_fn = fn;
  t_now_ctx = ctx;
}

void Logger::DetachThreadClock() {
  t_now_fn = nullptr;
  t_now_ctx = nullptr;
}

void Logger::Write(LogLevel level, const char* module, const std::string& message) {
  NowFn now_fn = t_now_fn != nullptr ? t_now_fn : now_fn_;
  void* now_ctx = t_now_fn != nullptr ? t_now_ctx : now_ctx_;
  if (now_fn != nullptr) {
    TimePoint now = now_fn(now_ctx);
    std::fprintf(stderr, "[%12.6fms] %-5s %-10s %s\n", now.ms(), LevelName(level), module,
                 message.c_str());
  } else {
    std::fprintf(stderr, "%-5s %-10s %s\n", LevelName(level), module, message.c_str());
  }
}

}  // namespace lv
