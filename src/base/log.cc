#include "src/base/log.h"

#include <cstdio>

namespace lv {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const char* module, const std::string& message) {
  if (now_fn_ != nullptr) {
    TimePoint now = now_fn_(now_ctx_);
    std::fprintf(stderr, "[%12.6fms] %-5s %-10s %s\n", now.ms(), LevelName(level), module,
                 message.c_str());
  } else {
    std::fprintf(stderr, "%-5s %-10s %s\n", LevelName(level), module, message.c_str());
  }
}

}  // namespace lv
