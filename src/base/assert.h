// Fatal-check macros. These are used for programming-error invariants inside
// the simulator; recoverable conditions are reported through lv::Result.
#pragma once

#include <cstdio>
#include <cstdlib>

#define LV_CHECK(cond)                                                                  \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      std::fprintf(stderr, "LV_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)

#define LV_CHECK_MSG(cond, msg)                                                      \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "LV_CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__, \
                   #cond, msg);                                                      \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define LV_UNREACHABLE()                                                            \
  do {                                                                              \
    std::fprintf(stderr, "LV_UNREACHABLE hit at %s:%d\n", __FILE__, __LINE__);      \
    std::abort();                                                                   \
  } while (0)
