#include "src/base/time.h"

#include <cinttypes>
#include <cstdio>

namespace lv {

namespace {

std::string FormatNs(int64_t ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  if (ns < 0) {
    return "-" + FormatNs(-ns);
  }
  if (ns < 1000) {
    snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  } else if (ns < 1000000) {
    snprintf(buf, sizeof(buf), "%.3gus", v / 1e3);
  } else if (ns < 1000000000) {
    snprintf(buf, sizeof(buf), "%.4gms", v / 1e6);
  } else {
    snprintf(buf, sizeof(buf), "%.4gs", v / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const { return FormatNs(ns_); }

std::string TimePoint::ToString() const { return FormatNs(ns_); }

}  // namespace lv
