#include "src/base/units.h"

#include <cinttypes>
#include <cstdio>

namespace lv {

std::string Bytes::ToString() const {
  char buf[64];
  if (b_ < 0) {
    return "-" + Bytes::Count(-b_).ToString();
  }
  if (b_ < 1024) {
    snprintf(buf, sizeof(buf), "%" PRId64 "B", b_);
  } else if (b_ < 1024 * 1024) {
    snprintf(buf, sizeof(buf), "%.4gKiB", kib());
  } else if (b_ < 1024LL * 1024 * 1024) {
    snprintf(buf, sizeof(buf), "%.4gMiB", mib());
  } else {
    snprintf(buf, sizeof(buf), "%.4gGiB", gib());
  }
  return buf;
}

}  // namespace lv
