// Minimal JSON reader for declarative inputs (scenario specs). No new
// dependencies: a strict recursive-descent parser over std::string_view.
//
// Dialect: RFC 8259 JSON plus two conveniences for hand-written spec files —
// `//` line comments and a single trailing comma before `]` or `}`. Numbers
// are parsed as double (the specs carry counts, sizes and seeds that all fit
// a 53-bit mantissa). Objects preserve member order and reject duplicate
// keys, which is what lets the scenario layer report unknown or repeated
// fields precisely instead of silently last-one-wins.
//
// This is a *reader*: the repo's JSON artifacts (BENCH_*.json, traces,
// metrics) are written by purpose-built emitters and never round-trip
// through this type.
//
// Example:
//   auto doc = lv::json::Parse(R"({"nodes": 4, "policy": "first-fit"})");
//   int64_t nodes = doc->Get("nodes")->AsInt();
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/result.h"

namespace lv::json {

class Value;

// Object members, in document order.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value String(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<Member> members);

  Type type() const { return type_; }
  const char* TypeName() const;

  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; LV_CHECK on type mismatch (callers test is_*() first,
  // or go through the checked Result-returning helpers in the spec layer).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;  // checks the double is integral
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;
  const std::vector<Member>& AsObject() const;

  // Object lookup; nullptr when absent (or when this is not an object).
  const Value* Get(std::string_view key) const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

// Parses one JSON document; trailing garbage after the top-level value is an
// error. Error messages carry 1-based line/column.
lv::Result<Value> Parse(std::string_view text);

// Reads and parses a file (error on unreadable path).
lv::Result<Value> ParseFile(const std::string& path);

}  // namespace lv::json
