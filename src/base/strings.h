// Small string helpers: split/join on XenStore-style '/' paths and printf
// formatting into std::string.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace lv {

// Splits on a single character; empty tokens are dropped (XenStore path
// semantics: "/local/domain//3" == "/local/domain/3").
std::vector<std::string> Split(std::string_view s, char sep);

std::string Join(const std::vector<std::string>& parts, char sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

bool HasPrefix(std::string_view s, std::string_view prefix);

}  // namespace lv
