// Statistics helpers used by the benchmark harness and the metrics layer:
// running accumulators, exact-quantile samples, and CDF rendering.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/assert.h"
#include "src/base/time.h"

namespace lv {

// Running mean/min/max/stddev without storing samples, via Welford's online
// algorithm (numerically stable: no catastrophic cancellation for large
// same-sign samples, unlike the naive sum/sum-of-squares form).
class Accumulator {
 public:
  void Add(double x);

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  // Sample (n-1) variance.
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;  // Welford running mean.
  double m2_ = 0.0;    // Welford running sum of squared deviations.
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples and answers exact quantile queries. Suitable for the sample
// counts this repo produces (<= millions).
class Samples {
 public:
  void Add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void AddDuration(Duration d) { Add(d.ms()); }

  int64_t count() const { return static_cast<int64_t>(xs_.size()); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  // q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  // Renders an n-point CDF as (value, cumulative_fraction) pairs.
  std::vector<std::pair<double, double>> Cdf(int points = 50) const;

  const std::vector<double>& values() const { return xs_; }

 private:
  void Sort() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

// A (time, value) series, e.g. "number of concurrently running VMs".
class TimeSeries {
 public:
  void Record(TimePoint t, double value) { points_.emplace_back(t, value); }
  const std::vector<std::pair<TimePoint, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  double MaxValue() const;
  // Value as of time t (step function; 0 before first point).
  double At(TimePoint t) const;

 private:
  std::vector<std::pair<TimePoint, double>> points_;
};

}  // namespace lv
