#include "src/scenario/spec.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/base/strings.h"
#include "src/cluster/placement.h"
#include "src/toolstack/config.h"

namespace scenario {

namespace {

using lv::Err;
using lv::ErrorCode;
using lv::json::Member;
using lv::json::Value;

lv::Error BadField(const std::string& context, const std::string& key,
                   const std::string& what) {
  return Err(ErrorCode::kInvalidArgument,
             lv::StrFormat("%s.%s: %s", context.c_str(), key.c_str(), what.c_str()));
}

lv::Error UnknownKey(const std::string& context, const std::string& key) {
  return Err(ErrorCode::kInvalidArgument,
             lv::StrFormat("unknown key '%s' in %s", key.c_str(), context.c_str()));
}

lv::Result<std::string> WantString(const std::string& context, const Member& m) {
  if (!m.second.is_string()) {
    return BadField(context, m.first,
                    lv::StrFormat("expected string, got %s", m.second.TypeName()));
  }
  return m.second.AsString();
}

lv::Result<double> WantNumber(const std::string& context, const Member& m) {
  if (!m.second.is_number()) {
    return BadField(context, m.first,
                    lv::StrFormat("expected number, got %s", m.second.TypeName()));
  }
  return m.second.AsDouble();
}

lv::Result<int64_t> WantInt(const std::string& context, const Member& m) {
  auto d = WantNumber(context, m);
  if (!d.ok()) {
    return d.error();
  }
  if (*d != std::floor(*d)) {
    return BadField(context, m.first, "expected an integer");
  }
  return static_cast<int64_t>(*d);
}

lv::Result<bool> WantBool(const std::string& context, const Member& m) {
  if (!m.second.is_bool()) {
    return BadField(context, m.first,
                    lv::StrFormat("expected bool, got %s", m.second.TypeName()));
  }
  return m.second.AsBool();
}

lv::Status WantObject(const std::string& context, const Member& m) {
  if (!m.second.is_object()) {
    return BadField(context, m.first,
                    lv::StrFormat("expected object, got %s", m.second.TypeName()));
  }
  return lv::Status::Ok();
}

// Plumbing for the if/else key chains below: assign-or-return-error.
#define LV_SPEC_ASSIGN(dest, expr)     \
  do {                                 \
    auto lv_spec_tmp = (expr);         \
    if (!lv_spec_tmp.ok()) {           \
      return lv_spec_tmp.error();      \
    }                                  \
    (dest) = *std::move(lv_spec_tmp);  \
  } while (0)

lv::Result<HostSpecConfig> ParseHost(const std::string& context, const Value& v) {
  HostSpecConfig host;
  for (const Member& m : v.AsObject()) {
    if (m.first == "preset") {
      LV_SPEC_ASSIGN(host.preset, WantString(context, m));
    } else if (m.first == "cores") {
      LV_SPEC_ASSIGN(host.cores, WantInt(context, m));
    } else if (m.first == "dom0_cores") {
      LV_SPEC_ASSIGN(host.dom0_cores, WantInt(context, m));
    } else if (m.first == "memory_gib") {
      LV_SPEC_ASSIGN(host.memory_gib, WantNumber(context, m));
    } else if (m.first == "dom0_memory_gib") {
      LV_SPEC_ASSIGN(host.dom0_memory_gib, WantNumber(context, m));
    } else {
      return UnknownKey(context, m.first);
    }
  }
  auto resolved = ResolveHostSpec(host);
  if (!resolved.ok()) {
    return resolved.error();
  }
  return host;
}

lv::Result<TopologyConfig> ParseTopology(const Value& v) {
  TopologyConfig topo;
  const std::string context = "topology";
  for (const Member& m : v.AsObject()) {
    if (m.first == "nodes") {
      LV_SPEC_ASSIGN(topo.nodes, WantInt(context, m));
    } else if (m.first == "host") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      LV_SPEC_ASSIGN(topo.host, ParseHost("topology.host", m.second));
    } else if (m.first == "link_gbps") {
      LV_SPEC_ASSIGN(topo.link_gbps, WantNumber(context, m));
    } else if (m.first == "link_rtt_us") {
      LV_SPEC_ASSIGN(topo.link_rtt_us, WantNumber(context, m));
    } else if (m.first == "shards") {
      LV_SPEC_ASSIGN(topo.shards, WantInt(context, m));
    } else {
      return UnknownKey(context, m.first);
    }
  }
  if (topo.nodes < 1) {
    return BadField(context, "nodes", "must be >= 1");
  }
  if (topo.shards < 0) {
    return BadField(context, "shards", "must be >= 0");
  }
  if (topo.shards > 0 && topo.nodes < 2) {
    return BadField(context, "shards",
                    "sharded execution needs a cluster topology (nodes >= 2)");
  }
  if (topo.shards > topo.nodes + 1) {
    return BadField(context, "shards",
                    "at most nodes + 1 shards (one per time domain)");
  }
  if (topo.link_gbps <= 0.0) {
    return BadField(context, "link_gbps", "must be > 0");
  }
  if (topo.link_rtt_us < 0.0) {
    return BadField(context, "link_rtt_us", "must be >= 0");
  }
  return topo;
}

lv::Result<ShellPoolConfig> ParseShellPool(const Value& v) {
  ShellPoolConfig pool;
  const std::string context = "shell_pool";
  for (const Member& m : v.AsObject()) {
    if (m.first == "image") {
      LV_SPEC_ASSIGN(pool.image, WantString(context, m));
    } else if (m.first == "target") {
      LV_SPEC_ASSIGN(pool.target, WantInt(context, m));
    } else if (m.first == "wants_net") {
      bool wants = false;
      LV_SPEC_ASSIGN(wants, WantBool(context, m));
      pool.wants_net = wants;
    } else {
      return UnknownKey(context, m.first);
    }
  }
  if (pool.image.empty()) {
    return BadField(context, "image", "required");
  }
  if (!toolstack::ImageByName(pool.image).ok()) {
    return BadField(context, "image", "unknown image '" + pool.image + "'");
  }
  if (pool.target <= 0) {
    return BadField(context, "target", "must be > 0");
  }
  return pool;
}

lv::Result<GuestGroupConfig> ParseGuestGroup(int index, const Value& v) {
  GuestGroupConfig group;
  const std::string context = lv::StrFormat("workload.guests[%d]", index);
  if (!v.is_object()) {
    return Err(ErrorCode::kInvalidArgument, context + ": expected object");
  }
  for (const Member& m : v.AsObject()) {
    if (m.first == "series") {
      LV_SPEC_ASSIGN(group.series, WantString(context, m));
    } else if (m.first == "image") {
      LV_SPEC_ASSIGN(group.image, WantString(context, m));
    } else if (m.first == "runtime") {
      LV_SPEC_ASSIGN(group.runtime, WantString(context, m));
    } else if (m.first == "count") {
      LV_SPEC_ASSIGN(group.count, WantInt(context, m));
    } else if (m.first == "pad_to_mib") {
      LV_SPEC_ASSIGN(group.pad_to_mib, WantNumber(context, m));
    } else if (m.first == "name_prefix") {
      LV_SPEC_ASSIGN(group.name_prefix, WantString(context, m));
    } else {
      return UnknownKey(context, m.first);
    }
  }
  if (group.image.empty() == group.runtime.empty()) {
    return Err(ErrorCode::kInvalidArgument,
               context + ": exactly one of 'image' and 'runtime' is required");
  }
  if (!group.image.empty() && !toolstack::ImageByName(group.image).ok()) {
    return BadField(context, "image", "unknown image '" + group.image + "'");
  }
  if (!group.runtime.empty() && group.runtime != "docker" &&
      group.runtime != "process") {
    return BadField(context, "runtime", "must be 'docker' or 'process'");
  }
  if (group.count <= 0) {
    return BadField(context, "count", "must be > 0");
  }
  if (group.pad_to_mib < 0.0) {
    return BadField(context, "pad_to_mib", "must be >= 0");
  }
  if (!group.runtime.empty() && group.pad_to_mib > 0.0) {
    return BadField(context, "pad_to_mib", "only applies to VM images");
  }
  if (group.series.empty()) {
    group.series = group.image.empty() ? group.runtime : group.image;
  }
  if (group.name_prefix.empty()) {
    group.name_prefix = group.series + "-";
  }
  return group;
}

lv::Result<faults::FaultEvent> ParseFaultEvent(int index, const Value& v) {
  faults::FaultEvent ev;
  const std::string context = lv::StrFormat("faults.events[%d]", index);
  if (!v.is_object()) {
    return Err(ErrorCode::kInvalidArgument, context + ": expected object");
  }
  bool saw_at = false;
  bool saw_kind = false;
  bool saw_duration = false;
  bool saw_count = false;
  bool saw_peer = false;
  double at_ms = 0.0;
  for (const Member& m : v.AsObject()) {
    if (m.first == "at_ms") {
      LV_SPEC_ASSIGN(at_ms, WantNumber(context, m));
      saw_at = true;
    } else if (m.first == "kind") {
      std::string kind;
      LV_SPEC_ASSIGN(kind, WantString(context, m));
      if (!faults::FaultKindFromName(kind, &ev.kind)) {
        return BadField(context, "kind", "unknown fault kind '" + kind + "'");
      }
      saw_kind = true;
    } else if (m.first == "node") {
      int64_t node = 0;
      LV_SPEC_ASSIGN(node, WantInt(context, m));
      ev.node = static_cast<int>(node);
    } else if (m.first == "peer") {
      int64_t peer = 0;
      LV_SPEC_ASSIGN(peer, WantInt(context, m));
      ev.peer = static_cast<int>(peer);
      saw_peer = true;
    } else if (m.first == "duration_ms") {
      double duration_ms = 0.0;
      LV_SPEC_ASSIGN(duration_ms, WantNumber(context, m));
      ev.duration = lv::Duration::MillisF(duration_ms);
      saw_duration = true;
    } else if (m.first == "count") {
      int64_t count = 0;
      LV_SPEC_ASSIGN(count, WantInt(context, m));
      ev.count = static_cast<int>(count);
      saw_count = true;
    } else {
      return UnknownKey(context, m.first);
    }
  }
  if (!saw_kind) {
    return BadField(context, "kind", "required");
  }
  if (!saw_at || at_ms < 0.0) {
    return BadField(context, "at_ms", "required, must be >= 0");
  }
  ev.at = lv::Duration::MillisF(at_ms);
  if (ev.node < 0) {
    return BadField(context, "node", "must be >= 0");
  }
  const bool wants_duration = ev.kind == faults::FaultKind::kXsRestart ||
                              ev.kind == faults::FaultKind::kHotplugStall ||
                              ev.kind == faults::FaultKind::kLinkPartition;
  if (wants_duration && (!saw_duration || ev.duration.ns() <= 0)) {
    return BadField(context, "duration_ms", "required, must be > 0 for this kind");
  }
  if (!wants_duration && saw_duration) {
    return BadField(context, "duration_ms",
                    "only applies to xenstore-restart, hotplug-stall and "
                    "link-partition");
  }
  const bool wants_count = ev.kind == faults::FaultKind::kHotplugStall ||
                           ev.kind == faults::FaultKind::kCreateFault;
  if (saw_count && !wants_count) {
    return BadField(context, "count",
                    "only applies to hotplug-stall and create-fault");
  }
  if (ev.count < 1) {
    return BadField(context, "count", "must be >= 1");
  }
  if (ev.kind == faults::FaultKind::kLinkPartition) {
    if (!saw_peer) {
      return BadField(context, "peer", "required for link-partition");
    }
    if (ev.peer < 0 || ev.peer == ev.node) {
      return BadField(context, "peer", "must be >= 0 and differ from node");
    }
  } else if (saw_peer) {
    return BadField(context, "peer", "only applies to link-partition");
  }
  return ev;
}

lv::Result<FaultsConfig> ParseFaults(const Value& v) {
  FaultsConfig f;
  const std::string context = "faults";
  for (const Member& m : v.AsObject()) {
    if (m.first == "events") {
      if (!m.second.is_array()) {
        return BadField(context, m.first, "expected array");
      }
      int index = 0;
      for (const Value& item : m.second.AsArray()) {
        auto ev = ParseFaultEvent(index++, item);
        if (!ev.ok()) {
          return ev.error();
        }
        f.plan.events.push_back(*ev);
      }
    } else if (m.first == "random") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      for (const Member& rm : m.second.AsObject()) {
        if (rm.first == "events") {
          int64_t events = 0;
          LV_SPEC_ASSIGN(events, WantInt("faults.random", rm));
          f.random_events = static_cast<int>(events);
        } else if (rm.first == "horizon_ms") {
          LV_SPEC_ASSIGN(f.random_horizon_ms, WantNumber("faults.random", rm));
        } else if (rm.first == "seed") {
          int64_t seed = 0;
          LV_SPEC_ASSIGN(seed, WantInt("faults.random", rm));
          if (seed < 0) {
            return BadField("faults.random", "seed", "must be >= 0");
          }
          f.random_seed = static_cast<uint64_t>(seed);
        } else {
          return UnknownKey("faults.random", rm.first);
        }
      }
      if (f.random_events <= 0) {
        return BadField("faults.random", "events", "must be > 0");
      }
      if (f.random_horizon_ms <= 0.0) {
        return BadField("faults.random", "horizon_ms", "must be > 0");
      }
    } else {
      return UnknownKey(context, m.first);
    }
  }
  if (f.plan.empty() && f.random_events == 0) {
    return BadField(context, "events",
                    "at least one explicit event or a random plan required");
  }
  return f;
}

lv::Result<WorkloadKind> ParseWorkloadKind(const std::string& kind) {
  if (kind == "sequential-boots") {
    return WorkloadKind::kSequentialBoots;
  }
  if (kind == "churn-storm") {
    return WorkloadKind::kChurnStorm;
  }
  if (kind == "fleet-deploy") {
    return WorkloadKind::kFleetDeploy;
  }
  return Err(ErrorCode::kInvalidArgument,
             "workload.kind: unknown kind '" + kind +
                 "' (want sequential-boots, churn-storm or fleet-deploy)");
}

lv::Result<WorkloadConfig> ParseWorkload(const Value& v) {
  WorkloadConfig w;
  const std::string context = "workload";
  const Value* kind = v.Get("kind");
  if (kind == nullptr || !kind->is_string()) {
    return Err(ErrorCode::kInvalidArgument, "workload.kind: required string");
  }
  LV_SPEC_ASSIGN(w.kind, ParseWorkloadKind(kind->AsString()));

  for (const Member& m : v.AsObject()) {
    if (m.first == "kind") {
      continue;
    }
    const bool churn = w.kind == WorkloadKind::kChurnStorm;
    const bool fleet = w.kind == WorkloadKind::kFleetDeploy;
    if (m.first == "guests" && w.kind == WorkloadKind::kSequentialBoots) {
      if (!m.second.is_array()) {
        return BadField(context, m.first, "expected array");
      }
      int index = 0;
      for (const Value& item : m.second.AsArray()) {
        auto group = ParseGuestGroup(index++, item);
        if (!group.ok()) {
          return group.error();
        }
        w.guests.push_back(*std::move(group));
      }
    } else if (m.first == "image" && (churn || fleet)) {
      LV_SPEC_ASSIGN(w.image, WantString(context, m));
    } else if (m.first == "concurrency" && (churn || fleet)) {
      LV_SPEC_ASSIGN(w.concurrency, WantInt(context, m));
    } else if (m.first == "operations" && churn) {
      LV_SPEC_ASSIGN(w.operations, WantInt(context, m));
    } else if (m.first == "max_live" && churn) {
      LV_SPEC_ASSIGN(w.max_live, WantInt(context, m));
    } else if (m.first == "destroy_fraction" && churn) {
      LV_SPEC_ASSIGN(w.destroy_fraction, WantNumber(context, m));
    } else if (m.first == "vms" && fleet) {
      LV_SPEC_ASSIGN(w.vms, WantInt(context, m));
    } else if (m.first == "wait_boot" && fleet) {
      LV_SPEC_ASSIGN(w.wait_boot, WantBool(context, m));
    } else if (m.first == "policies" && fleet) {
      if (!m.second.is_array()) {
        return BadField(context, m.first, "expected array of policy names");
      }
      for (const Value& item : m.second.AsArray()) {
        if (!item.is_string()) {
          return BadField(context, m.first, "expected array of policy names");
        }
        w.policies.push_back(item.AsString());
      }
    } else {
      return Err(ErrorCode::kInvalidArgument,
                 lv::StrFormat("key '%s' in workload is unknown or does not apply "
                               "to kind '%s'",
                               m.first.c_str(), kind->AsString().c_str()));
    }
  }

  switch (w.kind) {
    case WorkloadKind::kSequentialBoots:
      if (w.guests.empty()) {
        return BadField(context, "guests", "at least one guest group required");
      }
      break;
    case WorkloadKind::kChurnStorm:
      if (w.operations <= 0) {
        return BadField(context, "operations", "must be > 0");
      }
      if (w.concurrency <= 0) {
        return BadField(context, "concurrency", "must be > 0");
      }
      if (w.max_live <= 0) {
        return BadField(context, "max_live", "must be > 0");
      }
      if (w.destroy_fraction < 0.0 || w.destroy_fraction >= 1.0) {
        return BadField(context, "destroy_fraction", "must be in [0, 1)");
      }
      break;
    case WorkloadKind::kFleetDeploy:
      if (w.vms <= 0) {
        return BadField(context, "vms", "must be > 0");
      }
      if (w.concurrency <= 0) {
        return BadField(context, "concurrency", "must be > 0");
      }
      if (w.policies.empty()) {
        w.policies.push_back("first-fit");
      }
      for (const std::string& p : w.policies) {
        if (cluster::MakePolicy(p) == nullptr) {
          return BadField(context, "policies", "unknown policy '" + p + "'");
        }
      }
      break;
  }
  if ((w.kind == WorkloadKind::kChurnStorm ||
       w.kind == WorkloadKind::kFleetDeploy) &&
      !toolstack::ImageByName(w.image).ok()) {
    return BadField(context, "image", "unknown image '" + w.image + "'");
  }
  return w;
}

lv::Result<obs::SloConfig> ParseSlo(const Value& v) {
  obs::SloConfig slo;
  const std::string context = "slo";
  // Every bound is an inclusive upper bound on a non-negative observable,
  // so negative bounds can never pass and are rejected as typos.
  auto bound = [&](const Member& m,
                   std::optional<double>* dest) -> lv::Status {
    double value = 0.0;
    auto parsed = WantNumber(context, m);
    if (!parsed.ok()) {
      return parsed.error();
    }
    value = *parsed;
    if (value < 0.0) {
      return BadField(context, m.first, "must be >= 0");
    }
    *dest = value;
    return lv::Status::Ok();
  };
  for (const Member& m : v.AsObject()) {
    lv::Status ok = lv::Status::Ok();
    if (m.first == "create_p99_ms") {
      ok = bound(m, &slo.create_p99_ms);
    } else if (m.first == "recovery_p99_ms") {
      ok = bound(m, &slo.recovery_p99_ms);
    } else if (m.first == "admission_drift") {
      ok = bound(m, &slo.admission_drift);
    } else if (m.first == "vms_lost") {
      ok = bound(m, &slo.vms_lost);
    } else if (m.first == "vms_unrecovered") {
      ok = bound(m, &slo.vms_unrecovered);
    } else if (m.first == "invariant_failures") {
      ok = bound(m, &slo.invariant_failures);
    } else {
      return UnknownKey(context, m.first);
    }
    if (!ok.ok()) {
      return ok.error();
    }
  }
  if (!slo.any()) {
    return BadField(context, "slo", "must set at least one bound");
  }
  return slo;
}

}  // namespace

lv::Result<lightvm::HostSpec> ResolveHostSpec(const HostSpecConfig& config) {
  lightvm::HostSpec spec;
  if (config.preset == "xeon4") {
    spec = lightvm::HostSpec::Xeon4Core();
  } else if (config.preset == "amd64") {
    spec = lightvm::HostSpec::Amd64Core();
  } else if (config.preset == "xeon14") {
    spec = lightvm::HostSpec::Xeon14Core();
  } else {
    return lv::Err(lv::ErrorCode::kInvalidArgument,
                   "unknown host preset '" + config.preset +
                       "' (want xeon4, amd64 or xeon14)");
  }
  if (config.cores > 0) {
    spec.cores = config.cores;
  }
  if (config.dom0_cores > 0) {
    spec.dom0_cores = config.dom0_cores;
  }
  if (config.memory_gib > 0.0) {
    spec.memory = lv::Bytes::MiBF(config.memory_gib * 1024.0);
  }
  if (config.dom0_memory_gib > 0.0) {
    spec.dom0_memory = lv::Bytes::MiBF(config.dom0_memory_gib * 1024.0);
  }
  if (spec.dom0_cores >= spec.cores) {
    return lv::Err(lv::ErrorCode::kInvalidArgument,
                   "host: dom0_cores must be < cores");
  }
  return spec;
}

lv::Result<lightvm::Mechanisms> MechanismsByName(const std::string& name) {
  if (name == "xl") {
    return lightvm::Mechanisms::Xl();
  }
  if (name == "chaos-xs") {
    return lightvm::Mechanisms::ChaosXs();
  }
  if (name == "chaos-xs-split") {
    return lightvm::Mechanisms::ChaosXsSplit();
  }
  if (name == "chaos-noxs") {
    return lightvm::Mechanisms::ChaosNoxs();
  }
  if (name == "lightvm") {
    return lightvm::Mechanisms::LightVm();
  }
  if (name == "lightvm-shared") {
    return lightvm::Mechanisms::LightVmShared();
  }
  return lv::Err(lv::ErrorCode::kInvalidArgument,
                 "unknown mechanisms '" + name +
                     "' (want xl, chaos-xs, chaos-xs-split, chaos-noxs, "
                     "lightvm or lightvm-shared)");
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kSequentialBoots: return "sequential-boots";
    case WorkloadKind::kChurnStorm: return "churn-storm";
    case WorkloadKind::kFleetDeploy: return "fleet-deploy";
  }
  return "?";
}

lv::Result<Spec> ParseSpec(std::string_view text) {
  auto doc = lv::json::Parse(text);
  if (!doc.ok()) {
    return doc.error();
  }
  if (!doc->is_object()) {
    return lv::Err(lv::ErrorCode::kInvalidArgument,
                   "scenario spec: top-level value must be an object");
  }

  Spec spec;
  bool saw_workload = false;
  const std::string context = "scenario";
  for (const Member& m : doc->AsObject()) {
    if (m.first == "name") {
      LV_SPEC_ASSIGN(spec.name, WantString(context, m));
    } else if (m.first == "title") {
      LV_SPEC_ASSIGN(spec.title, WantString(context, m));
    } else if (m.first == "seed") {
      int64_t seed = 0;
      LV_SPEC_ASSIGN(seed, WantInt(context, m));
      if (seed < 0) {
        return BadField(context, "seed", "must be >= 0");
      }
      spec.seed = static_cast<uint64_t>(seed);
    } else if (m.first == "mechanisms") {
      LV_SPEC_ASSIGN(spec.mechanisms, WantString(context, m));
    } else if (m.first == "xenstore_policy") {
      std::string policy;
      LV_SPEC_ASSIGN(policy, WantString(context, m));
      if (!xs::StorePolicyFromName(policy, &spec.xenstore_policy)) {
        return BadField(context, "xenstore_policy",
                        "unknown policy '" + policy + "' (want legacy or indexed)");
      }
    } else if (m.first == "topology") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      LV_SPEC_ASSIGN(spec.topology, ParseTopology(m.second));
    } else if (m.first == "host") {
      // Shorthand for topology.host with nodes = 1.
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      LV_SPEC_ASSIGN(spec.topology.host, ParseHost("host", m.second));
    } else if (m.first == "shell_pool") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      auto pool = ParseShellPool(m.second);
      if (!pool.ok()) {
        return pool.error();
      }
      spec.shell_pool = *std::move(pool);
    } else if (m.first == "faults") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      auto faults = ParseFaults(m.second);
      if (!faults.ok()) {
        return faults.error();
      }
      spec.faults = *std::move(faults);
    } else if (m.first == "slo") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      auto slo = ParseSlo(m.second);
      if (!slo.ok()) {
        return slo.error();
      }
      spec.slo = *std::move(slo);
    } else if (m.first == "workload") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      LV_SPEC_ASSIGN(spec.workload, ParseWorkload(m.second));
      saw_workload = true;
    } else if (m.first == "output") {
      auto ok = WantObject(context, m);
      if (!ok.ok()) {
        return ok.error();
      }
      for (const Member& om : m.second.AsObject()) {
        if (om.first == "sample_points") {
          LV_SPEC_ASSIGN(spec.sample_points, WantInt("output", om));
        } else {
          return UnknownKey("output", om.first);
        }
      }
    } else {
      return UnknownKey(context, m.first);
    }
  }

  if (spec.name.empty()) {
    return BadField(context, "name", "required");
  }
  if (!saw_workload) {
    return BadField(context, "workload", "required");
  }
  if (spec.sample_points <= 0) {
    return BadField("output", "sample_points", "must be > 0");
  }
  auto mechanisms = MechanismsByName(spec.mechanisms);
  if (!mechanisms.ok()) {
    return mechanisms.error();
  }
  const bool has_store =
      mechanisms->toolstack == lightvm::ToolstackKind::kXl || !mechanisms->noxs;
  if (spec.xenstore_policy != xs::StorePolicy::kLegacy && !has_store) {
    return BadField(context, "xenstore_policy",
                    "mechanisms preset '" + spec.mechanisms +
                        "' runs no xenstored (noxs); xenstore_policy does not "
                        "apply");
  }
  if (spec.shell_pool.has_value() && !mechanisms->split) {
    return BadField(context, "shell_pool",
                    "requires a split-toolstack mechanisms preset "
                    "(chaos-xs-split, lightvm or lightvm-shared)");
  }
  if (spec.topology.nodes > 1 &&
      spec.workload.kind != WorkloadKind::kFleetDeploy) {
    return BadField("topology", "nodes",
                    lv::StrFormat("workload '%s' runs on a single node "
                                  "(only fleet-deploy spans a cluster)",
                                  WorkloadKindName(spec.workload.kind)));
  }
  if (spec.workload.kind == WorkloadKind::kFleetDeploy &&
      spec.topology.nodes < 2) {
    return BadField("topology", "nodes", "fleet-deploy needs >= 2 nodes");
  }
  if (spec.faults.has_value()) {
    if (spec.workload.kind == WorkloadKind::kSequentialBoots) {
      return BadField(context, "faults",
                      "applies to churn-storm and fleet-deploy workloads only");
    }
    if (spec.faults->random_events > 0 && spec.topology.nodes < 2) {
      return BadField("faults", "random",
                      "random plans need a cluster (>= 2 nodes)");
    }
    for (size_t i = 0; i < spec.faults->plan.events.size(); ++i) {
      const faults::FaultEvent& ev = spec.faults->plan.events[i];
      const std::string ev_context = lv::StrFormat("faults.events[%d]", (int)i);
      if (ev.node >= spec.topology.nodes) {
        return BadField(ev_context, "node", "out of range for the topology");
      }
      const bool cluster_kind = ev.kind == faults::FaultKind::kNodeCrash ||
                                ev.kind == faults::FaultKind::kNodeReboot ||
                                ev.kind == faults::FaultKind::kLinkPartition;
      if (cluster_kind && spec.topology.nodes < 2) {
        return BadField(ev_context, "kind",
                        "needs a cluster (>= 2 nodes); a single node cannot "
                        "survive losing itself");
      }
      if (ev.kind == faults::FaultKind::kLinkPartition &&
          ev.peer >= spec.topology.nodes) {
        return BadField(ev_context, "peer", "out of range for the topology");
      }
    }
  }
  return spec;
}

lv::Result<Spec> LoadSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return lv::Err(lv::ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto spec = ParseSpec(buf.str());
  if (!spec.ok()) {
    return lv::Err(spec.error().code, path + ": " + spec.error().message);
  }
  return spec;
}

}  // namespace scenario
