// Declarative scenario specs: experiments as data instead of hand-coded
// benchmark binaries.
//
// A spec describes one full-system experiment — topology (how many nodes,
// which host preset), the mechanism configuration, the guest mix and the
// workload that drives it — and `scenario::Run` (runner.h) executes it over
// the same Host / NodeApi / Cluster control plane the dedicated fig*
// binaries use. The committed specs under scenarios/ include equivalents of
// Figure 4 and Figure 10 that are cross-checked against the dedicated
// binaries, so spec-driven runs carry the same paper fidelity.
//
// Parsing is strict: unknown keys, duplicate keys, wrong types and
// out-of-range values are errors, not warnings. A spec that silently
// ignored a typo'd field would run a different experiment than the one the
// author wrote down.
//
// Field reference (every key, defaults, units): EXPERIMENTS.md §"Scenario
// specs".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/result.h"
#include "src/base/units.h"
#include "src/core/host.h"
#include "src/core/mechanisms.h"
#include "src/faults/plan.h"
#include "src/obs/slo.h"
#include "src/xenstore/policy.h"

namespace scenario {

// One machine. `preset` names the paper testbeds ("xeon4", "amd64",
// "xeon14"); the remaining fields override individual preset values when
// positive.
struct HostSpecConfig {
  std::string preset = "xeon4";
  int cores = 0;
  int dom0_cores = 0;
  double memory_gib = 0.0;
  double dom0_memory_gib = 0.0;
};

// How many machines, and what each looks like. nodes == 1 runs workloads on
// a bare Host; nodes > 1 builds a cluster::Cluster with a migration fabric.
struct TopologyConfig {
  int nodes = 1;
  HostSpecConfig host;
  double link_gbps = 10.0;
  double link_rtt_us = 200.0;
  // > 0: run the cluster on a sharded engine group (one time domain per node
  // plus a control domain, spread over this many OS threads) instead of one
  // engine. Requires a cluster topology (nodes >= 2) and a fleet-deploy
  // workload; results are byte-identical to shards = 1 by construction, and
  // the runner proves it with a silent single-shard reference pass.
  int shards = 0;
};

// Pre-created domain shells (split toolstack). `image` names the registry
// flavor whose memory size and network appetite the shells match.
struct ShellPoolConfig {
  std::string image;
  int target = 8;
  std::optional<bool> wants_net;  // default: the image's own wants_net
};

// One entry of the guest mix for sequential-boots workloads: either a VM
// image from the registry or a container/process runtime baseline.
struct GuestGroupConfig {
  std::string series;        // series name in tables + BENCH json
  std::string image;         // VM registry name ("daytime", "tinyx", ...)
  std::string runtime;       // "docker" | "process" (mutually exclusive)
  int count = 0;
  double pad_to_mib = 0.0;   // pad the image to this size (Figure 2 method)
  std::string name_prefix;   // VM naming: <prefix><i>; default "<series>-"
};

// Declarative fault injection (chaos runs): an explicit event list, a seeded
// random plan, or both — merged and time-sorted before arming. Applies to
// churn-storm (single node) and fleet-deploy (cluster) workloads.
struct FaultsConfig {
  faults::FaultPlan plan;         // explicit `events` entries
  int random_events = 0;          // > 0: append FaultPlan::Random(...)
  double random_horizon_ms = 0.0; // horizon of the random plan
  uint64_t random_seed = 0;       // 0 = derive from the spec seed
};

// Workload kinds.
enum class WorkloadKind {
  kSequentialBoots,  // boot group after group, measuring create/boot per VM
  kChurnStorm,       // concurrent create/destroy jobs through NodeApi
  kFleetDeploy,      // cluster-wide deploys through placement + admission
};

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kSequentialBoots;

  // sequential-boots
  std::vector<GuestGroupConfig> guests;

  // churn-storm + fleet-deploy
  std::string image = "daytime";
  int concurrency = 8;

  // churn-storm
  int operations = 0;
  int max_live = 0;              // force destroys once this many VMs run
  double destroy_fraction = 0.0; // probability an op is a destroy

  // fleet-deploy
  int vms = 0;
  bool wait_boot = true;
  std::vector<std::string> policies;  // placement policies to sweep
};

struct Spec {
  std::string name;
  std::string title;
  uint64_t seed = 1;
  std::string mechanisms = "lightvm";  // xl | chaos-xs | chaos-xs-split |
                                       // chaos-noxs | lightvm | lightvm-shared
  // Store implementation for presets that run a xenstored: "legacy" keeps
  // the faithful O(n) paper behaviour (default), "indexed" opts into the
  // fast path. Rejected for storeless presets.
  xs::StorePolicy xenstore_policy = xs::StorePolicy::kLegacy;
  TopologyConfig topology;
  std::optional<ShellPoolConfig> shell_pool;
  WorkloadConfig workload;
  std::optional<FaultsConfig> faults;
  // Declarative SLO gates, evaluated against the metrics registry after the
  // workload by `scenario_runner --check` (obs/slo.h has the key reference).
  std::optional<obs::SloConfig> slo;
  int sample_points = 25;  // printed rows per series (full data in BENCH json)
};

// Parses a spec from JSON text / a file. Strict: every key must be known,
// required fields present, values in range.
lv::Result<Spec> ParseSpec(std::string_view text);
lv::Result<Spec> LoadSpecFile(const std::string& path);

// Resolution helpers shared with the runner and tests.
lv::Result<lightvm::HostSpec> ResolveHostSpec(const HostSpecConfig& config);
lv::Result<lightvm::Mechanisms> MechanismsByName(const std::string& name);
const char* WorkloadKindName(WorkloadKind kind);

}  // namespace scenario
