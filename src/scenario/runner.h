// Executes a scenario::Spec over the same control plane the dedicated
// benchmark binaries drive: plain Hosts for single-node workloads, the
// cluster control plane (placement + admission + concurrent jobs) for
// fleet-deploy.
//
// Determinism contract: a spec plus its seed fully determines the run.
// Every engine the runner creates is seeded from the spec, all randomness
// (churn decisions) comes from a scenario-owned lv::Rng, and the printed
// tables contain only simulated quantities — so same-seed runs are
// byte-identical (enforced by tests/scenario_test.cc). Wall-clock never
// leaks into the output.
//
// Output sinks compose rather than interfere:
//  * the printed tables go to the caller's ostream (stdout for the CLI),
//  * every full-resolution data point is offered to `point_fn` (the
//    scenario_runner binary wires this to bench::Report for BENCH_*.json),
//  * `trace_out` records a Chrome trace_event file via src/trace,
//  * `metrics_out` snapshots the always-on src/metrics registry.
//
// Workloads that boot several independent series (sequential-boots) create
// a fresh engine per series, exactly like the fig* binaries do; with
// tracing enabled the tracer's clock is re-based at each engine epoch
// (trace::Tracer::BeginEpoch) so the written file keeps every epoch in one
// monotonic time domain.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/scenario/spec.h"

namespace scenario {

struct RunOptions {
  std::string trace_out;    // Chrome trace_event JSON ("" = no trace)
  std::string metrics_out;  // metrics-registry snapshot JSON ("" = none)
  std::string flight_out;   // flight-recorder dump written on failure ("" = none)
  // Evaluate the spec's `slo` section after the workload and fail the run on
  // any violation. Off by default so plain runs (and committed baselines)
  // stay byte-identical whether or not a spec carries SLOs.
  bool enforce_slo = false;
};

// Receives every recorded data point: a series name plus named columns in a
// fixed order (the first point of a series fixes its columns).
using PointFn = std::function<void(
    const std::string& series,
    const std::vector<std::pair<std::string, double>>& row)>;

struct RunResult {
  int64_t points = 0;       // data points recorded
  int64_t vms_created = 0;  // successful VM/container/process creations
  int64_t vms_destroyed = 0;
};

// Runs the scenario to completion. Table output goes to `out`; `point_fn`
// may be null. Fails (without exiting) when the workload cannot complete —
// a stalled fleet, a create storm that deadlocks — so callers decide how
// loud to be.
lv::Result<RunResult> Run(const Spec& spec, const RunOptions& options,
                          std::ostream& out, PointFn point_fn = nullptr);

}  // namespace scenario
