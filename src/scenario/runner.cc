#include "src/scenario/runner.h"

#include <algorithm>
#include <optional>
#include <ostream>
#include <thread>
#include <tuple>

#include "src/base/stats.h"
#include "src/base/strings.h"
#include "src/cluster/cluster.h"
#include "src/container/container.h"
#include "src/core/verify.h"
#include "src/faults/injector.h"
#include "src/metrics/export.h"
#include "src/metrics/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/slo.h"
#include "src/sim/run.h"
#include "src/sim/shard.h"
#include "src/toolstack/config.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace scenario {

namespace {

using lv::Err;
using lv::ErrorCode;

// Matches the bench harness's sampling: ~`points` printed rows out of
// [1, total], always including the first and last.
bool Sampled(int i, int total, int points) {
  if (i == 1 || i == total) {
    return true;
  }
  int step = total / points;
  if (step == 0) {
    return true;
  }
  return i % step == 0;
}

// Create-and-boot timing with the exact measurement semantics of the fig*
// binaries (bench::CreateBootTimed): create_ms spans the CreateVm call,
// boot_ms spans unpause to the guest's boot signal, 600 s boot horizon.
struct CreateTiming {
  hv::DomainId domid = hv::kInvalidDomain;
  double create_ms = 0.0;
  double boot_ms = 0.0;
  bool ok = false;
  std::string error;
};

CreateTiming CreateBootTimed(sim::Engine& engine, lightvm::Host& host,
                             toolstack::VmConfig config) {
  CreateTiming timing;
  lv::TimePoint t0 = engine.now();
  auto domid = sim::RunToCompletion(engine, host.CreateVm(std::move(config)));
  if (!domid.ok()) {
    timing.error = domid.error().ToString();
    return timing;
  }
  timing.domid = *domid;
  timing.create_ms = (engine.now() - t0).ms();
  lv::TimePoint t1 = engine.now();
  guests::Guest* guest = host.guest(*domid);
  if (guest != nullptr) {
    bool booted = sim::RunUntilCondition(engine, [&] { return guest->booted(); },
                                         lv::Duration::Seconds(600));
    if (!booted) {
      timing.error = "boot timed out";
      return timing;
    }
    timing.boot_ms = (guest->booted_at() - t1).ms();
  }
  timing.ok = true;
  return timing;
}

// --- Fault plans ------------------------------------------------------------

// Materializes the spec's `faults` section: explicit events plus (for
// clusters) the seeded random plan, merged and time-sorted.
faults::FaultPlan BuildFaultPlan(const Spec& spec) {
  const FaultsConfig& f = *spec.faults;
  faults::FaultPlan plan = f.plan;
  if (f.random_events > 0) {
    uint64_t seed = f.random_seed != 0 ? f.random_seed : spec.seed;
    faults::FaultPlan random = faults::FaultPlan::Random(
        seed, spec.topology.nodes, f.random_events,
        lv::Duration::MillisF(f.random_horizon_ms));
    plan.events.insert(plan.events.end(), random.events.begin(),
                       random.events.end());
  }
  plan.SortByTime();
  return plan;
}

// --- Churn storm ------------------------------------------------------------

struct ChurnOp {
  int op = 0;
  int kind = 0;  // 0 = create, 1 = destroy
  double ms = 0.0;
};

struct ChurnState {
  sim::Engine* engine = nullptr;
  lightvm::Host* host = nullptr;
  const WorkloadConfig* w = nullptr;
  guests::GuestImage image;
  lv::Rng rng{1};
  int next_op = 0;
  int done_ops = 0;
  int64_t creates = 0;
  int64_t destroys = 0;
  int64_t create_failures = 0;
  int64_t destroy_failures = 0;
  std::vector<hv::DomainId> live;
  lv::Samples create_ms;
  lv::Samples destroy_ms;
  std::vector<ChurnOp> oplog;
};

// One churn worker: picks the next operation index and decides create vs
// destroy. Destroy victims are removed from `live` before the first
// suspension point, so concurrent workers never race on one domain (the
// NodeApi per-domain exclusion would reject the loser anyway; removing
// first keeps the storm conflict-free and the accounting simple).
sim::Co<void> ChurnWorker(ChurnState* st) {
  while (st->next_op < st->w->operations) {
    int op = st->next_op++;
    bool destroy =
        !st->live.empty() &&
        (static_cast<int>(st->live.size()) >= st->w->max_live ||
         st->rng.Chance(st->w->destroy_fraction));
    lv::TimePoint t0 = st->engine->now();
    if (destroy) {
      size_t idx = static_cast<size_t>(
          st->rng.Uniform(0, static_cast<int64_t>(st->live.size()) - 1));
      hv::DomainId domid = st->live[idx];
      st->live.erase(st->live.begin() + static_cast<long>(idx));
      lv::Status status = co_await st->host->node().SubmitDestroy(domid).Get();
      double ms = (st->engine->now() - t0).ms();
      if (status.ok()) {
        ++st->destroys;
        st->destroy_ms.Add(ms);
      } else {
        ++st->destroy_failures;
      }
      st->oplog.push_back({op, 1, ms});
    } else {
      toolstack::VmConfig config;
      config.name = lv::StrFormat("churn%d", op);
      config.image = st->image;
      auto domid = co_await st->host->node().SubmitCreate(std::move(config),
                                                          /*wait_boot=*/true)
                       .Get();
      double ms = (st->engine->now() - t0).ms();
      if (domid.ok()) {
        st->live.push_back(*domid);
        ++st->creates;
        st->create_ms.Add(ms);
      } else {
        ++st->create_failures;
      }
      st->oplog.push_back({op, 0, ms});
    }
    ++st->done_ops;
  }
}

// --- Fleet deploy -----------------------------------------------------------

struct FleetState {
  sim::Engine* engine = nullptr;
  cluster::Cluster* cl = nullptr;
  const WorkloadConfig* w = nullptr;
  guests::GuestImage image;
  int next = 0;
  int done = 0;
  bool failed = false;
  // Chaos runs keep going when a deploy fails (nodes are being crashed under
  // the fleet on purpose); failures are counted instead of aborting.
  bool tolerate_failures = false;
  int64_t deploys_failed = 0;
  std::string error;
  std::vector<int> node;
  std::vector<double> deploy_ms;
};

sim::Co<void> FleetWorker(FleetState* st) {
  while (st->next < st->w->vms && !st->failed) {
    int i = st->next++;
    toolstack::VmConfig config;
    config.name = lv::StrFormat("fleet%d", i);
    config.image = st->image;
    lv::TimePoint t0 = st->engine->now();
    auto handle = co_await st->cl->Deploy(std::move(config), st->w->wait_boot);
    if (!handle.ok()) {
      if (st->tolerate_failures) {
        ++st->deploys_failed;
        ++st->done;
        continue;
      }
      st->failed = true;
      st->error = lv::StrFormat("deploy of vm %d failed: %s", i,
                                handle.error().message.c_str());
      ++st->done;
      co_return;
    }
    st->node[static_cast<size_t>(i)] = handle->node;
    st->deploy_ms[static_cast<size_t>(i)] = (st->engine->now() - t0).ms();
    ++st->done;
  }
}

class Runner {
 public:
  Runner(const Spec& spec, const RunOptions& options, std::ostream& out,
         PointFn point_fn)
      : spec_(spec), options_(options), out_(out), point_fn_(std::move(point_fn)) {}

  lv::Result<RunResult> Run() {
    auto host_spec = ResolveHostSpec(spec_.topology.host);
    if (!host_spec.ok()) {
      return host_spec.error();
    }
    host_spec_ = *host_spec;
    auto mechanisms = MechanismsByName(spec_.mechanisms);
    if (!mechanisms.ok()) {
      return mechanisms.error();
    }
    mechanisms_ = *mechanisms;
    mechanisms_.xs_policy = spec_.xenstore_policy;

    const bool tracing = !options_.trace_out.empty();
    if (tracing) {
      trace::Tracer::Get().Enable();
    }
    if (!options_.flight_out.empty()) {
      // Arms the post-mortem path: any MaybeDump() (invariant violation,
      // double deploy failure, SLO miss below) writes the rings here.
      obs::FlightRecorder::Get().set_dump_path(options_.flight_out);
    }

    out_ << "# scenario: " << spec_.name;
    if (!spec_.title.empty()) {
      out_ << " — " << spec_.title;
    }
    out_ << "\n";
    out_ << lv::StrFormat(
        "# seed=%llu mechanisms=%s workload=%s host=%s nodes=%d",
        (unsigned long long)spec_.seed, spec_.mechanisms.c_str(),
        WorkloadKindName(spec_.workload.kind), spec_.topology.host.preset.c_str(),
        spec_.topology.nodes);
    // Only annotate the non-default policy: default-policy stdout must stay
    // byte-identical with the pre-StorePolicy baselines.
    if (spec_.xenstore_policy != xs::StorePolicy::kLegacy) {
      out_ << lv::StrFormat(" xenstore_policy=%s",
                            xs::StorePolicyName(spec_.xenstore_policy));
    }
    out_ << "\n";

    lv::Status status = lv::Status::Ok();
    switch (spec_.workload.kind) {
      case WorkloadKind::kSequentialBoots:
        status = RunSequentialBoots();
        break;
      case WorkloadKind::kChurnStorm:
        status = RunChurnStorm();
        break;
      case WorkloadKind::kFleetDeploy:
        status = RunFleetDeploy();
        break;
    }

    if (tracing) {
      trace::Tracer::Get().Disable();
      lv::Status written =
          trace::WriteChromeTraceFile(trace::Tracer::Get(), options_.trace_out);
      if (status.ok() && !written.ok()) {
        status = written;
      }
    }
    if (!options_.metrics_out.empty()) {
      lv::Status written =
          metrics::WriteJsonFile(metrics::Registry::Get(), options_.metrics_out);
      if (status.ok() && !written.ok()) {
        status = written;
      }
    }
    if (status.ok() && options_.enforce_slo && spec_.slo.has_value()) {
      status = CheckSlos();
    }
    if (!status.ok()) {
      obs::FlightRecorder::Get().MaybeDump();
      return status.error();
    }
    return result_;
  }

  // Evaluates the spec's `slo` section against the always-on metrics
  // registry, prints the verdict table and fails on the first violated
  // bound. Only reached under --check, so plain runs print nothing here.
  lv::Status CheckSlos() {
    std::vector<obs::SloResult> results =
        obs::EvaluateSlos(*spec_.slo, metrics::Registry::Get());
    out_ << "\n## slo\n";
    std::vector<std::pair<std::string, double>> row;
    std::string violated;
    for (const obs::SloResult& r : results) {
      out_ << lv::StrFormat("%-20s %12.3f <= %-12.3f %s\n", r.key.c_str(),
                            r.value, r.bound, r.ok ? "ok" : "VIOLATED");
      row.emplace_back(r.key, r.value);
      row.emplace_back(r.key + "_bound", r.bound);
      row.emplace_back(r.key + "_ok", r.ok ? 1.0 : 0.0);
      if (!r.ok && violated.empty()) {
        violated = lv::StrFormat("slo violated: %s = %.3f > %.3f",
                                 r.key.c_str(), r.value, r.bound);
      }
    }
    Point("slo", row);
    if (!violated.empty()) {
      return Err(ErrorCode::kInternal, violated);
    }
    return lv::Status::Ok();
  }

 private:
  void Point(const std::string& series,
             const std::vector<std::pair<std::string, double>>& row) {
    if (point_fn_) {
      point_fn_(series, row);
    }
    ++result_.points;
  }

  // Sequential-boots builds a fresh engine per series (matching the fig*
  // binaries). Each fresh engine restarts simulated time at zero, so
  // re-base the tracer's clock first: the exported file keeps every
  // epoch's events in one monotonic simulated-time domain.
  void NewEngineEpoch() {
    if (!options_.trace_out.empty()) {
      trace::Tracer::Get().BeginEpoch();
    }
  }

  // Lets background activity kicked off by the last measured operation —
  // chiefly shell-pool refills — run to a quiet point so their spans close
  // before the engine is torn down; an exported trace must not end with
  // open spans. Bounded because guests with periodic services keep the
  // event queue non-empty forever. All measurements are captured before
  // this runs, so it can only affect the exported trace/metrics tails.
  void Settle(sim::Engine& engine) {
    sim::RunUntilCondition(engine, [] { return false; },
                           lv::Duration::Seconds(30));
  }

  // Chaos reporting (only emitted when the spec has a `faults` section, so
  // fault-free runs stay byte-identical with their committed baselines).
  void PrintFaultLog(const faults::FaultInjector& injector) {
    out_ << lv::StrFormat("\n## faults (%lld injected)\n",
                          (long long)injector.injected());
    for (const std::string& line : injector.log()) {
      if (!line.empty()) {  // unfired events hold empty pre-sized slots
        out_ << line << "\n";
      }
    }
  }

  void PrintLeakCheck(lightvm::Host& host, int node) {
    lv::Status ok = lightvm::VerifyNoLeakedResources(host);
    out_ << lv::StrFormat("leak_check node%d: %s\n", node,
                          ok.ok() ? "ok" : ok.error().message.c_str());
  }

  void SetupShellPool(lightvm::Host& host) {
    if (!spec_.shell_pool.has_value()) {
      return;
    }
    const ShellPoolConfig& pool = *spec_.shell_pool;
    auto image = toolstack::ImageByName(pool.image);
    LV_CHECK(image.ok());  // validated at parse time
    bool wants_net = pool.wants_net.value_or(image->wants_net);
    host.AddShellFlavor(image->memory, wants_net, pool.target);
    host.PrefillShellPool();
  }

  lv::Status RunSequentialBoots() {
    for (const GuestGroupConfig& group : spec_.workload.guests) {
      if (group.runtime.empty()) {
        RunVmGroup(group);
      } else if (group.runtime == "docker") {
        RunDockerGroup(group);
      } else {
        RunProcessGroup(group);
      }
    }
    return lv::Status::Ok();
  }

  void RunVmGroup(const GuestGroupConfig& group) {
    NewEngineEpoch();
    sim::Engine engine(spec_.seed);
    lightvm::Host host(&engine, host_spec_, mechanisms_);
    SetupShellPool(host);
    auto base = toolstack::ImageByName(group.image);
    LV_CHECK(base.ok());  // validated at parse time
    guests::GuestImage image = *base;
    if (group.pad_to_mib > 0.0) {
      image = guests::PaddedImage(image, lv::Bytes::MiBF(group.pad_to_mib));
    }
    out_ << lv::StrFormat("\n## %s (%s, up to %d guests)\n", group.series.c_str(),
                          group.image.c_str(), group.count);
    out_ << lv::StrFormat("%-8s %-14s %s\n", "n", "create_ms", "boot_ms");
    for (int i = 1; i <= group.count; ++i) {
      toolstack::VmConfig config;
      config.name = lv::StrFormat("%s%d", group.name_prefix.c_str(), i);
      config.image = image;
      CreateTiming t = CreateBootTimed(engine, host, std::move(config));
      if (!t.ok) {
        out_ << lv::StrFormat("# stopped at n=%d (%s)\n", i, t.error.c_str());
        break;
      }
      ++result_.vms_created;
      Point(group.series, {{"n", static_cast<double>(i)},
                           {"create_ms", t.create_ms},
                           {"boot_ms", t.boot_ms}});
      if (Sampled(i, group.count, spec_.sample_points)) {
        out_ << lv::StrFormat("%-8d %-14.2f %.2f\n", i, t.create_ms, t.boot_ms);
      }
    }
    Settle(engine);
  }

  void RunDockerGroup(const GuestGroupConfig& group) {
    NewEngineEpoch();
    sim::Engine engine(spec_.seed);
    sim::CpuScheduler cpu(&engine, host_spec_.cores);
    hv::MemoryPool memory(host_spec_.memory);
    container::DockerRuntime docker(&engine, &memory);
    sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
    out_ << lv::StrFormat("\n## %s (docker, up to %d containers)\n",
                          group.series.c_str(), group.count);
    out_ << lv::StrFormat("%-8s %s\n", "n", "run_ms");
    for (int i = 1; i <= group.count; ++i) {
      lv::TimePoint t0 = engine.now();
      auto id = sim::RunToCompletion(engine,
                                     docker.Run(ctx, container::MinimalContainer()));
      if (!id.ok()) {
        out_ << lv::StrFormat("# stopped at n=%d (%s)\n", i,
                              lv::ErrorCodeName(id.code()));
        break;
      }
      ++result_.vms_created;
      double run_ms = (engine.now() - t0).ms();
      Point(group.series, {{"n", static_cast<double>(i)}, {"run_ms", run_ms}});
      if (Sampled(i, group.count, spec_.sample_points)) {
        out_ << lv::StrFormat("%-8d %.2f\n", i, run_ms);
      }
    }
  }

  void RunProcessGroup(const GuestGroupConfig& group) {
    NewEngineEpoch();
    sim::Engine engine(spec_.seed);
    sim::CpuScheduler cpu(&engine, host_spec_.cores);
    hv::MemoryPool memory(host_spec_.memory);
    container::ProcessRuntime procs(&engine, &memory);
    sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
    out_ << lv::StrFormat("\n## %s (fork/exec, up to %d processes)\n",
                          group.series.c_str(), group.count);
    out_ << lv::StrFormat("%-8s %s\n", "n", "fork_exec_ms");
    for (int i = 1; i <= group.count; ++i) {
      lv::TimePoint t0 = engine.now();
      (void)sim::RunToCompletion(engine, procs.ForkExec(ctx));
      ++result_.vms_created;
      double ms = (engine.now() - t0).ms();
      Point(group.series, {{"n", static_cast<double>(i)}, {"fork_exec_ms", ms}});
      if (Sampled(i, group.count, spec_.sample_points)) {
        out_ << lv::StrFormat("%-8d %.2f\n", i, ms);
      }
    }
  }

  lv::Status RunChurnStorm() {
    NewEngineEpoch();
    const WorkloadConfig& w = spec_.workload;
    sim::Engine engine(spec_.seed);
    lightvm::Host host(&engine, host_spec_, mechanisms_);
    SetupShellPool(host);
    auto image = toolstack::ImageByName(w.image);
    LV_CHECK(image.ok());  // validated at parse time

    ChurnState st;
    st.engine = &engine;
    st.host = &host;
    st.w = &w;
    st.image = *image;
    st.rng = lv::Rng(spec_.seed);

    // Declarative fault injection (single-node kinds only; the parser
    // rejects node-crash/reboot/partition for one-node topologies).
    std::optional<faults::FaultInjector> injector;
    if (spec_.faults.has_value()) {
      faults::FaultTargets targets;
      targets.restart_xenstore = [&host](int, lv::Duration downtime) {
        if (host.store() != nullptr) {
          host.store()->InjectRestart(downtime);
        }
      };
      targets.stall_hotplug = [&host](int, lv::Duration stall, int count) {
        host.fault_hooks().hotplug_stall = stall;
        host.fault_hooks().stall_next_hotplugs += count;
      };
      targets.fail_creates = [&host](int, int count) {
        host.fault_hooks().fail_next_creates += count;
      };
      injector.emplace(&engine, BuildFaultPlan(spec_), std::move(targets));
      injector->Arm();
    }

    out_ << lv::StrFormat(
        "\n## churn storm (%d ops, concurrency %d, max_live %d, "
        "destroy_fraction %.2f)\n",
        w.operations, w.concurrency, w.max_live, w.destroy_fraction);

    lv::TimePoint start = engine.now();
    for (int i = 0; i < w.concurrency; ++i) {
      engine.Spawn(ChurnWorker(&st));
    }
    bool finished =
        sim::RunUntilCondition(engine, [&] { return st.done_ops >= w.operations; },
                               lv::Duration::Seconds(36000));
    if (!finished) {
      return Err(ErrorCode::kInternal,
                 lv::StrFormat("churn storm stalled at %d/%d operations",
                               st.done_ops, w.operations));
    }
    double makespan_s = (engine.now() - start).secs();
    Settle(engine);

    std::sort(st.oplog.begin(), st.oplog.end(),
              [](const ChurnOp& a, const ChurnOp& b) { return a.op < b.op; });
    out_ << lv::StrFormat("%-8s %-8s %s\n", "op", "kind", "ms");
    int total = static_cast<int>(st.oplog.size());
    for (int i = 0; i < total; ++i) {
      const ChurnOp& op = st.oplog[static_cast<size_t>(i)];
      Point("ops", {{"op", static_cast<double>(op.op)},
                    {"kind", static_cast<double>(op.kind)},
                    {"ms", op.ms}});
      if (Sampled(i + 1, total, spec_.sample_points)) {
        out_ << lv::StrFormat("%-8d %-8s %.2f\n", op.op,
                              op.kind == 0 ? "create" : "destroy", op.ms);
      }
    }

    result_.vms_created += st.creates;
    result_.vms_destroyed += st.destroys;
    auto q = [](const lv::Samples& s, double p) {
      return s.empty() ? 0.0 : s.Quantile(p);
    };
    out_ << lv::StrFormat(
        "creates=%lld destroys=%lld create_failures=%lld destroy_failures=%lld "
        "live=%lld\n",
        (long long)st.creates, (long long)st.destroys,
        (long long)st.create_failures, (long long)st.destroy_failures,
        (long long)host.num_vms());
    out_ << lv::StrFormat("create_ms: p50=%.2f p99=%.2f  destroy_ms: p50=%.2f "
                          "p99=%.2f  makespan_s=%.2f\n",
                          q(st.create_ms, 0.5), q(st.create_ms, 0.99),
                          q(st.destroy_ms, 0.5), q(st.destroy_ms, 0.99),
                          makespan_s);
    Point("summary", {{"create_p50_ms", q(st.create_ms, 0.5)},
                      {"create_p99_ms", q(st.create_ms, 0.99)},
                      {"destroy_p50_ms", q(st.destroy_ms, 0.5)},
                      {"destroy_p99_ms", q(st.destroy_ms, 0.99)},
                      {"makespan_s", makespan_s},
                      {"creates", static_cast<double>(st.creates)},
                      {"destroys", static_cast<double>(st.destroys)},
                      {"failures", static_cast<double>(st.create_failures +
                                                       st.destroy_failures)}});
    if (injector.has_value()) {
      PrintFaultLog(*injector);
      const faults::FaultHooks& hooks = host.fault_hooks();
      int64_t xs_restarts =
          host.store() != nullptr ? host.store()->stats().restarts : 0;
      out_ << lv::StrFormat(
          "injected_create_faults=%lld injected_hotplug_stalls=%lld "
          "xs_restarts=%lld\n",
          (long long)hooks.injected_create_failures,
          (long long)hooks.injected_hotplug_stalls, (long long)xs_restarts);
      PrintLeakCheck(host, 0);
      Point("faults",
            {{"injected", static_cast<double>(injector->injected())},
             {"create_faults", static_cast<double>(hooks.injected_create_failures)},
             {"hotplug_stalls", static_cast<double>(hooks.injected_hotplug_stalls)},
             {"xs_restarts", static_cast<double>(xs_restarts)}});
    }
    return lv::Status::Ok();
  }

  lv::Status RunFleetDeploy() {
    const WorkloadConfig& w = spec_.workload;
    for (const std::string& policy : w.policies) {
      lv::Status status = spec_.topology.shards > 0
                              ? RunShardedFleetPolicy(policy)
                              : RunFleetPolicy(policy);
      if (!status.ok()) {
        return status;
      }
    }
    return lv::Status::Ok();
  }

  // Sharded fleet deploy: the same workload on a ShardGroup — one time
  // domain per node plus a control domain, spread over topology.shards OS
  // threads. Runs the seed single-sharded first (silently) and fails the
  // scenario if the parallel pass places a single VM differently: the
  // determinism proof rides along with every CI run of the spec.
  lv::Status RunShardedFleetPolicy(const std::string& policy_name) {
    obs::SetOpIdPolicy(obs::OpIdPolicy::kPerNode, spec_.topology.nodes);
    ShardedPass ref, par;
    lv::Status status =
        RunShardedFleetPass(policy_name, /*shards=*/1, /*emit=*/false, &ref);
    if (status.ok()) {
      status = RunShardedFleetPass(policy_name, spec_.topology.shards,
                                   /*emit=*/true, &par);
    }
    obs::SetOpIdPolicy(obs::OpIdPolicy::kGlobal);
    if (!status.ok()) {
      return status;
    }
    if (par.hash != ref.hash) {
      return Err(ErrorCode::kInternal,
                 lv::StrFormat("%s: sharded placement hash %016llx != "
                               "single-shard reference %016llx",
                               policy_name.c_str(), (unsigned long long)par.hash,
                               (unsigned long long)ref.hash));
    }
    out_ << "reference: single-shard placement hash match ok\n";
    Point("parallel_summary",
          {{"shards", static_cast<double>(spec_.topology.shards)},
           {"speedup_x", par.wall_s > 0 ? ref.wall_s / par.wall_s : 0.0},
           {"cores", static_cast<double>(std::thread::hardware_concurrency())}});
    return lv::Status::Ok();
  }

  struct ShardedPass {
    uint64_t hash = 0;
    double wall_s = 0.0;
  };

  lv::Status RunShardedFleetPass(const std::string& policy_name, int shards,
                                 bool emit, ShardedPass* res) {
    NewEngineEpoch();
    // Both passes start from zeroed global state so the silent reference run
    // leaves no trace in the metrics snapshot or the flight rings.
    metrics::Registry::Get().ResetAll();
    obs::FlightRecorder::Get().Reset();
    const WorkloadConfig& w = spec_.workload;
    sim::ShardGroup group(spec_.seed, spec_.topology.nodes + 1, shards,
                          lv::Duration::Micros(50));
    cluster::ClusterSpec cspec;
    cspec.num_nodes = spec_.topology.nodes;
    cspec.node = host_spec_;
    cspec.mechanisms = mechanisms_;
    cspec.link_gbps = spec_.topology.link_gbps;
    cspec.link_rtt = lv::Duration::MicrosF(spec_.topology.link_rtt_us);
    auto policy = cluster::MakePolicy(policy_name);
    LV_CHECK(policy != nullptr);  // validated at parse time
    cluster::Cluster cl(&group, cspec, std::move(policy));
    for (int n = 0; n < cspec.num_nodes; ++n) {
      if (spec_.shell_pool.has_value()) {
        const ShellPoolConfig& pool = *spec_.shell_pool;
        auto pool_image = toolstack::ImageByName(pool.image);
        LV_CHECK(pool_image.ok());
        cl.host(n).AddShellFlavor(pool_image->memory,
                                  pool.wants_net.value_or(pool_image->wants_net),
                                  pool.target);
        // No PrefillShellPool(): it free-runs the node engine standalone,
        // which advances different clocks under different shard counts. The
        // chaos daemon stocks the pool inside the group run instead.
      }
    }
    auto image = toolstack::ImageByName(w.image);
    LV_CHECK(image.ok());

    std::optional<faults::FaultInjector> injector;
    if (spec_.faults.has_value()) {
      cl.StartHealthMonitor();
      faults::FaultTargets targets;
      // Node-state sinks run on the node's own engine (resolver below);
      // crash goes through the node-side entry point that also maintains
      // the control-domain mirrors.
      targets.crash_node = [&cl](int node) { cl.NodeSideCrash(node); };
      targets.reboot_node = [&cl](int node) { cl.RequestReboot(node); };
      targets.restart_xenstore = [&cl](int node, lv::Duration downtime) {
        if (cl.host(node).store() != nullptr) {
          cl.host(node).store()->InjectRestart(downtime);
        }
      };
      targets.stall_hotplug = [&cl](int node, lv::Duration stall, int count) {
        cl.host(node).fault_hooks().hotplug_stall = stall;
        cl.host(node).fault_hooks().stall_next_hotplugs += count;
      };
      targets.partition_link = [&cl](int node, int peer, lv::Duration length) {
        cl.link(node, peer)->Partition(length);
      };
      targets.fail_creates = [&cl](int node, int count) {
        cl.host(node).fault_hooks().fail_next_creates += count;
      };
      injector.emplace(&cl.control_engine(), BuildFaultPlan(spec_),
                       std::move(targets));
      injector->set_engine_resolver([&group, &cl](const faults::FaultEvent& ev) {
        switch (ev.kind) {
          case faults::FaultKind::kNodeCrash:
          case faults::FaultKind::kXsRestart:
          case faults::FaultKind::kHotplugStall:
          case faults::FaultKind::kCreateFault:
            return &group.domain_engine(ev.node);
          case faults::FaultKind::kNodeReboot:
          case faults::FaultKind::kLinkPartition:
            return &cl.control_engine();
        }
        return &cl.control_engine();
      });
      injector->set_ring_resolver([&cl](const faults::FaultEvent& ev) {
        switch (ev.kind) {
          case faults::FaultKind::kNodeReboot:
          case faults::FaultKind::kLinkPartition:
            return cl.control_domain();  // sink runs on the control shard
          default:
            return ev.node;
        }
      });
      injector->Arm();
    }

    FleetState st;
    st.engine = &cl.control_engine();
    st.cl = &cl;
    st.w = &w;
    st.image = *image;
    st.tolerate_failures = spec_.faults.has_value();
    st.node.assign(static_cast<size_t>(w.vms), -1);
    st.deploy_ms.assign(static_cast<size_t>(w.vms), 0.0);

    lv::TimePoint start = cl.control_engine().now();
    for (int i = 0; i < w.concurrency; ++i) {
      cl.control_engine().Spawn(FleetWorker(&st));
    }
    bool finished =
        group.RunUntil([&] { return st.done >= w.vms || st.failed; },
                       lv::Duration::Seconds(36000));
    if (st.failed) {
      return Err(ErrorCode::kInternal, policy_name + ": " + st.error);
    }
    if (!finished) {
      return Err(ErrorCode::kInternal,
                 lv::StrFormat("%s: sharded fleet stalled at %d/%d VMs",
                               policy_name.c_str(), st.done, w.vms));
    }
    // At an epoch boundary every engine has processed exactly the events
    // below the epoch target, so the group-wide clock maximum — unlike any
    // single engine's clock — is independent of the domain→shard mapping.
    double makespan_s = (group.max_now() - start).secs();
    group.RunToQuiescence(lv::Duration::Seconds(30));

    cluster::Cluster::Drift quiesced = cl.AdmissionDrift();
    metrics::GetGauge("cluster.drift_mem_bytes")
        .Set(static_cast<double>(quiesced.memory.count()));
    metrics::GetGauge("cluster.drift_vcpus")
        .Set(static_cast<double>(quiesced.vcpus));

    std::vector<int64_t> per_node(static_cast<size_t>(cspec.num_nodes), 0);
    lv::Samples lat;
    int64_t deployed = 0;
    uint64_t placement_hash = 1469598103934665603ull;  // FNV offset basis.
    for (int i = 0; i < w.vms; ++i) {
      int node = st.node[static_cast<size_t>(i)];
      if (node >= 0) {
        ++per_node[static_cast<size_t>(node)];
        lat.Add(st.deploy_ms[static_cast<size_t>(i)]);
        ++deployed;
      }
      placement_hash ^= static_cast<uint64_t>(node) +
                        static_cast<uint64_t>(i) * 31ull;
      placement_hash *= 1099511628211ull;  // FNV prime.
      if (emit) {
        Point(policy_name,
              {{"i", static_cast<double>(i)},
               {"node", static_cast<double>(node)},
               {"deploy_ms", st.deploy_ms[static_cast<size_t>(i)]}});
      }
    }
    res->hash = placement_hash;
    res->wall_s = group.run_wall_s();
    if (!emit) {
      return lv::Status::Ok();
    }
    result_.vms_created += deployed;
    int64_t jobs_started = 0;
    int64_t jobs_failed = 0;
    for (int n = 0; n < cspec.num_nodes; ++n) {
      jobs_started += cl.host(n).node().jobs_started();
      jobs_failed += cl.host(n).node().jobs_failed();
    }
    uint64_t events = 0;
    for (const sim::ShardStats& s : group.shard_stats()) {
      events += s.processed;
    }

    out_ << lv::StrFormat("\n## policy: %s (parallel control plane)\n",
                          policy_name.c_str());
    out_ << "placement:";
    for (int n = 0; n < cspec.num_nodes; ++n) {
      out_ << lv::StrFormat(" node%d=%lld", n,
                            (long long)per_node[static_cast<size_t>(n)]);
    }
    out_ << lv::StrFormat("  hash=%016llx\n", (unsigned long long)placement_hash);
    out_ << lv::StrFormat("deploy_ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
                          lat.Quantile(0.5), lat.Quantile(0.9), lat.Quantile(0.99),
                          lat.max());
    // Everything printed is invariant under the shard count: simulated time,
    // placements, epoch/message totals. Wall-clock utilization and speedup
    // are machine-dependent, so they go only into the JSON artifact (as
    // columns the perf gate does not compare).
    out_ << lv::StrFormat(
        "makespan_s=%.2f  vms=%lld  jobs_started=%lld  jobs_failed=%lld  "
        "epochs=%llu  messages=%llu  events=%llu\n",
        makespan_s, (long long)cl.total_vms(), (long long)jobs_started,
        (long long)jobs_failed, (unsigned long long)group.epochs(),
        (unsigned long long)group.messages_delivered(),
        (unsigned long long)events);
    double wall = group.run_wall_s() > 0 ? group.run_wall_s() : 1e-9;
    for (size_t s = 0; s < group.shard_stats().size(); ++s) {
      const sim::ShardStats& stats = group.shard_stats()[s];
      Point("parallel", {{"shard", static_cast<double>(s)},
                         {"events", static_cast<double>(stats.processed)},
                         {"busy_frac", stats.busy_s / wall},
                         {"stall_frac", stats.stall_s / wall}});
    }
    Point("summary", {{"deploy_p50_ms", lat.Quantile(0.5)},
                      {"deploy_p99_ms", lat.Quantile(0.99)},
                      {"deploy_max_ms", lat.max()},
                      {"makespan_s", makespan_s},
                      {"vms", static_cast<double>(cl.total_vms())},
                      {"jobs_failed", static_cast<double>(jobs_failed)}});
    if (injector.has_value()) {
      PrintFaultLog(*injector);
      lv::Samples recovery;
      for (double ms : cl.recovery_ms()) {
        recovery.Add(ms);
      }
      cluster::Cluster::Drift drift = cl.AdmissionDrift();
      out_ << lv::StrFormat(
          "node_failures=%lld vms_lost=%lld vms_recovered=%lld "
          "vms_unrecovered=%lld deploys_failed=%lld\n",
          (long long)cl.node_failures(), (long long)cl.vms_lost(),
          (long long)cl.vms_recovered(), (long long)cl.vms_unrecovered(),
          (long long)st.deploys_failed);
      out_ << lv::StrFormat(
          "recovery_ms: p50=%.2f p99=%.2f  deploy_retries=%lld "
          "replacements=%lld\n",
          recovery.empty() ? 0.0 : recovery.Quantile(0.5),
          recovery.empty() ? 0.0 : recovery.Quantile(0.99),
          (long long)cl.deploy_retries(), (long long)cl.deploy_replacements());
      out_ << lv::StrFormat(
          "invariant_failures=%lld drift_mem_bytes=%lld drift_vcpus=%lld\n",
          (long long)cl.invariant_failures(), (long long)drift.memory.count(),
          (long long)drift.vcpus);
      for (int n = 0; n < cspec.num_nodes; ++n) {
        PrintLeakCheck(cl.host(n), n);
      }
      Point("faults",
            {{"injected", static_cast<double>(injector->injected())},
             {"node_failures", static_cast<double>(cl.node_failures())},
             {"vms_lost", static_cast<double>(cl.vms_lost())},
             {"vms_recovered", static_cast<double>(cl.vms_recovered())},
             {"vms_unrecovered", static_cast<double>(cl.vms_unrecovered())},
             {"recovery_p50_ms", recovery.empty() ? 0.0 : recovery.Quantile(0.5)},
             {"recovery_p99_ms", recovery.empty() ? 0.0 : recovery.Quantile(0.99)},
             {"deploy_retries", static_cast<double>(cl.deploy_retries())},
             {"replacements", static_cast<double>(cl.deploy_replacements())},
             {"invariant_failures", static_cast<double>(cl.invariant_failures())},
             {"drift_mem_bytes", static_cast<double>(drift.memory.count())},
             {"drift_vcpus", static_cast<double>(drift.vcpus)}});
    }
    return lv::Status::Ok();
  }

  lv::Status RunFleetPolicy(const std::string& policy_name) {
    NewEngineEpoch();
    const WorkloadConfig& w = spec_.workload;
    sim::Engine engine(spec_.seed);
    cluster::ClusterSpec cspec;
    cspec.num_nodes = spec_.topology.nodes;
    cspec.node = host_spec_;
    cspec.mechanisms = mechanisms_;
    cspec.link_gbps = spec_.topology.link_gbps;
    cspec.link_rtt = lv::Duration::MicrosF(spec_.topology.link_rtt_us);
    auto policy = cluster::MakePolicy(policy_name);
    LV_CHECK(policy != nullptr);  // validated at parse time
    cluster::Cluster cl(&engine, cspec, std::move(policy));
    for (int n = 0; n < cspec.num_nodes; ++n) {
      if (spec_.shell_pool.has_value()) {
        const ShellPoolConfig& pool = *spec_.shell_pool;
        auto image = toolstack::ImageByName(pool.image);
        LV_CHECK(image.ok());
        cl.host(n).AddShellFlavor(image->memory,
                                  pool.wants_net.value_or(image->wants_net),
                                  pool.target);
        cl.host(n).PrefillShellPool();
      }
    }
    auto image = toolstack::ImageByName(w.image);
    LV_CHECK(image.ok());

    // Declarative fault injection: arm the plan against this cluster and let
    // the health monitor detect, write off and evacuate what the plan kills.
    std::optional<faults::FaultInjector> injector;
    if (spec_.faults.has_value()) {
      cl.StartHealthMonitor();
      faults::FaultTargets targets;
      targets.crash_node = [&cl](int node) { cl.CrashNode(node); };
      targets.reboot_node = [&cl](int node) { cl.RequestReboot(node); };
      targets.restart_xenstore = [&cl](int node, lv::Duration downtime) {
        if (cl.host(node).store() != nullptr) {
          cl.host(node).store()->InjectRestart(downtime);
        }
      };
      targets.stall_hotplug = [&cl](int node, lv::Duration stall, int count) {
        cl.host(node).fault_hooks().hotplug_stall = stall;
        cl.host(node).fault_hooks().stall_next_hotplugs += count;
      };
      targets.partition_link = [&cl](int node, int peer, lv::Duration length) {
        cl.link(node, peer)->Partition(length);
      };
      targets.fail_creates = [&cl](int node, int count) {
        cl.host(node).fault_hooks().fail_next_creates += count;
      };
      injector.emplace(&engine, BuildFaultPlan(spec_), std::move(targets));
      injector->Arm();
    }

    FleetState st;
    st.engine = &engine;
    st.cl = &cl;
    st.w = &w;
    st.image = *image;
    st.tolerate_failures = spec_.faults.has_value();
    st.node.assign(static_cast<size_t>(w.vms), -1);
    st.deploy_ms.assign(static_cast<size_t>(w.vms), 0.0);

    lv::TimePoint start = engine.now();
    for (int i = 0; i < w.concurrency; ++i) {
      engine.Spawn(FleetWorker(&st));
    }
    bool finished = sim::RunUntilCondition(
        engine, [&] { return st.done >= w.vms || st.failed; },
        lv::Duration::Seconds(36000));
    if (st.failed) {
      return Err(ErrorCode::kInternal, policy_name + ": " + st.error);
    }
    if (!finished) {
      return Err(ErrorCode::kInternal,
                 lv::StrFormat("%s: fleet stalled at %d/%d VMs",
                               policy_name.c_str(), st.done, w.vms));
    }
    double makespan_s = (engine.now() - start).secs();
    Settle(engine);

    // Publish quiescent admission drift to the registry: the `slo` section's
    // admission_drift bound reads these gauges after the run.
    cluster::Cluster::Drift quiesced = cl.AdmissionDrift();
    metrics::GetGauge("cluster.drift_mem_bytes")
        .Set(static_cast<double>(quiesced.memory.count()));
    metrics::GetGauge("cluster.drift_vcpus")
        .Set(static_cast<double>(quiesced.vcpus));

    std::vector<int64_t> per_node(static_cast<size_t>(cspec.num_nodes), 0);
    lv::Samples lat;
    int64_t deployed = 0;
    uint64_t placement_hash = 1469598103934665603ull;  // FNV offset basis.
    for (int i = 0; i < w.vms; ++i) {
      int node = st.node[static_cast<size_t>(i)];
      if (node >= 0) {
        // Failed deploys (chaos runs) keep node = -1: counted separately,
        // hashed all the same so reordering still shows up.
        ++per_node[static_cast<size_t>(node)];
        lat.Add(st.deploy_ms[static_cast<size_t>(i)]);
        ++deployed;
      }
      placement_hash ^= static_cast<uint64_t>(node) +
                        static_cast<uint64_t>(i) * 31ull;
      placement_hash *= 1099511628211ull;  // FNV prime.
      Point(policy_name, {{"i", static_cast<double>(i)},
                          {"node", static_cast<double>(node)},
                          {"deploy_ms", st.deploy_ms[static_cast<size_t>(i)]}});
    }
    result_.vms_created += deployed;
    int64_t jobs_started = 0;
    int64_t jobs_failed = 0;
    for (int n = 0; n < cspec.num_nodes; ++n) {
      jobs_started += cl.host(n).node().jobs_started();
      jobs_failed += cl.host(n).node().jobs_failed();
    }

    out_ << lv::StrFormat("\n## policy: %s\n", policy_name.c_str());
    out_ << "placement:";
    for (int n = 0; n < cspec.num_nodes; ++n) {
      out_ << lv::StrFormat(" node%d=%lld", n,
                            (long long)per_node[static_cast<size_t>(n)]);
    }
    out_ << lv::StrFormat("  hash=%016llx\n", (unsigned long long)placement_hash);
    out_ << lv::StrFormat("deploy_ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
                          lat.Quantile(0.5), lat.Quantile(0.9), lat.Quantile(0.99),
                          lat.max());
    out_ << lv::StrFormat(
        "makespan_s=%.2f  vms=%lld  jobs_started=%lld  jobs_failed=%lld  "
        "admission_rejects=%lld\n",
        makespan_s, (long long)cl.total_vms(), (long long)jobs_started,
        (long long)jobs_failed, (long long)cl.admission_rejects());
    Point("summary", {{"deploy_p50_ms", lat.Quantile(0.5)},
                      {"deploy_p99_ms", lat.Quantile(0.99)},
                      {"deploy_max_ms", lat.max()},
                      {"makespan_s", makespan_s},
                      {"vms", static_cast<double>(cl.total_vms())},
                      {"jobs_failed", static_cast<double>(jobs_failed)}});
    if (injector.has_value()) {
      PrintFaultLog(*injector);
      lv::Samples recovery;
      for (double ms : cl.recovery_ms()) {
        recovery.Add(ms);
      }
      cluster::Cluster::Drift drift = cl.AdmissionDrift();
      out_ << lv::StrFormat(
          "node_failures=%lld vms_lost=%lld vms_recovered=%lld "
          "vms_unrecovered=%lld deploys_failed=%lld\n",
          (long long)cl.node_failures(), (long long)cl.vms_lost(),
          (long long)cl.vms_recovered(), (long long)cl.vms_unrecovered(),
          (long long)st.deploys_failed);
      out_ << lv::StrFormat(
          "recovery_ms: p50=%.2f p99=%.2f  deploy_retries=%lld "
          "replacements=%lld\n",
          recovery.empty() ? 0.0 : recovery.Quantile(0.5),
          recovery.empty() ? 0.0 : recovery.Quantile(0.99),
          (long long)cl.deploy_retries(), (long long)cl.deploy_replacements());
      out_ << lv::StrFormat(
          "invariant_failures=%lld drift_mem_bytes=%lld drift_vcpus=%lld\n",
          (long long)cl.invariant_failures(), (long long)drift.memory.count(),
          (long long)drift.vcpus);
      for (int n = 0; n < cspec.num_nodes; ++n) {
        PrintLeakCheck(cl.host(n), n);
      }
      Point("faults",
            {{"injected", static_cast<double>(injector->injected())},
             {"node_failures", static_cast<double>(cl.node_failures())},
             {"vms_lost", static_cast<double>(cl.vms_lost())},
             {"vms_recovered", static_cast<double>(cl.vms_recovered())},
             {"vms_unrecovered", static_cast<double>(cl.vms_unrecovered())},
             {"recovery_p50_ms", recovery.empty() ? 0.0 : recovery.Quantile(0.5)},
             {"recovery_p99_ms", recovery.empty() ? 0.0 : recovery.Quantile(0.99)},
             {"deploy_retries", static_cast<double>(cl.deploy_retries())},
             {"replacements", static_cast<double>(cl.deploy_replacements())},
             {"invariant_failures", static_cast<double>(cl.invariant_failures())},
             {"drift_mem_bytes", static_cast<double>(drift.memory.count())},
             {"drift_vcpus", static_cast<double>(drift.vcpus)}});
    }
    return lv::Status::Ok();
  }

  const Spec& spec_;
  const RunOptions& options_;
  std::ostream& out_;
  PointFn point_fn_;
  lightvm::HostSpec host_spec_;
  lightvm::Mechanisms mechanisms_;
  RunResult result_;
};

}  // namespace

lv::Result<RunResult> Run(const Spec& spec, const RunOptions& options,
                          std::ostream& out, PointFn point_fn) {
  return Runner(spec, options, out, std::move(point_fn)).Run();
}

}  // namespace scenario
