// Exporters for the metrics registry (src/metrics/metrics.h). Three
// formats:
//
//  * JSON — the `metrics` object embedded in every BENCH_*.json artifact
//    (and written standalone by `chaos_cli --metrics-out=<file>`):
//    {"counters": {...}, "gauges": {...}, "histograms": {name: {unit,
//    count, sum, min, max, p50, p90, p99, max_rel_error, buckets:
//    [[lo,hi,count],...]}}}. Quantiles are nearest-rank bucket midpoints,
//    within max_rel_error of the exact order statistic.
//  * Prometheus text exposition format — counters/gauges with dots mapped
//    to underscores, histograms as cumulative `_bucket{le="..."}` series
//    plus `_sum` and `_count` (only non-empty buckets are emitted; the
//    cumulative counts make that lossless).
//  * Aligned text — a terminal dump, used by the chaos_cli `stats`
//    command.
//
// Example:
//   metrics::WriteText(metrics::Registry::Get(), std::cout);
//   lv::Status s = metrics::WriteJsonFile(metrics::Registry::Get(), "metrics.json");
#pragma once

#include <iosfwd>
#include <string>

#include "src/base/result.h"
#include "src/metrics/metrics.h"

namespace metrics {

// JSON string escaping, shared with the bench harness's report writer.
std::string JsonEscape(const std::string& s);

// Renders a double as JSON (no NaN/Inf in JSON: they become null / a large
// sentinel string is avoided by clamping — histograms only ever expose +inf
// as a bucket upper bound, which is emitted as the string "+inf").
std::string JsonNumber(double v);

void WriteJson(const Registry& registry, std::ostream& out);
lv::Status WriteJsonFile(const Registry& registry, const std::string& path);

void WritePrometheus(const Registry& registry, std::ostream& out);
lv::Status WritePrometheusFile(const Registry& registry, const std::string& path);

void WriteText(const Registry& registry, std::ostream& out);

}  // namespace metrics
