#include "src/metrics/metrics.h"

#include <algorithm>
#include <limits>

#include "src/base/assert.h"

namespace metrics {

namespace {
// Total array size: underflow + regular + overflow.
constexpr int kTotalBuckets = Histogram::kNumRegularBuckets + 2;
constexpr int kOverflowIndex = Histogram::kNumRegularBuckets + 1;
}  // namespace

int Histogram::BucketIndex(double x) {
  if (!(x > 0.0)) {
    return 0;  // zero, negative and NaN all underflow
  }
  int exp = 0;
  double mant = std::frexp(x, &exp);  // x = mant * 2^exp, mant in [0.5, 1)
  if (exp <= kMinExp) {
    return 0;
  }
  if (exp > kMaxExp) {
    return kOverflowIndex;
  }
  int sub = static_cast<int>((mant - 0.5) * (2 * kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);  // guard mant rounding up to 1.0
  return (exp - kMinExp - 1) * kSubBuckets + sub + 1;
}

double Histogram::BucketLo(int index) {
  if (index == 0) {
    return 0.0;
  }
  if (index == kOverflowIndex) {
    return std::ldexp(1.0, kMaxExp);
  }
  int exp = kMinExp + 1 + (index - 1) / kSubBuckets;
  int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp - 1);
}

double Histogram::BucketHi(int index) {
  if (index == 0) {
    return std::ldexp(1.0, kMinExp);
  }
  if (index == kOverflowIndex) {
    return std::numeric_limits<double>::infinity();
  }
  int exp = kMinExp + 1 + (index - 1) / kSubBuckets;
  int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp - 1);
}

void Histogram::Record(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counts_.empty()) {
    counts_.assign(kTotalBuckets, 0);
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  ++counts_[static_cast<size_t>(BucketIndex(x))];
}

double Histogram::Quantile(double q) const {
  LV_CHECK(q >= 0.0 && q <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    return 0.0;
  }
  // Nearest-rank: which sample (0-based, by value order) are we asking for?
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_ - 1) + 0.5);
  int64_t seen = 0;
  for (int i = 0; i < kTotalBuckets; ++i) {
    int64_t c = counts_[static_cast<size_t>(i)];
    if (c == 0) {
      continue;
    }
    seen += c;
    if (seen > rank) {
      double mid;
      if (i == 0) {
        mid = min_;  // underflow: only non-positive / tiny values
      } else if (i == kOverflowIndex) {
        mid = max_;
      } else {
        mid = (BucketLo(i) + BucketHi(i)) / 2.0;
      }
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // unreachable if counts_ is consistent with count_
}

void Histogram::Merge(const Histogram& other) {
  std::scoped_lock lock(mu_, other.mu_);
  if (other.count_ == 0) {
    return;
  }
  if (counts_.empty()) {
    counts_.assign(kTotalBuckets, 0);
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kTotalBuckets; ++i) {
    counts_[static_cast<size_t>(i)] += other.counts_[static_cast<size_t>(i)];
  }
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  counts_.clear();
}

std::vector<Histogram::Bucket> Histogram::NonEmptyBuckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Bucket> out;
  if (count_ == 0) {
    return out;
  }
  for (int i = 0; i < kTotalBuckets; ++i) {
    int64_t c = counts_[static_cast<size_t>(i)];
    if (c != 0) {
      out.push_back(Bucket{BucketLo(i), BucketHi(i), c});
    }
  }
  return out;
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::GetHistogram(const std::string& name, const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace constructs in place — Histogram is non-movable (it owns a
  // mutex) and handles must never be invalidated anyway.
  return histograms_.try_emplace(name, unit).first->second;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.name = name;
    v.unit = h.unit();
    v.count = h.count();
    v.sum = h.sum();
    v.min = h.min();
    v.max = h.max();
    v.p50 = h.Quantile(0.5);
    v.p90 = h.Quantile(0.9);
    v.p99 = h.Quantile(0.99);
    v.p999 = h.Quantile(0.999);
    v.buckets = h.NonEmptyBuckets();
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c.Reset();
  }
  for (auto& [name, g] : gauges_) {
    g.Reset();
  }
  for (auto& [name, h] : histograms_) {
    h.Reset();
  }
}

}  // namespace metrics
