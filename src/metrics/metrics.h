// Always-on metrics: a process-wide Registry of named counters, gauges and
// log-bucketed histograms, cheap enough to leave enabled in every run.
//
// Relation to src/trace: the Tracer answers "where did the time go in THIS
// run" with a timeline, and is default-off because its buffer grows with
// the run. The metrics Registry answers "how much work of each kind
// happened, and what did the latency distribution look like" in fixed
// memory, and is therefore always on — every benchmark exports a registry
// snapshot next to its figures (bench --json=<file>), which is what makes
// results machine-comparable across revisions (gem5-style stats output).
//
// Cost model: metrics never charge simulated work, so recording cannot
// perturb measured results (same invariant as the tracer). Real-time cost
// per record is one branch plus an array increment for histograms, one add
// for counters. Call sites cache the handle once:
//
//   static metrics::Counter& hypercalls =
//       metrics::GetCounter("hv.hypervisor.hypercalls");
//   hypercalls.Inc();
//
// Handles returned by the registry are valid for the process lifetime —
// ResetAll() zeroes values but never invalidates a handle (call sites hold
// static references).
//
// Naming convention: `layer.component.metric` (e.g. `xenstore.daemon.ops`,
// `toolstack.chaos.create_ms`). Histograms carry a unit suffix in the name
// (`_ms`, `_gbps`) and optionally a unit string for exporters.
//
// Threading: the registry is the one piece of state that sharded runs
// (sim/shard.h) share across threads, so it is thread-safe where sharing
// actually happens: counter/gauge updates are atomic (relaxed — integral
// increments commute exactly, so totals are deterministic regardless of
// interleaving), histograms serialize records behind an internal mutex
// (bucket counts and count/min/max are exact and order-independent; only
// `sum` accumulates in interleaving order, so differential oracles compare
// the former, not the latter), and registry lookups lock the maps. Simple
// read accessors stay unlocked — reports read them only when the shards
// are quiescent.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/time.h"

namespace metrics {

namespace internal {
// fetch_add for doubles without relying on C++20 atomic<double> arithmetic.
inline void AtomicAdd(std::atomic<double>& v, double delta) {
  double cur = v.load(std::memory_order_relaxed);
  while (!v.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}
}  // namespace internal

// Monotonically increasing count of events (ops, bytes, pages, ...).
class Counter {
 public:
  void Inc(double delta = 1.0) { internal::AtomicAdd(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// A value that can go up and down (pool sizes, pages in use, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { internal::AtomicAdd(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// HDR-style log-bucketed histogram: fixed memory, bounded relative error.
//
// Values are bucketed by binary exponent (via frexp, no log() on the hot
// path) with kSubBuckets linear sub-buckets per power of two. Reported
// bucket midpoints are within kMaxRelativeError (= 1/128, ~0.8%) of any
// value in the bucket. Covers [2^-40, 2^40] (~1e-12 .. ~1e12) — everything
// outside lands in saturating under/overflow buckets, and non-positive
// values (including zero durations) land in the underflow bucket.
//
// Unlike lv::Samples (exact quantiles, memory grows with the sample count),
// a Histogram answers quantile queries from ~41 KB regardless of how many
// values were recorded, which is what lets the toolstack keep per-create
// latency distributions for 8000-VM density runs.
class Histogram {
 public:
  static constexpr int kSubBucketsLog2 = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketsLog2;  // 64 per octave
  static constexpr int kMinExp = -40;  // values <= 2^-40 underflow
  static constexpr int kMaxExp = 40;   // values > 2^40 overflow
  static constexpr int kNumRegularBuckets = (kMaxExp - kMinExp) * kSubBuckets;
  // Reported midpoints are within half a bucket width of the true value;
  // bucket width / lower bound <= 1/kSubBuckets.
  static constexpr double kMaxRelativeError = 1.0 / (2 * kSubBuckets);

  explicit Histogram(std::string unit = "") : unit_(std::move(unit)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double x);
  void RecordDuration(lv::Duration d) { Record(d.ms()); }

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::string& unit() const { return unit_; }

  // Nearest-rank quantile, q in [0,1]. The result is the midpoint of the
  // bucket holding the rank-round(q*(count-1))-th smallest sample, clamped
  // to [min, max] — within kMaxRelativeError of the exact order statistic.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  // Adds all of `other`'s samples to this histogram (bucket-wise; exact).
  void Merge(const Histogram& other);

  void Reset();

  // Non-empty buckets in ascending value order, for exporters. The
  // underflow bucket reports lo=0; the overflow bucket reports
  // hi=+infinity.
  struct Bucket {
    double lo = 0.0;
    double hi = 0.0;
    int64_t count = 0;
  };
  std::vector<Bucket> NonEmptyBuckets() const;

 private:
  // counts_[0] = underflow, [1..kNumRegularBuckets] = regular,
  // [kNumRegularBuckets+1] = overflow. Allocated lazily on first Record so
  // registered-but-unused histograms stay cheap.
  static int BucketIndex(double x);
  static double BucketLo(int index);
  static double BucketHi(int index);

  // Serializes Record/Merge/Reset and the bucket-walking queries; the
  // scalar accessors above are quiescent-read-only by contract.
  mutable std::mutex mu_;
  std::string unit_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<int64_t> counts_;
};

// A point-in-time copy of every metric's value, detached from the live
// registry (snapshot-then-reset gives per-window deltas).
struct Snapshot {
  struct HistogramValue {
    std::string name;
    std::string unit;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    std::vector<Histogram::Bucket> buckets;
  };
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramValue> histograms;
};

class Registry {
 public:
  static Registry& Get();

  // Finds or creates. References stay valid for the process lifetime; the
  // maps never drop entries (ResetAll only zeroes values).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, const std::string& unit = "");

  // Lookup without creating; nullptr if `name` was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Name-ordered iteration for exporters.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  int64_t NumMetrics() const {
    return static_cast<int64_t>(counters_.size() + gauges_.size() + histograms_.size());
  }

  Snapshot TakeSnapshot() const;

  // Zeroes every value; registrations (and outstanding handles) survive.
  void ResetAll();

 private:
  Registry() = default;
  // Guards the maps (insertion); the values themselves are individually
  // thread-safe, and handles remain valid because map nodes never move.
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// Shorthand for the call-site caching idiom.
inline Counter& GetCounter(const std::string& name) {
  return Registry::Get().GetCounter(name);
}
inline Gauge& GetGauge(const std::string& name) { return Registry::Get().GetGauge(name); }
inline Histogram& GetHistogram(const std::string& name, const std::string& unit = "") {
  return Registry::Get().GetHistogram(name, unit);
}

}  // namespace metrics
