#include "src/metrics/export.h"

#include <cmath>
#include <fstream>
#include <ostream>

#include "src/base/strings.h"

namespace metrics {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += lv::StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v)) {
    return "null";
  }
  if (std::isinf(v)) {
    return v > 0 ? "\"+inf\"" : "\"-inf\"";
  }
  // Integers (counts, byte totals) print without a fraction so the JSON is
  // stable across runs; everything else keeps full double precision.
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::fabs(v) < 1e15) {
    return lv::StrFormat("%lld", (long long)v);
  }
  return lv::StrFormat("%.17g", v);
}

namespace {

void WriteHistogramJson(const Snapshot::HistogramValue& h, std::ostream& out) {
  // min/max are the exact observed extremes (not bucket midpoints): bucket
  // resolution would hide the tail values SLO checks gate on.
  out << lv::StrFormat(
      "{\"unit\":\"%s\",\"count\":%lld,\"sum\":%s,\"min\":%s,\"max\":%s,"
      "\"p50\":%s,\"p90\":%s,\"p99\":%s,\"p999\":%s,\"max_rel_error\":%s,\"buckets\":[",
      JsonEscape(h.unit).c_str(), (long long)h.count, JsonNumber(h.sum).c_str(),
      JsonNumber(h.min).c_str(), JsonNumber(h.max).c_str(), JsonNumber(h.p50).c_str(),
      JsonNumber(h.p90).c_str(), JsonNumber(h.p99).c_str(), JsonNumber(h.p999).c_str(),
      JsonNumber(Histogram::kMaxRelativeError).c_str());
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    const auto& b = h.buckets[i];
    out << (i == 0 ? "" : ",")
        << lv::StrFormat("[%s,%s,%lld]", JsonNumber(b.lo).c_str(), JsonNumber(b.hi).c_str(),
                         (long long)b.count);
  }
  out << "]}";
}

}  // namespace

void WriteJson(const Registry& registry, std::ostream& out) {
  Snapshot snap = registry.TakeSnapshot();
  out << "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "" : ",")
        << lv::StrFormat("\n\"%s\":%s", JsonEscape(snap.counters[i].first).c_str(),
                         JsonNumber(snap.counters[i].second).c_str());
  }
  out << "},\n\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "" : ",")
        << lv::StrFormat("\n\"%s\":%s", JsonEscape(snap.gauges[i].first).c_str(),
                         JsonNumber(snap.gauges[i].second).c_str());
  }
  out << "},\n\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    out << (i == 0 ? "" : ",")
        << lv::StrFormat("\n\"%s\":", JsonEscape(snap.histograms[i].name).c_str());
    WriteHistogramJson(snap.histograms[i], out);
  }
  out << "}}\n";
}

lv::Status WriteJsonFile(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return lv::Err(lv::ErrorCode::kUnavailable,
                   lv::StrFormat("cannot open %s for writing", path.c_str()));
  }
  WriteJson(registry, out);
  out.flush();
  if (!out) {
    return lv::Err(lv::ErrorCode::kUnavailable,
                   lv::StrFormat("short write to %s", path.c_str()));
  }
  return lv::Status::Ok();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map
// dots (and anything else) to underscores.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PromNumber(double v) {
  if (std::isnan(v)) {
    return "NaN";
  }
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::fabs(v) < 1e15) {
    return lv::StrFormat("%lld", (long long)v);
  }
  return lv::StrFormat("%.17g", v);
}

}  // namespace

void WritePrometheus(const Registry& registry, std::ostream& out) {
  Snapshot snap = registry.TakeSnapshot();
  for (const auto& [name, value] : snap.counters) {
    std::string p = PromName(name);
    out << lv::StrFormat("# TYPE %s counter\n%s %s\n", p.c_str(), p.c_str(),
                         PromNumber(value).c_str());
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string p = PromName(name);
    out << lv::StrFormat("# TYPE %s gauge\n%s %s\n", p.c_str(), p.c_str(),
                         PromNumber(value).c_str());
  }
  for (const auto& h : snap.histograms) {
    std::string p = PromName(h.name);
    out << lv::StrFormat("# TYPE %s histogram\n", p.c_str());
    int64_t cumulative = 0;
    for (const auto& b : h.buckets) {
      cumulative += b.count;
      out << lv::StrFormat("%s_bucket{le=\"%s\"} %lld\n", p.c_str(),
                           PromNumber(b.hi).c_str(), (long long)cumulative);
    }
    // The exposition format requires a final +Inf bucket equal to _count.
    if (h.buckets.empty() || !std::isinf(h.buckets.back().hi)) {
      out << lv::StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", p.c_str(), (long long)h.count);
    }
    out << lv::StrFormat("%s_sum %s\n%s_count %lld\n", p.c_str(), PromNumber(h.sum).c_str(),
                         p.c_str(), (long long)h.count);
  }
}

lv::Status WritePrometheusFile(const Registry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return lv::Err(lv::ErrorCode::kUnavailable,
                   lv::StrFormat("cannot open %s for writing", path.c_str()));
  }
  WritePrometheus(registry, out);
  out.flush();
  if (!out) {
    return lv::Err(lv::ErrorCode::kUnavailable,
                   lv::StrFormat("short write to %s", path.c_str()));
  }
  return lv::Status::Ok();
}

void WriteText(const Registry& registry, std::ostream& out) {
  Snapshot snap = registry.TakeSnapshot();
  if (!snap.counters.empty()) {
    out << lv::StrFormat("%-40s %14s\n", "counter", "value");
    for (const auto& [name, value] : snap.counters) {
      out << lv::StrFormat("%-40s %14.0f\n", name.c_str(), value);
    }
  }
  if (!snap.gauges.empty()) {
    out << lv::StrFormat("%-40s %14s\n", "gauge", "value");
    for (const auto& [name, value] : snap.gauges) {
      out << lv::StrFormat("%-40s %14.2f\n", name.c_str(), value);
    }
  }
  if (!snap.histograms.empty()) {
    out << lv::StrFormat("%-28s %8s %10s %10s %10s %10s %10s\n", "histogram", "count", "min",
                         "p50", "p90", "p99", "max");
    for (const auto& h : snap.histograms) {
      std::string label = h.name;
      if (!h.unit.empty()) {
        label += " (" + h.unit + ")";
      }
      out << lv::StrFormat("%-28s %8lld %10.3f %10.3f %10.3f %10.3f %10.3f\n", label.c_str(),
                           (long long)h.count, h.min, h.p50, h.p90, h.p99, h.max);
    }
  }
  if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty()) {
    out << "(no metrics recorded)\n";
  }
}

}  // namespace metrics
