// Page-granular physical memory pool of a host.
//
// VM memory consumption imposing a hard upper bound on instance density is a
// central observation of the paper (§2); this pool is where Figure 14's
// curves and Figure 10's Docker out-of-memory cliff come from.
#pragma once

#include <cstdint>

#include "src/base/result.h"
#include "src/base/units.h"

namespace hv {

class MemoryPool {
 public:
  explicit MemoryPool(lv::Bytes total)
      : total_pages_(lv::PagesFor(total)), used_pages_(0) {}

  // Reserves `pages`; fails with OUT_OF_MEMORY when the pool is exhausted.
  lv::Status Reserve(int64_t pages);
  void Release(int64_t pages);

  int64_t total_pages() const { return total_pages_; }
  int64_t used_pages() const { return used_pages_; }
  int64_t free_pages() const { return total_pages_ - used_pages_; }
  lv::Bytes used() const { return lv::kPageSize * used_pages_; }
  lv::Bytes free() const { return lv::kPageSize * free_pages(); }
  lv::Bytes total() const { return lv::kPageSize * total_pages_; }

 private:
  int64_t total_pages_;
  int64_t used_pages_;
};

}  // namespace hv
