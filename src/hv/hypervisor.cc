#include "src/hv/hypervisor.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"

namespace hv {

namespace {
constexpr const char* kMod = "hv";

// Per-hypercall-type counter, cached per call site (the static-handle idiom
// from src/metrics/metrics.h).
metrics::Counter& HypercallCounter(const char* op) {
  return metrics::GetCounter(std::string("hv.hypervisor.hypercalls.") + op);
}
}  // namespace

const char* DomainStateName(DomainState state) {
  switch (state) {
    case DomainState::kBuilding:
      return "building";
    case DomainState::kPaused:
      return "paused";
    case DomainState::kRunning:
      return "running";
    case DomainState::kSuspended:
      return "suspended";
    case DomainState::kShutdown:
      return "shutdown";
    case DomainState::kDead:
      return "dead";
  }
  return "?";
}

const char* DeviceTypeName(DeviceType type) {
  switch (type) {
    case DeviceType::kConsole:
      return "console";
    case DeviceType::kNet:
      return "vif";
    case DeviceType::kBlock:
      return "vbd";
    case DeviceType::kSysctl:
      return "sysctl";
  }
  return "?";
}

Hypervisor::Hypervisor(sim::Engine* engine, lv::Bytes total_memory, Costs costs)
    : engine_(engine),
      costs_(costs),
      memory_(total_memory),
      event_channels_(engine, &costs_) {}

Domain* Hypervisor::FindDomain(DomainId id) {
  auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : it->second.get();
}

const Domain* Hypervisor::FindDomain(DomainId id) const {
  auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : it->second.get();
}

int64_t Hypervisor::NumDomainsInState(DomainState state) const {
  int64_t n = 0;
  for (const auto& [id, dom] : domains_) {
    if (dom->state() == state) {
      ++n;
    }
  }
  return n;
}

sim::Co<void> Hypervisor::HypercallEntry(sim::ExecCtx ctx) {
  ++stats_.hypercalls;
  trace::Count("hv.hypercalls", 1);
  // Every hypercall is a guest->hypervisor->guest privilege transition.
  static metrics::Counter& hypercalls = metrics::GetCounter("hv.hypervisor.hypercalls");
  static metrics::Counter& crossings = metrics::GetCounter("hv.hypervisor.domain_crossings");
  hypercalls.Inc();
  crossings.Inc();
  co_await ctx.Work(costs_.hypercall);
}

lv::Result<Domain*> Hypervisor::Lookup(DomainId id) {
  Domain* dom = FindDomain(id);
  if (dom == nullptr) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("dom%lld", (long long)id));
  }
  return dom;
}

sim::Co<lv::Result<DomainId>> Hypervisor::DomainCreate(sim::ExecCtx ctx) {
  trace::Span span(ctx.track, "hv.domain_create");
  static metrics::Counter& hc = HypercallCounter("domain_create");
  static metrics::Counter& created = metrics::GetCounter("hv.hypervisor.domains_created");
  hc.Inc();
  co_await HypercallEntry(ctx);
  co_await ctx.Work(costs_.domain_create);
  DomainId id = next_id_++;
  domains_.emplace(id, std::make_unique<Domain>(id, engine_->now()));
  ++stats_.domains_created;
  created.Inc();
  LV_DEBUG(kMod, "created dom%lld", (long long)id);
  co_return id;
}

sim::Co<lv::Status> Hypervisor::DomainSetMaxMem(sim::ExecCtx ctx, DomainId id, lv::Bytes max) {
  static metrics::Counter& hc = HypercallCounter("set_max_mem");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  (*dom)->set_max_mem(max);
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::PopulatePhysmap(sim::ExecCtx ctx, DomainId id,
                                                lv::Bytes bytes) {
  trace::Span span(ctx.track, "hv.populate_physmap");
  static metrics::Counter& hc = HypercallCounter("populate_physmap");
  static metrics::Counter& populated = metrics::GetCounter("hv.memory.pages_populated");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  int64_t pages = lv::PagesFor(bytes);
  lv::Status reserved = memory_.Reserve(pages);
  if (!reserved.ok()) {
    co_return reserved;
  }
  (*dom)->add_reserved_pages(pages);
  trace::Count("hv.pages_populated", static_cast<double>(pages));
  populated.Inc(static_cast<double>(pages));
  co_await ctx.Work(costs_.per_page_populate * static_cast<double>(pages));
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::PopulatePhysmapShared(sim::ExecCtx ctx, DomainId id,
                                                      lv::Bytes bytes,
                                                      const std::string& template_key,
                                                      double shared_fraction) {
  trace::Span span(ctx.track, "hv.populate_physmap");
  static metrics::Counter& hc = HypercallCounter("populate_physmap_shared");
  static metrics::Counter& populated = metrics::GetCounter("hv.memory.pages_populated");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  if (shared_fraction < 0.0 || shared_fraction > 1.0) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "shared_fraction out of range");
  }
  int64_t total_pages = lv::PagesFor(bytes);
  int64_t shared_pages = static_cast<int64_t>(static_cast<double>(total_pages) *
                                              shared_fraction);
  int64_t private_pages = total_pages - shared_pages;

  auto it = templates_.find(template_key);
  bool template_exists = it != templates_.end();
  int64_t to_reserve = private_pages + (template_exists ? 0 : shared_pages);
  lv::Status reserved = memory_.Reserve(to_reserve);
  if (!reserved.ok()) {
    co_return reserved;
  }
  if (template_exists) {
    ++it->second.refs;
    // Mapping existing read-only pages is cheap; only private pages are
    // populated.
    trace::Count("hv.pages_populated", static_cast<double>(private_pages));
    populated.Inc(static_cast<double>(private_pages));
    co_await ctx.Work(costs_.per_page_populate * static_cast<double>(private_pages));
  } else {
    templates_.emplace(template_key, SharedTemplate{shared_pages, 1});
    trace::Count("hv.pages_populated", static_cast<double>(total_pages));
    populated.Inc(static_cast<double>(total_pages));
    co_await ctx.Work(costs_.per_page_populate * static_cast<double>(total_pages));
  }
  (*dom)->add_reserved_pages(private_pages);
  (*dom)->set_shared_template(template_key);
  co_return lv::Status::Ok();
}

int64_t Hypervisor::shared_template_pages() const {
  int64_t pages = 0;
  for (const auto& [key, tmpl] : templates_) {
    pages += tmpl.pages;
  }
  return pages;
}

sim::Co<lv::Status> Hypervisor::VcpuInit(sim::ExecCtx ctx, DomainId id,
                                         std::vector<int> cores) {
  trace::Span span(ctx.track, "hv.vcpu_init");
  static metrics::Counter& hc = HypercallCounter("vcpu_init");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  if (cores.empty()) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "need at least one vcpu");
  }
  co_await ctx.Work(costs_.vcpu_init * static_cast<double>(cores.size()));
  (*dom)->set_vcpu_cores(std::move(cores));
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::CopyToDomain(sim::ExecCtx ctx, DomainId id, lv::Bytes bytes) {
  trace::Span span(ctx.track, "hv.copy_to_domain");
  static metrics::Counter& hc = HypercallCounter("copy_to_domain");
  static metrics::Counter& copied = metrics::GetCounter("hv.hypervisor.bytes_copied");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  trace::Count("hv.bytes_copied", static_cast<double>(bytes.count()));
  copied.Inc(static_cast<double>(bytes.count()));
  co_await ctx.Work(costs_.per_page_copy * static_cast<double>(lv::PagesFor(bytes)));
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::CopyFromDomain(sim::ExecCtx ctx, DomainId id,
                                               lv::Bytes bytes) {
  trace::Span span(ctx.track, "hv.copy_from_domain");
  static metrics::Counter& hc = HypercallCounter("copy_from_domain");
  static metrics::Counter& copied = metrics::GetCounter("hv.hypervisor.bytes_copied");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  trace::Count("hv.bytes_copied", static_cast<double>(bytes.count()));
  copied.Inc(static_cast<double>(bytes.count()));
  co_await ctx.Work(costs_.per_page_copy * static_cast<double>(lv::PagesFor(bytes)));
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::DomainFinishBuild(sim::ExecCtx ctx, DomainId id) {
  trace::Span span(ctx.track, "hv.finish_build");
  static metrics::Counter& hc = HypercallCounter("finish_build");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  if ((*dom)->state() != DomainState::kBuilding) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument,
                      lv::StrFormat("dom%lld not building", (long long)id));
  }
  (*dom)->set_state(DomainState::kPaused);
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::DomainPause(sim::ExecCtx ctx, DomainId id) {
  static metrics::Counter& hc = HypercallCounter("pause");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  if ((*dom)->state() != DomainState::kRunning) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument, "domain not running");
  }
  (*dom)->set_state(DomainState::kPaused);
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::DomainUnpause(sim::ExecCtx ctx, DomainId id) {
  trace::Span span(ctx.track, "hv.unpause");
  static metrics::Counter& hc = HypercallCounter("unpause");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom_r = Lookup(id);
  if (!dom_r.ok()) {
    co_return dom_r.error();
  }
  Domain* dom = *dom_r;
  if (dom->state() != DomainState::kPaused) {
    co_return lv::Err(lv::ErrorCode::kInvalidArgument,
                      lv::StrFormat("dom%lld is %s, not paused", (long long)id,
                                    DomainStateName(dom->state())));
  }
  dom->set_state(DomainState::kRunning);
  if (!dom->started() && dom->start_fn()) {
    dom->mark_started();
    // The guest entry point begins executing on its own vCPU.
    engine_->Spawn(dom->start_fn()(*dom));
  }
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::DomainShutdown(sim::ExecCtx ctx, DomainId id,
                                               ShutdownReason reason) {
  static metrics::Counter& hc = HypercallCounter("shutdown");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  (*dom)->set_shutdown_reason(reason);
  (*dom)->set_state(reason == ShutdownReason::kSuspend ? DomainState::kSuspended
                                                       : DomainState::kShutdown);
  if (shutdown_observer_) {
    shutdown_observer_(id, reason);
  }
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Hypervisor::DomainDestroy(sim::ExecCtx ctx, DomainId id) {
  trace::Span span(ctx.track, "hv.domain_destroy");
  static metrics::Counter& hc = HypercallCounter("domain_destroy");
  static metrics::Counter& destroyed = metrics::GetCounter("hv.hypervisor.domains_destroyed");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom_r = Lookup(id);
  if (!dom_r.ok()) {
    co_return dom_r.error();
  }
  Domain* dom = *dom_r;
  dom->set_state(DomainState::kDead);
  int64_t pages = dom->reserved_pages();
  co_await ctx.Work(costs_.per_page_scrub * static_cast<double>(pages));
  memory_.Release(pages);
  dom->clear_reserved_pages();
  if (!dom->shared_template().empty()) {
    auto tmpl = templates_.find(dom->shared_template());
    if (tmpl != templates_.end() && --tmpl->second.refs == 0) {
      memory_.Release(tmpl->second.pages);
      templates_.erase(tmpl);
    }
  }
  domains_.erase(id);
  ++stats_.domains_destroyed;
  destroyed.Inc();
  LV_DEBUG(kMod, "destroyed dom%lld", (long long)id);
  co_return lv::Status::Ok();
}

sim::Co<lv::Result<DomainInfo>> Hypervisor::DomainGetInfo(sim::ExecCtx ctx, DomainId id) {
  static metrics::Counter& hc = HypercallCounter("get_info");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  DomainInfo info;
  info.id = id;
  info.state = (*dom)->state();
  info.max_mem = (*dom)->max_mem();
  info.reserved_pages = (*dom)->reserved_pages();
  info.vcpus = static_cast<int>((*dom)->vcpu_cores().size());
  co_return info;
}

sim::Co<lv::Result<std::vector<DomainInfo>>> Hypervisor::ListDomains(sim::ExecCtx ctx) {
  trace::Span span(ctx.track, "hv.list_domains");
  static metrics::Counter& hc = HypercallCounter("list_domains");
  hc.Inc();
  co_await HypercallEntry(ctx);
  co_await ctx.Work(costs_.per_domain_list * static_cast<double>(domains_.size()));
  std::vector<DomainInfo> out;
  out.reserve(domains_.size());
  for (const auto& [id, dom] : domains_) {
    DomainInfo info;
    info.id = id;
    info.state = dom->state();
    info.max_mem = dom->max_mem();
    info.reserved_pages = dom->reserved_pages();
    info.vcpus = static_cast<int>(dom->vcpu_cores().size());
    out.push_back(info);
  }
  co_return out;
}

sim::Co<lv::Result<int>> Hypervisor::DevicePageWrite(sim::ExecCtx ctx, DomainId caller,
                                                     DomainId id, const DeviceInfo& info) {
  static metrics::Counter& hc = HypercallCounter("device_page_write");
  hc.Inc();
  co_await HypercallEntry(ctx);
  if (caller != kDom0) {
    co_return lv::Err(lv::ErrorCode::kPermissionDenied,
                      "device page is read-only outside Dom0");
  }
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  if ((*dom)->device_page_full()) {
    co_return lv::Err(lv::ErrorCode::kUnavailable, "device page full");
  }
  co_await ctx.Work(costs_.device_page_op);
  (*dom)->AppendDevice(info);
  ++stats_.device_page_writes;
  co_return static_cast<int>((*dom)->device_page().size()) - 1;
}

sim::Co<lv::Result<std::vector<DeviceInfo>>> Hypervisor::DevicePageRead(sim::ExecCtx ctx,
                                                                        DomainId id) {
  static metrics::Counter& hc = HypercallCounter("device_page_read");
  hc.Inc();
  co_await HypercallEntry(ctx);
  auto dom = Lookup(id);
  if (!dom.ok()) {
    co_return dom.error();
  }
  co_await ctx.Work(costs_.device_page_op);
  ++stats_.device_page_reads;
  co_return (*dom)->device_page();
}

}  // namespace hv
