// Event channels: Xen's inter-domain software interrupts.
//
// A channel connects exactly two domains. Either side binds a handler; a
// Notify() from one side charges the notification cost to the caller and
// delivers a virtual IRQ to the other side's handler after the injection
// latency. The split drivers and the noxs control path are built on these.
#pragma once

#include <functional>
#include <unordered_map>

#include "src/base/result.h"
#include "src/hv/costs.h"
#include "src/hv/types.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"

namespace hv {

class EventChannelTable {
 public:
  EventChannelTable(sim::Engine* engine, const Costs* costs)
      : engine_(engine), costs_(costs) {}

  // Allocates a channel between two domains; returns its port.
  Port Alloc(DomainId side_a, DomainId side_b);

  // Binds the handler invoked when the *other* side notifies.
  lv::Status Bind(Port port, DomainId side, std::function<void()> handler);
  lv::Status Unbind(Port port, DomainId side);

  // Sends an event from `from` to the other side. Charges the hypercall to
  // `ctx` and delivers the virtual IRQ after the injection latency.
  sim::Co<lv::Status> Notify(sim::ExecCtx ctx, Port port, DomainId from);

  lv::Status Close(Port port);

  bool IsOpen(Port port) const { return channels_.contains(port); }
  int64_t open_channels() const { return static_cast<int64_t>(channels_.size()); }
  int64_t notifications_sent() const { return notifications_; }

 private:
  struct Channel {
    DomainId a = kInvalidDomain;
    DomainId b = kInvalidDomain;
    std::function<void()> handler_a;
    std::function<void()> handler_b;
  };

  sim::Engine* engine_;
  const Costs* costs_;
  Port next_port_ = 1;
  int64_t notifications_ = 0;
  std::unordered_map<Port, Channel> channels_;
};

}  // namespace hv
