// The simulated type-1 hypervisor: domain table, memory pool, event
// channels, grant tables, and the hypercall interface used by the toolstack
// (as libxc would) and by guests.
//
// All hypercalls are coroutines that charge their cost to the caller's
// ExecCtx, so hypervisor work shows up on the right core with the right
// owner in the CPU accounting (Figures 5 and 15).
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "src/base/result.h"
#include "src/hv/costs.h"
#include "src/hv/domain.h"
#include "src/hv/event_channel.h"
#include "src/hv/grant_table.h"
#include "src/hv/memory.h"
#include "src/hv/types.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"

namespace hv {

struct DomainInfo {
  DomainId id = kInvalidDomain;
  DomainState state = DomainState::kBuilding;
  lv::Bytes max_mem;
  int64_t reserved_pages = 0;
  int vcpus = 0;
};

class Hypervisor {
 public:
  struct Stats {
    int64_t hypercalls = 0;
    int64_t domains_created = 0;
    int64_t domains_destroyed = 0;
    int64_t device_page_writes = 0;
    int64_t device_page_reads = 0;
  };

  Hypervisor(sim::Engine* engine, lv::Bytes total_memory, Costs costs = Costs());

  sim::Engine* engine() { return engine_; }
  const Costs& costs() const { return costs_; }
  MemoryPool& memory() { return memory_; }
  EventChannelTable& event_channels() { return event_channels_; }
  GrantTable& grant_table() { return grant_table_; }
  const Stats& stats() const { return stats_; }

  // Observer invoked whenever a domain shuts down (any reason). The control
  // plane uses this the way xl uses the @releaseDomain special watch.
  using ShutdownObserver = std::function<void(DomainId, ShutdownReason)>;
  void SetShutdownObserver(ShutdownObserver observer) {
    shutdown_observer_ = std::move(observer);
  }

  // Non-hypercall accessors (used by infrastructure/tests, free of cost).
  Domain* FindDomain(DomainId id);
  const Domain* FindDomain(DomainId id) const;
  int64_t NumDomains() const { return static_cast<int64_t>(domains_.size()); }
  int64_t NumDomainsInState(DomainState state) const;

  // --- Hypercalls -----------------------------------------------------------

  // XEN_DOMCTL_createdomain: allocates an id; the domain starts kBuilding.
  sim::Co<lv::Result<DomainId>> DomainCreate(sim::ExecCtx ctx);

  // XEN_DOMCTL_max_mem.
  sim::Co<lv::Status> DomainSetMaxMem(sim::ExecCtx ctx, DomainId id, lv::Bytes max);

  // XENMEM_populate_physmap: reserve + map `bytes` of RAM for the domain.
  sim::Co<lv::Status> PopulatePhysmap(sim::ExecCtx ctx, DomainId id, lv::Bytes bytes);

  // §9 extension ("Memory sharing", SnowFlock-style de-duplication): domains
  // instantiated from the same template share its read-only pages;
  // `shared_fraction` of the reservation is copy-on-write against the
  // template, the rest is private. The first domain with a given key pays
  // for the template; the last one to be destroyed frees it.
  sim::Co<lv::Status> PopulatePhysmapShared(sim::ExecCtx ctx, DomainId id, lv::Bytes bytes,
                                            const std::string& template_key,
                                            double shared_fraction);
  // Pages currently held by shared templates.
  int64_t shared_template_pages() const;
  int64_t num_shared_templates() const { return static_cast<int64_t>(templates_.size()); }

  // XEN_DOMCTL_max_vcpus + per-vCPU init, pinned to `cores`.
  sim::Co<lv::Status> VcpuInit(sim::ExecCtx ctx, DomainId id, std::vector<int> cores);

  // Copies `bytes` into the domain (kernel image load / restore stream).
  sim::Co<lv::Status> CopyToDomain(sim::ExecCtx ctx, DomainId id, lv::Bytes bytes);
  // Copies `bytes` out of the domain (save/migrate stream).
  sim::Co<lv::Status> CopyFromDomain(sim::ExecCtx ctx, DomainId id, lv::Bytes bytes);

  // Marks building complete; the domain becomes kPaused.
  sim::Co<lv::Status> DomainFinishBuild(sim::ExecCtx ctx, DomainId id);

  sim::Co<lv::Status> DomainPause(sim::ExecCtx ctx, DomainId id);
  // Unpausing a never-started domain spawns its start function (guest boot).
  sim::Co<lv::Status> DomainUnpause(sim::ExecCtx ctx, DomainId id);

  // Guest-initiated shutdown (SCHEDOP_shutdown). kSuspend leaves memory
  // resident and the domain restorable; other reasons mark it kShutdown.
  sim::Co<lv::Status> DomainShutdown(sim::ExecCtx ctx, DomainId id, ShutdownReason reason);

  // Releases memory and removes the domain.
  sim::Co<lv::Status> DomainDestroy(sim::ExecCtx ctx, DomainId id);

  sim::Co<lv::Result<DomainInfo>> DomainGetInfo(sim::ExecCtx ctx, DomainId id);
  // XEN_SYSCTL_getdomaininfolist: O(#domains), as in Xen.
  sim::Co<lv::Result<std::vector<DomainInfo>>> ListDomains(sim::ExecCtx ctx);

  // --- noxs hypercalls (our Xen modification, paper §5.1) -------------------

  // Appends a device entry to the domain's read-only device page. Only Dom0
  // may write (the page is shared read-only with the guest).
  sim::Co<lv::Result<int>> DevicePageWrite(sim::ExecCtx ctx, DomainId caller, DomainId id,
                                           const DeviceInfo& info);
  // Guest-side: map + read own device page.
  sim::Co<lv::Result<std::vector<DeviceInfo>>> DevicePageRead(sim::ExecCtx ctx, DomainId id);

 private:
  // Every hypercall pays the base trap cost and bumps the counter.
  sim::Co<void> HypercallEntry(sim::ExecCtx ctx);
  lv::Result<Domain*> Lookup(DomainId id);

  sim::Engine* engine_;
  Costs costs_;
  MemoryPool memory_;
  EventChannelTable event_channels_;
  GrantTable grant_table_;
  Stats stats_;
  ShutdownObserver shutdown_observer_;
  DomainId next_id_ = 1;
  // Ordered map: ListDomains returns ids in creation order like Xen does.
  std::map<DomainId, std::unique_ptr<Domain>> domains_;
  // §9 extension: shared page templates (key -> pages + refcount).
  struct SharedTemplate {
    int64_t pages = 0;
    int64_t refs = 0;
  };
  std::unordered_map<std::string, SharedTemplate> templates_;
};

}  // namespace hv
