#include "src/hv/event_channel.h"

#include "src/base/strings.h"
#include "src/metrics/metrics.h"

namespace hv {

Port EventChannelTable::Alloc(DomainId side_a, DomainId side_b) {
  Port port = next_port_++;
  Channel ch;
  ch.a = side_a;
  ch.b = side_b;
  channels_.emplace(port, std::move(ch));
  return port;
}

lv::Status EventChannelTable::Bind(Port port, DomainId side, std::function<void()> handler) {
  auto it = channels_.find(port);
  if (it == channels_.end()) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("port %lld", (long long)port));
  }
  Channel& ch = it->second;
  if (side == ch.a) {
    ch.handler_a = std::move(handler);
  } else if (side == ch.b) {
    ch.handler_b = std::move(handler);
  } else {
    return lv::Err(lv::ErrorCode::kPermissionDenied,
                   lv::StrFormat("dom%lld not an endpoint of port %lld", (long long)side,
                                 (long long)port));
  }
  return lv::Status::Ok();
}

lv::Status EventChannelTable::Unbind(Port port, DomainId side) {
  auto it = channels_.find(port);
  if (it == channels_.end()) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("port %lld", (long long)port));
  }
  Channel& ch = it->second;
  if (side == ch.a) {
    ch.handler_a = nullptr;
  } else if (side == ch.b) {
    ch.handler_b = nullptr;
  } else {
    return lv::Err(lv::ErrorCode::kPermissionDenied, "not an endpoint");
  }
  return lv::Status::Ok();
}

sim::Co<lv::Status> EventChannelTable::Notify(sim::ExecCtx ctx, Port port, DomainId from) {
  co_await ctx.Work(costs_->event_channel_op);
  auto it = channels_.find(port);
  if (it == channels_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound,
                      lv::StrFormat("port %lld", (long long)port));
  }
  Channel& ch = it->second;
  std::function<void()>* handler = nullptr;
  if (from == ch.a) {
    handler = &ch.handler_b;
  } else if (from == ch.b) {
    handler = &ch.handler_a;
  } else {
    co_return lv::Err(lv::ErrorCode::kPermissionDenied, "not an endpoint");
  }
  ++notifications_;
  static metrics::Counter& sends = metrics::GetCounter("hv.event_channel.sends");
  sends.Inc();
  if (*handler) {
    // Deliver the virtual IRQ after the injection latency. Copy the handler:
    // the channel may be closed before delivery.
    static metrics::Counter& deliveries = metrics::GetCounter("hv.event_channel.deliveries");
    deliveries.Inc();
    std::function<void()> h = *handler;
    engine_->Schedule(costs_->event_delivery, [h] { h(); });
  }
  co_return lv::Status::Ok();
}

lv::Status EventChannelTable::Close(Port port) {
  if (channels_.erase(port) == 0) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("port %lld", (long long)port));
  }
  return lv::Status::Ok();
}

}  // namespace hv
