#include "src/hv/memory.h"

#include "src/base/strings.h"
#include "src/metrics/metrics.h"

namespace hv {

lv::Status MemoryPool::Reserve(int64_t pages) {
  LV_CHECK(pages >= 0);
  if (used_pages_ + pages > total_pages_) {
    return lv::Err(lv::ErrorCode::kOutOfMemory,
                   lv::StrFormat("need %lld pages, %lld free", (long long)pages,
                                 (long long)free_pages()));
  }
  used_pages_ += pages;
  static metrics::Gauge& in_use = metrics::GetGauge("hv.memory.pages_in_use");
  in_use.Add(static_cast<double>(pages));
  return lv::Status::Ok();
}

void MemoryPool::Release(int64_t pages) {
  LV_CHECK(pages >= 0);
  LV_CHECK_MSG(pages <= used_pages_, "releasing more pages than reserved");
  used_pages_ -= pages;
  static metrics::Gauge& in_use = metrics::GetGauge("hv.memory.pages_in_use");
  in_use.Add(-static_cast<double>(pages));
}

}  // namespace hv
