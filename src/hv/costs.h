// Hypervisor cost model.
//
// Each hypercall is a trap into the hypervisor (one privilege crossing) plus
// operation-specific work. Coefficients are calibrated against the paper's
// anchors (see DESIGN.md §3 and EXPERIMENTS.md): e.g. the "hypervisor"
// category of Figure 5 stays small and flat, while memory operations scale
// with page counts.
#pragma once

#include "src/base/time.h"

namespace hv {

struct Costs {
  // Base cost of any hypercall: syscall-style trap + return.
  lv::Duration hypercall = lv::Duration::Micros(1);
  // XEN_DOMCTL_createdomain: allocate domain struct, shared info page.
  lv::Duration domain_create = lv::Duration::Micros(60);
  // Per-vCPU initialization.
  lv::Duration vcpu_init = lv::Duration::Micros(20);
  // Per-page cost of populate_physmap (allocating + mapping a 4 KiB page).
  lv::Duration per_page_populate = lv::Duration::Nanos(300);
  // Per-page cost of copying guest memory (image load, save, restore).
  // Calibrated from Figure 2: boot time grows ~0.9 s per 1000 MB of image,
  // i.e. ~0.9 ns/byte -> ~3.7 us per 4 KiB page.
  lv::Duration per_page_copy = lv::Duration::Nanos(2800);
  // Reading/writing a noxs device page entry via hypercall.
  lv::Duration device_page_op = lv::Duration::Micros(2);
  // Allocating/closing an event channel or grant entry.
  lv::Duration event_channel_op = lv::Duration::Micros(1);
  // Delivering an event-channel notification (virtual IRQ injection).
  lv::Duration event_delivery = lv::Duration::Micros(2);
  // Per-domain cost of XEN_SYSCTL_getdomaininfolist (list all domains).
  lv::Duration per_domain_list = lv::Duration::Nanos(150);
  // Tearing down a domain: per-page scrubbing is the dominant term.
  lv::Duration per_page_scrub = lv::Duration::Nanos(100);
};

}  // namespace hv
