#include "src/hv/grant_table.h"

#include "src/base/strings.h"
#include "src/metrics/metrics.h"

namespace hv {

GrantRef GrantTable::Grant(DomainId owner, DomainId grantee) {
  GrantRef ref = next_ref_++;
  grants_.emplace(ref, Entry{owner, grantee, false});
  return ref;
}

lv::Status GrantTable::Map(DomainId mapper, GrantRef ref) {
  auto it = grants_.find(ref);
  if (it == grants_.end()) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("grant %lld", (long long)ref));
  }
  if (it->second.grantee != mapper) {
    return lv::Err(lv::ErrorCode::kPermissionDenied,
                   lv::StrFormat("dom%lld is not the grantee of grant %lld",
                                 (long long)mapper, (long long)ref));
  }
  if (it->second.mapped) {
    return lv::Err(lv::ErrorCode::kAlreadyExists, "grant already mapped");
  }
  it->second.mapped = true;
  static metrics::Counter& maps = metrics::GetCounter("hv.grant_table.maps");
  maps.Inc();
  return lv::Status::Ok();
}

lv::Status GrantTable::Unmap(DomainId mapper, GrantRef ref) {
  auto it = grants_.find(ref);
  if (it == grants_.end()) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("grant %lld", (long long)ref));
  }
  if (it->second.grantee != mapper || !it->second.mapped) {
    return lv::Err(lv::ErrorCode::kInvalidArgument, "not mapped by this domain");
  }
  it->second.mapped = false;
  static metrics::Counter& unmaps = metrics::GetCounter("hv.grant_table.unmaps");
  unmaps.Inc();
  return lv::Status::Ok();
}

lv::Status GrantTable::Revoke(GrantRef ref) {
  auto it = grants_.find(ref);
  if (it == grants_.end()) {
    return lv::Err(lv::ErrorCode::kNotFound, lv::StrFormat("grant %lld", (long long)ref));
  }
  if (it->second.mapped) {
    return lv::Err(lv::ErrorCode::kUnavailable, "grant still mapped");
  }
  grants_.erase(it);
  return lv::Status::Ok();
}

int64_t GrantTable::GrantsOwnedBy(DomainId owner) const {
  int64_t n = 0;
  for (const auto& [ref, entry] : grants_) {
    if (entry.owner == owner) {
      ++n;
    }
  }
  return n;
}

}  // namespace hv
