// Shared identifier and device types for the simulated Xen-like hypervisor.
#pragma once

#include <cstdint>
#include <string>

namespace hv {

// Domain identifier. Dom0 (the driver/control domain) is always id 0.
using DomainId = int64_t;
inline constexpr DomainId kDom0 = 0;
inline constexpr DomainId kInvalidDomain = -1;

// Event-channel port (global numbering for simplicity; real Xen numbers
// ports per-domain, which only changes bookkeeping).
using Port = int64_t;
inline constexpr Port kInvalidPort = -1;

// Grant table reference.
using GrantRef = int64_t;
inline constexpr GrantRef kInvalidGrant = -1;

enum class DomainState {
  kBuilding,   // created, memory/vcpus being prepared
  kPaused,     // fully built but not yet scheduled
  kRunning,
  kSuspended,  // checkpointed/migrating; memory still or no longer resident
  kShutdown,   // guest-initiated shutdown completed
  kDead,       // being destroyed
};

const char* DomainStateName(DomainState state);

enum class DeviceType {
  kConsole,
  kNet,
  kBlock,
  kSysctl,  // noxs power-control pseudo-device (suspend/resume/migrate)
};

const char* DeviceTypeName(DeviceType type);

enum class ShutdownReason {
  kNone,
  kPoweroff,
  kReboot,
  kSuspend,
  kCrash,
};

// One entry of a domain's noxs device page (paper Figure 7b): everything a
// front-end needs to reach its back-end without the XenStore.
struct DeviceInfo {
  DeviceType type = DeviceType::kConsole;
  DomainId backend_domid = kDom0;
  Port event_channel = kInvalidPort;
  GrantRef grant_ref = kInvalidGrant;  // grant of the device control page
  int backend_handle = -1;             // back-end's identifier for this device
};

}  // namespace hv
