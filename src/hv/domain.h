// Domain: the hypervisor's view of one virtual machine.
//
// Note what is deliberately absent: the VM's *name*. As the paper observes
// (§5.1), the hypervisor already holds everything needed to boot a VM; the
// name lives only in the XenStore and is not needed during boot — a key
// insight behind noxs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/base/units.h"
#include "src/hv/types.h"
#include "src/sim/task.h"

namespace hv {

// Capacity of the single 4 KiB noxs device page (paper §5.1); each entry is
// a small fixed-size record.
inline constexpr int kDevicePageCapacity = 32;

class Domain {
 public:
  Domain(DomainId id, lv::TimePoint created_at) : id_(id), created_at_(created_at) {}
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  DomainId id() const { return id_; }
  DomainState state() const { return state_; }
  void set_state(DomainState s) { state_ = s; }
  lv::TimePoint created_at() const { return created_at_; }

  // --- Memory -------------------------------------------------------------
  lv::Bytes max_mem() const { return max_mem_; }
  void set_max_mem(lv::Bytes b) { max_mem_ = b; }
  int64_t reserved_pages() const { return reserved_pages_; }
  void add_reserved_pages(int64_t pages) { reserved_pages_ += pages; }
  void clear_reserved_pages() { reserved_pages_ = 0; }
  // §9 extension (memory de-duplication): key of the read-only page template
  // this domain shares, empty if none.
  const std::string& shared_template() const { return shared_template_; }
  void set_shared_template(std::string key) { shared_template_ = std::move(key); }

  // --- vCPUs ---------------------------------------------------------------
  const std::vector<int>& vcpu_cores() const { return vcpu_cores_; }
  void set_vcpu_cores(std::vector<int> cores) { vcpu_cores_ = std::move(cores); }
  // Core the guest's (single) boot vCPU runs on.
  int boot_core() const { return vcpu_cores_.empty() ? 0 : vcpu_cores_[0]; }

  // --- noxs device page ----------------------------------------------------
  const std::vector<DeviceInfo>& device_page() const { return device_page_; }
  bool device_page_full() const {
    return static_cast<int>(device_page_.size()) >= kDevicePageCapacity;
  }
  void AppendDevice(const DeviceInfo& info) { device_page_.push_back(info); }
  void ClearDevicePage() { device_page_.clear(); }

  // --- Lifecycle hooks ------------------------------------------------------
  // The guest image installs its entry point; the hypervisor spawns it when
  // the domain is first unpaused.
  using StartFn = std::function<sim::Co<void>(Domain&)>;
  void set_start_fn(StartFn fn) { start_fn_ = std::move(fn); }
  const StartFn& start_fn() const { return start_fn_; }
  bool started() const { return started_; }
  void mark_started() { started_ = true; }

  ShutdownReason shutdown_reason() const { return shutdown_reason_; }
  void set_shutdown_reason(ShutdownReason r) { shutdown_reason_ = r; }

 private:
  DomainId id_;
  lv::TimePoint created_at_;
  DomainState state_ = DomainState::kBuilding;
  lv::Bytes max_mem_;
  int64_t reserved_pages_ = 0;
  std::vector<int> vcpu_cores_;
  std::vector<DeviceInfo> device_page_;
  StartFn start_fn_;
  std::string shared_template_;
  bool started_ = false;
  ShutdownReason shutdown_reason_ = ShutdownReason::kNone;
};

}  // namespace hv
