// Grant tables: Xen's mechanism for sharing memory pages between domains.
// A grant names (owner, grantee, page); the grantee may map it. Device
// control pages and I/O rings are shared through grants in both the
// XenStore-based and the noxs connection paths.
#pragma once

#include <unordered_map>

#include "src/base/result.h"
#include "src/hv/types.h"

namespace hv {

class GrantTable {
 public:
  // Creates a grant allowing `grantee` to map a page of `owner`.
  GrantRef Grant(DomainId owner, DomainId grantee);

  // Maps a granted page; only the designated grantee may map.
  lv::Status Map(DomainId mapper, GrantRef ref);
  lv::Status Unmap(DomainId mapper, GrantRef ref);

  // Revokes the grant entirely (owner teardown). Fails if still mapped.
  lv::Status Revoke(GrantRef ref);

  bool IsActive(GrantRef ref) const { return grants_.contains(ref); }
  bool IsMapped(GrantRef ref) const {
    auto it = grants_.find(ref);
    return it != grants_.end() && it->second.mapped;
  }
  int64_t active_grants() const { return static_cast<int64_t>(grants_.size()); }
  int64_t GrantsOwnedBy(DomainId owner) const;

 private:
  struct Entry {
    DomainId owner = kInvalidDomain;
    DomainId grantee = kInvalidDomain;
    bool mapped = false;
  };
  GrantRef next_ref_ = 1;
  std::unordered_map<GrantRef, Entry> grants_;
};

}  // namespace hv
