// The sysctl power-control pseudo-device (paper §5.1):
//
// "To support migration without a XenStore, we create a new pseudo-device
//  called sysctl to handle power-related operations and implement it
//  following Xen's split driver model... These two drivers share a device
//  page through which communication happens and an event channel."
//
// The back-end lives in Dom0; the front-end is bound by the guest at boot.
// chaos issues an ioctl to the back-end to request suspend; the front-end
// receives the request over the event channel, saves guest state, unbinds
// its noxs resources, and acknowledges through the shared page.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/base/result.h"
#include "src/devices/costs.h"
#include "src/devices/types.h"
#include "src/hv/hypervisor.h"
#include "src/sim/sync.h"

namespace xdev {

class SysctlBackend {
 public:
  SysctlBackend(sim::Engine* engine, hv::Hypervisor* hv, ControlPages* control_pages,
                const Costs* costs);

  // Creates the sysctl device for a domain (noxs path). Returns the device
  // page entry the toolstack installs via hypercall.
  sim::Co<lv::Result<hv::DeviceInfo>> Create(sim::ExecCtx ctx, hv::DomainId domid);
  sim::Co<lv::Status> Destroy(sim::ExecCtx ctx, hv::DomainId domid);

  // Guest side: bind the front-end. `on_power_request` runs in the guest when
  // Dom0 requests a power operation; it must end with the guest acknowledging
  // (hypervisor shutdown + Ack()).
  using PowerHandler = std::function<sim::Co<void>(hv::ShutdownReason)>;
  sim::Co<lv::Status> FrontendConnect(sim::ExecCtx guest_ctx, hv::DomainId domid,
                                      const hv::DeviceInfo& info,
                                      PowerHandler on_power_request);

  // Toolstack side: request a power operation and wait for the guest's ack.
  sim::Co<lv::Status> RequestShutdown(sim::ExecCtx ctx, hv::DomainId domid,
                                      hv::ShutdownReason reason);

  // Called by the guest's power handler once its state is saved.
  sim::Co<void> Ack(sim::ExecCtx guest_ctx, hv::DomainId domid);

  bool HasDevice(hv::DomainId domid) const { return instances_.contains(domid); }

 private:
  struct Instance {
    hv::DomainId domid = hv::kInvalidDomain;
    hv::Port event_channel = hv::kInvalidPort;
    hv::GrantRef grant_ref = hv::kInvalidGrant;
    std::shared_ptr<SysctlControlPage> page;
    PowerHandler handler;
    std::unique_ptr<sim::OneShotEvent> acked;
  };

  sim::Engine* engine_;
  hv::Hypervisor* hv_;
  ControlPages* control_pages_;
  const Costs* costs_;
  std::unordered_map<hv::DomainId, Instance> instances_;
};

}  // namespace xdev
