// BackendDriver: a Dom0 split-driver back-end (netback / blkback) supporting
// both connection paths the paper contrasts (Figure 7):
//
//  * XenStore path: the toolstack announces the device by writing entries to
//    the back-end's store directory; the back-end (watching that directory)
//    allocates an event channel and grant reference and writes them back;
//    the booting guest reads them from the store and completes the Xenbus
//    handshake.
//  * noxs path: the toolstack requests the device directly through an ioctl
//    into the noxs kernel module; the back-end returns the communication
//    channel details, the toolstack stores them in the guest's device page
//    via hypercall, and the guest connects through a shared control page —
//    no store, no message-passing protocol.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/base/result.h"
#include "src/devices/costs.h"
#include "src/devices/hotplug.h"
#include "src/devices/types.h"
#include "src/hv/hypervisor.h"
#include "src/net/packet.h"
#include "src/net/switch.h"
#include "src/sim/sync.h"
#include "src/xenstore/daemon.h"

namespace xdev {

class BackendDriver {
 public:
  struct Stats {
    int64_t created = 0;
    int64_t destroyed = 0;
    int64_t xs_ops = 0;  // store round-trips issued by the back-end itself
  };

  // `sw` may be null for non-network back-ends.
  BackendDriver(sim::Engine* engine, hv::Hypervisor* hv, hv::DeviceType type,
                ControlPages* control_pages, xnet::Switch* sw, const Costs* costs);

  hv::DeviceType type() const { return type_; }

  // Hotplug runner used for udev-triggered setup (chaos paths). When unset,
  // hotplug must be run inline by the toolstack (xl path).
  void set_udev_hotplug(HotplugRunner* runner) { udev_hotplug_ = runner; }

  // --- XenStore path ---------------------------------------------------------

  // Starts the back-end watcher thread with its own store connection.
  void StartXsWatcher(xs::Daemon* store, sim::ExecCtx backend_ctx);
  // Stops the watcher and drains the engine until its frame has completed
  // (own-and-drain; must not be called from inside a coroutine).
  void StopXsWatcher();

  // Toolstack half of device creation: writes front-end + back-end entries
  // in a transaction, then waits for the back-end to reach InitWait. When
  // `inline_hotplug` is non-null the toolstack runs the hotplug script
  // synchronously (xl behaviour); otherwise the back-end fires a udev event.
  sim::Co<lv::Status> XsToolstackCreate(sim::ExecCtx ctx, xs::XsClient* client,
                                        hv::DomainId domid, HotplugRunner* inline_hotplug);
  // Closes the device (Closing -> Closed handshake) and removes the entries.
  // `inline_hotplug` mirrors create: xl runs the teardown script itself.
  sim::Co<lv::Status> XsToolstackDestroy(sim::ExecCtx ctx, xs::XsClient* client,
                                         hv::DomainId domid,
                                         HotplugRunner* inline_hotplug);
  // Guest half: xenbus front-end connect during boot.
  sim::Co<lv::Status> XsFrontendConnect(sim::ExecCtx guest_ctx, xs::XsClient* guest_client,
                                        hv::DomainId domid);

  // --- noxs path --------------------------------------------------------------

  // The chaos toolstack's ioctl (Fig. 7b step 1): back-end sets up the device
  // and returns the channel details for the device page.
  sim::Co<lv::Result<hv::DeviceInfo>> NoxsCreate(sim::ExecCtx ctx, hv::DomainId domid);
  sim::Co<lv::Status> NoxsDestroy(sim::ExecCtx ctx, hv::DomainId domid);
  // Guest front-end connect from the device-page entry (Fig. 7b step 4).
  sim::Co<lv::Status> NoxsFrontendConnect(sim::ExecCtx guest_ctx, hv::DomainId domid,
                                          const hv::DeviceInfo& info);

  // --- Common ------------------------------------------------------------------

  bool HasDevice(hv::DomainId domid) const { return instances_.contains(domid); }
  bool IsConnected(hv::DomainId domid) const;
  int64_t num_devices() const { return static_cast<int64_t>(instances_.size()); }
  const Stats& stats() const { return stats_; }

  // Waits until the front/back handshake completes (both Connected).
  sim::Co<void> WaitConnected(hv::DomainId domid);

  // Guests register their packet receive handler after connecting.
  void SetGuestRx(hv::DomainId domid, std::function<void(const xnet::Packet&)> rx);

 private:
  struct Instance {
    hv::DomainId domid = hv::kInvalidDomain;
    int devid = 0;
    hv::Port event_channel = hv::kInvalidPort;
    hv::GrantRef grant_ref = hv::kInvalidGrant;
    std::shared_ptr<DeviceControlPage> page;  // noxs only
    XenbusState backend_state = XenbusState::kInitialising;
    XenbusState frontend_state = XenbusState::kInitialising;
    bool hotplugged = false;
    bool via_noxs = false;
    std::unique_ptr<sim::OneShotEvent> ready;      // backend reached InitWait
    std::unique_ptr<sim::OneShotEvent> connected;  // both sides Connected
    std::unique_ptr<sim::OneShotEvent> closed;
    std::function<void(const xnet::Packet&)> guest_rx;
  };

  Instance& GetOrCreate(hv::DomainId domid);
  std::string BackendDir(hv::DomainId domid) const;
  std::string FrontendDir(hv::DomainId domid) const;
  const char* Kind() const;  // "vif" or "vbd"

  // Runs hotplug and plumbs the switch port.
  sim::Co<void> DoHotplug(sim::ExecCtx ctx, HotplugRunner* runner, hv::DomainId domid);
  sim::Co<void> UndoHotplug(sim::ExecCtx ctx, HotplugRunner* runner, hv::DomainId domid);

  // Watcher body + reactions (XenStore path).
  sim::Co<void> XsWatcherLoop(sim::ExecCtx ctx);
  sim::Co<void> XsBackendInit(sim::ExecCtx ctx, hv::DomainId domid);
  sim::Co<void> XsBackendOnFrontendConnected(sim::ExecCtx ctx, hv::DomainId domid);
  sim::Co<void> XsBackendClose(sim::ExecCtx ctx, hv::DomainId domid);

  // Shared teardown of channels/grants/pages.
  sim::Co<void> ReleaseResources(sim::ExecCtx ctx, Instance& inst);

  sim::Engine* engine_;
  hv::Hypervisor* hv_;
  hv::DeviceType type_;
  ControlPages* control_pages_;
  xnet::Switch* switch_;
  const Costs* costs_;
  HotplugRunner* udev_hotplug_ = nullptr;
  std::unique_ptr<xs::XsClient> xs_client_;
  sim::ExecCtx backend_ctx_;
  bool watcher_running_ = false;
  std::unordered_map<hv::DomainId, Instance> instances_;
  Stats stats_;
  // Owner-held watcher frame (own-and-drain, ROADMAP item 6). Declared last
  // so the frame dies before the client/channel it may be parked on.
  sim::Co<void> watcher_loop_;
};

}  // namespace xdev
