#include "src/devices/backend.h"

#include <cstdlib>
#include <cstring>

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/metrics/metrics.h"

namespace xdev {

namespace {
// Simulated latency from the toolstack announcing a device to the back-end
// being attached (ready + hotplugged), across both the XenStore and noxs
// paths.
metrics::Histogram& AttachHistogram() {
  static metrics::Histogram& h = metrics::GetHistogram("devices.backend.attach_ms", "ms");
  return h;
}
}  // namespace

namespace {
constexpr const char* kMod = "backend";
constexpr const char* kBackendWatchToken = "be-dir";
constexpr const char* kFrontendTokenPrefix = "fe-";
}  // namespace

const char* XenbusStateName(XenbusState s) {
  switch (s) {
    case XenbusState::kUnknown:
      return "Unknown";
    case XenbusState::kInitialising:
      return "Initialising";
    case XenbusState::kInitWait:
      return "InitWait";
    case XenbusState::kInitialised:
      return "Initialised";
    case XenbusState::kConnected:
      return "Connected";
    case XenbusState::kClosing:
      return "Closing";
    case XenbusState::kClosed:
      return "Closed";
  }
  return "?";
}

std::string XenbusStateValue(XenbusState s) {
  return lv::StrFormat("%d", static_cast<int>(s));
}

std::string VifName(hv::DomainId domid, int devid) {
  return lv::StrFormat("vif%lld.%d", (long long)domid, devid);
}

BackendDriver::BackendDriver(sim::Engine* engine, hv::Hypervisor* hv, hv::DeviceType type,
                             ControlPages* control_pages, xnet::Switch* sw,
                             const Costs* costs)
    : engine_(engine),
      hv_(hv),
      type_(type),
      control_pages_(control_pages),
      switch_(sw),
      costs_(costs) {}

const char* BackendDriver::Kind() const {
  return type_ == hv::DeviceType::kNet ? "vif" : "vbd";
}

std::string BackendDriver::BackendDir(hv::DomainId domid) const {
  return lv::StrFormat("/local/domain/0/backend/%s/%lld/0", Kind(), (long long)domid);
}

std::string BackendDriver::FrontendDir(hv::DomainId domid) const {
  return lv::StrFormat("/local/domain/%lld/device/%s/0", (long long)domid, Kind());
}

BackendDriver::Instance& BackendDriver::GetOrCreate(hv::DomainId domid) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    Instance inst;
    inst.domid = domid;
    inst.ready = std::make_unique<sim::OneShotEvent>(engine_);
    inst.connected = std::make_unique<sim::OneShotEvent>(engine_);
    inst.closed = std::make_unique<sim::OneShotEvent>(engine_);
    it = instances_.emplace(domid, std::move(inst)).first;
  }
  return it->second;
}

bool BackendDriver::IsConnected(hv::DomainId domid) const {
  auto it = instances_.find(domid);
  return it != instances_.end() &&
         it->second.backend_state == XenbusState::kConnected &&
         it->second.frontend_state == XenbusState::kConnected;
}

sim::Co<void> BackendDriver::WaitConnected(hv::DomainId domid) {
  co_await GetOrCreate(domid).connected->Wait();
}

void BackendDriver::SetGuestRx(hv::DomainId domid,
                               std::function<void(const xnet::Packet&)> rx) {
  GetOrCreate(domid).guest_rx = std::move(rx);
}

sim::Co<void> BackendDriver::DoHotplug(sim::ExecCtx ctx, HotplugRunner* runner,
                                       hv::DomainId domid) {
  co_await runner->Setup(ctx, type_);
  Instance& inst = GetOrCreate(domid);
  inst.hotplugged = true;
  if (type_ == hv::DeviceType::kNet && switch_ != nullptr) {
    co_await ctx.Work(switch_->costs().port_update);
    (void)switch_->AddPort(VifName(domid, inst.devid), [this, domid](const xnet::Packet& p) {
      auto it = instances_.find(domid);
      if (it != instances_.end() && it->second.guest_rx) {
        it->second.guest_rx(p);
      }
    });
  }
}

sim::Co<void> BackendDriver::UndoHotplug(sim::ExecCtx ctx, HotplugRunner* runner,
                                         hv::DomainId domid) {
  Instance& inst = GetOrCreate(domid);
  if (!inst.hotplugged) {
    co_return;
  }
  co_await runner->Teardown(ctx, type_);
  inst.hotplugged = false;
  if (type_ == hv::DeviceType::kNet && switch_ != nullptr) {
    co_await ctx.Work(switch_->costs().port_update);
    (void)switch_->RemovePort(VifName(domid, inst.devid));
  }
}

sim::Co<void> BackendDriver::ReleaseResources(sim::ExecCtx ctx, Instance& inst) {
  co_await ctx.Work(costs_->backend_teardown);
  if (inst.event_channel != hv::kInvalidPort) {
    (void)hv_->event_channels().Close(inst.event_channel);
    inst.event_channel = hv::kInvalidPort;
  }
  if (inst.grant_ref != hv::kInvalidGrant) {
    if (hv_->grant_table().IsMapped(inst.grant_ref)) {
      (void)hv_->grant_table().Unmap(inst.domid, inst.grant_ref);
    }
    (void)hv_->grant_table().Revoke(inst.grant_ref);
    control_pages_->Remove(inst.grant_ref);
    inst.grant_ref = hv::kInvalidGrant;
  }
}

// --- XenStore path -----------------------------------------------------------

void BackendDriver::StartXsWatcher(xs::Daemon* store, sim::ExecCtx backend_ctx) {
  LV_CHECK_MSG(!watcher_running_, "watcher already running");
  xs_client_ = std::make_unique<xs::XsClient>(engine_, store, hv::kDom0);
  backend_ctx_ = backend_ctx;
  watcher_running_ = true;
  watcher_loop_ = XsWatcherLoop(backend_ctx);
  watcher_loop_.Start();
}

void BackendDriver::StopXsWatcher() {
  if (!watcher_running_ || !xs_client_) {
    return;
  }
  watcher_running_ = false;
  xs_client_->InjectShutdownEvent();
  // Drain: step the engine until the watcher frame completes so no queued
  // wakeup still references it (same contract as ChaosDaemon::Stop).
  while (!watcher_loop_.done() && engine_->Step()) {
  }
}

sim::Co<void> BackendDriver::XsWatcherLoop(sim::ExecCtx ctx) {
  // The back-end registers a watch on its directory; the toolstack writing
  // there announces a new device (paper Fig. 7a, step 1).
  std::string watch_dir = lv::StrFormat("/local/domain/0/backend/%s", Kind());
  (void)co_await xs_client_->Watch(ctx, watch_dir, kBackendWatchToken);
  ++stats_.xs_ops;
  while (true) {
    xs::WatchEvent ev = co_await xs_client_->NextWatchEvent();
    if (ev.token == xs::XsClient::kStopToken) {
      break;
    }
    std::vector<std::string> segs = lv::Split(ev.fired_path, '/');
    if (ev.token == kBackendWatchToken) {
      // local/domain/0/backend/<kind>/<domid>/<devid>/<field>
      if (segs.size() < 8 || segs[7] != "state") {
        continue;
      }
      hv::DomainId domid = std::atoll(segs[5].c_str());
      auto state = co_await xs_client_->Read(ctx, ev.fired_path);
      ++stats_.xs_ops;
      if (!state.ok()) {
        continue;  // Entry vanished (device being torn down).
      }
      Instance& inst = GetOrCreate(domid);
      if (*state == XenbusStateValue(XenbusState::kInitialising) &&
          inst.backend_state == XenbusState::kInitialising && !inst.ready->triggered()) {
        co_await XsBackendInit(ctx, domid);
      } else if (*state == XenbusStateValue(XenbusState::kClosing)) {
        co_await XsBackendClose(ctx, domid);
      }
    } else if (lv::HasPrefix(ev.token, kFrontendTokenPrefix)) {
      hv::DomainId domid = std::atoll(ev.token.c_str() + strlen(kFrontendTokenPrefix));
      auto it = instances_.find(domid);
      if (it == instances_.end()) {
        continue;
      }
      auto state = co_await xs_client_->Read(ctx, ev.fired_path);
      ++stats_.xs_ops;
      if (!state.ok()) {
        continue;
      }
      if (*state == XenbusStateValue(XenbusState::kConnected)) {
        co_await XsBackendOnFrontendConnected(ctx, domid);
      }
    }
  }
}

sim::Co<void> BackendDriver::XsBackendInit(sim::ExecCtx ctx, hv::DomainId domid) {
  Instance& inst = GetOrCreate(domid);
  co_await ctx.Work(costs_->backend_init);
  // Paper Fig. 7a step 2: back-end assigns event channel + grant reference
  // and writes them back to the store.
  inst.event_channel = hv_->event_channels().Alloc(hv::kDom0, domid);
  inst.grant_ref = hv_->grant_table().Grant(hv::kDom0, domid);
  std::string be = BackendDir(domid);
  (void)co_await xs_client_->Write(ctx, be + "/event-channel",
                                   lv::StrFormat("%lld", (long long)inst.event_channel));
  (void)co_await xs_client_->Write(ctx, be + "/ring-ref",
                                   lv::StrFormat("%lld", (long long)inst.grant_ref));
  inst.backend_state = XenbusState::kInitWait;
  (void)co_await xs_client_->Write(ctx, be + "/state",
                                   XenbusStateValue(XenbusState::kInitWait));
  stats_.xs_ops += 3;
  // Watch the front-end's state to complete the handshake later.
  (void)co_await xs_client_->Watch(ctx, FrontendDir(domid) + "/state",
                                   lv::StrFormat("%s%lld", kFrontendTokenPrefix,
                                                 (long long)domid));
  ++stats_.xs_ops;
  // udev event -> xendevd (chaos+XS mode). Under xl the toolstack runs the
  // hotplug script itself.
  if (udev_hotplug_ != nullptr) {
    engine_->Spawn(DoHotplug(backend_ctx_, udev_hotplug_, domid));
  }
  ++stats_.created;
  inst.ready->Trigger();
  LV_DEBUG(kMod, "%s backend for dom%lld ready", Kind(), (long long)domid);
}

sim::Co<void> BackendDriver::XsBackendOnFrontendConnected(sim::ExecCtx ctx,
                                                          hv::DomainId domid) {
  Instance& inst = GetOrCreate(domid);
  inst.frontend_state = XenbusState::kConnected;
  inst.backend_state = XenbusState::kConnected;
  (void)co_await xs_client_->Write(ctx, BackendDir(domid) + "/state",
                                   XenbusStateValue(XenbusState::kConnected));
  ++stats_.xs_ops;
  inst.connected->Trigger();
}

sim::Co<void> BackendDriver::XsBackendClose(sim::ExecCtx ctx, hv::DomainId domid) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return;
  }
  Instance& inst = it->second;
  if (inst.backend_state == XenbusState::kClosed) {
    co_return;
  }
  if (udev_hotplug_ != nullptr) {
    co_await UndoHotplug(ctx, udev_hotplug_, domid);
  }
  co_await ReleaseResources(ctx, inst);
  (void)co_await xs_client_->Unwatch(ctx, FrontendDir(domid) + "/state",
                                     lv::StrFormat("%s%lld", kFrontendTokenPrefix,
                                                   (long long)domid));
  inst.backend_state = XenbusState::kClosed;
  (void)co_await xs_client_->Write(ctx, BackendDir(domid) + "/state",
                                   XenbusStateValue(XenbusState::kClosed));
  stats_.xs_ops += 2;
  inst.closed->Trigger();
}

sim::Co<lv::Status> BackendDriver::XsToolstackCreate(sim::ExecCtx ctx, xs::XsClient* client,
                                                     hv::DomainId domid,
                                                     HotplugRunner* inline_hotplug) {
  lv::TimePoint attach_start = engine_->now();
  Instance& inst = GetOrCreate(domid);
  std::string be = BackendDir(domid);
  std::string fe = FrontendDir(domid);
  // libxl writes the front-end and back-end entries atomically.
  lv::Status wrote = co_await xs::RunTransaction(
      ctx, client, /*max_retries=*/8, [&](xs::TxnId txn) -> sim::Co<lv::Status> {
        lv::Status s = co_await client->Write(ctx, be + "/frontend", fe, txn);
        if (!s.ok()) {
          co_return s;
        }
        (void)co_await client->Write(ctx, be + "/online", "1", txn);
        (void)co_await client->Write(ctx, be + "/handle", "0", txn);
        if (type_ == hv::DeviceType::kNet) {
          (void)co_await client->Write(ctx, be + "/mac",
                                       lv::StrFormat("00:16:3e:00:%02x:%02x",
                                                     (int)(domid >> 8) & 0xff,
                                                     (int)domid & 0xff),
                                       txn);
        } else {
          (void)co_await client->Write(ctx, be + "/params", "aio:/vm/disk.img", txn);
        }
        (void)co_await client->Write(ctx, fe + "/backend", be, txn);
        (void)co_await client->Write(ctx, fe + "/backend-id", "0", txn);
        (void)co_await client->Write(ctx, fe + "/handle", "0", txn);
        (void)co_await client->Write(ctx, fe + "/state",
                                     XenbusStateValue(XenbusState::kInitialising), txn);
        // Writing the back-end state entry last fires the back-end's watch.
        co_return co_await client->Write(ctx, be + "/state",
                                         XenbusStateValue(XenbusState::kInitialising), txn);
      });
  if (!wrote.ok()) {
    co_return wrote;
  }
  // Wait for the back-end to pick the device up and reach InitWait.
  co_await inst.ready->Wait();
  if (inline_hotplug != nullptr) {
    // xl runs the hotplug script synchronously during creation (§5.3).
    co_await DoHotplug(ctx, inline_hotplug, domid);
  }
  static metrics::Counter& attaches = metrics::GetCounter("devices.backend.attaches");
  attaches.Inc();
  AttachHistogram().RecordDuration(engine_->now() - attach_start);
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> BackendDriver::XsFrontendConnect(sim::ExecCtx guest_ctx,
                                                     xs::XsClient* guest_client,
                                                     hv::DomainId domid) {
  co_await guest_ctx.Work(costs_->frontend_init);
  std::string fe = FrontendDir(domid);
  // Paper Fig. 7a step 3: guest contacts the XenStore to retrieve what the
  // back-end wrote.
  auto be_path = co_await guest_client->Read(guest_ctx, fe + "/backend");
  if (!be_path.ok()) {
    co_return be_path.error();
  }
  auto chan = co_await guest_client->Read(guest_ctx, *be_path + "/event-channel");
  if (!chan.ok()) {
    co_return chan.error();
  }
  auto ring = co_await guest_client->Read(guest_ctx, *be_path + "/ring-ref");
  if (!ring.ok()) {
    co_return ring.error();
  }
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no backend instance");
  }
  Instance& inst = it->second;
  lv::Status mapped = hv_->grant_table().Map(domid, inst.grant_ref);
  if (!mapped.ok()) {
    co_return mapped;
  }
  (void)hv_->event_channels().Bind(inst.event_channel, domid, [] {});
  // Announce Connected; the back-end's watch completes the handshake.
  co_return co_await guest_client->Write(guest_ctx, fe + "/state",
                                         XenbusStateValue(XenbusState::kConnected));
}

sim::Co<lv::Status> BackendDriver::XsToolstackDestroy(sim::ExecCtx ctx, xs::XsClient* client,
                                                      hv::DomainId domid,
                                                      HotplugRunner* inline_hotplug) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no device for domain");
  }
  // References into instances_ survive rehashing, iterators do not — a
  // concurrent create can insert (and rehash) while we are suspended below.
  Instance& inst = it->second;
  // Ask the back-end to close, then remove the store entries.
  lv::Status s = co_await client->Write(ctx, BackendDir(domid) + "/state",
                                        XenbusStateValue(XenbusState::kClosing));
  if (!s.ok()) {
    co_return s;
  }
  co_await inst.closed->Wait();
  if (inline_hotplug != nullptr) {
    co_await UndoHotplug(ctx, inline_hotplug, domid);
  }
  (void)co_await client->Rm(ctx, FrontendDir(domid));
  (void)co_await client->Rm(ctx, BackendDir(domid));
  ++stats_.destroyed;
  instances_.erase(domid);
  co_return lv::Status::Ok();
}

// --- noxs path ----------------------------------------------------------------

sim::Co<lv::Result<hv::DeviceInfo>> BackendDriver::NoxsCreate(sim::ExecCtx ctx,
                                                              hv::DomainId domid) {
  // Fig. 7b step 1: ioctl into the noxs kernel module; the back-end sets the
  // device up and returns the communication-channel details directly.
  lv::TimePoint attach_start = engine_->now();
  co_await ctx.Work(costs_->ioctl + costs_->backend_init);
  Instance& inst = GetOrCreate(domid);
  inst.via_noxs = true;
  inst.event_channel = hv_->event_channels().Alloc(hv::kDom0, domid);
  inst.grant_ref = hv_->grant_table().Grant(hv::kDom0, domid);
  inst.page = std::make_shared<DeviceControlPage>();
  inst.page->type = type_;
  inst.page->event_channel = inst.event_channel;
  inst.page->backend_state = XenbusState::kInitWait;
  inst.backend_state = XenbusState::kInitWait;
  control_pages_->RegisterDevice(inst.grant_ref, inst.page);
  // Back-end side of the channel: complete the handshake when the front-end
  // flips its control-page state and notifies.
  (void)hv_->event_channels().Bind(
      inst.event_channel, hv::kDom0, [this, domid] {
        auto it = instances_.find(domid);
        if (it == instances_.end() || !it->second.page) {
          return;
        }
        Instance& inst2 = it->second;
        if (inst2.page->frontend_state == XenbusState::kConnected &&
            inst2.backend_state != XenbusState::kConnected) {
          inst2.frontend_state = XenbusState::kConnected;
          inst2.backend_state = XenbusState::kConnected;
          inst2.page->backend_state = XenbusState::kConnected;
          inst2.connected->Trigger();
        }
      });
  if (udev_hotplug_ != nullptr) {
    engine_->Spawn(DoHotplug(backend_ctx_.cpu != nullptr ? backend_ctx_ : ctx,
                             udev_hotplug_, domid));
  }
  ++stats_.created;
  inst.ready->Trigger();
  static metrics::Counter& attaches = metrics::GetCounter("devices.backend.attaches");
  attaches.Inc();
  AttachHistogram().RecordDuration(engine_->now() - attach_start);
  hv::DeviceInfo info;
  info.type = type_;
  info.backend_domid = hv::kDom0;
  info.event_channel = inst.event_channel;
  info.grant_ref = inst.grant_ref;
  info.backend_handle = static_cast<int>(domid);
  co_return info;
}

sim::Co<lv::Status> BackendDriver::NoxsFrontendConnect(sim::ExecCtx guest_ctx,
                                                       hv::DomainId domid,
                                                       const hv::DeviceInfo& info) {
  co_await guest_ctx.Work(costs_->frontend_init);
  // Fig. 7b step 4: map the grant from the device page entry, bind the event
  // channel, flip the control-page state and notify the back-end.
  lv::Status mapped = hv_->grant_table().Map(domid, info.grant_ref);
  if (!mapped.ok()) {
    co_return mapped;
  }
  std::shared_ptr<DeviceControlPage> page = control_pages_->FindDevice(info.grant_ref);
  if (!page) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no control page behind grant");
  }
  (void)hv_->event_channels().Bind(info.event_channel, domid, [] {});
  co_await guest_ctx.Work(costs_->control_page_op);
  page->frontend_state = XenbusState::kConnected;
  co_return co_await hv_->event_channels().Notify(guest_ctx, info.event_channel, domid);
}

sim::Co<lv::Status> BackendDriver::NoxsDestroy(sim::ExecCtx ctx, hv::DomainId domid) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no device for domain");
  }
  // References into instances_ survive rehashing, iterators do not — a
  // concurrent create can insert (and rehash) while we are suspended below.
  Instance& inst = it->second;
  co_await ctx.Work(costs_->ioctl + costs_->noxs_teardown_extra);
  if (udev_hotplug_ != nullptr) {
    co_await UndoHotplug(ctx, udev_hotplug_, domid);
  }
  co_await ReleaseResources(ctx, inst);
  inst.closed->Trigger();
  ++stats_.destroyed;
  instances_.erase(domid);
  co_return lv::Status::Ok();
}

}  // namespace xdev
