// Shared device-layer types: Xenbus handshake states and control pages.
//
// Control pages are the noxs replacement for XenStore state entries: a page
// of memory shared (via grant) between a back-end and a front-end, through
// which the two exchange state, MAC address, etc. (paper §5.1: "this
// information was previously kept in the XenStore and is now stored in a
// device control page pointed to by the grant reference").
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "src/base/units.h"
#include "src/hv/types.h"

namespace xdev {

// Xenbus connection states (xen/include/public/io/xenbus.h).
enum class XenbusState {
  kUnknown = 0,
  kInitialising = 1,
  kInitWait = 2,
  kInitialised = 3,
  kConnected = 4,
  kClosing = 5,
  kClosed = 6,
};

const char* XenbusStateName(XenbusState s);
// XenStore state entries carry the numeric value as a string.
std::string XenbusStateValue(XenbusState s);

// Control page for net/block devices.
struct DeviceControlPage {
  hv::DeviceType type = hv::DeviceType::kNet;
  XenbusState backend_state = XenbusState::kInitialising;
  XenbusState frontend_state = XenbusState::kInitialising;
  std::string mac;          // net only
  lv::Bytes disk_size;      // block only
  hv::Port event_channel = hv::kInvalidPort;
};

// Control page for the sysctl power pseudo-device (suspend/resume/migrate).
struct SysctlControlPage {
  hv::ShutdownReason request = hv::ShutdownReason::kNone;
  bool acked = false;
};

// Registry mapping grant references to in-simulation control pages. Mapping
// a grant through the hypervisor yields access to the page content here.
class ControlPages {
 public:
  void RegisterDevice(hv::GrantRef ref, std::shared_ptr<DeviceControlPage> page) {
    device_pages_[ref] = std::move(page);
  }
  void RegisterSysctl(hv::GrantRef ref, std::shared_ptr<SysctlControlPage> page) {
    sysctl_pages_[ref] = std::move(page);
  }
  std::shared_ptr<DeviceControlPage> FindDevice(hv::GrantRef ref) const {
    auto it = device_pages_.find(ref);
    return it == device_pages_.end() ? nullptr : it->second;
  }
  std::shared_ptr<SysctlControlPage> FindSysctl(hv::GrantRef ref) const {
    auto it = sysctl_pages_.find(ref);
    return it == sysctl_pages_.end() ? nullptr : it->second;
  }
  void Remove(hv::GrantRef ref) {
    device_pages_.erase(ref);
    sysctl_pages_.erase(ref);
  }

  // Registered pages of either kind (leak invariant: returns to baseline
  // once every VM is gone).
  int64_t num_pages() const {
    return static_cast<int64_t>(device_pages_.size() + sysctl_pages_.size());
  }

 private:
  std::unordered_map<hv::GrantRef, std::shared_ptr<DeviceControlPage>> device_pages_;
  std::unordered_map<hv::GrantRef, std::shared_ptr<SysctlControlPage>> sysctl_pages_;
};

// Canonical interface name for a guest's virtual NIC ("vif<domid>.<devid>").
std::string VifName(hv::DomainId domid, int devid);

}  // namespace xdev
