#include "src/devices/hotplug.h"

#include "src/metrics/metrics.h"
#include "src/obs/obs.h"

namespace xdev {

// Both online and offline invocations count: each is one fork/exec of the
// script (or one xendevd binary dispatch).

sim::Co<void> BashHotplug::RunScript(sim::ExecCtx ctx, hv::DeviceType type) {
  static metrics::Counter& runs = metrics::GetCounter("devices.hotplug.bash_runs");
  runs.Inc();
  // Uncontended, Acquire() completes synchronously (no event), so serial
  // callers see no timing change; overlapping scripts queue FIFO.
  co_await lock_->Acquire();
  lv::Duration stall = TakeStall();
  if (!stall.is_zero()) {
    // A buggy/timing-out script spins before completing, lock held. Worth a
    // flight entry: stalls are the classic "why was this create slow" answer.
    obs::FlightRecorder::Get().Record(ctx.node, obs::OpRef{ctx.op, ctx.op_root, 0},
                                      "devices", "hotplug.stall", false,
                                      stall.ns() / 1000000);
    co_await ctx.Work(stall);
  }
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->bash_block_setup
                                                   : costs_->bash_hotplug);
  lock_->Release();
}

sim::Co<void> BashHotplug::Setup(sim::ExecCtx ctx, hv::DeviceType type) {
  co_await RunScript(ctx, type);
}

sim::Co<void> BashHotplug::Teardown(sim::ExecCtx ctx, hv::DeviceType type) {
  // Teardown runs the same script with "offline"; same fork/exec cost class.
  co_await RunScript(ctx, type);
}

sim::Co<void> Xendevd::Setup(sim::ExecCtx ctx, hv::DeviceType type) {
  static metrics::Counter& runs = metrics::GetCounter("devices.hotplug.xendevd_runs");
  runs.Inc();
  lv::Duration stall = TakeStall();
  if (!stall.is_zero()) {
    obs::FlightRecorder::Get().Record(ctx.node, obs::OpRef{ctx.op, ctx.op_root, 0},
                                      "devices", "hotplug.stall", false,
                                      stall.ns() / 1000000);
    co_await ctx.Work(stall);
  }
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->xendevd_block_setup
                                                   : costs_->xendevd_setup);
}

sim::Co<void> Xendevd::Teardown(sim::ExecCtx ctx, hv::DeviceType type) {
  static metrics::Counter& runs = metrics::GetCounter("devices.hotplug.xendevd_runs");
  runs.Inc();
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->xendevd_block_setup
                                                   : costs_->xendevd_setup);
}

}  // namespace xdev
