#include "src/devices/hotplug.h"

namespace xdev {

sim::Co<void> BashHotplug::Setup(sim::ExecCtx ctx, hv::DeviceType type) {
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->bash_block_setup
                                                   : costs_->bash_hotplug);
}

sim::Co<void> BashHotplug::Teardown(sim::ExecCtx ctx, hv::DeviceType type) {
  // Teardown runs the same script with "offline"; same fork/exec cost class.
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->bash_block_setup
                                                   : costs_->bash_hotplug);
}

sim::Co<void> Xendevd::Setup(sim::ExecCtx ctx, hv::DeviceType type) {
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->xendevd_block_setup
                                                   : costs_->xendevd_setup);
}

sim::Co<void> Xendevd::Teardown(sim::ExecCtx ctx, hv::DeviceType type) {
  co_await ctx.Work(type == hv::DeviceType::kBlock ? costs_->xendevd_block_setup
                                                   : costs_->xendevd_setup);
}

}  // namespace xdev
