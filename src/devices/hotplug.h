// Hotplug mechanisms: the user-space step that plumbs a new virtual device
// into Dom0 (add the vif to the software switch, set up the block image).
//
// Standard Xen runs user-configured bash scripts (slow: fork/exec + shell);
// LightVM replaces them with xendevd, "a binary daemon [that] listens for
// udev events from the backends and executes a pre-defined setup without
// forking or bash scripts" (paper §5.3).
#pragma once

#include <memory>

#include "src/base/result.h"
#include "src/devices/costs.h"
#include "src/faults/hooks.h"
#include "src/hv/types.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace xdev {

class HotplugRunner {
 public:
  virtual ~HotplugRunner() = default;
  // Charges the setup cost for one device of `type` to `ctx`.
  virtual sim::Co<void> Setup(sim::ExecCtx ctx, hv::DeviceType type) = 0;
  // Charges the teardown cost.
  virtual sim::Co<void> Teardown(sim::ExecCtx ctx, hv::DeviceType type) = 0;
  virtual const char* name() const = 0;

  // Fault-injection hook (may stay null). A scheduled stall makes the next
  // script run(s) take extra time — and in bash mode the stalled script holds
  // the global hotplug lock, queueing every concurrent create behind it.
  void set_faults(faults::FaultHooks* faults) { faults_ = faults; }

 protected:
  // Extra latency the current run must absorb, or zero.
  lv::Duration TakeStall() { return faults_ != nullptr ? faults_->TakeHotplugStall() : lv::Duration(); }

 private:
  faults::FaultHooks* faults_ = nullptr;
};

// Bash hotplug scripts invoked by xl/udevd. Script runs are serialized by a
// global lock, as in real Xen (the scripts take a lock on entry to protect
// shared bridge/iptables state) — concurrent creates queue behind it.
class BashHotplug : public HotplugRunner {
 public:
  BashHotplug(sim::Engine* engine, const Costs* costs)
      : costs_(costs), lock_(std::make_unique<sim::Semaphore>(engine, 1)) {}
  sim::Co<void> Setup(sim::ExecCtx ctx, hv::DeviceType type) override;
  sim::Co<void> Teardown(sim::ExecCtx ctx, hv::DeviceType type) override;
  const char* name() const override { return "bash-scripts"; }

 private:
  sim::Co<void> RunScript(sim::ExecCtx ctx, hv::DeviceType type);

  const Costs* costs_;
  std::unique_ptr<sim::Semaphore> lock_;
};

// The xendevd binary daemon.
class Xendevd : public HotplugRunner {
 public:
  explicit Xendevd(const Costs* costs) : costs_(costs) {}
  sim::Co<void> Setup(sim::ExecCtx ctx, hv::DeviceType type) override;
  sim::Co<void> Teardown(sim::ExecCtx ctx, hv::DeviceType type) override;
  const char* name() const override { return "xendevd"; }

 private:
  const Costs* costs_;
};

}  // namespace xdev
