// Device-layer cost model.
//
// The headline numbers: launching a bash hotplug script costs tens of
// milliseconds (paper §5.3), which is why xl's device phase dominates VM
// creation at low guest counts (Figure 5); xendevd replaces it with a
// pre-defined setup "without forking or bash scripts".
#pragma once

#include "src/base/time.h"

namespace xdev {

struct Costs {
  // ioctl into the noxs kernel module (chaos create path, Fig. 7b step 1).
  lv::Duration ioctl = lv::Duration::Micros(5);
  // Back-end device initialization (rings, state machines).
  lv::Duration backend_init = lv::Duration::MillisF(1.5);
  // Front-end initialization inside the guest.
  lv::Duration frontend_init = lv::Duration::Micros(150);
  // Reading/writing a field of a shared control page.
  lv::Duration control_page_op = lv::Duration::Micros(1);
  // fork/exec of bash + the script body (brctl/ip plus setup); "launching
  // and executing bash scripts is a slow process taking tens of ms" (§5.3).
  lv::Duration bash_hotplug = lv::Duration::Millis(40);
  // xendevd handling a udev event with a pre-defined binary setup.
  lv::Duration xendevd_setup = lv::Duration::Micros(400);
  // Block device image setup (losetup etc.) done by scripts vs xendevd.
  lv::Duration bash_block_setup = lv::Duration::Millis(25);
  lv::Duration xendevd_block_setup = lv::Duration::Micros(600);
  // Back-end teardown.
  lv::Duration backend_teardown = lv::Duration::Micros(200);
  // noxs device destruction is not yet optimized (paper §6.2: "this is due
  // to device destruction times in noxs which we have not yet optimized and
  // remain as future work").
  lv::Duration noxs_teardown_extra = lv::Duration::Millis(8);
};

}  // namespace xdev
