#include "src/devices/sysctl.h"

#include "src/base/log.h"

namespace xdev {

SysctlBackend::SysctlBackend(sim::Engine* engine, hv::Hypervisor* hv,
                             ControlPages* control_pages, const Costs* costs)
    : engine_(engine), hv_(hv), control_pages_(control_pages), costs_(costs) {}

sim::Co<lv::Result<hv::DeviceInfo>> SysctlBackend::Create(sim::ExecCtx ctx,
                                                          hv::DomainId domid) {
  co_await ctx.Work(costs_->ioctl + costs_->backend_init);
  Instance inst;
  inst.domid = domid;
  inst.event_channel = hv_->event_channels().Alloc(hv::kDom0, domid);
  inst.grant_ref = hv_->grant_table().Grant(hv::kDom0, domid);
  inst.page = std::make_shared<SysctlControlPage>();
  inst.acked = std::make_unique<sim::OneShotEvent>(engine_);
  control_pages_->RegisterSysctl(inst.grant_ref, inst.page);
  // Back-end side: the guest notifying us means the ack flag was set.
  hv::Port chan = inst.event_channel;
  (void)hv_->event_channels().Bind(chan, hv::kDom0, [this, domid] {
    auto it = instances_.find(domid);
    if (it != instances_.end() && it->second.page->acked) {
      it->second.acked->Trigger();
    }
  });
  hv::DeviceInfo info;
  info.type = hv::DeviceType::kSysctl;
  info.backend_domid = hv::kDom0;
  info.event_channel = inst.event_channel;
  info.grant_ref = inst.grant_ref;
  instances_.emplace(domid, std::move(inst));
  co_return info;
}

sim::Co<lv::Status> SysctlBackend::FrontendConnect(sim::ExecCtx guest_ctx,
                                                   hv::DomainId domid,
                                                   const hv::DeviceInfo& info,
                                                   PowerHandler on_power_request) {
  co_await guest_ctx.Work(costs_->frontend_init);
  lv::Status mapped = hv_->grant_table().Map(domid, info.grant_ref);
  if (!mapped.ok()) {
    co_return mapped;
  }
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no sysctl backend instance");
  }
  it->second.handler = std::move(on_power_request);
  // Front-end side of the channel: Dom0 notifying us means a power request
  // is pending in the shared page.
  (void)hv_->event_channels().Bind(info.event_channel, domid, [this, domid] {
    auto it2 = instances_.find(domid);
    if (it2 == instances_.end() || !it2->second.handler) {
      return;
    }
    hv::ShutdownReason reason = it2->second.page->request;
    if (reason != hv::ShutdownReason::kNone && !it2->second.page->acked) {
      engine_->Spawn(it2->second.handler(reason));
    }
  });
  // The page is level-triggered: a request may already be pending from
  // before the front-end bound (e.g. suspend racing a resumed guest's boot).
  if (it->second.page->request != hv::ShutdownReason::kNone && !it->second.page->acked) {
    engine_->Spawn(it->second.handler(it->second.page->request));
  }
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> SysctlBackend::RequestShutdown(sim::ExecCtx ctx, hv::DomainId domid,
                                                   hv::ShutdownReason reason) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no sysctl device for domain");
  }
  // chaos issues an ioctl to the sysctl back-end, which sets a field in the
  // shared page to denote the shutdown reason and triggers the channel.
  co_await ctx.Work(costs_->ioctl + costs_->control_page_op);
  it->second.page->request = reason;
  lv::Status notified =
      co_await hv_->event_channels().Notify(ctx, it->second.event_channel, hv::kDom0);
  if (!notified.ok()) {
    co_return notified;
  }
  co_await it->second.acked->Wait();
  // Re-arm for a future request (after resume).
  it->second.page->request = hv::ShutdownReason::kNone;
  it->second.page->acked = false;
  it->second.acked = std::make_unique<sim::OneShotEvent>(engine_);
  co_return lv::Status::Ok();
}

sim::Co<void> SysctlBackend::Ack(sim::ExecCtx guest_ctx, hv::DomainId domid) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return;
  }
  co_await guest_ctx.Work(costs_->control_page_op);
  it->second.page->acked = true;
  (void)co_await hv_->event_channels().Notify(guest_ctx, it->second.event_channel, domid);
}

sim::Co<lv::Status> SysctlBackend::Destroy(sim::ExecCtx ctx, hv::DomainId domid) {
  auto it = instances_.find(domid);
  if (it == instances_.end()) {
    co_return lv::Err(lv::ErrorCode::kNotFound, "no sysctl device for domain");
  }
  co_await ctx.Work(costs_->backend_teardown);
  Instance& inst = it->second;
  (void)hv_->event_channels().Close(inst.event_channel);
  if (hv_->grant_table().IsMapped(inst.grant_ref)) {
    (void)hv_->grant_table().Unmap(domid, inst.grant_ref);
  }
  (void)hv_->grant_table().Revoke(inst.grant_ref);
  control_pages_->Remove(inst.grant_ref);
  instances_.erase(it);
  co_return lv::Status::Ok();
}

}  // namespace xdev
