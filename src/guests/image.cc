#include "src/guests/image.h"

namespace guests {

using lv::Bytes;
using lv::Duration;

const char* GuestKindName(GuestKind kind) {
  switch (kind) {
    case GuestKind::kUnikernel:
      return "unikernel";
    case GuestKind::kTinyx:
      return "tinyx";
    case GuestKind::kDebian:
      return "debian";
  }
  return "?";
}

GuestImage DaytimeUnikernel() {
  GuestImage img;
  img.name = "daytime";
  img.kind = GuestKind::kUnikernel;
  img.image_size = Bytes::KiB(480);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiBF(3.6);
  img.boot_cpu = Duration::MillisF(2.2);  // Mini-OS init + lwip + daytime app.
  img.net_stack = NetStackKind::kLwip;
  return img;
}

GuestImage NoopUnikernel() {
  GuestImage img;
  img.name = "noop";
  img.kind = GuestKind::kUnikernel;
  img.image_size = Bytes::KiB(300);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiBF(3.6);
  img.boot_cpu = Duration::MillisF(1.4);
  img.wants_net = false;  // "a noop unikernel with no devices" (§6.1)
  img.net_stack = NetStackKind::kNone;
  // Mini-OS's periodic timer: a hair above zero idle load (Figure 15 shows
  // the unikernel "only a fraction of a percentage point higher" than
  // Docker).
  img.bg_work = Duration::Micros(2);
  img.bg_period = Duration::Seconds(1);
  return img;
}

GuestImage MinipythonUnikernel() {
  GuestImage img;
  img.name = "minipython";
  img.kind = GuestKind::kUnikernel;
  img.image_size = Bytes::MiB(1);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiB(8);
  img.boot_cpu = Duration::MillisF(2.5);  // interpreter init on top of Mini-OS
  img.net_stack = NetStackKind::kLwip;
  return img;
}

GuestImage ClickOsFirewall() {
  GuestImage img;
  img.name = "clickos-fw";
  img.kind = GuestKind::kUnikernel;
  img.image_size = Bytes::MiBF(1.7);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiB(8);
  img.boot_cpu = Duration::MillisF(6.0);  // Click router config instantiation
  img.net_stack = NetStackKind::kLwip;
  // Calibrated so ~250 clients at 10 Mbps saturate 13 guest cores (Fig 16a):
  // 10 Mbps = ~833 pps of 1500B frames; 13 cores / (250 * 833 pps) = ~62 us.
  img.per_packet_cpu = Duration::Micros(62);
  return img;
}

GuestImage TlsUnikernel() {
  GuestImage img;
  img.name = "tls-unikernel";
  img.kind = GuestKind::kUnikernel;
  img.image_size = Bytes::MiB(1);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiB(16);
  img.boot_cpu = Duration::MillisF(4.0);  // axtls + lwip init; boots in 6 ms.
  img.net_stack = NetStackKind::kLwip;
  // lwip inefficiency: ~1/5 of the Linux-stack throughput (§7.3).
  img.tls_handshake_cpu = Duration::Millis(50);
  return img;
}

GuestImage TinyxNoop() {
  GuestImage img;
  img.name = "tinyx";
  img.kind = GuestKind::kTinyx;
  img.image_size = Bytes::MiBF(9.5);
  img.kernel_size = img.image_size;  // distribution bundled as initramfs
  img.memory = Bytes::MiB(30);
  img.boot_cpu = Duration::Millis(150);  // trimmed kernel + busybox init
  img.boot_wait_phases = 8;
  img.net_stack = NetStackKind::kLinux;
  // "even an idle, minimal Linux distribution such as Tinyx runs occasional
  // background tasks" — calibrated to ~1% machine utilization at 1000 VMs.
  img.bg_work = Duration::Micros(40);
  img.bg_period = Duration::Seconds(1);
  return img;
}

GuestImage TinyxMicropython() {
  GuestImage img = TinyxNoop();
  img.name = "tinyx-micropython";
  img.image_size = Bytes::MiB(11);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiB(27);  // Figure 14: ~27 GB for 1000 guests.
  img.boot_cpu = Duration::Millis(160);
  return img;
}

GuestImage TinyxTls() {
  GuestImage img = TinyxNoop();
  img.name = "tinyx-tls";
  img.image_size = Bytes::MiB(12);
  img.kernel_size = img.image_size;
  img.memory = Bytes::MiB(40);
  img.boot_cpu = Duration::Millis(160);  // boots in ~190 ms (§7.3)
  // Linux TCP stack: performance "very similar to bare-metal" — ~1400 req/s
  // over 14 cores with RSA-1024 => ~10 core-ms per handshake.
  img.tls_handshake_cpu = Duration::Millis(10);
  return img;
}

GuestImage DebianVm() {
  GuestImage img;
  img.name = "debian";
  img.kind = GuestKind::kDebian;
  img.image_size = Bytes::MiB(1100);  // 1.1 GB minimal jessie install
  img.kernel_size = Bytes::MiB(22);   // vmlinuz + initrd; the rest stays on disk
  img.memory = Bytes::MiB(111);  // "the minimum needed for them to run"
  img.boot_cpu = Duration::Millis(1250);  // full init system + services
  img.boot_wait_phases = 16;
  img.wants_block = true;
  img.net_stack = NetStackKind::kLinux;
  // Out-of-the-box services: ~25% of a 4-core machine at 1000 VMs (Fig 15)
  // => ~1 core / 1000 VMs => 1 ms of work per second per VM.
  img.bg_work = Duration::Millis(1);
  img.bg_period = Duration::Seconds(1);
  return img;
}

GuestImage DebianMicropython() {
  GuestImage img = DebianVm();
  img.name = "debian-micropython";
  img.image_size = Bytes::MiB(1105);
  return img;
}

GuestImage PaddedImage(GuestImage base, lv::Bytes total_size) {
  if (total_size > base.image_size) {
    base.image_size = total_size;
  }
  // Binary objects are injected into the uncompressed image file itself, so
  // the whole padded image is parsed and loaded (the Figure 2 methodology).
  base.kernel_size = base.image_size;
  return base;
}

}  // namespace guests
