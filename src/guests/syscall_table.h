// Linux syscall-count history (paper Figure 1): "the unrelenting growth of
// the Linux syscall API over the years (x86_32) underlines the difficulty
// of securing containers."
#pragma once

#include <string>
#include <vector>

namespace guests {

struct SyscallRelease {
  int year;
  std::string release;
  int syscalls;  // x86_32 syscall table entries
};

// Release history from 2.4.x (2002) through 4.x (2018), approximating the
// published x86_32 syscall table sizes.
const std::vector<SyscallRelease>& LinuxSyscallHistory();

// Linear-regression slope: syscalls added per year over the dataset.
double SyscallGrowthPerYear();

}  // namespace guests
