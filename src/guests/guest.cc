#include "src/guests/guest.h"

#include "src/base/log.h"
#include "src/base/strings.h"
#include "src/trace/trace.h"

namespace guests {

namespace {
constexpr const char* kMod = "guest";

// A sleep whose wakeup the Guest can cancel: the parked handle and the
// pending event live in the shared BgState, so Stop()/~Guest can interrupt
// the nap without racing the engine.
struct BgSleep {
  sim::Engine* engine;
  lv::Duration d;
  Guest::BgState* st;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    st->parked = h;
    st->sleep = engine->Schedule(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept { st->parked = nullptr; }
};

}  // namespace

Guest::Guest(sim::Engine* engine, GuestImage image, hv::DomainId domid, BootEnv env)
    : engine_(engine),
      image_(std::move(image)),
      domid_(domid),
      env_(std::move(env)),
      booted_(engine) {}

Guest::~Guest() {
  bg_->stop = true;
  if (bg_loop_.valid() && !bg_loop_.done()) {
    if (bg_->parked) {
      // Parked in a BgSleep: cancel the wakeup; ~Co below frees the frame
      // with nothing left referencing it.
      bg_->sleep.Cancel();
      bg_->parked = nullptr;
    } else {
      // Mid CPU slice: the scheduler still holds the frame's handle, so hand
      // ownership back to the frame; marked detached, it observes `stop`
      // right after the slice and self-destructs without touching this Guest.
      bg_loop_.Release().promise().detached = true;
    }
  }
  // control_watcher_ may be parked on the watch channel; its ~Co destroys
  // the frame safely (the channel awaiter deregisters and cancels wakeups).
}

sim::ExecCtx Guest::Ctx() const {
  return sim::ExecCtx{env_.cpu, boot_core_, static_cast<sim::CpuOwner>(domid_)};
}

hv::Domain::StartFn Guest::MakeStartFn() {
  return [this](hv::Domain& domain) -> sim::Co<void> { co_await Boot(domain); };
}

sim::Co<void> Guest::Boot(hv::Domain& domain) {
  boot_core_ = domain.boot_core();
  running_ = true;
  sim::ExecCtx ctx = Ctx();
  // Each guest boots on its own trace row so concurrently booting guests'
  // device-enumeration spans never interleave on one track.
  trace::Tracer& tracer = trace::Tracer::Get();
  if (tracer.enabled()) {
    ctx = ctx.OnTrack(
        tracer.NewTrack(lv::StrFormat("guest:dom%lld", (long long)domid_)));
  }
  trace::Span boot_span(ctx.track, "guest.boot");

  // Early kernel init: a slice of the guest's boot work before drivers come
  // up (decompression, memory setup, CPU bring-up). Resumed guests only
  // re-establish execution state.
  co_await ctx.Work(resume_ ? lv::Duration::Micros(100) : image_.boot_cpu * 0.2);

  // Device enumeration through the control plane.
  if (env_.store != nullptr) {
    lv::Status s = co_await EnumerateDevicesXenstore(ctx);
    if (!s.ok()) {
      LV_WARN(kMod, "dom%lld xenstore device enumeration failed: %s", (long long)domid_,
              s.error().message.c_str());
    }
  } else {
    lv::Status s = co_await EnumerateDevicesNoxs(ctx);
    if (!s.ok()) {
      LV_WARN(kMod, "dom%lld noxs device enumeration failed: %s", (long long)domid_,
              s.error().message.c_str());
    }
  }

  // Remaining boot work. Linux-style guests block on timers between init
  // phases; each wakeup pays a scheduling delay that grows with the number
  // of co-located guests (Figure 11). Unikernels run straight through.
  lv::Duration remaining = resume_ ? image_.boot_cpu * 0.02 : image_.boot_cpu * 0.8;
  if (!resume_ && image_.boot_wait_phases > 0) {
    lv::Duration per_phase = remaining / static_cast<double>(image_.boot_wait_phases);
    for (int phase = 0; phase < image_.boot_wait_phases; ++phase) {
      co_await ctx.Work(per_phase);
      int64_t peers = env_.peers_on_core ? env_.peers_on_core() : 0;
      if (peers > 0) {
        double p = static_cast<double>(peers);
        lv::Duration delay =
            (env_.sched_delay_per_peer * p + env_.sched_delay_cubic * (p * p * p)) /
            static_cast<double>(image_.boot_wait_phases);
        co_await engine_->Sleep(delay);
      }
    }
  } else {
    co_await ctx.Work(remaining);
  }

  booted_at_ = engine_->now();
  booted_.Trigger();
  LV_DEBUG(kMod, "dom%lld (%s) booted", (long long)domid_, image_.name.c_str());

  if (image_.has_background_tasks()) {
    lv::Duration offset = image_.bg_period * (static_cast<double>(domid_ % 97) / 97.0);
    bg_loop_ = BackgroundLoop(engine_, Ctx(), image_.bg_work, image_.bg_period, offset, bg_);
    bg_loop_.Start();
  }
}

sim::Co<lv::Status> Guest::EnumerateDevicesNoxs(sim::ExecCtx ctx) {
  // Fig. 7b step 3: ask the hypervisor for the device page and map it.
  auto entries = co_await env_.hv->DevicePageRead(ctx, domid_);
  if (!entries.ok()) {
    co_return entries.error();
  }
  for (const hv::DeviceInfo& info : *entries) {
    switch (info.type) {
      case hv::DeviceType::kNet:
        if (env_.netback != nullptr) {
          lv::Status s = co_await env_.netback->NoxsFrontendConnect(ctx, domid_, info);
          if (!s.ok()) {
            co_return s;
          }
        }
        break;
      case hv::DeviceType::kBlock:
        if (env_.blkback != nullptr) {
          lv::Status s = co_await env_.blkback->NoxsFrontendConnect(ctx, domid_, info);
          if (!s.ok()) {
            co_return s;
          }
        }
        break;
      case hv::DeviceType::kSysctl:
        if (env_.sysctl != nullptr) {
          lv::Status s = co_await env_.sysctl->FrontendConnect(
              ctx, domid_, info, [this](hv::ShutdownReason reason) -> sim::Co<void> {
                co_await HandlePowerRequest(reason);
              });
          if (!s.ok()) {
            co_return s;
          }
        }
        break;
      case hv::DeviceType::kConsole:
        break;
    }
  }
  co_return lv::Status::Ok();
}

sim::Co<lv::Status> Guest::EnumerateDevicesXenstore(sim::ExecCtx ctx) {
  xs_client_ = std::make_unique<xs::XsClient>(engine_, env_.store, domid_);
  // xenbus probing: the guest reads its own tree (console, memory target,
  // vm path) before touching device directories.
  std::string self = lv::StrFormat("/local/domain/%lld", (long long)domid_);
  (void)co_await xs_client_->Read(ctx, self + "/name");
  (void)co_await xs_client_->Read(ctx, self + "/memory/target");
  (void)co_await xs_client_->Read(ctx, self + "/console/ring-ref");
  (void)co_await xs_client_->Read(ctx, self + "/vm");
  if (image_.wants_net && env_.netback != nullptr) {
    lv::Status s = co_await env_.netback->XsFrontendConnect(ctx, xs_client_.get(), domid_);
    if (!s.ok()) {
      co_return s;
    }
  }
  if (image_.wants_block && env_.blkback != nullptr) {
    lv::Status s = co_await env_.blkback->XsFrontendConnect(ctx, xs_client_.get(), domid_);
    if (!s.ok()) {
      co_return s;
    }
  }
  // Register the control/shutdown watch and spawn the watcher that services
  // xl's save/shutdown requests.
  (void)co_await xs_client_->Watch(ctx, self + "/control/shutdown", "control");
  // Linux guests also watch balloon targets and misc platform nodes; these
  // persist for the VM's lifetime and grow the store's watch list.
  if (image_.kind == GuestKind::kTinyx) {
    (void)co_await xs_client_->Watch(ctx, self + "/memory/target", "balloon");
    (void)co_await xs_client_->Watch(ctx, self + "/control/platform", "platform");
  } else if (image_.kind == GuestKind::kDebian) {
    (void)co_await xs_client_->Watch(ctx, self + "/memory/target", "balloon");
    (void)co_await xs_client_->Watch(ctx, self + "/control/platform", "platform");
    (void)co_await xs_client_->Watch(ctx, self + "/data", "data");
  }
  control_watcher_ = XsControlWatcher();
  control_watcher_.Start();
  co_return lv::Status::Ok();
}

sim::Co<void> Guest::XsControlWatcher() {
  // Drain the registration event, then react to shutdown requests.
  while (running_ && xs_client_) {
    xs::WatchEvent ev = co_await xs_client_->NextWatchEvent();
    if (ev.token == xs::XsClient::kStopToken) {
      break;
    }
    if (ev.token != "control") {
      continue;
    }
    auto value = co_await xs_client_->Read(Ctx(), ev.fired_path);
    if (!value.ok() || value->empty()) {
      continue;
    }
    if (*value == "suspend") {
      co_await HandlePowerRequest(hv::ShutdownReason::kSuspend);
    } else if (*value == "poweroff") {
      co_await HandlePowerRequest(hv::ShutdownReason::kPoweroff);
    }
  }
}

sim::Co<void> Guest::HandlePowerRequest(hv::ShutdownReason reason) {
  sim::ExecCtx ctx = Ctx();
  // Save internal state: flush device rings, quiesce, serialize state.
  // Cost scales mildly with memory (dirty structures to settle).
  lv::Duration save_work =
      lv::Duration::Micros(100) +
      lv::Duration::Nanos(10) * static_cast<double>(lv::PagesFor(image_.memory));
  co_await ctx.Work(save_work);
  running_ = false;
  (void)co_await env_.hv->DomainShutdown(ctx, domid_, reason);
  if (env_.store == nullptr && env_.sysctl != nullptr) {
    // noxs: unbind event channels / device pages, then ack via sysctl.
    co_await env_.sysctl->Ack(ctx, domid_);
  } else if (xs_client_) {
    // xl path: clear the control node to acknowledge.
    (void)co_await xs_client_->Write(ctx,
                                     lv::StrFormat("/local/domain/%lld/control/shutdown",
                                                   (long long)domid_),
                                     "");
  }
}

sim::Co<void> Guest::BackgroundLoop(sim::Engine* engine, sim::ExecCtx ctx,
                                    lv::Duration work, lv::Duration period,
                                    lv::Duration offset,
                                    std::shared_ptr<BgState> st) {
  // Offset start deterministically to avoid phase-locking guests.
  co_await BgSleep{engine, offset, st.get()};
  while (!st->stop) {
    co_await ctx.Work(work);
    if (st->stop) {
      break;
    }
    co_await BgSleep{engine, period, st.get()};
  }
}

sim::Co<void> Guest::Compute(lv::Duration work) { co_await Ctx().Work(work); }

void Guest::Stop() {
  running_ = false;
  bg_->stop = true;
  if (xs_client_) {
    xs_client_->InjectShutdownEvent();
  }
}

}  // namespace guests
