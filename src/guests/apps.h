// Guest applications used by the paper's use cases (§7): ping responders
// (just-in-time service instantiation), ClickOS firewalls (mobile-edge
// personal firewalls) and TLS termination proxies.
//
// Each app attaches to a booted Guest and charges its work to the guest's
// vCPU, so application load and control-plane load contend for the same
// simulated cores.
#pragma once

#include <functional>

#include "src/devices/backend.h"
#include "src/guests/guest.h"
#include "src/net/switch.h"

namespace guests {

// Replies to ping packets addressed to the guest's vif (§7.2: "have the
// newly booted VM reply to pings").
class PingResponder {
 public:
  PingResponder(Guest* guest, xdev::BackendDriver* netback, xnet::Switch* sw);

  int64_t pings_answered() const { return pings_answered_; }

 private:
  sim::Co<void> Answer(xnet::Packet request);

  Guest* guest_;
  xnet::Switch* switch_;
  int64_t pings_answered_ = 0;
};

// A per-client personal firewall: every packet costs the image's
// per_packet_cpu on the guest vCPU, then is forwarded to the uplink.
class FirewallApp {
 public:
  FirewallApp(Guest* guest, xdev::BackendDriver* netback, xnet::Switch* sw,
              std::string uplink_port);

  int64_t packets_processed() const { return packets_processed_; }
  lv::Bytes bytes_processed() const { return bytes_processed_; }

 private:
  sim::Co<void> Process(xnet::Packet packet);

  Guest* guest_;
  xnet::Switch* switch_;
  std::string uplink_;
  int64_t packets_processed_ = 0;
  lv::Bytes bytes_processed_;
};

// TLS termination proxy: each handshake burns the image's handshake cost on
// the guest vCPU (RSA-1024 private-key operations dominate, §7.3).
class TlsServer {
 public:
  explicit TlsServer(Guest* guest) : guest_(guest) {}

  // Serves one client handshake + empty response.
  sim::Co<void> HandleRequest();

  int64_t requests_served() const { return requests_served_; }

 private:
  Guest* guest_;
  int64_t requests_served_ = 0;
};

}  // namespace guests
