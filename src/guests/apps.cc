#include "src/guests/apps.h"

#include "src/devices/types.h"

namespace guests {

PingResponder::PingResponder(Guest* guest, xdev::BackendDriver* netback, xnet::Switch* sw)
    : guest_(guest), switch_(sw) {
  netback->SetGuestRx(guest_->domid(), [this](const xnet::Packet& p) {
    if (p.kind == xnet::PacketKind::kPing && !p.is_reply && guest_->running()) {
      guest_->Ctx().cpu->engine()->Spawn(Answer(p));
    }
  });
}

sim::Co<void> PingResponder::Answer(xnet::Packet request) {
  sim::ExecCtx ctx = guest_->Ctx();
  // ICMP handling in the guest stack.
  co_await ctx.Work(lv::Duration::Micros(20));
  xnet::Packet reply = request;
  reply.src = xdev::VifName(guest_->domid(), 0);
  reply.dst = request.src;
  reply.is_reply = true;
  ++pings_answered_;
  co_await switch_->Forward(ctx, reply);
}

FirewallApp::FirewallApp(Guest* guest, xdev::BackendDriver* netback, xnet::Switch* sw,
                         std::string uplink_port)
    : guest_(guest), switch_(sw), uplink_(std::move(uplink_port)) {
  netback->SetGuestRx(guest_->domid(), [this](const xnet::Packet& p) {
    if (guest_->running()) {
      guest_->Ctx().cpu->engine()->Spawn(Process(p));
    }
  });
}

sim::Co<void> FirewallApp::Process(xnet::Packet packet) {
  sim::ExecCtx ctx = guest_->Ctx();
  co_await ctx.Work(guest_->image().per_packet_cpu);
  ++packets_processed_;
  bytes_processed_ += packet.size;
  if (!uplink_.empty()) {
    packet.src = xdev::VifName(guest_->domid(), 0);
    packet.dst = uplink_;
    co_await switch_->Forward(ctx, packet);
  }
}

sim::Co<void> TlsServer::HandleRequest() {
  co_await guest_->Ctx().Work(guest_->image().tls_handshake_cpu);
  ++requests_served_;
}

}  // namespace guests
