#include "src/guests/syscall_table.h"

namespace guests {

const std::vector<SyscallRelease>& LinuxSyscallHistory() {
  static const std::vector<SyscallRelease> kHistory = {
      {2002, "2.4.18", 239}, {2003, "2.6.0", 274},  {2004, "2.6.9", 289},
      {2005, "2.6.14", 294}, {2006, "2.6.18", 317}, {2007, "2.6.23", 324},
      {2008, "2.6.27", 327}, {2009, "2.6.31", 333}, {2010, "2.6.36", 340},
      {2011, "3.1", 346},    {2012, "3.6", 348},    {2013, "3.12", 350},
      {2014, "3.18", 356},   {2015, "4.3", 364},    {2016, "4.8", 379},
      {2017, "4.14", 385},   {2018, "4.17", 400},
  };
  return kHistory;
}

double SyscallGrowthPerYear() {
  const auto& hist = LinuxSyscallHistory();
  double n = static_cast<double>(hist.size());
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (const SyscallRelease& r : hist) {
    double x = static_cast<double>(r.year);
    double y = static_cast<double>(r.syscalls);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace guests
