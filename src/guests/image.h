// Guest image profiles: the VM types the paper evaluates (§3, §6).
//
// Sizes, memory footprints and boot-work figures are the paper's own
// anchors: the daytime unikernel is 480 KB on disk and runs in 3.6 MB of
// RAM; Tinyx images are ~10 MB and need ~30 MB; a minimal Debian jessie is
// 1.1 GB on disk and needs 111 MB of RAM.
#pragma once

#include <string>

#include "src/base/time.h"
#include "src/base/units.h"

namespace guests {

enum class GuestKind {
  kUnikernel,  // Mini-OS based: single address space, no processes
  kTinyx,      // minimal Linux built by the Tinyx system
  kDebian,     // full general-purpose distribution
};

const char* GuestKindName(GuestKind kind);

// Network stack linked into the guest; determines data-plane efficiency
// (the lwip-based TLS unikernel reaches ~1/5 of Tinyx's throughput, §7.3).
enum class NetStackKind { kNone, kLwip, kLinux };

struct GuestImage {
  std::string name;
  GuestKind kind = GuestKind::kUnikernel;
  lv::Bytes image_size;   // on-disk, uncompressed (kernel + root filesystem)
  // The part the toolstack parses and loads into guest memory at create
  // time (kernel + initramfs). For unikernels and Tinyx this is the whole
  // image; for Debian the bulk of the 1.1 GB stays on the block device.
  lv::Bytes kernel_size;
  lv::Bytes memory;      // runtime RAM requirement
  // Pure guest-side CPU work to initialize kernel + app (excludes device
  // enumeration, which is simulated through the actual control plane).
  lv::Duration boot_cpu;
  // Linux-style boots block on timers/events between init phases; each wait
  // re-pays a scheduling delay proportional to the number of co-located
  // guests (the contention visible in Figure 11). Unikernels have 0 phases.
  int boot_wait_phases = 0;
  bool wants_net = true;
  bool wants_block = false;
  NetStackKind net_stack = NetStackKind::kLwip;
  // Idle background services (Figure 15): every `bg_period`, burn `bg_work`.
  lv::Duration bg_work;
  lv::Duration bg_period;
  // CPU cost to handle one TLS handshake (§7.3), zero if not a TLS image.
  lv::Duration tls_handshake_cpu;
  // CPU cost to process one firewall packet (§7.1), zero if not a firewall.
  lv::Duration per_packet_cpu;

  bool has_background_tasks() const { return bg_work.ns() > 0 && bg_period.ns() > 0; }
};

// --- Unikernels (§3.1) -------------------------------------------------------

// Mini-OS + TCP daytime server over lwip; the paper's lower bound for VMs.
GuestImage DaytimeUnikernel();
// Empty Mini-OS guest with no devices wanted by default; boots in 2.3 ms.
GuestImage NoopUnikernel();
// Micropython interpreter + network stack (Amazon-Lambda-like service).
GuestImage MinipythonUnikernel();
// ClickOS network-function VM running a firewall configuration.
GuestImage ClickOsFirewall();
// axtls-based TLS termination proxy over lwip.
GuestImage TlsUnikernel();

// --- Tinyx (§3.2) -------------------------------------------------------------

// Tinyx with no application installed.
GuestImage TinyxNoop();
// Tinyx + Micropython.
GuestImage TinyxMicropython();
// Tinyx + TLS termination (Linux TCP stack, near bare-metal throughput).
GuestImage TinyxTls();

// --- Debian --------------------------------------------------------------------

// Minimal install of Debian jessie, "a typical VM used in practice".
GuestImage DebianVm();
// Debian + Micropython (memory-footprint experiment, Figure 14).
GuestImage DebianMicropython();

// Returns `base` with its image padded to `total_size` by injecting binary
// objects (the Figure 2 methodology).
GuestImage PaddedImage(GuestImage base, lv::Bytes total_size);

}  // namespace guests
