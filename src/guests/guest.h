// Guest: the software running inside a domain — kernel init, device
// enumeration (through the XenStore or through the noxs device page),
// Linux-style boot phases with scheduler-contention waits, idle background
// services, and the suspend protocol.
//
// A Guest is installed as the domain's start function; the hypervisor spawns
// it on first unpause. Everything it does costs CPU on the domain's own core
// with the domain as owner, so guest activity shows up in Figures 11 and 15.
#pragma once

#include <functional>
#include <memory>

#include "src/base/result.h"
#include "src/devices/backend.h"
#include "src/devices/sysctl.h"
#include "src/guests/image.h"
#include "src/hv/hypervisor.h"
#include "src/sim/cpu.h"
#include "src/sim/sync.h"
#include "src/xenstore/daemon.h"

namespace guests {

// Everything a guest needs from its host environment to boot.
struct BootEnv {
  sim::CpuScheduler* cpu = nullptr;
  hv::Hypervisor* hv = nullptr;
  // XenStore path (null store selects the noxs path).
  xs::Daemon* store = nullptr;
  xdev::BackendDriver* netback = nullptr;
  xdev::BackendDriver* blkback = nullptr;
  xdev::SysctlBackend* sysctl = nullptr;
  // Number of co-located guests on this guest's core; drives the per-phase
  // scheduling delay of Linux-style boots (Figure 11).
  std::function<int64_t()> peers_on_core;
  // Scheduling-delay model for Linux-style boots: each timer wait pays a
  // small linear per-peer delay, plus a super-linear term once the runnable
  // population per core exceeds what the scheduler absorbs — this is what
  // bends Tinyx's curve away from Docker's past ~250 guests/core (Fig. 11).
  lv::Duration sched_delay_per_peer = lv::Duration::Micros(40);
  lv::Duration sched_delay_cubic = lv::Duration::Nanos(23);  // * peers^3 per boot
};

class Guest {
 public:
  Guest(sim::Engine* engine, GuestImage image, hv::DomainId domid, BootEnv env);
  ~Guest();
  Guest(const Guest&) = delete;
  Guest& operator=(const Guest&) = delete;

  const GuestImage& image() const { return image_; }
  hv::DomainId domid() const { return domid_; }

  // The domain start function to install before unpausing.
  hv::Domain::StartFn MakeStartFn();

  // Restore/migration path: the guest re-attaches devices but skips the cold
  // boot work (its state arrived in the memory stream).
  void set_resume(bool resume) { resume_ = resume; }

  bool booted() const { return booted_.triggered(); }
  sim::OneShotEvent& boot_event() { return booted_; }
  sim::Co<void> WaitBooted() { co_await booted_.Wait(); }
  lv::TimePoint booted_at() const { return booted_at_; }

  // Execution context of the guest's vCPU (valid after boot started).
  sim::ExecCtx Ctx() const;

  // Runs `work` of CPU on the guest's core (compute-service jobs, §7.4).
  sim::Co<void> Compute(lv::Duration work);

  // Stops background activity (domain shut down / destroyed / migrating).
  void Stop();
  bool running() const { return running_; }

  // True when the background loop can be torn down without leaking its
  // frame: not started, finished, or parked in a cancellable sleep. A loop
  // mid-CPU-slice must instead be detached (it self-destructs after the
  // slice — which requires the engine to keep stepping). Host's destructor
  // drains until every guest is quiescent before tearing down.
  bool bg_quiescent() const {
    return !bg_loop_.valid() || bg_loop_.done() || bg_->parked != nullptr;
  }

  // Shared with the background-loop frame so Stop()/~Guest can interrupt a
  // parked sleep — or detach a frame that is mid-CPU-slice — without the
  // frame ever touching a possibly-dead Guest.
  struct BgState {
    bool stop = false;
    std::coroutine_handle<> parked;  // set while suspended in a bg sleep
    sim::EventHandle sleep;          // the pending wakeup for `parked`
  };

 private:
  sim::Co<void> Boot(hv::Domain& domain);
  sim::Co<lv::Status> EnumerateDevicesNoxs(sim::ExecCtx ctx);
  sim::Co<lv::Status> EnumerateDevicesXenstore(sim::ExecCtx ctx);
  // Static coroutine: captures everything by value plus the shared BgState,
  // so a frame that must be detached mid-slice (see ~Guest) never
  // dereferences the Guest.
  static sim::Co<void> BackgroundLoop(sim::Engine* engine, sim::ExecCtx ctx,
                                      lv::Duration work, lv::Duration period,
                                      lv::Duration offset,
                                      std::shared_ptr<BgState> st);
  // Handles a sysctl power request: save state, shut down, ack (noxs), or
  // the equivalent control/shutdown dance over the XenStore.
  sim::Co<void> HandlePowerRequest(hv::ShutdownReason reason);
  sim::Co<void> XsControlWatcher();

  sim::Engine* engine_;
  GuestImage image_;
  hv::DomainId domid_;
  BootEnv env_;
  int boot_core_ = 0;
  bool running_ = false;
  bool resume_ = false;
  std::shared_ptr<BgState> bg_ = std::make_shared<BgState>();
  sim::OneShotEvent booted_;
  lv::TimePoint booted_at_;
  std::unique_ptr<xs::XsClient> xs_client_;  // XenStore path only; keeps
                                             // watches alive for the VM's life
  // Owner-held loop frames (own-and-drain, ROADMAP item 6). Declared after
  // xs_client_ so the frames die before the watch channel they may be parked
  // on; the channel awaiter's destructor deregisters them on the way out.
  sim::Co<void> control_watcher_;
  sim::Co<void> bg_loop_;
};

}  // namespace guests
