// Figure 16a: personal firewalls for 1000 mobile users on one MEC machine.
//
// N ClickOS firewall VMs each service one client capped at 10 Mbps (typical
// busy-cell 4G speed). Throughput grows linearly until the guest cores
// saturate, then contention curbs it; one client runs ping instead of iperf
// to measure the added latency (round-robin scheduling across VMs).
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/base/stats.h"

namespace {

constexpr double kClientMbps = 10.0;
constexpr lv::Bytes kFrame = lv::Bytes::Count(1500);
constexpr lv::Duration kWindow = lv::Duration::Millis(10);
constexpr lv::Duration kMeasure = lv::Duration::Seconds(2);

// Interrupt/batching amortization: per-packet cost shrinks under load, as
// NAPI-style polling kicks in (this is what lets the paper's aggregate
// throughput keep growing past the linear region).
double BatchFactor(int active_vms) {
  return 1.0 / (1.0 + 0.0007 * static_cast<double>(active_vms));
}

struct GenState {
  int64_t bytes = 0;
  bool stop = false;
};

// Closed-loop 10 Mbps client: each 10 ms window's worth of packets is
// processed by the firewall VM; if the vCPU can't keep up, the next window
// starts late (throughput drops).
sim::Co<void> TrafficGen(sim::Engine* engine, guests::Guest* guest, int active_vms,
                         GenState* state) {
  double pkts_per_window =
      kClientMbps * 1e6 / 8.0 / static_cast<double>(kFrame.count()) * kWindow.secs();
  lv::Duration window_work = guest->image().per_packet_cpu *
                             (pkts_per_window * BatchFactor(active_vms));
  while (!state->stop) {
    lv::TimePoint t0 = engine->now();
    co_await guest->Ctx().Work(window_work);
    state->bytes += static_cast<int64_t>(pkts_per_window) * kFrame.count();
    lv::Duration elapsed = engine->now() - t0;
    if (elapsed < kWindow) {
      co_await engine->Sleep(kWindow - elapsed);
    }
  }
}

// The ping client: one request per 100 ms through its own firewall VM.
sim::Co<void> PingProbe(sim::Engine* engine, guests::Guest* guest, lv::Samples* rtts,
                        GenState* state) {
  while (!state->stop) {
    lv::TimePoint t0 = engine->now();
    // Up + down passes through the firewall.
    co_await guest->Ctx().Work(guest->image().per_packet_cpu * 2.0);
    rtts->AddDuration(engine->now() - t0);
    co_await engine->Sleep(lv::Duration::Millis(100));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig16a_firewall");
  bench::Header("Figure 16a", "personal firewalls: throughput + RTT vs active clients",
                "ClickOS firewall VMs, 10 Mbps per client, 14-core Xeon model");
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon14Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(guests::ClickOsFirewall().memory, true, 8);
  host.PrefillShellPool();

  // Boot the full population of 1000 firewalls once.
  std::vector<guests::Guest*> guests;
  for (int i = 0; i < 1000; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("fw%d", i), guests::ClickOsFirewall()));
    if (!t.ok) {
      return 1;
    }
    guests.push_back(host.guest(t.domid));
  }

  std::printf("%-10s %-18s %-12s %s\n", "clients", "throughput_gbps", "rtt_ms_avg",
              "rtt_ms_max");
  for (int active : {1, 100, 250, 500, 750, 1000}) {
    std::vector<std::unique_ptr<GenState>> states;
    lv::Samples rtts;
    // Client 0 pings; clients 1..active-1 run iperf.
    for (int i = 0; i < active; ++i) {
      states.push_back(std::make_unique<GenState>());
      if (i == 0) {
        engine.Spawn(PingProbe(&engine, guests[static_cast<size_t>(i)], &rtts,
                               states.back().get()));
      } else {
        engine.Spawn(TrafficGen(&engine, guests[static_cast<size_t>(i)], active,
                                states.back().get()));
      }
    }
    lv::TimePoint t0 = engine.now();
    engine.RunFor(kMeasure);
    int64_t total_bytes = 0;
    for (auto& s : states) {
      total_bytes += s->bytes;
      s->stop = true;
    }
    engine.RunFor(lv::Duration::Millis(200));  // Drain generators.
    double secs = (engine.now() - t0 - lv::Duration::Millis(200)).secs();
    double gbps = static_cast<double>(total_bytes) * 8.0 / secs / 1e9;
    bench::Point("firewall", {{"clients", static_cast<double>(active)},
                              {"throughput_gbps", gbps},
                              {"rtt_ms_avg", rtts.empty() ? 0.0 : rtts.mean()},
                              {"rtt_ms_max", rtts.empty() ? 0.0 : rtts.max()}});
    std::printf("%-10d %-18.2f %-12.2f %.2f\n", active, gbps,
                rtts.empty() ? 0.0 : rtts.mean(), rtts.empty() ? 0.0 : rtts.max());
  }
  bench::Footnote("paper shape: linear to 2.5 Gbps at 250 clients, then contention "
                  "curbs growth (~4 Gbps at 1000); RTT negligible at low load, tens of "
                  "ms at 1000 (round-robin across VMs)");
  bench::Report::Get().Write();
  return 0;
}
