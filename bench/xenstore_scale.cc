// Head-to-head XenStore scale: the faithful legacy store vs the indexed
// fast path (StorePolicy, src/xenstore/policy.h) at fleet scale.
//
// Drives xenstored directly (no VM lifecycle) so the store is the only
// variable: each "domain create" session performs the store traffic a
// chaos create issues — the O(#domains) unique-name admission scan, device
// writes under /local/domain/<i>, a persistent frontend watch and one
// device-handshake transaction. Under the legacy policy the name scan and
// the O(#watches) match scan reproduce the §4.2 superlinear creation-time
// curve; the indexed policy answers both from hash indexes and stays
// near-flat. The differential property suite (tests/property_test.cc)
// proves the two policies observably equivalent, so the gap measured here
// is pure mechanism cost, not behaviour drift.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/xenstore/daemon.h"
#include "src/xenstore/policy.h"

namespace {

constexpr int kDomains = 10000;

// The store traffic of one domain create. `ok` reports success because the
// coroutine is driven detached via Spawn.
sim::Co<void> CreateSession(sim::ExecCtx ctx, xs::XsClient* client, int i, bool& ok) {
  std::string base = lv::StrFormat("/local/domain/%d", i);
  if (!(co_await client->WriteUniqueName(ctx, i, lv::StrFormat("vm%d", i))).ok()) {
    co_return;
  }
  if (!(co_await client->Write(ctx, base + "/memory/target", "8192")).ok()) {
    co_return;
  }
  if (!(co_await client->Write(ctx, base + "/device/vif/0/state", "1")).ok()) {
    co_return;
  }
  // Persistent per-domain watch (the frontend watching for backend state
  // flips). These accumulate across the fleet and feed the legacy store's
  // O(#watches) scan on every later mutation.
  if (!(co_await client->Watch(ctx, base + "/device", "fe")).ok()) {
    co_return;
  }
  // Device handshake transaction (the batched-commit path when indexed).
  auto txn = co_await client->TxBegin(ctx);
  if (!txn.ok()) {
    co_return;
  }
  if (!(co_await client->Write(ctx, base + "/device/vif/0/state", "4", *txn)).ok()) {
    co_return;
  }
  if (!(co_await client->Write(ctx, base + "/device/vbd/0/state", "4", *txn)).ok()) {
    co_return;
  }
  if (!(co_await client->TxCommit(ctx, *txn)).ok()) {
    co_return;
  }
  ok = true;
}

std::vector<double> RunPolicy(xs::StorePolicy policy, int domains) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 2);
  // The daemon's embedded Store reads the thread-local policy at
  // construction, same as Dom0Services does for real hosts.
  xs::StorePolicyScope scope(policy);
  xs::Daemon daemon(&engine);
  daemon.Start(sim::ExecCtx{&cpu, 0, sim::kHostOwner});
  sim::ExecCtx ctx{&cpu, 1, sim::kHostOwner};

  // Clients stay alive so their watches persist, like real frontends.
  std::vector<std::unique_ptr<xs::XsClient>> clients;
  clients.reserve(domains);
  std::vector<double> per_create_ms;
  per_create_ms.reserve(domains);
  for (int i = 1; i <= domains; ++i) {
    clients.push_back(std::make_unique<xs::XsClient>(&engine, &daemon, i));
    xs::XsClient* client = clients.back().get();
    lv::TimePoint t0 = engine.now();
    bool ok = false;
    engine.Spawn(CreateSession(ctx, client, i, ok));
    engine.Run();
    if (!ok) {
      bench::FailRun(lv::StrFormat("%s create %d/%d failed",
                                   xs::StorePolicyName(policy), i, domains));
    }
    per_create_ms.push_back((engine.now() - t0).ms());
  }
  clients.clear();
  daemon.Stop();
  return per_create_ms;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "xenstore_scale");
  bench::Header("XenStore scale: legacy vs indexed",
                lv::StrFormat("store time per domain create, %d domains", kDomains),
                "xenstored driven directly; each create = unique-name scan + "
                "device writes + watch + handshake txn");
  bench::Report::Get().Config("domains", kDomains);

  std::vector<double> legacy = RunPolicy(xs::StorePolicy::kLegacy, kDomains);
  std::vector<double> indexed = RunPolicy(xs::StorePolicy::kIndexed, kDomains);

  std::printf("%-8s %14s %14s\n", "n", "legacy_ms", "indexed_ms");
  for (int i = 1; i <= kDomains; ++i) {
    bench::Point("legacy", {{"n", double(i)}, {"create_ms", legacy[i - 1]}});
    bench::Point("indexed", {{"n", double(i)}, {"create_ms", indexed[i - 1]}});
    if (bench::Sample(i, kDomains)) {
      std::printf("%-8d %14.3f %14.3f\n", i, legacy[i - 1], indexed[i - 1]);
    }
  }
  bench::Footnote(lv::StrFormat(
      "legacy grows with n (name scan + watch scan); indexed stays near-flat "
      "(last create: %.3f ms vs %.3f ms)",
      legacy[kDomains - 1], indexed[kDomains - 1]));
  bench::Report::Get().Write();
  return 0;
}
