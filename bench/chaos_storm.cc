// Chaos storm: deterministic fault injection against the self-healing
// cluster. Deploys a fleet of daytime unikernels while a seeded FaultPlan
// crashes nodes, reboots them, stalls hotplug scripts, partitions the
// migration fabric and fails creates transiently. The health monitor must
// detect every dead node and re-place its VMs on the survivors.
//
//   chaos_storm [--vms=2000] [--nodes=6] [--concurrency=16] [--seed=42]
//               [--events=24] [--horizon-ms=2000] [--json=<file>]
//               [--flight-out=<file>]
//
// Reports recovery-time percentiles, VMs lost vs recovered, and the
// admission-budget drift (must be zero: every commit matched by exactly one
// release, across every crash interleaving). Runs are deterministic: the
// same seed + plan give byte-identical output, injector log included.
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "src/base/stats.h"
#include "src/cluster/cluster.h"
#include "src/core/verify.h"
#include "src/faults/injector.h"

namespace {

struct FleetState {
  sim::Engine* engine = nullptr;
  cluster::Cluster* cl = nullptr;
  int total = 0;
  int next = 0;
  int done = 0;
  int64_t failed = 0;
};

// Like fleet_density's worker, but fault-tolerant: a deploy that loses both
// its placement rounds to dying nodes is counted, not fatal.
sim::Co<void> Worker(FleetState* st) {
  while (st->next < st->total) {
    int i = st->next++;
    toolstack::VmConfig config;
    config.name = lv::StrFormat("fleet%d", i);
    config.image = guests::DaytimeUnikernel();
    auto handle = co_await st->cl->Deploy(std::move(config), /*wait_boot=*/true);
    if (!handle.ok()) {
      ++st->failed;
    }
    ++st->done;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int vms = 2000;
  int nodes = 6;
  int concurrency = 16;
  uint64_t seed = 42;
  int events = 24;
  double horizon_ms = 2000.0;
  std::vector<char*> report_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--vms=", 6) == 0) {
      vms = std::atoi(arg + 6);
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      nodes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--concurrency=", 14) == 0) {
      concurrency = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--events=", 9) == 0) {
      events = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--horizon-ms=", 13) == 0) {
      horizon_ms = std::atof(arg + 13);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      report_args.push_back(argv[i]);
    } else if (std::strncmp(arg, "--flight-out=", 13) == 0) {
      // Arms the always-on flight recorder's post-mortem dump: written only
      // when the run fails (FailRun, invariant violation).
      obs::FlightRecorder::Get().set_dump_path(arg + 13);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--vms=N] [--nodes=N] [--concurrency=N] [--seed=N] "
                   "[--events=N] [--horizon-ms=MS] [--json=<file>] "
                   "[--flight-out=<file>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (nodes < 2) {
    std::fprintf(stderr, "chaos needs >= 2 nodes (a survivor to evacuate onto)\n");
    return 2;
  }
  int report_argc = static_cast<int>(report_args.size());
  bench::Report::Get().Init(report_argc, report_args.data(), "chaos");
  bench::Header("Chaos storm",
                "seeded fault injection against the self-healing cluster",
                lv::StrFormat("%d daytime unikernels, %d nodes, concurrency %d, "
                              "%d random faults over %.0fms, seed %llu",
                              vms, nodes, concurrency, events, horizon_ms,
                              (unsigned long long)seed));
  bench::Report::Get().Config("vms", static_cast<double>(vms));
  bench::Report::Get().Config("nodes", static_cast<double>(nodes));
  bench::Report::Get().Config("concurrency", static_cast<double>(concurrency));
  bench::Report::Get().Config("seed", static_cast<double>(seed));
  bench::Report::Get().Config("events", static_cast<double>(events));

  sim::Engine engine(seed);
  cluster::ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.node = lightvm::HostSpec::Amd64Core();
  spec.mechanisms = lightvm::Mechanisms::LightVm();
  cluster::Cluster cl(&engine, spec, cluster::MakePolicy("least-loaded"));
  for (int n = 0; n < nodes; ++n) {
    cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 8);
    cl.host(n).PrefillShellPool();
  }
  cl.StartHealthMonitor();

  faults::FaultPlan plan =
      faults::FaultPlan::Random(seed, nodes, events, lv::Duration::MillisF(horizon_ms));
  faults::FaultTargets targets;
  targets.crash_node = [&](int node) { cl.CrashNode(node); };
  targets.reboot_node = [&](int node) { cl.RequestReboot(node); };
  targets.restart_xenstore = [&](int node, lv::Duration downtime) {
    if (cl.host(node).store() != nullptr) {
      cl.host(node).store()->InjectRestart(downtime);
    }
  };
  targets.stall_hotplug = [&](int node, lv::Duration stall, int count) {
    cl.host(node).fault_hooks().hotplug_stall = stall;
    cl.host(node).fault_hooks().stall_next_hotplugs += count;
  };
  targets.partition_link = [&](int a, int b, lv::Duration length) {
    cl.link(a, b)->Partition(length);
  };
  targets.fail_creates = [&](int node, int count) {
    cl.host(node).fault_hooks().fail_next_creates += count;
  };
  faults::FaultInjector injector(&engine, std::move(plan), std::move(targets));
  injector.Arm();

  FleetState st;
  st.engine = &engine;
  st.cl = &cl;
  st.total = vms;
  for (int w = 0; w < concurrency; ++w) {
    engine.Spawn(Worker(&st));
  }
  bool finished = sim::RunUntilCondition(engine, [&] { return st.done >= st.total; },
                                         lv::Duration::Seconds(7200));
  if (!finished) {
    bench::FailRun(lv::StrFormat("fleet stalled at %d/%d VMs", st.done, st.total));
  }
  // Let the tail of the plan land, every crashed node finish its settle
  // pass (it destroys the dead node's VMs over simulated time), and every
  // evacuation drain before reading the recovery ledger.
  bool recovered = sim::RunUntilCondition(
      engine,
      [&] {
        if (injector.injected() != static_cast<int64_t>(injector.plan().size())) {
          return false;
        }
        for (int n = 0; n < nodes; ++n) {
          if (cl.host(n).crashed() && !cl.host(n).crash_settled()) {
            return false;
          }
        }
        return cl.vms_lost() == cl.vms_recovered() + cl.vms_unrecovered();
      },
      lv::Duration::Seconds(7200));
  if (!recovered) {
    bench::FailRun("recovery stalled: evacuation queue never drained");
  }

  std::printf("\n## faults (%lld injected)\n", (long long)injector.injected());
  for (const std::string& line : injector.log()) {
    if (!line.empty()) {  // unfired events hold empty pre-sized slots
      std::printf("%s\n", line.c_str());
    }
  }

  lv::Samples recovery;
  for (double ms : cl.recovery_ms()) {
    recovery.Add(ms);
    bench::Point("recovery", {{"i", static_cast<double>(recovery.count() - 1)},
                              {"recovery_ms", ms}});
  }
  cluster::Cluster::Drift drift = cl.AdmissionDrift();
  std::printf("\n## recovery\n");
  std::printf("deploys=%d failed=%lld node_failures=%lld\n", st.done,
              (long long)st.failed, (long long)cl.node_failures());
  std::printf("vms_lost=%lld vms_recovered=%lld vms_unrecovered=%lld\n",
              (long long)cl.vms_lost(), (long long)cl.vms_recovered(),
              (long long)cl.vms_unrecovered());
  std::printf("recovery_ms: p50=%.2f p99=%.2f  retries=%lld replacements=%lld\n",
              recovery.empty() ? 0.0 : recovery.Quantile(0.5),
              recovery.empty() ? 0.0 : recovery.Quantile(0.99),
              (long long)cl.deploy_retries(), (long long)cl.deploy_replacements());
  std::printf("invariant_failures=%lld drift_mem_bytes=%lld drift_vcpus=%lld\n",
              (long long)cl.invariant_failures(), (long long)drift.memory.count(),
              (long long)drift.vcpus);
  for (int n = 0; n < nodes; ++n) {
    lv::Status ok = lightvm::VerifyNoLeakedResources(cl.host(n));
    std::printf("leak_check node%d: %s\n", n,
                ok.ok() ? "ok" : ok.error().message.c_str());
  }
  bench::Point("summary",
               {{"injected", static_cast<double>(injector.injected())},
                {"node_failures", static_cast<double>(cl.node_failures())},
                {"vms_lost", static_cast<double>(cl.vms_lost())},
                {"vms_recovered", static_cast<double>(cl.vms_recovered())},
                {"vms_unrecovered", static_cast<double>(cl.vms_unrecovered())},
                {"deploys_failed", static_cast<double>(st.failed)},
                {"recovery_p50_ms", recovery.empty() ? 0.0 : recovery.Quantile(0.5)},
                {"recovery_p99_ms", recovery.empty() ? 0.0 : recovery.Quantile(0.99)},
                {"deploy_retries", static_cast<double>(cl.deploy_retries())},
                {"replacements", static_cast<double>(cl.deploy_replacements())},
                {"invariant_failures", static_cast<double>(cl.invariant_failures())},
                {"drift_mem_bytes", static_cast<double>(drift.memory.count())},
                {"drift_vcpus", static_cast<double>(drift.vcpus)}});
  bench::Footnote("the admission ledger must show zero drift: every budget commit "
                  "is matched by exactly one release across every crash interleaving");
  bench::Report::Get().Write();
  return 0;
}
