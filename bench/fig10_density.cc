// Figure 10: LightVM boot times up to 8000 VMs on a 64-core machine versus
// Docker containers (which hit the memory wall around 3000).
#include <cstdio>

#include "bench/common.h"
#include "src/container/container.h"

namespace {

void LightVmSeries(int total) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Amd64Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(guests::NoopUnikernel().memory, false, 16);
  host.PrefillShellPool();
  std::printf("\n## LightVM (noop unikernel, 64-core AMD, 4 Dom0 cores)\n");
  std::printf("%-8s %s\n", "n", "create+boot_ms");
  for (int i = 1; i <= total; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("vm%d", i), guests::NoopUnikernel()));
    if (!t.ok) {
      std::printf("# stopped at n=%d\n", i);
      break;
    }
    bench::Point("lightvm", {{"n", static_cast<double>(i)},
                             {"create_ms", t.create_ms},
                             {"boot_ms", t.boot_ms}});
    if (bench::Sample(i, total, 32)) {
      std::printf("%-8d %.2f\n", i, t.create_ms + t.boot_ms);
    }
  }
}

void DockerSeries(int total) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 64);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::DockerRuntime docker(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## Docker (64-core AMD, 128 GB)\n");
  std::printf("%-8s %s\n", "n", "run_ms");
  for (int i = 1; i <= total; ++i) {
    lv::TimePoint t0 = engine.now();
    auto id = sim::RunToCompletion(engine, docker.Run(ctx, container::MinimalContainer()));
    if (!id.ok()) {
      std::printf("# %s at n=%d: the next large memory allocation consumes all "
                  "available memory\n",
                  lv::ErrorCodeName(id.code()), i);
      break;
    }
    bench::Point("docker",
                 {{"n", static_cast<double>(i)}, {"run_ms", (engine.now() - t0).ms()}});
    if (bench::Sample(i, total, 32)) {
      std::printf("%-8d %.2f\n", i, (engine.now() - t0).ms());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig10_density");
  bench::Header("Figure 10", "density: LightVM vs Docker on a 64-core machine",
                "noop unikernels under chaos+noxs+split vs Docker containers; both "
                "limited by the 128 GB of RAM");
  LightVmSeries(8000);
  DockerSeries(8000);
  bench::Footnote("paper shape: LightVM flat (few ms) to 8000 VMs; Docker 150ms -> ~1s "
                  "with memory-allocation spikes, collapsing around 3000 containers");
  bench::Report::Get().Write();
  return 0;
}
