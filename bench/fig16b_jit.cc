// Figure 16b: just-in-time service instantiation — a VM is booted when a
// packet from a new client arrives; the newly booted VM answers the client's
// ping, and the client then keeps sending traffic for the lifetime of its
// session (the service tears idle VMs down after 2 s of inactivity).
//
// CDFs of the client-perceived first-ping RTT for different arrival
// intensities. At 10 ms inter-arrivals the number of concurrently active
// client streams overloads the Dom0 bridge, which starts dropping packets
// (mostly ARP) — pings time out, retry and form a long tail.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/base/stats.h"
#include "src/guests/apps.h"

namespace {

constexpr int kClients = 300;
constexpr lv::Duration kRetry = lv::Duration::Millis(100);
constexpr lv::Duration kSession = lv::Duration::Seconds(2);
constexpr lv::Duration kStreamInterval = lv::Duration::Millis(20);  // 50 pps/client

struct ClientState {
  lv::TimePoint arrival;
  bool answered = false;
  lv::Duration rtt;
};

sim::Co<void> ServeClient(sim::Engine* engine, lightvm::Host* host, int id,
                          ClientState* state) {
  state->arrival = engine->now();
  // Boot-on-packet: the service spawns a VM for this client.
  auto domid = co_await host->CreateVm(
      bench::Config(lv::StrFormat("jit%d", id), guests::MinipythonUnikernel()));
  if (!domid.ok()) {
    co_return;
  }
  guests::Guest* guest = host->guest(*domid);
  co_await guest->WaitBooted();
  auto responder = std::make_shared<guests::PingResponder>(guest, &host->netback(),
                                                           &host->network_switch());

  std::string client_port = lv::StrFormat("client%d", id);
  (void)host->network_switch().AddPort(client_port,
                                       [state, engine](const xnet::Packet& p) {
                                         if (p.is_reply && !state->answered) {
                                           state->answered = true;
                                           state->rtt = engine->now() - state->arrival;
                                         }
                                       });

  sim::ExecCtx ctx = host->Dom0Ctx();
  std::string vif = xdev::VifName(*domid, 0);
  // First contact: ARP broadcast + ping, retried until answered. Both can
  // be dropped by an overloaded bridge.
  while (!state->answered) {
    xnet::Packet arp;
    arp.kind = xnet::PacketKind::kArp;
    arp.src = client_port;
    arp.dst = "";  // broadcast
    co_await host->network_switch().Forward(ctx, arp);
    xnet::Packet ping;
    ping.kind = xnet::PacketKind::kPing;
    ping.src = client_port;
    ping.dst = vif;
    co_await host->network_switch().Forward(ctx, ping);
    lv::TimePoint deadline = engine->now() + kRetry;
    while (!state->answered && engine->now() < deadline) {
      co_await engine->Sleep(lv::Duration::Millis(5));
    }
  }
  // Active session: the client streams packets to its VM; this aggregate is
  // what pushes the bridge over its capacity at high arrival rates.
  lv::TimePoint session_end = engine->now() + kSession;
  while (engine->now() < session_end) {
    xnet::Packet data;
    data.kind = xnet::PacketKind::kData;
    data.src = client_port;
    data.dst = vif;
    co_await host->network_switch().Forward(ctx, data);
    co_await engine->Sleep(kStreamInterval);
  }
  // 2 s of inactivity: the service tears the VM down.
  (void)co_await host->DestroyVm(*domid);
  (void)host->network_switch().RemovePort(client_port);
  (void)responder;
}

void Series(lv::Duration inter_arrival) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(guests::MinipythonUnikernel().memory, true, 8);
  host.PrefillShellPool();
  // A modest edge bridge: ~6000 pps before it starts dropping.
  xnet::Switch::Costs bridge_costs;
  bridge_costs.capacity_pps = 6000.0;
  host.network_switch().set_costs(bridge_costs);

  std::vector<std::unique_ptr<ClientState>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<ClientState>());
    ClientState* state = clients.back().get();
    engine.Schedule(inter_arrival * static_cast<double>(i), [&engine, &host, i, state] {
      engine.Spawn(ServeClient(&engine, &host, i, state));
    });
  }
  engine.RunFor(inter_arrival * static_cast<double>(kClients) + lv::Duration::Seconds(8));

  lv::Samples rtts;
  int answered = 0;
  for (const auto& c : clients) {
    if (c->answered) {
      rtts.AddDuration(c->rtt);
      ++answered;
    }
  }
  std::printf("\n## inter-arrival %.0f ms (%d clients, %d answered, overload_drops=%lld)\n",
              inter_arrival.ms(), kClients, answered,
              (long long)host.network_switch().stats().dropped_overload);
  std::printf("%-12s %s\n", "rtt_ms", "cdf");
  std::string series = lv::StrFormat("inter_arrival_%.0fms", inter_arrival.ms());
  for (const auto& [value, frac] : rtts.Cdf(20)) {
    bench::Point(series, {{"rtt_ms", value}, {"cdf", frac}});
    std::printf("%-12.1f %.2f\n", value, frac);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig16b_jit");
  bench::Header("Figure 16b", "just-in-time instantiation: first-ping RTT CDFs",
                "boot-on-packet Minipython unikernels over LightVM; clients stream for "
                "2 s after connecting");
  for (int ms : {100, 50, 25, 10}) {
    Series(lv::Duration::Millis(ms));
  }
  bench::Footnote("paper shape: low median RTT; at 10 ms inter-arrivals the bridge "
                  "overloads and drops (mostly ARP) packets, so some pings time out "
                  "and the CDF grows a long tail");
  bench::Report::Get().Write();
  return 0;
}
