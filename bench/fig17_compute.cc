// Figures 17 and 18: the lightweight compute service (Amazon-Lambda-like,
// §7.4). One thousand Python compute requests arrive in an open loop every
// 250 ms; each spawns a Minipython unikernel that computes for ~0.8 s and is
// destroyed when done. 250 ms inter-arrivals on 3 guest cores is slightly
// past full utilization, so a backlog builds; the less control-plane work
// per VM, the more CPU is left for useful computation.
//
// Figure 17: service time of the n-th request. Figure 18 (same run, second
// table): number of concurrently running VMs over time.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "src/base/stats.h"

namespace {

constexpr int kRequests = 1000;
constexpr lv::Duration kInterArrival = lv::Duration::Millis(250);
constexpr lv::Duration kJob = lv::Duration::Millis(800);

struct RequestState {
  lv::TimePoint arrival;
  lv::TimePoint completed;
  bool done = false;
};

sim::Co<void> HandleRequest(sim::Engine* engine, lightvm::Host* host, int id,
                            RequestState* state, int64_t* concurrent,
                            lv::TimeSeries* series) {
  state->arrival = engine->now();
  auto domid = co_await host->CreateVm(
      bench::Config(lv::StrFormat("job%d", id), guests::MinipythonUnikernel()));
  if (!domid.ok()) {
    co_return;
  }
  guests::Guest* guest = host->guest(*domid);
  co_await guest->WaitBooted();
  ++*concurrent;
  series->Record(engine->now(), static_cast<double>(*concurrent));
  // The job: an approximation of e taking ~0.8 s of guest CPU.
  co_await guest->Compute(kJob);
  --*concurrent;
  series->Record(engine->now(), static_cast<double>(*concurrent));
  (void)co_await host->DestroyVm(*domid);
  state->completed = engine->now();
  state->done = true;
}

void Run(lightvm::Mechanisms mechanisms, lv::Samples* service_times,
         lv::TimeSeries* series, std::vector<RequestState>* states) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), mechanisms);
  if (mechanisms.split) {
    host.AddShellFlavor(guests::MinipythonUnikernel().memory, true, 8);
    host.PrefillShellPool();
  }
  states->assign(kRequests, RequestState{});
  int64_t concurrent = 0;
  for (int i = 0; i < kRequests; ++i) {
    RequestState* state = &(*states)[static_cast<size_t>(i)];
    engine.Schedule(kInterArrival * static_cast<double>(i),
                    [&engine, &host, i, state, &concurrent, series] {
                      engine.Spawn(
                          HandleRequest(&engine, &host, i, state, &concurrent, series));
                    });
  }
  engine.RunFor(kInterArrival * static_cast<double>(kRequests) +
                lv::Duration::Seconds(120));
  for (const RequestState& s : *states) {
    if (s.done) {
      service_times->AddDuration(s.completed - s.arrival);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig17_compute");
  bench::Header("Figure 17 + 18", "compute service under overload",
                "1000 requests, 250 ms inter-arrivals, ~0.8 s jobs on 3 guest cores");

  for (lightvm::Mechanisms m : {lightvm::Mechanisms::ChaosXs(), lightvm::Mechanisms::LightVm()}) {
    lv::Samples service_times;
    lv::TimeSeries series;
    std::vector<RequestState> states;
    Run(m, &service_times, &series, &states);

    std::printf("\n## Figure 17 — %s: service time of the n-th request\n",
                m.label().c_str());
    std::printf("%-8s %s\n", "n", "service_s");
    std::string service_series = m.label() + ".service";
    for (int i = 0; i < kRequests; ++i) {
      if (!states[static_cast<size_t>(i)].done) {
        continue;
      }
      double service_s = (states[static_cast<size_t>(i)].completed -
                          states[static_cast<size_t>(i)].arrival)
                             .secs();
      bench::Point(service_series,
                   {{"n", static_cast<double>(i + 1)}, {"service_s", service_s}});
      if (bench::Sample(i + 1, kRequests)) {
        std::printf("%-8d %.2f\n", i + 1, service_s);
      }
    }

    std::printf("\n## Figure 18 — %s: concurrently running VMs over time\n",
                m.label().c_str());
    std::printf("%-10s %s\n", "time_s", "running_vms");
    std::string running_series = m.label() + ".running";
    for (int t = 0; t <= 300; t += 15) {
      double running = series.At(lv::TimePoint() + lv::Duration::Seconds(t));
      bench::Point(running_series,
                   {{"time_s", static_cast<double>(t)}, {"running_vms", running}});
      std::printf("%-10d %.0f\n", t, running);
    }
    std::printf("# peak concurrency: %.0f, mean service time: %.1f s\n",
                series.MaxValue(), service_times.mean() / 1000.0);
  }
  bench::Footnote("paper shape: both configurations back up under the 6%% overload; "
                  "LightVM's smaller control-plane footprint keeps completion times "
                  "~5x lower when 100-200 VMs are backlogged");
  bench::Report::Get().Write();
  return 0;
}
