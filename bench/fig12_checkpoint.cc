// Figure 12: save (checkpoint) and restore times for the daytime unikernel
// as a function of the number of running VMs.
//
// Paper protocol: "at every run of the test we start 10 guests and randomly
// pick 10 guests to be checkpointed", growing the population to 1000. Two
// cores Dom0, two cores guests, ramdisk.
#include <cstdio>

#include "bench/common.h"
#include "src/base/stats.h"

namespace {

void Series(lightvm::Mechanisms mechanisms, int total) {
  sim::Engine engine;
  lightvm::HostSpec spec = lightvm::HostSpec::Xeon4Core();
  spec.dom0_cores = 2;  // "We assign two cores to Dom0 and the remaining two
                        //  to the VMs" (§6.2).
  lightvm::Host host(&engine, spec, mechanisms);
  if (mechanisms.split) {
    host.AddShellFlavor(guests::DaytimeUnikernel().memory, true, 8);
    host.PrefillShellPool();
  }
  std::printf("\n## %s\n", mechanisms.label().c_str());
  std::printf("%-8s %-12s %s\n", "n", "save_ms", "restore_ms");

  std::vector<hv::DomainId> running;
  int created = 0;
  for (int round = 0; round * 10 < total; ++round) {
    // Start 10 more guests.
    for (int i = 0; i < 10; ++i) {
      bench::CreateTiming t = bench::CreateBootTimed(
          engine, host,
          bench::Config(lv::StrFormat("ck%d", created++), guests::DaytimeUnikernel()));
      if (!t.ok) {
        bench::FailRun(lv::StrFormat("%s: vm creation failed at n=%zu",
                                     mechanisms.label().c_str(), running.size()));
      }
      running.push_back(t.domid);
    }
    // Checkpoint 10 random guests, then restore them.
    lv::Accumulator save_ms;
    lv::Accumulator restore_ms;
    for (int i = 0; i < 10; ++i) {
      size_t victim = static_cast<size_t>(
          engine.rng().Uniform(0, static_cast<int64_t>(running.size()) - 1));
      hv::DomainId domid = running[victim];
      running.erase(running.begin() + static_cast<long>(victim));

      lv::TimePoint t0 = engine.now();
      auto snap = sim::RunToCompletion(engine, host.SaveVm(domid));
      if (!snap.ok()) {
        bench::FailRun(lv::StrFormat("%s: save failed at n=%zu: %s",
                                     mechanisms.label().c_str(), running.size(),
                                     snap.error().message.c_str()));
      }
      save_ms.Add((engine.now() - t0).ms());

      t0 = engine.now();
      auto restored = sim::RunToCompletion(engine, host.RestoreVm(*snap));
      if (!restored.ok()) {
        bench::FailRun(lv::StrFormat("%s: restore failed at n=%zu: %s",
                                     mechanisms.label().c_str(), running.size(),
                                     restored.error().message.c_str()));
      }
      restore_ms.Add((engine.now() - t0).ms());
      running.push_back(*restored);
    }
    bench::Point(mechanisms.label(), {{"n", static_cast<double>(running.size())},
                                      {"save_ms", save_ms.mean()},
                                      {"restore_ms", restore_ms.mean()}});
    std::printf("%-8zu %-12.1f %.1f\n", running.size(), save_ms.mean(),
                restore_ms.mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig12_checkpoint");
  bench::Header("Figure 12", "checkpointing: save and restore times vs number of VMs",
                "daytime unikernel, 10 random victims per round, ramdisk, 2+2 cores");
  Series(lightvm::Mechanisms::Xl(), 1000);
  Series(lightvm::Mechanisms::ChaosXs(), 1000);
  Series(lightvm::Mechanisms::LightVm(), 1000);
  bench::Footnote("paper anchors: LightVM ~30ms save / ~20ms restore flat; xl 128ms "
                  "save / 550ms restore, growing with n");
  bench::Report::Get().Write();
  return 0;
}
