// Figure 5: breakdown of the xl VM-creation overhead into the paper's six
// categories — the XenStore interaction and device creation dominate, with
// the store's share growing superlinearly.
#include <cstdio>

#include "bench/common.h"

int main() {
  bench::Header("Figure 5", "xl creation-time breakdown vs number of running guests",
                "daytime unikernel x1000 under xl, categories as in the paper");
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
  std::printf("%-8s %-10s %-10s %-12s %-10s %-10s %-10s %s\n", "n", "config", "tstack",
              "hypervisor", "xenstore", "devices", "load", "total_ms");
  const int kTotal = 1000;
  for (int i = 1; i <= kTotal; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("vm%d", i), guests::DaytimeUnikernel()));
    if (!t.ok) {
      break;
    }
    if (bench::Sample(i, kTotal)) {
      const toolstack::CreateBreakdown& bd = host.toolstack().last_breakdown();
      std::printf("%-8d %-10.2f %-10.2f %-12.2f %-10.2f %-10.2f %-10.2f %.1f\n", i,
                  bd.config.ms(), bd.toolstack.ms(), bd.hypervisor.ms(), bd.xenstore.ms(),
                  bd.devices.ms(), bd.load.ms(), bd.total().ms());
    }
  }
  bench::Footnote("paper shape: devices ~constant and dominant at low n; xenstore grows "
                  "superlinearly and dominates at high n; everything else negligible");
  return 0;
}
