// Figure 5: breakdown of the xl VM-creation overhead into the paper's six
// categories — the XenStore interaction and device creation dominate, with
// the store's share growing superlinearly.
//
// The per-phase numbers are derived from the trace subsystem (the
// create.config / create.toolstack / ... spans the toolstack opens around
// each phase), and cross-checked against the toolstack's own end-to-end
// timers: the two must agree within 1% or the bench fails.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/trace/trace.h"

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig05_breakdown");
  bench::Header("Figure 5", "xl creation-time breakdown vs number of running guests",
                "daytime unikernel x1000 under xl, categories as in the paper");
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
  trace::Tracer& tracer = trace::Tracer::Get();
  tracer.Enable();
  std::printf("%-8s %-10s %-10s %-12s %-10s %-10s %-10s %s\n", "n", "config", "tstack",
              "hypervisor", "xenstore", "devices", "load", "total_ms");
  const int kTotal = 1000;
  for (int i = 1; i <= kTotal; ++i) {
    // One trace window per creation keeps the buffer bounded and makes the
    // SpanTotal queries below cover exactly this sample.
    tracer.Clear();
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("vm%d", i), guests::DaytimeUnikernel()));
    if (!t.ok) {
      break;
    }
    if (bench::Sample(i, kTotal)) {
      lv::Duration config = tracer.SpanTotal("create.config");
      lv::Duration tstack = tracer.SpanTotal("create.toolstack");
      lv::Duration hypervisor = tracer.SpanTotal("create.hypervisor");
      lv::Duration xenstore = tracer.SpanTotal("create.xenstore");
      lv::Duration devices = tracer.SpanTotal("create.devices");
      lv::Duration load = tracer.SpanTotal("create.load");
      lv::Duration total = config + tstack + hypervisor + xenstore + devices + load;
      const toolstack::CreateBreakdown& bd = host.toolstack().last_breakdown();
      if (std::abs(total.ms() - bd.total().ms()) > 0.01 * bd.total().ms()) {
        std::fprintf(stderr,
                     "FAIL: trace-derived total %.3fms disagrees with toolstack "
                     "timers %.3fms by more than 1%%\n",
                     total.ms(), bd.total().ms());
        return 1;
      }
      bench::Point("breakdown", {{"n", static_cast<double>(i)},
                                 {"config_ms", config.ms()},
                                 {"toolstack_ms", tstack.ms()},
                                 {"hypervisor_ms", hypervisor.ms()},
                                 {"xenstore_ms", xenstore.ms()},
                                 {"devices_ms", devices.ms()},
                                 {"load_ms", load.ms()},
                                 {"total_ms", total.ms()}});
      std::printf("%-8d %-10.2f %-10.2f %-12.2f %-10.2f %-10.2f %-10.2f %.1f\n", i,
                  config.ms(), tstack.ms(), hypervisor.ms(), xenstore.ms(), devices.ms(),
                  load.ms(), total.ms());
    }
  }
  bench::Footnote("paper shape: devices ~constant and dominant at low n; xenstore grows "
                  "superlinearly and dominates at high n; everything else negligible");
  bench::Report::Get().Write();
  return 0;
}
