// Figure 1: the unrelenting growth of the Linux syscall API over the years
// (x86_32), which underlines the difficulty of securing containers.
#include <cstdio>

#include "bench/common.h"
#include "src/guests/syscall_table.h"

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig01_syscall_growth");
  bench::Header("Figure 1", "Linux syscall count by release year (x86_32)",
                "static dataset, kernel releases 2002-2018");
  std::printf("%-6s %-10s %s\n", "year", "release", "syscalls");
  for (const guests::SyscallRelease& r : guests::LinuxSyscallHistory()) {
    std::printf("%-6d %-10s %d\n", r.year, r.release.c_str(), r.syscalls);
    bench::Point("syscalls", {{"year", static_cast<double>(r.year)},
                              {"syscalls", static_cast<double>(r.syscalls)}});
  }
  std::printf("\n# growth: %.1f syscalls/year (linear fit)\n",
              guests::SyscallGrowthPerYear());
  bench::Report::Get().Config("growth_per_year", guests::SyscallGrowthPerYear());
  bench::Footnote("paper: \"Linux, for instance, has 400 different system calls\"");
  bench::Report::Get().Write();
  return 0;
}
