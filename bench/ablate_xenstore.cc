// Ablation: which XenStore mechanisms cost what? Toggles access logging
// (the rotation spikes), the O(#watches) match scan and the O(#domains)
// unique-name check, then measures chaos[XS] creation times at n=500.
//
// This isolates the individual contributions the paper attributes to the
// store in §4.2.
#include <cstdio>

#include "bench/common.h"

namespace {

struct Variant {
  const char* name;
  xs::Costs costs;
};

double MeasureAt500(const xs::Costs& store_costs) {
  sim::Engine engine;
  // Build a host manually so we can inject store costs.
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::ChaosXs());
  // Reconfigure the store daemon's cost model before any traffic.
  // (The daemon is already running; costs are read per-op.)
  *host.store_costs_for_test() = store_costs;
  double last = 0.0;
  for (int i = 1; i <= 500; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("vm%d", i), guests::DaytimeUnikernel()));
    if (!t.ok) {
      bench::FailRun(lv::StrFormat("create %d/500 failed", i));
    }
    last = t.create_ms;
  }
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "ablate_xenstore");
  bench::Header("Ablation: XenStore mechanisms",
                "chaos [XS] creation time of the 500th daytime unikernel",
                "each row disables one cost source inside the store");
  Variant variants[] = {
      {"baseline", xs::Costs{}},
      {"no-access-logging", [] {
         xs::Costs c;
         c.logging_enabled = false;
         return c;
       }()},
      {"free-watch-scan", [] {
         xs::Costs c;
         c.per_watch_check = lv::Duration();
         c.per_watch_fire = lv::Duration();
         return c;
       }()},
      {"free-name-check", [] {
         xs::Costs c;
         c.per_name_check = lv::Duration();
         return c;
       }()},
      {"cheap-interrupts", [] {
         xs::Costs c;
         c.soft_interrupt = lv::Duration::Micros(1);
         return c;
       }()},
  };
  std::printf("%-20s %s\n", "variant", "create_ms_at_500");
  for (const Variant& v : variants) {
    double create_ms = MeasureAt500(v.costs);
    bench::Point(v.name, {{"create_ms_at_500", create_ms}});
    std::printf("%-20s %.2f\n", v.name, create_ms);
  }
  bench::Footnote("the watch scan and name check drive the growth; logging adds the "
                  "rotation spikes; the interrupt count sets the per-op floor");
  bench::Report::Get().Write();
  return 0;
}
