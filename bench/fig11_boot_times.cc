// Figure 11: boot times for unikernel and Tinyx guests versus Docker
// containers. Tinyx tracks Docker up to ~750 guests (~250 per core), then
// CPU contention from the guests' background tasks inflates boot times;
// idle unikernels and containers stay flat.
#include <cstdio>

#include "bench/common.h"
#include "src/container/container.h"

namespace {

void VmSeries(const char* label, guests::GuestImage image, int total) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(image.memory, image.wants_net, 8);
  host.PrefillShellPool();
  std::printf("\n## %s over LightVM\n", label);
  std::printf("%-8s %s\n", "n", "boot_ms");
  for (int i = 1; i <= total; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("%s%d", label, i), image));
    if (!t.ok) {
      break;
    }
    bench::Point(label, {{"n", static_cast<double>(i)}, {"boot_ms", t.boot_ms}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.1f\n", i, t.boot_ms);
    }
  }
}

void DockerSeries(int total) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 4);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::DockerRuntime docker(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## Docker\n");
  std::printf("%-8s %s\n", "n", "run_ms");
  for (int i = 1; i <= total; ++i) {
    lv::TimePoint t0 = engine.now();
    auto id = sim::RunToCompletion(engine, docker.Run(ctx, container::MinimalContainer()));
    if (!id.ok()) {
      break;
    }
    bench::Point("docker",
                 {{"n", static_cast<double>(i)}, {"run_ms", (engine.now() - t0).ms()}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.1f\n", i, (engine.now() - t0).ms());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig11_boot_times");
  bench::Header("Figure 11", "boot times: unikernel vs Tinyx vs Docker",
                "4-core Xeon model, LightVM toolstack for the VMs");
  VmSeries("unikernel", guests::DaytimeUnikernel(), 1000);
  VmSeries("tinyx", guests::TinyxNoop(), 1000);
  DockerSeries(1000);
  bench::Footnote("paper shape: unikernel flat ~ms; Tinyx close to Docker until ~750 "
                  "guests (250/core) then grows with per-core contention; Docker flat");
  bench::Report::Get().Write();
  return 0;
}
