// Fleet density: the cluster-scale version of the paper's §6.1 density
// argument. Boots thousands of daytime unikernels across N LightVM nodes
// through the cluster control plane — placement policy + admission control +
// concurrent create jobs — and compares placement policies on tail latency
// and makespan.
//
//   fleet_density [--vms=4000] [--nodes=4] [--concurrency=8] [--seed=1]
//                 [--policy=all|first-fit|least-loaded|memory-balance]
//                 [--shards=N] [--json=<file>] [--flight-out=<file>]
//
// Runs are deterministic: the same seed gives byte-identical output
// (placement hash included, so any divergence is loud). With --shards=N the
// control plane runs on a sharded engine group — one time domain per node
// plus a control domain, spread over N cores — and the binary re-runs the
// same seed single-sharded first to prove the parallel placement is
// byte-identical before reporting per-shard utilization and speedup.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "src/base/stats.h"
#include "src/cluster/cluster.h"
#include "src/sim/shard.h"

namespace {

struct FleetState {
  sim::Engine* engine = nullptr;
  cluster::Cluster* cl = nullptr;
  int total = 0;
  int next = 0;
  int done = 0;
  std::vector<int> node;
  std::vector<double> deploy_ms;
};

// One creation worker: pulls the next VM index off the shared counter and
// deploys it boot-to-boot. `concurrency` workers run at once, so up to that
// many create jobs are in flight across the cluster.
sim::Co<void> Worker(FleetState* st) {
  while (st->next < st->total) {
    int i = st->next++;
    toolstack::VmConfig config;
    config.name = lv::StrFormat("fleet%d", i);
    config.image = guests::DaytimeUnikernel();
    lv::TimePoint t0 = st->engine->now();
    auto handle = co_await st->cl->Deploy(std::move(config), /*wait_boot=*/true);
    if (!handle.ok()) {
      bench::FailRun(lv::StrFormat("deploy of vm %d failed: %s", i,
                                   handle.error().message.c_str()));
    }
    st->node[static_cast<size_t>(i)] = handle->node;
    st->deploy_ms[static_cast<size_t>(i)] = (st->engine->now() - t0).ms();
    ++st->done;
  }
}

void RunPolicy(const std::string& policy_name, int vms, int nodes, int concurrency,
               uint64_t seed) {
  sim::Engine engine(seed);
  cluster::ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.node = lightvm::HostSpec::Amd64Core();
  spec.mechanisms = lightvm::Mechanisms::LightVm();
  auto policy = cluster::MakePolicy(policy_name);
  if (policy == nullptr) {
    bench::FailRun("unknown placement policy: " + policy_name);
  }
  cluster::Cluster cl(&engine, spec, std::move(policy));
  for (int n = 0; n < nodes; ++n) {
    cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 8);
    cl.host(n).PrefillShellPool();
  }

  FleetState st;
  st.engine = &engine;
  st.cl = &cl;
  st.total = vms;
  st.node.assign(static_cast<size_t>(vms), -1);
  st.deploy_ms.assign(static_cast<size_t>(vms), 0.0);

  lv::TimePoint start = engine.now();
  for (int w = 0; w < concurrency; ++w) {
    engine.Spawn(Worker(&st));
  }
  bool finished = sim::RunUntilCondition(engine, [&] { return st.done >= st.total; },
                                         lv::Duration::Seconds(7200));
  if (!finished) {
    bench::FailRun(lv::StrFormat("%s: fleet stalled at %d/%d VMs",
                                 policy_name.c_str(), st.done, st.total));
  }
  double makespan_s = (engine.now() - start).secs();

  std::vector<int64_t> per_node(static_cast<size_t>(nodes), 0);
  lv::Samples lat;
  uint64_t placement_hash = 1469598103934665603ull;  // FNV offset basis.
  for (int i = 0; i < vms; ++i) {
    ++per_node[static_cast<size_t>(st.node[static_cast<size_t>(i)])];
    lat.Add(st.deploy_ms[static_cast<size_t>(i)]);
    placement_hash ^= static_cast<uint64_t>(st.node[static_cast<size_t>(i)]) +
                      static_cast<uint64_t>(i) * 31ull;
    placement_hash *= 1099511628211ull;  // FNV prime.
    bench::Point(policy_name, {{"i", static_cast<double>(i)},
                               {"node", static_cast<double>(st.node[static_cast<size_t>(i)])},
                               {"deploy_ms", st.deploy_ms[static_cast<size_t>(i)]}});
  }
  int64_t jobs_started = 0;
  int64_t jobs_failed = 0;
  for (int n = 0; n < nodes; ++n) {
    jobs_started += cl.host(n).node().jobs_started();
    jobs_failed += cl.host(n).node().jobs_failed();
  }

  std::printf("\n## policy: %s\n", policy_name.c_str());
  std::printf("placement:");
  for (int n = 0; n < nodes; ++n) {
    std::printf(" node%d=%lld", n, (long long)per_node[static_cast<size_t>(n)]);
  }
  std::printf("  hash=%016llx\n", (unsigned long long)placement_hash);
  std::printf("deploy_ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n", lat.Quantile(0.5),
              lat.Quantile(0.9), lat.Quantile(0.99), lat.max());
  std::printf("makespan_s=%.2f  vms=%lld  jobs_started=%lld  jobs_failed=%lld  "
              "admission_rejects=%lld\n",
              makespan_s, (long long)cl.total_vms(), (long long)jobs_started,
              (long long)jobs_failed, (long long)cl.admission_rejects());
  bench::Point("summary", {{"deploy_p50_ms", lat.Quantile(0.5)},
                           {"deploy_p99_ms", lat.Quantile(0.99)},
                           {"deploy_max_ms", lat.max()},
                           {"makespan_s", makespan_s},
                           {"vms", static_cast<double>(cl.total_vms())},
                           {"jobs_failed", static_cast<double>(jobs_failed)}});
}

// One fleet pass on a sharded engine group: per-node time domains plus a
// control domain, synchronized by conservative lookahead. Returns the
// placement hash so the caller can difference shard counts against each
// other. When `emit` is false nothing is printed and no points are recorded
// (the silent single-shard reference pass).
//
// The shell pool is deliberately not prefilled here: PrefillShellPool()
// free-runs each node engine standalone, which advances the shared clock
// under shards=1 but per-node clocks under shards>1 — the one setup step
// that would make shard counts diverge.
uint64_t RunShardedPolicy(const std::string& policy_name, int vms, int nodes,
                          int concurrency, uint64_t seed, int shards,
                          bool emit, double* wall_s) {
  metrics::Registry::Get().ResetAll();
  obs::FlightRecorder::Get().Reset();
  obs::SetOpIdPolicy(obs::OpIdPolicy::kPerNode, nodes);
  sim::ShardGroup group(seed, nodes + 1, shards, lv::Duration::Micros(50));
  cluster::ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.node = lightvm::HostSpec::Amd64Core();
  spec.mechanisms = lightvm::Mechanisms::LightVm();
  auto policy = cluster::MakePolicy(policy_name);
  if (policy == nullptr) {
    bench::FailRun("unknown placement policy: " + policy_name);
  }
  cluster::Cluster cl(&group, spec, std::move(policy));
  for (int n = 0; n < nodes; ++n) {
    cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 8);
  }

  FleetState st;
  st.engine = &cl.control_engine();
  st.cl = &cl;
  st.total = vms;
  st.node.assign(static_cast<size_t>(vms), -1);
  st.deploy_ms.assign(static_cast<size_t>(vms), 0.0);

  lv::TimePoint start = cl.control_engine().now();
  for (int w = 0; w < concurrency; ++w) {
    cl.control_engine().Spawn(Worker(&st));
  }
  bool finished = group.RunUntil([&] { return st.done >= st.total; },
                                 lv::Duration::Seconds(7200));
  if (!finished) {
    bench::FailRun(lv::StrFormat("%s: sharded fleet stalled at %d/%d VMs",
                                 policy_name.c_str(), st.done, st.total));
  }
  group.RunToQuiescence(lv::Duration::Seconds(60));
  // Each engine's clock rests on its own last event, which depends on the
  // domain→shard mapping; the global last event time does not.
  double makespan_s = (group.max_now() - start).secs();
  *wall_s = group.run_wall_s();

  std::vector<int64_t> per_node(static_cast<size_t>(nodes), 0);
  lv::Samples lat;
  uint64_t placement_hash = 1469598103934665603ull;  // FNV offset basis.
  for (int i = 0; i < vms; ++i) {
    ++per_node[static_cast<size_t>(st.node[static_cast<size_t>(i)])];
    lat.Add(st.deploy_ms[static_cast<size_t>(i)]);
    placement_hash ^= static_cast<uint64_t>(st.node[static_cast<size_t>(i)]) +
                      static_cast<uint64_t>(i) * 31ull;
    placement_hash *= 1099511628211ull;  // FNV prime.
    if (emit) {
      bench::Point(policy_name,
                   {{"i", static_cast<double>(i)},
                    {"node", static_cast<double>(st.node[static_cast<size_t>(i)])},
                    {"deploy_ms", st.deploy_ms[static_cast<size_t>(i)]}});
    }
  }
  if (!emit) {
    return placement_hash;
  }

  uint64_t processed = 0;
  for (const sim::ShardStats& s : group.shard_stats()) {
    processed += s.processed;
  }
  int64_t jobs_failed = 0;
  for (int n = 0; n < nodes; ++n) {
    jobs_failed += cl.host(n).node().jobs_failed();
  }
  // Everything printed here is invariant under the shard count: simulated
  // time, placements, epoch/message totals. Per-shard utilization and
  // wall-clock speedup are machine-dependent, so they go only into the JSON
  // artifact (as non-gated columns).
  std::printf("\n## policy: %s (parallel control plane)\n", policy_name.c_str());
  std::printf("placement:");
  for (int n = 0; n < nodes; ++n) {
    std::printf(" node%d=%lld", n, (long long)per_node[static_cast<size_t>(n)]);
  }
  std::printf("  hash=%016llx\n", (unsigned long long)placement_hash);
  std::printf("deploy_ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n", lat.Quantile(0.5),
              lat.Quantile(0.9), lat.Quantile(0.99), lat.max());
  std::printf("makespan_s=%.2f  vms=%lld  epochs=%llu  messages=%llu  "
              "events=%llu\n",
              makespan_s, (long long)cl.total_vms(),
              (unsigned long long)group.epochs(),
              (unsigned long long)group.messages_delivered(),
              (unsigned long long)processed);
  double wall = group.run_wall_s() > 0 ? group.run_wall_s() : 1e-9;
  for (size_t s = 0; s < group.shard_stats().size(); ++s) {
    const sim::ShardStats& st_s = group.shard_stats()[s];
    bench::Point("parallel", {{"shard", static_cast<double>(s)},
                              {"events", static_cast<double>(st_s.processed)},
                              {"busy_frac", st_s.busy_s / wall},
                              {"stall_frac", st_s.stall_s / wall}});
  }
  bench::Point("summary", {{"deploy_p50_ms", lat.Quantile(0.5)},
                           {"deploy_p99_ms", lat.Quantile(0.99)},
                           {"deploy_max_ms", lat.max()},
                           {"makespan_s", makespan_s},
                           {"vms", static_cast<double>(cl.total_vms())},
                           {"jobs_failed", static_cast<double>(jobs_failed)}});
  return placement_hash;
}

}  // namespace

int main(int argc, char** argv) {
  int vms = 4000;
  int nodes = 4;
  int concurrency = 8;
  uint64_t seed = 1;
  int shards = 0;  // 0 = classic single-engine path
  std::string policy = "all";
  std::vector<char*> report_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--vms=", 6) == 0) {
      vms = std::atoi(arg + 6);
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      nodes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--concurrency=", 14) == 0) {
      concurrency = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      policy = arg + 9;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      report_args.push_back(argv[i]);
    } else if (std::strncmp(arg, "--flight-out=", 13) == 0) {
      // Arms the always-on flight recorder's post-mortem dump: written only
      // when the run fails (FailRun, invariant violation).
      obs::FlightRecorder::Get().set_dump_path(arg + 13);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--vms=N] [--nodes=N] [--concurrency=N] [--seed=N] "
                   "[--policy=all|first-fit|least-loaded|memory-balance] "
                   "[--shards=N] [--json=<file>] [--flight-out=<file>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards < 0 || shards > nodes + 1) {
    std::fprintf(stderr, "--shards must be in [1, nodes+1] (one control domain "
                         "plus one per node)\n");
    return 2;
  }
  int report_argc = static_cast<int>(report_args.size());
  bench::Report::Get().Init(report_argc, report_args.data(), "fleet_density");
  bench::Header("Fleet density",
                "cluster-wide unikernel density with concurrent create jobs",
                lv::StrFormat("%d daytime unikernels, %d nodes (64-core model), "
                              "concurrency %d, seed %llu",
                              vms, nodes, concurrency, (unsigned long long)seed));
  bench::Report::Get().Config("vms", static_cast<double>(vms));
  bench::Report::Get().Config("nodes", static_cast<double>(nodes));
  bench::Report::Get().Config("concurrency", static_cast<double>(concurrency));
  bench::Report::Get().Config("seed", static_cast<double>(seed));
  bench::Report::Get().Config("policy", policy);

  if (shards > 0) {
    bench::Report::Get().Config("shards", static_cast<double>(shards));
    std::vector<std::string> policies;
    if (policy == "all") {
      policies = {"first-fit", "least-loaded", "memory-balance"};
    } else {
      policies = {policy};
    }
    for (const std::string& p : policies) {
      // Silent single-shard reference run of the same seed, then the visible
      // parallel run: identical placement hashes or the run fails loudly.
      double ref_wall = 0.0;
      uint64_t ref_hash = RunShardedPolicy(p, vms, nodes, concurrency, seed,
                                           /*shards=*/1, /*emit=*/false,
                                           &ref_wall);
      double wall = 0.0;
      uint64_t hash =
          RunShardedPolicy(p, vms, nodes, concurrency, seed, shards,
                           /*emit=*/true, &wall);
      if (hash != ref_hash) {
        bench::FailRun(lv::StrFormat(
            "%s: sharded placement hash %016llx != single-shard %016llx",
            p.c_str(), (unsigned long long)hash, (unsigned long long)ref_hash));
      }
      std::printf("reference: single-shard placement hash match ok\n");
      bench::Point("parallel_summary",
                   {{"shards", static_cast<double>(shards)},
                    {"speedup_x", wall > 0 ? ref_wall / wall : 0.0},
                    {"cores", static_cast<double>(
                                  std::thread::hardware_concurrency())}});
    }
    bench::Footnote("per-node time domains synchronized by conservative lookahead; "
                    "the silent reference pass proves the parallel run is "
                    "byte-identical to the single-shard schedule");
  } else if (policy == "all") {
    for (const char* p : {"first-fit", "least-loaded", "memory-balance"}) {
      RunPolicy(p, vms, nodes, concurrency, seed);
    }
  } else {
    RunPolicy(policy, vms, nodes, concurrency, seed);
  }
  bench::Footnote("deploys commit node budgets before the first suspension point, so "
                  "no interleaving of create jobs can oversubscribe a node");
  bench::Report::Get().Write();
  return 0;
}
