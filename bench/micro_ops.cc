// Microbenchmarks (google-benchmark) of the substrate primitives: these
// measure the *wall-clock* cost of the simulator itself — store operations,
// hypercalls, coroutine dispatch, full VM creation — i.e. how fast the
// reproduction runs, not simulated time.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"
#include "src/xenstore/store.h"

namespace {

void BM_StoreWrite(benchmark::State& state) {
  xs::Store store;
  int64_t i = 0;
  for (auto _ : state) {
    (void)store.Write(lv::StrFormat("/local/domain/%lld/name", (long long)(i % 1000)),
                      "vm", hv::kDom0);
    ++i;
  }
}
BENCHMARK(BM_StoreWrite);

void BM_StoreWriteWithWatches(benchmark::State& state) {
  xs::Store store;
  for (int64_t w = 0; w < state.range(0); ++w) {
    store.AddWatch(w, lv::StrFormat("/w/%lld", (long long)w), "t");
  }
  std::vector<xs::WatchHit> hits;
  for (auto _ : state) {
    hits.clear();
    (void)store.Write("/probe", "v", hv::kDom0, xs::kNoTxn, &hits);
  }
}
BENCHMARK(BM_StoreWriteWithWatches)->Arg(100)->Arg(1000)->Arg(4000);

void BM_TransactionCommit(benchmark::State& state) {
  xs::Store store;
  std::vector<xs::WatchHit> hits;
  for (auto _ : state) {
    xs::TxnId txn = store.TxBegin();
    for (int i = 0; i < 10; ++i) {
      (void)store.Write(lv::StrFormat("/t/%d", i), "v", hv::kDom0, txn);
    }
    (void)store.TxCommit(txn, false, &hits);
  }
}
BENCHMARK(BM_TransactionCommit);

void BM_EngineEventDispatch(benchmark::State& state) {
  sim::Engine engine;
  for (auto _ : state) {
    engine.Schedule(lv::Duration::Nanos(1), [] {});
    engine.Run();
  }
}
BENCHMARK(BM_EngineEventDispatch);

void BM_CoroutineRoundTrip(benchmark::State& state) {
  sim::Engine engine;
  for (auto _ : state) {
    sim::RunToCompletion(engine, [](sim::Engine& e) -> sim::Co<int> {
      co_await e.Sleep(lv::Duration::Nanos(1));
      co_return 1;
    }(engine));
  }
}
BENCHMARK(BM_CoroutineRoundTrip);

void BM_Hypercall(benchmark::State& state) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 1);
  hv::Hypervisor hv(&engine, lv::Bytes::GiB(4));
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  for (auto _ : state) {
    auto r = sim::RunToCompletion(engine, hv.DomainCreate(ctx));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Hypercall);

void BM_LightVmCreateBoot(benchmark::State& state) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  int64_t i = 0;
  for (auto _ : state) {
    toolstack::VmConfig config;
    config.name = lv::StrFormat("vm%lld", (long long)i++);
    config.image = guests::DaytimeUnikernel();
    auto domid = sim::RunToCompletion(engine, host.CreateAndBoot(std::move(config)));
    benchmark::DoNotOptimize(domid);
  }
}
BENCHMARK(BM_LightVmCreateBoot);

void BM_XlCreateBoot(benchmark::State& state) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
  int64_t i = 0;
  for (auto _ : state) {
    toolstack::VmConfig config;
    config.name = lv::StrFormat("vm%lld", (long long)i++);
    config.image = guests::DaytimeUnikernel();
    auto domid = sim::RunToCompletion(engine, host.CreateAndBoot(std::move(config)));
    benchmark::DoNotOptimize(domid);
  }
}
BENCHMARK(BM_XlCreateBoot);

// Console reporter that additionally records every run into the
// bench::Report artifact, so `--json=<file>` captures the microbenchmark
// numbers in the same schema as the figure benchmarks.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      bench::Point(run.benchmark_name(),
                   {{"real_ns", run.GetAdjustedRealTime()},
                    {"cpu_ns", run.GetAdjustedCPUTime()},
                    {"iterations", static_cast<double>(run.iterations)}});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  // --json=<file> belongs to the bench report; everything else is
  // google-benchmark's (--benchmark_filter=..., etc.).
  std::vector<char*> report_args{argv[0]};
  std::vector<char*> gbench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      report_args.push_back(argv[i]);
    } else {
      gbench_args.push_back(argv[i]);
    }
  }
  int report_argc = static_cast<int>(report_args.size());
  bench::Report::Get().Init(report_argc, report_args.data(), "micro_ops");
  bench::Report::Get().SetTitle(
      "substrate microbenchmarks (wall-clock, not simulated time)",
      "google-benchmark over store ops, hypercalls, coroutine dispatch, VM creation");

  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc, gbench_args.data())) {
    return 1;
  }
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  bench::Report::Get().Write();
  return 0;
}
