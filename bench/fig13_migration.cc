// Figure 13: migration times for the daytime unikernel vs the number of
// running VMs. Protocol per the paper: 10 guests are migrated per round and
// replaced with 10 fresh ones so the source population keeps growing.
#include <cstdio>

#include "bench/common.h"
#include "src/base/stats.h"

namespace {

void Series(lightvm::Mechanisms mechanisms, int total) {
  sim::Engine engine;
  lightvm::HostSpec spec = lightvm::HostSpec::Xeon4Core();
  spec.dom0_cores = 2;
  lightvm::Host src(&engine, spec, mechanisms);
  lightvm::Host dst(&engine, spec, mechanisms);
  if (mechanisms.split) {
    for (lightvm::Host* h : {&src, &dst}) {
      h->AddShellFlavor(guests::DaytimeUnikernel().memory, true, 8);
      h->PrefillShellPool();
    }
  }
  // Hosts are connected back-to-back on a 10 Gbps datacenter link.
  xnet::Link link(&engine, /*gbps=*/10.0, lv::Duration::MillisF(0.2));

  std::printf("\n## %s\n", mechanisms.label().c_str());
  std::printf("%-8s %s\n", "n", "migrate_ms");

  std::vector<hv::DomainId> running;
  int created = 0;
  for (int round = 0; round * 10 < total; ++round) {
    for (int i = 0; i < 10; ++i) {
      bench::CreateTiming t = bench::CreateBootTimed(
          engine, src,
          bench::Config(lv::StrFormat("mg%d", created++), guests::DaytimeUnikernel()));
      if (!t.ok) {
        bench::FailRun(lv::StrFormat("%s: vm creation failed at n=%zu",
                                     mechanisms.label().c_str(), running.size()));
      }
      running.push_back(t.domid);
    }
    lv::Accumulator migrate_ms;
    for (int i = 0; i < 10; ++i) {
      size_t victim = static_cast<size_t>(
          engine.rng().Uniform(0, static_cast<int64_t>(running.size()) - 1));
      hv::DomainId domid = running[victim];
      // Swap-and-pop: O(1) instead of shifting the (growing) tail each round.
      running[victim] = running.back();
      running.pop_back();
      lv::TimePoint t0 = engine.now();
      lv::Status s = sim::RunToCompletion(engine, src.MigrateVm(domid, &dst, &link));
      if (!s.ok()) {
        bench::FailRun(lv::StrFormat("%s: migration failed at n=%zu: %s",
                                     mechanisms.label().c_str(), running.size(),
                                     s.error().message.c_str()));
      }
      migrate_ms.Add((engine.now() - t0).ms());
    }
    // Replace the migrated guests so the source population is back to size.
    for (int i = 0; i < 10; ++i) {
      bench::CreateTiming t = bench::CreateBootTimed(
          engine, src,
          bench::Config(lv::StrFormat("mg%d", created++), guests::DaytimeUnikernel()));
      if (!t.ok) {
        bench::FailRun(lv::StrFormat("%s: vm creation failed at n=%zu",
                                     mechanisms.label().c_str(), running.size()));
      }
      running.push_back(t.domid);
    }
    bench::Point(mechanisms.label(), {{"n", static_cast<double>(running.size())},
                                      {"migrate_ms", migrate_ms.mean()}});
    std::printf("%-8zu %.1f\n", running.size(), migrate_ms.mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig13_migration");
  bench::Header("Figure 13", "migration times vs number of running VMs",
                "daytime unikernel, 10 migrations per round, two hosts, 10 Gbps link");
  Series(lightvm::Mechanisms::Xl(), 600);
  Series(lightvm::Mechanisms::ChaosXs(), 600);
  Series(lightvm::Mechanisms::ChaosNoxs(), 600);
  Series(lightvm::Mechanisms::LightVm(), 600);
  bench::Footnote("paper anchors: LightVM ~60ms flat; chaos[XS] slightly better at low n "
                  "(noxs device destruction unoptimized); xl grows to seconds");
  bench::Report::Get().Write();
  return 0;
}
