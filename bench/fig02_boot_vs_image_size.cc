// Figure 2: boot times grow linearly with VM image size.
//
// Methodology as in the paper: boot the same unikernel from images of
// different sizes, grown by injecting binary objects into the uncompressed
// image file; all images on a ramdisk.
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig02_boot_vs_image_size");
  bench::Header("Figure 2", "boot time vs VM image size",
                "daytime unikernel padded to 0..1000 MB, ramdisk, one VM at a time");
  std::printf("%-14s %-14s %-12s %s\n", "image_mb", "create_ms", "boot_ms", "total_ms");
  for (int mb = 0; mb <= 1000; mb += 100) {
    sim::Engine engine;
    lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                       lightvm::Mechanisms::ChaosNoxs());
    guests::GuestImage image =
        guests::PaddedImage(guests::DaytimeUnikernel(), lv::Bytes::MiB(mb));
    bench::CreateTiming t =
        bench::CreateBootTimed(engine, host, bench::Config("padded", image));
    if (!t.ok) {
      return 1;
    }
    bench::Point("padded", {{"image_mb", static_cast<double>(mb)},
                            {"create_ms", t.create_ms},
                            {"boot_ms", t.boot_ms}});
    std::printf("%-14d %-14.1f %-12.1f %.1f\n", mb, t.create_ms, t.boot_ms,
                t.create_ms + t.boot_ms);
  }
  bench::Footnote(
      "paper shape: linear growth, ~0.9 s at 1000 MB (image parse + load dominate)");
  bench::Report::Get().Write();
  return 0;
}
