// Ablation: split-toolstack pool sizing and hotplug mechanism.
//
// (a) How large must the shell pool be to absorb a burst of create requests?
// (b) How much of xl's device phase is just the bash hotplug script?
#include <cstdio>

#include "bench/common.h"
#include "src/base/stats.h"

namespace {

// Fires a burst of `burst` back-to-back creates against a LightVM host with
// the given pool target and reports mean/max create latency.
void PoolSweep() {
  std::printf("\n## shell-pool sizing under a burst of 16 creates\n");
  std::printf("%-12s %-12s %s\n", "pool_target", "mean_ms", "max_ms");
  for (int target : {0, 1, 4, 8, 16}) {
    sim::Engine engine;
    lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                       lightvm::Mechanisms::LightVm());
    if (target > 0) {
      host.AddShellFlavor(guests::DaytimeUnikernel().memory, true, target);
      host.PrefillShellPool();
    }
    lv::Samples lat;
    for (int i = 0; i < 16; ++i) {
      bench::CreateTiming t = bench::CreateBootTimed(
          engine, host,
          bench::Config(lv::StrFormat("burst%d", i), guests::DaytimeUnikernel()));
      if (!t.ok) {
        bench::FailRun(lv::StrFormat("pool_sweep: create %d failed (target=%d)", i,
                                     target));
      }
      lat.Add(t.create_ms);
    }
    bench::Point("pool_sweep", {{"pool_target", static_cast<double>(target)},
                                {"mean_ms", lat.mean()},
                                {"max_ms", lat.max()}});
    std::printf("%-12d %-12.2f %.2f\n", target, lat.mean(), lat.max());
  }
}

// chaos [XS] with bash scripts vs xendevd: isolates §5.3's contribution.
void HotplugSweep() {
  std::printf("\n## hotplug mechanism (xl toolstack, first create)\n");
  std::printf("%-14s %s\n", "mechanism", "create_ms");
  for (bool use_xendevd : {false, true}) {
    sim::Engine engine;
    lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
    if (use_xendevd) {
      // Swap xl's inline bash script for the xendevd binary daemon.
      host.toolstack().env().bash_hotplug = host.xendevd_runner();
    }
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config("vm0", guests::DaytimeUnikernel()));
    bench::Point(use_xendevd ? "hotplug_xendevd" : "hotplug_bash",
                 {{"create_ms", t.create_ms}});
    std::printf("%-14s %.2f\n", use_xendevd ? "xendevd" : "bash-scripts", t.create_ms);
  }
}

// Migration with the paper's future-work item done: optimized noxs device
// destruction (§6.2 notes it "remain[s] as future work").
void NoxsTeardownSweep() {
  std::printf("\n## noxs device teardown (migration of one daytime VM)\n");
  std::printf("%-22s %s\n", "variant", "migrate_ms");
  for (bool optimized : {false, true}) {
    sim::Engine engine;
    lightvm::Host src(&engine, lightvm::HostSpec::Xeon4Core(),
                      lightvm::Mechanisms::ChaosNoxs());
    lightvm::Host dst(&engine, lightvm::HostSpec::Xeon4Core(),
                      lightvm::Mechanisms::ChaosNoxs());
    if (optimized) {
      src.device_costs_for_test()->noxs_teardown_extra = lv::Duration();
      dst.device_costs_for_test()->noxs_teardown_extra = lv::Duration();
    }
    xnet::Link link(&engine, 10.0, lv::Duration::MillisF(0.2));
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, src, bench::Config("mig", guests::DaytimeUnikernel()));
    if (!t.ok) {
      bench::FailRun("noxs_teardown: vm creation failed");
    }
    lv::TimePoint t0 = engine.now();
    lv::Status s = sim::RunToCompletion(engine, src.MigrateVm(t.domid, &dst, &link));
    if (!s.ok()) {
      bench::FailRun(lv::StrFormat("noxs_teardown: migration failed: %s",
                                   s.error().message.c_str()));
    }
    bench::Point(optimized ? "teardown_optimized" : "teardown_unoptimized",
                 {{"migrate_ms", (engine.now() - t0).ms()}});
    std::printf("%-22s %.1f\n", optimized ? "optimized (future work)" : "unoptimized",
                (engine.now() - t0).ms());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "ablate_toolstack");
  bench::Header("Ablation: toolstack mechanisms",
                "shell-pool sizing and hotplug mechanism contributions", "4-core model");
  PoolSweep();
  HotplugSweep();
  NoxsTeardownSweep();
  bench::Footnote("an empty pool degrades to inline preparation (chaos [NoXS] "
                  "latency); the bash script alone is most of xl's device phase");
  bench::Report::Get().Write();
  return 0;
}
