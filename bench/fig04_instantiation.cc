// Figure 4: domain instantiation and boot times for several guest types as
// the number of running guests grows — Debian, Tinyx and the daytime
// unikernel under stock Xen (xl), plus Docker containers and processes.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/container/container.h"

namespace {

void VmSeries(const char* label, guests::GuestImage image, int total) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
  std::printf("\n## %s (xl, up to %d guests)\n", label, total);
  std::printf("%-8s %-14s %s\n", "n", "create_ms", "boot_ms");
  for (int i = 1; i <= total; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("%s-%d", label, i), image));
    if (!t.ok) {
      std::printf("# stopped at n=%d\n", i);
      break;
    }
    bench::Point(label, {{"n", static_cast<double>(i)},
                         {"create_ms", t.create_ms},
                         {"boot_ms", t.boot_ms}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %-14.1f %.1f\n", i, t.create_ms, t.boot_ms);
    }
  }
}

void DockerSeries(int total) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 4);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::DockerRuntime docker(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## Docker containers (up to %d)\n", total);
  std::printf("%-8s %s\n", "n", "run_ms");
  for (int i = 1; i <= total; ++i) {
    lv::TimePoint t0 = engine.now();
    auto id = sim::RunToCompletion(engine, docker.Run(ctx, container::MinimalContainer()));
    if (!id.ok()) {
      std::printf("# OOM at n=%d\n", i);
      break;
    }
    bench::Point("docker",
                 {{"n", static_cast<double>(i)}, {"run_ms", (engine.now() - t0).ms()}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.1f\n", i, (engine.now() - t0).ms());
    }
  }
}

void ProcessSeries(int total) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 4);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::ProcessRuntime procs(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## processes (fork/exec, up to %d)\n", total);
  std::printf("%-8s %s\n", "n", "fork_exec_ms");
  for (int i = 1; i <= total; ++i) {
    lv::TimePoint t0 = engine.now();
    (void)sim::RunToCompletion(engine, procs.ForkExec(ctx));
    bench::Point("process",
                 {{"n", static_cast<double>(i)}, {"fork_exec_ms", (engine.now() - t0).ms()}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.2f\n", i, (engine.now() - t0).ms());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig04_instantiation");
  bench::Header("Figure 4", "instantiation + boot times vs number of running guests",
                "4-core Xeon model, 1 core Dom0 / 3 cores guests, xl toolstack, "
                "images on ramdisk");
  bench::Report::Get().Config("guests_per_series", 1000.0);
  bench::Report::Get().Config("toolstack", "xl");
  VmSeries("debian", guests::DebianVm(), 1000);
  VmSeries("tinyx", guests::TinyxNoop(), 1000);
  VmSeries("unikernel", guests::DaytimeUnikernel(), 1000);
  DockerSeries(1000);
  ProcessSeries(1000);
  bench::Footnote("paper anchors: daytime create 80ms/boot 3ms at n=0; 1000th guest "
                  "creation: Debian 42s, Tinyx 10s, unikernel 700ms; Docker ~200ms; "
                  "process 3.5ms (constant)");
  bench::Report::Get().Write();
  return 0;
}
