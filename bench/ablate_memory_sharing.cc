// Ablation for the paper's §9 "Memory sharing" open issue, implemented as a
// SnowFlock-style page-sharing extension: VMs created from the same image
// flavor share its read-only pages copy-on-write.
//
// Two questions: how much total memory does sharing save at scale, and how
// many more VMs fit on a small-memory edge box?
#include <cstdio>

#include "bench/common.h"

namespace {

void MemoryAtScale() {
  std::printf("\n## total memory for N daytime unikernels (3.6 MB each)\n");
  std::printf("%-8s %-16s %-16s %s\n", "n", "baseline_mb", "shared_mb", "saving");
  for (int n : {100, 500, 1000}) {
    double used[2];
    for (bool sharing : {false, true}) {
      sim::Engine engine;
      lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                         sharing ? lightvm::Mechanisms::LightVmShared()
                                 : lightvm::Mechanisms::LightVm());
      for (int i = 0; i < n; ++i) {
        bench::CreateTiming t = bench::CreateBootTimed(
            engine, host,
            bench::Config(lv::StrFormat("vm%d", i), guests::DaytimeUnikernel()));
        if (!t.ok) {
          bench::FailRun(lv::StrFormat("memory_at_scale: create %d/%d failed "
                                       "(sharing=%d)", i, n, sharing ? 1 : 0));
        }
      }
      used[sharing ? 1 : 0] = (host.MemoryUsed() - host.spec().dom0_memory).mib();
    }
    bench::Point("memory_at_scale", {{"n", static_cast<double>(n)},
                                     {"baseline_mb", used[0]},
                                     {"shared_mb", used[1]},
                                     {"saving_x", used[0] / used[1]}});
    std::printf("%-8d %-16.0f %-16.0f %.1fx\n", n, used[0], used[1], used[0] / used[1]);
  }
}

void DensityOnEdgeBox() {
  std::printf("\n## max daytime unikernels on a 2 GB edge box\n");
  std::printf("%-12s %s\n", "mode", "max_vms");
  for (bool sharing : {false, true}) {
    sim::Engine engine;
    lightvm::HostSpec spec = lightvm::HostSpec::Xeon4Core();
    spec.memory = lv::Bytes::GiB(2);
    spec.dom0_memory = lv::Bytes::MiB(256);
    lightvm::Host host(&engine, spec,
                       sharing ? lightvm::Mechanisms::LightVmShared()
                               : lightvm::Mechanisms::LightVm());
    int booted = 0;
    for (int i = 0; i < 5000; ++i) {
      toolstack::VmConfig config;
      config.name = lv::StrFormat("edge%d", i);
      config.image = guests::DaytimeUnikernel();
      auto domid = sim::RunToCompletion(engine, host.CreateVm(config));
      if (!domid.ok()) {
        break;
      }
      ++booted;
    }
    bench::Point(sharing ? "edge_density_shared" : "edge_density_baseline",
                 {{"max_vms", static_cast<double>(booted)}});
    std::printf("%-12s %d\n", sharing ? "shared" : "baseline", booted);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "ablate_memory_sharing");
  bench::Header("Ablation: page sharing (§9 extension)",
                "memory de-duplication between VMs of the same image flavor",
                "75% of each VM's pages shared copy-on-write against a template");
  MemoryAtScale();
  DensityOnEdgeBox();
  bench::Footnote("the paper lists memory de-duplication (as in SnowFlock) as an "
                  "optimization avenue; with mostly-idle unikernels the saving "
                  "approaches the shared fraction");
  bench::Report::Get().Write();
  return 0;
}
