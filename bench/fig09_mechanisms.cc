// Figure 9: creation times for 1000 daytime unikernels under every
// combination of the LightVM mechanisms — the paper's central ablation.
#include <cstdio>

#include "bench/common.h"

namespace {

void Series(lightvm::Mechanisms mechanisms, int total) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), mechanisms);
  if (mechanisms.split) {
    host.AddShellFlavor(guests::DaytimeUnikernel().memory, true, 8);
    host.PrefillShellPool();
  }
  std::printf("\n## %s\n", mechanisms.label().c_str());
  std::printf("%-8s %-14s %-10s %s\n", "n", "create_ms", "boot_ms", "create+boot_ms");
  for (int i = 1; i <= total; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("vm%d", i), guests::DaytimeUnikernel()));
    if (!t.ok) {
      break;
    }
    bench::Point(mechanisms.label(), {{"n", static_cast<double>(i)},
                                      {"create_ms", t.create_ms},
                                      {"boot_ms", t.boot_ms}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %-14.2f %-10.2f %.2f\n", i, t.create_ms, t.boot_ms,
                  t.create_ms + t.boot_ms);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig09_mechanisms");
  bench::Header("Figure 9", "creation times across the mechanism matrix",
                "daytime unikernel x1000, 4-core Xeon model (1 Dom0 + 3 guest cores)");
  Series(lightvm::Mechanisms::Xl(), 1000);
  Series(lightvm::Mechanisms::ChaosXs(), 1000);
  Series(lightvm::Mechanisms::ChaosXsSplit(), 1000);
  Series(lightvm::Mechanisms::ChaosNoxs(), 1000);
  Series(lightvm::Mechanisms::LightVm(), 1000);

  // The paper's minimum point: a noop unikernel with no devices, all
  // optimizations on.
  {
    sim::Engine engine;
    lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                       lightvm::Mechanisms::LightVm());
    host.AddShellFlavor(guests::NoopUnikernel().memory, false, 4);
    host.PrefillShellPool();
    bench::CreateTiming t =
        bench::CreateBootTimed(engine, host, bench::Config("noop", guests::NoopUnikernel()));
    std::printf("\n# noop unikernel, no devices, all optimizations: %.2f ms "
                "(paper: 2.3 ms)\n",
                t.create_ms + t.boot_ms);
    bench::Point("noop_minimum", {{"create_ms", t.create_ms}, {"boot_ms", t.boot_ms}});
  }
  bench::Footnote("paper anchors: xl ~100ms -> ~1s with log-rotation spikes; chaos[XS] "
                  "15->80ms; chaos[XS+split] max ~25ms; chaos[NoXS] 8-15ms; LightVM "
                  "4 -> 4.1ms");
  bench::Report::Get().Write();
  return 0;
}
