// Figure 16c: high-density TLS termination — aggregate handshake throughput
// as the number of termination endpoints grows, for bare-metal processes,
// Tinyx VMs (Linux TCP stack) and the axtls/lwip unikernel.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/guests/apps.h"

namespace {

constexpr lv::Duration kWarmup = lv::Duration::Seconds(8);
constexpr lv::Duration kMeasure = lv::Duration::Seconds(5);
constexpr int kCounts[] = {1, 100, 250, 500, 750, 1000};

struct LoopState {
  int64_t served = 0;
  bool stop = false;
};

// One apachebench client per endpoint, closed loop.
sim::Co<void> ClientLoop(guests::TlsServer* server, LoopState* state) {
  while (!state->stop) {
    co_await server->HandleRequest();
    ++state->served;
  }
}

// Bare metal: N processes on the 14 cores, same RSA-1024 handshake cost as
// Tinyx (the Linux stack is the common denominator).
sim::Co<void> ProcessLoop(sim::CpuScheduler* cpu, int core, LoopState* state) {
  while (!state->stop) {
    co_await cpu->Run(core, guests::TinyxTls().tls_handshake_cpu, -1);
    ++state->served;
  }
}

double MeasureVmSeries(const guests::GuestImage& image, int n) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon14Core(),
                     lightvm::Mechanisms::LightVm());
  host.AddShellFlavor(image.memory, true, 8);
  host.PrefillShellPool();
  // Boot the whole population first; only then start the measured clients.
  std::vector<std::unique_ptr<guests::TlsServer>> servers;
  std::vector<std::unique_ptr<LoopState>> states;
  for (int i = 0; i < n; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("tls%d", i), image));
    if (!t.ok) {
      bench::FailRun(lv::StrFormat("tls: create %d/%d failed", i, n));
    }
    servers.push_back(std::make_unique<guests::TlsServer>(host.guest(t.domid)));
  }
  for (int i = 0; i < n; ++i) {
    states.push_back(std::make_unique<LoopState>());
    engine.Spawn(ClientLoop(servers[static_cast<size_t>(i)].get(), states.back().get()));
  }
  // Warm up so slow (lwip) requests are in steady state, then measure.
  engine.RunFor(kWarmup);
  for (auto& s : states) {
    s->served = 0;
  }
  engine.RunFor(kMeasure);
  int64_t total = 0;
  for (auto& s : states) {
    total += s->served;
    s->stop = true;
  }
  engine.RunFor(lv::Duration::Seconds(2));  // Drain loops.
  return static_cast<double>(total) / kMeasure.secs();
}

double MeasureBareMetal(int n) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 14);
  std::vector<std::unique_ptr<LoopState>> states;
  for (int i = 0; i < n; ++i) {
    states.push_back(std::make_unique<LoopState>());
    engine.Spawn(ProcessLoop(&cpu, i % 14, states.back().get()));
  }
  engine.RunFor(kWarmup);
  for (auto& s : states) {
    s->served = 0;
  }
  engine.RunFor(kMeasure);
  int64_t total = 0;
  for (auto& s : states) {
    total += s->served;
    s->stop = true;
  }
  engine.RunFor(lv::Duration::Seconds(2));
  return static_cast<double>(total) / kMeasure.secs();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig16c_tls");
  bench::Header("Figure 16c", "TLS termination throughput vs number of endpoints",
                "RSA-1024 handshakes, 14-core Xeon model, closed-loop clients");
  std::printf("%-10s %-14s %-12s %s\n", "endpoints", "bare_metal", "tinyx",
              "unikernel");
  for (int n : kCounts) {
    double bare = MeasureBareMetal(n);
    double tinyx = MeasureVmSeries(guests::TinyxTls(), n);
    double uni = MeasureVmSeries(guests::TlsUnikernel(), n);
    bench::Point("tls", {{"endpoints", static_cast<double>(n)},
                         {"bare_metal_rps", bare},
                         {"tinyx_rps", tinyx},
                         {"unikernel_rps", uni}});
    std::printf("%-10d %-14.0f %-12.0f %.0f\n", n, bare, tinyx, uni);
  }
  bench::Footnote("paper shape: ~1400 req/s for bare metal and Tinyx (Linux stack); "
                  "the lwip unikernel reaches ~1/5 of that; throughput rises with "
                  "endpoints until the CPUs saturate");
  bench::Report::Get().Write();
  return 0;
}
