// Shared helpers for the figure-reproduction benchmarks: table printing,
// sample-point selection, timed VM creation, and the machine-readable
// BENCH_*.json report (--json=<file>).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/base/assert.h"
#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/obs/obs.h"
#include "src/metrics/export.h"
#include "src/metrics/metrics.h"
#include "src/sim/run.h"

namespace bench {

// Machine-readable benchmark results. Every figure binary records its full-
// resolution data points here (the printed table is usually downsampled via
// Sample()); `--json=<file>` dumps them as a schema-versioned artifact
// together with a snapshot of the always-on metrics registry, so two runs of
// the same figure can be diffed point-by-point and counter-by-counter. With
// no `--json` flag the report is a no-op; nothing is ever written to stdout,
// which keeps the printed tables byte-identical either way.
//
// Usage, in a figure's main(int argc, char** argv):
//   bench::Report::Get().Init(argc, argv, "fig04_instantiation");
//   ...
//   bench::Point("unikernel", {{"n", i}, {"create_ms", t.create_ms}});
//   ...
//   bench::Report::Get().Write();
class Report {
 public:
  static Report& Get() {
    static Report* report = new Report();
    return *report;
  }

  // Parses benchmark command-line flags. Currently: --json=<file>.
  void Init(int argc, char** argv, const std::string& name) {
    name_ = name;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--json=", 7) == 0) {
        json_path_ = arg + 7;
      } else {
        std::fprintf(stderr, "usage: %s [--json=<file>]\n", argv[0]);
        std::exit(2);
      }
    }
  }

  void SetTitle(const std::string& title, const std::string& setup) {
    title_ = title;
    setup_ = setup;
  }
  void AddFootnote(const std::string& text) { footnotes_.push_back(text); }

  // Echo a config knob into the artifact (what was this run configured as?).
  void Config(const std::string& key, double value) {
    config_.emplace_back(key, metrics::JsonNumber(value));
  }
  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, "\"" + metrics::JsonEscape(value) + "\"");
  }

  // Records one data point. The first point of a series fixes its columns;
  // later points must use the same columns in the same order.
  void Point(const std::string& series,
             std::vector<std::pair<std::string, double>> row) {
    Series* s = nullptr;
    for (Series& existing : series_) {
      if (existing.name == series) {
        s = &existing;
        break;
      }
    }
    if (s == nullptr) {
      series_.push_back(Series{series, {}, {}});
      s = &series_.back();
      for (const auto& [col, value] : row) {
        s->columns.push_back(col);
      }
    }
    LV_CHECK_MSG(row.size() == s->columns.size(), "point/column arity mismatch");
    for (size_t i = 0; i < row.size(); ++i) {
      LV_CHECK_MSG(row[i].first == s->columns[i], "point/column name mismatch");
    }
    std::vector<double> values;
    values.reserve(row.size());
    for (const auto& [col, value] : row) {
      values.push_back(value);
    }
    s->points.push_back(std::move(values));
  }

  // Writes the artifact if --json was requested. Failure to write is fatal:
  // a benchmark that silently drops its results is worse than one that dies.
  void Write() const {
    if (json_path_.empty()) {
      return;
    }
    std::ofstream out(json_path_);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path_.c_str());
      std::exit(1);
    }
    WriteJson(out);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "short write to %s\n", json_path_.c_str());
      std::exit(1);
    }
  }

 private:
  struct Series {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> points;
  };

  Report() = default;

  void WriteJson(std::ostream& out) const {
    out << "{\"schema\":\"lightvm-bench/1\",\n";
    out << lv::StrFormat("\"name\":\"%s\",\n", metrics::JsonEscape(name_).c_str());
    out << lv::StrFormat("\"title\":\"%s\",\n", metrics::JsonEscape(title_).c_str());
    out << lv::StrFormat("\"setup\":\"%s\",\n", metrics::JsonEscape(setup_).c_str());
    out << "\"footnotes\":[";
    for (size_t i = 0; i < footnotes_.size(); ++i) {
      out << (i == 0 ? "" : ",")
          << lv::StrFormat("\"%s\"", metrics::JsonEscape(footnotes_[i]).c_str());
    }
    out << "],\n\"config\":{";
    for (size_t i = 0; i < config_.size(); ++i) {
      out << (i == 0 ? "" : ",")
          << lv::StrFormat("\"%s\":%s", metrics::JsonEscape(config_[i].first).c_str(),
                           config_[i].second.c_str());
    }
    out << "},\n\"series\":{";
    for (size_t i = 0; i < series_.size(); ++i) {
      const Series& s = series_[i];
      out << (i == 0 ? "" : ",")
          << lv::StrFormat("\n\"%s\":{\"columns\":[", metrics::JsonEscape(s.name).c_str());
      for (size_t c = 0; c < s.columns.size(); ++c) {
        out << (c == 0 ? "" : ",")
            << lv::StrFormat("\"%s\"", metrics::JsonEscape(s.columns[c]).c_str());
      }
      out << "],\"points\":[";
      for (size_t p = 0; p < s.points.size(); ++p) {
        out << (p == 0 ? "" : ",") << "[";
        for (size_t c = 0; c < s.points[p].size(); ++c) {
          out << (c == 0 ? "" : ",") << metrics::JsonNumber(s.points[p][c]);
        }
        out << "]";
      }
      out << "]}";
    }
    out << "},\n\"metrics\":";
    metrics::WriteJson(metrics::Registry::Get(), out);
    out << "}\n";
  }

  std::string name_;
  std::string title_;
  std::string setup_;
  std::string json_path_;
  std::vector<std::string> footnotes_;
  std::vector<std::pair<std::string, std::string>> config_;  // key -> JSON value
  std::vector<Series> series_;
};

// Shorthand for the common call.
inline void Point(const std::string& series,
                  std::vector<std::pair<std::string, double>> row) {
  Report::Get().Point(series, std::move(row));
}

// Aborts a benchmark run that cannot produce valid results. A figure that
// exits 0 with a silently truncated table poisons downstream comparisons,
// so failures are loud and nonzero. If a flight-recorder dump path is armed
// (--flight-out), the per-node event rings are written first — the
// post-mortem for exactly this situation.
[[noreturn]] inline void FailRun(const std::string& reason) {
  std::fprintf(stderr, "benchmark run failed: %s\n", reason.c_str());
  obs::FlightRecorder::Get().MaybeDump();
  std::exit(1);
}

inline void Header(const std::string& figure, const std::string& title,
                   const std::string& setup) {
  Report::Get().SetTitle(title, setup);
  std::printf("# %s — %s\n", figure.c_str(), title.c_str());
  std::printf("# setup: %s\n", setup.c_str());
}

inline void Footnote(const std::string& text) {
  Report::Get().AddFootnote(text);
  std::printf("# %s\n", text.c_str());
}

// Samples ~`points` indices out of [1, total], always including 1 and total.
// When total <= points there is nothing to thin out: every index is a sample
// point (a zero step would otherwise drop every interior index).
inline bool Sample(int i, int total, int points = 25) {
  if (i == 1 || i == total) {
    return true;
  }
  int step = total / points;
  if (step == 0) {
    return true;
  }
  return i % step == 0;
}

// Creates a VM and waits for boot; returns (domid, create_ms, boot_ms).
struct CreateTiming {
  hv::DomainId domid = hv::kInvalidDomain;
  double create_ms = 0.0;
  double boot_ms = 0.0;
  bool ok = false;
};

inline CreateTiming CreateBootTimed(sim::Engine& engine, lightvm::Host& host,
                                    toolstack::VmConfig config) {
  CreateTiming timing;
  lv::TimePoint t0 = engine.now();
  auto domid = sim::RunToCompletion(engine, host.CreateVm(std::move(config)));
  if (!domid.ok()) {
    std::fprintf(stderr, "create failed: %s\n", domid.error().message.c_str());
    return timing;
  }
  timing.domid = *domid;
  timing.create_ms = (engine.now() - t0).ms();
  lv::TimePoint t1 = engine.now();
  guests::Guest* guest = host.guest(*domid);
  if (guest != nullptr) {
    bool booted = sim::RunUntilCondition(engine, [&] { return guest->booted(); },
                                         lv::Duration::Seconds(600));
    if (!booted) {
      std::fprintf(stderr, "boot timed out for dom%lld\n", (long long)*domid);
      return timing;
    }
    timing.boot_ms = (guest->booted_at() - t1).ms();
  }
  timing.ok = true;
  return timing;
}

inline toolstack::VmConfig Config(const std::string& name, guests::GuestImage image) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = std::move(image);
  return config;
}

}  // namespace bench
