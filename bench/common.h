// Shared helpers for the figure-reproduction benchmarks: table printing,
// sample-point selection and timed VM creation.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"

namespace bench {

inline void Header(const std::string& figure, const std::string& title,
                   const std::string& setup) {
  std::printf("# %s — %s\n", figure.c_str(), title.c_str());
  std::printf("# setup: %s\n", setup.c_str());
}

inline void Footnote(const std::string& text) { std::printf("# %s\n", text.c_str()); }

// Samples ~`points` indices out of [1, total], always including 1 and total.
inline bool Sample(int i, int total, int points = 25) {
  if (i == 1 || i == total) {
    return true;
  }
  int step = total / points;
  return step > 0 && i % step == 0;
}

// Creates a VM and waits for boot; returns (domid, create_ms, boot_ms).
struct CreateTiming {
  hv::DomainId domid = hv::kInvalidDomain;
  double create_ms = 0.0;
  double boot_ms = 0.0;
  bool ok = false;
};

inline CreateTiming CreateBootTimed(sim::Engine& engine, lightvm::Host& host,
                                    toolstack::VmConfig config) {
  CreateTiming timing;
  lv::TimePoint t0 = engine.now();
  auto domid = sim::RunToCompletion(engine, host.CreateVm(std::move(config)));
  if (!domid.ok()) {
    std::fprintf(stderr, "create failed: %s\n", domid.error().message.c_str());
    return timing;
  }
  timing.domid = *domid;
  timing.create_ms = (engine.now() - t0).ms();
  lv::TimePoint t1 = engine.now();
  guests::Guest* guest = host.guest(*domid);
  if (guest != nullptr) {
    bool booted = sim::RunUntilCondition(engine, [&] { return guest->booted(); },
                                         lv::Duration::Seconds(600));
    if (!booted) {
      std::fprintf(stderr, "boot timed out for dom%lld\n", (long long)*domid);
      return timing;
    }
    timing.boot_ms = (guest->booted_at() - t1).ms();
  }
  timing.ok = true;
  return timing;
}

inline toolstack::VmConfig Config(const std::string& name, guests::GuestImage image) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = std::move(image);
  return config;
}

}  // namespace bench
