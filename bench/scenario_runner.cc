// scenario_runner — executes a declarative scenario spec (scenarios/*.json)
// over the same control plane the fig* binaries drive. One binary, many
// experiments: the spec describes topology, mechanisms, guest mix and
// workload; the runner prints deterministic tables and emits the same
// schema-versioned BENCH_<name>.json artifacts as the dedicated binaries.
//
//   scenario_runner <spec.json> [--json=<file>] [--trace-out=<file>]
//                   [--metrics-out=<file>] [--flight-out=<file>] [--check]
//
//   --json         machine-readable results (lightvm-bench/1 schema)
//   --trace-out    Chrome trace_event JSON of the final engine epoch
//   --metrics-out  metrics-registry snapshot at end of run
//   --flight-out   flight-recorder dump, written only when the run fails
//   --check        parse + validate the spec; when the spec carries an `slo`
//                  section, additionally run it and fail (non-zero exit) on
//                  any violated bound
//
// Examples:
//   scenario_runner scenarios/fig04_instantiation.json --json=BENCH_fig04.json
//   scenario_runner scenarios/churn_storm.json --trace-out=churn_trace.json
//   scenario_runner scenarios/ci/chaos_ci.json --check --flight-out=flight.json
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/scenario/runner.h"
#include "src/scenario/spec.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.json> [--json=<file>] [--trace-out=<file>] "
               "[--metrics-out=<file>] [--flight-out=<file>] [--check]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  scenario::RunOptions options;
  bool check_only = false;
  std::vector<char*> report_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      report_args.push_back(arg);
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      options.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      options.metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--flight-out=", 13) == 0) {
      options.flight_out = arg + 13;
    } else if (std::strcmp(arg, "--check") == 0) {
      check_only = true;
    } else if (arg[0] == '-') {
      Usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      Usage(argv[0]);
    }
  }
  if (spec_path.empty()) {
    Usage(argv[0]);
  }

  auto spec = scenario::LoadSpecFile(spec_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "invalid scenario: %s\n", spec.error().message.c_str());
    return 1;
  }
  if (check_only) {
    // Specs without SLOs stay parse-only (cheap validation of even the
    // largest committed specs). A spec that declares SLOs is a gate: run it
    // and enforce every bound.
    if (!spec->slo.has_value()) {
      std::printf("OK: %s (workload=%s, nodes=%d, seed=%llu)\n", spec->name.c_str(),
                  scenario::WorkloadKindName(spec->workload.kind),
                  spec->topology.nodes, (unsigned long long)spec->seed);
      return 0;
    }
    options.enforce_slo = true;
    auto result = scenario::Run(*spec, options, std::cout);
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL: %s: %s\n", spec->name.c_str(),
                   result.error().message.c_str());
      return 1;
    }
    std::printf("OK: %s (workload=%s, nodes=%d, seed=%llu, slo bounds met)\n",
                spec->name.c_str(), scenario::WorkloadKindName(spec->workload.kind),
                spec->topology.nodes, (unsigned long long)spec->seed);
    return 0;
  }

  int report_argc = static_cast<int>(report_args.size());
  bench::Report::Get().Init(report_argc, report_args.data(), spec->name);
  bench::Report::Get().SetTitle(
      spec->title.empty() ? spec->name : spec->title,
      lv::StrFormat("scenario %s: %s on %s, %d node(s), seed %llu",
                    spec_path.c_str(), scenario::WorkloadKindName(spec->workload.kind),
                    spec->topology.host.preset.c_str(), spec->topology.nodes,
                    (unsigned long long)spec->seed));
  bench::Report::Get().Config("seed", static_cast<double>(spec->seed));
  bench::Report::Get().Config("mechanisms", spec->mechanisms);
  bench::Report::Get().Config("workload", scenario::WorkloadKindName(spec->workload.kind));
  bench::Report::Get().Config("host_preset", spec->topology.host.preset);
  bench::Report::Get().Config("nodes", static_cast<double>(spec->topology.nodes));
  bench::Report::Get().Config("spec", spec_path);

  auto result = scenario::Run(
      *spec, options, std::cout,
      [](const std::string& series,
         const std::vector<std::pair<std::string, double>>& row) {
        bench::Report::Get().Point(series, row);
      });
  if (!result.ok()) {
    bench::FailRun(result.error().message);
  }
  bench::Report::Get().Write();
  return 0;
}
