// Figure 14: scalability of memory usage for different VM types, containers
// and processes — the hard bound on density.
#include <cstdio>

#include "bench/common.h"
#include "src/container/container.h"

namespace {

void VmSeries(const char* label, guests::GuestImage image, int total) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  std::printf("\n## %s\n", label);
  std::printf("%-8s %s\n", "n", "memory_mb");
  for (int i = 1; i <= total; ++i) {
    bench::CreateTiming t = bench::CreateBootTimed(
        engine, host, bench::Config(lv::StrFormat("%s%d", label, i), image));
    if (!t.ok) {
      std::printf("# out of memory at n=%d\n", i);
      break;
    }
    bench::Point(label,
                 {{"n", static_cast<double>(i)}, {"memory_mb", host.MemoryUsed().mib()}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.0f\n", i, host.MemoryUsed().mib());
    }
  }
}

void DockerSeries(int total) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 4);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::DockerRuntime docker(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## docker-micropython\n");
  std::printf("%-8s %s\n", "n", "memory_mb");
  for (int i = 1; i <= total; ++i) {
    if (!sim::RunToCompletion(engine, docker.Run(ctx, container::MicropythonContainer()))
             .ok()) {
      break;
    }
    bench::Point("docker-micropython",
                 {{"n", static_cast<double>(i)}, {"memory_mb", docker.MemoryUsed().mib()}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.0f\n", i, docker.MemoryUsed().mib());
    }
  }
}

void ProcessSeries(int total) {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 4);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::ProcessRuntime procs(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## micropython process\n");
  std::printf("%-8s %s\n", "n", "memory_mb");
  for (int i = 1; i <= total; ++i) {
    (void)sim::RunToCompletion(engine, procs.ForkExec(ctx));
    bench::Point("process",
                 {{"n", static_cast<double>(i)}, {"memory_mb", procs.MemoryUsed().mib()}});
    if (bench::Sample(i, total)) {
      std::printf("%-8d %.0f\n", i, procs.MemoryUsed().mib());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig14_memory");
  bench::Header("Figure 14", "total memory usage vs number of guests",
                "Micropython workload in each environment, 128 GB host");
  VmSeries("debian-micropython", guests::DebianMicropython(), 1000);
  VmSeries("tinyx-micropython", guests::TinyxMicropython(), 1000);
  DockerSeries(1000);
  VmSeries("minipython-unikernel", guests::MinipythonUnikernel(), 1000);
  ProcessSeries(1000);
  bench::Footnote("paper anchors at 1000 guests: Debian ~114 GB, Tinyx ~27 GB, Docker "
                  "~5 GB, Minipython close to Docker, processes lowest");
  bench::Report::Get().Write();
  return 0;
}
