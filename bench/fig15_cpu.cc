// Figure 15: machine-wide CPU utilization with idle guests — unikernels and
// containers idle near zero, Tinyx's background tasks cost ~1%, Debian's
// out-of-the-box services reach ~25% of the machine at 1000 VMs.
#include <cstdio>

#include "bench/common.h"
#include "src/container/container.h"

namespace {

constexpr int kSamplePoints[] = {1, 100, 200, 400, 600, 800, 1000};

void VmSeries(const char* label, guests::GuestImage image) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(),
                     lightvm::Mechanisms::LightVm());
  std::printf("\n## %s\n", label);
  std::printf("%-8s %s\n", "n", "cpu_util_pct");
  int created = 0;
  for (int target : kSamplePoints) {
    while (created < target) {
      bench::CreateTiming t = bench::CreateBootTimed(
          engine, host, bench::Config(lv::StrFormat("%s%d", label, created), image));
      if (!t.ok) {
        bench::FailRun(lv::StrFormat("%s: vm creation failed at n=%d", label, created));
      }
      ++created;
    }
    // Measure utilization over a 5 s idle window (iostat + xentop style).
    host.StartCpuWindow();
    engine.RunFor(lv::Duration::Seconds(5));
    bench::Point(label, {{"n", static_cast<double>(target)},
                         {"cpu_util_pct", host.CpuUtilization() * 100.0}});
    std::printf("%-8d %.2f\n", target, host.CpuUtilization() * 100.0);
  }
}

void DockerSeries() {
  sim::Engine engine;
  sim::CpuScheduler cpu(&engine, 4);
  hv::MemoryPool memory(lv::Bytes::GiB(128));
  container::DockerRuntime docker(&engine, &memory);
  sim::ExecCtx ctx{&cpu, 0, sim::kHostOwner};
  std::printf("\n## docker\n");
  std::printf("%-8s %s\n", "n", "cpu_util_pct");
  int created = 0;
  for (int target : kSamplePoints) {
    while (created < target) {
      if (!sim::RunToCompletion(engine, docker.Run(ctx, container::MinimalContainer()))
               .ok()) {
        bench::FailRun(lv::StrFormat("docker: container run failed at n=%d", created));
      }
      ++created;
    }
    cpu.StartWindow();
    engine.RunFor(lv::Duration::Seconds(5));
    bench::Point("docker", {{"n", static_cast<double>(target)},
                            {"cpu_util_pct", cpu.WindowUtilization() * 100.0}});
    std::printf("%-8d %.2f\n", target, cpu.WindowUtilization() * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report::Get().Init(argc, argv, "fig15_cpu");
  bench::Header("Figure 15", "CPU utilization with idle guests",
                "4-core Xeon model; iostat for Dom0 + xentop for guests");
  VmSeries("debian", guests::DebianVm());
  VmSeries("tinyx", guests::TinyxNoop());
  VmSeries("unikernel", guests::NoopUnikernel());
  DockerSeries();
  bench::Footnote("paper anchors at 1000 guests: Debian ~25%, Tinyx ~1%, unikernel a "
                  "fraction of a percent above Docker, Docker lowest");
  bench::Report::Get().Write();
  return 0;
}
