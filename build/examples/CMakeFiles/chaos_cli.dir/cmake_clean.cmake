file(REMOVE_RECURSE
  "CMakeFiles/chaos_cli.dir/chaos_cli.cpp.o"
  "CMakeFiles/chaos_cli.dir/chaos_cli.cpp.o.d"
  "chaos_cli"
  "chaos_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
