file(REMOVE_RECURSE
  "CMakeFiles/jit_service.dir/jit_service.cpp.o"
  "CMakeFiles/jit_service.dir/jit_service.cpp.o.d"
  "jit_service"
  "jit_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
