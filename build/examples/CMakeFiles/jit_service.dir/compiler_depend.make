# Empty compiler generated dependencies file for jit_service.
# This may be replaced when dependencies are built.
