# Empty compiler generated dependencies file for tls_termination.
# This may be replaced when dependencies are built.
