file(REMOVE_RECURSE
  "CMakeFiles/tls_termination.dir/tls_termination.cpp.o"
  "CMakeFiles/tls_termination.dir/tls_termination.cpp.o.d"
  "tls_termination"
  "tls_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
