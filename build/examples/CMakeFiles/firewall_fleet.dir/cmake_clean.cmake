file(REMOVE_RECURSE
  "CMakeFiles/firewall_fleet.dir/firewall_fleet.cpp.o"
  "CMakeFiles/firewall_fleet.dir/firewall_fleet.cpp.o.d"
  "firewall_fleet"
  "firewall_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
