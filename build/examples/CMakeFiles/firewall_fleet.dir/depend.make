# Empty dependencies file for firewall_fleet.
# This may be replaced when dependencies are built.
