# Empty dependencies file for compute_service.
# This may be replaced when dependencies are built.
