file(REMOVE_RECURSE
  "CMakeFiles/compute_service.dir/compute_service.cpp.o"
  "CMakeFiles/compute_service.dir/compute_service.cpp.o.d"
  "compute_service"
  "compute_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
