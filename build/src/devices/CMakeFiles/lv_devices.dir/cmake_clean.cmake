file(REMOVE_RECURSE
  "CMakeFiles/lv_devices.dir/backend.cc.o"
  "CMakeFiles/lv_devices.dir/backend.cc.o.d"
  "CMakeFiles/lv_devices.dir/hotplug.cc.o"
  "CMakeFiles/lv_devices.dir/hotplug.cc.o.d"
  "CMakeFiles/lv_devices.dir/sysctl.cc.o"
  "CMakeFiles/lv_devices.dir/sysctl.cc.o.d"
  "liblv_devices.a"
  "liblv_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
