file(REMOVE_RECURSE
  "liblv_devices.a"
)
