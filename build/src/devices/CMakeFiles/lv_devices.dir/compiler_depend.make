# Empty compiler generated dependencies file for lv_devices.
# This may be replaced when dependencies are built.
