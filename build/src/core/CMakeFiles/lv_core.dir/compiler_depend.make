# Empty compiler generated dependencies file for lv_core.
# This may be replaced when dependencies are built.
