file(REMOVE_RECURSE
  "liblv_core.a"
)
