file(REMOVE_RECURSE
  "CMakeFiles/lv_core.dir/host.cc.o"
  "CMakeFiles/lv_core.dir/host.cc.o.d"
  "liblv_core.a"
  "liblv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
