# Empty compiler generated dependencies file for lv_base.
# This may be replaced when dependencies are built.
