
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/log.cc" "src/base/CMakeFiles/lv_base.dir/log.cc.o" "gcc" "src/base/CMakeFiles/lv_base.dir/log.cc.o.d"
  "/root/repo/src/base/result.cc" "src/base/CMakeFiles/lv_base.dir/result.cc.o" "gcc" "src/base/CMakeFiles/lv_base.dir/result.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/base/CMakeFiles/lv_base.dir/stats.cc.o" "gcc" "src/base/CMakeFiles/lv_base.dir/stats.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/base/CMakeFiles/lv_base.dir/strings.cc.o" "gcc" "src/base/CMakeFiles/lv_base.dir/strings.cc.o.d"
  "/root/repo/src/base/time.cc" "src/base/CMakeFiles/lv_base.dir/time.cc.o" "gcc" "src/base/CMakeFiles/lv_base.dir/time.cc.o.d"
  "/root/repo/src/base/units.cc" "src/base/CMakeFiles/lv_base.dir/units.cc.o" "gcc" "src/base/CMakeFiles/lv_base.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
