file(REMOVE_RECURSE
  "CMakeFiles/lv_base.dir/log.cc.o"
  "CMakeFiles/lv_base.dir/log.cc.o.d"
  "CMakeFiles/lv_base.dir/result.cc.o"
  "CMakeFiles/lv_base.dir/result.cc.o.d"
  "CMakeFiles/lv_base.dir/stats.cc.o"
  "CMakeFiles/lv_base.dir/stats.cc.o.d"
  "CMakeFiles/lv_base.dir/strings.cc.o"
  "CMakeFiles/lv_base.dir/strings.cc.o.d"
  "CMakeFiles/lv_base.dir/time.cc.o"
  "CMakeFiles/lv_base.dir/time.cc.o.d"
  "CMakeFiles/lv_base.dir/units.cc.o"
  "CMakeFiles/lv_base.dir/units.cc.o.d"
  "liblv_base.a"
  "liblv_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
