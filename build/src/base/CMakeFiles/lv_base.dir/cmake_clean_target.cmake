file(REMOVE_RECURSE
  "liblv_base.a"
)
