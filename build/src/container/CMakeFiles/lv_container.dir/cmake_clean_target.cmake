file(REMOVE_RECURSE
  "liblv_container.a"
)
