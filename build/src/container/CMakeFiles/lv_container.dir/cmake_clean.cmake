file(REMOVE_RECURSE
  "CMakeFiles/lv_container.dir/container.cc.o"
  "CMakeFiles/lv_container.dir/container.cc.o.d"
  "liblv_container.a"
  "liblv_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
