# Empty compiler generated dependencies file for lv_container.
# This may be replaced when dependencies are built.
