file(REMOVE_RECURSE
  "liblv_net.a"
)
