file(REMOVE_RECURSE
  "CMakeFiles/lv_net.dir/switch.cc.o"
  "CMakeFiles/lv_net.dir/switch.cc.o.d"
  "liblv_net.a"
  "liblv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
