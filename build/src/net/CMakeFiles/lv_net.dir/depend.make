# Empty dependencies file for lv_net.
# This may be replaced when dependencies are built.
