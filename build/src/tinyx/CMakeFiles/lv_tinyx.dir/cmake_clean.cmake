file(REMOVE_RECURSE
  "CMakeFiles/lv_tinyx.dir/builder.cc.o"
  "CMakeFiles/lv_tinyx.dir/builder.cc.o.d"
  "CMakeFiles/lv_tinyx.dir/kernel_config.cc.o"
  "CMakeFiles/lv_tinyx.dir/kernel_config.cc.o.d"
  "CMakeFiles/lv_tinyx.dir/package_db.cc.o"
  "CMakeFiles/lv_tinyx.dir/package_db.cc.o.d"
  "liblv_tinyx.a"
  "liblv_tinyx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_tinyx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
