file(REMOVE_RECURSE
  "liblv_tinyx.a"
)
