# Empty dependencies file for lv_tinyx.
# This may be replaced when dependencies are built.
