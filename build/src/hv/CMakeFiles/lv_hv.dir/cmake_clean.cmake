file(REMOVE_RECURSE
  "CMakeFiles/lv_hv.dir/event_channel.cc.o"
  "CMakeFiles/lv_hv.dir/event_channel.cc.o.d"
  "CMakeFiles/lv_hv.dir/grant_table.cc.o"
  "CMakeFiles/lv_hv.dir/grant_table.cc.o.d"
  "CMakeFiles/lv_hv.dir/hypervisor.cc.o"
  "CMakeFiles/lv_hv.dir/hypervisor.cc.o.d"
  "CMakeFiles/lv_hv.dir/memory.cc.o"
  "CMakeFiles/lv_hv.dir/memory.cc.o.d"
  "liblv_hv.a"
  "liblv_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
