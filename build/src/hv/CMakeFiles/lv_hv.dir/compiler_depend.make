# Empty compiler generated dependencies file for lv_hv.
# This may be replaced when dependencies are built.
