file(REMOVE_RECURSE
  "liblv_hv.a"
)
