file(REMOVE_RECURSE
  "liblv_toolstack.a"
)
