file(REMOVE_RECURSE
  "CMakeFiles/lv_toolstack.dir/chaos.cc.o"
  "CMakeFiles/lv_toolstack.dir/chaos.cc.o.d"
  "CMakeFiles/lv_toolstack.dir/chaos_daemon.cc.o"
  "CMakeFiles/lv_toolstack.dir/chaos_daemon.cc.o.d"
  "CMakeFiles/lv_toolstack.dir/config.cc.o"
  "CMakeFiles/lv_toolstack.dir/config.cc.o.d"
  "CMakeFiles/lv_toolstack.dir/migration.cc.o"
  "CMakeFiles/lv_toolstack.dir/migration.cc.o.d"
  "CMakeFiles/lv_toolstack.dir/toolstack.cc.o"
  "CMakeFiles/lv_toolstack.dir/toolstack.cc.o.d"
  "CMakeFiles/lv_toolstack.dir/xl.cc.o"
  "CMakeFiles/lv_toolstack.dir/xl.cc.o.d"
  "liblv_toolstack.a"
  "liblv_toolstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_toolstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
