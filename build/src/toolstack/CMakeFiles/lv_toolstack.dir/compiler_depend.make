# Empty compiler generated dependencies file for lv_toolstack.
# This may be replaced when dependencies are built.
