# CMake generated Testfile for 
# Source directory: /root/repo/src/toolstack
# Build directory: /root/repo/build/src/toolstack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
