# Empty dependencies file for lv_sim.
# This may be replaced when dependencies are built.
