file(REMOVE_RECURSE
  "CMakeFiles/lv_sim.dir/cpu.cc.o"
  "CMakeFiles/lv_sim.dir/cpu.cc.o.d"
  "CMakeFiles/lv_sim.dir/engine.cc.o"
  "CMakeFiles/lv_sim.dir/engine.cc.o.d"
  "liblv_sim.a"
  "liblv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
