file(REMOVE_RECURSE
  "liblv_sim.a"
)
