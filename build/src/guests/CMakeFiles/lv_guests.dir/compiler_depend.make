# Empty compiler generated dependencies file for lv_guests.
# This may be replaced when dependencies are built.
