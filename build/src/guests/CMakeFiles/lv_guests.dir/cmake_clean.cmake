file(REMOVE_RECURSE
  "CMakeFiles/lv_guests.dir/apps.cc.o"
  "CMakeFiles/lv_guests.dir/apps.cc.o.d"
  "CMakeFiles/lv_guests.dir/guest.cc.o"
  "CMakeFiles/lv_guests.dir/guest.cc.o.d"
  "CMakeFiles/lv_guests.dir/image.cc.o"
  "CMakeFiles/lv_guests.dir/image.cc.o.d"
  "CMakeFiles/lv_guests.dir/syscall_table.cc.o"
  "CMakeFiles/lv_guests.dir/syscall_table.cc.o.d"
  "liblv_guests.a"
  "liblv_guests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_guests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
