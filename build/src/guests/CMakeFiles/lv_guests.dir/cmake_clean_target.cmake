file(REMOVE_RECURSE
  "liblv_guests.a"
)
