
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xenstore/daemon.cc" "src/xenstore/CMakeFiles/lv_xenstore.dir/daemon.cc.o" "gcc" "src/xenstore/CMakeFiles/lv_xenstore.dir/daemon.cc.o.d"
  "/root/repo/src/xenstore/store.cc" "src/xenstore/CMakeFiles/lv_xenstore.dir/store.cc.o" "gcc" "src/xenstore/CMakeFiles/lv_xenstore.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lv_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/lv_hv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
