# Empty compiler generated dependencies file for lv_xenstore.
# This may be replaced when dependencies are built.
