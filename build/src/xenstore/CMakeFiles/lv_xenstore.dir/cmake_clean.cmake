file(REMOVE_RECURSE
  "CMakeFiles/lv_xenstore.dir/daemon.cc.o"
  "CMakeFiles/lv_xenstore.dir/daemon.cc.o.d"
  "CMakeFiles/lv_xenstore.dir/store.cc.o"
  "CMakeFiles/lv_xenstore.dir/store.cc.o.d"
  "liblv_xenstore.a"
  "liblv_xenstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lv_xenstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
