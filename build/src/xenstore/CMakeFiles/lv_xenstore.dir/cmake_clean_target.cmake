file(REMOVE_RECURSE
  "liblv_xenstore.a"
)
