file(REMOVE_RECURSE
  "CMakeFiles/tinyx_test.dir/tinyx_test.cc.o"
  "CMakeFiles/tinyx_test.dir/tinyx_test.cc.o.d"
  "tinyx_test"
  "tinyx_test.pdb"
  "tinyx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinyx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
