# Empty compiler generated dependencies file for tinyx_test.
# This may be replaced when dependencies are built.
