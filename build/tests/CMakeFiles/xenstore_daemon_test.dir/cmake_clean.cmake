file(REMOVE_RECURSE
  "CMakeFiles/xenstore_daemon_test.dir/xenstore_daemon_test.cc.o"
  "CMakeFiles/xenstore_daemon_test.dir/xenstore_daemon_test.cc.o.d"
  "xenstore_daemon_test"
  "xenstore_daemon_test.pdb"
  "xenstore_daemon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xenstore_daemon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
