# Empty compiler generated dependencies file for xenstore_daemon_test.
# This may be replaced when dependencies are built.
