file(REMOVE_RECURSE
  "CMakeFiles/toolstack_config_test.dir/toolstack_config_test.cc.o"
  "CMakeFiles/toolstack_config_test.dir/toolstack_config_test.cc.o.d"
  "toolstack_config_test"
  "toolstack_config_test.pdb"
  "toolstack_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolstack_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
