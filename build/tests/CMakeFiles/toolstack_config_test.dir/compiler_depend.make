# Empty compiler generated dependencies file for toolstack_config_test.
# This may be replaced when dependencies are built.
