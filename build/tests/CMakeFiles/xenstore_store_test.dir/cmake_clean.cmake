file(REMOVE_RECURSE
  "CMakeFiles/xenstore_store_test.dir/xenstore_store_test.cc.o"
  "CMakeFiles/xenstore_store_test.dir/xenstore_store_test.cc.o.d"
  "xenstore_store_test"
  "xenstore_store_test.pdb"
  "xenstore_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xenstore_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
