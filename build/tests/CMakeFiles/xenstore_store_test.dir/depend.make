# Empty dependencies file for xenstore_store_test.
# This may be replaced when dependencies are built.
