file(REMOVE_RECURSE
  "CMakeFiles/hv_test.dir/hv_test.cc.o"
  "CMakeFiles/hv_test.dir/hv_test.cc.o.d"
  "hv_test"
  "hv_test.pdb"
  "hv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
