# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/xenstore_store_test[1]_include.cmake")
include("/root/repo/build/tests/xenstore_daemon_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/guests_test[1]_include.cmake")
include("/root/repo/build/tests/tinyx_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/toolstack_config_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
