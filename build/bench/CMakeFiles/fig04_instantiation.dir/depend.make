# Empty dependencies file for fig04_instantiation.
# This may be replaced when dependencies are built.
