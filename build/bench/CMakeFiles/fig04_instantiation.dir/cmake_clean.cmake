file(REMOVE_RECURSE
  "CMakeFiles/fig04_instantiation.dir/fig04_instantiation.cc.o"
  "CMakeFiles/fig04_instantiation.dir/fig04_instantiation.cc.o.d"
  "fig04_instantiation"
  "fig04_instantiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_instantiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
