# Empty compiler generated dependencies file for fig02_boot_vs_image_size.
# This may be replaced when dependencies are built.
