file(REMOVE_RECURSE
  "CMakeFiles/fig02_boot_vs_image_size.dir/fig02_boot_vs_image_size.cc.o"
  "CMakeFiles/fig02_boot_vs_image_size.dir/fig02_boot_vs_image_size.cc.o.d"
  "fig02_boot_vs_image_size"
  "fig02_boot_vs_image_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_boot_vs_image_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
