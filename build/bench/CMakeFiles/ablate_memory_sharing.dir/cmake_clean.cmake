file(REMOVE_RECURSE
  "CMakeFiles/ablate_memory_sharing.dir/ablate_memory_sharing.cc.o"
  "CMakeFiles/ablate_memory_sharing.dir/ablate_memory_sharing.cc.o.d"
  "ablate_memory_sharing"
  "ablate_memory_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_memory_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
