# Empty dependencies file for ablate_memory_sharing.
# This may be replaced when dependencies are built.
