file(REMOVE_RECURSE
  "CMakeFiles/fig09_mechanisms.dir/fig09_mechanisms.cc.o"
  "CMakeFiles/fig09_mechanisms.dir/fig09_mechanisms.cc.o.d"
  "fig09_mechanisms"
  "fig09_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
