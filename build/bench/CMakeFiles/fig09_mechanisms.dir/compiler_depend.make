# Empty compiler generated dependencies file for fig09_mechanisms.
# This may be replaced when dependencies are built.
