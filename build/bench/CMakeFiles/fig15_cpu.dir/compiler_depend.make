# Empty compiler generated dependencies file for fig15_cpu.
# This may be replaced when dependencies are built.
