file(REMOVE_RECURSE
  "CMakeFiles/fig15_cpu.dir/fig15_cpu.cc.o"
  "CMakeFiles/fig15_cpu.dir/fig15_cpu.cc.o.d"
  "fig15_cpu"
  "fig15_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
