# Empty dependencies file for fig12_checkpoint.
# This may be replaced when dependencies are built.
