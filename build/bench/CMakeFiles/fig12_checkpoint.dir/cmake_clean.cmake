file(REMOVE_RECURSE
  "CMakeFiles/fig12_checkpoint.dir/fig12_checkpoint.cc.o"
  "CMakeFiles/fig12_checkpoint.dir/fig12_checkpoint.cc.o.d"
  "fig12_checkpoint"
  "fig12_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
