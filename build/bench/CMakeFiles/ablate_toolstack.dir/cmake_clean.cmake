file(REMOVE_RECURSE
  "CMakeFiles/ablate_toolstack.dir/ablate_toolstack.cc.o"
  "CMakeFiles/ablate_toolstack.dir/ablate_toolstack.cc.o.d"
  "ablate_toolstack"
  "ablate_toolstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_toolstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
