# Empty compiler generated dependencies file for ablate_toolstack.
# This may be replaced when dependencies are built.
