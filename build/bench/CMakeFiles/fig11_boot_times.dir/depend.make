# Empty dependencies file for fig11_boot_times.
# This may be replaced when dependencies are built.
