file(REMOVE_RECURSE
  "CMakeFiles/fig11_boot_times.dir/fig11_boot_times.cc.o"
  "CMakeFiles/fig11_boot_times.dir/fig11_boot_times.cc.o.d"
  "fig11_boot_times"
  "fig11_boot_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_boot_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
