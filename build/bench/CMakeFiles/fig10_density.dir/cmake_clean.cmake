file(REMOVE_RECURSE
  "CMakeFiles/fig10_density.dir/fig10_density.cc.o"
  "CMakeFiles/fig10_density.dir/fig10_density.cc.o.d"
  "fig10_density"
  "fig10_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
