# Empty compiler generated dependencies file for fig10_density.
# This may be replaced when dependencies are built.
