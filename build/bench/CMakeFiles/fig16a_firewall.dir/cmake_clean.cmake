file(REMOVE_RECURSE
  "CMakeFiles/fig16a_firewall.dir/fig16a_firewall.cc.o"
  "CMakeFiles/fig16a_firewall.dir/fig16a_firewall.cc.o.d"
  "fig16a_firewall"
  "fig16a_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16a_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
