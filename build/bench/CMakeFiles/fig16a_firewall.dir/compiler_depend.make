# Empty compiler generated dependencies file for fig16a_firewall.
# This may be replaced when dependencies are built.
