file(REMOVE_RECURSE
  "CMakeFiles/ablate_xenstore.dir/ablate_xenstore.cc.o"
  "CMakeFiles/ablate_xenstore.dir/ablate_xenstore.cc.o.d"
  "ablate_xenstore"
  "ablate_xenstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_xenstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
