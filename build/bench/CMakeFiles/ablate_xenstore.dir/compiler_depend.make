# Empty compiler generated dependencies file for ablate_xenstore.
# This may be replaced when dependencies are built.
