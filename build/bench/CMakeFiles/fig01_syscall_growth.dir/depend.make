# Empty dependencies file for fig01_syscall_growth.
# This may be replaced when dependencies are built.
