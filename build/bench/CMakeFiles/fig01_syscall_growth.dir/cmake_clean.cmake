file(REMOVE_RECURSE
  "CMakeFiles/fig01_syscall_growth.dir/fig01_syscall_growth.cc.o"
  "CMakeFiles/fig01_syscall_growth.dir/fig01_syscall_growth.cc.o.d"
  "fig01_syscall_growth"
  "fig01_syscall_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_syscall_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
