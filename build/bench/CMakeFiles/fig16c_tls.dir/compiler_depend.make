# Empty compiler generated dependencies file for fig16c_tls.
# This may be replaced when dependencies are built.
