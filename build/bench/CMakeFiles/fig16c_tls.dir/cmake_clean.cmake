file(REMOVE_RECURSE
  "CMakeFiles/fig16c_tls.dir/fig16c_tls.cc.o"
  "CMakeFiles/fig16c_tls.dir/fig16c_tls.cc.o.d"
  "fig16c_tls"
  "fig16c_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16c_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
