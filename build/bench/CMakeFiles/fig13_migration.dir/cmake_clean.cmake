file(REMOVE_RECURSE
  "CMakeFiles/fig13_migration.dir/fig13_migration.cc.o"
  "CMakeFiles/fig13_migration.dir/fig13_migration.cc.o.d"
  "fig13_migration"
  "fig13_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
