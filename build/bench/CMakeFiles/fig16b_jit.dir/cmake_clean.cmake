file(REMOVE_RECURSE
  "CMakeFiles/fig16b_jit.dir/fig16b_jit.cc.o"
  "CMakeFiles/fig16b_jit.dir/fig16b_jit.cc.o.d"
  "fig16b_jit"
  "fig16b_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
