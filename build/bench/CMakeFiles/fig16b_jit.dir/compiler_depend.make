# Empty compiler generated dependencies file for fig16b_jit.
# This may be replaced when dependencies are built.
