# Empty compiler generated dependencies file for fig17_compute.
# This may be replaced when dependencies are built.
