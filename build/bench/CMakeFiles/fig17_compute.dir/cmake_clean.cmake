file(REMOVE_RECURSE
  "CMakeFiles/fig17_compute.dir/fig17_compute.cc.o"
  "CMakeFiles/fig17_compute.dir/fig17_compute.cc.o.d"
  "fig17_compute"
  "fig17_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
