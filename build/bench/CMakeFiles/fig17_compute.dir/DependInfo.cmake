
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_compute.cc" "bench/CMakeFiles/fig17_compute.dir/fig17_compute.cc.o" "gcc" "bench/CMakeFiles/fig17_compute.dir/fig17_compute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/lv_container.dir/DependInfo.cmake"
  "/root/repo/build/src/tinyx/CMakeFiles/lv_tinyx.dir/DependInfo.cmake"
  "/root/repo/build/src/toolstack/CMakeFiles/lv_toolstack.dir/DependInfo.cmake"
  "/root/repo/build/src/guests/CMakeFiles/lv_guests.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lv_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/xenstore/CMakeFiles/lv_xenstore.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/lv_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/lv_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
