// Tests for guest images, boot logic (both enumeration paths), background
// tasks, the suspend protocol and the syscall-history dataset.
#include <gtest/gtest.h>

#include <optional>

#include "src/guests/apps.h"
#include "src/guests/guest.h"
#include "src/guests/image.h"
#include "src/guests/syscall_table.h"
#include "src/sim/run.h"

namespace guests {
namespace {

using lv::Bytes;
using lv::Duration;
using lv::TimePoint;

TEST(ImageTest, PaperAnchors) {
  GuestImage daytime = DaytimeUnikernel();
  EXPECT_EQ(daytime.image_size, Bytes::KiB(480));
  EXPECT_NEAR(daytime.memory.mib(), 3.6, 0.01);
  EXPECT_EQ(daytime.kind, GuestKind::kUnikernel);
  EXPECT_EQ(daytime.boot_wait_phases, 0);

  GuestImage debian = DebianVm();
  EXPECT_NEAR(debian.image_size.mib(), 1100, 1);
  EXPECT_EQ(debian.memory, Bytes::MiB(111));
  EXPECT_TRUE(debian.has_background_tasks());

  GuestImage tinyx = TinyxNoop();
  EXPECT_NEAR(tinyx.image_size.mib(), 9.5, 0.1);
  EXPECT_GT(tinyx.boot_wait_phases, 0);

  EXPECT_FALSE(NoopUnikernel().wants_net);
  EXPECT_GT(TlsUnikernel().tls_handshake_cpu.ms(),
            TinyxTls().tls_handshake_cpu.ms());  // lwip is ~5x slower
  EXPECT_GT(ClickOsFirewall().per_packet_cpu.ns(), 0);
}

TEST(ImageTest, PaddingOnlyGrows) {
  GuestImage padded = PaddedImage(DaytimeUnikernel(), Bytes::MiB(100));
  EXPECT_EQ(padded.image_size, Bytes::MiB(100));
  GuestImage unpadded = PaddedImage(DaytimeUnikernel(), Bytes::KiB(1));
  EXPECT_EQ(unpadded.image_size, Bytes::KiB(480));
}

TEST(SyscallTableTest, MonotonicGrowth) {
  const auto& hist = LinuxSyscallHistory();
  ASSERT_GE(hist.size(), 10u);
  for (size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GE(hist[i].syscalls, hist[i - 1].syscalls);
    EXPECT_GT(hist[i].year, hist[i - 1].year);
  }
  EXPECT_EQ(hist.front().year, 2002);
  EXPECT_EQ(hist.back().syscalls, 400);  // "Linux has 400 different system calls"
  EXPECT_GT(SyscallGrowthPerYear(), 5.0);
  EXPECT_LT(SyscallGrowthPerYear(), 15.0);
}

// --- Guest boot ---------------------------------------------------------------

class GuestBootTest : public ::testing::Test {
 public:
  GuestBootTest()
      : cpu_(&engine_, 4),
        hv_(&engine_, Bytes::GiB(16)),
        switch_(&engine_),
        netback_(&engine_, &hv_, hv::DeviceType::kNet, &pages_, &switch_, &dev_costs_),
        sysctl_(&engine_, &hv_, &pages_, &dev_costs_),
        xendevd_(&dev_costs_) {
    netback_.set_udev_hotplug(&xendevd_);
  }

  sim::ExecCtx Dom0Ctx() { return sim::ExecCtx{&cpu_, 0, sim::kHostOwner}; }

  template <typename T>
  T RunCo(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }

  // Builds a domain with a noxs-device-page environment and boots it.
  std::unique_ptr<Guest> BootNoxsGuest(const GuestImage& image) {
    hv::DomainId domid = *RunCo(hv_.DomainCreate(Dom0Ctx()));
    (void)RunCo(hv_.VcpuInit(Dom0Ctx(), domid, {1}));
    (void)RunCo(hv_.PopulatePhysmap(Dom0Ctx(), domid, image.memory));
    if (image.wants_net) {
      auto info = RunCo(netback_.NoxsCreate(Dom0Ctx(), domid));
      LV_CHECK(info.ok());
      (void)RunCo(hv_.DevicePageWrite(Dom0Ctx(), hv::kDom0, domid, *info));
    }
    auto sysinfo = RunCo(sysctl_.Create(Dom0Ctx(), domid));
    LV_CHECK(sysinfo.ok());
    (void)RunCo(hv_.DevicePageWrite(Dom0Ctx(), hv::kDom0, domid, *sysinfo));

    BootEnv env;
    env.cpu = &cpu_;
    env.hv = &hv_;
    env.netback = &netback_;
    env.sysctl = &sysctl_;
    auto guest = std::make_unique<Guest>(&engine_, image, domid, env);
    hv_.FindDomain(domid)->set_start_fn(guest->MakeStartFn());
    (void)RunCo(hv_.DomainFinishBuild(Dom0Ctx(), domid));
    (void)RunCo(hv_.DomainUnpause(Dom0Ctx(), domid));
    sim::RunUntilCondition(engine_, [&] { return guest->booted(); },
                           Duration::Seconds(60));
    return guest;
  }

  sim::Engine engine_;
  sim::CpuScheduler cpu_;
  hv::Hypervisor hv_;
  xnet::Switch switch_;
  xdev::ControlPages pages_;
  xdev::Costs dev_costs_;
  xdev::BackendDriver netback_;
  xdev::SysctlBackend sysctl_;
  xdev::Xendevd xendevd_;
};

TEST_F(GuestBootTest, UnikernelBootsInMilliseconds) {
  TimePoint t0 = engine_.now();
  auto guest = BootNoxsGuest(DaytimeUnikernel());
  EXPECT_TRUE(guest->booted());
  Duration boot = guest->booted_at() - t0;
  EXPECT_GT(boot.ms(), 1.0);
  EXPECT_LT(boot.ms(), 10.0);
  EXPECT_TRUE(netback_.IsConnected(guest->domid()));
}

TEST_F(GuestBootTest, NoopGuestHasNoNetDevice) {
  auto guest = BootNoxsGuest(NoopUnikernel());
  EXPECT_TRUE(guest->booted());
  EXPECT_FALSE(netback_.HasDevice(guest->domid()));
}

TEST_F(GuestBootTest, TinyxBootSlowerThanUnikernel) {
  TimePoint t0 = engine_.now();
  auto uni = BootNoxsGuest(DaytimeUnikernel());
  Duration uni_boot = uni->booted_at() - t0;
  t0 = engine_.now();
  auto tinyx = BootNoxsGuest(TinyxNoop());
  Duration tinyx_boot = tinyx->booted_at() - t0;
  EXPECT_GT(tinyx_boot.ns(), uni_boot.ns() * 10);
  tinyx->Stop();
}

TEST_F(GuestBootTest, SchedulingDelayGrowsWithPeers) {
  GuestImage image = TinyxNoop();
  // First boot: no peers.
  TimePoint t0 = engine_.now();
  auto alone = BootNoxsGuest(image);
  Duration alone_boot = alone->booted_at() - t0;
  alone->Stop();

  // Now pretend 250 guests share the core (the Figure 11 regime).
  hv::DomainId domid = *RunCo(hv_.DomainCreate(Dom0Ctx()));
  (void)RunCo(hv_.VcpuInit(Dom0Ctx(), domid, {1}));
  BootEnv env;
  env.cpu = &cpu_;
  env.hv = &hv_;
  env.netback = nullptr;
  env.peers_on_core = [] { return int64_t{250}; };
  GuestImage no_net = image;
  no_net.wants_net = false;
  auto crowded = std::make_unique<Guest>(&engine_, no_net, domid, env);
  hv_.FindDomain(domid)->set_start_fn(crowded->MakeStartFn());
  (void)RunCo(hv_.DomainFinishBuild(Dom0Ctx(), domid));
  t0 = engine_.now();
  (void)RunCo(hv_.DomainUnpause(Dom0Ctx(), domid));
  sim::RunUntilCondition(engine_, [&] { return crowded->booted(); },
                         Duration::Seconds(60));
  Duration crowded_boot = crowded->booted_at() - t0;
  EXPECT_GT(crowded_boot.ns(), alone_boot.ns() * 3);
  crowded->Stop();
}

TEST_F(GuestBootTest, BackgroundTasksBurnCpu) {
  auto guest = BootNoxsGuest(TinyxNoop());
  Duration before = cpu_.ConsumedBy(guest->domid());
  engine_.RunFor(Duration::Seconds(10));
  Duration after = cpu_.ConsumedBy(guest->domid());
  EXPECT_GT((after - before).us(), 300.0);  // ~40us/s * 10s.
  guest->Stop();
  engine_.RunFor(Duration::Seconds(2));
  Duration idle = cpu_.ConsumedBy(guest->domid());
  engine_.RunFor(Duration::Seconds(5));
  EXPECT_EQ(cpu_.ConsumedBy(guest->domid()).ns(), idle.ns());  // Stopped.
}

TEST_F(GuestBootTest, UnikernelsHaveNoBackgroundLoad) {
  auto guest = BootNoxsGuest(DaytimeUnikernel());
  Duration booted_usage = cpu_.ConsumedBy(guest->domid());
  engine_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(cpu_.ConsumedBy(guest->domid()).ns(), booted_usage.ns());
}

TEST_F(GuestBootTest, SysctlSuspendViaGuestHandler) {
  auto guest = BootNoxsGuest(DaytimeUnikernel());
  lv::Status s = RunCo(
      sysctl_.RequestShutdown(Dom0Ctx(), guest->domid(), hv::ShutdownReason::kSuspend));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(hv_.FindDomain(guest->domid())->state(), hv::DomainState::kSuspended);
  EXPECT_FALSE(guest->running());
}

TEST_F(GuestBootTest, ComputeBurnsGuestCpu) {
  auto guest = BootNoxsGuest(MinipythonUnikernel());
  Duration before = cpu_.ConsumedBy(guest->domid());
  RunCo([](Guest* g) -> sim::Co<bool> {
    co_await g->Compute(Duration::Millis(800));
    co_return true;
  }(guest.get()));
  EXPECT_NEAR((cpu_.ConsumedBy(guest->domid()) - before).ms(), 800.0, 1.0);
}

TEST_F(GuestBootTest, PingResponderAnswersViaSwitch) {
  auto guest = BootNoxsGuest(DaytimeUnikernel());
  PingResponder responder(guest.get(), &netback_, &switch_);

  std::optional<TimePoint> reply_at;
  (void)switch_.AddPort("client", [&](const xnet::Packet& p) {
    if (p.is_reply) {
      reply_at = engine_.now();
    }
  });
  xnet::Packet ping;
  ping.kind = xnet::PacketKind::kPing;
  ping.src = "client";
  ping.dst = xdev::VifName(guest->domid(), 0);
  engine_.Spawn([](xnet::Switch& sw, sim::ExecCtx ctx, xnet::Packet p) -> sim::Co<void> {
    co_await sw.Forward(ctx, p);
  }(switch_, Dom0Ctx(), ping));
  sim::RunUntilCondition(engine_, [&] { return reply_at.has_value(); },
                         Duration::Seconds(5));
  EXPECT_TRUE(reply_at.has_value());
  EXPECT_EQ(responder.pings_answered(), 1);
}

TEST_F(GuestBootTest, TlsServerThroughputTracksImageCost) {
  auto tinyx = BootNoxsGuest(TinyxTls());
  TlsServer server(tinyx.get());
  TimePoint t0 = engine_.now();
  RunCo([](TlsServer* s) -> sim::Co<bool> {
    for (int i = 0; i < 10; ++i) {
      co_await s->HandleRequest();
    }
    co_return true;
  }(&server));
  Duration elapsed = engine_.now() - t0;
  EXPECT_NEAR(elapsed.ms(), 100.0, 5.0);  // 10 x 10ms handshakes.
  EXPECT_EQ(server.requests_served(), 10);
  tinyx->Stop();
}

}  // namespace
}  // namespace guests
