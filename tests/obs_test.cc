// Observability-plane tests: OpId chains stay causally linked across a
// crash-triggered Deploy re-place, the flight recorder's per-node rings
// overwrite oldest-first, and same-seed runs produce byte-identical dumps
// (the recorder is deterministic simulated-time state, not wall-clock).
#include <gtest/gtest.h>

#include <sstream>
#include <string_view>

#include "src/base/strings.h"
#include "src/cluster/cluster.h"
#include "src/obs/obs.h"
#include "src/sim/run.h"

namespace obs {
namespace {

using lv::Duration;

toolstack::VmConfig DaytimeConfig(const std::string& name) {
  toolstack::VmConfig config;
  config.name = name;
  config.image = guests::DaytimeUnikernel();
  return config;
}

cluster::ClusterSpec SmallSpec(int nodes) {
  cluster::ClusterSpec spec;
  spec.num_nodes = nodes;
  spec.node = lightvm::HostSpec::Xeon4Core();
  spec.mechanisms = lightvm::Mechanisms::LightVm();
  return spec;
}

void Prefill(cluster::Cluster& cl) {
  for (int n = 0; n < cl.num_nodes(); ++n) {
    cl.host(n).AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
    cl.host(n).PrefillShellPool();
  }
}

TEST(OpRef, RootsAndChildrenShareOneChain) {
  FlightRecorder::Get().Reset();
  OpRef root = NewOp();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.root, root.id);
  EXPECT_EQ(root.parent, 0);

  OpRef child = NewOp(root);
  EXPECT_NE(child.id, root.id);
  EXPECT_EQ(child.root, root.id);
  EXPECT_EQ(child.parent, root.id);

  OpRef grandchild = NewOp(child);
  EXPECT_EQ(grandchild.root, root.id);
  EXPECT_EQ(grandchild.parent, child.id);
}

TEST(FlightRecorderTest, RingOverwritesOldestFirst) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Reset();
  const int kTotal = FlightRecorder::kRingCapacity + 12;
  for (int i = 0; i < kTotal; ++i) {
    recorder.Record(0, {}, "test", "tick", true, i);
  }
  std::vector<FlightEvent> events = recorder.NodeEvents(0);
  ASSERT_EQ(events.size(), static_cast<size_t>(FlightRecorder::kRingCapacity));
  EXPECT_EQ(recorder.Dropped(0), 12);
  // Oldest surviving event is #12; newest is #kTotal-1; order is stable.
  EXPECT_EQ(events.front().arg, 12);
  EXPECT_EQ(events.back().arg, kTotal - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, events[i - 1].arg + 1);
  }
  // Other nodes are untouched.
  EXPECT_TRUE(recorder.NodeEvents(1).empty());
  EXPECT_EQ(recorder.Dropped(1), 0);
}

// The acceptance scenario for causal tracing: a Deploy whose first placement
// dies mid-create re-places on the survivor. Both node-level create jobs
// must be children of the SAME Deploy op — that shared ancestry is what
// makes the exported trace render the whole story as one connected flow.
TEST(FlightRecorderTest, CausalChainSurvivesCrashTriggeredReplace) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Reset();
  sim::Engine engine(1);
  cluster::Cluster cl(&engine, SmallSpec(2),
                      std::make_unique<cluster::LeastLoaded>());
  Prefill(cl);
  cl.StartHealthMonitor();

  // Crash node 0 (the tie-break pick) while its create job is in flight.
  engine.Schedule(Duration::Micros(200), [&] { cl.CrashNode(0); });
  auto h = sim::RunToCompletion(engine, cl.Deploy(DaytimeConfig("replaced"),
                                                  /*wait_boot=*/true));
  ASSERT_TRUE(h.ok()) << h.error().message;
  EXPECT_EQ(h->node, 1);

  // The cluster-layer "deploy" record on the first pick names the Deploy op.
  int64_t deploy_op = 0;
  for (const FlightEvent& ev : recorder.NodeEvents(0)) {
    if (std::string_view(ev.layer) == "cluster" &&
        std::string_view(ev.verb) == "deploy") {
      deploy_op = ev.op;
    }
  }
  ASSERT_NE(deploy_op, 0);

  // Each node ran one create job; both jobs are distinct ops minted under
  // the one Deploy.
  auto find_create = [&](int node) -> FlightEvent {
    for (const FlightEvent& ev : recorder.NodeEvents(node)) {
      if (std::string_view(ev.layer) == "node" &&
          std::string_view(ev.verb) == "create") {
        return ev;
      }
    }
    return FlightEvent{};
  };
  FlightEvent first = find_create(0);
  FlightEvent second = find_create(1);
  ASSERT_NE(first.op, 0);
  ASSERT_NE(second.op, 0);
  EXPECT_NE(first.op, second.op);
  EXPECT_EQ(first.parent, deploy_op);
  EXPECT_EQ(second.parent, deploy_op);

  // The crash itself and the re-place decision are on the record too.
  bool saw_crash = false;
  bool saw_replace = false;
  for (const FlightEvent& ev : recorder.NodeEvents(0)) {
    if (std::string_view(ev.layer) == "host" &&
        std::string_view(ev.verb) == "crash") {
      saw_crash = true;
    }
    if (std::string_view(ev.verb) == "deploy.replace") {
      saw_replace = true;
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_replace);
}

TEST(FlightRecorderTest, SameSeedDumpsAreByteIdentical) {
  auto run_once = [](std::string* dump) {
    FlightRecorder& recorder = FlightRecorder::Get();
    recorder.Reset();
    sim::Engine engine(7);
    cluster::Cluster cl(&engine, SmallSpec(2),
                        std::make_unique<cluster::LeastLoaded>());
    Prefill(cl);
    cl.StartHealthMonitor();
    engine.Schedule(Duration::Micros(200), [&] { cl.CrashNode(0); });
    std::vector<cluster::VmHandle> handles;
    for (int i = 0; i < 3; ++i) {
      auto h = sim::RunToCompletion(
          engine, cl.Deploy(DaytimeConfig(lv::StrFormat("vm%d", i)), true));
      ASSERT_TRUE(h.ok()) << h.error().message;
      handles.push_back(*h);
    }
    for (const cluster::VmHandle& h : handles) {
      ASSERT_TRUE(sim::RunToCompletion(engine, cl.Retire(h)).ok());
    }
    std::ostringstream out;
    recorder.WriteJson(out);
    *dump = out.str();
  };

  std::string dump1;
  std::string dump2;
  run_once(&dump1);
  run_once(&dump2);
  EXPECT_FALSE(dump1.empty());
  EXPECT_EQ(dump1, dump2);
}

// MaybeDump with no configured path must be a no-op (the always-on recorder
// may never create files unless a dump path was armed).
TEST(FlightRecorderTest, MaybeDumpWithoutPathIsANoOp) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Reset();
  recorder.set_dump_path("");
  recorder.Record(0, {}, "test", "tick", true);
  recorder.MaybeDump();  // must not crash or write anywhere
  EXPECT_EQ(recorder.Dropped(0), 0);
}

}  // namespace
}  // namespace obs
