// Unit tests for the pure XenStore data model: tree ops, transactions,
// watches, effort counters and the unique-name admission scan.
#include <gtest/gtest.h>

#include "src/base/strings.h"
#include "src/xenstore/store.h"

namespace xs {
namespace {

using lv::ErrorCode;

TEST(StoreTest, WriteCreatesIntermediateNodes) {
  Store store;
  EXPECT_TRUE(store.Write("/local/domain/1/name", "vm1", hv::kDom0).ok());
  EXPECT_TRUE(store.Exists("/local/domain/1"));
  EXPECT_TRUE(store.Exists("/local"));
  auto r = store.Read("/local/domain/1/name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "vm1");
}

TEST(StoreTest, ReadMissingPathFails) {
  Store store;
  EXPECT_EQ(store.Read("/nope").code(), ErrorCode::kNotFound);
}

TEST(StoreTest, PathsAreCanonicalized) {
  Store store;
  EXPECT_TRUE(store.Write("/a//b/", "v", hv::kDom0).ok());
  EXPECT_EQ(*store.Read("a/b"), "v");
  EXPECT_EQ(*store.Read("/a/b"), "v");
}

TEST(StoreTest, RmRemovesSubtree) {
  Store store;
  (void)store.Write("/a/b/c", "1", hv::kDom0);
  (void)store.Write("/a/b/d", "2", hv::kDom0);
  EXPECT_TRUE(store.Rm("/a/b").ok());
  EXPECT_FALSE(store.Exists("/a/b/c"));
  EXPECT_FALSE(store.Exists("/a/b"));
  EXPECT_TRUE(store.Exists("/a"));
  EXPECT_EQ(store.Rm("/a/b").code(), ErrorCode::kNotFound);
}

TEST(StoreTest, DirectoryListsChildrenSorted) {
  Store store;
  (void)store.Write("/dir/b", "", hv::kDom0);
  (void)store.Write("/dir/a", "", hv::kDom0);
  (void)store.Write("/dir/c/nested", "", hv::kDom0);
  auto r = store.Directory("/dir");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(store.last_effort().children_listed, 3);
}

TEST(StoreTest, OverwriteUpdatesValue) {
  Store store;
  (void)store.Write("/k", "v1", hv::kDom0);
  (void)store.Write("/k", "v2", hv::kDom0);
  EXPECT_EQ(*store.Read("/k"), "v2");
}

// --- Watches ----------------------------------------------------------------

TEST(StoreTest, WatchFiresOnExactPathAndDescendants) {
  Store store;
  store.AddWatch(/*client=*/1, "/local/domain/3", "tok");
  std::vector<WatchHit> hits;
  (void)store.Write("/local/domain/3", "x", hv::kDom0, kNoTxn, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].client, 1);
  EXPECT_EQ(hits[0].token, "tok");

  hits.clear();
  (void)store.Write("/local/domain/3/device/vif/0", "y", hv::kDom0, kNoTxn, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].fired_path, "local/domain/3/device/vif/0");
}

TEST(StoreTest, WatchDoesNotFireOnSiblingOrPrefixName) {
  Store store;
  store.AddWatch(1, "/local/domain/3", "tok");
  std::vector<WatchHit> hits;
  (void)store.Write("/local/domain/4/name", "other", hv::kDom0, kNoTxn, &hits);
  EXPECT_TRUE(hits.empty());
  // "/local/domain/33" shares the string prefix but is a different node.
  (void)store.Write("/local/domain/33", "x", hv::kDom0, kNoTxn, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(StoreTest, EveryMutationScansAllWatches) {
  Store store;
  for (int i = 0; i < 100; ++i) {
    store.AddWatch(i, lv::StrFormat("/w/%d", i), "t");
  }
  std::vector<WatchHit> hits;
  (void)store.Write("/unrelated", "x", hv::kDom0, kNoTxn, &hits);
  EXPECT_EQ(store.last_effort().watch_checks, 100);
  EXPECT_TRUE(hits.empty());
}

TEST(StoreTest, RemoveWatchStopsFiring) {
  Store store;
  store.AddWatch(1, "/a", "t1");
  store.AddWatch(1, "/a", "t2");
  store.RemoveWatch(1, "/a", "t1");
  std::vector<WatchHit> hits;
  (void)store.Write("/a/x", "v", hv::kDom0, kNoTxn, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].token, "t2");
  store.RemoveClientWatches(1);
  hits.clear();
  (void)store.Write("/a/y", "v", hv::kDom0, kNoTxn, &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(store.num_watches(), 0);
}

// --- Transactions -------------------------------------------------------------

TEST(StoreTest, TxnBuffersWritesUntilCommit) {
  Store store;
  TxnId txn = store.TxBegin();
  EXPECT_TRUE(store.Write("/t/a", "1", hv::kDom0, txn).ok());
  EXPECT_FALSE(store.Exists("/t/a"));
  std::vector<WatchHit> hits;
  EXPECT_TRUE(store.TxCommit(txn, /*abort=*/false, &hits).ok());
  EXPECT_EQ(*store.Read("/t/a"), "1");
}

TEST(StoreTest, TxnReadYourWrites) {
  Store store;
  TxnId txn = store.TxBegin();
  (void)store.Write("/t/a", "in-txn", hv::kDom0, txn);
  EXPECT_EQ(*store.Read("/t/a", txn), "in-txn");
}

TEST(StoreTest, TxnAbortDiscards) {
  Store store;
  TxnId txn = store.TxBegin();
  (void)store.Write("/t/a", "1", hv::kDom0, txn);
  std::vector<WatchHit> hits;
  EXPECT_TRUE(store.TxCommit(txn, /*abort=*/true, &hits).ok());
  EXPECT_FALSE(store.Exists("/t/a"));
  EXPECT_EQ(store.open_txns(), 0);
}

TEST(StoreTest, ConflictingWriteForcesRetry) {
  Store store;
  (void)store.Write("/shared", "0", hv::kDom0);
  TxnId txn = store.TxBegin();
  (void)store.Read("/shared", txn);
  // Another client writes the same path outside the transaction.
  (void)store.Write("/shared", "external", hv::kDom0);
  (void)store.Write("/shared", "mine", hv::kDom0, txn);
  std::vector<WatchHit> hits;
  lv::Status commit = store.TxCommit(txn, false, &hits);
  EXPECT_EQ(commit.code(), ErrorCode::kConflict);
  EXPECT_EQ(*store.Read("/shared"), "external");  // Buffered write discarded.
}

TEST(StoreTest, NonOverlappingTxnsBothCommit) {
  Store store;
  TxnId t1 = store.TxBegin();
  TxnId t2 = store.TxBegin();
  (void)store.Write("/t1/x", "a", hv::kDom0, t1);
  (void)store.Write("/t2/y", "b", hv::kDom0, t2);
  std::vector<WatchHit> hits;
  EXPECT_TRUE(store.TxCommit(t1, false, &hits).ok());
  EXPECT_TRUE(store.TxCommit(t2, false, &hits).ok());
  EXPECT_EQ(*store.Read("/t1/x"), "a");
  EXPECT_EQ(*store.Read("/t2/y"), "b");
}

TEST(StoreTest, TxnCommitFiresWatchesForBufferedWrites) {
  Store store;
  store.AddWatch(1, "/t", "tok");
  TxnId txn = store.TxBegin();
  (void)store.Write("/t/a", "1", hv::kDom0, txn);
  (void)store.Write("/t/b", "2", hv::kDom0, txn);
  std::vector<WatchHit> hits;
  EXPECT_TRUE(store.TxCommit(txn, false, &hits).ok());
  EXPECT_EQ(hits.size(), 2u);
}

TEST(StoreTest, CommitUnknownTxnFails) {
  Store store;
  std::vector<WatchHit> hits;
  EXPECT_EQ(store.TxCommit(999, false, &hits).code(), ErrorCode::kInvalidArgument);
}

// --- Unique names ----------------------------------------------------------

TEST(StoreTest, CheckUniqueNameScansAllDomains) {
  Store store;
  for (int i = 1; i <= 50; ++i) {
    (void)store.Write(lv::StrFormat("/local/domain/%d/name", i), lv::StrFormat("vm%d", i),
                      hv::kDom0);
  }
  EXPECT_TRUE(store.CheckUniqueName("fresh").ok());
  EXPECT_EQ(store.last_effort().names_compared, 50);
  EXPECT_EQ(store.CheckUniqueName("vm17").code(), ErrorCode::kAlreadyExists);
}

TEST(StoreTest, CheckUniqueNameEmptyStoreOk) {
  Store store;
  EXPECT_TRUE(store.CheckUniqueName("anything").ok());
}

TEST(StoreTest, EffortCountsNodesVisited) {
  Store store;
  (void)store.Write("/a/b/c/d", "v", hv::kDom0);
  EXPECT_EQ(store.last_effort().nodes_visited, 4);
  (void)store.Read("/a/b/c/d");
  EXPECT_EQ(store.last_effort().nodes_visited, 4);
  EXPECT_EQ(store.last_effort().value_bytes, 1);
}

TEST(StoreTest, GenerationAdvancesOnMutation) {
  Store store;
  uint64_t g0 = store.generation();
  (void)store.Write("/x", "1", hv::kDom0);
  EXPECT_GT(store.generation(), g0);
  uint64_t g1 = store.generation();
  (void)store.Read("/x");
  EXPECT_EQ(store.generation(), g1);  // Reads don't bump.
}

// --- Both policies: conflicts, self-fire, replay ordering, quotas ------------
// The behaviours below must hold identically under the legacy scan store and
// the indexed fast path (policy.h); the differential sweep in
// tests/property_test.cc covers random sequences, these pin the named cases.

class StorePolicyTest : public ::testing::TestWithParam<StorePolicy> {
 protected:
  Store store_{GetParam()};
};

TEST_P(StorePolicyTest, TxnConflictDetectedAndBufferDiscarded) {
  (void)store_.Write("/shared", "0", hv::kDom0);
  TxnId txn = store_.TxBegin();
  (void)store_.Read("/shared", txn);
  (void)store_.Write("/shared", "external", hv::kDom0);
  (void)store_.Write("/shared", "mine", hv::kDom0, txn);
  std::vector<WatchHit> hits;
  EXPECT_EQ(store_.TxCommit(txn, false, &hits).code(), ErrorCode::kConflict);
  EXPECT_EQ(*store_.Read("/shared"), "external");
  EXPECT_EQ(store_.open_txns(), 0);
}

TEST_P(StorePolicyTest, WatchSelfFiresOnRegistration) {
  WatchHit hit = store_.AddWatch(7, "/local/domain/9/device", "tok");
  EXPECT_EQ(hit.client, 7);
  EXPECT_EQ(hit.watch_path, "local/domain/9/device");
  EXPECT_EQ(hit.fired_path, "local/domain/9/device");
  EXPECT_EQ(hit.token, "tok");
  EXPECT_EQ(store_.num_watches(), 1);
}

TEST_P(StorePolicyTest, ReplayWatchesPreservesRegistrationOrder) {
  store_.AddWatch(1, "/a", "t1");
  store_.AddWatch(2, "/b", "t2");
  store_.AddWatch(3, "/a/x", "t3");
  store_.RemoveWatch(2, "/b", "t2");  // A gap must not reorder survivors.
  store_.AddWatch(4, "/c", "t4");
  std::vector<WatchHit> replay = store_.ReplayWatches();
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_EQ(replay[0].client, 1);
  EXPECT_EQ(replay[1].client, 3);
  EXPECT_EQ(replay[2].client, 4);
  EXPECT_EQ(replay[2].fired_path, "c");
}

TEST_P(StorePolicyTest, OverlappingWatchesFireInRegistrationOrder) {
  store_.AddWatch(2, "/local/domain/1", "outer");
  store_.AddWatch(1, "/local/domain/1/device", "inner");
  store_.AddWatch(3, "", "all");
  std::vector<WatchHit> hits;
  (void)store_.Write("/local/domain/1/device/vif/0", "x", hv::kDom0, kNoTxn, &hits);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].token, "outer");
  EXPECT_EQ(hits[1].token, "inner");
  EXPECT_EQ(hits[2].token, "all");
}

TEST_P(StorePolicyTest, TxnCommitFiresShadowedWritesInOrder) {
  store_.AddWatch(1, "/t", "tok");
  TxnId txn = store_.TxBegin();
  (void)store_.Write("/t/a", "1", hv::kDom0, txn);
  (void)store_.Write("/t/b", "2", hv::kDom0, txn);
  (void)store_.Write("/t/a", "3", hv::kDom0, txn);  // shadows the first write
  std::vector<WatchHit> hits;
  ASSERT_TRUE(store_.TxCommit(txn, false, &hits).ok());
  // Even when the indexed path batches the shadowed write, its watch hit and
  // generation bump survive: a, b, a — exactly the unbatched sequence.
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].fired_path, "t/a");
  EXPECT_EQ(hits[1].fired_path, "t/b");
  EXPECT_EQ(hits[2].fired_path, "t/a");
  EXPECT_EQ(*store_.Read("/t/a"), "3");
}

TEST_P(StorePolicyTest, NumNodesAndOwnerAccountingTrackTree) {
  EXPECT_EQ(store_.num_nodes(), 0);
  // Dom0 seeds the shared hierarchy (as the daemon does), so guest-owned
  // accounting below is exact.
  (void)store_.Write("/local/domain", "", hv::kDom0);
  EXPECT_EQ(store_.num_nodes(), 2);
  (void)store_.Write("/local/domain/5/data/x", "v", 5);
  EXPECT_EQ(store_.num_nodes(), 5);  // + 5, data, x
  EXPECT_EQ(store_.owner_nodes(5), 3);
  (void)store_.Write("/local/domain/5/data/y", "v", 5);
  EXPECT_EQ(store_.owner_nodes(5), 4);
  EXPECT_TRUE(store_.Rm("/local/domain/5").ok());
  EXPECT_EQ(store_.num_nodes(), 2);  // local, domain survive
  EXPECT_EQ(store_.owner_nodes(5), 0);
  EXPECT_EQ(store_.owner_nodes(hv::kDom0), 2);
}

TEST_P(StorePolicyTest, QuotaRejectsGuestCreationBeyondBudget) {
  store_.set_node_quota(4);
  // dom3's first write creates local, domain, 3, data, x — but only nodes
  // count against dom3 as owner; all five are created by dom3 here.
  lv::Status s = store_.Write("/local/domain/3/data/x", "v", 3);
  EXPECT_EQ(s.code(), ErrorCode::kQuotaExceeded);
  EXPECT_EQ(store_.num_nodes(), 0);  // Rejected before any node appeared.
  // Dom0 pre-creating the shared prefix leaves dom3 under budget.
  (void)store_.Write("/local/domain/3", "", hv::kDom0);
  EXPECT_TRUE(store_.Write("/local/domain/3/data/x", "v", 3).ok());
  EXPECT_EQ(store_.owner_nodes(3), 2);
  // Overwrites create nothing and are always admitted.
  EXPECT_TRUE(store_.Write("/local/domain/3/data/x", "v2", 3).ok());
  // Dom0 is exempt from quotas entirely.
  EXPECT_TRUE(store_.Write("/local/domain/0/a/b/c/d/e/f", "v", hv::kDom0).ok());
}

TEST_P(StorePolicyTest, QuotaPrecheckRejectsTxnBeforeApplyingAnything) {
  store_.set_node_quota(3);
  (void)store_.Write("/local/domain/4", "", hv::kDom0);
  TxnId txn = store_.TxBegin();
  (void)store_.Write("/local/domain/4/a", "1", 4, txn);
  (void)store_.Write("/local/domain/4/b", "2", 4, txn);
  (void)store_.Write("/local/domain/4/c/d", "3", 4, txn);  // 4th+5th node
  std::vector<WatchHit> hits;
  lv::Status commit = store_.TxCommit(txn, false, &hits);
  EXPECT_EQ(commit.code(), ErrorCode::kQuotaExceeded);
  // Nothing applied, no watch fired, txn discarded.
  EXPECT_FALSE(store_.Exists("/local/domain/4/a"));
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(store_.open_txns(), 0);
  EXPECT_EQ(store_.owner_nodes(4), 0);
}

INSTANTIATE_TEST_SUITE_P(Policies, StorePolicyTest,
                         ::testing::Values(StorePolicy::kLegacy, StorePolicy::kIndexed),
                         [](const ::testing::TestParamInfo<StorePolicy>& info) {
                           return StorePolicyName(info.param);
                         });

// --- Indexed fast path: the effort actually drops ----------------------------

TEST(StoreIndexedTest, UniqueNameIsOneProbe) {
  Store store(StorePolicy::kIndexed);
  for (int i = 1; i <= 50; ++i) {
    (void)store.Write(lv::StrFormat("/local/domain/%d/name", i), lv::StrFormat("vm%d", i),
                      hv::kDom0);
  }
  EXPECT_TRUE(store.CheckUniqueName("fresh").ok());
  EXPECT_EQ(store.last_effort().names_compared, 1);
  EXPECT_EQ(store.CheckUniqueName("vm17").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(store.last_effort().names_compared, 1);
  // Renames and removals keep the index honest.
  (void)store.Write("/local/domain/17/name", "renamed", hv::kDom0);
  EXPECT_TRUE(store.CheckUniqueName("vm17").ok());
  (void)store.Rm("/local/domain/23");
  EXPECT_TRUE(store.CheckUniqueName("vm23").ok());
}

TEST(StoreIndexedTest, WatchChecksAreDepthBoundedNotWatchBound) {
  Store store(StorePolicy::kIndexed);
  for (int i = 0; i < 100; ++i) {
    store.AddWatch(i, lv::StrFormat("/w/%d", i), "t");
  }
  std::vector<WatchHit> hits;
  (void)store.Write("/unrelated", "x", hv::kDom0, kNoTxn, &hits);
  // One bucket probe per ancestor prefix ("unrelated", "") — not 100 scans.
  EXPECT_EQ(store.last_effort().watch_checks, 2);
  EXPECT_TRUE(hits.empty());
}

TEST(StoreIndexedTest, ExistingPathLookupIsOneProbe) {
  Store store(StorePolicy::kIndexed);
  (void)store.Write("/a/b/c/d/e", "v", hv::kDom0);
  (void)store.Read("/a/b/c/d/e");
  EXPECT_EQ(store.last_effort().nodes_visited, 1);
}

}  // namespace
}  // namespace xs
