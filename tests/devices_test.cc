// Integration-style tests for the split-driver device layer: the XenStore
// connection path (Fig. 7a), the noxs path (Fig. 7b), hotplug runners and
// the sysctl power device.
#include <gtest/gtest.h>

#include <optional>

#include "src/devices/backend.h"
#include "src/devices/sysctl.h"
#include "src/net/switch.h"
#include "src/sim/engine.h"
#include "src/xenstore/daemon.h"

namespace xdev {
namespace {

using lv::Duration;
using lv::ErrorCode;
using lv::TimePoint;

class DevicesTest : public ::testing::Test {
 public:
  DevicesTest()
      : cpu_(&engine_, 4),
        hv_(&engine_, lv::Bytes::GiB(16)),
        switch_(&engine_),
        store_(&engine_),
        bash_(&engine_, &costs_),
        xendevd_(&costs_) {
    store_.Start(Dom0Ctx());
    toolstack_client_ = std::make_unique<xs::XsClient>(&engine_, &store_, hv::kDom0);
  }

  void TearDown() override {
    for (auto& be : backends_) {
      be->StopXsWatcher();
    }
    toolstack_client_.reset();
    store_.Stop();
    engine_.Run();
  }

  BackendDriver* MakeBackend(hv::DeviceType type) {
    backends_.push_back(std::make_unique<BackendDriver>(
        &engine_, &hv_, type, &pages_, type == hv::DeviceType::kNet ? &switch_ : nullptr,
        &costs_));
    return backends_.back().get();
  }

  sim::ExecCtx Dom0Ctx() { return sim::ExecCtx{&cpu_, 0, sim::kHostOwner}; }
  sim::ExecCtx GuestCtx(hv::DomainId id) {
    return sim::ExecCtx{&cpu_, 1 + static_cast<int>(id % 3), id};
  }

  template <typename T>
  T RunCo(sim::Co<T> co) {
    std::optional<T> out;
    engine_.Spawn([](sim::Co<T> c, std::optional<T>& o) -> sim::Co<void> {
      o = co_await std::move(c);
    }(std::move(co), out));
    engine_.Run();
    LV_CHECK(out.has_value());
    return std::move(*out);
  }

  sim::Engine engine_;
  sim::CpuScheduler cpu_;
  hv::Hypervisor hv_;
  xnet::Switch switch_;
  xs::Daemon store_;
  ControlPages pages_;
  Costs costs_;
  BashHotplug bash_;
  Xendevd xendevd_;
  std::unique_ptr<xs::XsClient> toolstack_client_;
  std::vector<std::unique_ptr<BackendDriver>> backends_;
};

TEST_F(DevicesTest, XenstorePathFullHandshake) {
  BackendDriver* netback = MakeBackend(hv::DeviceType::kNet);
  netback->StartXsWatcher(&store_, Dom0Ctx());

  hv::DomainId domid = 7;
  // Toolstack half (xl: hotplug script runs inline).
  lv::Status created =
      RunCo(netback->XsToolstackCreate(Dom0Ctx(), toolstack_client_.get(), domid, &bash_));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(netback->HasDevice(domid));
  EXPECT_FALSE(netback->IsConnected(domid));
  EXPECT_TRUE(switch_.HasPort("vif7.0"));  // Hotplug ran inline.

  // Guest half.
  xs::XsClient guest_client(&engine_, &store_, domid);
  lv::Status connected =
      RunCo(netback->XsFrontendConnect(GuestCtx(domid), &guest_client, domid));
  ASSERT_TRUE(connected.ok());
  engine_.Run();  // Let the backend watch fire and complete the handshake.
  EXPECT_TRUE(netback->IsConnected(domid));

  // The store now holds the full device tree.
  EXPECT_TRUE(store_.store().Exists("/local/domain/0/backend/vif/7/0/event-channel"));
  EXPECT_TRUE(store_.store().Exists("/local/domain/7/device/vif/0/backend"));
}

TEST_F(DevicesTest, XenstorePathDestroyRemovesEverything) {
  BackendDriver* netback = MakeBackend(hv::DeviceType::kNet);
  netback->StartXsWatcher(&store_, Dom0Ctx());
  hv::DomainId domid = 9;
  ASSERT_TRUE(
      RunCo(netback->XsToolstackCreate(Dom0Ctx(), toolstack_client_.get(), domid, &bash_))
          .ok());
  xs::XsClient guest_client(&engine_, &store_, domid);
  ASSERT_TRUE(RunCo(netback->XsFrontendConnect(GuestCtx(domid), &guest_client, domid)).ok());
  engine_.Run();
  int64_t channels_before = hv_.event_channels().open_channels();

  ASSERT_TRUE(
      RunCo(netback->XsToolstackDestroy(Dom0Ctx(), toolstack_client_.get(), domid, &bash_))
          .ok());
  EXPECT_FALSE(netback->HasDevice(domid));
  EXPECT_FALSE(switch_.HasPort("vif9.0"));
  EXPECT_FALSE(store_.store().Exists("/local/domain/0/backend/vif/9/0"));
  EXPECT_FALSE(store_.store().Exists("/local/domain/9/device/vif/0"));
  EXPECT_LT(hv_.event_channels().open_channels(), channels_before);
}

TEST_F(DevicesTest, NoxsPathFullHandshake) {
  BackendDriver* netback = MakeBackend(hv::DeviceType::kNet);
  netback->set_udev_hotplug(&xendevd_);
  hv::DomainId domid = 11;

  auto info = RunCo(netback->NoxsCreate(Dom0Ctx(), domid));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, hv::DeviceType::kNet);
  EXPECT_NE(info->event_channel, hv::kInvalidPort);
  EXPECT_NE(info->grant_ref, hv::kInvalidGrant);
  engine_.Run();  // xendevd udev handling.
  EXPECT_TRUE(switch_.HasPort("vif11.0"));

  ASSERT_TRUE(RunCo(netback->NoxsFrontendConnect(GuestCtx(domid), domid, *info)).ok());
  engine_.Run();
  EXPECT_TRUE(netback->IsConnected(domid));

  // noxs never touched the store.
  EXPECT_FALSE(store_.store().Exists("/local/domain/0/backend/vif/11"));
}

TEST_F(DevicesTest, NoxsPathMuchCheaperThanXenstorePath) {
  BackendDriver* xs_back = MakeBackend(hv::DeviceType::kNet);
  xs_back->StartXsWatcher(&store_, Dom0Ctx());
  TimePoint t0 = engine_.now();
  ASSERT_TRUE(
      RunCo(xs_back->XsToolstackCreate(Dom0Ctx(), toolstack_client_.get(), 21, &bash_)).ok());
  Duration xs_path = engine_.now() - t0;

  BackendDriver* noxs_back = MakeBackend(hv::DeviceType::kNet);
  noxs_back->set_udev_hotplug(&xendevd_);
  t0 = engine_.now();
  ASSERT_TRUE(RunCo(noxs_back->NoxsCreate(Dom0Ctx(), 22)).ok());
  Duration noxs_path = engine_.now() - t0;

  // The XS path pays the store protocol + bash hotplug; noxs pays an ioctl.
  EXPECT_GT(xs_path.ns(), noxs_path.ns() * 20);
}

TEST_F(DevicesTest, NoxsDestroyReleasesResources) {
  BackendDriver* netback = MakeBackend(hv::DeviceType::kNet);
  netback->set_udev_hotplug(&xendevd_);
  hv::DomainId domid = 13;
  auto info = RunCo(netback->NoxsCreate(Dom0Ctx(), domid));
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunCo(netback->NoxsFrontendConnect(GuestCtx(domid), domid, *info)).ok());
  engine_.Run();
  ASSERT_TRUE(switch_.HasPort("vif13.0"));

  ASSERT_TRUE(RunCo(netback->NoxsDestroy(Dom0Ctx(), domid)).ok());
  EXPECT_FALSE(netback->HasDevice(domid));
  EXPECT_FALSE(switch_.HasPort("vif13.0"));
  EXPECT_FALSE(hv_.grant_table().IsActive(info->grant_ref));
  EXPECT_FALSE(hv_.event_channels().IsOpen(info->event_channel));
  EXPECT_EQ(pages_.FindDevice(info->grant_ref), nullptr);
}

TEST_F(DevicesTest, BlockBackendUsesBlockSetupCosts) {
  BackendDriver* blkback = MakeBackend(hv::DeviceType::kBlock);
  blkback->set_udev_hotplug(&xendevd_);
  auto info = RunCo(blkback->NoxsCreate(Dom0Ctx(), 31));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, hv::DeviceType::kBlock);
  engine_.Run();
  // No switch port for block devices.
  EXPECT_EQ(switch_.num_ports(), 0);
}

TEST_F(DevicesTest, HotplugBashMuchSlowerThanXendevd) {
  TimePoint t0 = engine_.now();
  RunCo([](DevicesTest* t) -> sim::Co<bool> {
    co_await t->bash_.Setup(t->Dom0Ctx(), hv::DeviceType::kNet);
    co_return true;
  }(this));
  Duration bash_time = engine_.now() - t0;

  t0 = engine_.now();
  RunCo([](DevicesTest* t) -> sim::Co<bool> {
    co_await t->xendevd_.Setup(t->Dom0Ctx(), hv::DeviceType::kNet);
    co_return true;
  }(this));
  Duration xendevd_time = engine_.now() - t0;

  EXPECT_GT(bash_time.ms(), 10.0);   // "tens of milliseconds"
  EXPECT_LT(xendevd_time.ms(), 2.0);  // binary daemon, no fork
  EXPECT_GT(bash_time.ns(), xendevd_time.ns() * 10);
}

TEST_F(DevicesTest, PacketsFlowToGuestRxAfterConnect) {
  BackendDriver* netback = MakeBackend(hv::DeviceType::kNet);
  netback->set_udev_hotplug(&xendevd_);
  hv::DomainId domid = 17;
  auto info = RunCo(netback->NoxsCreate(Dom0Ctx(), domid));
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunCo(netback->NoxsFrontendConnect(GuestCtx(domid), domid, *info)).ok());
  engine_.Run();

  int received = 0;
  netback->SetGuestRx(domid, [&](const xnet::Packet&) { ++received; });

  xnet::Packet p;
  p.dst = "vif17.0";
  RunCo([](DevicesTest* t, xnet::Packet p) -> sim::Co<bool> {
    co_await t->switch_.Forward(t->Dom0Ctx(), p);
    co_return true;
  }(this, p));
  engine_.Run();
  EXPECT_EQ(received, 1);
}

// --- sysctl ------------------------------------------------------------------

TEST_F(DevicesTest, SysctlSuspendHandshake) {
  SysctlBackend sysctl(&engine_, &hv_, &pages_, &costs_);
  hv::DomainId domid = *RunCo(hv_.DomainCreate(Dom0Ctx()));
  ASSERT_TRUE(RunCo(hv_.DomainFinishBuild(Dom0Ctx(), domid)).ok());
  ASSERT_TRUE(RunCo(hv_.DomainUnpause(Dom0Ctx(), domid)).ok());

  auto info = RunCo(sysctl.Create(Dom0Ctx(), domid));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, hv::DeviceType::kSysctl);

  // Guest connects its front-end; on suspend request it saves state, tells
  // the hypervisor, and acks.
  bool guest_saved_state = false;
  ASSERT_TRUE(RunCo(sysctl.FrontendConnect(
                        GuestCtx(domid), domid, *info,
                        [&, domid](hv::ShutdownReason reason) -> sim::Co<void> {
                          guest_saved_state = true;
                          sim::ExecCtx gctx = GuestCtx(domid);
                          co_await gctx.Work(Duration::Micros(200));
                          (void)co_await hv_.DomainShutdown(gctx, domid, reason);
                          co_await sysctl.Ack(gctx, domid);
                        }))
                  .ok());

  lv::Status suspended =
      RunCo(sysctl.RequestShutdown(Dom0Ctx(), domid, hv::ShutdownReason::kSuspend));
  ASSERT_TRUE(suspended.ok());
  EXPECT_TRUE(guest_saved_state);
  EXPECT_EQ(hv_.FindDomain(domid)->state(), hv::DomainState::kSuspended);
}

TEST_F(DevicesTest, SysctlRequestWithoutDeviceFails) {
  SysctlBackend sysctl(&engine_, &hv_, &pages_, &costs_);
  EXPECT_EQ(RunCo(sysctl.RequestShutdown(Dom0Ctx(), 99, hv::ShutdownReason::kSuspend)).code(),
            ErrorCode::kNotFound);
}

TEST_F(DevicesTest, SysctlDestroyCleansUp) {
  SysctlBackend sysctl(&engine_, &hv_, &pages_, &costs_);
  auto info = RunCo(sysctl.Create(Dom0Ctx(), 41));
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(RunCo(sysctl.Destroy(Dom0Ctx(), 41)).ok());
  EXPECT_FALSE(sysctl.HasDevice(41));
  EXPECT_FALSE(hv_.grant_table().IsActive(info->grant_ref));
}

}  // namespace
}  // namespace xdev
