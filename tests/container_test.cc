// Tests for the Docker-like container runtime and the fork/exec baseline.
#include <gtest/gtest.h>

#include "src/base/stats.h"
#include "src/container/container.h"
#include "src/sim/run.h"

namespace container {
namespace {

using lv::Bytes;
using lv::Samples;
using lv::Duration;
using lv::TimePoint;

class ContainerTest : public ::testing::Test {
 public:
  ContainerTest()
      : cpu_(&engine_, 4), memory_(Bytes::GiB(128)), docker_(&engine_, &memory_) {}

  sim::ExecCtx Ctx() { return sim::ExecCtx{&cpu_, 0, sim::kHostOwner}; }

  template <typename T>
  T Run(sim::Co<T> co) {
    return sim::RunToCompletion(engine_, std::move(co));
  }

  sim::Engine engine_;
  sim::CpuScheduler cpu_;
  hv::MemoryPool memory_;
  DockerRuntime docker_;
};

TEST_F(ContainerTest, RunStartsContainerInExpectedTime) {
  TimePoint t0 = engine_.now();
  auto id = Run(docker_.Run(Ctx(), MicropythonContainer()));
  ASSERT_TRUE(id.ok());
  Duration start = engine_.now() - t0;
  // "Docker containers start in around 200ms" (§4.2) — the first one also
  // pays an arena growth.
  EXPECT_GT(start.ms(), 100.0);
  EXPECT_LT(start.ms(), 1500.0);
  EXPECT_EQ(docker_.count(), 1);
}

TEST_F(ContainerTest, StartTimeGrowsWithContainerCount) {
  Duration early;
  Duration late;
  for (int i = 0; i < 300; ++i) {
    TimePoint t0 = engine_.now();
    ASSERT_TRUE(Run(docker_.Run(Ctx(), MinimalContainer())).ok());
    Duration d = engine_.now() - t0;
    if (i == 5) {
      early = d;
    }
    if (i == 299 && docker_.stats().arena_growths == 0) {
      late = d;
    }
    late = d;
  }
  EXPECT_GT(late.ns(), early.ns());
}

TEST_F(ContainerTest, ArenaGrowthCausesSpikesAndMemoryJumps) {
  Costs costs;
  costs.initial_arena_containers = 4;  // Exercise growth quickly.
  DockerRuntime docker(&engine_, &memory_, costs);
  Bytes mem_before = docker.MemoryUsed();
  Samples starts;
  for (int i = 0; i < 40; ++i) {
    TimePoint t0 = engine_.now();
    ASSERT_TRUE(Run(docker.Run(Ctx(), MinimalContainer())).ok());
    starts.AddDuration(engine_.now() - t0);
  }
  // The initial arena (4 containers) is pre-reserved; growth at 5, 9, 17, 33.
  EXPECT_EQ(docker.stats().arena_growths, 4);
  // Spikes: the max start is much larger than the median.
  EXPECT_GT(starts.max(), starts.Median() * 2);
  EXPECT_GT((docker.MemoryUsed() - mem_before).mib(), 100.0);
}

TEST_F(ContainerTest, OutOfMemoryStopsNewContainers) {
  hv::MemoryPool small(Bytes::MiB(256));
  Costs costs;
  costs.daemon_arena_unit = Bytes::MiB(1);
  costs.initial_arena_containers = 8;
  DockerRuntime docker(&engine_, &small, costs);
  int started = 0;
  for (int i = 0; i < 100; ++i) {
    auto id = Run(docker.Run(Ctx(), MinimalContainer()));
    if (!id.ok()) {
      EXPECT_EQ(id.code(), lv::ErrorCode::kOutOfMemory);
      break;
    }
    ++started;
  }
  EXPECT_GT(started, 0);
  EXPECT_LT(started, 100);
  EXPECT_GT(docker.stats().oom_failures, 0);
}

TEST_F(ContainerTest, StopReleasesMemory) {
  auto id = Run(docker_.Run(Ctx(), MicropythonContainer()));
  ASSERT_TRUE(id.ok());
  Bytes used = docker_.MemoryUsed();
  ASSERT_TRUE(Run(docker_.Stop(Ctx(), *id)).ok());
  EXPECT_LT(docker_.MemoryUsed().count(), used.count());
  EXPECT_EQ(docker_.count(), 0);
  EXPECT_EQ(Run(docker_.Stop(Ctx(), *id)).code(), lv::ErrorCode::kNotFound);
}

TEST_F(ContainerTest, MemoryPerContainerMatchesPaper) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Run(docker_.Run(Ctx(), MicropythonContainer())).ok());
  }
  // ~5 MB per container + daemon arena; "5GB for Docker" at 1000 containers.
  Bytes used = docker_.MemoryUsed();
  EXPECT_GT(used.mib(), 450.0);
  EXPECT_LT(used.gib(), 4.0);
}

TEST_F(ContainerTest, ForkExecLatencyDistribution) {
  ProcessRuntime procs(&engine_, &memory_);
  Samples lat;
  for (int i = 0; i < 2000; ++i) {
    TimePoint t0 = engine_.now();
    ASSERT_TRUE(Run(procs.ForkExec(Ctx())).ok());
    lat.AddDuration(engine_.now() - t0);
  }
  // "3.5ms on average (9ms at the 90% percentile)".
  EXPECT_NEAR(lat.mean(), 3.9, 1.2);
  EXPECT_NEAR(lat.Quantile(0.9), 8.5, 2.5);
  EXPECT_EQ(procs.count(), 2000);
}

TEST_F(ContainerTest, ForkExecIndependentOfProcessCount) {
  ProcessRuntime procs(&engine_, &memory_);
  Samples first;
  Samples last;
  for (int i = 0; i < 3000; ++i) {
    TimePoint t0 = engine_.now();
    ASSERT_TRUE(Run(procs.ForkExec(Ctx())).ok());
    Duration d = engine_.now() - t0;
    if (i < 300) {
      first.AddDuration(d);
    }
    if (i >= 2700) {
      last.AddDuration(d);
    }
  }
  EXPECT_NEAR(first.mean(), last.mean(), first.mean() * 0.35);
}

TEST_F(ContainerTest, ProcessKillReleasesMemory) {
  ProcessRuntime procs(&engine_, &memory_);
  auto pid = Run(procs.ForkExec(Ctx()));
  ASSERT_TRUE(pid.ok());
  EXPECT_GT(procs.MemoryUsed().count(), 0);
  ASSERT_TRUE(Run(procs.Kill(*pid)).ok());
  EXPECT_EQ(procs.MemoryUsed().count(), 0);
}

}  // namespace
}  // namespace container
