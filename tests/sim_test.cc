// Unit tests for the DES engine, coroutine tasks, sync primitives and the
// processor-sharing CPU scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace sim {
namespace {

using lv::Duration;
using lv::TimePoint;

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.Schedule(Duration::Millis(30), [&] { order.push_back(3); });
  engine.Schedule(Duration::Millis(10), [&] { order.push_back(1); });
  engine.Schedule(Duration::Millis(20), [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now().ms(), 30.0);
}

TEST(EngineTest, SameTimeEventsRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.Schedule(Duration::Millis(1), [&order, i] { order.push_back(i); });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, CancelledEventDoesNotRun) {
  Engine engine;
  bool ran = false;
  EventHandle h = engine.Schedule(Duration::Millis(5), [&] { ran = true; });
  h.Cancel();
  engine.Run();
  EXPECT_FALSE(ran);
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine engine;
  int count = 0;
  engine.Schedule(Duration::Millis(5), [&] { ++count; });
  engine.Schedule(Duration::Millis(15), [&] { ++count; });
  engine.RunUntil(TimePoint() + Duration::Millis(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(engine.now().ms(), 10.0);
  engine.Run();
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, NestedScheduling) {
  Engine engine;
  std::vector<double> times;
  engine.Schedule(Duration::Millis(1), [&] {
    times.push_back(engine.now().ms());
    engine.Schedule(Duration::Millis(2), [&] { times.push_back(engine.now().ms()); });
  });
  engine.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

Co<int> Add(Engine& engine, int a, int b) {
  co_await engine.Sleep(Duration::Millis(1));
  co_return a + b;
}

Co<int> Chain(Engine& engine) {
  int x = co_await Add(engine, 1, 2);
  int y = co_await Add(engine, x, 10);
  co_return y;
}

TEST(CoTest, NestedAwaitsPropagateValues) {
  Engine engine;
  int result = 0;
  engine.Spawn([](Engine& e, int& out) -> Co<void> {
    out = co_await Chain(e);
  }(engine, result));
  engine.Run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(engine.now().ms(), 2.0);
}

TEST(CoTest, SpawnRunsUntilFirstSuspension) {
  Engine engine;
  bool before = false;
  bool after = false;
  engine.Spawn([](Engine& e, bool& b, bool& a) -> Co<void> {
    b = true;
    co_await e.Sleep(Duration::Millis(1));
    a = true;
  }(engine, before, after));
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
  engine.Run();
  EXPECT_TRUE(after);
}

TEST(CoTest, ExceptionPropagatesToAwaiter) {
  Engine engine;
  bool caught = false;
  engine.Spawn([](Engine& e, bool& c) -> Co<void> {
    auto thrower = [](Engine& en) -> Co<int> {
      co_await en.Sleep(Duration::Millis(1));
      throw std::runtime_error("boom");
    };
    try {
      co_await thrower(e);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(engine, caught));
  engine.Run();
  EXPECT_TRUE(caught);
}

TEST(CoTest, ManyConcurrentTasks) {
  Engine engine;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    engine.Spawn([](Engine& e, int& d, int i) -> Co<void> {
      co_await e.Sleep(Duration::Micros(i));
      ++d;
    }(engine, done, i));
  }
  engine.Run();
  EXPECT_EQ(done, 1000);
}

TEST(OneShotEventTest, WaitersResumeOnTrigger) {
  Engine engine;
  OneShotEvent ev(&engine);
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn([](OneShotEvent& e, int& r) -> Co<void> {
      co_await e.Wait();
      ++r;
    }(ev, resumed));
  }
  engine.Run();
  EXPECT_EQ(resumed, 0);
  ev.Trigger();
  engine.Run();
  EXPECT_EQ(resumed, 3);
}

TEST(OneShotEventTest, WaitAfterTriggerIsImmediate) {
  Engine engine;
  OneShotEvent ev(&engine);
  ev.Trigger();
  bool done = false;
  engine.Spawn([](OneShotEvent& e, bool& d) -> Co<void> {
    co_await e.Wait();
    d = true;
  }(ev, done));
  EXPECT_TRUE(done);  // No suspension needed.
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine engine;
  Semaphore sem(&engine, 2);
  int active = 0;
  int max_active = 0;
  for (int i = 0; i < 6; ++i) {
    engine.Spawn([](Engine& e, Semaphore& s, int& act, int& mx) -> Co<void> {
      co_await s.Acquire();
      ++act;
      mx = std::max(mx, act);
      co_await e.Sleep(Duration::Millis(10));
      --act;
      s.Release();
    }(engine, sem, active, max_active));
  }
  engine.Run();
  EXPECT_EQ(active, 0);
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(engine.now().ms(), 30.0);  // 6 tasks, 2 at a time, 10ms each.
}

TEST(SemaphoreTest, TryAcquire) {
  Engine engine;
  Semaphore sem(&engine, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(ChannelTest, SendThenRecv) {
  Engine engine;
  Channel<int> ch(&engine);
  ch.Send(1);
  ch.Send(2);
  std::vector<int> got;
  engine.Spawn([](Channel<int>& c, std::vector<int>& g) -> Co<void> {
    g.push_back(co_await c.Recv());
    g.push_back(co_await c.Recv());
  }(ch, got));
  engine.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, RecvBlocksUntilSend) {
  Engine engine;
  Channel<int> ch(&engine);
  int got = 0;
  engine.Spawn([](Channel<int>& c, int& g) -> Co<void> { g = co_await c.Recv(); }(ch, got));
  engine.Run();
  EXPECT_EQ(got, 0);
  ch.Send(7);
  engine.Run();
  EXPECT_EQ(got, 7);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Engine engine;
  Channel<int> ch(&engine);
  int sum = 0;
  engine.Spawn([](Channel<int>& c, int& s) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      s += co_await c.Recv();
    }
  }(ch, sum));
  for (int i = 1; i <= 10; ++i) {
    engine.Schedule(Duration::Millis(i), [&ch, i] { ch.Send(i); });
  }
  engine.Run();
  EXPECT_EQ(sum, 55);
}

TEST(SharedFutureTest, MultipleGetters) {
  Engine engine;
  SharedFuture<int> fut(&engine);
  int sum = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn([](SharedFuture<int>& f, int& s) -> Co<void> {
      s += co_await f.Get();
    }(fut, sum));
  }
  engine.Run();
  EXPECT_EQ(sum, 0);
  fut.Set(5);
  engine.Run();
  EXPECT_EQ(sum, 15);
  EXPECT_TRUE(fut.has_value());
}

// --- CPU scheduler -------------------------------------------------------

Co<void> Burn(Engine& engine, CpuScheduler& cpu, int core, Duration work, TimePoint* done,
              CpuOwner owner = kHostOwner) {
  co_await cpu.Run(core, work, owner);
  *done = engine.now();
}

TEST(CpuTest, SingleJobTakesItsWork) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint done;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &done));
  engine.Run();
  EXPECT_EQ(done.ms(), 10.0);
}

TEST(CpuTest, TwoEqualJobsShareTheCore) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &a));
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &b));
  engine.Run();
  // Processor sharing: both finish at 20ms.
  EXPECT_NEAR(a.ms(), 20.0, 1e-6);
  EXPECT_NEAR(b.ms(), 20.0, 1e-6);
}

TEST(CpuTest, ShortJobDelaysLongJobByItsWork) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(100), &a));
  engine.Schedule(Duration::Millis(10), [&] {
    engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(5), &b));
  });
  engine.Run();
  // Short job arrives at 10ms with long job at 90ms remaining; it runs at
  // rate 1/2 so completes at 20ms; long job finishes at 105ms total.
  EXPECT_NEAR(b.ms(), 20.0, 1e-6);
  EXPECT_NEAR(a.ms(), 105.0, 1e-6);
}

TEST(CpuTest, CoresAreIndependent) {
  Engine engine;
  CpuScheduler cpu(&engine, 2);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &a));
  engine.Spawn(Burn(engine, cpu, 1, Duration::Millis(10), &b));
  engine.Run();
  EXPECT_NEAR(a.ms(), 10.0, 1e-6);
  EXPECT_NEAR(b.ms(), 10.0, 1e-6);
}

TEST(CpuTest, ZeroWorkCompletesInline) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  bool done = false;
  engine.Spawn([](CpuScheduler& c, bool& d) -> Co<void> {
    co_await c.Run(0, Duration());
    d = true;
  }(cpu, done));
  EXPECT_TRUE(done);
}

TEST(CpuTest, PerOwnerAccounting) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &a, /*owner=*/1));
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(30), &b, /*owner=*/2));
  engine.Run();
  EXPECT_NEAR(cpu.ConsumedBy(1).ms(), 10.0, 0.01);
  EXPECT_NEAR(cpu.ConsumedBy(2).ms(), 30.0, 0.01);
  EXPECT_NEAR(cpu.BusyTime(0).ms(), 40.0, 0.01);
}

TEST(CpuTest, WindowUtilization) {
  Engine engine;
  CpuScheduler cpu(&engine, 2);
  TimePoint done;
  cpu.StartWindow();
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &done));
  engine.RunUntil(TimePoint() + Duration::Millis(20));
  // One of two cores busy for 10 of 20 ms -> 25% machine-wide.
  EXPECT_NEAR(cpu.WindowUtilization(), 0.25, 0.001);
}

TEST(CpuTest, ManyJobsFairness) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  std::vector<TimePoint> done(10);
  for (int i = 0; i < 10; ++i) {
    engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(1), &done[static_cast<size_t>(i)]));
  }
  engine.Run();
  for (const TimePoint& t : done) {
    EXPECT_NEAR(t.ms(), 10.0, 1e-6);  // All equal jobs end together under PS.
  }
}

TEST(CorePlacerTest, RoundRobinGuestCores) {
  CorePlacer placer(4, 1);
  EXPECT_EQ(placer.NextGuestCore(), 1);
  EXPECT_EQ(placer.NextGuestCore(), 2);
  EXPECT_EQ(placer.NextGuestCore(), 3);
  EXPECT_EQ(placer.NextGuestCore(), 1);
  EXPECT_EQ(placer.num_guest_cores(), 3);
  EXPECT_EQ(placer.num_dom0_cores(), 1);
  EXPECT_EQ(placer.NextDom0Core(), 0);
  EXPECT_EQ(placer.NextDom0Core(), 0);
}

TEST(CorePlacerTest, MultipleDom0Cores) {
  CorePlacer placer(64, 4);
  EXPECT_EQ(placer.NextDom0Core(), 0);
  EXPECT_EQ(placer.NextDom0Core(), 1);
  EXPECT_EQ(placer.NextDom0Core(), 2);
  EXPECT_EQ(placer.NextDom0Core(), 3);
  EXPECT_EQ(placer.NextDom0Core(), 0);
  EXPECT_EQ(placer.num_guest_cores(), 60);
}

}  // namespace
}  // namespace sim
