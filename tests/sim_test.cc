// Unit tests for the DES engine, coroutine tasks, sync primitives and the
// processor-sharing CPU scheduler.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"
#include "src/sim/shard.h"
#include "src/sim/spsc.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace sim {
namespace {

using lv::Duration;
using lv::TimePoint;

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.Schedule(Duration::Millis(30), [&] { order.push_back(3); });
  engine.Schedule(Duration::Millis(10), [&] { order.push_back(1); });
  engine.Schedule(Duration::Millis(20), [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now().ms(), 30.0);
}

TEST(EngineTest, SameTimeEventsRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.Schedule(Duration::Millis(1), [&order, i] { order.push_back(i); });
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, CancelledEventDoesNotRun) {
  Engine engine;
  bool ran = false;
  EventHandle h = engine.Schedule(Duration::Millis(5), [&] { ran = true; });
  h.Cancel();
  engine.Run();
  EXPECT_FALSE(ran);
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine engine;
  int count = 0;
  engine.Schedule(Duration::Millis(5), [&] { ++count; });
  engine.Schedule(Duration::Millis(15), [&] { ++count; });
  engine.RunUntil(TimePoint() + Duration::Millis(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(engine.now().ms(), 10.0);
  engine.Run();
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, NestedScheduling) {
  Engine engine;
  std::vector<double> times;
  engine.Schedule(Duration::Millis(1), [&] {
    times.push_back(engine.now().ms());
    engine.Schedule(Duration::Millis(2), [&] { times.push_back(engine.now().ms()); });
  });
  engine.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

Co<int> Add(Engine& engine, int a, int b) {
  co_await engine.Sleep(Duration::Millis(1));
  co_return a + b;
}

Co<int> Chain(Engine& engine) {
  int x = co_await Add(engine, 1, 2);
  int y = co_await Add(engine, x, 10);
  co_return y;
}

TEST(CoTest, NestedAwaitsPropagateValues) {
  Engine engine;
  int result = 0;
  engine.Spawn([](Engine& e, int& out) -> Co<void> {
    out = co_await Chain(e);
  }(engine, result));
  engine.Run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(engine.now().ms(), 2.0);
}

TEST(CoTest, SpawnRunsUntilFirstSuspension) {
  Engine engine;
  bool before = false;
  bool after = false;
  engine.Spawn([](Engine& e, bool& b, bool& a) -> Co<void> {
    b = true;
    co_await e.Sleep(Duration::Millis(1));
    a = true;
  }(engine, before, after));
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
  engine.Run();
  EXPECT_TRUE(after);
}

TEST(CoTest, ExceptionPropagatesToAwaiter) {
  Engine engine;
  bool caught = false;
  engine.Spawn([](Engine& e, bool& c) -> Co<void> {
    auto thrower = [](Engine& en) -> Co<int> {
      co_await en.Sleep(Duration::Millis(1));
      throw std::runtime_error("boom");
    };
    try {
      co_await thrower(e);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(engine, caught));
  engine.Run();
  EXPECT_TRUE(caught);
}

TEST(CoTest, ManyConcurrentTasks) {
  Engine engine;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    engine.Spawn([](Engine& e, int& d, int i) -> Co<void> {
      co_await e.Sleep(Duration::Micros(i));
      ++d;
    }(engine, done, i));
  }
  engine.Run();
  EXPECT_EQ(done, 1000);
}

TEST(OneShotEventTest, WaitersResumeOnTrigger) {
  Engine engine;
  OneShotEvent ev(&engine);
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn([](OneShotEvent& e, int& r) -> Co<void> {
      co_await e.Wait();
      ++r;
    }(ev, resumed));
  }
  engine.Run();
  EXPECT_EQ(resumed, 0);
  ev.Trigger();
  engine.Run();
  EXPECT_EQ(resumed, 3);
}

TEST(OneShotEventTest, WaitAfterTriggerIsImmediate) {
  Engine engine;
  OneShotEvent ev(&engine);
  ev.Trigger();
  bool done = false;
  engine.Spawn([](OneShotEvent& e, bool& d) -> Co<void> {
    co_await e.Wait();
    d = true;
  }(ev, done));
  EXPECT_TRUE(done);  // No suspension needed.
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine engine;
  Semaphore sem(&engine, 2);
  int active = 0;
  int max_active = 0;
  for (int i = 0; i < 6; ++i) {
    engine.Spawn([](Engine& e, Semaphore& s, int& act, int& mx) -> Co<void> {
      co_await s.Acquire();
      ++act;
      mx = std::max(mx, act);
      co_await e.Sleep(Duration::Millis(10));
      --act;
      s.Release();
    }(engine, sem, active, max_active));
  }
  engine.Run();
  EXPECT_EQ(active, 0);
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(engine.now().ms(), 30.0);  // 6 tasks, 2 at a time, 10ms each.
}

TEST(SemaphoreTest, TryAcquire) {
  Engine engine;
  Semaphore sem(&engine, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(ChannelTest, SendThenRecv) {
  Engine engine;
  Channel<int> ch(&engine);
  ch.Send(1);
  ch.Send(2);
  std::vector<int> got;
  engine.Spawn([](Channel<int>& c, std::vector<int>& g) -> Co<void> {
    g.push_back(co_await c.Recv());
    g.push_back(co_await c.Recv());
  }(ch, got));
  engine.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, RecvBlocksUntilSend) {
  Engine engine;
  Channel<int> ch(&engine);
  int got = 0;
  engine.Spawn([](Channel<int>& c, int& g) -> Co<void> { g = co_await c.Recv(); }(ch, got));
  engine.Run();
  EXPECT_EQ(got, 0);
  ch.Send(7);
  engine.Run();
  EXPECT_EQ(got, 7);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Engine engine;
  Channel<int> ch(&engine);
  int sum = 0;
  engine.Spawn([](Channel<int>& c, int& s) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      s += co_await c.Recv();
    }
  }(ch, sum));
  for (int i = 1; i <= 10; ++i) {
    engine.Schedule(Duration::Millis(i), [&ch, i] { ch.Send(i); });
  }
  engine.Run();
  EXPECT_EQ(sum, 55);
}

TEST(SharedFutureTest, MultipleGetters) {
  Engine engine;
  SharedFuture<int> fut(&engine);
  int sum = 0;
  for (int i = 0; i < 3; ++i) {
    engine.Spawn([](SharedFuture<int>& f, int& s) -> Co<void> {
      s += co_await f.Get();
    }(fut, sum));
  }
  engine.Run();
  EXPECT_EQ(sum, 0);
  fut.Set(5);
  engine.Run();
  EXPECT_EQ(sum, 15);
  EXPECT_TRUE(fut.has_value());
}

// --- CPU scheduler -------------------------------------------------------

Co<void> Burn(Engine& engine, CpuScheduler& cpu, int core, Duration work, TimePoint* done,
              CpuOwner owner = kHostOwner) {
  co_await cpu.Run(core, work, owner);
  *done = engine.now();
}

TEST(CpuTest, SingleJobTakesItsWork) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint done;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &done));
  engine.Run();
  EXPECT_EQ(done.ms(), 10.0);
}

TEST(CpuTest, TwoEqualJobsShareTheCore) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &a));
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &b));
  engine.Run();
  // Processor sharing: both finish at 20ms.
  EXPECT_NEAR(a.ms(), 20.0, 1e-6);
  EXPECT_NEAR(b.ms(), 20.0, 1e-6);
}

TEST(CpuTest, ShortJobDelaysLongJobByItsWork) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(100), &a));
  engine.Schedule(Duration::Millis(10), [&] {
    engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(5), &b));
  });
  engine.Run();
  // Short job arrives at 10ms with long job at 90ms remaining; it runs at
  // rate 1/2 so completes at 20ms; long job finishes at 105ms total.
  EXPECT_NEAR(b.ms(), 20.0, 1e-6);
  EXPECT_NEAR(a.ms(), 105.0, 1e-6);
}

TEST(CpuTest, CoresAreIndependent) {
  Engine engine;
  CpuScheduler cpu(&engine, 2);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &a));
  engine.Spawn(Burn(engine, cpu, 1, Duration::Millis(10), &b));
  engine.Run();
  EXPECT_NEAR(a.ms(), 10.0, 1e-6);
  EXPECT_NEAR(b.ms(), 10.0, 1e-6);
}

TEST(CpuTest, ZeroWorkCompletesInline) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  bool done = false;
  engine.Spawn([](CpuScheduler& c, bool& d) -> Co<void> {
    co_await c.Run(0, Duration());
    d = true;
  }(cpu, done));
  EXPECT_TRUE(done);
}

TEST(CpuTest, PerOwnerAccounting) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  TimePoint a;
  TimePoint b;
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &a, /*owner=*/1));
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(30), &b, /*owner=*/2));
  engine.Run();
  EXPECT_NEAR(cpu.ConsumedBy(1).ms(), 10.0, 0.01);
  EXPECT_NEAR(cpu.ConsumedBy(2).ms(), 30.0, 0.01);
  EXPECT_NEAR(cpu.BusyTime(0).ms(), 40.0, 0.01);
}

TEST(CpuTest, WindowUtilization) {
  Engine engine;
  CpuScheduler cpu(&engine, 2);
  TimePoint done;
  cpu.StartWindow();
  engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(10), &done));
  engine.RunUntil(TimePoint() + Duration::Millis(20));
  // One of two cores busy for 10 of 20 ms -> 25% machine-wide.
  EXPECT_NEAR(cpu.WindowUtilization(), 0.25, 0.001);
}

TEST(CpuTest, ManyJobsFairness) {
  Engine engine;
  CpuScheduler cpu(&engine, 1);
  std::vector<TimePoint> done(10);
  for (int i = 0; i < 10; ++i) {
    engine.Spawn(Burn(engine, cpu, 0, Duration::Millis(1), &done[static_cast<size_t>(i)]));
  }
  engine.Run();
  for (const TimePoint& t : done) {
    EXPECT_NEAR(t.ms(), 10.0, 1e-6);  // All equal jobs end together under PS.
  }
}

TEST(CorePlacerTest, RoundRobinGuestCores) {
  CorePlacer placer(4, 1);
  EXPECT_EQ(placer.NextGuestCore(), 1);
  EXPECT_EQ(placer.NextGuestCore(), 2);
  EXPECT_EQ(placer.NextGuestCore(), 3);
  EXPECT_EQ(placer.NextGuestCore(), 1);
  EXPECT_EQ(placer.num_guest_cores(), 3);
  EXPECT_EQ(placer.num_dom0_cores(), 1);
  EXPECT_EQ(placer.NextDom0Core(), 0);
  EXPECT_EQ(placer.NextDom0Core(), 0);
}

TEST(CorePlacerTest, MultipleDom0Cores) {
  CorePlacer placer(64, 4);
  EXPECT_EQ(placer.NextDom0Core(), 0);
  EXPECT_EQ(placer.NextDom0Core(), 1);
  EXPECT_EQ(placer.NextDom0Core(), 2);
  EXPECT_EQ(placer.NextDom0Core(), 3);
  EXPECT_EQ(placer.NextDom0Core(), 0);
  EXPECT_EQ(placer.num_guest_cores(), 60);
}

// --- Cancelled-event compaction ---------------------------------------------

TEST(EngineTest, CancelTracksPendingCount) {
  Engine engine;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(engine.Schedule(Duration::Millis(i + 1), [] {}));
  }
  EXPECT_EQ(engine.cancelled_pending(), 0u);
  handles[3].Cancel();
  handles[7].Cancel();
  handles[7].Cancel();  // double cancel counts once
  EXPECT_EQ(engine.cancelled_pending(), 2u);
  engine.Run();
  EXPECT_EQ(engine.cancelled_pending(), 0u);
}

TEST(EngineTest, CompactionReclaimsCancelledBacklog) {
  Engine engine;
  std::vector<EventHandle> handles;
  int ran = 0;
  for (int i = 0; i < 256; ++i) {
    handles.push_back(
        engine.Schedule(Duration::Millis(i + 1), [&ran] { ++ran; }));
  }
  // Cancel well past the half-dead threshold; compaction must trigger
  // without the engine running at all. A handful of dead entries may remain
  // once the queue shrinks below the compaction floor.
  for (int i = 0; i < 200; ++i) {
    handles[i].Cancel();
  }
  EXPECT_GE(engine.compactions(), 1u);
  EXPECT_LT(engine.cancelled_pending(), 64u);
  engine.Run();
  EXPECT_EQ(ran, 56);
  EXPECT_EQ(engine.cancelled_pending(), 0u);
}

TEST(EngineTest, NextEventTimeSkipsCancelled) {
  Engine engine;
  EventHandle first = engine.Schedule(Duration::Millis(1), [] {});
  engine.Schedule(Duration::Millis(5), [] {});
  first.Cancel();
  std::optional<TimePoint> next = engine.NextEventTime();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ((*next - TimePoint()).ms(), 5.0);
  engine.Run();
  EXPECT_FALSE(engine.NextEventTime().has_value());
}

TEST(EngineTest, ProcessBeforeStopsStrictlyShortOfTarget) {
  Engine engine;
  std::vector<int> order;
  engine.Schedule(Duration::Millis(1), [&] { order.push_back(1); });
  engine.Schedule(Duration::Millis(2), [&] { order.push_back(2); });
  engine.Schedule(Duration::Millis(3), [&] { order.push_back(3); });
  uint64_t n = engine.ProcessBefore(TimePoint() + Duration::Millis(3));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The clock rests on the last processed event, not the epoch target, so a
  // later delivery at t=2.5ms would still be legal.
  EXPECT_EQ(engine.now().ms(), 2.0);
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- SPSC mailbox ring ------------------------------------------------------

TEST(SpscRingTest, FifoOrderAndCapacity) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(SpscRingTest, TwoThreadHandoffPreservesSequence) {
  SpscRing<int> ring(64);
  constexpr int kItems = 20000;
  std::thread producer([&ring] {
    for (int i = 0; i < kItems;) {
      if (ring.TryPush(i)) {
        ++i;
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int out = -1;
    if (ring.TryPop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- Sharded group: conservative-lookahead epochs ---------------------------

namespace {

// Random-walk workload: `kTokens` tokens hop between domains, each hop
// recording (domain, time, token, hop) into the destination domain's
// transcript. All cross-domain traffic goes through Post(); the transcript
// is single-writer per domain (the owning shard thread), so the workload is
// race-free by construction — exactly the discipline sharded cluster code
// follows.
struct HopWorld {
  ShardGroup* group = nullptr;
  std::vector<std::vector<std::string>> transcript;  // per dst domain
  int hops_remaining = 0;

  void Hop(int dst, int token, int hop) {
    Engine& engine = group->domain_engine(dst);
    transcript[dst].push_back(lv::StrFormat(
        "tok=%d hop=%d t=%lld", token, hop, (long long)engine.now().ns()));
    if (hop <= 0) {
      return;
    }
    lv::Rng& rng = group->domain_rng(dst);
    int next = static_cast<int>(rng.Uniform(0, group->num_domains() - 1));
    Duration delay =
        group->lookahead() + Duration::Nanos(rng.Uniform(0, 200000));
    group->Post(dst, next, delay,
                [this, next, token, hop] { Hop(next, token, hop - 1); });
    // Local (sub-lookahead) work stays on the owning engine directly.
    engine.Schedule(Duration::Nanos(rng.Uniform(1, 1000)), [] {});
  }
};

struct HopResult {
  std::vector<std::vector<std::string>> transcript;
  uint64_t delivered = 0;
  uint64_t processed = 0;
};

HopResult RunHopWorld(uint64_t seed, int shards, int domains, int tokens,
                      int hops) {
  ShardGroup group(seed, domains, shards, Duration::Micros(50));
  HopWorld world;
  world.group = &group;
  world.transcript.assign(domains, {});
  for (int t = 0; t < tokens; ++t) {
    int start = t % domains;
    group.domain_engine(start).Schedule(
        Duration::Micros(t), [&world, start, t, hops] { world.Hop(start, t, hops); });
  }
  group.RunToQuiescence(Duration::Seconds(600));
  HopResult out;
  out.transcript = std::move(world.transcript);
  out.delivered = group.messages_delivered();
  for (const ShardStats& s : group.shard_stats()) {
    out.processed += s.processed;
  }
  return out;
}

}  // namespace

TEST(ShardGroupTest, SingleShardDeliversCrossDomainPosts) {
  ShardGroup group(7, 3, 1, Duration::Micros(10));
  std::vector<int> got;
  group.domain_engine(0).Schedule(Duration::Micros(1), [&] {
    group.Post(0, 2, Duration::Micros(10), [&got] { got.push_back(2); });
    group.Post(0, 1, Duration::Micros(10), [&got] { got.push_back(1); });
  });
  group.RunToQuiescence(Duration::Seconds(1));
  // Same timestamp, same src: delivery follows post sequence.
  EXPECT_EQ(got, (std::vector<int>{2, 1}));
  EXPECT_EQ(group.messages_delivered(), 2u);
  EXPECT_GE(group.epochs(), 1u);
}

TEST(ShardGroupTest, RunUntilStopsAtPredicate) {
  ShardGroup group(7, 2, 2, Duration::Micros(10));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    group.domain_engine(0).Schedule(Duration::Millis(i + 1),
                                    [&fired] { ++fired; });
  }
  bool ok = group.RunUntil([&fired] { return fired >= 3; },
                           Duration::Seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_GE(fired, 3);
  EXPECT_LT(fired, 10);
  group.RunToQuiescence(Duration::Seconds(1));
  EXPECT_EQ(fired, 10);
}

TEST(ShardGroupTest, IdenticalTranscriptAcrossShardCounts) {
  // The differential oracle: the same seed must yield a byte-identical
  // event transcript whether the domains run inline on one engine or
  // spread over 2 or 4 real threads.
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    HopResult ref = RunHopWorld(seed, /*shards=*/1, /*domains=*/5,
                                /*tokens=*/8, /*hops=*/12);
    EXPECT_GT(ref.delivered, 0u);
    for (int shards : {2, 4}) {
      HopResult got = RunHopWorld(seed, shards, 5, 8, 12);
      EXPECT_EQ(got.transcript, ref.transcript)
          << "seed=" << seed << " shards=" << shards;
      EXPECT_EQ(got.delivered, ref.delivered) << "seed=" << seed;
      EXPECT_EQ(got.processed, ref.processed) << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace sim
