// Tests for the network substrate: software switch forwarding, broadcast,
// overload drops, and the TCP/link model used by migration.
#include <gtest/gtest.h>

#include <optional>

#include "src/net/link.h"
#include "src/net/switch.h"
#include "src/sim/engine.h"

namespace xnet {
namespace {

using lv::Bytes;
using lv::Duration;
using lv::TimePoint;

class NetTest : public ::testing::Test {
 protected:
  NetTest() : cpu_(&engine_, 2), switch_(&engine_) {}

  sim::ExecCtx Ctx() { return sim::ExecCtx{&cpu_, 0, sim::kHostOwner}; }

  void Forward(Packet p) {
    engine_.Spawn([](Switch& sw, sim::ExecCtx ctx, Packet p) -> sim::Co<void> {
      co_await sw.Forward(ctx, p);
    }(switch_, Ctx(), std::move(p)));
    engine_.Run();
  }

  sim::Engine engine_;
  sim::CpuScheduler cpu_;
  Switch switch_;
};

TEST_F(NetTest, AddRemovePort) {
  EXPECT_TRUE(switch_.AddPort("vif1.0", [](const Packet&) {}).ok());
  EXPECT_EQ(switch_.AddPort("vif1.0", [](const Packet&) {}).code(),
            lv::ErrorCode::kAlreadyExists);
  EXPECT_TRUE(switch_.HasPort("vif1.0"));
  EXPECT_TRUE(switch_.RemovePort("vif1.0").ok());
  EXPECT_EQ(switch_.RemovePort("vif1.0").code(), lv::ErrorCode::kNotFound);
}

TEST_F(NetTest, UnicastDelivery) {
  int got_a = 0;
  int got_b = 0;
  (void)switch_.AddPort("a", [&](const Packet&) { ++got_a; });
  (void)switch_.AddPort("b", [&](const Packet&) { ++got_b; });
  Packet p;
  p.src = "a";
  p.dst = "b";
  Forward(p);
  EXPECT_EQ(got_a, 0);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(switch_.stats().forwarded, 1);
}

TEST_F(NetTest, UnknownDestinationDropped) {
  Packet p;
  p.dst = "nowhere";
  Forward(p);
  EXPECT_EQ(switch_.stats().dropped_no_port, 1);
}

TEST_F(NetTest, BroadcastReachesAllButIngress) {
  int got_a = 0;
  int got_b = 0;
  int got_c = 0;
  (void)switch_.AddPort("a", [&](const Packet&) { ++got_a; });
  (void)switch_.AddPort("b", [&](const Packet&) { ++got_b; });
  (void)switch_.AddPort("c", [&](const Packet&) { ++got_c; });
  Packet p;
  p.kind = PacketKind::kArp;
  p.src = "a";
  p.dst = "";  // broadcast
  Forward(p);
  EXPECT_EQ(got_a, 0);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 1);
  EXPECT_EQ(switch_.stats().broadcasts, 1);
}

TEST_F(NetTest, OverloadCausesDrops) {
  Switch::Costs costs;
  costs.capacity_pps = 1000.0;  // 10 packets per 10ms window.
  Switch small(&engine_, costs);
  int delivered = 0;
  (void)small.AddPort("sink", [&](const Packet&) { ++delivered; });
  engine_.Spawn([](Switch& sw, sim::ExecCtx ctx) -> sim::Co<void> {
    for (int i = 0; i < 100; ++i) {
      Packet p;
      p.dst = "sink";
      co_await sw.Forward(ctx, p);
    }
  }(small, Ctx()));
  engine_.Run();
  EXPECT_GT(small.stats().dropped_overload, 0);
  EXPECT_LT(delivered, 100);
  EXPECT_EQ(delivered + small.stats().dropped_overload, 100);
}

TEST_F(NetTest, CapacityRecoversNextWindow) {
  Switch::Costs costs;
  costs.capacity_pps = 1000.0;
  Switch small(&engine_, costs);
  int delivered = 0;
  (void)small.AddPort("sink", [&](const Packet&) { ++delivered; });
  // 5 packets every 10ms for 10 windows: always under capacity.
  engine_.Spawn([](sim::Engine& e, Switch& sw, sim::ExecCtx ctx) -> sim::Co<void> {
    for (int w = 0; w < 10; ++w) {
      for (int i = 0; i < 5; ++i) {
        Packet p;
        p.dst = "sink";
        co_await sw.Forward(ctx, p);
      }
      co_await e.Sleep(Duration::Millis(10));
    }
  }(engine_, small, Ctx()));
  engine_.Run();
  EXPECT_EQ(small.stats().dropped_overload, 0);
  EXPECT_EQ(delivered, 50);
}

TEST(LinkTest, SerializationDelayMatchesBandwidth) {
  sim::Engine engine;
  Link link(&engine, /*gbps=*/1.0, Duration::Millis(10));
  // 1 Gbps = 125 MB/s; 125 MB takes 1 s.
  EXPECT_NEAR(link.SerializationDelay(Bytes::Count(125000000)).secs(), 1.0, 1e-9);
  EXPECT_NEAR(link.SerializationDelay(Bytes::MiB(1)).ms(), 8.39, 0.01);
}

TEST(LinkTest, TcpConnectCostsOneRtt) {
  sim::Engine engine;
  Link link(&engine, 1.0, Duration::Millis(10));
  TcpConnection conn(&link);
  TimePoint t0 = engine.now();
  engine.Spawn([](TcpConnection& c) -> sim::Co<void> { co_await c.Connect(); }(conn));
  engine.Run();
  EXPECT_NEAR((engine.now() - t0).ms(), 10.0, 1e-6);
  EXPECT_TRUE(conn.connected());
}

TEST(LinkTest, MigrationSizedTransfer) {
  sim::Engine engine;
  // The paper's personal-firewall use case: 1 Gbps, 10 ms link; migrating a
  // ClickOS VM (8 MB of RAM) takes ~150 ms including handshakes.
  Link link(&engine, 1.0, Duration::Millis(10));
  TcpConnection conn(&link);
  engine.Spawn([](TcpConnection& c) -> sim::Co<void> {
    co_await c.Connect();
    co_await c.Send(Bytes::MiB(8));
  }(conn));
  engine.Run();
  double total_ms = engine.now().ms();
  EXPECT_GT(total_ms, 75.0);
  EXPECT_LT(total_ms, 200.0);
  EXPECT_EQ(conn.bytes_sent(), Bytes::MiB(8));
}

}  // namespace
}  // namespace xnet
