// Unit tests for src/base: time, units, result, rng, stats, strings.
#include <gtest/gtest.h>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/strings.h"
#include "src/base/time.h"
#include "src/base/units.h"

namespace lv {
namespace {

TEST(DurationTest, FactoriesAndAccessors) {
  EXPECT_EQ(Duration::Nanos(5).ns(), 5);
  EXPECT_EQ(Duration::Micros(3).ns(), 3000);
  EXPECT_EQ(Duration::Millis(2).ns(), 2000000);
  EXPECT_EQ(Duration::Seconds(1).ns(), 1000000000);
  EXPECT_DOUBLE_EQ(Duration::Millis(2).ms(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::Micros(1500).ms(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::MillisF(2.3).ms(), 2.3);
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::Millis(10);
  Duration b = Duration::Millis(4);
  EXPECT_EQ((a + b).ms(), 14.0);
  EXPECT_EQ((a - b).ms(), 6.0);
  EXPECT_EQ((a * 3).ms(), 30.0);
  EXPECT_EQ((a / 2).ms(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  a += b;
  EXPECT_EQ(a.ms(), 14.0);
  EXPECT_LT(b, a);
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Nanos(12).ToString(), "12ns");
  EXPECT_EQ(Duration::Micros(450).ToString(), "450us");
  EXPECT_EQ(Duration::MillisF(2.3).ToString(), "2.3ms");
  EXPECT_EQ(Duration::Seconds(42).ToString(), "42s");
}

TEST(TimePointTest, Ordering) {
  TimePoint t0;
  TimePoint t1 = t0 + Duration::Millis(5);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).ms(), 5.0);
  EXPECT_EQ((t1 - Duration::Millis(5)), t0);
}

TEST(BytesTest, FactoriesAndConversions) {
  EXPECT_EQ(Bytes::KiB(1).count(), 1024);
  EXPECT_EQ(Bytes::MiB(1).count(), 1024 * 1024);
  EXPECT_DOUBLE_EQ(Bytes::MiB(9).mib(), 9.0);
  EXPECT_DOUBLE_EQ(Bytes::GiB(1).gib(), 1.0);
  EXPECT_EQ(Bytes::KiBF(0.5).count(), 512);
}

TEST(BytesTest, PagesFor) {
  EXPECT_EQ(PagesFor(Bytes::Count(0)), 0);
  EXPECT_EQ(PagesFor(Bytes::Count(1)), 1);
  EXPECT_EQ(PagesFor(Bytes::KiB(4)), 1);
  EXPECT_EQ(PagesFor(Bytes::KiB(4) + Bytes::Count(1)), 2);
  EXPECT_EQ(PagesFor(Bytes::MiB(1)), 256);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  Result<int> bad = Err(ErrorCode::kNotFound, "no such domain");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kNotFound);
  EXPECT_EQ(bad.error().ToString(), "NOT_FOUND: no such domain");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, StatusOkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = Err(ErrorCode::kConflict, "transaction retry");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kConflict);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    acc.Add(rng.Exponential(Duration::Millis(10)).ms());
  }
  EXPECT_NEAR(acc.mean(), 10.0, 0.5);
}

TEST(RngTest, NormalTruncatesAtMin) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    Duration d = rng.Normal(Duration::Millis(1), Duration::Millis(5), Duration::Micros(100));
    EXPECT_GE(d.ns(), Duration::Micros(100).ns());
  }
}

TEST(AccumulatorTest, Moments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(x);
  }
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);
}

TEST(SamplesTest, Quantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Median(), 50.5);
  EXPECT_NEAR(s.Quantile(0.9), 90.1, 0.01);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SamplesTest, CdfMonotone) {
  Samples s;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    s.Add(rng.UniformReal(0, 100));
  }
  auto cdf = s.Cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(TimeSeriesTest, StepFunction) {
  TimeSeries ts;
  TimePoint t0;
  ts.Record(t0 + Duration::Millis(10), 1);
  ts.Record(t0 + Duration::Millis(20), 3);
  ts.Record(t0 + Duration::Millis(30), 2);
  EXPECT_DOUBLE_EQ(ts.At(t0), 0.0);
  EXPECT_DOUBLE_EQ(ts.At(t0 + Duration::Millis(15)), 1.0);
  EXPECT_DOUBLE_EQ(ts.At(t0 + Duration::Millis(25)), 3.0);
  EXPECT_DOUBLE_EQ(ts.At(t0 + Duration::Millis(35)), 2.0);
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 3.0);
}

TEST(StringsTest, SplitDropsEmptyTokens) {
  EXPECT_EQ(Split("/local/domain/3", '/'),
            (std::vector<std::string>{"local", "domain", "3"}));
  EXPECT_EQ(Split("/local//domain//", '/'), (std::vector<std::string>{"local", "domain"}));
  EXPECT_TRUE(Split("", '/').empty());
  EXPECT_TRUE(Split("///", '/').empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, '/'), "a/b/c");
  EXPECT_EQ(Join({}, '/'), "");
  EXPECT_EQ(Join({"x"}, '/'), "x");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("dom%d: %s", 3, "running"), "dom3: running");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, HasPrefix) {
  EXPECT_TRUE(HasPrefix("/local/domain/3/device", "/local/domain/3"));
  EXPECT_FALSE(HasPrefix("/local", "/local/domain"));
}

}  // namespace
}  // namespace lv
