// Unit tests for the trace subsystem: span nesting, counter aggregation,
// simulated-time ordering, the Chrome trace_event exporter, and an
// integration check that a full xl domain creation emits the expected span
// tree.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/host.h"
#include "src/guests/image.h"
#include "src/sim/engine.h"
#include "src/sim/run.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace trace {
namespace {

using lv::Duration;

// The Tracer is a process-wide singleton; every test starts from scratch.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Get().Reset(); }
  void TearDown() override { Tracer::Get().Reset(); }
};

sim::Co<void> NestedSpans(sim::Engine* engine, TrackId track) {
  Span outer(track, "vm.create");
  {
    Span inner(track, "create.config");
    co_await engine->Sleep(Duration::Millis(10));
  }
  {
    Span inner(track, "create.devices");
    co_await engine->Sleep(Duration::Millis(30));
  }
}

TEST_F(TraceTest, SpansNestPerTrackAndAggregate) {
  sim::Engine engine;  // Attaches the simulated clock.
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  TrackId track = tracer.NewTrack("vm:test");
  engine.Spawn(NestedSpans(&engine, track));
  engine.Run();

  auto stats = tracer.SpanStats();
  ASSERT_EQ(stats.count("vm.create"), 1u);
  ASSERT_EQ(stats.count("create.config"), 1u);
  ASSERT_EQ(stats.count("create.devices"), 1u);
  EXPECT_EQ(stats["vm.create"].count, 1);
  EXPECT_DOUBLE_EQ(stats["vm.create"].total.ms(), 40.0);
  EXPECT_DOUBLE_EQ(stats["create.config"].total.ms(), 10.0);
  EXPECT_DOUBLE_EQ(stats["create.devices"].total.ms(), 30.0);
  // Only the outermost span is top-level on the track.
  EXPECT_EQ(tracer.TopLevelSpans(track), (std::vector<std::string>{"vm.create"}));
}

// The toolstacks reuse one guard across consecutive phases via
// `phase.End(); phase = Span(...)` — verify that pattern yields adjacent,
// non-crossing spans.
TEST_F(TraceTest, ReusedGuardYieldsConsecutiveSpans) {
  sim::Engine engine;
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  {
    Span phase(kHostTrack, "phase.a");
    engine.RunUntil(lv::TimePoint() + Duration::Millis(5));
    phase.End();
    phase = Span(kHostTrack, "phase.b");
    engine.RunUntil(lv::TimePoint() + Duration::Millis(20));
  }
  auto stats = tracer.SpanStats();
  EXPECT_DOUBLE_EQ(stats["phase.a"].total.ms(), 5.0);
  EXPECT_DOUBLE_EQ(stats["phase.b"].total.ms(), 15.0);
  // Both are top-level: the pairs do not nest or cross.
  EXPECT_EQ(tracer.TopLevelSpans(kHostTrack),
            (std::vector<std::string>{"phase.a", "phase.b"}));
}

TEST_F(TraceTest, CountersAccumulateRunningTotals) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  Count("hv.hypercalls", 1);
  Count("hv.hypercalls", 1);
  Count("hv.bytes_copied", 4096);
  Count("hv.hypercalls", 1);
  EXPECT_DOUBLE_EQ(tracer.counter_total("hv.hypercalls"), 3.0);
  EXPECT_DOUBLE_EQ(tracer.counter_total("hv.bytes_copied"), 4096.0);
  EXPECT_DOUBLE_EQ(tracer.counter_total("missing"), 0.0);
  // Each sample records the running total at that point.
  std::vector<double> totals;
  for (const Event& ev : tracer.events()) {
    if (ev.type == EventType::kCounter && ev.name == "hv.hypercalls") {
      totals.push_back(ev.value);
    }
  }
  EXPECT_EQ(totals, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST_F(TraceTest, EventsCarrySimulatedTimeInOrder) {
  sim::Engine engine;
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  engine.Schedule(Duration::Millis(1), [&] { tracer.Instant(kHostTrack, "first"); });
  engine.Schedule(Duration::Millis(2), [&] { tracer.Instant(kHostTrack, "second"); });
  engine.Schedule(Duration::Millis(3), [&] { Count("tick", 1); });
  engine.Run();
  // The engine's own dispatch counter records too; filter to the instants.
  const auto& events = tracer.events();
  std::vector<double> instant_ts;
  for (const Event& ev : events) {
    if (ev.type == EventType::kInstant) {
      instant_ts.push_back(ev.ts.ms());
    }
  }
  EXPECT_EQ(instant_ts, (std::vector<double>{1.0, 2.0}));
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts.ns(), events[i - 1].ts.ns());
  }
  EXPECT_DOUBLE_EQ(tracer.counter_total("tick"), 1.0);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  ASSERT_FALSE(tracer.enabled());
  {
    Span span(kHostTrack, "never");
    Count("never", 1);
    tracer.Instant(kHostTrack, "never");
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_TRUE(tracer.counters().empty());
}

TEST_F(TraceTest, DisablingMidSpanKeepsTheBufferBalanced) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  {
    Span span(kHostTrack, "half");
    tracer.Disable();
  }  // The guard still records its end.
  int begins = 0;
  int ends = 0;
  for (const Event& ev : tracer.events()) {
    begins += ev.type == EventType::kBegin;
    ends += ev.type == EventType::kEnd;
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsTracks) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  TrackId track = tracer.NewTrack("xenstored");
  tracer.Instant(track, "something");
  Count("xs.ops", 5);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_DOUBLE_EQ(tracer.counter_total("xs.ops"), 0.0);
  ASSERT_EQ(tracer.tracks().size(), 2u);
  EXPECT_EQ(tracer.tracks()[1], "xenstored");
  // A new span on the surviving track still records.
  { Span span(track, "after"); }
  EXPECT_EQ(tracer.SpanStats().count("after"), 1u);
}

// Minimal structural validation of the exporter output; the full JSON parse
// is covered by scripts/check_trace_json.py (registered as a ctest).
TEST_F(TraceTest, ChromeExportIsWellFormed) {
  sim::Engine engine;
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  TrackId track = tracer.NewTrack("vm:\"quoted\"");
  {
    Span span(track, "vm.create");
    engine.RunUntil(lv::TimePoint() + Duration::Millis(1));
    Count("hv.hypercalls", 2);
  }
  std::ostringstream out;
  WriteChromeTrace(tracer, out);
  std::string json = out.str();

  // Balanced braces/brackets outside string literals.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("vm:\\\"quoted\\\""), std::string::npos);  // Escaped name.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

// Integration: one xl domain creation yields the span tree the Figure 5
// analysis depends on — a single top-level vm.create on the VM's track with
// all six phase spans under it, and a guest.boot on the guest's track.
TEST_F(TraceTest, DomainCreationEmitsExpectedSpans) {
  sim::Engine engine;
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), lightvm::Mechanisms::Xl());
  Tracer& tracer = Tracer::Get();
  tracer.Enable();

  toolstack::VmConfig config;
  config.name = "web0";
  config.image = guests::DaytimeUnikernel();
  auto domid = sim::RunToCompletion(engine, host.CreateVm(config));
  ASSERT_TRUE(domid.ok());
  guests::Guest* guest = host.guest(*domid);
  ASSERT_NE(guest, nullptr);
  ASSERT_TRUE(sim::RunUntilCondition(engine, [&] { return guest->booted(); },
                                     Duration::Seconds(600)));

  // Find the VM's creation track and the guest's boot track.
  const auto& tracks = tracer.tracks();
  TrackId vm_track = -1;
  TrackId guest_track = -1;
  for (size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i] == "vm:web0") {
      vm_track = static_cast<TrackId>(i);
    } else if (tracks[i].rfind("guest:", 0) == 0) {
      guest_track = static_cast<TrackId>(i);
    }
  }
  ASSERT_NE(vm_track, -1) << "no per-VM track registered";
  ASSERT_NE(guest_track, -1) << "no per-guest track registered";
  EXPECT_EQ(tracer.TopLevelSpans(vm_track), (std::vector<std::string>{"vm.create"}));
  EXPECT_EQ(tracer.TopLevelSpans(guest_track),
            (std::vector<std::string>{"guest.boot"}));

  auto stats = tracer.SpanStats();
  for (const char* phase : {"create.config", "create.toolstack", "create.hypervisor",
                            "create.xenstore", "create.devices", "create.load",
                            "create.boot"}) {
    EXPECT_EQ(stats.count(phase), 1u) << "missing phase span " << phase;
  }
  // The phases partition vm.create up to the boot tail.
  lv::Duration phases = stats["create.config"].total + stats["create.toolstack"].total +
                        stats["create.hypervisor"].total + stats["create.xenstore"].total +
                        stats["create.devices"].total + stats["create.load"].total +
                        stats["create.boot"].total;
  EXPECT_DOUBLE_EQ(phases.ms(), stats["vm.create"].total.ms());
  // Hot-path counters moved.
  EXPECT_GT(tracer.counter_total("hv.hypercalls"), 0.0);
  EXPECT_GT(tracer.counter_total("xs.ops"), 0.0);
  EXPECT_GT(tracer.counter_total("hv.pages_populated"), 0.0);
  EXPECT_GT(tracer.counter_total("engine.events"), 0.0);
}

}  // namespace
}  // namespace trace
