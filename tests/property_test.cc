// Property-based tests (parameterized sweeps via TEST_P): randomized
// operation sequences checked against reference models and conservation
// invariants, across seeds and mechanism configurations.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/core/host.h"
#include "src/sim/run.h"
#include "src/tinyx/builder.h"

namespace {

using lv::Bytes;
using lv::Duration;

// --- Store vs. reference model ------------------------------------------------

// Random write/rm/read/directory sequences applied to both the Store and a
// plain std::map reference; every read and listing must agree, and every
// mutation must fire exactly the watches whose prefix matches.
class StoreModelTest : public ::testing::TestWithParam<int> {};

TEST_P(StoreModelTest, RandomOpsAgreeWithReferenceModel) {
  lv::Rng rng(static_cast<uint64_t>(GetParam()));
  xs::Store store;
  std::map<std::string, std::string> model;  // canon path -> value

  // A fixed path universe keeps collisions frequent.
  std::vector<std::string> paths;
  for (int d = 1; d <= 6; ++d) {
    for (int k = 0; k < 4; ++k) {
      paths.push_back(lv::StrFormat("/local/domain/%d/slot/%d", d, k));
    }
  }
  // Watches on a few prefixes.
  struct WatchSpec {
    std::string prefix;
    std::string canon;
  };
  std::vector<WatchSpec> watches = {
      {"/local/domain/1", "local/domain/1"},
      {"/local/domain/2/slot", "local/domain/2/slot"},
      {"/local", "local"},
  };
  for (size_t w = 0; w < watches.size(); ++w) {
    store.AddWatch(static_cast<xs::ClientId>(w), watches[w].prefix, "t");
  }

  auto matches = [](const std::string& canon, const std::string& prefix) {
    return canon == prefix ||
           (canon.size() > prefix.size() && canon.compare(0, prefix.size(), prefix) == 0 &&
            canon[prefix.size()] == '/');
  };

  for (int step = 0; step < 600; ++step) {
    const std::string& path =
        paths[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(paths.size()) - 1))];
    std::string canon = path.substr(1);
    int op = static_cast<int>(rng.Uniform(0, 3));
    if (op == 0) {  // write
      std::string value = lv::StrFormat("v%d", step);
      std::vector<xs::WatchHit> hits;
      ASSERT_TRUE(store.Write(path, value, hv::kDom0, xs::kNoTxn, &hits).ok());
      model[canon] = value;
      int64_t expected_hits = 0;
      for (const WatchSpec& w : watches) {
        if (matches(canon, w.canon)) {
          ++expected_hits;
        }
      }
      EXPECT_EQ(static_cast<int64_t>(hits.size()), expected_hits) << canon;
    } else if (op == 1) {  // rm (leaf only, so the model stays in sync)
      std::vector<xs::WatchHit> hits;
      lv::Status s = store.Rm(path, xs::kNoTxn, &hits);
      bool existed = model.erase(canon) > 0;
      EXPECT_EQ(s.ok(), existed) << canon;
    } else if (op == 2) {  // read
      auto r = store.Read(path);
      auto it = model.find(canon);
      if (it == model.end()) {
        // The node may exist as an intermediate directory with empty value.
        if (r.ok()) {
          EXPECT_TRUE(r->empty()) << canon;
        }
      } else {
        ASSERT_TRUE(r.ok()) << canon;
        EXPECT_EQ(*r, it->second);
      }
    } else {  // directory of a parent
      std::string parent = path.substr(0, path.rfind('/'));
      auto dir = store.Directory(parent);
      if (dir.ok()) {
        // Every model key under this parent must be listed.
        std::set<std::string> listed(dir->begin(), dir->end());
        std::string parent_canon = parent.substr(1);
        for (const auto& [key, value] : model) {
          if (key.size() > parent_canon.size() && key.compare(0, parent_canon.size(),
                                                              parent_canon) == 0 &&
              key[parent_canon.size()] == '/') {
            std::string child = key.substr(parent_canon.size() + 1);
            child = child.substr(0, child.find('/'));
            EXPECT_TRUE(listed.contains(child)) << key;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest, ::testing::Range(1, 9));

// --- Transaction atomicity -----------------------------------------------------

class TxnPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TxnPropertyTest, ConflictingTransactionsNeverBothCommit) {
  lv::Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  xs::Store store;
  for (int round = 0; round < 100; ++round) {
    std::string key = lv::StrFormat("/k/%d", (int)rng.Uniform(0, 5));
    (void)store.Write(key, "base", hv::kDom0);
    xs::TxnId t1 = store.TxBegin();
    xs::TxnId t2 = store.TxBegin();
    // Both transactions read-modify-write the same key.
    (void)store.Read(key, t1);
    (void)store.Read(key, t2);
    (void)store.Write(key, lv::StrFormat("t1-%d", round), hv::kDom0, t1);
    (void)store.Write(key, lv::StrFormat("t2-%d", round), hv::kDom0, t2);
    bool first_is_t1 = rng.Chance(0.5);
    std::vector<xs::WatchHit> hits;
    lv::Status first = store.TxCommit(first_is_t1 ? t1 : t2, false, &hits);
    lv::Status second = store.TxCommit(first_is_t1 ? t2 : t1, false, &hits);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(second.code(), lv::ErrorCode::kConflict);
    // The surviving value is the first committer's.
    EXPECT_EQ(*store.Read(key),
              lv::StrFormat(first_is_t1 ? "t1-%d" : "t2-%d", round));
  }
  EXPECT_EQ(store.open_txns(), 0);
}

TEST_P(TxnPropertyTest, DisjointTransactionsAllCommit) {
  lv::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  xs::Store store;
  for (int round = 0; round < 50; ++round) {
    int n = static_cast<int>(rng.Uniform(2, 6));
    std::vector<xs::TxnId> txns;
    for (int i = 0; i < n; ++i) {
      txns.push_back(store.TxBegin());
      (void)store.Write(lv::StrFormat("/r%d/t%d", round, i), "v", hv::kDom0, txns.back());
    }
    std::vector<xs::WatchHit> hits;
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(store.TxCommit(txns[static_cast<size_t>(i)], false, &hits).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnPropertyTest, ::testing::Range(1, 6));

// --- CPU scheduler conservation --------------------------------------------------

struct CpuCase {
  int cores;
  int jobs;
  int seed;
};

class CpuConservationTest : public ::testing::TestWithParam<CpuCase> {};

TEST_P(CpuConservationTest, ConsumedTimeEqualsSubmittedWork) {
  const CpuCase& c = GetParam();
  sim::Engine engine(static_cast<uint64_t>(c.seed));
  sim::CpuScheduler cpu(&engine, c.cores);
  lv::Rng rng(static_cast<uint64_t>(c.seed) * 13 + 7);

  Duration total_work;
  std::vector<Duration> per_owner(static_cast<size_t>(c.jobs));
  for (int j = 0; j < c.jobs; ++j) {
    Duration work = Duration::Micros(rng.Uniform(50, 5000));
    Duration start_delay = Duration::Micros(rng.Uniform(0, 2000));
    int core = static_cast<int>(rng.Uniform(0, c.cores - 1));
    total_work += work;
    per_owner[static_cast<size_t>(j)] = work;
    engine.Schedule(start_delay, [&engine, &cpu, core, work, j] {
      engine.Spawn([](sim::CpuScheduler& s, int core, Duration w, int owner) -> sim::Co<void> {
        co_await s.Run(core, w, owner + 1);
      }(cpu, core, work, j));
    });
  }
  engine.Run();

  // Conservation: every job's consumed time equals its submitted work, and
  // per-core busy time sums to the total.
  Duration consumed;
  for (int j = 0; j < c.jobs; ++j) {
    Duration got = cpu.ConsumedBy(j + 1);
    EXPECT_NEAR(got.us(), per_owner[static_cast<size_t>(j)].us(), 1.0) << "owner " << j;
    consumed += got;
  }
  Duration busy;
  for (int core = 0; core < c.cores; ++core) {
    busy += cpu.BusyTime(core);
    EXPECT_LE(cpu.BusyTime(core).ns(), engine.now().ns());  // Never beyond wall.
    EXPECT_EQ(cpu.ActiveJobs(core), 0);
  }
  EXPECT_NEAR(consumed.us(), total_work.us(), static_cast<double>(c.jobs));
  EXPECT_NEAR(busy.us(), total_work.us(), static_cast<double>(c.jobs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuConservationTest,
    ::testing::Values(CpuCase{1, 10, 1}, CpuCase{1, 100, 2}, CpuCase{4, 50, 3},
                      CpuCase{4, 200, 4}, CpuCase{16, 300, 5}, CpuCase{64, 500, 6}));

// --- VM lifecycle invariants across all mechanisms --------------------------------

struct LifecycleCase {
  lightvm::Mechanisms mechanisms;
  int seed;
};

class LifecyclePropertyTest : public ::testing::TestWithParam<LifecycleCase> {};

TEST_P(LifecyclePropertyTest, RandomLifecycleConservesResources) {
  const LifecycleCase& c = GetParam();
  sim::Engine engine(static_cast<uint64_t>(c.seed));
  lightvm::Host host(&engine, lightvm::HostSpec::Xeon4Core(), c.mechanisms);
  if (c.mechanisms.split) {
    host.AddShellFlavor(guests::DaytimeUnikernel().memory, true, 4);
    host.PrefillShellPool();
  }
  lv::Rng rng(static_cast<uint64_t>(c.seed) * 7 + 3);

  std::vector<hv::DomainId> running;
  int created = 0;
  for (int step = 0; step < 60; ++step) {
    int op = static_cast<int>(rng.Uniform(0, 3));
    if (op <= 1 || running.empty()) {  // create (biased)
      toolstack::VmConfig config;
      config.name = lv::StrFormat("p%d", created++);
      config.image = guests::DaytimeUnikernel();
      auto domid = sim::RunToCompletion(engine, host.CreateAndBoot(config));
      ASSERT_TRUE(domid.ok()) << domid.error().message;
      running.push_back(*domid);
    } else if (op == 2) {  // destroy a random VM
      size_t victim =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(running.size()) - 1));
      ASSERT_TRUE(sim::RunToCompletion(engine, host.DestroyVm(running[victim])).ok());
      running.erase(running.begin() + static_cast<long>(victim));
    } else {  // save + restore a random VM
      size_t victim =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(running.size()) - 1));
      hv::DomainId domid = running[victim];
      running.erase(running.begin() + static_cast<long>(victim));
      auto snap = sim::RunToCompletion(engine, host.SaveVm(domid));
      ASSERT_TRUE(snap.ok()) << snap.error().message;
      auto restored = sim::RunToCompletion(engine, host.RestoreVm(*snap));
      ASSERT_TRUE(restored.ok()) << restored.error().message;
      running.push_back(*restored);
    }

    // Invariants after every step.
    EXPECT_EQ(host.num_vms(), static_cast<int64_t>(running.size()));
    // Memory: Dom0 + each live guest's reservation (+ pooled shells).
    int64_t pool = host.chaos_daemon() ? host.chaos_daemon()->pool_size() : 0;
    double expected_mib =
        host.spec().dom0_memory.mib() +
        static_cast<double>(static_cast<int64_t>(running.size())) *
            guests::DaytimeUnikernel().memory.mib();
    double measured_mib = host.MemoryUsed().mib();
    // Shells mid-build may hold one extra reservation.
    double slack = (static_cast<double>(pool) + 2.0) * guests::DaytimeUnikernel().memory.mib();
    EXPECT_GE(measured_mib + 0.001, expected_mib) << "step " << step;
    EXPECT_LE(measured_mib, expected_mib + slack) << "step " << step;
  }

  // Drain everything; the host must return to (near) baseline.
  for (hv::DomainId domid : running) {
    ASSERT_TRUE(sim::RunToCompletion(engine, host.DestroyVm(domid)).ok());
  }
  EXPECT_EQ(host.num_vms(), 0);
  EXPECT_EQ(host.hv().NumDomainsInState(hv::DomainState::kRunning), 0);
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsBySeed, LifecyclePropertyTest,
    ::testing::Values(LifecycleCase{lightvm::Mechanisms::Xl(), 1},
                      LifecycleCase{lightvm::Mechanisms::Xl(), 2},
                      LifecycleCase{lightvm::Mechanisms::ChaosXs(), 1},
                      LifecycleCase{lightvm::Mechanisms::ChaosXs(), 2},
                      LifecycleCase{lightvm::Mechanisms::ChaosXsSplit(), 1},
                      LifecycleCase{lightvm::Mechanisms::ChaosNoxs(), 1},
                      LifecycleCase{lightvm::Mechanisms::ChaosNoxs(), 2},
                      LifecycleCase{lightvm::Mechanisms::LightVm(), 1},
                      LifecycleCase{lightvm::Mechanisms::LightVm(), 2},
                      LifecycleCase{lightvm::Mechanisms::LightVm(), 3}));

// --- Tinyx build properties ----------------------------------------------------

class TinyxPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, tinyx::Platform>> {};

TEST_P(TinyxPropertyTest, EveryBuildIsBootableAndMinimal) {
  const auto& [app, platform] = GetParam();
  tinyx::TinyxBuilder builder(tinyx::PackageDb::DebianBase());
  tinyx::BuildConfig config;
  config.app = app;
  config.platform = platform;
  tinyx::KernelModel kernel;
  config.kernel_options_to_test = kernel.DefaultOnOptions();
  auto image = builder.Build(config);
  ASSERT_TRUE(image.ok()) << image.error().message;

  // The final configuration passes the boot test for this app.
  EXPECT_TRUE(kernel.BootTest(image->kernel_options, app));
  // The app itself and busybox are present; nothing blacklisted leaked in.
  EXPECT_TRUE(std::find(image->packages.begin(), image->packages.end(), app) !=
              image->packages.end());
  for (const std::string& bad : image->blacklisted) {
    EXPECT_TRUE(std::find(image->packages.begin(), image->packages.end(), bad) ==
                image->packages.end());
  }
  // Minimality: disabling any surviving tested option would break the app —
  // re-check each one.
  for (const std::string& opt : config.kernel_options_to_test) {
    if (!image->kernel_options.contains(opt)) {
      continue;  // Already disabled by the loop.
    }
    std::set<std::string> without = image->kernel_options;
    without.erase(opt);
    EXPECT_FALSE(kernel.BootTest(without, app))
        << opt << " survived trimming but is not actually needed by " << app;
  }
  // Far below a general-purpose distribution.
  EXPECT_LT(image->image_size.mib(), 64.0);
}

INSTANTIATE_TEST_SUITE_P(
    AppsByPlatform, TinyxPropertyTest,
    ::testing::Combine(::testing::Values("nginx", "micropython", "tls-proxy"),
                       ::testing::Values(tinyx::Platform::kXen, tinyx::Platform::kKvm)));

// --- Store permissions -----------------------------------------------------------

class StorePermissionTest : public ::testing::TestWithParam<int> {};

TEST_P(StorePermissionTest, GuestsCannotEscapeTheirSubtree) {
  hv::DomainId domid = GetParam();
  xs::Store store;
  std::string own = lv::StrFormat("/local/domain/%lld/data", (long long)domid);
  std::string other = lv::StrFormat("/local/domain/%lld/data", (long long)(domid + 1));
  EXPECT_TRUE(store.Write(own, "mine", domid).ok());
  EXPECT_EQ(store.Write(other, "attack", domid).code(), lv::ErrorCode::kPermissionDenied);
  EXPECT_EQ(store.Write("/local/domain/0/backend/vif", "attack", domid).code(),
            lv::ErrorCode::kPermissionDenied);
  EXPECT_EQ(store.Write("/tool/global", "attack", domid).code(),
            lv::ErrorCode::kPermissionDenied);
  // Dom0 can write anywhere, including the guest's tree.
  EXPECT_TRUE(store.Write(other, "legit", hv::kDom0).ok());
  // The guest can remove its own node but not the neighbor's.
  EXPECT_TRUE(store.Rm(own, xs::kNoTxn, nullptr, domid).ok());
  EXPECT_EQ(store.Rm(other, xs::kNoTxn, nullptr, domid).code(),
            lv::ErrorCode::kPermissionDenied);
}

INSTANTIATE_TEST_SUITE_P(DomainIds, StorePermissionTest, ::testing::Values(1, 7, 42, 999));

}  // namespace
